// Differential lockdown of the translate-once compilation layer: a
// campaign over compiled property plans (one translation per property,
// instances stamped from shared artifacts, reset-reused per mutation unit)
// must be byte-for-byte identical to the legacy engine that re-ran the
// whole spec→monitor translation inside every work unit — for every
// backend, at every thread count, under every cache/batch knob.  Plus unit
// lockdowns of mon::CompiledProperty itself: the Auto cost-model choice,
// artifact materialization, instantiate() equivalence with stand-alone
// construction, and the infeasible-shape paths.
#include <gtest/gtest.h>

#include <stdexcept>

#include "abv/campaign.hpp"
#include "mon/compiled.hpp"
#include "psl/clause_monitor.hpp"
#include "testing.hpp"

namespace loom::abv {
namespace {

constexpr mon::Backend kBackends[] = {
    mon::Backend::Auto, mon::Backend::Drct, mon::Backend::ViaPSL,
    mon::Backend::Vm};

struct CampaignRun {
  CampaignResult result;
  std::string report;
};

CampaignRun run_with(const char* source, mon::Backend backend, bool compiled,
                     std::size_t threads, bool viapsl = false,
                     bool reuse_traces = true, bool batch_replay = true) {
  // A fresh alphabet per run: runs must not influence each other through
  // interned ids.
  spec::Alphabet ab;
  auto p = loom::testing::parse(source, ab);
  CampaignOptions opt;
  opt.seeds = 4;
  opt.stimuli.rounds = 3;
  opt.stimuli.noise_permille = 100;
  opt.mutants_per_kind = 6;
  opt.check_viapsl = viapsl;
  opt.backend = backend;
  loom::testing::scalar_lanes_if_forced(opt);
  opt.use_compiled_plans = compiled;
  opt.threads = threads;
  opt.shard_size = 1;  // maximal interleaving: every unit its own shard
  opt.reuse_traces = reuse_traces;
  opt.batch_replay = batch_replay;
  const CampaignResult r = run_campaign(p, ab, opt);
  return {r, r.report(ab)};
}

class CompiledPlanDiff : public ::testing::TestWithParam<const char*> {};

TEST_P(CompiledPlanDiff, CompiledEqualsPerUnitTranslationByteForByte) {
  for (const mon::Backend backend : kBackends) {
    const CampaignRun legacy =
        run_with(GetParam(), backend, /*compiled=*/false, 1);
    for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
      const std::string what = std::string("backend=") + to_string(backend) +
                               " threads=" + std::to_string(threads);
      const CampaignRun compiled =
          run_with(GetParam(), backend, /*compiled=*/true, threads);
      EXPECT_TRUE(
          loom::testing::results_identical(compiled.result, legacy.result))
          << what;
      EXPECT_EQ(compiled.report, legacy.report) << what;
    }
  }
}

TEST_P(CompiledPlanDiff, CompiledPathIsDeterministicUnderEveryKnob) {
  // Thread count, shard size and the cache/batch knobs stay pure
  // performance knobs on the compiled path — including the diagnostics:
  // the instance counters are a pure function of the work, not of the
  // sharding.
  for (const mon::Backend backend : kBackends) {
    const CampaignRun serial = run_with(GetParam(), backend, true, 1);
    for (const bool reuse : {false, true}) {
      for (const bool batch : {false, true}) {
        const CampaignRun run = run_with(GetParam(), backend, true, 4,
                                         /*viapsl=*/false, reuse, batch);
        const std::string what = std::string("backend=") + to_string(backend) +
                                 " reuse=" + std::to_string(reuse) +
                                 " batch=" + std::to_string(batch);
        EXPECT_EQ(run.report, serial.report) << what;
        EXPECT_EQ(run.result.compile_stats.instances_stamped,
                  serial.result.compile_stats.instances_stamped)
            << what;
        EXPECT_EQ(run.result.compile_stats.instance_reuses,
                  serial.result.compile_stats.instance_reuses)
            << what;
      }
    }
  }
}

TEST_P(CompiledPlanDiff, CompileStatsAccountTheTranslationWork) {
  const CampaignRun compiled =
      run_with(GetParam(), mon::Backend::Auto, true, 1);
  const CampaignRun legacy =
      run_with(GetParam(), mon::Backend::Auto, false, 1);

  // Exactly one translation per property either way — the plans are built
  // up front in both modes; only the per-unit work differs.
  EXPECT_EQ(compiled.result.compile_stats.plans_built, 1u);
  EXPECT_EQ(legacy.result.compile_stats.plans_built, 1u);
  // Auto resolves via the cost model; for every property of the paper's
  // evaluation the Drct construction is cheaper per event than ViaPSL
  // (Figure 6), and the campaign's prefer_vm tie-break then lands the
  // Drct/Vm tie on the VM.
  EXPECT_EQ(compiled.result.compile_stats.backend_chosen, mon::Backend::Vm);
  EXPECT_EQ(compiled.result.compile_stats.backend_requested,
            mon::Backend::Auto);
  // One instance per valid unit at least; the legacy path stamps at least
  // as many (a fresh one per killed mutant) and never reuses.
  EXPECT_GE(compiled.result.compile_stats.instances_stamped, 4u);
  EXPECT_GE(legacy.result.compile_stats.instances_stamped,
            compiled.result.compile_stats.instances_stamped);
  EXPECT_EQ(legacy.result.compile_stats.instance_reuses, 0u);
  // Reuse happens exactly when a unit kills more than one mutant:
  // stamped + reused == legacy stamped (same monitors fed either way).
  EXPECT_EQ(compiled.result.compile_stats.instances_stamped +
                compiled.result.compile_stats.instance_reuses,
            legacy.result.compile_stats.instances_stamped);
}

INSTANTIATE_TEST_SUITE_P(
    Properties, CompiledPlanDiff,
    ::testing::Values("(n << i, true)",                               //
                      "(({a, b, c}, &) << s, false)",                 //
                      "(({n1, n2}, &) < ({n3[2,8], n4}, |) < n5 << i, true)",
                      "(p[2,3] => q[1,4] < r, 10us)"));

TEST(CompiledPlanDiff, ViaPslCrossCheckUsesTheSharedEncoding) {
  // check_viapsl rides along unchanged: compiled and legacy both
  // instantiate the cross-check from the one materialized clause set.
  const char* source = "(({a, b}, &) << s, true)";
  const CampaignRun legacy =
      run_with(source, mon::Backend::Drct, false, 1, /*viapsl=*/true);
  const CampaignRun compiled =
      run_with(source, mon::Backend::Drct, true, 4, /*viapsl=*/true);
  EXPECT_TRUE(
      loom::testing::results_identical(compiled.result, legacy.result));
  EXPECT_EQ(compiled.report, legacy.report);
  EXPECT_EQ(compiled.result.compile_stats.viapsl_encodings, 1u);
}

TEST(CompiledPlanDiff, BatchCampaignCompilesOnePlanPerProperty) {
  const char* sources[] = {"(n << i, true)", "(p[2,3] => q[1,4] < r, 10us)"};
  spec::Alphabet ab;
  std::vector<spec::Property> props;
  for (const char* s : sources) props.push_back(loom::testing::parse(s, ab));
  std::vector<const spec::Property*> ptrs;
  for (const auto& p : props) ptrs.push_back(&p);

  CampaignOptions opt;
  opt.seeds = 3;
  opt.stimuli.rounds = 2;
  opt.mutants_per_kind = 4;
  opt.threads = 4;
  opt.shard_size = 1;
  const auto results = run_campaigns(ptrs, ab, opt);
  ASSERT_EQ(results.size(), 2u);
  for (const auto& r : results) {
    EXPECT_EQ(r.compile_stats.plans_built, 1u);
    EXPECT_EQ(r.compile_stats.backend_chosen, mon::Backend::Vm);
  }

  const auto plans = compile_property_plans(ptrs, ab, opt);
  ASSERT_EQ(plans.size(), 2u);
  for (std::size_t p = 0; p < plans.size(); ++p) {
    EXPECT_EQ(plans[p].index, p);
    EXPECT_EQ(plans[p].property, ptrs[p]);
    // Copies share the translate-once artifacts instead of re-translating.
    const mon::CompiledProperty copy = plans[p].compiled;
    EXPECT_EQ(&copy.plan(), &plans[p].compiled.plan());
  }
}

// --- mon::CompiledProperty unit lockdowns ---------------------------------

TEST(CompiledProperty, AutoConsultsTheCostModelAndPicksDrct) {
  spec::Alphabet ab;
  const spec::Property p = loom::testing::parse(
      "(({n1, n2}, &) < ({n3[2,8], n4}, |) < n5 << i, true)", ab);
  const auto c = mon::CompiledProperty::compile(p, ab);
  EXPECT_EQ(c.requested(), mon::Backend::Auto);
  EXPECT_EQ(c.chosen(), mon::Backend::Drct);
  EXPECT_TRUE(c.viapsl_feasible());
  // The decision is visible: the analytic per-event costs that drove it.
  EXPECT_GT(c.viapsl_cost().ops_per_token + c.viapsl_cost().lexer_ops,
            c.drct_ops_per_event());
  // Drct chosen and no cross-check requested: no clause set materialized.
  EXPECT_EQ(c.encoding(), nullptr);
  EXPECT_THROW((void)c.instantiate(mon::Backend::ViaPSL), std::logic_error);
}

TEST(CompiledProperty, PreferVmResolvesTheAutoTieToVm) {
  // The campaign engine's tie-break (CompileOptions::prefer_vm): the VM
  // executes Drct's exact op schedule, so the two tie under the cost model
  // and the flag decides the winner — while a genuine ViaPSL cost win
  // still takes precedence over both.
  spec::Alphabet ab;
  const spec::Property p = loom::testing::parse(
      "(({n1, n2}, &) < ({n3[2,8], n4}, |) < n5 << i, true)", ab);
  mon::CompileOptions opt;
  opt.prefer_vm = true;
  const auto c = mon::CompiledProperty::compile(p, ab, opt);
  EXPECT_EQ(c.requested(), mon::Backend::Auto);
  // The precedence rule, pinned against the exposed analytic costs: ViaPSL
  // wins iff feasible and strictly cheaper, otherwise prefer_vm lands the
  // Drct/Vm tie on the VM.
  const std::uint64_t viapsl_ops =
      c.viapsl_cost().ops_per_token + c.viapsl_cost().lexer_ops;
  const mon::Backend expected =
      c.viapsl_feasible() && viapsl_ops < c.drct_ops_per_event()
          ? mon::Backend::ViaPSL
          : mon::Backend::Vm;
  EXPECT_EQ(c.chosen(), expected);
  EXPECT_EQ(c.chosen(), mon::Backend::Vm);  // Drct is cheaper here (Fig. 6)
  // The VM artifact is materialized for the chosen backend, and an
  // instance stamps without error.
  ASSERT_NE(c.vm_program(), nullptr);
  EXPECT_NE(c.instantiate(), nullptr);
  EXPECT_EQ(c.vm_ops_per_event(), c.drct_ops_per_event());
}

TEST(CompiledProperty, PreferVmIsPartOfThePlanCacheKey) {
  // Two compilations differing only in prefer_vm must not alias: their
  // chosen backends (and materialized artifacts) differ.
  spec::Alphabet ab;
  const spec::Property p = loom::testing::parse("(n << i, true)", ab);
  mon::CompileOptions drct_tie;
  mon::CompileOptions vm_tie;
  vm_tie.prefer_vm = true;
  EXPECT_NE(mon::CompiledPropertyCache::key_of(p, ab, drct_tie),
            mon::CompiledPropertyCache::key_of(p, ab, vm_tie));
  mon::CompiledPropertyCache cache;
  (void)cache.get_or_compile(p, ab, drct_tie);
  (void)cache.get_or_compile(p, ab, vm_tie);
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.stats().misses, 2u);
}

TEST(CompiledProperty, ForcedViaPslMaterializesTheClauseSet) {
  spec::Alphabet ab;
  const spec::Property p = loom::testing::parse("(({a, b}, &) << s, true)", ab);
  mon::CompileOptions opt;
  opt.backend = mon::Backend::ViaPSL;
  const auto c = mon::CompiledProperty::compile(p, ab, opt);
  EXPECT_EQ(c.chosen(), mon::Backend::ViaPSL);
  ASSERT_NE(c.encoding(), nullptr);
  EXPECT_GT(c.encoding()->clauses.size(), 0u);
  // Every instance shares that one encoding.
  auto m = c.instantiate();
  ASSERT_NE(dynamic_cast<psl::ClauseMonitor*>(m.get()), nullptr);
  EXPECT_EQ(&dynamic_cast<psl::ClauseMonitor&>(*m).encoding(), c.encoding());
}

TEST(CompiledProperty, InstantiateMatchesStandaloneConstruction) {
  // A stamped instance must behave exactly like a monitor built the
  // pre-plan way: same verdicts, same stats, same space, over traces that
  // exercise both accepting and violating runs.
  spec::Alphabet ab;
  const spec::Property p =
      loom::testing::parse("(({a, b, c}, &) << s, true)", ab);
  mon::CompileOptions opt;
  opt.with_viapsl_artifact = true;
  const auto c = mon::CompiledProperty::compile(p, ab, opt);

  const char* traces[] = {"a b c s a c b s", "a b s", "s", "a b c s s"};
  for (const char* text : traces) {
    const spec::Trace t = loom::testing::trace_of(text, ab);

    auto stamped = c.instantiate(mon::Backend::Drct);
    auto standalone = mon::make_monitor(p);
    EXPECT_EQ(loom::testing::run_monitor(*stamped, t),
              loom::testing::run_monitor(*standalone, t))
        << text;
    EXPECT_EQ(stamped->stats().ops, standalone->stats().ops) << text;
    EXPECT_EQ(stamped->space_bits(), standalone->space_bits()) << text;

    auto stamped_psl = c.instantiate(mon::Backend::ViaPSL);
    psl::ClauseMonitor standalone_psl(psl::encode(p, 2000000, &ab));
    EXPECT_EQ(loom::testing::run_monitor(*stamped_psl, t),
              loom::testing::run_monitor(standalone_psl, t))
        << text;
    EXPECT_EQ(stamped_psl->stats().ops, standalone_psl.stats().ops) << text;
    EXPECT_EQ(stamped_psl->space_bits(), standalone_psl.space_bits()) << text;
  }
}

TEST(CompiledProperty, UntranslatableShapeFallsBackOrThrows) {
  // A timed chain whose final fragment holds several ranges has no ViaPSL
  // encoding: Auto must fall back to Drct without materializing anything;
  // forcing ViaPSL must throw the translator's error.
  spec::Alphabet ab;
  const spec::Property p =
      loom::testing::parse("(p => ({q1, q2}, &), 10us)", ab);
  const auto c = mon::CompiledProperty::compile(p, ab);
  EXPECT_FALSE(c.viapsl_feasible());
  EXPECT_EQ(c.chosen(), mon::Backend::Drct);

  mon::CompileOptions opt;
  opt.backend = mon::Backend::ViaPSL;
  EXPECT_THROW((void)mon::CompiledProperty::compile(p, ab, opt),
               std::invalid_argument);
}

TEST(CompiledProperty, ClauseBudgetBoundsTheAutoChoice) {
  // Shrinking max_clauses below the (tiny) encoding flips feasibility; the
  // analytic clause count is what gates it, no materialization attempted.
  spec::Alphabet ab;
  const spec::Property p = loom::testing::parse("(({a, b}, &) << s, true)", ab);
  mon::CompileOptions opt;
  opt.max_clauses = 1;
  const auto c = mon::CompiledProperty::compile(p, ab, opt);
  EXPECT_FALSE(c.viapsl_feasible());
  EXPECT_EQ(c.chosen(), mon::Backend::Drct);
}

TEST(CompiledProperty, SnapshotsTheInternedAlphabet) {
  spec::Alphabet ab;
  const spec::Property p = loom::testing::parse("(({a, b}, &) << s, true)", ab);
  const auto c = mon::CompiledProperty::compile(p, ab);
  EXPECT_EQ(c.alphabet().count(), 3u);
  c.alphabet().for_each([&](std::size_t name) {
    EXPECT_EQ(c.text_of(static_cast<spec::Name>(name)),
              ab.text(static_cast<spec::Name>(name)));
  });
  EXPECT_THROW((void)c.text_of(ab.name("not_in_property")),
               std::out_of_range);
}

TEST(CompiledProperty, BackendParsingRoundTrips) {
  for (const mon::Backend b : kBackends) {
    const auto parsed = mon::parse_backend(mon::to_string(b));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, b);
  }
  EXPECT_FALSE(mon::parse_backend("psl").has_value());
  EXPECT_FALSE(mon::parse_backend("").has_value());
}

}  // namespace
}  // namespace loom::abv

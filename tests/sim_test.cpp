#include <gtest/gtest.h>

#include <vector>

#include "sim/event.hpp"
#include "sim/module.hpp"
#include "sim/scheduler.hpp"
#include "sim/signal.hpp"
#include "sim/time.hpp"

namespace loom::sim {
namespace {

TEST(Time, UnitsAndArithmetic) {
  EXPECT_EQ(Time::ns(1).picoseconds(), 1000u);
  EXPECT_EQ(Time::us(2).picoseconds(), 2000000u);
  EXPECT_EQ(Time::ms(1), Time::us(1000));
  EXPECT_EQ(Time::sec(1), Time::ms(1000));
  EXPECT_EQ(Time::ns(5) + Time::ns(7), Time::ns(12));
  EXPECT_EQ(Time::ns(7) - Time::ns(5), Time::ns(2));
  EXPECT_EQ(Time::ns(5) - Time::ns(7), Time::zero());  // saturating
  EXPECT_EQ(Time::ns(3) * 4, Time::ns(12));
  EXPECT_LT(Time::ns(1), Time::ns(2));
  EXPECT_EQ(Time::max() + Time::ns(1), Time::max());  // saturating
}

TEST(Time, ToString) {
  EXPECT_EQ(Time::ns(150).to_string(), "150 ns");
  EXPECT_EQ(Time::ns(1000).to_string(), "1 us");
  EXPECT_EQ(Time::ps(5).to_string(), "5 ps");
  EXPECT_EQ(Time::zero().to_string(), "0 s");
  EXPECT_EQ(Time::max().to_string(), "inf");
}

TEST(Scheduler, RunsProcessAndAdvancesTime) {
  Scheduler sched;
  std::vector<std::uint64_t> stamps;
  struct Driver {
    static Process run(Scheduler& s, std::vector<std::uint64_t>& stamps) {
      stamps.push_back(s.now().picoseconds());
      co_await s.wait(Time::ns(10));
      stamps.push_back(s.now().picoseconds());
      co_await s.wait(Time::ns(5));
      stamps.push_back(s.now().picoseconds());
    }
  };
  sched.spawn(Driver::run(sched, stamps), "driver");
  const Time end = sched.run();
  EXPECT_EQ(stamps, (std::vector<std::uint64_t>{0, 10000, 15000}));
  EXPECT_EQ(end, Time::ns(15));
}

TEST(Scheduler, RunWithLimitStopsAtLimit) {
  Scheduler sched;
  int steps = 0;
  struct Looper {
    static Process run(Scheduler& s, int& steps) {
      for (;;) {
        co_await s.wait(Time::ns(10));
        ++steps;
      }
    }
  };
  sched.spawn(Looper::run(sched, steps), "looper");
  sched.run(Time::ns(35));
  EXPECT_EQ(steps, 3);
  EXPECT_EQ(sched.now(), Time::ns(35));
}

TEST(Scheduler, EventNotifyDeltaWakesWaiter) {
  Scheduler sched;
  Event ev(sched, "ev");
  bool woke = false;
  struct Waiter {
    static Process run(Scheduler& s, Event& ev, bool& woke) {
      co_await s.wait(ev);
      woke = true;
    }
  };
  struct Notifier {
    static Process run(Scheduler& s, Event& ev) {
      co_await s.wait(Time::ns(3));
      ev.notify();
    }
  };
  sched.spawn(Waiter::run(sched, ev, woke), "waiter");
  sched.spawn(Notifier::run(sched, ev), "notifier");
  sched.run();
  EXPECT_TRUE(woke);
  EXPECT_EQ(sched.now(), Time::ns(3));
}

TEST(Scheduler, TimedNotifyEarlierOverridesLater) {
  Scheduler sched;
  Event ev(sched, "ev");
  Time woke_at;
  struct Waiter {
    static Process run(Scheduler& s, Event& ev, Time& woke_at) {
      co_await s.wait(ev);
      woke_at = s.now();
    }
  };
  sched.spawn(Waiter::run(sched, ev, woke_at), "waiter");
  ev.notify(Time::ns(50));
  ev.notify(Time::ns(20));  // earlier wins
  ev.notify(Time::ns(80));  // ignored
  sched.run();
  EXPECT_EQ(woke_at, Time::ns(20));
}

TEST(Scheduler, CancelDropsNotification) {
  Scheduler sched;
  Event ev(sched, "ev");
  bool woke = false;
  struct Waiter {
    static Process run(Scheduler& s, Event& ev, bool& woke) {
      co_await s.wait(ev);
      woke = true;
    }
  };
  sched.spawn(Waiter::run(sched, ev, woke), "waiter");
  ev.notify(Time::ns(10));
  ev.cancel();
  sched.run(Time::ns(100));
  EXPECT_FALSE(woke);
}

TEST(Scheduler, EventCallbacksFire) {
  Scheduler sched;
  Event ev(sched, "ev");
  int persistent = 0, once = 0;
  ev.on_trigger([&] { ++persistent; });
  ev.on_next_trigger([&] { ++once; });
  ev.notify(Time::ns(1));
  sched.run();
  ev.notify(Time::ns(1));
  sched.run();
  EXPECT_EQ(persistent, 2);
  EXPECT_EQ(once, 1);
}

TEST(Scheduler, WaitWithTimeoutEventFirst) {
  Scheduler sched;
  Event ev(sched, "ev");
  bool fired = false;
  struct Waiter {
    static Process run(Scheduler& s, Event& ev, bool& fired) {
      fired = co_await s.wait(ev, Time::ns(100));
    }
  };
  sched.spawn(Waiter::run(sched, ev, fired), "waiter");
  ev.notify(Time::ns(10));
  sched.run();
  EXPECT_TRUE(fired);
  EXPECT_EQ(sched.now(), Time::ns(10));
}

TEST(Scheduler, WaitWithTimeoutTimesOut) {
  Scheduler sched;
  Event ev(sched, "ev");
  bool fired = true;
  struct Waiter {
    static Process run(Scheduler& s, Event& ev, bool& fired) {
      fired = co_await s.wait(ev, Time::ns(25));
    }
  };
  sched.spawn(Waiter::run(sched, ev, fired), "waiter");
  sched.run();
  EXPECT_FALSE(fired);
  EXPECT_EQ(sched.now(), Time::ns(25));
}

TEST(Scheduler, ScheduledCallbackRuns) {
  Scheduler sched;
  Time fired_at;
  sched.schedule_at(Time::ns(42), [&] { fired_at = sched.now(); });
  sched.run();
  EXPECT_EQ(fired_at, Time::ns(42));
}

TEST(Scheduler, TwoProcessesInterleaveDeterministically) {
  Scheduler sched;
  std::vector<int> order;
  struct P {
    static Process run(Scheduler& s, std::vector<int>& order, int id) {
      order.push_back(id);
      co_await s.wait(Time::ns(10));
      order.push_back(id + 10);
    }
  };
  sched.spawn(P::run(sched, order, 1), "p1");
  sched.spawn(P::run(sched, order, 2), "p2");
  sched.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 11, 12}));
}

TEST(Scheduler, ExceptionInProcessPropagates) {
  Scheduler sched;
  struct Thrower {
    static Process run(Scheduler& s) {
      co_await s.wait(Time::ns(1));
      throw std::runtime_error("boom");
    }
  };
  sched.spawn(Thrower::run(sched), "thrower");
  EXPECT_THROW(sched.run(), std::runtime_error);
}

TEST(Scheduler, StopRequestHaltsRun) {
  Scheduler sched;
  int iterations = 0;
  struct Looper {
    static Process run(Scheduler& s, int& n) {
      for (;;) {
        co_await s.wait(Time::ns(1));
        if (++n == 5) s.stop();
      }
    }
  };
  sched.spawn(Looper::run(sched, iterations), "looper");
  sched.run();
  EXPECT_EQ(iterations, 5);
}

TEST(Signal, UpdateSemantics) {
  Scheduler sched;
  Signal<int> sig(sched, "sig", 0);
  int observed_at_write = -1;
  int changes = 0;
  sig.changed().on_trigger([&] { ++changes; });
  struct Writer {
    static Process run(Scheduler& s, Signal<int>& sig, int& observed) {
      sig.write(7);
      observed = sig.read();  // still the old value in the same delta
      co_await s.wait(Time::ns(1));
    }
  };
  sched.spawn(Writer::run(sched, sig, observed_at_write), "writer");
  sched.run();
  EXPECT_EQ(observed_at_write, 0);
  EXPECT_EQ(sig.read(), 7);
  EXPECT_EQ(changes, 1);
}

TEST(Signal, NoChangeNoNotify) {
  Scheduler sched;
  Signal<int> sig(sched, "sig", 5);
  int changes = 0;
  sig.changed().on_trigger([&] { ++changes; });
  struct Writer {
    static Process run(Scheduler& s, Signal<int>& sig) {
      sig.write(5);  // same value
      co_await s.wait(Time::ns(1));
    }
  };
  sched.spawn(Writer::run(sched, sig), "writer");
  sched.run();
  EXPECT_EQ(changes, 0);
}

TEST(Module, HierarchicalNames) {
  Scheduler sched;
  Module top(sched, "top");
  Module child(sched, "ipu", &top);
  Module grand(sched, "engine", &child);
  EXPECT_EQ(top.full_name(), "top");
  EXPECT_EQ(child.full_name(), "top.ipu");
  EXPECT_EQ(grand.full_name(), "top.ipu.engine");
  ASSERT_EQ(top.children().size(), 1u);
  EXPECT_EQ(top.children()[0], &child);
  EXPECT_EQ(grand.parent(), &child);
}

TEST(Scheduler, DeltaCyclesCountAndIdle) {
  Scheduler sched;
  EXPECT_TRUE(sched.idle());
  Event ev(sched, "ev");
  struct Chain {
    static Process run(Scheduler& s, Event& ev) {
      ev.notify();
      co_await s.wait(ev);
    }
  };
  sched.spawn(Chain::run(sched, ev), "chain");
  EXPECT_FALSE(sched.idle());
  sched.run();
  EXPECT_TRUE(sched.idle());
  EXPECT_GE(sched.delta_count(), 2u);
}

}  // namespace
}  // namespace loom::sim

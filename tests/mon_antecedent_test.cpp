// End-to-end tests of the Drct antecedent monitor, mirroring the reference
// oracle cases plus monitor-specific behaviour (retirement, diagnostics,
// stats, complexity bounds).
#include <gtest/gtest.h>

#include "testing.hpp"

namespace loom::mon {
namespace {

using loom::testing::as_ref;
using loom::testing::parse;
using loom::testing::run_monitor;
using loom::testing::trace_of;

struct Case {
  const char* property;
  const char* trace;
  spec::RefVerdict expected;
};

class AntecedentDrct : public ::testing::TestWithParam<Case> {};

TEST_P(AntecedentDrct, MatchesExpectedVerdict) {
  spec::Alphabet ab;
  auto p = parse(GetParam().property, ab);
  AntecedentMonitor m(p.antecedent());
  auto t = trace_of(GetParam().trace, ab);
  run_monitor(m, t);
  EXPECT_EQ(as_ref(m.verdict()), GetParam().expected)
      << GetParam().property << " on [" << GetParam().trace << "] -> "
      << to_string(m.verdict())
      << (m.violation() ? "\n  " + m.violation()->to_string(ab) : "");
}

INSTANTIATE_TEST_SUITE_P(
    SingleRange, AntecedentDrct,
    ::testing::Values(
        Case{"(n << i, true)", "", spec::RefVerdict::Accepted},
        Case{"(n << i, true)", "n i", spec::RefVerdict::Accepted},
        Case{"(n << i, true)", "n i n i n i", spec::RefVerdict::Accepted},
        Case{"(n << i, true)", "n", spec::RefVerdict::Pending},
        Case{"(n << i, true)", "i", spec::RefVerdict::Rejected},
        Case{"(n << i, true)", "n i i", spec::RefVerdict::Rejected},
        Case{"(n << i, true)", "n n i", spec::RefVerdict::Rejected},
        Case{"(n << i, false)", "n i i i", spec::RefVerdict::Accepted},
        Case{"(n << i, false)", "i", spec::RefVerdict::Rejected}));

INSTANTIATE_TEST_SUITE_P(
    Bounds, AntecedentDrct,
    ::testing::Values(
        Case{"(n[2,4] << i, true)", "n n i", spec::RefVerdict::Accepted},
        Case{"(n[2,4] << i, true)", "n n n n i", spec::RefVerdict::Accepted},
        Case{"(n[2,4] << i, true)", "n i", spec::RefVerdict::Rejected},
        Case{"(n[2,4] << i, true)", "n n n n n i",
             spec::RefVerdict::Rejected},
        Case{"(n[2,4] << i, true)", "n n n", spec::RefVerdict::Pending},
        Case{"(n[100,60K] << i, true)", "n n n", spec::RefVerdict::Pending}));

INSTANTIATE_TEST_SUITE_P(
    Fragments, AntecedentDrct,
    ::testing::Values(
        Case{"(({a, b, c}, &) << s, false)", "b c a s",
             spec::RefVerdict::Accepted},
        Case{"(({a, b, c}, &) << s, false)", "a c s",
             spec::RefVerdict::Rejected},
        Case{"(({a, b}, |) << i, true)", "b i a i",
             spec::RefVerdict::Accepted},
        Case{"(({a, b}, |) << i, true)", "i", spec::RefVerdict::Rejected},
        Case{"(({n1, n2}, &) < ({n3[2,8], n4}, |) < n5 << i, false)",
             "n1 n2 n3 n3 n4 n5 i", spec::RefVerdict::Accepted},
        Case{"(({n1, n2}, &) < ({n3[2,8], n4}, |) < n5 << i, false)",
             "n1 n2 n4 n5 i", spec::RefVerdict::Accepted},
        Case{"(({n1, n2}, &) < ({n3[2,8], n4}, |) < n5 << i, false)",
             "n1 n2 n3 n5 i", spec::RefVerdict::Rejected},
        Case{"(({n1, n2}, &) < ({n3[2,8], n4}, |) < n5 << i, false)",
             "n1 n3 n3 n5 i", spec::RefVerdict::Rejected}));

TEST(AntecedentMonitor, IgnoresIrrelevantNames) {
  spec::Alphabet ab;
  auto p = parse("(n << i, true)", ab);
  AntecedentMonitor m(p.antecedent());
  auto t = trace_of("x n y z i w", ab);
  run_monitor(m, t);
  EXPECT_EQ(m.verdict(), Verdict::Monitoring);
  EXPECT_EQ(m.validated_triggers(), 1u);
}

TEST(AntecedentMonitor, RetiresAfterFirstTriggerWhenNonRepeated) {
  spec::Alphabet ab;
  auto p = parse("(n << i, false)", ab);
  AntecedentMonitor m(p.antecedent());
  auto t = trace_of("n i n n n i i", ab);
  run_monitor(m, t);
  EXPECT_EQ(m.verdict(), Verdict::Holds);
  EXPECT_EQ(m.validated_triggers(), 1u);
}

TEST(AntecedentMonitor, ViolationCarriesDiagnostics) {
  spec::Alphabet ab;
  auto p = parse("(n[2,4] << i, true)", ab);
  AntecedentMonitor m(p.antecedent());
  auto t = trace_of("n i", ab);
  run_monitor(m, t);
  ASSERT_EQ(m.verdict(), Verdict::Violated);
  ASSERT_TRUE(m.violation().has_value());
  EXPECT_EQ(m.violation()->event_ordinal, 1u);
  EXPECT_EQ(m.violation()->time, sim::Time::ns(20));
  EXPECT_EQ(ab.text(m.violation()->name), "i");
  EXPECT_NE(m.violation()->reason.find("below u=2"), std::string::npos);
}

TEST(AntecedentMonitor, StaysViolatedAfterError) {
  spec::Alphabet ab;
  auto p = parse("(n << i, true)", ab);
  AntecedentMonitor m(p.antecedent());
  auto t = trace_of("i n i n i", ab);
  run_monitor(m, t);
  EXPECT_EQ(m.verdict(), Verdict::Violated);
  EXPECT_EQ(m.violation()->event_ordinal, 0u);  // the first event
}

TEST(AntecedentMonitor, ResetRestoresInitialState) {
  spec::Alphabet ab;
  auto p = parse("(n << i, true)", ab);
  AntecedentMonitor m(p.antecedent());
  run_monitor(m, trace_of("i", ab));
  EXPECT_EQ(m.verdict(), Verdict::Violated);
  m.reset();
  EXPECT_EQ(m.verdict(), Verdict::Monitoring);
  EXPECT_EQ(m.stats().events, 0u);
  run_monitor(m, trace_of("n i", ab));
  EXPECT_EQ(m.verdict(), Verdict::Monitoring);
}

TEST(AntecedentMonitor, SpaceIsIndependentOfRangeWidthExceptCounter) {
  spec::Alphabet ab;
  auto p_small = parse("(n << i, true)", ab);
  auto p_big = parse("(m[100,60K] << j, true)", ab);
  AntecedentMonitor small(p_small.antecedent());
  AntecedentMonitor big(p_big.antecedent());
  // The only growth is the counter width: 1 bit -> 16 bits.
  EXPECT_EQ(big.space_bits() - small.space_bits(), 15u);
}

TEST(AntecedentMonitor, PerEventOpsBoundedByMaxFragmentSize) {
  // Drct time complexity is Θ(max_i |α(F_i)|): ops per event must not
  // depend on the range bounds, and must grow only with fragment arity.
  spec::Alphabet ab;
  auto narrow = parse("(n << i, true)", ab);
  auto wide = parse("(m[100,60K] << j, true)", ab);
  AntecedentMonitor m_narrow(narrow.antecedent());
  AntecedentMonitor m_wide(wide.antecedent());

  spec::Trace t_narrow = trace_of("n i n i n i n i", ab);
  run_monitor(m_narrow, t_narrow);
  spec::Trace t_wide;
  for (int round = 0; round < 2; ++round) {
    for (int k = 0; k < 200; ++k) t_wide.push_back({*ab.lookup("m"), {}});
    t_wide.push_back({*ab.lookup("j"), {}});
  }
  run_monitor(m_wide, t_wide);

  EXPECT_LE(m_wide.stats().max_ops_per_event,
            m_narrow.stats().max_ops_per_event + 2)
      << "a huge range must not increase per-event work";
}

TEST(AntecedentMonitor, OpsScaleWithActiveFragmentOnly) {
  spec::Alphabet ab;
  // Fragment arities 4 and 1: per-event work tracks the active fragment.
  auto p = parse("(({a, b, c, d}, &) < e << i, true)", ab);
  AntecedentMonitor m(p.antecedent());
  auto t = trace_of("a b c d e i", ab);
  run_monitor(m, t);
  EXPECT_GT(m.stats().max_ops_per_event, 0u);
  // 4 recognizers, each a handful of ops, plus dispatch: stays small.
  EXPECT_LE(m.stats().max_ops_per_event, 64u);
}

}  // namespace
}  // namespace loom::mon

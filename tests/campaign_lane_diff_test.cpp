// Differential lockdown of lane-batched mutant waves — the eighth engine
// invariant: a campaign that fills a wave of up to lane_width mutants per
// (seed, property, kind) unit and replays them through VmLaneBatch in
// block-lockstep must be byte-for-byte identical to the
// scalar one-mutant-at-a-time engine — at every lane width, every thread
// count, every worker count, with incremental replay on or off and the
// worker supervisor on or off.  Plus lockdowns of the guard rails (a
// forced non-Vm backend cannot be combined with waves, width zero is
// rejected), of the lane counters (scheduling-independent, wire-exact,
// zero on the scalar path), and of the report surface (wave diagnostics
// land in the opt-in report only).
#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

#include "abv/campaign.hpp"
#include "testing.hpp"
#include "wire/payload.hpp"
#include "wire/wire.hpp"

namespace loom::abv {
namespace {

struct CampaignRun {
  CampaignResult result;
  std::string report;
};

struct LaneConfig {
  mon::Backend backend = mon::Backend::Auto;
  std::size_t lane_width = 1;
  std::size_t threads = 1;
  std::size_t workers = 0;
  bool incremental = true;
  bool supervised = true;
};

CampaignRun run_with(const char* source, const LaneConfig& s) {
  // A fresh alphabet per run: runs must not influence each other through
  // interned ids.
  spec::Alphabet ab;
  auto p = loom::testing::parse(source, ab);
  CampaignOptions opt;
  opt.seeds = 4;
  opt.stimuli.rounds = 4;
  opt.stimuli.noise_permille = 100;
  opt.mutants_per_kind = 6;
  opt.backend = s.backend;
  opt.lane_width = s.lane_width;
  opt.threads = s.threads;
  opt.workers = s.workers;
  opt.incremental_replay = s.incremental;
  opt.supervised = s.supervised;
  const CampaignResult r = run_campaign(p, ab, opt);
  return {r, r.report(ab)};
}

std::string describe(const LaneConfig& s) {
  return std::string("backend=") + to_string(s.backend) +
         " lanes=" + std::to_string(s.lane_width) +
         " threads=" + std::to_string(s.threads) +
         " workers=" + std::to_string(s.workers) +
         " incremental=" + std::to_string(s.incremental) +
         " supervised=" + std::to_string(s.supervised);
}

class CampaignLaneDiff : public ::testing::TestWithParam<const char*> {};

TEST_P(CampaignLaneDiff, LaneBatchedEqualsScalarByteForByte) {
  // The eighth engine invariant across the width grid: the scalar run
  // (lane_width 1, the per-mutant stepping loop) is computed once per
  // backend and every wave variant — any width, any thread count, any
  // worker count — must match it byte for byte, report text included.
  // Widths straddle the unit size (6 mutants per kind): 2 and 3 flush
  // multiple full waves, 8 runs one partial wave, 13 exceeds every unit.
  for (const mon::Backend backend : {mon::Backend::Auto, mon::Backend::Vm}) {
    LaneConfig scalar;
    scalar.backend = backend;
    const CampaignRun baseline = run_with(GetParam(), scalar);
    EXPECT_EQ(baseline.result.lane_waves, 0u) << describe(scalar);
    EXPECT_EQ(baseline.result.lanes_filled, 0u) << describe(scalar);
    for (const std::size_t width : {std::size_t{2}, std::size_t{3},
                                    std::size_t{8}, std::size_t{13}}) {
      for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
        for (const std::size_t workers : {std::size_t{0}, std::size_t{2}}) {
          LaneConfig s;
          s.backend = backend;
          s.lane_width = width;
          s.threads = threads;
          s.workers = workers;
          const CampaignRun waved = run_with(GetParam(), s);
          EXPECT_TRUE(loom::testing::results_identical(waved.result,
                                                       baseline.result))
              << describe(s);
          EXPECT_EQ(waved.report, baseline.report) << describe(s);
          // Waves actually ran, and the occupancy accounting is coherent:
          // a lane is filled at most once per wave slot.
          EXPECT_GT(waved.result.lane_waves, 0u) << describe(s);
          EXPECT_GT(waved.result.lanes_filled, 0u) << describe(s);
          EXPECT_LE(waved.result.lanes_filled, waved.result.lane_capacity)
              << describe(s);
          EXPECT_EQ(waved.result.lane_capacity,
                    waved.result.lane_waves * width)
              << describe(s);
        }
      }
    }
  }
}

TEST_P(CampaignLaneDiff, WavesStayIdenticalUnderReplayAndSupervisionKnobs) {
  // The wave scheduler sits on top of the checkpoint ladder and below the
  // worker supervisor; flipping either must not leak into the bytes.
  for (const bool incremental : {false, true}) {
    for (const bool supervised : {false, true}) {
      LaneConfig scalar;
      scalar.incremental = incremental;
      scalar.supervised = supervised;
      const CampaignRun baseline = run_with(GetParam(), scalar);
      for (const std::size_t width : {std::size_t{2}, std::size_t{8}}) {
        LaneConfig s = scalar;
        s.lane_width = width;
        s.threads = 4;
        s.workers = 2;
        const CampaignRun waved = run_with(GetParam(), s);
        EXPECT_TRUE(loom::testing::results_identical(waved.result,
                                                     baseline.result))
            << describe(s);
        EXPECT_EQ(waved.report, baseline.report) << describe(s);
      }
    }
  }
}

TEST_P(CampaignLaneDiff, LaneCountersAreSchedulingIndependent) {
  // lane_waves / lanes_filled / lane_capacity are engine diagnostics, but
  // like the checkpoint counters they must be a pure function of the
  // campaign parameters: serial, threaded and cross-process runs agree
  // counter for counter — the wave layout follows the unit layout, never
  // the schedule.
  LaneConfig serial;
  serial.lane_width = 8;
  const CampaignRun a = run_with(GetParam(), serial);
  LaneConfig scattered = serial;
  scattered.threads = 4;
  scattered.workers = 2;
  const CampaignRun b = run_with(GetParam(), scattered);
  EXPECT_EQ(a.result.lane_waves, b.result.lane_waves);
  EXPECT_EQ(a.result.lanes_filled, b.result.lanes_filled);
  EXPECT_EQ(a.result.lane_capacity, b.result.lane_capacity);
  EXPECT_EQ(a.report, b.report);
}

TEST_P(CampaignLaneDiff, WireRoundTripPreservesWavedResultsExactly) {
  // A waved result that crosses the v3 wire (as every worker partial does)
  // must come back bit-identical — semantic fields and the new lane
  // counters alike.  This is the seam the sixth invariant leans on when
  // workers wave.
  LaneConfig s;
  s.lane_width = 8;
  const CampaignRun waved = run_with(GetParam(), s);
  ASSERT_GT(waved.result.lane_waves, 0u);

  wire::Encoder e;
  wire::encode_result(e, waved.result);
  wire::Decoder d(e.bytes());
  CampaignResult back;
  ASSERT_TRUE(wire::decode_result(d, back)) << d.error().to_string();
  EXPECT_TRUE(loom::testing::results_identical(back, waved.result));
  EXPECT_EQ(back.lane_waves, waved.result.lane_waves);
  EXPECT_EQ(back.lanes_filled, waved.result.lanes_filled);
  EXPECT_EQ(back.lane_capacity, waved.result.lane_capacity);
  spec::Alphabet ab;  // report text regenerates from the decoded counters
  EXPECT_EQ(back.report(ab, true), waved.result.report(ab, true));
}

TEST_P(CampaignLaneDiff, WaveDiagnosticsLandInTheOptInReportOnly) {
  LaneConfig s;
  s.lane_width = 8;
  const CampaignRun waved = run_with(GetParam(), s);
  EXPECT_EQ(waved.report.find("lanes:"), std::string::npos);
  spec::Alphabet ab;
  const std::string diag = waved.result.report(ab, true);
  EXPECT_NE(diag.find("lanes:"), std::string::npos);
  EXPECT_NE(diag.find("waves"), std::string::npos);
}

INSTANTIATE_TEST_SUITE_P(
    Properties, CampaignLaneDiff,
    ::testing::Values("(n << i, true)",                               //
                      "(({a, b, c}, &) << s, false)",                 //
                      "(({n1, n2}, &) < ({n3[2,8], n4}, |) < n5 << i, true)",
                      "(p[2,3] => q[1,4] < r, 10us)"));

// ---------------------------------------------------------------------------
// Guard rails: the knob space that cannot wave is rejected up front with a
// diagnostic, never silently degraded or left to crash mid-campaign.

TEST(CampaignLaneDiffGuards, ForcedNonVmBackendRejectsWaveWidths) {
  spec::Alphabet ab;
  auto p = loom::testing::parse("(n << i, true)", ab);
  for (const mon::Backend backend :
       {mon::Backend::Drct, mon::Backend::ViaPSL}) {
    CampaignOptions opt;
    opt.seeds = 1;
    opt.mutants_per_kind = 1;
    opt.backend = backend;
    opt.lane_width = 2;
    try {
      run_campaign(p, ab, opt);
      FAIL() << "expected std::invalid_argument for backend="
             << to_string(backend);
    } catch (const std::invalid_argument& err) {
      // The diagnostic names both the conflict and the two ways out.
      const std::string what = err.what();
      EXPECT_NE(what.find("Vm backend"), std::string::npos) << what;
      EXPECT_NE(what.find(to_string(backend)), std::string::npos) << what;
      EXPECT_NE(what.find("lane_width=1"), std::string::npos) << what;
    }
  }
  // Auto is not a forced backend: any width is accepted, and the engine
  // simply runs scalar wherever Auto resolves away from the VM.
  CampaignOptions opt;
  opt.seeds = 1;
  opt.mutants_per_kind = 1;
  opt.lane_width = 13;
  EXPECT_TRUE(run_campaign(p, ab, opt).ok());
}

TEST(CampaignLaneDiffGuards, ZeroLaneWidthIsRejected) {
  spec::Alphabet ab;
  auto p = loom::testing::parse("(n << i, true)", ab);
  CampaignOptions opt;
  opt.seeds = 1;
  opt.mutants_per_kind = 1;
  opt.lane_width = 0;
  EXPECT_THROW(run_campaign(p, ab, opt), std::invalid_argument);
}

TEST(CampaignLaneDiffGuards, ScalarConfigurationsNeverWave) {
  // lane_width 1 and non-Vm resolutions keep the wave counters at zero —
  // bench_compare.py treats lane_occupancy as semantic, so a scalar
  // baseline must not report phantom occupancy.
  spec::Alphabet ab;
  auto p = loom::testing::parse("(n << i, true)", ab);
  CampaignOptions opt;
  opt.seeds = 2;
  opt.mutants_per_kind = 4;
  opt.lane_width = 1;
  const CampaignResult scalar = run_campaign(p, ab, opt);
  EXPECT_EQ(scalar.lane_waves, 0u);
  EXPECT_EQ(scalar.lanes_filled, 0u);
  EXPECT_EQ(scalar.lane_capacity, 0u);

  CampaignOptions drct = opt;
  drct.backend = mon::Backend::Drct;
  const CampaignResult forced = run_campaign(p, ab, drct);
  EXPECT_EQ(forced.lane_waves, 0u);
  EXPECT_EQ(forced.lane_capacity, 0u);
}

}  // namespace
}  // namespace loom::abv

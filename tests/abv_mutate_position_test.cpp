// MutationResult::position contract (mutate.hpp): position is the index of
// the first event at which the mutant may diverge from the source trace —
// the shared prefix below it is guaranteed element for element:
//
//     trace[0, position) == mutant[0, position)
//
// The checkpointed campaign engine restores monitor state from a snapshot
// taken at or before `position` and replays only the suffix, so this
// property is load-bearing: a mutant whose prefix silently differed from
// the valid trace would replay against the wrong monitor state.  Fuzzed
// over every mutation kind, several property shapes and many seeds, plus
// pinned per-kind placement checks.
#include <gtest/gtest.h>

#include <string>

#include "abv/mutate.hpp"
#include "abv/stimuli.hpp"
#include "testing.hpp"

namespace loom::abv {
namespace {

constexpr MutationKind kKinds[] = {
    MutationKind::Drop, MutationKind::Duplicate, MutationKind::SwapAdjacent,
    MutationKind::EarlyTrigger, MutationKind::StallDeadline};

class MutationPosition : public ::testing::TestWithParam<const char*> {};

TEST_P(MutationPosition, PrefixBelowPositionIsSharedElementForElement) {
  spec::Alphabet ab;
  const spec::Property property = loom::testing::parse(GetParam(), ab);
  StimuliOptions sopt;
  sopt.rounds = 5;
  sopt.noise_permille = 150;

  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    support::Rng gen_rng = support::Rng::stream(seed, 0);
    const spec::Trace valid = generate_valid(property, ab, gen_rng, sopt);
    for (const MutationKind kind : kKinds) {
      support::Rng rng = support::Rng::stream(seed, 13);
      for (int round = 0; round < 10; ++round) {
        const auto mutant = mutate(valid, kind, property, rng);
        if (!mutant) continue;
        const std::string what = std::string(to_string(kind)) + " seed=" +
                                 std::to_string(seed) + " round=" +
                                 std::to_string(round) + " position=" +
                                 std::to_string(mutant->position);
        // position stays inside both traces: a checkpoint floor computed
        // from it can always be replayed from.
        ASSERT_LE(mutant->position, valid.size()) << what;
        ASSERT_LE(mutant->position, mutant->trace.size()) << what;
        // The guaranteed shared prefix.
        for (std::size_t i = 0; i < mutant->position; ++i) {
          ASSERT_EQ(valid[i], mutant->trace[i])
              << what << " diverges inside the guaranteed prefix at " << i;
        }
        // And the mutation really did something at or after position: the
        // suffixes (or the lengths) differ.
        const bool suffix_differs = [&] {
          if (valid.size() != mutant->trace.size()) return true;
          for (std::size_t i = mutant->position; i < valid.size(); ++i) {
            if (!(valid[i] == mutant->trace[i])) return true;
          }
          return false;
        }();
        EXPECT_TRUE(suffix_differs) << what;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Properties, MutationPosition,
    ::testing::Values("(n << i, true)",
                      "(({a, b, c}, &) << s, false)",
                      "(({n1, n2}, &) < ({n3[2,8], n4}, |) < n5 << i, true)",
                      "(p[2,3] => q[1,4] < r, 10us)"));

TEST(MutationPositionPlacement, PinnedPerKindSemantics) {
  // Deterministic single-site traces pin the per-kind placement documented
  // in mutate.hpp (first *possible* divergence, not "the mutated event").
  spec::Alphabet ab;
  const spec::Property timed =
      loom::testing::parse("(p[1,1] => q[1,1] < r, 10us)", ab);
  const spec::Trace t = loom::testing::trace_of("p q r", ab);

  support::Rng rng(1);
  // Drop: the removed event's own index (its successor slides in there).
  for (int i = 0; i < 8; ++i) {
    const auto m = mutate(t, MutationKind::Drop, timed, rng);
    ASSERT_TRUE(m.has_value());
    ASSERT_LT(m->position, t.size());
    EXPECT_EQ(m->trace.size(), t.size() - 1);
    if (m->position + 1 < t.size()) {
      EXPECT_EQ(m->trace[m->position], t[m->position + 1]);
    }
  }
  // Duplicate: the inserted copy's index — one past the duplicated event,
  // so the shared prefix includes the original.
  for (int i = 0; i < 8; ++i) {
    const auto m = mutate(t, MutationKind::Duplicate, timed, rng);
    ASSERT_TRUE(m.has_value());
    ASSERT_GE(m->position, 1u);
    EXPECT_EQ(m->trace[m->position].name, t[m->position - 1].name);
    EXPECT_EQ(m->trace[m->position].time,
              t[m->position - 1].time + sim::Time::ps(1));
  }
  // EarlyTrigger: the inserted event's index.
  const spec::Property ante = loom::testing::parse("(n << i, true)", ab);
  const spec::Trace nt = loom::testing::trace_of("n i n i", ab);
  for (int i = 0; i < 8; ++i) {
    const auto m = mutate(nt, MutationKind::EarlyTrigger, ante, rng);
    ASSERT_TRUE(m.has_value());
    ASSERT_GE(m->position, 1u);
    EXPECT_EQ(m->trace[m->position].name, ab.name("i"));
  }
  // StallDeadline: the first time-shifted event's index.
  for (int i = 0; i < 8; ++i) {
    const auto m = mutate(t, MutationKind::StallDeadline, timed, rng);
    ASSERT_TRUE(m.has_value());
    ASSERT_GE(m->position, 1u);
    EXPECT_GT(m->trace[m->position].time, t[m->position].time);
    EXPECT_EQ(m->trace[m->position].name, t[m->position].name);
  }
}

}  // namespace
}  // namespace loom::abv

#include <gtest/gtest.h>

#include "spec/export.hpp"
#include "spec/parser.hpp"

namespace loom::spec {
namespace {

TEST(ExportDot, PropertyTreeCarriesFigure4Attributes) {
  Alphabet ab;
  support::DiagnosticSink sink;
  auto p = parse_property(
      "(({n1, n2}, &) < ({n3[2,8], n4}, |) < n5 << i, false)", ab, sink);
  ASSERT_TRUE(p.has_value());
  const std::string dot = to_dot(*p, ab);
  EXPECT_NE(dot.find("digraph property"), std::string::npos);
  // The worked example of Fig. 4: context of n3[2,8].
  EXPECT_NE(dot.find("n3[2,8]"), std::string::npos);
  EXPECT_NE(dot.find("B={n1, n2}"), std::string::npos);
  EXPECT_NE(dot.find("C={n4}"), std::string::npos);
  EXPECT_NE(dot.find("Ac={n5}"), std::string::npos);
  EXPECT_NE(dot.find("Af={i}"), std::string::npos);
  // Three fragment nodes chained by '<' edges.
  EXPECT_NE(dot.find("F1"), std::string::npos);
  EXPECT_NE(dot.find("F3"), std::string::npos);
  EXPECT_NE(dot.find("label=\"<\""), std::string::npos);
}

TEST(ExportDot, TimedPropertyTreeWorks) {
  Alphabet ab;
  support::DiagnosticSink sink;
  auto p = parse_property("(a => b[2,4] < c, 1ms)", ab, sink);
  ASSERT_TRUE(p.has_value());
  const std::string dot = to_dot(*p, ab);
  EXPECT_NE(dot.find("b[2,4]"), std::string::npos);
  EXPECT_NE(dot.find("=>"), std::string::npos);
}

TEST(ExportDot, RangeAutomatonMatchesFigure5Structure) {
  Alphabet ab;
  support::DiagnosticSink sink;
  auto p = parse_property(
      "(({n1, n2}, &) < ({n3[2,8], n4}, |) < n5 << i, false)", ab, sink);
  ASSERT_TRUE(p.has_value());
  const OrderingPlan plan = plan_antecedent(p->antecedent());
  const RangePlan& n3 = plan.fragments[1].ranges[0];
  const std::string dot = range_automaton_dot(n3, ab);
  // All six states present; the error state is terminal.
  for (const char* s : {"s0", "s1", "s2", "s3", "s4", "s5"}) {
    EXPECT_NE(dot.find(s), std::string::npos) << s;
  }
  // Disjunctive parent: s2 --Ac--> s0 with nok.
  EXPECT_NE(dot.find("/nok"), std::string::npos);
  // Counting transitions with the concrete bounds.
  EXPECT_NE(dot.find("[cpt<8]"), std::string::npos);
  EXPECT_NE(dot.find("[cpt>=2]"), std::string::npos);
  EXPECT_NE(dot.find("start"), std::string::npos);
}

TEST(ExportDot, ConjunctiveRangeHasNoNok) {
  Alphabet ab;
  support::DiagnosticSink sink;
  auto p = parse_property("(({a, b}, &) << i, true)", ab, sink);
  const OrderingPlan plan = plan_antecedent(p->antecedent());
  const std::string dot = range_automaton_dot(plan.fragments[0].ranges[0], ab);
  EXPECT_EQ(dot.find("/nok"), std::string::npos);
  EXPECT_NE(dot.find("err (∧)"), std::string::npos);
}

}  // namespace
}  // namespace loom::spec

#include <gtest/gtest.h>

#include "spec/parser.hpp"
#include "spec/wellformed.hpp"

namespace loom::spec {
namespace {

Property parse_ok(const std::string& src, Alphabet& ab) {
  support::DiagnosticSink sink;
  auto p = parse_property(src, ab, sink);
  EXPECT_TRUE(p.has_value()) << src << "\n" << sink.to_string();
  return *p;
}

TEST(WellFormed, AcceptsPaperExamples) {
  Alphabet ab;
  const char* sources[] = {
      "(n << i, true)",
      "(n[100,60K] << i, true)",
      "(({n1, n2, n3, n4}, &) << i, false)",
      "(({n1, n2}, &) < ({n3[2,8], n4}, |) < n5 << i, false)",
      "(n1 => n2 < n3 < n4, 100ns)",
      "(start => read_img[100,60K] < set_irq, 2ms)",
  };
  for (const char* src : sources) {
    Alphabet local;
    support::DiagnosticSink sink;
    auto p = parse_ok(src, local);
    EXPECT_TRUE(check_wellformed(p, local, sink)) << src << "\n"
                                                  << sink.to_string();
  }
}

TEST(WellFormed, RejectsTriggerInsidePattern) {
  Alphabet ab;
  auto p = parse_ok("(({i, b}, &) << i, true)", ab);
  support::DiagnosticSink sink;
  EXPECT_FALSE(check_wellformed(p, ab, sink));
  EXPECT_NE(sink.to_string().find("must not occur"), std::string::npos);
}

TEST(WellFormed, RejectsDuplicateNameInFragment) {
  Alphabet ab;
  auto p = parse_ok("(({a, a}, &) << i, true)", ab);
  support::DiagnosticSink sink;
  EXPECT_FALSE(check_wellformed(p, ab, sink));
  EXPECT_NE(sink.to_string().find("two ranges"), std::string::npos);
}

TEST(WellFormed, RejectsSharedNamesAcrossFragments) {
  Alphabet ab;
  auto p = parse_ok("(({a, b}, &) < ({b, c}, |) << i, true)", ab);
  support::DiagnosticSink sink;
  EXPECT_FALSE(check_wellformed(p, ab, sink));
  EXPECT_NE(sink.to_string().find("disjoint"), std::string::npos);
}

TEST(WellFormed, RejectsBadRangeBounds) {
  Alphabet ab;
  auto p = parse_ok("(a[5,2] << i, true)", ab);
  support::DiagnosticSink sink;
  EXPECT_FALSE(check_wellformed(p, ab, sink));
  EXPECT_NE(sink.to_string().find("1 <= u <= v"), std::string::npos);

  Alphabet ab2;
  auto p2 = parse_ok("(a[0,2] << i, true)", ab2);
  support::DiagnosticSink sink2;
  EXPECT_FALSE(check_wellformed(p2, ab2, sink2));
}

TEST(WellFormed, RejectsOverlapBetweenPAndQ) {
  Alphabet ab;
  auto p = parse_ok("(a < b => b < c, 5ns)", ab);
  support::DiagnosticSink sink;
  EXPECT_FALSE(check_wellformed(p, ab, sink));
  EXPECT_NE(sink.to_string().find("share names"), std::string::npos);
}

TEST(WellFormed, ConsequentMustBeOutputs) {
  Alphabet ab;
  ab.input("set_cfg");
  ab.output("irq");
  auto p = parse_ok("(go => set_cfg < irq, 5ns)", ab);
  support::DiagnosticSink sink;
  EXPECT_FALSE(check_wellformed(p, ab, sink));
  EXPECT_NE(sink.to_string().find("only outputs"), std::string::npos);
}

TEST(WellFormed, TriggerMustBeInput) {
  Alphabet ab;
  ab.output("done");
  auto p = parse_ok("(a << done, true)", ab);
  support::DiagnosticSink sink;
  EXPECT_FALSE(check_wellformed(p, ab, sink));
  EXPECT_NE(sink.to_string().find("input"), std::string::npos);
}

TEST(WellFormed, UnknownDirectionsAreAllowed) {
  // The parser interns names with unknown direction; direction checks only
  // apply once directions are declared.
  Alphabet ab;
  auto p = parse_ok("(go => step < irq, 5ns)", ab);
  support::DiagnosticSink sink;
  EXPECT_TRUE(check_wellformed(p, ab, sink)) << sink.to_string();
}

TEST(WellFormed, EmptyOrderingRejected) {
  LooseOrdering l;
  Alphabet ab;
  support::DiagnosticSink sink;
  EXPECT_FALSE(check_wellformed(l, ab, sink));
}

}  // namespace
}  // namespace loom::spec

// Randomized equivalence testing: the online Drct monitors must agree with
// the declarative reference semantics on every trace (valid or not).
//
// Properties and traces are generated from seeded RNGs, so failures are
// reproducible; each failing case prints the property, the trace and both
// verdicts.
#include <gtest/gtest.h>

#include "support/rng.hpp"
#include "testing.hpp"

namespace loom::mon {
namespace {

using support::Rng;

spec::LooseOrdering random_ordering(Rng& rng, spec::Alphabet& ab,
                                    std::size_t num_fragments,
                                    std::size_t& next_name) {
  spec::LooseOrdering l;
  for (std::size_t f = 0; f < num_fragments; ++f) {
    spec::Fragment frag;
    frag.join = rng.chance(1, 2) ? spec::Join::Conj : spec::Join::Disj;
    const std::size_t num_ranges = 1 + rng.below(3);
    for (std::size_t r = 0; r < num_ranges; ++r) {
      spec::Range range;
      range.name = ab.name("n" + std::to_string(next_name++));
      range.lo = static_cast<std::uint32_t>(1 + rng.below(3));
      range.hi = range.lo + static_cast<std::uint32_t>(rng.below(3));
      frag.ranges.push_back(range);
    }
    l.fragments.push_back(std::move(frag));
  }
  return l;
}

/// Random trace over the property alphabet plus two irrelevant names.
/// Biased towards plausible shapes: names are drawn with locality (repeat
/// the previous name often) so that blocks form and recognition progresses.
spec::Trace random_trace(Rng& rng, const std::vector<spec::Name>& names,
                         std::size_t length) {
  spec::Trace t;
  std::uint64_t now_ns = 0;
  spec::Name prev = names[rng.below(names.size())];
  for (std::size_t k = 0; k < length; ++k) {
    spec::Name name;
    if (rng.chance(2, 5)) {
      name = prev;  // extend the current block
    } else {
      name = names[rng.below(names.size())];
    }
    now_ns += 1 + rng.below(40);
    t.push_back({name, sim::Time::ns(now_ns)});
    prev = name;
  }
  return t;
}

std::string render_trace(const spec::Trace& t, const spec::Alphabet& ab) {
  std::string out;
  for (const auto& ev : t) {
    out += ab.text(ev.name) + "@" +
           std::to_string(ev.time.picoseconds() / 1000) + " ";
  }
  return out;
}

class AntecedentEquivalence : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(AntecedentEquivalence, MonitorAgreesWithReference) {
  Rng rng(GetParam());
  for (int iteration = 0; iteration < 60; ++iteration) {
    spec::Alphabet ab;
    std::size_t next_name = 0;
    spec::Antecedent a;
    a.pattern = random_ordering(rng, ab, 1 + rng.below(3), next_name);
    a.trigger = ab.name("i");
    a.repeated = rng.chance(1, 2);

    std::vector<spec::Name> names;
    a.alphabet().for_each(
        [&](std::size_t id) { names.push_back(static_cast<spec::Name>(id)); });
    names.push_back(ab.name("x"));  // irrelevant noise
    names.push_back(ab.name("y"));

    for (int trace_no = 0; trace_no < 10; ++trace_no) {
      const spec::Trace t = random_trace(rng, names, 1 + rng.below(30));
      const spec::RefResult expected = reference_check(a, t);

      AntecedentMonitor m(a);
      loom::testing::run_monitor(m, t);
      EXPECT_EQ(loom::testing::as_ref(m.verdict()), expected.verdict)
          << "property: " << spec::to_string(a, ab)
          << "\ntrace: " << render_trace(t, ab)
          << "\nreference: " << spec::to_string(expected.verdict) << " ("
          << expected.reason << ")\nmonitor: " << to_string(m.verdict())
          << (m.violation() ? "\n  " + m.violation()->to_string(ab) : "");
      if (expected.rejected() && m.violation().has_value() &&
          expected.error_index < t.size()) {
        EXPECT_EQ(m.violation()->event_ordinal, expected.error_index)
            << "property: " << spec::to_string(a, ab)
            << "\ntrace: " << render_trace(t, ab);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AntecedentEquivalence,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

class TimedEquivalence : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TimedEquivalence, MonitorAgreesWithReference) {
  Rng rng(GetParam());
  for (int iteration = 0; iteration < 40; ++iteration) {
    spec::Alphabet ab;
    std::size_t next_name = 0;
    spec::TimedImplication ti;
    ti.antecedent = random_ordering(rng, ab, 1 + rng.below(2), next_name);
    ti.consequent = random_ordering(rng, ab, 1 + rng.below(2), next_name);
    ti.bound = sim::Time::ns(30 + rng.below(400));

    std::vector<spec::Name> names;
    ti.alphabet().for_each(
        [&](std::size_t id) { names.push_back(static_cast<spec::Name>(id)); });
    names.push_back(ab.name("x"));

    for (int trace_no = 0; trace_no < 10; ++trace_no) {
      const spec::Trace t = random_trace(rng, names, 1 + rng.below(30));
      const sim::Time end = (t.empty() ? sim::Time::zero() : t.back().time) +
                            sim::Time::ns(rng.below(300));
      const spec::RefResult expected = reference_check(ti, t, end);

      TimedImplicationMonitor m(ti);
      loom::testing::run_monitor(m, t, end);
      EXPECT_EQ(loom::testing::as_ref(m.verdict()), expected.verdict)
          << "property: " << spec::to_string(ti, ab)
          << "\ntrace: " << render_trace(t, ab)
          << "\nend: " << end.to_string()
          << "\nreference: " << spec::to_string(expected.verdict) << " ("
          << expected.reason << ")\nmonitor: " << to_string(m.verdict())
          << (m.violation() ? "\n  " + m.violation()->to_string(ab) : "");
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TimedEquivalence,
                         ::testing::Values(11, 12, 13, 14, 15, 16));

}  // namespace
}  // namespace loom::mon

#include <gtest/gtest.h>

#include <cmath>
#include <string_view>

#include "abv/campaign.hpp"
#include "testing.hpp"

namespace loom::abv {
namespace {

class CampaignPasses : public ::testing::TestWithParam<const char*> {};

TEST_P(CampaignPasses, FullLoopIsHealthy) {
  spec::Alphabet ab;
  auto p = loom::testing::parse(GetParam(), ab);
  CampaignOptions opt;
  opt.seeds = 6;
  opt.stimuli.rounds = 3;
  opt.stimuli.noise_permille = 100;
  opt.mutants_per_kind = 8;
  opt.check_viapsl = true;
  const CampaignResult r = run_campaign(p, ab, opt);
  EXPECT_TRUE(r.ok()) << r.report(ab);
  EXPECT_EQ(r.traces, 6u);
  EXPECT_GT(r.events, 0u);
  EXPECT_EQ(r.valid_accepted, r.traces);
  EXPECT_EQ(r.oracle_disagreements, 0u);
  EXPECT_EQ(r.viapsl_false_alarms, 0u);
  EXPECT_DOUBLE_EQ(r.alphabet_coverage, 1.0);
}

TEST_P(CampaignPasses, FullLoopIsHealthyUnderTheVmBackend) {
  spec::Alphabet ab;
  auto p = loom::testing::parse(GetParam(), ab);
  CampaignOptions opt;
  opt.seeds = 6;
  opt.stimuli.rounds = 3;
  opt.stimuli.noise_permille = 100;
  opt.mutants_per_kind = 8;
  opt.backend = mon::Backend::Vm;
  const CampaignResult r = run_campaign(p, ab, opt);
  EXPECT_TRUE(r.ok()) << r.report(ab);
  EXPECT_EQ(r.traces, 6u);
  EXPECT_EQ(r.valid_accepted, r.traces);
  EXPECT_EQ(r.oracle_disagreements, 0u);
  EXPECT_EQ(r.compile_stats.backend_chosen, mon::Backend::Vm);
}

INSTANTIATE_TEST_SUITE_P(
    Properties, CampaignPasses,
    ::testing::Values("(n << i, true)",                               //
                      "(({a, b, c}, &) << s, false)",                 //
                      "(({n1, n2}, &) < ({n3[2,8], n4}, |) < n5 << i, true)",
                      "(p[2,3] => q[1,4] < r, 10us)"));

TEST(Campaign, MutationsAreActuallyKilled) {
  spec::Alphabet ab;
  auto p = loom::testing::parse("(({a, b}, &) < c << i, true)", ab);
  CampaignOptions opt;
  opt.seeds = 8;
  opt.stimuli.rounds = 2;
  opt.mutants_per_kind = 10;
  // Recognizer-state coverage is sampled from the Drct recognizer only, so
  // force that backend (scalar lanes: Drct has no VM frames to wave over).
  opt.backend = mon::Backend::Drct;
  opt.lane_width = 1;
  const CampaignResult r = run_campaign(p, ab, opt);
  ASSERT_TRUE(r.ok()) << r.report(ab);
  // The four antecedent-applicable kinds must have produced and killed
  // invalid mutants; StallDeadline is inapplicable to antecedents.
  for (std::size_t k = 0; k < 4; ++k) {
    EXPECT_GT(r.mutation[k].applied, 0u) << k;
    EXPECT_GT(r.mutation[k].invalid, 0u) << k;
    EXPECT_EQ(r.mutation[k].missed, 0u) << k;
    EXPECT_EQ(r.mutation[k].detected, r.mutation[k].invalid) << k;
  }
  EXPECT_EQ(r.mutation[4].applied, 0u);
  EXPECT_GT(r.recognizer_state_coverage, 0.3);
}

TEST(Campaign, DiagnosticCountersAreFiniteAndGuarded) {
  // A default-constructed result has every denominator at zero; the
  // counters must report 0, never NaN — they feed benchmark counters and
  // the tracked BENCH_*.json baselines, where NaN is unthresholdable.
  const CampaignResult empty;
  for (const auto& c : empty.diagnostic_counters()) {
    EXPECT_TRUE(std::isfinite(c.value)) << c.name;
    EXPECT_EQ(c.value, 0.0) << c.name;
  }

  spec::Alphabet ab;
  auto p = loom::testing::parse("(({a, b}, &) < c << i, true)", ab);
  CampaignOptions opt;
  opt.seeds = 4;
  opt.stimuli.rounds = 2;
  opt.mutants_per_kind = 6;
  const CampaignResult r = run_campaign(p, ab, opt);
  const auto counters = r.diagnostic_counters();
  const auto value = [&](const char* name) {
    for (const auto& c : counters) {
      if (std::string_view(c.name) == name) return c.value;
    }
    ADD_FAILURE() << "missing counter " << name;
    return -1.0;
  };
  // Rates are true ratios of the underlying counters, in [0, 1].
  EXPECT_DOUBLE_EQ(value("trace_cache_hit_rate"),
                   static_cast<double>(r.trace_cache_hits) /
                       static_cast<double>(r.trace_cache_hits +
                                           r.trace_cache_misses));
  EXPECT_DOUBLE_EQ(
      value("skip_ratio"),
      static_cast<double>(r.events_skipped) /
          static_cast<double>(r.events_skipped + r.monitor_stats.events));
  EXPECT_EQ(value("plan_cache_hit_rate"), 0.0);  // no plan cache configured
  EXPECT_EQ(value("backend_viapsl"), 0.0);  // cost model never picks ViaPSL
  // Campaign Auto resolves the Drct/Vm cost-model tie to the VM (the
  // prefer_vm tie-break), so the default campaign reports backend_vm = 1.
  EXPECT_EQ(value("backend_vm"), 1.0);
  // Lane occupancy is a true ratio of the wave counters, in (0, 1]; the
  // default campaign (lane_width 8, Vm frames) runs waves.
  EXPECT_GT(r.lane_waves, 0u);
  EXPECT_DOUBLE_EQ(value("lane_occupancy"),
                   static_cast<double>(r.lanes_filled) /
                       static_cast<double>(r.lane_capacity));
  EXPECT_GT(value("lane_occupancy"), 0.0);
  EXPECT_LE(value("lane_occupancy"), 1.0);
  EXPECT_EQ(value("lane_waves"), static_cast<double>(r.lane_waves));
  for (const auto& c : r.diagnostic_counters()) {
    EXPECT_TRUE(std::isfinite(c.value)) << c.name;
  }
}

TEST(Campaign, VmBackendRunsAndReportsItsCounter) {
  // Forcing Backend::Vm must leave the campaign semantics untouched (same
  // verdicts/kill tables as the Drct run — the VM is bit-identical to the
  // construction it compiles from) while the backend_* diagnostic counters
  // flip to report the choice honestly; tools/bench_compare.py treats
  // those counters as semantic, so a silent flip would trip the perf gate.
  spec::Alphabet ab;
  auto p = loom::testing::parse("(({a, b}, &) < c << i, true)", ab);
  CampaignOptions opt;
  opt.seeds = 4;
  opt.stimuli.rounds = 2;
  opt.mutants_per_kind = 6;
  opt.backend = mon::Backend::Drct;
  opt.lane_width = 1;  // forced Drct has no VM frames to wave over
  const CampaignResult drct = run_campaign(p, ab, opt);
  opt.backend = mon::Backend::Vm;
  opt.lane_width = 8;  // the forced-Vm leg waves at the default width
  const CampaignResult vm = run_campaign(p, ab, opt);

  ASSERT_TRUE(vm.ok()) << vm.report(ab);
  EXPECT_EQ(vm.compile_stats.backend_chosen, mon::Backend::Vm);
  // Same work, same kills, same Figure-6 accounting — only the report's
  // backend line (and the Drct-only recognizer coverage) may differ.
  EXPECT_EQ(vm.traces, drct.traces);
  EXPECT_EQ(vm.events, drct.events);
  EXPECT_EQ(vm.valid_accepted, drct.valid_accepted);
  EXPECT_EQ(vm.oracle_disagreements, drct.oracle_disagreements);
  for (std::size_t k = 0; k < std::size(vm.mutation); ++k) {
    EXPECT_EQ(vm.mutation[k].applied, drct.mutation[k].applied) << k;
    EXPECT_EQ(vm.mutation[k].invalid, drct.mutation[k].invalid) << k;
    EXPECT_EQ(vm.mutation[k].detected, drct.mutation[k].detected) << k;
    EXPECT_EQ(vm.mutation[k].missed, drct.mutation[k].missed) << k;
  }
  EXPECT_EQ(vm.monitor_stats.ops, drct.monitor_stats.ops);
  EXPECT_EQ(vm.monitor_stats.events, drct.monitor_stats.events);

  const auto counters = vm.diagnostic_counters();
  const auto value = [&](const char* name) {
    for (const auto& c : counters) {
      if (std::string_view(c.name) == name) return c.value;
    }
    ADD_FAILURE() << "missing counter " << name;
    return -1.0;
  };
  EXPECT_EQ(value("backend_vm"), 1.0);
  EXPECT_EQ(value("backend_viapsl"), 0.0);
}

TEST(Campaign, ReportIsHumanReadable) {
  spec::Alphabet ab;
  auto p = loom::testing::parse("(n << i, true)", ab);
  CampaignOptions opt;
  opt.seeds = 2;
  opt.mutants_per_kind = 3;
  const CampaignResult r = run_campaign(p, ab, opt);
  const std::string report = r.report(ab);
  EXPECT_NE(report.find("campaign:"), std::string::npos);
  EXPECT_NE(report.find("coverage:"), std::string::npos);
  EXPECT_NE(report.find("early-trigger"), std::string::npos);
  EXPECT_NE(report.find("PASSED"), std::string::npos);
}

}  // namespace
}  // namespace loom::abv

#include <gtest/gtest.h>

#include "spec/parser.hpp"
#include "spec/reference.hpp"

namespace loom::spec {
namespace {

Trace trace_of(const std::string& names, Alphabet& ab) {
  Trace t;
  std::string w;
  std::istringstream in(names);
  std::uint64_t i = 1;
  while (in >> w) t.push_back({ab.name(w), sim::Time::ns(10 * i++)});
  return t;
}

struct AntecedentCase {
  const char* property;
  const char* trace;
  RefVerdict expected;
};

class AntecedentRef : public ::testing::TestWithParam<AntecedentCase> {};

TEST_P(AntecedentRef, Verdict) {
  Alphabet ab;
  support::DiagnosticSink sink;
  auto p = parse_property(GetParam().property, ab, sink);
  ASSERT_TRUE(p.has_value()) << sink.to_string();
  Trace t = trace_of(GetParam().trace, ab);
  const RefResult r = reference_check(p->antecedent(), t);
  EXPECT_EQ(r.verdict, GetParam().expected)
      << "property: " << GetParam().property
      << "\ntrace: " << GetParam().trace << "\nreason: " << r.reason;
}

INSTANTIATE_TEST_SUITE_P(
    SingleRangeRepeated, AntecedentRef,
    ::testing::Values(
        AntecedentCase{"(n << i, true)", "", RefVerdict::Accepted},
        AntecedentCase{"(n << i, true)", "n i", RefVerdict::Accepted},
        AntecedentCase{"(n << i, true)", "n i n i", RefVerdict::Accepted},
        AntecedentCase{"(n << i, true)", "n", RefVerdict::Pending},
        AntecedentCase{"(n << i, true)", "i", RefVerdict::Rejected},
        AntecedentCase{"(n << i, true)", "n i i", RefVerdict::Rejected},
        AntecedentCase{"(n << i, true)", "n n i", RefVerdict::Rejected},
        AntecedentCase{"(n << i, true)", "n i n n", RefVerdict::Rejected}));

INSTANTIATE_TEST_SUITE_P(
    SingleRangeNonRepeated, AntecedentRef,
    ::testing::Values(
        AntecedentCase{"(n << i, false)", "n i", RefVerdict::Accepted},
        // After the first validated i, everything is unconstrained.
        AntecedentCase{"(n << i, false)", "n i i i n n",
                       RefVerdict::Accepted},
        AntecedentCase{"(n << i, false)", "i", RefVerdict::Rejected},
        AntecedentCase{"(n << i, false)", "n n", RefVerdict::Rejected}));

INSTANTIATE_TEST_SUITE_P(
    RangeBounds, AntecedentRef,
    ::testing::Values(
        AntecedentCase{"(n[2,4] << i, true)", "n n i", RefVerdict::Accepted},
        AntecedentCase{"(n[2,4] << i, true)", "n n n n i",
                       RefVerdict::Accepted},
        AntecedentCase{"(n[2,4] << i, true)", "n i", RefVerdict::Rejected},
        AntecedentCase{"(n[2,4] << i, true)", "n n n n n i",
                       RefVerdict::Rejected},
        AntecedentCase{"(n[2,4] << i, true)", "n n n", RefVerdict::Pending}));

INSTANTIATE_TEST_SUITE_P(
    ConjunctiveFragment, AntecedentRef,
    ::testing::Values(
        // Paper Example 2 shape: all three inputs, any order, then start.
        AntecedentCase{"(({a, b, c}, &) << s, false)", "a b c s",
                       RefVerdict::Accepted},
        AntecedentCase{"(({a, b, c}, &) << s, false)", "c a b s",
                       RefVerdict::Accepted},
        AntecedentCase{"(({a, b, c}, &) << s, false)", "a b s",
                       RefVerdict::Rejected},
        AntecedentCase{"(({a, b, c}, &) << s, false)", "a b c",
                       RefVerdict::Pending},
        AntecedentCase{"(({a, b, c}, &) << s, false)", "a b a c s",
                       RefVerdict::Rejected},  // block a reopened
        AntecedentCase{"(({a, b, c}, &) << s, false)", "a a b c s",
                       RefVerdict::Rejected}));  // a[1,1] exceeded

INSTANTIATE_TEST_SUITE_P(
    DisjunctiveFragment, AntecedentRef,
    ::testing::Values(
        AntecedentCase{"(({a, b}, |) << i, true)", "a i", RefVerdict::Accepted},
        AntecedentCase{"(({a, b}, |) << i, true)", "b i", RefVerdict::Accepted},
        AntecedentCase{"(({a, b}, |) << i, true)", "a b i",
                       RefVerdict::Accepted},
        AntecedentCase{"(({a, b}, |) << i, true)", "i", RefVerdict::Rejected},
        AntecedentCase{"(({a, b}, |) << i, true)", "a b a i",
                       RefVerdict::Rejected}));

INSTANTIATE_TEST_SUITE_P(
    MultiFragment, AntecedentRef,
    ::testing::Values(
        AntecedentCase{"(({n1, n2}, &) < ({n3[2,8], n4}, |) < n5 << i, false)",
                       "n1 n2 n3 n3 n5 i", RefVerdict::Accepted},
        AntecedentCase{"(({n1, n2}, &) < ({n3[2,8], n4}, |) < n5 << i, false)",
                       "n2 n1 n3 n3 n3 n4 n5 i", RefVerdict::Accepted},
        AntecedentCase{"(({n1, n2}, &) < ({n3[2,8], n4}, |) < n5 << i, false)",
                       "n1 n2 n4 n3 n3 n5 i", RefVerdict::Accepted},
        // n3 below its minimum.
        AntecedentCase{"(({n1, n2}, &) < ({n3[2,8], n4}, |) < n5 << i, false)",
                       "n1 n2 n3 n5 i", RefVerdict::Rejected},
        // n1 reappears in fragment 2 (name of an earlier fragment).
        AntecedentCase{"(({n1, n2}, &) < ({n3[2,8], n4}, |) < n5 << i, false)",
                       "n1 n2 n3 n3 n1 n5 i", RefVerdict::Rejected},
        // n5 too early (belongs to a later fragment).
        AntecedentCase{"(({n1, n2}, &) < ({n3[2,8], n4}, |) < n5 << i, false)",
                       "n1 n5 i", RefVerdict::Rejected},
        // Fragment 2 skipped entirely.
        AntecedentCase{"(({n1, n2}, &) < ({n3[2,8], n4}, |) < n5 << i, false)",
                       "n1 n2 n5 i", RefVerdict::Rejected},
        // Trigger before anything.
        AntecedentCase{"(({n1, n2}, &) < ({n3[2,8], n4}, |) < n5 << i, false)",
                       "i", RefVerdict::Rejected}));

TEST(AntecedentRefDetails, ErrorIndexPointsAtOffendingEvent) {
  Alphabet ab;
  support::DiagnosticSink sink;
  auto p = parse_property("(n << i, true)", ab, sink);
  ASSERT_TRUE(p.has_value());
  Trace t = trace_of("n i i", ab);
  const RefResult r = reference_check(p->antecedent(), t);
  ASSERT_EQ(r.verdict, RefVerdict::Rejected);
  EXPECT_EQ(r.error_index, 2u);
  EXPECT_FALSE(r.reason.empty());
}

TEST(AntecedentRefDetails, IrrelevantNamesAreProjectedAway) {
  Alphabet ab;
  support::DiagnosticSink sink;
  auto p = parse_property("(n << i, true)", ab, sink);
  ASSERT_TRUE(p.has_value());
  Trace t = trace_of("x n y i z", ab);
  EXPECT_EQ(reference_check(p->antecedent(), t).verdict,
            RefVerdict::Accepted);
}

struct TimedCase {
  const char* property;
  const char* trace;  // "name@ns" entries
  std::uint64_t end_ns;
  RefVerdict expected;
};

class TimedRef : public ::testing::TestWithParam<TimedCase> {};

Trace timed_trace(const std::string& entries, Alphabet& ab) {
  Trace t;
  std::istringstream in(entries);
  std::string w;
  while (in >> w) {
    const auto at = w.find('@');
    t.push_back({ab.name(w.substr(0, at)),
                 sim::Time::ns(std::stoull(w.substr(at + 1)))});
  }
  return t;
}

TEST_P(TimedRef, Verdict) {
  Alphabet ab;
  support::DiagnosticSink sink;
  auto p = parse_property(GetParam().property, ab, sink);
  ASSERT_TRUE(p.has_value()) << sink.to_string();
  Trace t = timed_trace(GetParam().trace, ab);
  const RefResult r =
      reference_check(p->timed(), t, sim::Time::ns(GetParam().end_ns));
  EXPECT_EQ(r.verdict, GetParam().expected)
      << "property: " << GetParam().property
      << "\ntrace: " << GetParam().trace << "\nreason: " << r.reason;
}

INSTANTIATE_TEST_SUITE_P(
    Basic, TimedRef,
    ::testing::Values(
        // (a => b, 100ns): b must follow a within 100 ns.
        TimedCase{"(a => b, 100ns)", "a@10 b@50", 200, RefVerdict::Accepted},
        TimedCase{"(a => b, 100ns)", "a@10 b@110", 200,
                  RefVerdict::Accepted},  // exactly on the deadline
        TimedCase{"(a => b, 100ns)", "a@10 b@111", 200, RefVerdict::Rejected},
        TimedCase{"(a => b, 100ns)", "a@10", 300, RefVerdict::Rejected},
        TimedCase{"(a => b, 100ns)", "a@10", 50, RefVerdict::Pending},
        TimedCase{"(a => b, 100ns)", "", 500, RefVerdict::Accepted},
        // Repetition: each a needs its own timely b.
        TimedCase{"(a => b, 100ns)", "a@10 b@20 a@30 b@40", 500,
                  RefVerdict::Accepted},
        TimedCase{"(a => b, 100ns)", "a@10 b@20 a@30 b@200", 500,
                  RefVerdict::Rejected},
        // b without a: out-of-place (chain starts at a).
        TimedCase{"(a => b, 100ns)", "b@10", 100, RefVerdict::Rejected}));

INSTANTIATE_TEST_SUITE_P(
    PaperExample3Shape, TimedRef,
    ::testing::Values(
        // (start => read_img[2,5] < set_irq, 1us)
        TimedCase{"(start => read_img[2,5] < set_irq, 1us)",
                  "start@10 read_img@20 read_img@30 set_irq@40", 2000,
                  RefVerdict::Accepted},
        TimedCase{"(start => read_img[2,5] < set_irq, 1us)",
                  "start@10 read_img@20 set_irq@30", 2000,
                  RefVerdict::Rejected},  // too few reads
        TimedCase{"(start => read_img[2,5] < set_irq, 1us)",
                  "start@10 read_img@20 read_img@30 read_img@40 read_img@50 "
                  "read_img@60 read_img@70",
                  2000, RefVerdict::Rejected},  // six reads > v=5
        TimedCase{"(start => read_img[2,5] < set_irq, 1us)",
                  "start@10 read_img@20 read_img@900 set_irq@1200", 2000,
                  RefVerdict::Rejected},  // irq after deadline (10+1000)
        TimedCase{"(start => read_img[2,5] < set_irq, 1us)",
                  "start@10 read_img@20 read_img@30 set_irq@40 start@50 "
                  "read_img@60 read_img@70 set_irq@80",
                  2000, RefVerdict::Accepted},  // two clean rounds
        // set_irq without the reads.
        TimedCase{"(start => read_img[2,5] < set_irq, 1us)",
                  "start@10 set_irq@20", 2000, RefVerdict::Rejected}));

INSTANTIATE_TEST_SUITE_P(
    MinCompleteSemantics, TimedRef,
    ::testing::Values(
        // Final fragment with lo<hi: obligation met at the lower bound.
        TimedCase{"(a => b[2,4], 100ns)", "a@10 b@20 b@30", 500,
                  RefVerdict::Accepted},
        TimedCase{"(a => b[2,4], 100ns)", "a@10 b@20 b@30 b@40 b@50", 500,
                  RefVerdict::Accepted},  // draining up to hi
        TimedCase{"(a => b[2,4], 100ns)", "a@10 b@20", 500,
                  RefVerdict::Rejected},  // min never reached, deadline passes
        TimedCase{"(a => b[2,4], 100ns)", "a@10 b@20 b@30 b@40 b@50 b@60", 500,
                  RefVerdict::Rejected},  // five b's > hi
        // New round: restart name after the block.
        TimedCase{"(a => b[2,4], 100ns)", "a@10 b@20 b@30 a@40 b@50 b@60", 500,
                  RefVerdict::Accepted},
        // t_start is min-completion of P: with P = p[2,3], the clock starts
        // at the second p.
        TimedCase{"(p[2,3] => q, 100ns)", "p@10 p@50 q@140", 500,
                  RefVerdict::Accepted},
        TimedCase{"(p[2,3] => q, 100ns)", "p@10 p@50 p@60 q@160", 500,
                  RefVerdict::Rejected}));  // deadline from second p (150)

TEST(TimedRefDetails, DeadlineAtEndOfObservation) {
  Alphabet ab;
  support::DiagnosticSink sink;
  auto p = parse_property("(a => b, 100ns)", ab, sink);
  ASSERT_TRUE(p.has_value());
  Trace t = timed_trace("a@10", ab);
  // end_time within the deadline: still pending
  EXPECT_EQ(reference_check(p->timed(), t, sim::Time::ns(100)).verdict,
            RefVerdict::Pending);
  // end_time past the deadline: rejected
  EXPECT_EQ(reference_check(p->timed(), t, sim::Time::ns(111)).verdict,
            RefVerdict::Rejected);
}

}  // namespace
}  // namespace loom::spec

// Behavioural tests of the ViaPSL clause monitor.
#include <gtest/gtest.h>

#include "psl/clause_monitor.hpp"
#include "testing.hpp"

namespace loom::psl {
namespace {

using loom::testing::as_ref;
using loom::testing::parse;
using loom::testing::run_monitor;
using loom::testing::timed_trace_of;
using loom::testing::trace_of;

struct Case {
  const char* property;
  const char* trace;
  spec::RefVerdict expected;
};

class ViaPslAntecedent : public ::testing::TestWithParam<Case> {};

TEST_P(ViaPslAntecedent, Verdict) {
  spec::Alphabet ab;
  auto p = parse(GetParam().property, ab);
  ClauseMonitor m(encode(p));
  auto t = trace_of(GetParam().trace, ab);
  run_monitor(m, t);
  EXPECT_EQ(as_ref(m.verdict()), GetParam().expected)
      << GetParam().property << " on [" << GetParam().trace << "] -> "
      << mon::to_string(m.verdict())
      << (m.violation() ? "\n  " + m.violation()->to_string(ab) : "");
}

INSTANTIATE_TEST_SUITE_P(
    SingleRange, ViaPslAntecedent,
    ::testing::Values(
        Case{"(n << i, true)", "", spec::RefVerdict::Accepted},
        Case{"(n << i, true)", "n i", spec::RefVerdict::Accepted},
        Case{"(n << i, true)", "n i n i", spec::RefVerdict::Accepted},
        Case{"(n << i, true)", "n", spec::RefVerdict::Pending},
        Case{"(n << i, true)", "i", spec::RefVerdict::Rejected},
        Case{"(n << i, true)", "n i i", spec::RefVerdict::Rejected},
        Case{"(n << i, true)", "n n i", spec::RefVerdict::Rejected},
        Case{"(n << i, false)", "n i n n i", spec::RefVerdict::Accepted},
        Case{"(n << i, false)", "i", spec::RefVerdict::Rejected}));

INSTANTIATE_TEST_SUITE_P(
    Ranges, ViaPslAntecedent,
    ::testing::Values(
        Case{"(n[2,4] << i, true)", "n n i", spec::RefVerdict::Accepted},
        Case{"(n[2,4] << i, true)", "n n n n i", spec::RefVerdict::Accepted},
        Case{"(n[2,4] << i, true)", "n i", spec::RefVerdict::Rejected},
        Case{"(n[2,4] << i, true)", "n n n n n i",
             spec::RefVerdict::Rejected},
        Case{"(n[2,4] << i, true)", "n n n", spec::RefVerdict::Pending}));

INSTANTIATE_TEST_SUITE_P(
    Fragments, ViaPslAntecedent,
    ::testing::Values(
        Case{"(({a, b, c}, &) << s, false)", "b c a s",
             spec::RefVerdict::Accepted},
        Case{"(({a, b, c}, &) << s, false)", "a c s",
             spec::RefVerdict::Rejected},
        Case{"(({a, b}, |) << i, true)", "b i a i",
             spec::RefVerdict::Accepted},
        Case{"(({a, b}, |) << i, true)", "i", spec::RefVerdict::Rejected},
        Case{"(({n1, n2}, &) < ({n3[2,8], n4}, |) < n5 << i, false)",
             "n1 n2 n3 n3 n4 n5 i", spec::RefVerdict::Accepted},
        Case{"(({n1, n2}, &) < ({n3[2,8], n4}, |) < n5 << i, false)",
             "n1 n2 n3 n5 i", spec::RefVerdict::Rejected},
        Case{"(a < b < c << i, true)", "a b c i a b c i",
             spec::RefVerdict::Accepted},
        Case{"(a < b < c << i, true)", "b a c i",
             spec::RefVerdict::Rejected},
        Case{"(a < b < c << i, true)", "a c i",
             spec::RefVerdict::Rejected}));

class ViaPslTimed : public ::testing::TestWithParam<Case> {};

TEST_P(ViaPslTimed, Verdict) {
  spec::Alphabet ab;
  auto p = parse(GetParam().property, ab);
  ClauseMonitor m(encode(p));
  auto t = timed_trace_of(GetParam().trace, ab);
  run_monitor(m, t, t.empty() ? sim::Time::zero()
                              : t.back().time + sim::Time::us(100));
  EXPECT_EQ(as_ref(m.verdict()), GetParam().expected)
      << GetParam().property << " on [" << GetParam().trace << "] -> "
      << mon::to_string(m.verdict())
      << (m.violation() ? "\n  " + m.violation()->to_string(ab) : "");
}

INSTANTIATE_TEST_SUITE_P(
    Timed, ViaPslTimed,
    ::testing::Values(
        Case{"(a => b, 100ns)", "a@10 b@50", spec::RefVerdict::Accepted},
        Case{"(a => b, 100ns)", "a@10 b@111", spec::RefVerdict::Rejected},
        Case{"(a => b, 100ns)", "a@10", spec::RefVerdict::Rejected},
        Case{"(a => b, 100ns)", "a@10 b@20 a@30 b@40",
             spec::RefVerdict::Accepted},
        Case{"(start => read_img[2,5] < set_irq, 1us)",
             "start@10 read_img@20 read_img@30 set_irq@40",
             spec::RefVerdict::Accepted},
        Case{"(start => read_img[2,5] < set_irq, 1us)",
             "start@10 set_irq@20", spec::RefVerdict::Rejected},
        Case{"(start => read_img[2,5] < set_irq, 1us)",
             "start@10 read_img@20 read_img@900 set_irq@1200",
             spec::RefVerdict::Rejected}));

TEST(ViaPslMonitor, RetiresOnFirstValidatedTrigger) {
  spec::Alphabet ab;
  auto p = parse("(n << i, false)", ab);
  ClauseMonitor m(encode(p));
  auto t = trace_of("n i n n n", ab);
  run_monitor(m, t);
  EXPECT_EQ(m.verdict(), mon::Verdict::Holds);
}

TEST(ViaPslMonitor, OpsPerEventTrackFormulaSize) {
  // The whole clause network evaluates on every token: per-event work must
  // grow with the encoding size (this is exactly the paper's point).
  spec::Alphabet ab;
  auto small = parse("(n << i, true)", ab);
  auto wide = parse("(m[2,12] << j, true)", ab);  // width 11
  ClauseMonitor m_small(encode(small));
  ClauseMonitor m_wide(encode(wide));
  run_monitor(m_small, trace_of("n i n i", ab));
  run_monitor(m_wide, trace_of("m m m j m m j", ab));
  EXPECT_GT(m_wide.stats().max_ops_per_event,
            10 * m_small.stats().max_ops_per_event);
}

TEST(ViaPslMonitor, SpaceBitsIncludeClauseRegistersAndLexer) {
  spec::Alphabet ab;
  auto p = parse("(n[2,5] << i, true)", ab);
  Encoding enc = encode(p);
  ClauseMonitor m(enc);
  EXPECT_EQ(m.space_bits(), enc.clause_bits() + 3 + 2 + 1 + 2);
  // lexer: counter (3 bits for v=5) + source register (2 bits for 2
  // sources) + emitted flag; +2 verdict bits.
}

TEST(ViaPslMonitor, ViolationExplainsTheClause) {
  spec::Alphabet ab;
  auto p = parse("(n << i, true)", ab);
  ClauseMonitor m(encode(p));
  run_monitor(m, trace_of("i", ab));
  ASSERT_TRUE(m.violation().has_value());
  EXPECT_NE(m.violation()->reason.find("before"), std::string::npos);
  EXPECT_NE(m.violation()->reason.find("until!"), std::string::npos);
}

TEST(ViaPslMonitor, WatchdogInterface) {
  spec::Alphabet ab;
  auto p = parse("(a => b, 100ns)", ab);
  ClauseMonitor m(encode(p));
  EXPECT_FALSE(m.deadline().has_value());
  m.observe(*ab.lookup("a"), sim::Time::ns(10));
  ASSERT_TRUE(m.deadline().has_value());
  EXPECT_EQ(*m.deadline(), sim::Time::ns(110));
  m.poll(sim::Time::ns(200));
  EXPECT_EQ(m.verdict(), mon::Verdict::Violated);
}

TEST(ViaPslMonitor, ResetRestoresInitialState) {
  spec::Alphabet ab;
  auto p = parse("(n << i, true)", ab);
  ClauseMonitor m(encode(p));
  run_monitor(m, trace_of("i", ab));
  EXPECT_EQ(m.verdict(), mon::Verdict::Violated);
  m.reset();
  EXPECT_EQ(m.verdict(), mon::Verdict::Monitoring);
  run_monitor(m, trace_of("n i", ab));
  EXPECT_EQ(m.verdict(), mon::Verdict::Monitoring);
}

}  // namespace
}  // namespace loom::psl

#include <gtest/gtest.h>

#include "psl/evaluator.hpp"
#include "psl/formula.hpp"

namespace loom::psl {
namespace {

const std::vector<std::string> kNames = {"a", "b", "c", "i"};
constexpr spec::Name A = 0, B = 1, C = 2, I = 3;

TEST(Formula, SizesCountNodes) {
  EXPECT_EQ(size(f_atom(A)), 1u);
  EXPECT_EQ(size(f_not(f_atom(A))), 2u);
  EXPECT_EQ(size(f_and(f_atom(A), f_atom(B))), 3u);
  // G(a -> X(!a U! i)) : G, ->, a, X, U!, !, a, i = 8 nodes
  auto maxone = f_always(
      f_implies(f_atom(A), f_next(f_until(f_not(f_atom(A)), f_atom(I)))));
  EXPECT_EQ(size(maxone), 8u);
  EXPECT_EQ(temporal_size(maxone), 3u);  // G, X, U!
}

TEST(Formula, AnyOfBuildsDisjunction) {
  EXPECT_EQ(f_any_of({})->op, Op::False);
  EXPECT_EQ(f_any_of({A})->op, Op::Atom);
  auto d = f_any_of({A, B, C});
  EXPECT_EQ(size(d), 5u);  // a||b||c : 3 atoms + 2 ors
  EXPECT_EQ(temporal_size(d), 0u);
}

TEST(Formula, PrinterRendersPslSyntax) {
  auto f = f_always(
      f_implies(f_atom(A), f_next(f_until(f_not(f_atom(A)), f_atom(I)))));
  EXPECT_EQ(to_string(f, kNames), "always((a -> next((!a until! i))))");
  EXPECT_EQ(to_string(f_not(f_and(f_atom(A), f_atom(B))), kNames),
            "!(a && b)");
  EXPECT_EQ(to_string(f_or(f_true(), f_false()), kNames), "(true || false)");
  EXPECT_EQ(to_string(f_eventually(f_atom(C)), kNames), "eventually(c)");
}

// --- evaluator semantics on finite words ---

using Word = std::vector<spec::Name>;

TEST(Evaluator, AtomsAndBooleans) {
  EXPECT_TRUE(eval(f_atom(A), {A}));
  EXPECT_FALSE(eval(f_atom(A), {B}));
  EXPECT_FALSE(eval(f_atom(A), {}));  // no position 0
  EXPECT_TRUE(eval(f_true(), {}));
  EXPECT_FALSE(eval(f_false(), {}));
  EXPECT_TRUE(eval(f_not(f_atom(A)), {B}));
  EXPECT_TRUE(eval(f_and(f_atom(A), f_not(f_atom(B))), {A}));
  EXPECT_TRUE(eval(f_implies(f_atom(A), f_atom(B)), {C}));  // vacuous
}

TEST(Evaluator, NextIsStrong) {
  EXPECT_TRUE(eval(f_next(f_atom(B)), {A, B}));
  EXPECT_FALSE(eval(f_next(f_atom(B)), {A}));  // no next position
  EXPECT_FALSE(eval(f_next(f_atom(B)), {A, C}));
}

TEST(Evaluator, UntilIsStrong) {
  // a U! b
  auto f = f_until(f_atom(A), f_atom(B));
  EXPECT_TRUE(eval(f, {B}));
  EXPECT_TRUE(eval(f, {A, B}));
  EXPECT_TRUE(eval(f, {A, A, B, C}));
  EXPECT_FALSE(eval(f, {A, A}));     // b never occurs
  EXPECT_FALSE(eval(f, {A, C, B}));  // a fails before b
  EXPECT_FALSE(eval(f, {}));
}

TEST(Evaluator, AlwaysAndEventually) {
  EXPECT_TRUE(eval(f_always(f_not(f_atom(I))), {A, B, C}));
  EXPECT_FALSE(eval(f_always(f_not(f_atom(I))), {A, I}));
  EXPECT_TRUE(eval(f_always(f_atom(A)), {}));  // vacuous on empty word
  EXPECT_TRUE(eval(f_eventually(f_atom(C)), {A, B, C}));
  EXPECT_FALSE(eval(f_eventually(f_atom(C)), {A, B}));
}

TEST(Evaluator, MaxOneClauseSemantics) {
  // G(a -> X(!a U! i)): no two a's without an i in between.
  auto f = f_always(
      f_implies(f_atom(A), f_next(f_until(f_not(f_atom(A)), f_atom(I)))));
  EXPECT_TRUE(eval(f, {A, I}));
  EXPECT_TRUE(eval(f, {A, B, I}));
  EXPECT_TRUE(eval(f, {A, I, A, I}));
  EXPECT_FALSE(eval(f, {A, A, I}));
  EXPECT_FALSE(eval(f, {A, B, A, I}));
  // Strong until: an a with no following i at all is false.
  EXPECT_FALSE(eval(f, {A, B}));
}

TEST(Evaluator, BeforeClauseSemantics) {
  // !i U! a: i forbidden until a occurs (and a must occur).
  auto f = f_until(f_not(f_atom(I)), f_atom(A));
  EXPECT_TRUE(eval(f, {A, I}));
  EXPECT_TRUE(eval(f, {B, A}));
  EXPECT_FALSE(eval(f, {I, A}));
  EXPECT_FALSE(eval(f, {B, B}));
}

TEST(Evaluator, OrderClauseSemantics) {
  // G(b -> (!a U! i)): once b occurred, a may not reoccur before i.
  auto f = f_always(f_implies(f_atom(B), f_until(f_not(f_atom(A)), f_atom(I))));
  EXPECT_TRUE(eval(f, {A, B, I}));
  EXPECT_FALSE(eval(f, {A, B, A, I}));
  EXPECT_TRUE(eval(f, {A, B, I, A, B, I}));
}

}  // namespace
}  // namespace loom::psl

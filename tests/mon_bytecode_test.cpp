// The bytecode VM backend's lockdown wall: the compiler's instruction
// stream is pinned by golden disassembly (so opcode layout changes are a
// conscious diff, not an accident), and the interpreter is differentially
// fuzzed against the Drct monitors it compiles from — verdicts, violation
// reports (reason strings included), the Figure-6 op/event/max-ops
// accounting and the space bits must match event for event, through both
// MonitorModule batch policies, at random batch cut points, and lane for
// lane through VmLaneBatch's block-lockstep.  ViaPSL rides
// along as the relational cross-check: a clause-network rejection must
// always be confirmed by the VM (no false alarms, psl_equivalence_test's
// relation 1 per prefix).
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "mon/bytecode.hpp"
#include "mon/compiled.hpp"
#include "mon/monitor_module.hpp"
#include "mon/monitors.hpp"
#include "mon/snapshot.hpp"
#include "mon/vm.hpp"
#include "psl/clause_monitor.hpp"
#include "sim/scheduler.hpp"
#include "support/rng.hpp"
#include "testing.hpp"

namespace loom::mon {
namespace {

// --- golden disassembly ----------------------------------------------------

struct Golden {
  const char* source;
  const char* listing;
};

// The exact compiler output per property shape.  A failing diff here means
// the instruction layout changed: update the listing *and* re-run the fuzz
// suites below — they are what proves the new layout still executes the
// Drct semantics bit for bit.
constexpr Golden kGolden[] = {
    {"(n << i, true)",
     "vm antecedent repeated=1 fragments=1 ranges=1 names=64 space=9\n"
     "pool:\n"
     "  k0: [1,1] conj\n"
     "frags:\n"
     "  f0: r0..r0 conj\n"
     "ranges:\n"
     "  r0: n=#0 k0\n"
     "code:\n"
     "   0: retire.if       holds|violated\n"
     "   1: filter\n"
     "   2: dispatch\n"
     "   3: frag.step       f0 ok->4 none->5 err->7\n"
     "   4: complete.ante\n"
     "   5: note.progress\n"
     "   6: halt\n"
     "   7: latch.violation\n"
     "   8: halt\n"},
    {"(({a, b, c}, &) << s, false)",
     "vm antecedent repeated=0 fragments=1 ranges=3 names=64 space=17\n"
     "pool:\n"
     "  k0: [1,1] conj\n"
     "frags:\n"
     "  f0: r0..r2 conj\n"
     "ranges:\n"
     "  r0: n=#0 k0\n"
     "  r1: n=#1 k0\n"
     "  r2: n=#2 k0\n"
     "code:\n"
     "   0: retire.if       holds|violated\n"
     "   1: filter\n"
     "   2: dispatch\n"
     "   3: frag.step       f0 ok->4 none->5 err->7\n"
     "   4: complete.ante\n"
     "   5: note.progress\n"
     "   6: halt\n"
     "   7: latch.violation\n"
     "   8: halt\n"},
    {"(({n1, n2}, &) < ({n3[2,8], n4}, |) < n5 << i, true)",
     "vm antecedent repeated=1 fragments=3 ranges=5 names=64 space=33\n"
     "pool:\n"
     "  k0: [1,1] conj\n"
     "  k1: [2,8] disj\n"
     "  k2: [1,1] disj\n"
     "frags:\n"
     "  f0: r0..r1 conj\n"
     "  f1: r2..r3 disj\n"
     "  f2: r4..r4 conj\n"
     "ranges:\n"
     "  r0: n=#0 k0\n"
     "  r1: n=#1 k0\n"
     "  r2: n=#2 k1\n"
     "  r3: n=#3 k2\n"
     "  r4: n=#4 k0\n"
     "code:\n"
     "   0: retire.if       holds|violated\n"
     "   1: filter\n"
     "   2: dispatch\n"
     "   3: frag.step       f0 ok->6 none->9 err->11\n"
     "   4: frag.step       f1 ok->7 none->9 err->11\n"
     "   5: frag.step       f2 ok->8 none->9 err->11\n"
     "   6: advance         f1 ->9\n"
     "   7: advance         f2 ->9\n"
     "   8: complete.ante\n"
     "   9: note.progress\n"
     "  10: halt\n"
     "  11: latch.violation\n"
     "  12: halt\n"},
    {"(p[2,3] => q[1,4] < r, 10us)",
     "vm timed bound=10 us fragments=3 ranges=3 names=64 space=155\n"
     "pool:\n"
     "  k0: [2,3] conj\n"
     "  k1: [1,4] conj\n"
     "  k2: [1,1] conj\n"
     "frags:\n"
     "  f0: r0..r0 conj min-time\n"
     "  f1: r1..r1 conj\n"
     "  f2: r2..r2 conj min-time\n"
     "ranges:\n"
     "  r0: n=#0 k0\n"
     "  r1: n=#1 k1\n"
     "  r2: n=#2 k2\n"
     "code:\n"
     "   0: retire.if       violated\n"
     "   1: filter\n"
     "   2: deadline.guard\n"
     "   3: dispatch\n"
     "   4: frag.step       f0 ok->7 none->10 err->13\n"
     "   5: frag.step       f1 ok->8 none->10 err->13\n"
     "   6: frag.step       f2 ok->9 none->10 err->13\n"
     "   7: advance         f1 ->10\n"
     "   8: advance         f2 ->10\n"
     "   9: complete.timed\n"
     "  10: update.timing\n"
     "  11: note.progress\n"
     "  12: halt\n"
     "  13: latch.violation\n"
     "  14: halt\n"},
};

TEST(MonBytecodeDisasm, GoldenListingsPerPropertyShape) {
  for (const auto& g : kGolden) {
    spec::Alphabet ab;
    const spec::Property p = loom::testing::parse(g.source, ab);
    const auto program = compile_vm(p);
    EXPECT_EQ(disassemble(*program), g.listing) << g.source;
  }
}

TEST(MonBytecodeDisasm, CompileIsAPureFunctionOfTheProperty) {
  // Two compilations of the same property — one with the caller's plan,
  // one planning internally — disassemble identically, which is what lets
  // the campaign's legacy per-unit path rebuild byte-identical programs.
  spec::Alphabet ab;
  const spec::Property p = loom::testing::parse(
      "(({n1, n2}, &) < ({n3[2,8], n4}, |) < n5 << i, true)", ab);
  const auto internal = compile_vm(p);
  const auto shared_plan = std::make_shared<const spec::OrderingPlan>(
      spec::plan_antecedent(p.antecedent()));
  const auto external = compile_vm(p, shared_plan);
  EXPECT_EQ(disassemble(*internal), disassemble(*external));
  EXPECT_EQ(internal->code.size(), external->code.size());
  EXPECT_EQ(internal->space_bits, external->space_bits);
}

// --- differential fuzz: VM ≡ Drct ≡ (relationally) ViaPSL -----------------

struct Case {
  const char* label;
  const char* source;
};

constexpr Case kCases[] = {
    {"antecedent-repeated", "(n << i, true)"},
    {"antecedent-retiring", "(({a, b, c}, &) << s, false)"},
    {"antecedent-ranged",
     "(({n1, n2}, &) < ({n3[2,8], n4}, |) < n5 << i, true)"},
    {"timed", "(p[2,3] => q[1,4] < r, 10us)"},
};

std::vector<spec::Name> names_of(const spec::Property& p, spec::Alphabet& ab) {
  std::vector<spec::Name> names;
  p.alphabet().for_each(
      [&](std::size_t n) { names.push_back(static_cast<spec::Name>(n)); });
  names.push_back(ab.name("noise_x"));
  names.push_back(ab.name("noise_y"));
  return names;
}

spec::Trace fuzz_trace(const std::vector<spec::Name>& names,
                       support::Rng& rng, sim::Time start = sim::Time()) {
  spec::Trace t;
  const std::size_t len = rng.below(40);
  sim::Time now = start;
  for (std::size_t i = 0; i < len; ++i) {
    now += sim::Time::ns(1 + rng.below(2000));
    t.push_back({names[rng.below(names.size())], now});
  }
  return t;
}

void expect_same_outcome(Monitor& vm, Monitor& drct, const std::string& what) {
  EXPECT_EQ(vm.verdict(), drct.verdict()) << what;
  ASSERT_EQ(vm.violation().has_value(), drct.violation().has_value()) << what;
  if (vm.violation() && drct.violation()) {
    EXPECT_EQ(vm.violation()->event_ordinal, drct.violation()->event_ordinal)
        << what;
    EXPECT_EQ(vm.violation()->time, drct.violation()->time) << what;
    EXPECT_EQ(vm.violation()->name, drct.violation()->name) << what;
    EXPECT_EQ(vm.violation()->reason, drct.violation()->reason) << what;
  }
  EXPECT_EQ(vm.stats().ops, drct.stats().ops) << what;
  EXPECT_EQ(vm.stats().events, drct.stats().events) << what;
  EXPECT_EQ(vm.stats().max_ops_per_event, drct.stats().max_ops_per_event)
      << what;
  EXPECT_EQ(vm.space_bits(), drct.space_bits()) << what;
}

TEST(MonBytecodeFuzz, VmMatchesDrctEventForEventAndViaPslNeverLeads) {
  for (const auto& c : kCases) {
    spec::Alphabet ab;
    const spec::Property p = loom::testing::parse(c.source, ab);
    const auto names = names_of(p, ab);
    const auto program = compile_vm(p);
    const auto encoding =
        std::make_shared<const psl::Encoding>(psl::encode(p, 2000000, &ab));

    for (std::uint64_t trial = 0; trial < 80; ++trial) {
      support::Rng rng = support::Rng::stream(0xB17E + trial, 5);
      const spec::Trace trace = fuzz_trace(names, rng);
      const sim::Time end =
          trace.empty() ? sim::Time::zero() : trace.back().time;

      VmMonitor vm(program);
      auto drct = make_monitor(p);
      psl::ClauseMonitor viapsl(encoding);
      for (std::size_t i = 0; i < trace.size(); ++i) {
        vm.observe(trace[i].name, trace[i].time);
        drct->observe(trace[i].name, trace[i].time);
        viapsl.observe(trace[i].name, trace[i].time);
        const std::string what = std::string(c.label) + " trial " +
                                 std::to_string(trial) + " event " +
                                 std::to_string(i);
        EXPECT_EQ(vm.verdict(), drct->verdict()) << what;
        // Relational cross-check: the clause network never rejects a
        // prefix the direct construction accepts.
        if (viapsl.verdict() == Verdict::Violated) {
          EXPECT_EQ(vm.verdict(), Verdict::Violated) << what << " [viapsl]";
        }
      }
      vm.finish(end);
      drct->finish(end);
      viapsl.finish(end);
      const std::string what = std::string(c.label) + " trial " +
                               std::to_string(trial) + " [finish]";
      expect_same_outcome(vm, *drct, what);
      if (viapsl.verdict() == Verdict::Violated) {
        EXPECT_EQ(vm.verdict(), Verdict::Violated) << what << " [viapsl]";
      }
    }
  }
}

TEST(MonBytecodeFuzz, ObserveBatchAtRandomCutsEqualsTheEventLoop) {
  // The devirtualized VmMonitor::observe_batch over arbitrary slice splits
  // must be indistinguishable from the per-event loop — the replay cache's
  // batched path depends on exactly this.
  for (const auto& c : kCases) {
    spec::Alphabet ab;
    const spec::Property p = loom::testing::parse(c.source, ab);
    const auto names = names_of(p, ab);
    const auto program = compile_vm(p);

    for (std::uint64_t trial = 0; trial < 40; ++trial) {
      support::Rng rng = support::Rng::stream(0xBA7C + trial, 5);
      const spec::Trace trace = fuzz_trace(names, rng);
      const sim::Time end =
          trace.empty() ? sim::Time::zero() : trace.back().time;

      VmMonitor looped(program);
      for (const auto& ev : trace) looped.observe(ev.name, ev.time);
      looped.finish(end);

      VmMonitor batched(program);
      std::size_t done = 0;
      while (done < trace.size()) {
        const std::size_t cut =
            done + 1 + rng.below(trace.size() - done);
        batched.observe_batch(trace.data() + done, trace.data() + cut);
        done = cut;
      }
      batched.finish(end);
      expect_same_outcome(batched, looped,
                          std::string(c.label) + " trial " +
                              std::to_string(trial) + " [batch-cuts]");
    }
  }
}

TEST(MonBytecodeFuzz, ResetReusesTheFrameBitForBit) {
  // One VM frame reset between fuzzed traces equals a fresh frame per
  // trace — the pooled-monitor shape of the campaign shards.
  for (const auto& c : kCases) {
    spec::Alphabet ab;
    const spec::Property p = loom::testing::parse(c.source, ab);
    const auto names = names_of(p, ab);
    const auto program = compile_vm(p);
    VmMonitor pooled(program);
    for (std::uint64_t trial = 0; trial < 30; ++trial) {
      support::Rng rng = support::Rng::stream(0x4E5E + trial, 9);
      const spec::Trace trace = fuzz_trace(names, rng);
      const sim::Time end =
          trace.empty() ? sim::Time::zero() : trace.back().time;
      pooled.reset();
      VmMonitor fresh(program);
      for (const auto& ev : trace) {
        pooled.observe(ev.name, ev.time);
        fresh.observe(ev.name, ev.time);
      }
      pooled.finish(end);
      fresh.finish(end);
      expect_same_outcome(pooled, fresh,
                          std::string(c.label) + " trial " +
                              std::to_string(trial) + " [reset-reuse]");
    }
  }
}

// --- MonitorModule batch policies ------------------------------------------

TEST(MonBytecodeBatch, BothModulePoliciesMatchDrctHostedTheSameWay) {
  // Host a VM monitor and a Drct monitor in identical MonitorModules and
  // replay random slice splits under each BatchPolicy: verdicts, stats and
  // callback counts must agree policy for policy.
  using Policy = MonitorModule::BatchPolicy;
  for (const auto& c : kCases) {
    spec::Alphabet ab;
    const spec::Property p = loom::testing::parse(c.source, ab);
    const auto names = names_of(p, ab);
    const auto program = compile_vm(p);

    for (const Policy policy : {Policy::StopAtViolation, Policy::ReplayAll}) {
      for (std::uint64_t trial = 0; trial < 30; ++trial) {
        support::Rng rng = support::Rng::stream(0x90DE + trial, 13);
        const spec::Trace trace = fuzz_trace(names, rng);
        const std::size_t cut =
            trace.empty() ? 0 : rng.below(trace.size() + 1);
        const sim::Time end =
            trace.empty() ? sim::Time::zero() : trace.back().time;
        const std::string what =
            std::string(c.label) + " trial " + std::to_string(trial) +
            (policy == Policy::ReplayAll ? " [replay-all]" : " [stop]");

        VmMonitor vm(program);
        auto drct = make_monitor(p);
        sim::Scheduler sched;
        MonitorModule vm_host(sched, "vm", vm, ab);
        MonitorModule drct_host(sched, "drct", *drct, ab);
        vm_host.set_arm_watchdogs(false);
        drct_host.set_arm_watchdogs(false);
        std::size_t vm_fires = 0;
        std::size_t drct_fires = 0;
        vm_host.on_violation([&](const Violation&) { ++vm_fires; });
        drct_host.on_violation([&](const Violation&) { ++drct_fires; });

        // Two slices around a random cut, same policy both hosts.
        spec::Trace head(trace.begin(), trace.begin() + cut);
        spec::Trace tail(trace.begin() + cut, trace.end());
        vm_host.observe_batch(head, policy);
        vm_host.observe_batch(tail, policy);
        drct_host.observe_batch(head, policy);
        drct_host.observe_batch(tail, policy);
        vm.finish(end);
        drct->finish(end);

        expect_same_outcome(vm, *drct, what);
        EXPECT_EQ(vm_fires, drct_fires) << what;
      }
    }
  }
}

// --- VmLaneBatch ≡ independent VmMonitors ----------------------------------

TEST(MonBytecodeLanes, LockstepLanesEqualIndependentMonitors) {
  for (const auto& c : kCases) {
    spec::Alphabet ab;
    const spec::Property p = loom::testing::parse(c.source, ab);
    const auto names = names_of(p, ab);
    const auto program = compile_vm(p);

    constexpr std::size_t kLanes = 8;
    VmLaneBatch lanes(program, kLanes);
    ASSERT_EQ(lanes.lanes(), kLanes);

    for (std::uint64_t round = 0; round < 6; ++round) {
      // Per-lane traces of deliberately different lengths: exhausted lanes
      // must sit out the lockstep tail untouched.
      std::vector<spec::Trace> traces;
      for (std::size_t l = 0; l < kLanes; ++l) {
        support::Rng rng = support::Rng::stream(0x1A9E + round * kLanes + l, 3);
        traces.push_back(fuzz_trace(names, rng));
      }
      std::vector<const spec::Trace*> ptrs;
      for (const auto& t : traces) ptrs.push_back(&t);

      for (std::size_t l = 0; l < kLanes; ++l) lanes.reset(l);
      lanes.run(ptrs);

      for (std::size_t l = 0; l < kLanes; ++l) {
        const sim::Time end =
            traces[l].empty() ? sim::Time::zero() : traces[l].back().time;
        lanes.finish(l, end);

        VmMonitor solo(program);
        for (const auto& ev : traces[l]) solo.observe(ev.name, ev.time);
        solo.finish(end);

        const std::string what = std::string(c.label) + " round " +
                                 std::to_string(round) + " lane " +
                                 std::to_string(l);
        EXPECT_EQ(lanes.verdict(l), solo.verdict()) << what;
        ASSERT_EQ(lanes.violation(l).has_value(), solo.violation().has_value())
            << what;
        if (lanes.violation(l) && solo.violation()) {
          EXPECT_EQ(lanes.violation(l)->event_ordinal,
                    solo.violation()->event_ordinal)
              << what;
          EXPECT_EQ(lanes.violation(l)->time, solo.violation()->time) << what;
          EXPECT_EQ(lanes.violation(l)->name, solo.violation()->name) << what;
          EXPECT_EQ(lanes.violation(l)->reason, solo.violation()->reason)
              << what;
        }
        EXPECT_EQ(lanes.stats(l).ops, solo.stats().ops) << what;
        EXPECT_EQ(lanes.stats(l).events, solo.stats().events) << what;
        EXPECT_EQ(lanes.stats(l).max_ops_per_event,
                  solo.stats().max_ops_per_event)
            << what;
        EXPECT_EQ(lanes.space_bits(), solo.space_bits()) << what;
      }
    }
  }
}

TEST(MonBytecodeLanes, PerLaneBatchSlicesMatchTheLockstepRun) {
  // observe_batch on individual lanes at arbitrary cuts lands on the same
  // bytes as run()'s block-lockstep sweep.
  spec::Alphabet ab;
  const spec::Property p = loom::testing::parse(
      "(({n1, n2}, &) < ({n3[2,8], n4}, |) < n5 << i, true)", ab);
  const auto names = names_of(p, ab);
  const auto program = compile_vm(p);

  constexpr std::size_t kLanes = 4;
  std::vector<spec::Trace> traces;
  for (std::size_t l = 0; l < kLanes; ++l) {
    support::Rng rng = support::Rng::stream(0xC4A0 + l, 17);
    traces.push_back(fuzz_trace(names, rng));
  }
  std::vector<const spec::Trace*> ptrs;
  for (const auto& t : traces) ptrs.push_back(&t);

  VmLaneBatch lockstep(program, kLanes);
  lockstep.run(ptrs);

  VmLaneBatch sliced(program, kLanes);
  support::Rng rng = support::Rng::stream(0xC4A0, 19);
  for (std::size_t l = 0; l < kLanes; ++l) {
    std::size_t done = 0;
    while (done < traces[l].size()) {
      const std::size_t cut = done + 1 + rng.below(traces[l].size() - done);
      sliced.observe_batch(l, traces[l].data() + done,
                           traces[l].data() + cut);
      done = cut;
    }
  }
  for (std::size_t l = 0; l < kLanes; ++l) {
    const sim::Time end =
        traces[l].empty() ? sim::Time::zero() : traces[l].back().time;
    lockstep.finish(l, end);
    sliced.finish(l, end);
    EXPECT_EQ(lockstep.verdict(l), sliced.verdict(l)) << "lane " << l;
    EXPECT_EQ(lockstep.stats(l).ops, sliced.stats(l).ops) << "lane " << l;
    EXPECT_EQ(lockstep.violation(l).has_value(),
              sliced.violation(l).has_value())
        << "lane " << l;
  }
}

TEST(MonBytecodeLanes, MidWaveRestoreResumesLockstepBitForBit) {
  // The campaign's wave shape: each lane is either reset fresh or restored
  // from a snapshot taken at a random cut of its own trace, then the whole
  // wave resumes in block-lockstep over per-lane suffixes.
  // Every lane — restored or not — must land on the same bytes as a solo
  // VmMonitor that ran its full trace without interruption.  Snapshots are
  // written by a *solo* monitor and restored into a *lane*, crossing the
  // shared format exactly the way a checkpoint-ladder rung does.
  for (const auto& c : kCases) {
    spec::Alphabet ab;
    const spec::Property p = loom::testing::parse(c.source, ab);
    const auto names = names_of(p, ab);
    const auto program = compile_vm(p);

    for (const std::size_t width : {std::size_t{1}, std::size_t{2},
                                    std::size_t{3}, std::size_t{8},
                                    std::size_t{13}}) {
      VmLaneBatch lanes(program, width);
      for (std::uint64_t round = 0; round < 4; ++round) {
        support::Rng rng =
            support::Rng::stream(0x5A7E + round * 131 + width, 7);
        std::vector<spec::Trace> traces;
        std::vector<std::size_t> starts;
        std::vector<std::unique_ptr<VmMonitor>> solos;
        for (std::size_t l = 0; l < width; ++l) {
          traces.push_back(fuzz_trace(names, rng));
          auto solo = std::make_unique<VmMonitor>(program);
          const spec::Trace& t = traces.back();
          if (!t.empty() && rng.below(2) != 0) {
            // Restored lane: the solo runs a random prefix, a snapshot of
            // it primes the lane, and the lane owes only the suffix.
            const std::size_t cut = 1 + rng.below(t.size());
            for (std::size_t i = 0; i < cut; ++i) {
              solo->observe(t[i].name, t[i].time);
            }
            Snapshot snap;
            solo->snapshot(snap);
            lanes.restore(l, snap);
            starts.push_back(cut);
          } else {
            lanes.reset(l);
            starts.push_back(0);
          }
          solos.push_back(std::move(solo));
        }
        std::vector<const spec::Trace*> ptrs;
        for (const auto& t : traces) ptrs.push_back(&t);

        lanes.run(ptrs, starts);

        for (std::size_t l = 0; l < width; ++l) {
          const spec::Trace& t = traces[l];
          for (std::size_t i = starts[l]; i < t.size(); ++i) {
            solos[l]->observe(t[i].name, t[i].time);
          }
          const sim::Time end =
              t.empty() ? sim::Time::zero() : t.back().time;
          lanes.finish(l, end);
          solos[l]->finish(end);
          const std::string what = std::string(c.label) + " width " +
                                   std::to_string(width) + " round " +
                                   std::to_string(round) + " lane " +
                                   std::to_string(l) + " start " +
                                   std::to_string(starts[l]);
          EXPECT_EQ(lanes.verdict(l), solos[l]->verdict()) << what;
          ASSERT_EQ(lanes.violation(l).has_value(),
                    solos[l]->violation().has_value())
              << what;
          if (lanes.violation(l) && solos[l]->violation()) {
            EXPECT_EQ(lanes.violation(l)->event_ordinal,
                      solos[l]->violation()->event_ordinal)
                << what;
            EXPECT_EQ(lanes.violation(l)->reason,
                      solos[l]->violation()->reason)
                << what;
          }
          EXPECT_EQ(lanes.stats(l).ops, solos[l]->stats().ops) << what;
          EXPECT_EQ(lanes.stats(l).events, solos[l]->stats().events) << what;
          EXPECT_EQ(lanes.stats(l).max_ops_per_event,
                    solos[l]->stats().max_ops_per_event)
              << what;
        }
      }
    }
  }
}

TEST(MonBytecodeLanes, PartialWavesLeaveUnlistedLanesUntouched) {
  // run(traces, starts) with fewer traces than lanes — the campaign's
  // trailing flush — steps only the listed lanes; the remaining frames
  // must stay exactly as reset() left them, ready for the next wave.
  spec::Alphabet ab;
  const spec::Property p = loom::testing::parse(
      "(({n1, n2}, &) < ({n3[2,8], n4}, |) < n5 << i, true)", ab);
  const auto names = names_of(p, ab);
  const auto program = compile_vm(p);

  constexpr std::size_t kLanes = 8;
  VmLaneBatch lanes(program, kLanes);
  for (std::size_t l = 0; l < kLanes; ++l) lanes.reset(l);
  // reset() charges the activation ops a fresh monitor carries; that is
  // the exact state an untouched lane must still show after the wave.
  const std::uint64_t ops_after_reset = lanes.stats(0).ops;

  constexpr std::size_t kUsed = 3;
  support::Rng rng = support::Rng::stream(0xF111, 11);
  std::vector<spec::Trace> traces;
  for (std::size_t l = 0; l < kUsed; ++l) {
    traces.push_back(fuzz_trace(names, rng));
  }
  std::vector<const spec::Trace*> ptrs;
  for (const auto& t : traces) ptrs.push_back(&t);
  const std::vector<std::size_t> starts(kUsed, 0);

  lanes.run(ptrs, starts);

  for (std::size_t l = 0; l < kUsed; ++l) {
    EXPECT_EQ(lanes.stats(l).events, traces[l].size()) << "lane " << l;
  }
  for (std::size_t l = kUsed; l < kLanes; ++l) {
    EXPECT_EQ(lanes.stats(l).events, 0u) << "lane " << l;
    EXPECT_EQ(lanes.stats(l).ops, ops_after_reset) << "lane " << l;
    EXPECT_EQ(lanes.verdict(l), Verdict::Monitoring) << "lane " << l;
  }
}

}  // namespace
}  // namespace loom::mon

// Shared helpers for the LOOM test suites.
#pragma once

#include <gtest/gtest.h>

#include <algorithm>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "abv/campaign.hpp"
#include "mon/monitors.hpp"
#include "spec/parser.hpp"
#include "spec/reference.hpp"
#include "spec/wellformed.hpp"

namespace loom::spec {

/// GTest printer: containers of TimedEvent render element-wise as
/// "#id@<ps>ps" instead of byte dumps (the interned text needs an
/// Alphabet; see loom::testing::traces_equal for the named form).
inline void PrintTo(const TimedEvent& ev, std::ostream* os) {
  *os << "#" << ev.name << "@" << ev.time.picoseconds() << "ps";
}

}  // namespace loom::spec

namespace loom::testing {

/// Parses a property, asserting success; aborts the test on failure.
inline spec::Property parse(const std::string& source, spec::Alphabet& ab) {
  support::DiagnosticSink sink;
  auto p = spec::parse_property(source, ab, sink);
  if (!p) {
    throw std::runtime_error("parse failed for: " + source + "\n" +
                             sink.to_string());
  }
  return *p;
}

/// Builds a trace from a whitespace-separated list of names; events are
/// spaced `step_ns` apart starting at t = step_ns.
inline spec::Trace trace_of(const std::string& names, spec::Alphabet& ab,
                            std::uint64_t step_ns = 10) {
  spec::Trace t;
  std::istringstream in(names);
  std::string w;
  std::uint64_t i = 1;
  while (in >> w) {
    t.push_back({ab.name(w), sim::Time::ns(step_ns * i)});
    ++i;
  }
  return t;
}

/// Builds a trace with explicit "name@ns" stamps, e.g. "a@10 b@25".
inline spec::Trace timed_trace_of(const std::string& entries,
                                  spec::Alphabet& ab) {
  spec::Trace t;
  std::istringstream in(entries);
  std::string w;
  while (in >> w) {
    const auto at = w.find('@');
    const std::string name = w.substr(0, at);
    const std::uint64_t ns = std::stoull(w.substr(at + 1));
    t.push_back({ab.name(name), sim::Time::ns(ns)});
  }
  return t;
}

/// Runs a Drct monitor over a trace and finishes it at `end_time` (defaults
/// to the last event's time).
inline mon::Verdict run_monitor(mon::Monitor& m, const spec::Trace& trace,
                                std::optional<sim::Time> end_time = {}) {
  for (const auto& ev : trace) m.observe(ev.name, ev.time);
  sim::Time end = end_time.value_or(
      trace.empty() ? sim::Time::zero() : trace.back().time);
  m.finish(end);
  return m.verdict();
}

/// Renders one event as "name@<ps>ps", falling back to "#id" for ids the
/// alphabet does not know (e.g. traces parsed into a different alphabet).
inline std::string render_event(const spec::TimedEvent& ev,
                                const spec::Alphabet& ab) {
  std::ostringstream os;
  if (ev.name < ab.size()) {
    os << ab.text(ev.name);
  } else {
    os << "#" << ev.name;
  }
  os << "@" << ev.time.picoseconds() << "ps";
  return os.str();
}

/// Element-wise trace comparison: the failure message names the first
/// diverging event (or the first surplus event of the longer trace)
/// instead of an opaque boolean.
inline ::testing::AssertionResult traces_equal(const spec::Trace& actual,
                                               const spec::Trace& expected,
                                               const spec::Alphabet& ab) {
  const std::size_t n = std::min(actual.size(), expected.size());
  for (std::size_t i = 0; i < n; ++i) {
    if (!(actual[i] == expected[i])) {
      return ::testing::AssertionFailure()
             << "traces diverge at event " << i << ": actual "
             << render_event(actual[i], ab) << " vs expected "
             << render_event(expected[i], ab);
    }
  }
  if (actual.size() != expected.size()) {
    const auto& longer = actual.size() > expected.size() ? actual : expected;
    return ::testing::AssertionFailure()
           << "trace sizes differ: actual " << actual.size()
           << " vs expected " << expected.size() << "; first surplus event ["
           << n << "] = " << render_event(longer[n], ab);
  }
  return ::testing::AssertionSuccess();
}

/// Keeps a forced non-Vm backend runnable under the default wave width:
/// lane_width > 1 with backend=Drct/ViaPSL is a rejected contradiction
/// (run_campaigns throws), so backend grids that legitimately force those
/// backends drop to the scalar path.  The lane grid itself lives in
/// campaign_lane_diff_test.
inline void scalar_lanes_if_forced(abv::CampaignOptions& opt) {
  if (opt.backend == mon::Backend::Drct ||
      opt.backend == mon::Backend::ViaPSL) {
    opt.lane_width = 1;
  }
}

/// Field-wise CampaignResult comparison for the determinism / differential
/// suites: lists every differing field by name.  The trace-cache hit/miss
/// counters and the compiled-plan instance counters are engine
/// diagnostics, deliberately excluded — compare them separately where a
/// test pins them down.  The backend fields of compile_stats are semantic
/// (they name the monitor construction behind the numbers) and do compare.
inline ::testing::AssertionResult results_identical(
    const abv::CampaignResult& a, const abv::CampaignResult& b) {
  std::ostringstream diff;
  const auto field = [&diff](const char* name, auto x, auto y) {
    if (!(x == y)) diff << "  " << name << ": " << x << " vs " << y << "\n";
  };
  field("compile_stats.backend_requested",
        mon::to_string(a.compile_stats.backend_requested),
        mon::to_string(b.compile_stats.backend_requested));
  field("compile_stats.backend_chosen",
        mon::to_string(a.compile_stats.backend_chosen),
        mon::to_string(b.compile_stats.backend_chosen));
  field("traces", a.traces, b.traces);
  field("events", a.events, b.events);
  field("valid_accepted", a.valid_accepted, b.valid_accepted);
  field("oracle_disagreements", a.oracle_disagreements,
        b.oracle_disagreements);
  field("viapsl_false_alarms", a.viapsl_false_alarms, b.viapsl_false_alarms);
  for (std::size_t k = 0; k < 5; ++k) {
    const std::string kind =
        std::string("mutation[") +
        abv::to_string(static_cast<abv::MutationKind>(k)) + "].";
    field((kind + "applied").c_str(), a.mutation[k].applied,
          b.mutation[k].applied);
    field((kind + "invalid").c_str(), a.mutation[k].invalid,
          b.mutation[k].invalid);
    field((kind + "detected").c_str(), a.mutation[k].detected,
          b.mutation[k].detected);
    field((kind + "missed").c_str(), a.mutation[k].missed,
          b.mutation[k].missed);
  }
  // Coverage ratios and the operation accounting compare exactly, not
  // within a tolerance: the shard merges are exact.
  field("alphabet_coverage", a.alphabet_coverage, b.alphabet_coverage);
  field("recognizer_state_coverage", a.recognizer_state_coverage,
        b.recognizer_state_coverage);
  field("monitor_stats.ops", a.monitor_stats.ops, b.monitor_stats.ops);
  field("monitor_stats.events", a.monitor_stats.events,
        b.monitor_stats.events);
  field("monitor_stats.max_ops_per_event", a.monitor_stats.max_ops_per_event,
        b.monitor_stats.max_ops_per_event);
  // Degradation is semantic (worker_retries is not: a retried campaign
  // must compare identical to a clean one, so the retry count stays out).
  field("shard_failures.size()", a.shard_failures.size(),
        b.shard_failures.size());
  if (diff.str().empty()) return ::testing::AssertionSuccess();
  return ::testing::AssertionFailure()
         << "CampaignResult fields differ:\n"
         << diff.str();
}

/// Maps a monitor verdict onto the reference verdict domain.
inline spec::RefVerdict as_ref(mon::Verdict v) {
  switch (v) {
    case mon::Verdict::Violated: return spec::RefVerdict::Rejected;
    case mon::Verdict::Pending: return spec::RefVerdict::Pending;
    case mon::Verdict::Monitoring:
    case mon::Verdict::Holds: return spec::RefVerdict::Accepted;
  }
  return spec::RefVerdict::Accepted;
}

}  // namespace loom::testing

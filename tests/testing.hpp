// Shared helpers for the LOOM test suites.
#pragma once

#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "mon/monitors.hpp"
#include "spec/parser.hpp"
#include "spec/reference.hpp"
#include "spec/wellformed.hpp"

namespace loom::testing {

/// Parses a property, asserting success; aborts the test on failure.
inline spec::Property parse(const std::string& source, spec::Alphabet& ab) {
  support::DiagnosticSink sink;
  auto p = spec::parse_property(source, ab, sink);
  if (!p) {
    throw std::runtime_error("parse failed for: " + source + "\n" +
                             sink.to_string());
  }
  return *p;
}

/// Builds a trace from a whitespace-separated list of names; events are
/// spaced `step_ns` apart starting at t = step_ns.
inline spec::Trace trace_of(const std::string& names, spec::Alphabet& ab,
                            std::uint64_t step_ns = 10) {
  spec::Trace t;
  std::istringstream in(names);
  std::string w;
  std::uint64_t i = 1;
  while (in >> w) {
    t.push_back({ab.name(w), sim::Time::ns(step_ns * i)});
    ++i;
  }
  return t;
}

/// Builds a trace with explicit "name@ns" stamps, e.g. "a@10 b@25".
inline spec::Trace timed_trace_of(const std::string& entries,
                                  spec::Alphabet& ab) {
  spec::Trace t;
  std::istringstream in(entries);
  std::string w;
  while (in >> w) {
    const auto at = w.find('@');
    const std::string name = w.substr(0, at);
    const std::uint64_t ns = std::stoull(w.substr(at + 1));
    t.push_back({ab.name(name), sim::Time::ns(ns)});
  }
  return t;
}

/// Runs a Drct monitor over a trace and finishes it at `end_time` (defaults
/// to the last event's time).
inline mon::Verdict run_monitor(mon::Monitor& m, const spec::Trace& trace,
                                std::optional<sim::Time> end_time = {}) {
  for (const auto& ev : trace) m.observe(ev.name, ev.time);
  sim::Time end = end_time.value_or(
      trace.empty() ? sim::Time::zero() : trace.back().time);
  m.finish(end);
  return m.verdict();
}

/// Maps a monitor verdict onto the reference verdict domain.
inline spec::RefVerdict as_ref(mon::Verdict v) {
  switch (v) {
    case mon::Verdict::Violated: return spec::RefVerdict::Rejected;
    case mon::Verdict::Pending: return spec::RefVerdict::Pending;
    case mon::Verdict::Monitoring:
    case mon::Verdict::Holds: return spec::RefVerdict::Accepted;
  }
  return spec::RefVerdict::Accepted;
}

}  // namespace loom::testing

// Concurrency contract of the per-seed trace cache: hammered from the
// thread pool, every key is inserted exactly once (the factory runs under
// the shard lock), returned references stay stable for the cache's
// lifetime, and the sharded hit/miss counters sum to the exact lookup
// totals after the pool drains.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <vector>

#include "support/thread_pool.hpp"
#include "support/trace_cache.hpp"

namespace loom::support {
namespace {

using Value = std::vector<std::uint64_t>;

Value value_for(std::uint64_t key) { return {key, key * 2 + 1, key ^ 0xffu}; }

TEST(TraceCache, MissThenHitWithStableReference) {
  TraceCache<Value> cache;
  bool inserted = false;
  const Value& first = cache.get_or_emplace(7, [] { return value_for(7); },
                                            &inserted);
  EXPECT_TRUE(inserted);
  EXPECT_EQ(first, value_for(7));

  int factory_calls = 0;
  const Value& second = cache.get_or_emplace(
      7,
      [&factory_calls] {
        ++factory_calls;
        return Value{};
      },
      &inserted);
  EXPECT_FALSE(inserted);
  EXPECT_EQ(factory_calls, 0) << "a hit must not run the factory";
  EXPECT_EQ(&first, &second) << "references must be stable across lookups";

  const auto stats = cache.stats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.lookups(), 2u);
  EXPECT_EQ(cache.size(), 1u);
}

TEST(TraceCache, ShardCountRoundsUpToAPowerOfTwo) {
  EXPECT_EQ(TraceCache<int>(0).shard_count(), 1u);
  EXPECT_EQ(TraceCache<int>(1).shard_count(), 1u);
  EXPECT_EQ(TraceCache<int>(5).shard_count(), 8u);
  EXPECT_EQ(TraceCache<int>(16).shard_count(), 16u);
}

TEST(TraceCache, HammeredFromTheThreadPool) {
  constexpr std::size_t kKeys = 37;        // spills over every shard
  constexpr std::size_t kLookups = 8000;   // ~216 lookups per key
  TraceCache<Value> cache(/*shard_count=*/8);

  std::atomic<std::uint64_t> factory_calls[kKeys] = {};
  std::atomic<const Value*> observed[kKeys] = {};
  std::atomic<std::size_t> mismatches{0};

  ThreadPool pool(8);
  pool.for_each_index(kLookups, [&](std::size_t i) {
    const std::uint64_t key = i % kKeys;
    const Value& v = cache.get_or_emplace(key, [&] {
      factory_calls[key].fetch_add(1, std::memory_order_relaxed);
      return value_for(key);
    });
    if (v != value_for(key)) mismatches.fetch_add(1);
    // Every thread must see the one stored copy: publish the first
    // observed address and compare all later ones against it.
    const Value* expected = nullptr;
    if (!observed[key].compare_exchange_strong(expected, &v) &&
        expected != &v) {
      mismatches.fetch_add(1);
    }
  });

  EXPECT_EQ(mismatches.load(), 0u);
  for (std::size_t k = 0; k < kKeys; ++k) {
    EXPECT_EQ(factory_calls[k].load(), 1u)
        << "key " << k << " must be generated exactly once";
  }
  EXPECT_EQ(cache.size(), kKeys);

  // After wait_idle() (inside for_each_index) the counters are exact:
  // one miss per key, everything else a hit, nothing lost in the merge
  // across shards.
  const auto stats = cache.stats();
  EXPECT_EQ(stats.misses, kKeys);
  EXPECT_EQ(stats.hits, kLookups - kKeys);
  EXPECT_EQ(stats.lookups(), kLookups);
}

TEST(TraceCache, DistinctKeysGetDistinctEntries) {
  TraceCache<Value> cache(2);
  const Value& a = cache.get_or_emplace(1, [] { return value_for(1); });
  const Value& b = cache.get_or_emplace(2, [] { return value_for(2); });
  // Keys that collide on a shard must still be distinct entries.
  const Value& c =
      cache.get_or_emplace(1 + (1ull << 32), [] { return value_for(99); });
  EXPECT_NE(&a, &b);
  EXPECT_NE(&a, &c);
  EXPECT_EQ(a, value_for(1));
  EXPECT_EQ(b, value_for(2));
  EXPECT_EQ(c, value_for(99));
  EXPECT_EQ(cache.size(), 3u);
}

}  // namespace
}  // namespace loom::support

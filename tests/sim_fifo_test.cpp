#include <gtest/gtest.h>

#include <vector>

#include "sim/fifo.hpp"

namespace loom::sim {
namespace {

TEST(Fifo, NonBlockingPutGet) {
  Scheduler sched;
  Fifo<int> fifo(sched, "f", 2);
  EXPECT_TRUE(fifo.empty());
  EXPECT_TRUE(fifo.nb_put(1));
  EXPECT_TRUE(fifo.nb_put(2));
  EXPECT_TRUE(fifo.full());
  EXPECT_FALSE(fifo.nb_put(3));
  EXPECT_EQ(fifo.nb_get(), std::optional<int>(1));
  EXPECT_EQ(fifo.nb_get(), std::optional<int>(2));
  EXPECT_EQ(fifo.nb_get(), std::nullopt);
}

TEST(Fifo, ZeroCapacityIsClampedToOne) {
  Scheduler sched;
  Fifo<int> fifo(sched, "f", 0);
  EXPECT_EQ(fifo.capacity(), 1u);
}

TEST(Fifo, BlockingConsumerWaitsForProducer) {
  Scheduler sched;
  Fifo<int> fifo(sched, "f", 4);
  std::vector<int> received;
  struct Consumer {
    static Process run(Scheduler&, Fifo<int>& fifo,
                       std::vector<int>& received) {
      for (int k = 0; k < 3; ++k) {
        received.push_back(co_await fifo.get());
      }
    }
  };
  struct Producer {
    static Process run(Scheduler& s, Fifo<int>& fifo) {
      for (int k = 1; k <= 3; ++k) {
        co_await s.wait(Time::ns(10));
        co_await fifo.put(k * 11);
      }
    }
  };
  sched.spawn(Consumer::run(sched, fifo, received), "consumer");
  sched.spawn(Producer::run(sched, fifo), "producer");
  sched.run(Time::us(1));
  EXPECT_EQ(received, (std::vector<int>{11, 22, 33}));
  EXPECT_EQ(sched.now(), Time::ns(30));
}

TEST(Fifo, BlockingProducerWaitsForSpace) {
  Scheduler sched;
  Fifo<int> fifo(sched, "f", 1);
  std::vector<Time> put_times;
  struct Producer {
    static Process run(Scheduler& s, Fifo<int>& fifo,
                       std::vector<Time>& put_times) {
      for (int k = 0; k < 3; ++k) {
        co_await fifo.put(k);
        put_times.push_back(s.now());
      }
    }
  };
  struct SlowConsumer {
    static Process run(Scheduler& s, Fifo<int>& fifo) {
      for (int k = 0; k < 3; ++k) {
        co_await s.wait(Time::ns(100));
        (void)co_await fifo.get();
      }
    }
  };
  sched.spawn(Producer::run(sched, fifo, put_times), "producer");
  sched.spawn(SlowConsumer::run(sched, fifo), "consumer");
  sched.run(Time::us(10));
  ASSERT_EQ(put_times.size(), 3u);
  EXPECT_EQ(put_times[0], Time::zero());     // straight in
  EXPECT_EQ(put_times[1], Time::ns(100));    // after the first get
  EXPECT_EQ(put_times[2], Time::ns(200));
  EXPECT_LE(fifo.size(), fifo.capacity());
}

TEST(Fifo, EventsFireOnActivity) {
  Scheduler sched;
  Fifo<int> fifo(sched, "f", 2);
  int writes = 0, reads = 0;
  fifo.data_written_event().on_trigger([&] { ++writes; });
  fifo.data_read_event().on_trigger([&] { ++reads; });
  fifo.nb_put(1);
  fifo.nb_put(2);
  (void)fifo.nb_get();
  sched.run();
  EXPECT_EQ(writes, 1) << "delta notifications coalesce within one cycle";
  EXPECT_EQ(reads, 1);
}

TEST(Fifo, PipelineThroughFifoPreservesOrder) {
  Scheduler sched;
  Fifo<int> fifo(sched, "f", 3);
  std::vector<int> out;
  struct Stage1 {
    static Process run(Scheduler& s, Fifo<int>& fifo) {
      for (int k = 0; k < 20; ++k) {
        co_await s.wait(Time::ns(1 + (k % 3)));
        co_await fifo.put(k);
      }
    }
  };
  struct Stage2 {
    static Process run(Scheduler& s, Fifo<int>& fifo, std::vector<int>& out) {
      for (int k = 0; k < 20; ++k) {
        out.push_back(co_await fifo.get());
        co_await s.wait(Time::ns(2));
      }
    }
  };
  sched.spawn(Stage1::run(sched, fifo), "s1");
  sched.spawn(Stage2::run(sched, fifo, out), "s2");
  sched.run(Time::us(10));
  ASSERT_EQ(out.size(), 20u);
  for (int k = 0; k < 20; ++k) EXPECT_EQ(out[static_cast<std::size_t>(k)], k);
}

}  // namespace
}  // namespace loom::sim

// Differential lockdown of the zero-allocation steady state: a campaign
// run out of per-worker scratch arenas (reusable mutant buffers via
// mutate_into, per-shard monitor pools for valid and mutation units, the
// hoisted batched-replay host, the plan-reusing reference oracle) must be
// byte-for-byte identical to the fresh-allocation engine — for every
// backend, at every thread count, under every cache/batch/plan knob.  Plus
// unit lockdowns of the pieces: mutate_into ≡ mutate under a dirty reused
// scratch, MonitorModule::reset ≡ fresh module, and the cross-campaign
// mon::CompiledPropertyCache (hit/miss accounting, stable references,
// alias rules of the normalized key).
#include <gtest/gtest.h>

#include "abv/campaign.hpp"
#include "mon/compiled.hpp"
#include "mon/monitors.hpp"
#include "sim/scheduler.hpp"
#include "spec/reference.hpp"
#include "testing.hpp"

namespace loom::abv {
namespace {

constexpr mon::Backend kBackends[] = {
    mon::Backend::Auto, mon::Backend::Drct, mon::Backend::ViaPSL,
    mon::Backend::Vm};

constexpr MutationKind kKinds[] = {
    MutationKind::Drop, MutationKind::Duplicate, MutationKind::SwapAdjacent,
    MutationKind::EarlyTrigger, MutationKind::StallDeadline};

struct CampaignRun {
  CampaignResult result;
  std::string report;
};

struct Knobs {
  bool compiled = true;
  bool reuse_traces = true;
  bool batch_replay = true;
};

CampaignRun run_with(const char* source, mon::Backend backend, bool scratch,
                     std::size_t threads, const Knobs& knobs,
                     std::size_t shard_size = 1, bool viapsl = false) {
  // A fresh alphabet per run: runs must not influence each other through
  // interned ids.
  spec::Alphabet ab;
  auto p = loom::testing::parse(source, ab);
  CampaignOptions opt;
  opt.seeds = 4;
  opt.stimuli.rounds = 3;
  opt.stimuli.noise_permille = 100;
  opt.mutants_per_kind = 6;
  opt.check_viapsl = viapsl;
  opt.backend = backend;
  loom::testing::scalar_lanes_if_forced(opt);
  opt.use_compiled_plans = knobs.compiled;
  opt.threads = threads;
  opt.shard_size = shard_size;
  opt.reuse_traces = knobs.reuse_traces;
  opt.batch_replay = knobs.batch_replay;
  opt.reuse_scratch = scratch;
  const CampaignResult r = run_campaign(p, ab, opt);
  return {r, r.report(ab)};
}

class CampaignScratchDiff : public ::testing::TestWithParam<const char*> {};

TEST_P(CampaignScratchDiff, ScratchEqualsFreshByteForByte) {
  // The fourth engine invariant: scratch/pooled ≡ fresh at any thread
  // count, backend and knob combination.  The fresh run is computed once
  // per (backend, knobs) and every scratch variant must match it.
  const Knobs knob_grid[] = {
      {true, true, true},    // the default engine
      {true, false, false},  // no seed cache, per-event stepping
      {false, true, true},   // legacy translate-per-unit baseline
      {false, false, false}, // everything naive
  };
  for (const mon::Backend backend : kBackends) {
    for (const Knobs& knobs : knob_grid) {
      const CampaignRun fresh =
          run_with(GetParam(), backend, /*scratch=*/false, 1, knobs);
      for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
        const CampaignRun scratch =
            run_with(GetParam(), backend, /*scratch=*/true, threads, knobs);
        const std::string what =
            std::string("backend=") + to_string(backend) +
            " threads=" + std::to_string(threads) +
            " compiled=" + std::to_string(knobs.compiled) +
            " reuse=" + std::to_string(knobs.reuse_traces) +
            " batch=" + std::to_string(knobs.batch_replay);
        EXPECT_TRUE(
            loom::testing::results_identical(scratch.result, fresh.result))
            << what;
        EXPECT_EQ(scratch.report, fresh.report) << what;
      }
    }
  }
}

TEST_P(CampaignScratchDiff, ScratchIsDeterministicAcrossThreadCounts) {
  // The per-shard pool keeps even the instance diagnostics a pure function
  // of the deterministic shard layout, never of worker scheduling: serial
  // and 4-thread runs agree counter-for-counter at every shard size.
  for (const std::size_t shard_size : {std::size_t{1}, std::size_t{5}}) {
    const CampaignRun serial = run_with(GetParam(), mon::Backend::Auto, true,
                                        1, Knobs{}, shard_size);
    const CampaignRun parallel = run_with(GetParam(), mon::Backend::Auto, true,
                                          4, Knobs{}, shard_size);
    const std::string what = "shard_size=" + std::to_string(shard_size);
    EXPECT_EQ(parallel.report, serial.report) << what;
    EXPECT_EQ(parallel.result.compile_stats.instances_stamped,
              serial.result.compile_stats.instances_stamped)
        << what;
    EXPECT_EQ(parallel.result.compile_stats.instance_reuses,
              serial.result.compile_stats.instance_reuses)
        << what;
  }
}

TEST_P(CampaignScratchDiff, PoolingConservesTheLogicalDrawCount) {
  // Pooling changes how often a draw stamps vs resets, never how many
  // monitors the work logically needed: stamped + reused is invariant
  // across scratch on/off and shard sizes (same monitors fed either way).
  const CampaignRun fresh =
      run_with(GetParam(), mon::Backend::Auto, false, 1, Knobs{});
  const auto fresh_draws = fresh.result.compile_stats.instances_stamped +
                           fresh.result.compile_stats.instance_reuses;
  for (const std::size_t shard_size : {std::size_t{1}, std::size_t{6}}) {
    const CampaignRun scratch = run_with(GetParam(), mon::Backend::Auto, true,
                                         1, Knobs{}, shard_size);
    EXPECT_EQ(scratch.result.compile_stats.instances_stamped +
                  scratch.result.compile_stats.instance_reuses,
              fresh_draws)
        << "shard_size=" << shard_size;
    if (shard_size > 1) {
      // Units sharing a shard now share instances — the pool must actually
      // reuse (this property has 4 valid units alone).
      EXPECT_GT(scratch.result.compile_stats.instance_reuses,
                fresh.result.compile_stats.instance_reuses)
          << "shard_size=" << shard_size;
    }
  }
}

TEST_P(CampaignScratchDiff, ViaPslCrossCheckPoolsTheSharedInstance) {
  const CampaignRun fresh = run_with(GetParam(), mon::Backend::Drct, false, 1,
                                     Knobs{}, /*shard_size=*/6,
                                     /*viapsl=*/true);
  const CampaignRun scratch = run_with(GetParam(), mon::Backend::Drct, true, 4,
                                       Knobs{}, /*shard_size=*/6,
                                       /*viapsl=*/true);
  EXPECT_TRUE(
      loom::testing::results_identical(scratch.result, fresh.result));
  EXPECT_EQ(scratch.report, fresh.report);
  EXPECT_EQ(scratch.result.compile_stats.viapsl_encodings, 1u);
}

INSTANTIATE_TEST_SUITE_P(
    Properties, CampaignScratchDiff,
    ::testing::Values("(n << i, true)",                               //
                      "(({a, b, c}, &) << s, false)",                 //
                      "(({n1, n2}, &) < ({n3[2,8], n4}, |) < n5 << i, true)",
                      "(p[2,3] => q[1,4] < r, 10us)"));

// --- mutate_into ≡ mutate under a dirty, reused scratch -------------------

class MutateIntoFuzz : public ::testing::TestWithParam<const char*> {};

TEST_P(MutateIntoFuzz, ByteIdenticalToMutateAcrossKindsAndSeeds) {
  spec::Alphabet ab;
  const spec::Property property = loom::testing::parse(GetParam(), ab);
  const spec::NameSet alphabet = property.alphabet();
  StimuliOptions sopt;
  sopt.rounds = 4;
  sopt.noise_permille = 150;

  // One scratch for the whole fuzz: every call sees whatever the previous
  // kind/seed left behind — sizes, times and names all differ, so a leak
  // of stale bytes would surface as a trace mismatch.
  MutationResult scratch;
  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    support::Rng gen_rng = support::Rng::stream(seed, 0);
    const spec::Trace valid = generate_valid(property, ab, gen_rng, sopt);
    for (const MutationKind kind : kKinds) {
      // Identical streams: the contract says identical Rng consumption.
      support::Rng rng_a = support::Rng::stream(seed, 7);
      support::Rng rng_b = support::Rng::stream(seed, 7);
      for (int round = 0; round < 8; ++round) {
        const auto fresh = mutate(valid, kind, property, rng_a);
        const bool applied =
            mutate_into(valid, kind, property, alphabet, rng_b, scratch);
        const std::string what = std::string(to_string(kind)) + " seed=" +
                                 std::to_string(seed) + " round=" +
                                 std::to_string(round);
        ASSERT_EQ(applied, fresh.has_value()) << what;
        if (!applied) continue;
        EXPECT_EQ(scratch.kind, fresh->kind) << what;
        EXPECT_EQ(scratch.position, fresh->position) << what;
        EXPECT_TRUE(
            loom::testing::traces_equal(scratch.trace, fresh->trace, ab))
            << what;
        // And the streams must still agree for the *next* draw.
        EXPECT_EQ(rng_a.next(), rng_b.next()) << what;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Properties, MutateIntoFuzz,
    ::testing::Values("(n << i, true)",
                      "(({n1, n2}, &) < ({n3[2,8], n4}, |) < n5 << i, true)",
                      "(p[2,3] => q[1,4] < r, 10us)"));

// --- plan-reusing reference oracle ----------------------------------------

TEST(ReferencePlanReuse, PlanOverloadMatchesThePlanningOverload) {
  spec::Alphabet ab;
  for (const char* source :
       {"(({a, b, c}, &) << s, true)", "(p[2,3] => q[1,4] < r, 10us)"}) {
    const spec::Property p = loom::testing::parse(source, ab);
    const auto compiled = mon::CompiledProperty::compile(p, ab);
    StimuliOptions sopt;
    sopt.rounds = 3;
    for (std::uint64_t seed = 1; seed <= 6; ++seed) {
      support::Rng rng = support::Rng::stream(seed, 0);
      spec::Trace t = generate_valid(p, ab, rng, sopt);
      // Perturb the tail so rejected runs are exercised too.
      if (t.size() > 2) t.erase(t.begin() + static_cast<long>(t.size() / 2));
      const sim::Time end = t.empty() ? sim::Time::zero() : t.back().time;
      const auto planned = spec::reference_check(p, t, end);
      const auto reused = spec::reference_check(p, compiled.plan(), t, end);
      EXPECT_EQ(planned.verdict, reused.verdict) << source;
      EXPECT_EQ(planned.error_index, reused.error_index) << source;
      EXPECT_EQ(planned.reason, reused.reason) << source;
    }
  }
}

// --- MonitorModule reset ≡ fresh module -----------------------------------

TEST(MonitorModuleReset, ResetHostReplaysLikeAFreshOne) {
  spec::Alphabet ab;
  const spec::Property p = loom::testing::parse("(n << i, true)", ab);
  // The canonical violation: the trigger before any pattern round.
  const spec::Trace bad = loom::testing::trace_of("i n", ab);
  const auto compiled = mon::CompiledProperty::compile(p, ab);

  // Fresh host per replay (the baseline the campaign's fresh path uses).
  auto reference = compiled.instantiate();
  std::size_t fresh_callbacks = 0;
  for (int i = 0; i < 3; ++i) {
    sim::Scheduler sched;
    mon::MonitorModule module(sched, "replay", *reference, ab);
    module.on_violation([&](const mon::Violation&) { ++fresh_callbacks; });
    reference->reset();
    module.observe_batch(bad, mon::MonitorModule::BatchPolicy::ReplayAll);
    reference->finish(bad.back().time);
  }
  const auto fresh_verdict = reference->verdict();

  // One host, reset between replays, watchdogs off (never pumped anyway).
  auto pooled = compiled.instantiate();
  sim::Scheduler sched;
  mon::MonitorModule module(sched, "replay", *pooled, ab);
  module.set_arm_watchdogs(false);
  std::size_t pooled_callbacks = 0;
  module.on_violation([&](const mon::Violation&) { ++pooled_callbacks; });
  for (int i = 0; i < 3; ++i) {
    module.reset();
    pooled->reset();
    module.observe_batch(bad, mon::MonitorModule::BatchPolicy::ReplayAll);
    pooled->finish(bad.back().time);
  }

  EXPECT_EQ(fresh_callbacks, 3u);
  EXPECT_EQ(pooled_callbacks, 3u);  // reset() re-arms the callback latch
  EXPECT_EQ(pooled->verdict(), fresh_verdict);
  EXPECT_EQ(pooled->stats().ops, reference->stats().ops);
}

// --- mon::CompiledPropertyCache -------------------------------------------

TEST(CompiledPropertyCache, CompilesOncePerKeyAndHandsOutStableEntries) {
  spec::Alphabet ab;
  const spec::Property p = loom::testing::parse("(({a, b}, &) << s, true)", ab);
  mon::CompiledPropertyCache cache;

  bool inserted = false;
  const mon::CompiledProperty& first = cache.get_or_compile(p, ab, {},
                                                            &inserted);
  EXPECT_TRUE(inserted);
  const mon::CompiledProperty& second = cache.get_or_compile(p, ab, {},
                                                             &inserted);
  EXPECT_FALSE(inserted);
  EXPECT_EQ(&first, &second);          // stable reference, shared artifacts
  EXPECT_EQ(&first.plan(), &second.plan());
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(cache.stats().misses, 1u);

  // A different backend is a different key (it changes the artifacts).
  mon::CompileOptions viapsl;
  viapsl.backend = mon::Backend::ViaPSL;
  const mon::CompiledProperty& forced = cache.get_or_compile(p, ab, viapsl);
  EXPECT_EQ(forced.chosen(), mon::Backend::ViaPSL);
  EXPECT_EQ(cache.size(), 2u);
}

TEST(CompiledPropertyCache, KeyIncludesNameBindingsAndOptions) {
  // Two alphabets interning the same names in different orders render the
  // same normalized text over different ids — the key must not alias them.
  spec::Alphabet ab1;
  const spec::Property p1 = loom::testing::parse("(a < b << s, true)", ab1);
  spec::Alphabet ab2;
  ab2.name("zzz");  // shift every later id
  const spec::Property p2 = loom::testing::parse("(a < b << s, true)", ab2);
  EXPECT_NE(mon::CompiledPropertyCache::key_of(p1, ab1, {}),
            mon::CompiledPropertyCache::key_of(p2, ab2, {}));

  mon::CompileOptions tight;
  tight.max_clauses = 7;
  EXPECT_NE(mon::CompiledPropertyCache::key_of(p1, ab1, {}),
            mon::CompiledPropertyCache::key_of(p1, ab1, tight));
  mon::CompileOptions artifact;
  artifact.with_viapsl_artifact = true;
  EXPECT_NE(mon::CompiledPropertyCache::key_of(p1, ab1, {}),
            mon::CompiledPropertyCache::key_of(p1, ab1, artifact));
  // Same property, same alphabet, same options: same key.
  EXPECT_EQ(mon::CompiledPropertyCache::key_of(p1, ab1, {}),
            mon::CompiledPropertyCache::key_of(p1, ab1, {}));
}

TEST(CompiledPropertyCache, RepeatedCampaignsSkipRecompilation) {
  const char* sources[] = {"(n << i, true)", "(p[2,3] => q[1,4] < r, 10us)"};
  spec::Alphabet ab;
  std::vector<spec::Property> props;
  for (const char* s : sources) props.push_back(loom::testing::parse(s, ab));
  std::vector<const spec::Property*> ptrs;
  for (const auto& p : props) ptrs.push_back(&p);

  CampaignOptions opt;
  opt.seeds = 3;
  opt.stimuli.rounds = 2;
  opt.mutants_per_kind = 4;
  opt.threads = 2;
  opt.shard_size = 1;
  const auto uncached = run_campaigns(ptrs, ab, opt);

  mon::CompiledPropertyCache cache;
  opt.plan_cache = &cache;
  const auto first = run_campaigns(ptrs, ab, opt);
  const auto second = run_campaigns(ptrs, ab, opt);
  ASSERT_EQ(first.size(), 2u);
  ASSERT_EQ(second.size(), 2u);

  for (std::size_t i = 0; i < 2; ++i) {
    // The cache is invisible in the semantic result and the report.
    EXPECT_TRUE(loom::testing::results_identical(first[i], uncached[i])) << i;
    EXPECT_TRUE(loom::testing::results_identical(second[i], uncached[i])) << i;
    EXPECT_EQ(second[i].report(ab), uncached[i].report(ab)) << i;
    // First campaign compiles (miss), every later one reuses (hit).
    EXPECT_EQ(first[i].compile_stats.plan_cache_misses, 1u) << i;
    EXPECT_EQ(first[i].compile_stats.plan_cache_hits, 0u) << i;
    EXPECT_EQ(first[i].compile_stats.plans_built, 1u) << i;
    EXPECT_EQ(second[i].compile_stats.plan_cache_hits, 1u) << i;
    EXPECT_EQ(second[i].compile_stats.plan_cache_misses, 0u) << i;
    EXPECT_EQ(second[i].compile_stats.plans_built, 0u) << i;
  }
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.stats().misses, 2u);
  EXPECT_EQ(cache.stats().hits, 2u);
}

}  // namespace
}  // namespace loom::abv

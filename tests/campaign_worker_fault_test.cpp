// Worker-failure robustness: a cross-process campaign whose worker dies,
// corrupts its stream or speaks a future wire version must surface a
// WorkerFailure naming the problem — never hang, never merge a partial
// result — and the worker-side exit codes are pinned as protocol, like
// the frame layout itself.  The fault injection is WorkerFault, a
// test-only knob the worker honors deterministically on its first partial
// frame, so every failure mode here is reproducible byte for byte.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "abv/campaign.hpp"
#include "testing.hpp"
#include "wire/payload.hpp"
#include "wire/process.hpp"
#include "wire/wire.hpp"

#if LOOM_WIRE_HAS_PROCESS

#include <unistd.h>

namespace loom::abv {
namespace {

constexpr const char* kProperty = "(({a, b}, &) < c << i, true)";

CampaignOptions small_options() {
  CampaignOptions opt;
  opt.seeds = 2;
  opt.stimuli.rounds = 2;
  opt.mutants_per_kind = 2;
  return opt;
}

// Runs a cross-process campaign with the given fault injected into every
// worker, expecting WorkerFailure whose message contains `expect`.
void expect_failure(WorkerFault fault, const std::string& expect,
                    std::size_t workers = 2) {
  spec::Alphabet ab;
  auto p = loom::testing::parse(kProperty, ab);
  CampaignOptions opt = small_options();
  opt.workers = workers;
  opt.worker_fault = fault;
  try {
    run_campaign(p, ab, opt);
    FAIL() << "expected WorkerFailure containing \"" << expect << "\"";
  } catch (const WorkerFailure& e) {
    EXPECT_NE(std::string(e.what()).find("cross-process campaign"),
              std::string::npos)
        << e.what();
    EXPECT_NE(std::string(e.what()).find(expect), std::string::npos)
        << "message was: " << e.what();
  }
}

TEST(CampaignWorkerFault, CorruptFrameSurfacesThePositionedDiagnostic) {
  // The worker flips the magic byte of its first partial frame; the parent
  // must reject at the frame layer and name the corruption.
  expect_failure(WorkerFault::CorruptFrame, "bad magic");
}

TEST(CampaignWorkerFault, FutureWireVersionIsRefusedByName) {
  // A worker from a newer build stamps kWireVersion + 1: the parent says
  // exactly that instead of misparsing the frame.
  expect_failure(
      WorkerFault::FutureVersion,
      "wire format version " + std::to_string(wire::kWireVersion + 1));
}

TEST(CampaignWorkerFault, WorkerDyingMidFrameNeverHangsTheParent) {
  // Half a frame then exit: the parent's frame reader sees the stream end
  // inside a payload and fails immediately — no blocking on a pipe that
  // will never fill, no garbage merged.
  expect_failure(WorkerFault::DieMidStream, "stream ended inside");
}

TEST(CampaignWorkerFault, EveryFaultFailsAtEveryWorkerCount) {
  for (const std::size_t workers : {std::size_t{1}, std::size_t{3}}) {
    expect_failure(WorkerFault::CorruptFrame, "bad magic", workers);
    expect_failure(WorkerFault::DieMidStream, "stream ended inside",
                   workers);
  }
}

TEST(CampaignWorkerFault, ExecOfNonexistentBinaryFails) {
  // Exec mode pointed at a binary that is not there: the child _exit(127)s
  // before speaking any wire; the parent must turn that into WorkerFailure
  // (either the request write breaks on the dead pipe or the stream ends
  // with the exec-failure exit code — both are clean failures).
  spec::Alphabet ab;
  auto p = loom::testing::parse(kProperty, ab);
  CampaignOptions opt = small_options();
  opt.workers = 1;
  opt.worker_command = {"/nonexistent/loomcheck-worker-binary", "--worker"};
  EXPECT_THROW(run_campaign(p, ab, opt), WorkerFailure);
}

TEST(CampaignWorkerFault, ExecFailureIsNamedInTheDiagnostic) {
  // The pinned exec exit codes (126 setup, 127 execvp) must not surface as
  // a bare "exited with code 127": the parent's message says in words that
  // the worker command could not be executed.
  spec::Alphabet ab;
  auto p = loom::testing::parse(kProperty, ab);
  CampaignOptions opt = small_options();
  opt.workers = 1;
  opt.worker_command = {"/nonexistent/loomcheck-worker-binary", "--worker"};
  try {
    run_campaign(p, ab, opt);
    FAIL() << "expected WorkerFailure";
  } catch (const WorkerFailure& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("could not be executed"), std::string::npos) << what;
    EXPECT_NE(what.find(std::to_string(kWorkerExitExecMissing)),
              std::string::npos)
        << what;
  }
}

TEST(CampaignWorkerFault, FaultlessRunStillSucceedsAfterFailedOnes) {
  // The failure paths must not poison process-wide state (SIGPIPE
  // handling, leaked descriptors, zombie children): a clean cross-process
  // run after a string of failed ones still matches in-process bytes.
  spec::Alphabet ab;
  auto p = loom::testing::parse(kProperty, ab);
  CampaignOptions opt = small_options();
  const CampaignResult in_process = run_campaign(p, ab, opt);
  for (int round = 0; round < 2; ++round) {
    CampaignOptions bad = opt;
    bad.workers = 2;
    bad.worker_fault = WorkerFault::DieMidStream;
    EXPECT_THROW(run_campaign(p, ab, bad), WorkerFailure);
  }
  CampaignOptions good = opt;
  good.workers = 2;
  const CampaignResult cross = run_campaign(p, ab, good);
  EXPECT_TRUE(loom::testing::results_identical(cross, in_process));
  EXPECT_EQ(cross.report(ab), in_process.report(ab));
}

// ---------------------------------------------------------------------------
// The worker side, driven directly over pipes from the test process: the
// exit codes and the response stream shapes are protocol, pinned here.

struct Pipes {
  int request_read = -1;   // worker's in_fd
  int request_write = -1;  // test writes the request here
  int reply_read = -1;     // test reads the worker's frames here
  int reply_write = -1;    // worker's out_fd

  Pipes() {
    int a[2], b[2];
    EXPECT_EQ(::pipe(a), 0);
    EXPECT_EQ(::pipe(b), 0);
    request_read = a[0];
    request_write = a[1];
    reply_read = b[0];
    reply_write = b[1];
  }
  ~Pipes() {
    for (int fd : {request_read, request_write, reply_read, reply_write}) {
      if (fd >= 0) ::close(fd);
    }
  }

  // Writes `bytes` as the whole request stream and closes the write end.
  void send_request(const std::vector<std::uint8_t>& bytes) {
    ASSERT_TRUE(wire::write_all(request_write, bytes.data(), bytes.size()));
    ::close(request_write);
    request_write = -1;
  }

  // Runs the worker on this thread and closes its ends afterwards, so the
  // reply stream has a proper EOF.  The response pipe's kernel buffer
  // holds the small replies these tests produce; a worker blocking here
  // would be a test failure by timeout, which is exactly the hang the
  // protocol forbids.
  int run_worker() {
    const int code = run_campaign_worker(request_read, reply_write);
    ::close(request_read);
    request_read = -1;
    ::close(reply_write);
    reply_write = -1;
    return code;
  }
};

// Drains the reply stream into (tag, payload bytes) pairs.
std::vector<std::pair<wire::Payload, std::vector<std::uint8_t>>> drain(
    int fd) {
  std::vector<std::pair<wire::Payload, std::vector<std::uint8_t>>> frames;
  wire::FdFrameReader reader(fd);
  wire::Frame frame;
  wire::DecodeError err;
  while (reader.next(frame, err) == wire::FdFrameReader::Status::Frame) {
    frames.emplace_back(frame.tag,
                        std::vector<std::uint8_t>(frame.data,
                                                  frame.data + frame.size));
  }
  EXPECT_TRUE(err.message.empty()) << err.to_string();
  return frames;
}

std::string error_text(const std::vector<std::uint8_t>& payload) {
  wire::Decoder d(payload.data(), payload.size());
  std::string message;
  EXPECT_TRUE(wire::decode_worker_error(d, message)) << d.error().to_string();
  return message;
}

TEST(CampaignWorkerDirect, EmptyInputExitsBadRequestWithAnErrorFrame) {
  Pipes pipes;
  pipes.send_request({});
  EXPECT_EQ(pipes.run_worker(), kWorkerExitBadRequest);
  const auto frames = drain(pipes.reply_read);
  ASSERT_EQ(frames.size(), 1u);
  EXPECT_EQ(frames[0].first, wire::Payload::WorkerError);
  EXPECT_NE(error_text(frames[0].second).find("no request frame"),
            std::string::npos);
}

TEST(CampaignWorkerDirect, GarbageInputExitsBadRequest) {
  Pipes pipes;
  pipes.send_request({0xDE, 0xAD, 0xBE, 0xEF, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10,
                      11, 12, 13, 14});
  EXPECT_EQ(pipes.run_worker(), kWorkerExitBadRequest);
  const auto frames = drain(pipes.reply_read);
  ASSERT_EQ(frames.size(), 1u);
  EXPECT_EQ(frames[0].first, wire::Payload::WorkerError);
  EXPECT_NE(error_text(frames[0].second).find("bad magic"),
            std::string::npos);
}

TEST(CampaignWorkerDirect, WrongFrameTagExitsBadRequest) {
  wire::Encoder enc;
  wire::encode_worker_done(enc, 3);
  std::vector<std::uint8_t> framed;
  wire::write_frame(framed, wire::Payload::WorkerDone, enc);
  Pipes pipes;
  pipes.send_request(framed);
  EXPECT_EQ(pipes.run_worker(), kWorkerExitBadRequest);
  const auto frames = drain(pipes.reply_read);
  ASSERT_EQ(frames.size(), 1u);
  EXPECT_NE(error_text(frames[0].second).find("expected a WorkerRequest"),
            std::string::npos);
}

std::vector<std::uint8_t> framed_request(const wire::WorkerRequestData& req) {
  wire::Encoder enc;
  wire::encode_worker_request(enc, req);
  std::vector<std::uint8_t> framed;
  wire::write_frame(framed, wire::Payload::WorkerRequest, enc);
  return framed;
}

wire::WorkerRequestData valid_request() {
  wire::WorkerRequestData req;
  req.names = {"a", "b", "c"};
  req.directions = {0, 0, 0};
  req.properties = {kProperty};
  req.options = small_options();
  // seeds=2 → 12 units for job 0 (6 slots per seed); two shards of 6.
  req.shards = {{0, 0, 0, 6}, {1, 0, 6, 12}};
  return req;
}

TEST(CampaignWorkerDirect, UnparsableWorkerPropertyExitsBadProperty) {
  wire::WorkerRequestData req = valid_request();
  req.properties = {"(((this is not a property"};
  Pipes pipes;
  pipes.send_request(framed_request(req));
  EXPECT_EQ(pipes.run_worker(), kWorkerExitBadProperty);
  const auto frames = drain(pipes.reply_read);
  ASSERT_EQ(frames.size(), 1u);
  EXPECT_EQ(frames[0].first, wire::Payload::WorkerError);
  EXPECT_NE(error_text(frames[0].second).find("property"),
            std::string::npos);
}

TEST(CampaignWorkerDirect, OutOfRangeShardAssignmentExitsBadRequest) {
  wire::WorkerRequestData req = valid_request();
  req.shards = {{0, 0, 0, 99}};  // unit_end past seeds * slots
  Pipes pipes;
  pipes.send_request(framed_request(req));
  EXPECT_EQ(pipes.run_worker(), kWorkerExitBadRequest);
  const auto frames = drain(pipes.reply_read);
  ASSERT_EQ(frames.size(), 1u);
  EXPECT_NE(error_text(frames[0].second).find("shard assignment"),
            std::string::npos);

  wire::WorkerRequestData foreign_job = valid_request();
  foreign_job.shards = {{0, 7, 0, 6}};  // job 7 of a 1-property request
  Pipes pipes2;
  pipes2.send_request(framed_request(foreign_job));
  EXPECT_EQ(pipes2.run_worker(), kWorkerExitBadRequest);
}

TEST(CampaignWorkerDirect, ValidRequestStreamsPartialsThenDone) {
  const wire::WorkerRequestData req = valid_request();
  Pipes pipes;
  pipes.send_request(framed_request(req));
  EXPECT_EQ(pipes.run_worker(), kWorkerExitOk);
  const auto frames = drain(pipes.reply_read);
  ASSERT_EQ(frames.size(), req.shards.size() + 1);
  for (std::size_t i = 0; i < req.shards.size(); ++i) {
    ASSERT_EQ(frames[i].first, wire::Payload::WorkerPartial) << i;
    wire::WorkerPartialData part;
    wire::Decoder d(frames[i].second.data(), frames[i].second.size());
    ASSERT_TRUE(wire::decode_worker_partial(d, part))
        << d.error().to_string();
    EXPECT_TRUE(d.exhausted());
    // Partials arrive in assignment order, tagged with the parent's global
    // shard index — the slot they merge back into.
    EXPECT_EQ(part.shard, req.shards[i].shard);
    EXPECT_EQ(part.job, req.shards[i].job);
    EXPECT_GT(part.partial.events, 0u) << "shard " << i << " did no work";
  }
  ASSERT_EQ(frames.back().first, wire::Payload::WorkerDone);
  std::uint64_t count = 0;
  wire::Decoder d(frames.back().second.data(), frames.back().second.size());
  ASSERT_TRUE(wire::decode_worker_done(d, count));
  EXPECT_EQ(count, req.shards.size());
}

TEST(CampaignWorkerDirect, TrailingBytesAfterTheRequestAreRejected) {
  wire::Encoder enc;
  wire::encode_worker_request(enc, valid_request());
  enc.put_u8(0x55);  // one smuggled byte inside the frame's payload
  std::vector<std::uint8_t> framed;
  wire::write_frame(framed, wire::Payload::WorkerRequest, enc);
  Pipes pipes;
  pipes.send_request(framed);
  EXPECT_EQ(pipes.run_worker(), kWorkerExitBadRequest);
  const auto frames = drain(pipes.reply_read);
  ASSERT_EQ(frames.size(), 1u);
  EXPECT_NE(error_text(frames[0].second).find("trailing bytes"),
            std::string::npos);
}

}  // namespace
}  // namespace loom::abv

#endif  // LOOM_WIRE_HAS_PROCESS

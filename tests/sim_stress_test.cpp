// Scheduler robustness: determinism, resumability, notification corner
// cases, dynamic process creation, and randomized multi-process traffic.
#include <gtest/gtest.h>

#include <vector>

#include "sim/event.hpp"
#include "sim/scheduler.hpp"
#include "support/rng.hpp"

namespace loom::sim {
namespace {

TEST(SchedulerStress, RunIsResumable) {
  Scheduler sched;
  int ticks = 0;
  struct Ticker {
    static Process run(Scheduler& s, int& ticks) {
      for (;;) {
        co_await s.wait(Time::ns(10));
        ++ticks;
      }
    }
  };
  sched.spawn(Ticker::run(sched, ticks), "ticker");
  sched.run(Time::ns(35));
  EXPECT_EQ(ticks, 3);
  EXPECT_EQ(sched.now(), Time::ns(35));
  sched.run(Time::ns(95));
  EXPECT_EQ(ticks, 9);
  EXPECT_EQ(sched.now(), Time::ns(95));
}

TEST(SchedulerStress, SameTimestampIsFifo) {
  Scheduler sched;
  std::vector<int> order;
  for (int k = 0; k < 8; ++k) {
    sched.schedule_at(Time::ns(5), [&order, k] { order.push_back(k); });
  }
  sched.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4, 5, 6, 7}));
}

TEST(SchedulerStress, CancelThenRenotify) {
  Scheduler sched;
  Event ev(sched, "ev");
  Time woke_at;
  int wakes = 0;
  struct Waiter {
    static Process run(Scheduler& s, Event& ev, Time& at, int& wakes) {
      for (;;) {
        co_await s.wait(ev);
        at = s.now();
        ++wakes;
      }
    }
  };
  sched.spawn(Waiter::run(sched, ev, woke_at, wakes), "waiter");
  ev.notify(Time::ns(10));
  ev.cancel();
  ev.notify(Time::ns(30));
  sched.run(Time::us(1));
  EXPECT_EQ(wakes, 1);
  EXPECT_EQ(woke_at, Time::ns(30));
}

TEST(SchedulerStress, DeltaNotifyOverridesTimed) {
  Scheduler sched;
  Event ev(sched, "ev");
  Time woke_at = Time::max();
  struct Waiter {
    static Process run(Scheduler& s, Event& ev, Time& at) {
      co_await s.wait(ev);
      at = s.now();
    }
  };
  sched.spawn(Waiter::run(sched, ev, woke_at), "waiter");
  ev.notify(Time::ns(50));
  ev.notify();  // delta notification wins
  sched.run(Time::us(1));
  EXPECT_EQ(woke_at, Time::zero());
  EXPECT_EQ(sched.now(), Time::zero()) << "no residual 50 ns activity";
}

TEST(SchedulerStress, SpawnDuringSimulation) {
  Scheduler sched;
  std::vector<int> log;
  struct Child {
    static Process run(Scheduler& s, std::vector<int>& log, int id) {
      co_await s.wait(Time::ns(5));
      log.push_back(id);
    }
  };
  struct Parent {
    static Process run(Scheduler& s, std::vector<int>& log) {
      co_await s.wait(Time::ns(10));
      s.spawn(Child::run(s, log, 1), "child1");
      s.spawn(Child::run(s, log, 2), "child2");
      co_await s.wait(Time::ns(10));
      log.push_back(0);
    }
  };
  sched.spawn(Parent::run(sched, log), "parent");
  sched.run();
  EXPECT_EQ(log, (std::vector<int>{1, 2, 0}));
  EXPECT_EQ(sched.now(), Time::ns(20));
}

TEST(SchedulerStress, SuspendedProcessesAreReclaimedSafely) {
  // A process left waiting forever must be destroyed cleanly with the
  // scheduler (no leak under ASAN, no crash).
  auto sched = std::make_unique<Scheduler>();
  auto ev = std::make_unique<Event>(*sched, "never");
  struct Stuck {
    static Process run(Scheduler& s, Event& ev) {
      co_await s.wait(ev);
      ADD_FAILURE() << "must never resume";
    }
  };
  sched->spawn(Stuck::run(*sched, *ev), "stuck");
  sched->run(Time::ns(100));
  sched.reset();  // destroys the suspended coroutine frame
  SUCCEED();
}

TEST(SchedulerStress, RandomizedPingPongIsDeterministic) {
  // N workers pass a token through events with pseudo-random delays; the
  // event log must be identical across two runs with the same seed.
  auto run_once = [](std::uint64_t seed) {
    Scheduler sched;
    constexpr int kWorkers = 8;
    std::vector<std::unique_ptr<Event>> events;
    for (int k = 0; k < kWorkers; ++k) {
      events.push_back(
          std::make_unique<Event>(sched, "ev" + std::to_string(k)));
    }
    auto log = std::make_shared<std::vector<std::uint64_t>>();
    auto rng = std::make_shared<support::Rng>(seed);
    auto remaining = std::make_shared<int>(200);

    struct Worker {
      static Process run(Scheduler& s, int id, int next,
                         std::vector<std::unique_ptr<Event>>& evs,
                         std::shared_ptr<std::vector<std::uint64_t>> log,
                         std::shared_ptr<support::Rng> rng,
                         std::shared_ptr<int> remaining) {
        for (;;) {
          co_await s.wait(*evs[id]);
          log->push_back(s.now().picoseconds() * 100 +
                         static_cast<std::uint64_t>(id));
          if (--*remaining <= 0) {
            s.stop();
            co_return;
          }
          evs[next]->notify(Time::ns(1 + rng->below(20)));
        }
      }
    };
    for (int k = 0; k < kWorkers; ++k) {
      sched.spawn(Worker::run(sched, k, (k + 3) % kWorkers, events, log, rng,
                              remaining),
                  "worker");
    }
    events[0]->notify(Time::ns(1));
    sched.run(Time::ms(10));
    return *log;
  };
  const auto a = run_once(123);
  const auto b = run_once(123);
  const auto c = run_once(321);
  EXPECT_EQ(a.size(), 200u);
  EXPECT_EQ(a, b) << "same seed must give identical schedules";
  EXPECT_NE(a, c) << "different seed must explore a different schedule";
}

TEST(SchedulerStress, ManyTimedEventsInterleave) {
  Scheduler sched;
  std::vector<std::unique_ptr<Event>> events;
  std::vector<Time> fired(64);
  for (int k = 0; k < 64; ++k) {
    events.push_back(std::make_unique<Event>(sched, "e"));
    const int idx = k;
    events[static_cast<std::size_t>(k)]->on_trigger(
        [&fired, idx, &sched] { fired[static_cast<std::size_t>(idx)] = sched.now(); });
    // Deliberately unsorted notification times.
    events[static_cast<std::size_t>(k)]->notify(Time::ns(
        static_cast<std::uint64_t>((k * 37) % 101)));
  }
  sched.run();
  for (int k = 0; k < 64; ++k) {
    EXPECT_EQ(fired[static_cast<std::size_t>(k)],
              Time::ns(static_cast<std::uint64_t>((k * 37) % 101)));
  }
}

TEST(SchedulerStress, StopInsideCallbackHaltsPromptly) {
  Scheduler sched;
  int after_stop = 0;
  sched.schedule_at(Time::ns(10), [&] { sched.stop(); });
  sched.schedule_at(Time::ns(20), [&] { ++after_stop; });
  sched.run();
  EXPECT_EQ(after_stop, 0);
  EXPECT_EQ(sched.now(), Time::ns(10));
  // A later run resumes and executes the remaining entry.
  sched.run();
  EXPECT_EQ(after_stop, 1);
}

}  // namespace
}  // namespace loom::sim

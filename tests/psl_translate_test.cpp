// Structure of the §5 encodings and of the run-length lexer.
#include <gtest/gtest.h>

#include <map>

#include "psl/cost_model.hpp"
#include "psl/rle_lexer.hpp"
#include "psl/translate.hpp"
#include "spec/parser.hpp"

namespace loom::psl {
namespace {

spec::Property parse(const std::string& src, spec::Alphabet& ab) {
  support::DiagnosticSink sink;
  auto p = spec::parse_property(src, ab, sink);
  EXPECT_TRUE(p.has_value()) << sink.to_string();
  return *p;
}

std::map<ClauseKind, std::size_t> count_by_kind(const Encoding& enc) {
  std::map<ClauseKind, std::size_t> out;
  for (const auto& c : enc.clauses) ++out[c.kind];
  return out;
}

TEST(Translate, SimplestAntecedent) {
  spec::Alphabet ab;
  auto p = parse("(n << i, true)", ab);
  Encoding enc = encode(p);
  EXPECT_EQ(enc.vocab.token_count(), 2u);  // n, i
  auto kinds = count_by_kind(enc);
  EXPECT_EQ(kinds[ClauseKind::Mutex], 1u);   // one pair
  EXPECT_EQ(kinds[ClauseKind::MaxOne], 1u);  // n
  EXPECT_EQ(kinds[ClauseKind::Range], 0u);   // single token per range
  EXPECT_EQ(kinds[ClauseKind::Order], 0u);   // one fragment
  EXPECT_EQ(kinds[ClauseKind::Before], 1u);
  EXPECT_EQ(kinds[ClauseKind::After], 1u);  // b = true
  EXPECT_FALSE(enc.retire_on_reset);
  EXPECT_EQ(enc.reset_tokens.count(), 1u);
}

TEST(Translate, NonRepeatedDropsAfterAndRetires) {
  spec::Alphabet ab;
  auto p = parse("(n << i, false)", ab);
  Encoding enc = encode(p);
  auto kinds = count_by_kind(enc);
  EXPECT_EQ(kinds[ClauseKind::After], 0u);
  EXPECT_TRUE(enc.retire_on_reset);
}

TEST(Translate, RangeUnfoldingIsQuadratic) {
  spec::Alphabet ab;
  auto p = parse("(n[2,5] << i, true)", ab);  // width 4
  Encoding enc = encode(p);
  EXPECT_EQ(enc.vocab.token_count(), 5u);  // n#2..n#5 + i
  auto kinds = count_by_kind(enc);
  EXPECT_EQ(kinds[ClauseKind::Mutex], 10u);   // C(5,2)
  EXPECT_EQ(kinds[ClauseKind::MaxOne], 4u);
  EXPECT_EQ(kinds[ClauseKind::Range], 12u);   // 4*3 ordered pairs
  EXPECT_EQ(kinds[ClauseKind::Before], 1u);
  EXPECT_EQ(kinds[ClauseKind::After], 1u);
  // Token texts carry the block length.
  EXPECT_EQ(enc.vocab.texts()[0].find("#2") != std::string::npos, true);
}

TEST(Translate, OrderClausesAreAdjacentFragmentProducts) {
  spec::Alphabet ab;
  auto p = parse("(({a, b}, &) < ({c[1,3], d}, |) < e << i, true)", ab);
  Encoding enc = encode(p);
  // Fragment token counts: 2, (3 + 1) = 4, 1.
  auto kinds = count_by_kind(enc);
  EXPECT_EQ(kinds[ClauseKind::Order], 2u * 4u + 4u * 1u);
  // Before groups: per range of ∧-fragments (a, b, e) + one per ∨-fragment.
  EXPECT_EQ(kinds[ClauseKind::Before], 4u);
  EXPECT_EQ(kinds[ClauseKind::After], 4u);
}

TEST(Translate, ClauseLimitThrows) {
  spec::Alphabet ab;
  auto p = parse("(n[100,60K] << i, true)", ab);
  EXPECT_THROW(encode(p, /*max_clauses=*/100000), std::length_error);
}

TEST(Translate, TimedChainUsesFinalFragmentAsReset) {
  spec::Alphabet ab;
  auto p = parse("(a => b[2,3] < c, 100ns)", ab);
  Encoding enc = encode(p);
  EXPECT_TRUE(enc.timed);
  EXPECT_EQ(enc.p_fragment_count, 1u);
  EXPECT_EQ(enc.bound, sim::Time::ns(100));
  // Reset = the c token.
  EXPECT_EQ(enc.reset_tokens.count(), 1u);
  // Fragment token groups present for timing.
  ASSERT_EQ(enc.fragments.size(), 3u);
  EXPECT_EQ(enc.fragments[1].per_range.size(), 1u);
  EXPECT_EQ(enc.fragments[1].per_range[0].count(), 2u);  // b#2, b#3
}

TEST(Translate, TimedMultiRangeFinalFragmentUnsupported) {
  spec::Alphabet ab;
  auto p = parse("(a => ({b, c}, &), 100ns)", ab);
  EXPECT_THROW(encode(p), std::invalid_argument);
}

TEST(CostModel, MatchesMaterializedEncodings) {
  const char* sources[] = {
      "(n << i, true)",
      "(n << i, false)",
      "(n[2,5] << i, true)",
      "(n[2,5] << i, false)",
      "(({n1, n2, n3, n4}, &) << i, false)",
      "(({n1, n2, n3, n4, n5}, &) << i, false)",
      "(({a, b}, &) < ({c[1,3], d}, |) < e << i, true)",
      "(({a, b}, |) < c[2,2] << i, false)",
      "(n1 => n2 < n3 < n4, 100ns)",
      "(a => b[2,3] < c, 100ns)",
      "(a < b[1,4] => c[2,3] < d, 1us)",
  };
  for (const char* src : sources) {
    spec::Alphabet ab;
    auto p = parse(src, ab);
    Encoding enc = encode(p);
    PslCost cost = estimate(p);
    EXPECT_EQ(cost.tokens, enc.vocab.token_count()) << src;
    EXPECT_EQ(cost.clauses, enc.clauses.size()) << src;
    EXPECT_EQ(cost.ops_per_token, enc.ops_per_token()) << src;
    EXPECT_EQ(cost.clause_bits, enc.clause_bits()) << src;
  }
}

TEST(CostModel, HugeRangeMatchesPaperOrderOfMagnitude) {
  spec::Alphabet ab;
  auto p = parse("(n[100,60K] << i, true)", ab);
  PslCost cost = estimate(p);
  // Width 59901: the encoding explodes quadratically (paper: ~4*10^11 ops,
  // ~2*10^12 bits for this row).  Exact constants differ; the order must
  // be >= 10^10.
  EXPECT_GT(cost.ops_per_token, 1e10);
  EXPECT_GT(cost.clause_bits, 1e9);
}

TEST(Lexer, TrivialNamesPassThrough) {
  spec::Alphabet ab;
  auto p = parse("(n << i, true)", ab);
  Encoding enc = encode(p);
  mon::MonitorStats stats;
  RleLexer lex(enc.vocab, stats);
  std::vector<spec::Name> out;
  const spec::Name n = *ab.lookup("n"), i = *ab.lookup("i");
  EXPECT_FALSE(lex.step(n, out).error);
  ASSERT_EQ(out.size(), 1u);  // eager emission at v=1
  EXPECT_FALSE(lex.step(i, out).error);
  EXPECT_EQ(out.size(), 2u);
  EXPECT_FALSE(lex.block_open());
}

TEST(Lexer, BlocksEmitAtBoundary) {
  spec::Alphabet ab;
  auto p = parse("(n[2,4] << i, true)", ab);
  Encoding enc = encode(p);
  mon::MonitorStats stats;
  RleLexer lex(enc.vocab, stats);
  std::vector<spec::Name> out;
  const spec::Name n = *ab.lookup("n"), i = *ab.lookup("i");
  lex.step(n, out);
  lex.step(n, out);
  lex.step(n, out);
  EXPECT_TRUE(out.empty()) << "block still open below v";
  EXPECT_TRUE(lex.block_open());
  lex.step(i, out);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0], enc.vocab.token_for(n, 3));
  EXPECT_EQ(out[1], enc.vocab.token_for(i, 1));
}

TEST(Lexer, EagerEmissionAtUpperBound) {
  spec::Alphabet ab;
  auto p = parse("(n[2,3] << i, true)", ab);
  Encoding enc = encode(p);
  mon::MonitorStats stats;
  RleLexer lex(enc.vocab, stats);
  std::vector<spec::Name> out;
  const spec::Name n = *ab.lookup("n");
  lex.step(n, out);
  lex.step(n, out);
  lex.step(n, out);  // count == v: emit now
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], enc.vocab.token_for(n, 3));
  // A fourth n exceeds the bound.
  EXPECT_TRUE(lex.step(n, out).error);
}

TEST(Lexer, BlockBelowMinimumIsError) {
  spec::Alphabet ab;
  auto p = parse("(n[2,4] << i, true)", ab);
  Encoding enc = encode(p);
  mon::MonitorStats stats;
  RleLexer lex(enc.vocab, stats);
  std::vector<spec::Name> out;
  lex.step(*ab.lookup("n"), out);
  const auto r = lex.step(*ab.lookup("i"), out);
  EXPECT_TRUE(r.error);
  EXPECT_NE(r.reason.find("below u=2"), std::string::npos);
}

TEST(Lexer, FinishEmitsOrReportsPending) {
  spec::Alphabet ab;
  auto p = parse("(n[2,4] << i, true)", ab);
  Encoding enc = encode(p);
  mon::MonitorStats stats;
  {
    RleLexer lex(enc.vocab, stats);
    std::vector<spec::Name> out;
    lex.step(*ab.lookup("n"), out);
    lex.step(*ab.lookup("n"), out);
    bool pending = true;
    EXPECT_FALSE(lex.finish(out, pending).error);
    EXPECT_FALSE(pending);
    ASSERT_EQ(out.size(), 1u);  // n#2 emitted at end of observation
  }
  {
    RleLexer lex(enc.vocab, stats);
    std::vector<spec::Name> out;
    lex.step(*ab.lookup("n"), out);
    bool pending = false;
    EXPECT_FALSE(lex.finish(out, pending).error);
    EXPECT_TRUE(pending);
    EXPECT_TRUE(out.empty());
  }
}

TEST(Lexer, SpaceBitsScaleWithBounds) {
  spec::Alphabet ab1, ab2;
  auto small = parse("(n << i, true)", ab1);
  auto big = parse("(n[100,60K] << i, true)", ab2);
  mon::MonitorStats stats;
  Encoding enc_small = encode(small);
  RleLexer lex_small(enc_small.vocab, stats);
  // The big encoding cannot be materialized; check the analytic lexer bits.
  PslCost cost_big = estimate(big);
  EXPECT_LT(lex_small.space_bits(), cost_big.lexer_bits);
  EXPECT_EQ(cost_big.lexer_bits,
            mon::bits_for_value(60000) + mon::bits_for_value(2) + 1);
}

}  // namespace
}  // namespace loom::psl

#include <gtest/gtest.h>

#include "mon/compiled.hpp"
#include "support/args.hpp"
#include "support/bitset.hpp"
#include "support/diagnostics.hpp"
#include "support/interner.hpp"
#include "support/rng.hpp"

namespace loom::support {
namespace {

TEST(Bitset, StartsEmpty) {
  Bitset b;
  EXPECT_TRUE(b.empty());
  EXPECT_EQ(b.count(), 0u);
  EXPECT_FALSE(b.test(0));
  EXPECT_FALSE(b.test(1000));
}

TEST(Bitset, SetTestReset) {
  Bitset b;
  b.set(3);
  b.set(64);
  b.set(129);
  EXPECT_TRUE(b.test(3));
  EXPECT_TRUE(b.test(64));
  EXPECT_TRUE(b.test(129));
  EXPECT_FALSE(b.test(4));
  EXPECT_EQ(b.count(), 3u);
  b.reset(64);
  EXPECT_FALSE(b.test(64));
  EXPECT_EQ(b.count(), 2u);
}

TEST(Bitset, GrowsAutomatically) {
  Bitset b(4);
  b.set(700);
  EXPECT_TRUE(b.test(700));
  EXPECT_GE(b.capacity(), 701u);
}

TEST(Bitset, UnionIntersection) {
  Bitset a, b;
  a.set(1);
  a.set(65);
  b.set(65);
  b.set(2);
  Bitset u = a | b;
  EXPECT_TRUE(u.test(1));
  EXPECT_TRUE(u.test(2));
  EXPECT_TRUE(u.test(65));
  Bitset i = a & b;
  EXPECT_FALSE(i.test(1));
  EXPECT_FALSE(i.test(2));
  EXPECT_TRUE(i.test(65));
}

TEST(Bitset, SubtractRemovesElements) {
  Bitset a, b;
  a.set(1);
  a.set(2);
  a.set(3);
  b.set(2);
  a.subtract(b);
  EXPECT_TRUE(a.test(1));
  EXPECT_FALSE(a.test(2));
  EXPECT_TRUE(a.test(3));
}

TEST(Bitset, IntersectsAndSubset) {
  Bitset a, b, c;
  a.set(10);
  b.set(10);
  b.set(20);
  c.set(30);
  EXPECT_TRUE(a.intersects(b));
  EXPECT_FALSE(a.intersects(c));
  EXPECT_TRUE(a.is_subset_of(b));
  EXPECT_FALSE(b.is_subset_of(a));
  Bitset empty;
  EXPECT_TRUE(empty.is_subset_of(a));
  EXPECT_FALSE(empty.intersects(a));
}

TEST(Bitset, EqualityIgnoresCapacity) {
  Bitset a(10), b(1000);
  a.set(5);
  b.set(5);
  EXPECT_EQ(a, b);
  b.set(700);
  EXPECT_FALSE(a == b);
}

TEST(Bitset, FirstNextIteration) {
  Bitset b;
  b.set(7);
  b.set(63);
  b.set(64);
  b.set(200);
  EXPECT_EQ(b.first(), 7u);
  EXPECT_EQ(b.next(7), 63u);
  EXPECT_EQ(b.next(63), 64u);
  EXPECT_EQ(b.next(64), 200u);
  EXPECT_EQ(b.next(200), Bitset::npos);
  std::vector<std::size_t> seen;
  b.for_each([&](std::size_t i) { seen.push_back(i); });
  EXPECT_EQ(seen, (std::vector<std::size_t>{7, 63, 64, 200}));
}

TEST(Bitset, ToString) {
  Bitset b;
  b.set(1);
  b.set(4);
  EXPECT_EQ(b.to_string(), "{1, 4}");
  EXPECT_EQ(Bitset{}.to_string(), "{}");
}

TEST(Interner, InternIsIdempotent) {
  Interner in;
  const auto a = in.intern("set_imgAddr");
  const auto b = in.intern("set_glAddr");
  EXPECT_NE(a, b);
  EXPECT_EQ(in.intern("set_imgAddr"), a);
  EXPECT_EQ(in.size(), 2u);
  EXPECT_EQ(in.name(a), "set_imgAddr");
}

TEST(Interner, LookupWithoutInsert) {
  Interner in;
  EXPECT_FALSE(in.lookup("missing").has_value());
  const auto id = in.intern("x");
  ASSERT_TRUE(in.lookup("x").has_value());
  EXPECT_EQ(*in.lookup("x"), id);
}

TEST(Rng, DeterministicForSeed) {
  Rng a(42), b(42), c(43);
  EXPECT_EQ(a.next(), b.next());
  EXPECT_EQ(a.next(), b.next());
  Rng a2(42);
  EXPECT_NE(a2.next(), c.next());
}

TEST(Rng, BelowRespectsBound) {
  Rng r(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(r.below(17), 17u);
  }
}

TEST(Rng, BetweenInclusive) {
  Rng r(9);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto v = r.between(3, 5);
    EXPECT_GE(v, 3u);
    EXPECT_LE(v, 5u);
    saw_lo |= v == 3;
    saw_hi |= v == 5;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, Uniform01InRange) {
  Rng r(11);
  for (int i = 0; i < 1000; ++i) {
    const double v = r.uniform01();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Diagnostics, CollectsAndCounts) {
  DiagnosticSink sink;
  EXPECT_TRUE(sink.ok());
  sink.warning({1, 2}, "careful");
  EXPECT_TRUE(sink.ok());
  sink.error({3, 4}, "broken");
  EXPECT_FALSE(sink.ok());
  EXPECT_EQ(sink.error_count(), 1u);
  EXPECT_EQ(sink.all().size(), 2u);
  EXPECT_NE(sink.to_string().find("3:4: error: broken"), std::string::npos);
}

TEST(Args, ParsePositiveAcceptsPlainDecimals) {
  EXPECT_EQ(parse_positive("1"), std::size_t{1});
  EXPECT_EQ(parse_positive("32"), std::size_t{32});
  EXPECT_EQ(parse_positive("007"), std::size_t{7});
  // The largest count representable on this platform round-trips.
  const auto max = std::numeric_limits<std::size_t>::max();
  EXPECT_EQ(parse_positive(std::to_string(max).c_str()), max);
}

TEST(Args, ParsePositiveRejectsGarbageSignsWhitespaceAndOverflow) {
  // Full-match parse: anything strtoull would have truncated or skipped is
  // a rejection, so "--checkpoint-stride=5x" and an overflowing
  // "--threads=99999999999999999999" become usage errors, not surprises.
  EXPECT_EQ(parse_positive(nullptr), std::nullopt);
  EXPECT_EQ(parse_positive(""), std::nullopt);
  EXPECT_EQ(parse_positive("0"), std::nullopt);
  EXPECT_EQ(parse_positive("5x"), std::nullopt);
  EXPECT_EQ(parse_positive("x5"), std::nullopt);
  EXPECT_EQ(parse_positive("+5"), std::nullopt);
  EXPECT_EQ(parse_positive("-1"), std::nullopt);
  EXPECT_EQ(parse_positive(" 5"), std::nullopt);
  EXPECT_EQ(parse_positive("5 "), std::nullopt);
  EXPECT_EQ(parse_positive("5\t"), std::nullopt);
  EXPECT_EQ(parse_positive("0x10"), std::nullopt);
  EXPECT_EQ(parse_positive("99999999999999999999"), std::nullopt);  // > 2^64
  EXPECT_EQ(parse_positive("18446744073709551616"), std::nullopt);  // 2^64
}

TEST(Args, ParseCountFallsBackOnlyWhenTheArgumentIsAbsent) {
  char prog[] = "prog";
  char good[] = "12";
  char bad[] = "12x";
  char huge[] = "99999999999999999999";
  {
    char* argv[] = {prog, good};
    EXPECT_EQ(parse_count(2, argv, 1, 7), std::size_t{12});
    EXPECT_EQ(parse_count(1, argv, 1, 7), std::size_t{7});  // missing → fallback
  }
  {
    // Present but malformed is nullopt — the caller exits 2, it does not
    // silently run the sweep with the fallback.
    char* argv[] = {prog, bad};
    EXPECT_EQ(parse_count(2, argv, 1, 7), std::nullopt);
  }
  {
    char* argv[] = {prog, huge};
    EXPECT_EQ(parse_count(2, argv, 1, 7), std::nullopt);
  }
}

TEST(Args, ParseOnOffIsExact) {
  EXPECT_EQ(parse_on_off("on"), true);
  EXPECT_EQ(parse_on_off("off"), false);
  EXPECT_EQ(parse_on_off(nullptr), std::nullopt);
  EXPECT_EQ(parse_on_off(""), std::nullopt);
  EXPECT_EQ(parse_on_off("On"), std::nullopt);
  EXPECT_EQ(parse_on_off("ON"), std::nullopt);
  EXPECT_EQ(parse_on_off("on "), std::nullopt);
  EXPECT_EQ(parse_on_off(" off"), std::nullopt);
  EXPECT_EQ(parse_on_off("true"), std::nullopt);
}

TEST(Args, LaneWidthFlagRidesTheParsePositiveContract) {
  // Both CLIs parse --lanes= through parse_positive, so the lane-width
  // contract is exactly its contract: plain decimals >= 1 pass, zero and
  // garbage are nullopt — which loomcheck and parallel_campaign turn into
  // usage text and exit status 2, never a silent scalar fallback.  Width 1
  // (the scalar differential baseline of the eighth invariant) is a legal
  // value, not a rejection.
  EXPECT_EQ(parse_positive("1"), std::size_t{1});
  EXPECT_EQ(parse_positive("8"), std::size_t{8});
  EXPECT_EQ(parse_positive("13"), std::size_t{13});
  EXPECT_EQ(parse_positive("0"), std::nullopt);
  EXPECT_EQ(parse_positive("-8"), std::nullopt);
  EXPECT_EQ(parse_positive("8x"), std::nullopt);
  EXPECT_EQ(parse_positive("wave"), std::nullopt);
}

TEST(Args, ParseBackendCoversEverySpellingTheClisAccept) {
  // The one parser behind loomcheck's --backend=, parallel_campaign's and
  // bench_scaling's positional backend: every enumerator round-trips, and
  // an unknown spelling is nullopt — which each CLI turns into its usage
  // text and exit status 2, never a silent Auto fallback.
  EXPECT_EQ(mon::parse_backend("auto"), mon::Backend::Auto);
  EXPECT_EQ(mon::parse_backend("drct"), mon::Backend::Drct);
  EXPECT_EQ(mon::parse_backend("viapsl"), mon::Backend::ViaPSL);
  EXPECT_EQ(mon::parse_backend("vm"), mon::Backend::Vm);
  EXPECT_EQ(mon::parse_backend(""), std::nullopt);
  EXPECT_EQ(mon::parse_backend("VM"), std::nullopt);    // case-sensitive
  EXPECT_EQ(mon::parse_backend("vm "), std::nullopt);   // no trimming
  EXPECT_EQ(mon::parse_backend("psl"), std::nullopt);
  EXPECT_EQ(mon::parse_backend("bytecode"), std::nullopt);
}

TEST(Args, ParseBackendArgFallsBackOnlyWhenAbsent) {
  char prog[] = "prog";
  char vm[] = "vm";
  char bad[] = "wasm";
  {
    char* argv[] = {prog, vm};
    EXPECT_EQ(mon::parse_backend_arg(2, argv, 1), mon::Backend::Vm);
    EXPECT_EQ(mon::parse_backend_arg(1, argv, 1), mon::Backend::Auto);
  }
  {
    // Present but unknown is nullopt — the bench/example mains exit 2.
    char* argv[] = {prog, bad};
    EXPECT_EQ(mon::parse_backend_arg(2, argv, 1), std::nullopt);
  }
}

}  // namespace
}  // namespace loom::support

// Round-trip property of the trace text format: for fuzzed traces t,
// from_text(to_text(t)) == t, including interning of names unknown to the
// parsing alphabet; malformed lines produce positioned diagnostics instead
// of garbage traces.  Also covers the capture → recorder plumbing the
// campaign engine's replay path is built on.
#include <gtest/gtest.h>

#include "abv/trace.hpp"
#include "sim/trace_capture.hpp"
#include "support/rng.hpp"
#include "testing.hpp"

namespace loom::abv {
namespace {

spec::Trace fuzz_trace(spec::Alphabet& ab, support::Rng& rng) {
  // A pool mixing declared inputs/outputs with undirected names; times are
  // arbitrary non-decreasing stamps (duplicates included on purpose).
  const spec::Name pool[] = {
      ab.input("set_imgAddr"), ab.output("set_irq"), ab.name("noise_0"),
      ab.name("x"),            ab.name("y_long_name_with_underscores"),
  };
  spec::Trace t;
  const std::size_t len = rng.below(40);
  std::uint64_t ps = 0;
  for (std::size_t i = 0; i < len; ++i) {
    ps += rng.below(3);  // 0 keeps simultaneous events in the trace
    t.push_back({pool[rng.below(std::size(pool))], sim::Time::ps(ps)});
  }
  return t;
}

TEST(TraceRoundTrip, FuzzedTracesSurviveToTextFromText) {
  spec::Alphabet ab;
  for (std::uint64_t seed = 0; seed < 64; ++seed) {
    support::Rng rng(seed);
    const spec::Trace t = fuzz_trace(ab, rng);
    support::DiagnosticSink sink;
    const auto parsed = from_text(to_text(t, ab), ab, sink);
    ASSERT_TRUE(parsed.has_value()) << sink.to_string();
    EXPECT_TRUE(sink.ok());
    EXPECT_TRUE(loom::testing::traces_equal(*parsed, t, ab)) << "seed " << seed;
  }
}

TEST(TraceRoundTrip, UnknownNamesAreInternedOnTheFly) {
  spec::Alphabet writer;
  support::Rng rng(7);
  const spec::Trace original = fuzz_trace(writer, rng);
  const std::string text = to_text(original, writer);

  // A fresh alphabet knows none of the names; parsing must intern each one
  // exactly once and re-serialization must reproduce the text even though
  // the ids came out different.
  spec::Alphabet reader;
  support::DiagnosticSink sink;
  const auto parsed = from_text(text, reader, sink);
  ASSERT_TRUE(parsed.has_value()) << sink.to_string();
  EXPECT_EQ(to_text(*parsed, reader), text);
  EXPECT_LE(reader.size(), 5u);  // the pool's distinct names, nothing more
  for (const auto& ev : *parsed) {
    EXPECT_TRUE(reader.lookup(reader.text(ev.name)).has_value());
  }
}

TEST(TraceRoundTrip, CommentsAndBlankLinesAreSkipped) {
  spec::Alphabet ab;
  support::DiagnosticSink sink;
  const auto parsed =
      from_text("# header\n\na@10\n# mid\nb@25\n\n", ab, sink);
  ASSERT_TRUE(parsed.has_value()) << sink.to_string();
  ASSERT_EQ(parsed->size(), 2u);
  EXPECT_EQ((*parsed)[0].name, ab.name("a"));
  EXPECT_EQ((*parsed)[0].time, sim::Time::ps(10));
  EXPECT_EQ((*parsed)[1].name, ab.name("b"));
  EXPECT_EQ((*parsed)[1].time, sim::Time::ps(25));
}

struct MalformedCase {
  const char* text;
  std::size_t error_line;
  const char* reason_fragment;
};

TEST(TraceRoundTrip, MalformedLinesProducePositionedDiagnostics) {
  const MalformedCase cases[] = {
      {"a@1\nnot_an_event\n", 2, "expected 'name@picoseconds'"},
      {"@5\n", 1, "expected 'name@picoseconds'"},
      {"a@1\nb@xyz\n", 2, "bad timestamp"},
      {"a@\n", 1, "bad timestamp"},
      {"a@99999999999999999999999999\n", 1, "bad timestamp"},
      // std::stoull used to accept all of these: trailing garbage parsed
      // as the leading digits, signs and leading whitespace were skipped,
      // and "-1" wrapped to a huge unsigned value.  The full-match
      // std::from_chars parse rejects each with a diagnostic.
      {"a@5xyz\n", 1, "trailing garbage"},
      {"a@-1\n", 1, "bad timestamp"},
      {"a@+5\n", 1, "bad timestamp"},
      {"a@ 5\n", 1, "bad timestamp"},
      {"a@5 \n", 1, "trailing garbage"},
      // 2^64 exactly: one past the last representable picosecond stamp.
      {"a@18446744073709551616\n", 1, "overflows 64-bit"},
      // Names with embedded whitespace would re-serialize ambiguously.
      {"a b@5\n", 1, "whitespace in event name"},
      {"a\tb@5\n", 1, "whitespace in event name"},
  };
  for (const auto& c : cases) {
    spec::Alphabet ab;
    support::DiagnosticSink sink;
    const auto parsed = from_text(c.text, ab, sink);
    EXPECT_FALSE(parsed.has_value()) << c.text;
    ASSERT_EQ(sink.error_count(), 1u) << c.text;
    EXPECT_EQ(sink.all().front().pos.line, c.error_line) << c.text;
    EXPECT_NE(sink.all().front().message.find(c.reason_fragment),
              std::string::npos)
        << "got: " << sink.all().front().message;
  }
}

TEST(TraceRoundTrip, BoundaryTimestampsAndLineEndingsParse) {
  // The largest representable stamp must still parse (the overflow
  // rejection is > 2^64 - 1, not >=), and CRLF-recorded files are
  // line-ending convention, not trailing garbage.
  spec::Alphabet ab;
  support::DiagnosticSink sink;
  const auto parsed =
      from_text("a@18446744073709551615\r\nb@0\r\n", ab, sink);
  ASSERT_TRUE(parsed.has_value()) << sink.to_string();
  ASSERT_EQ(parsed->size(), 2u);
  EXPECT_EQ((*parsed)[0].time.picoseconds(), 18446744073709551615ull);
  EXPECT_EQ((*parsed)[1].time.picoseconds(), 0ull);
}

TEST(TraceRoundTrip, CaptureFeedsRecorderFeedsTextFormat) {
  // The replay pipeline end-to-end: a kernel-level capture fans events
  // into a TraceRecorder (ids are interned names), and the recorded trace
  // round-trips through the text format.
  spec::Alphabet ab;
  const spec::Name a = ab.input("a");
  const spec::Name b = ab.output("b");

  sim::TraceCapture capture;
  TraceRecorder recorder;
  attach(capture, recorder);
  capture.capture(a, sim::Time::ns(1));
  capture.capture(b, sim::Time::ns(2));
  capture.capture(a, sim::Time::ns(2));

  ASSERT_EQ(recorder.trace().size(), 3u);
  EXPECT_EQ(capture.captured_count(), 3u);
  EXPECT_TRUE(loom::testing::traces_equal(
      recorder.trace(), loom::testing::timed_trace_of("a@1 b@2 a@2", ab), ab));

  support::DiagnosticSink sink;
  const auto parsed = from_text(to_text(recorder.trace(), ab), ab, sink);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_TRUE(loom::testing::traces_equal(*parsed, recorder.trace(), ab));

  // take() moves the trace out and leaves the recorder reusable.
  const spec::Trace taken = recorder.take();
  EXPECT_EQ(taken.size(), 3u);
  EXPECT_TRUE(recorder.trace().empty());
}

}  // namespace
}  // namespace loom::abv

#include <gtest/gtest.h>

#include <set>
#include <sstream>

#include "sim/vcd.hpp"

namespace loom::sim {
namespace {

TEST(Vcd, HeaderListsScopesAndVariables) {
  std::ostringstream out;
  Scheduler sched;
  VcdWriter vcd(out, sched);
  vcd.add_wire("top.ipu.status", 2);
  vcd.add_event("top.ipu.read_img");
  vcd.add_wire("top.lock_open", 1);
  vcd.finish();
  const std::string text = out.str();
  EXPECT_NE(text.find("$timescale 1ps $end"), std::string::npos);
  EXPECT_NE(text.find("$scope module top $end"), std::string::npos);
  EXPECT_NE(text.find("$scope module ipu $end"), std::string::npos);
  EXPECT_NE(text.find("$var wire 2 "), std::string::npos);
  EXPECT_NE(text.find("$var event 1 "), std::string::npos);
  EXPECT_NE(text.find("$enddefinitions $end"), std::string::npos);
  // Scopes must be balanced.
  std::size_t scopes = 0, upscopes = 0, pos = 0;
  while ((pos = text.find("$scope", pos)) != std::string::npos) {
    ++scopes;
    pos += 6;
  }
  pos = 0;
  while ((pos = text.find("$upscope", pos)) != std::string::npos) {
    ++upscopes;
    pos += 8;
  }
  EXPECT_EQ(scopes, upscopes);
}

TEST(Vcd, ChangesAreTimestampedAndDeduplicated) {
  std::ostringstream out;
  Scheduler sched;
  VcdWriter vcd(out, sched);
  auto v = vcd.add_wire("sig", 4);
  vcd.change(v, 3);
  vcd.change(v, 3);  // duplicate: suppressed
  struct Driver {
    static Process run(Scheduler& s, VcdWriter& vcd, VcdWriter::Var v) {
      co_await s.wait(Time::ns(5));
      vcd.change(v, 9);
    }
  };
  sched.spawn(Driver::run(sched, vcd, v), "driver");
  sched.run();
  vcd.finish();
  const std::string text = out.str();
  EXPECT_NE(text.find("#0\nb0011 !"), std::string::npos);
  EXPECT_NE(text.find("#5000\nb1001 !"), std::string::npos);
  // Exactly two value lines for the wire (duplicate write suppressed).
  std::size_t count = 0, pos = 0;
  while ((pos = text.find("\nb", pos)) != std::string::npos) {
    ++count;
    pos += 2;
  }
  EXPECT_EQ(count, 2u);
}

TEST(Vcd, EventStrobesAlwaysEmit) {
  std::ostringstream out;
  Scheduler sched;
  VcdWriter vcd(out, sched);
  auto e = vcd.add_event("ev");
  vcd.strobe(e);
  vcd.strobe(e);  // events are not deduplicated
  vcd.finish();
  const std::string text = out.str();
  std::size_t count = 0, pos = 0;
  while ((pos = text.find("1!", pos)) != std::string::npos) {
    ++count;
    pos += 2;
  }
  EXPECT_EQ(count, 2u);
}

TEST(Vcd, SignalBindingTracksUpdates) {
  std::ostringstream out;
  Scheduler sched;
  Signal<int> sig(sched, "sig", 1);
  VcdWriter vcd(out, sched);
  vcd.add_signal("top.sig", sig, 8);
  struct Driver {
    static Process run(Scheduler& s, Signal<int>& sig) {
      co_await s.wait(Time::ns(3));
      sig.write(7);
      co_await s.wait(Time::ns(3));
      sig.write(2);
    }
  };
  sched.spawn(Driver::run(sched, sig), "driver");
  sched.run();
  vcd.finish();
  const std::string text = out.str();
  EXPECT_NE(text.find("b00000001 !"), std::string::npos);  // initial
  EXPECT_NE(text.find("b00000111 !"), std::string::npos);  // 7
  EXPECT_NE(text.find("b00000010 !"), std::string::npos);  // 2
}

TEST(Vcd, RegistrationAfterDumpThrows) {
  std::ostringstream out;
  Scheduler sched;
  VcdWriter vcd(out, sched);
  auto v = vcd.add_wire("a", 1);
  vcd.change(v, 1);
  EXPECT_THROW(vcd.add_wire("late", 1), std::logic_error);
}

TEST(Vcd, StrobeOnWireThrows) {
  std::ostringstream out;
  Scheduler sched;
  VcdWriter vcd(out, sched);
  auto v = vcd.add_wire("a", 1);
  EXPECT_THROW(vcd.strobe(v), std::logic_error);
}

TEST(Vcd, ManyVariablesGetDistinctIds) {
  std::ostringstream out;
  Scheduler sched;
  VcdWriter vcd(out, sched);
  for (int k = 0; k < 200; ++k) {
    vcd.add_wire("w" + std::to_string(k), 1);
  }
  vcd.finish();
  // 200 > 94: identifiers roll over to two characters without clashes.
  const std::string text = out.str();
  EXPECT_EQ(vcd.variable_count(), 200u);
  EXPECT_NE(text.find("$var wire 1 !\" w94 $end"), std::string::npos);
  // All $var identifiers are unique.
  std::set<std::string> ids;
  std::size_t pos = 0;
  while ((pos = text.find("$var wire 1 ", pos)) != std::string::npos) {
    pos += 12;
    const std::size_t sp = text.find(' ', pos);
    ids.insert(text.substr(pos, sp - pos));
  }
  EXPECT_EQ(ids.size(), 200u);
}

}  // namespace
}  // namespace loom::sim

// Monitor::reset() reuse contract: a reset-reused instance is
// indistinguishable from a freshly constructed one — same verdict, same
// violation report, same Figure-6 stats, same space accounting — over
// fuzzed traces, for every monitor kind (Drct antecedent repeated and not,
// Drct timed, ViaPSL clause network) and for instances stamped from a
// mon::CompiledProperty.  The campaign engine's compiled path leans on
// this: one instance per mutation unit, reset between mutants, must be
// byte-identical to the legacy fresh-instance-per-mutant path.
#include <gtest/gtest.h>

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "mon/compiled.hpp"
#include "mon/monitors.hpp"
#include "psl/clause_monitor.hpp"
#include "support/rng.hpp"
#include "testing.hpp"

namespace loom::mon {
namespace {

using MonitorFactory = std::function<std::unique_ptr<Monitor>()>;

// A fuzzed trace: events drawn from the property's names plus two noise
// names, at strictly increasing times with jittered gaps.  Deterministic —
// the Rng is seeded per trial.
spec::Trace fuzz_trace(const std::vector<spec::Name>& names,
                       support::Rng& rng) {
  spec::Trace t;
  const std::size_t len = rng.below(40);
  sim::Time now;
  for (std::size_t i = 0; i < len; ++i) {
    now += sim::Time::ns(1 + rng.below(2000));
    t.push_back({names[rng.below(names.size())], now});
  }
  return t;
}

void feed(Monitor& m, const spec::Trace& t) {
  for (const auto& ev : t) m.observe(ev.name, ev.time);
  m.finish(t.empty() ? sim::Time::zero() : t.back().time);
}

void expect_same_outcome(Monitor& fresh, Monitor& reused,
                         const std::string& what) {
  EXPECT_EQ(fresh.verdict(), reused.verdict()) << what;
  EXPECT_EQ(fresh.violation().has_value(), reused.violation().has_value())
      << what;
  if (fresh.violation() && reused.violation()) {
    EXPECT_EQ(fresh.violation()->event_ordinal,
              reused.violation()->event_ordinal)
        << what;
    EXPECT_EQ(fresh.violation()->time, reused.violation()->time) << what;
    EXPECT_EQ(fresh.violation()->name, reused.violation()->name) << what;
    EXPECT_EQ(fresh.violation()->reason, reused.violation()->reason) << what;
  }
  EXPECT_EQ(fresh.stats().ops, reused.stats().ops) << what;
  EXPECT_EQ(fresh.stats().events, reused.stats().events) << what;
  EXPECT_EQ(fresh.stats().max_ops_per_event, reused.stats().max_ops_per_event)
      << what;
  EXPECT_EQ(fresh.space_bits(), reused.space_bits()) << what;
}

// For every trial: feed a first fuzzed trace into the reused instance,
// reset it, then run a second fuzzed trace through both it and a fresh
// instance.  Whatever the first trace left behind — retirement, armed
// obligations, half-recognized fragments, open lexer blocks — reset() must
// erase without a trace.
void check_reset_reuse(const MonitorFactory& make,
                       const std::vector<spec::Name>& names,
                       const char* label) {
  for (std::uint64_t trial = 0; trial < 50; ++trial) {
    support::Rng rng = support::Rng::stream(0xC0FFEE + trial, 7);
    const spec::Trace first = fuzz_trace(names, rng);
    const spec::Trace second = fuzz_trace(names, rng);

    auto reused = make();
    feed(*reused, first);
    reused->reset();

    auto fresh = make();
    feed(*fresh, second);
    feed(*reused, second);

    expect_same_outcome(*fresh, *reused,
                        std::string(label) + " trial " +
                            std::to_string(trial));
  }
}

struct Case {
  const char* label;
  const char* source;
};

constexpr Case kCases[] = {
    {"antecedent-repeated", "(n << i, true)"},
    {"antecedent-retiring", "(({a, b, c}, &) << s, false)"},
    {"antecedent-ranged",
     "(({n1, n2}, &) < ({n3[2,8], n4}, |) < n5 << i, true)"},
    {"timed", "(p[2,3] => q[1,4] < r, 10us)"},
};

std::vector<spec::Name> names_of(const spec::Property& p, spec::Alphabet& ab) {
  std::vector<spec::Name> names;
  p.alphabet().for_each(
      [&](std::size_t n) { names.push_back(static_cast<spec::Name>(n)); });
  names.push_back(ab.name("noise_x"));
  names.push_back(ab.name("noise_y"));
  return names;
}

TEST(ResetReuse, DrctMonitorsFreshEqualsReset) {
  for (const auto& c : kCases) {
    spec::Alphabet ab;
    const spec::Property p = loom::testing::parse(c.source, ab);
    const auto names = names_of(p, ab);
    check_reset_reuse([&] { return make_monitor(p); }, names, c.label);
  }
}

TEST(ResetReuse, ViaPslMonitorsFreshEqualsReset) {
  for (const auto& c : kCases) {
    spec::Alphabet ab;
    const spec::Property p = loom::testing::parse(c.source, ab);
    const auto names = names_of(p, ab);
    const auto encoding =
        std::make_shared<const psl::Encoding>(psl::encode(p, 2000000, &ab));
    check_reset_reuse(
        [&] { return std::make_unique<psl::ClauseMonitor>(encoding); }, names,
        c.label);
  }
}

TEST(ResetReuse, CompiledInstancesFreshEqualsReset) {
  // The campaign stamps instances from shared translate-once artifacts;
  // the reset contract must hold for those exactly as for stand-alone
  // construction, on both backends.
  for (const auto& c : kCases) {
    spec::Alphabet ab;
    const spec::Property p = loom::testing::parse(c.source, ab);
    const auto names = names_of(p, ab);
    CompileOptions opt;
    opt.with_viapsl_artifact = true;
    const CompiledProperty compiled = CompiledProperty::compile(p, ab, opt);
    check_reset_reuse([&] { return compiled.instantiate(Backend::Drct); },
                      names, c.label);
    check_reset_reuse([&] { return compiled.instantiate(Backend::ViaPSL); },
                      names, c.label);
    // The VM program is only built when the compile targets it.
    CompileOptions vm_opt;
    vm_opt.backend = Backend::Vm;
    const CompiledProperty vm = CompiledProperty::compile(p, ab, vm_opt);
    check_reset_reuse([&] { return vm.instantiate(Backend::Vm); }, names,
                      c.label);
  }
}

}  // namespace
}  // namespace loom::mon

// The wire codec's rejection half: the malformed-frame fuzz wall.  Every
// hostile input — truncation at every byte boundary, seeded bit flips,
// oversized length prefixes, foreign magic/version/tag bytes, corruption
// buried inside nested payloads — must come back as a positioned
// diagnostic (offset inside the buffer, non-empty message), never a
// crash, never a hang, never an out-of-bounds read.  The ASan+UBSan CI
// leg runs this suite to hold "never UB" to the letter.  All randomness
// is support::Rng streams keyed by constants: the corpus is identical on
// every run and every platform.
#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "abv/campaign.hpp"
#include "mon/snapshot.hpp"
#include "support/rng.hpp"
#include "testing.hpp"
#include "wire/payload.hpp"
#include "wire/wire.hpp"

namespace loom::wire {
namespace {

// One valid framed payload of each type, used as the seed corpus every
// corruption strategy mutates.
struct CorpusEntry {
  const char* name;
  Payload tag;
  std::vector<std::uint8_t> payload;  // unframed payload bytes
};

// Decodes `bytes` as payload `tag`, returning false with the decoder's
// positioned error when the codec rejected.  Success is allowed (a bit
// flip can land in a don't-care position or produce a different but
// well-formed value); what this harness asserts is that rejection is
// always clean and acceptance never reads out of bounds.
bool decode_as(Payload tag, const std::uint8_t* data, std::size_t size,
               DecodeError& err) {
  Decoder d(data, size);
  bool ok = false;
  switch (tag) {
    case Payload::Trace: {
      spec::Alphabet ab;
      spec::Trace t;
      ok = decode_trace(d, t, ab);
      break;
    }
    case Payload::Options: {
      abv::CampaignOptions o;
      ok = decode_options(d, o);
      break;
    }
    case Payload::Result: {
      abv::CampaignResult r;
      ok = decode_result(d, r);
      break;
    }
    case Payload::Snapshot: {
      mon::Snapshot s;
      ok = decode_snapshot(d, s);
      break;
    }
    case Payload::WorkerRequest: {
      WorkerRequestData req;
      ok = decode_worker_request(d, req);
      break;
    }
    case Payload::WorkerPartial: {
      WorkerPartialData part;
      ok = decode_worker_partial(d, part);
      break;
    }
    case Payload::WorkerDone: {
      std::uint64_t n = 0;
      ok = decode_worker_done(d, n);
      break;
    }
    case Payload::WorkerError: {
      std::string m;
      ok = decode_worker_error(d, m);
      break;
    }
  }
  if (!ok) err = d.error();
  return ok;
}

std::vector<CorpusEntry> build_corpus() {
  std::vector<CorpusEntry> corpus;
  Encoder e;
  support::Rng rng = support::Rng::stream(0xC0B9, 11);

  {
    spec::Alphabet ab;
    spec::Trace t;
    const char* pool[] = {"a", "b", "irq", "set_imgAddr"};
    std::uint64_t ps = 0;
    for (int i = 0; i < 12; ++i) {
      ps += 1 + rng.below(100);
      t.push_back({ab.name(pool[rng.below(4)]), sim::Time::ps(ps)});
    }
    e.clear();
    encode_trace(e, t, ab);
    corpus.push_back({"trace", Payload::Trace, e.bytes()});
  }
  {
    abv::CampaignOptions o;
    o.seeds = 7;
    o.worker_command = {"loomcheck", "--worker"};
    e.clear();
    encode_options(e, o);
    corpus.push_back({"options", Payload::Options, e.bytes()});
  }
  {
    abv::CampaignResult r;
    r.traces = 5;
    r.events = 321;
    r.alphabet_coverage = 0.75;
    r.mutation[2].applied = 9;
    e.clear();
    encode_result(e, r);
    corpus.push_back({"result", Payload::Result, e.bytes()});
  }
  {
    // A real monitor snapshot, tag word included.
    spec::Alphabet ab;
    auto p = loom::testing::parse("(({a, b}, &) < c << i, true)", ab);
    auto compiled = mon::CompiledProperty::compile(p, ab, {});
    auto m = compiled.instantiate();
    m->observe(ab.name("a"), sim::Time::ns(5));
    m->observe(ab.name("b"), sim::Time::ns(7));
    mon::Snapshot snap;
    m->snapshot(snap);
    e.clear();
    encode_snapshot(e, snap);
    corpus.push_back({"snapshot", Payload::Snapshot, e.bytes()});
  }
  {
    WorkerRequestData req;
    req.names = {"a", "b", "c", "noise0"};
    req.directions = {0, 0, 1, 2};
    req.properties = {"(a < b < c << i, true)"};
    req.shards = {{0, 0, 0, 6}, {1, 0, 6, 12}};
    e.clear();
    encode_worker_request(e, req);
    corpus.push_back({"request", Payload::WorkerRequest, e.bytes()});
  }
  {
    WorkerPartialData part;
    part.shard = 3;
    part.job = 1;
    part.partial.traces = 2;
    part.alphabet_seen = {true, false, true, true, false};
    part.has_recognizer = true;
    abv::RecognizerCoverage::RangeCov row;
    row.name = 2;
    row.state_mask = 5;
    row.max_count = 3;
    row.lo = 1;
    row.hi = 4;
    part.recognizer_rows = {{row, row}, {row}};
    e.clear();
    encode_worker_partial(e, part);
    corpus.push_back({"partial", Payload::WorkerPartial, e.bytes()});
  }
  {
    e.clear();
    encode_worker_done(e, 4);
    corpus.push_back({"done", Payload::WorkerDone, e.bytes()});
  }
  {
    e.clear();
    encode_worker_error(e, "worker 1: property parse failed");
    corpus.push_back({"error", Payload::WorkerError, e.bytes()});
  }
  return corpus;
}

// A rejection must be positioned inside (or at the end of) the buffer that
// produced it, with a message a human can act on.
void expect_positioned(const DecodeError& err, std::size_t buffer_size,
                       const std::string& what) {
  EXPECT_LE(err.offset, buffer_size) << what;
  EXPECT_FALSE(err.message.empty()) << what;
  EXPECT_NE(err.to_string().find("wire: byte "), std::string::npos) << what;
}

TEST(WireFuzz, PayloadTruncationAtEveryByteBoundary) {
  // Every strict prefix of every valid payload must reject with a
  // positioned diagnostic: a prefix can never decode cleanly because every
  // codec ends by consuming its last field, and the harness's exhausted()
  // requirement means dropped trailing bytes surface too.  (Prefixes that
  // happen to decode structurally are still caught: decode_as only returns
  // true when the decoder consumed what it needed without failing, and we
  // additionally require full consumption here.)
  for (const CorpusEntry& entry : build_corpus()) {
    for (std::size_t cut = 0; cut < entry.payload.size(); ++cut) {
      DecodeError err;
      const bool ok = decode_as(entry.tag, entry.payload.data(), cut, err);
      const std::string what = std::string(entry.name) + " cut at byte " +
                               std::to_string(cut);
      EXPECT_FALSE(ok) << what;
      if (!ok) expect_positioned(err, cut, what);
    }
  }
}

TEST(WireFuzz, FrameTruncationAtEveryByteBoundary) {
  // Same wall one layer up: a framed payload truncated anywhere — inside
  // the 16 header bytes or inside the payload — must fail parse_frame with
  // a positioned diagnostic.
  for (const CorpusEntry& entry : build_corpus()) {
    Encoder e;
    for (const std::uint8_t b : entry.payload) e.put_u8(b);
    std::vector<std::uint8_t> framed;
    write_frame(framed, entry.tag, e);
    for (std::size_t cut = 0; cut < framed.size(); ++cut) {
      Frame frame;
      std::size_t consumed = 0;
      DecodeError err;
      const bool ok =
          parse_frame(framed.data(), cut, frame, consumed, err);
      const std::string what = std::string(entry.name) +
                               " frame cut at byte " + std::to_string(cut);
      EXPECT_FALSE(ok) << what;
      if (!ok) expect_positioned(err, cut, what);
    }
  }
}

TEST(WireFuzz, HeaderFieldCorruptionsRejectWithNamedDiagnostics) {
  Encoder e;
  e.put_u64(42);
  std::vector<std::uint8_t> framed;
  write_frame(framed, Payload::WorkerDone, e);

  struct Case {
    std::size_t offset;
    std::uint8_t value;
    const char* expect_substr;
  };
  const Case cases[] = {
      {0, 0x00, "bad magic"},                     // magic byte 0
      {3, 0x4E, "bad magic"},                     // magic byte 3 ("LOON")
      {4, kWireVersion + 1, "wire format version"},  // future version
      {4, 0, "wire format version"},              // ancient version
      {5, 0, "payload tag"},                      // tag below range
      {5, 99, "payload tag"},                     // tag above range
      {6, 1, "reserved"},                         // reserved byte 6
      {7, 0x80, "reserved"},                      // reserved byte 7
  };
  for (const Case& c : cases) {
    std::vector<std::uint8_t> bad = framed;
    bad[c.offset] = c.value;
    Frame frame;
    std::size_t consumed = 0;
    DecodeError err;
    const std::string what = "offset " + std::to_string(c.offset) +
                             " <- " + std::to_string(c.value);
    ASSERT_FALSE(parse_frame(bad.data(), bad.size(), frame, consumed, err))
        << what;
    expect_positioned(err, bad.size(), what);
    EXPECT_NE(err.message.find(c.expect_substr), std::string::npos)
        << what << ": got \"" << err.message << "\"";
    EXPECT_EQ(err.offset, c.offset >= 6 ? 6 : c.offset >= 5 ? 5
                          : c.offset >= 4  ? 4
                                           : 0)
        << what;
  }
}

TEST(WireFuzz, OversizedLengthPrefixesNeverAllocate) {
  Encoder e;
  e.put_u64(42);
  std::vector<std::uint8_t> framed;
  write_frame(framed, Payload::WorkerDone, e);

  // Length fields that lie: past the cap, past the buffer, and the
  // all-ones pattern that would overflow a naive header+length sum.
  const std::uint64_t lies[] = {
      kMaxFrameBytes + 1,
      std::uint64_t{1} << 40,
      ~std::uint64_t{0},
      framed.size(),  // claims more payload than the buffer holds
      9,              // one byte more than present
  };
  for (const std::uint64_t lie : lies) {
    std::vector<std::uint8_t> bad = framed;
    for (int i = 0; i < 8; ++i) {
      bad[8 + i] = static_cast<std::uint8_t>(lie >> (8 * i));
    }
    Frame frame;
    std::size_t consumed = 0;
    DecodeError err;
    const std::string what = "length=" + std::to_string(lie);
    ASSERT_FALSE(parse_frame(bad.data(), bad.size(), frame, consumed, err))
        << what;
    expect_positioned(err, bad.size(), what);
    EXPECT_EQ(err.offset, 8u) << what;
  }
}

TEST(WireFuzz, SingleBitFlipsNeverCrashAndRejectPositioned) {
  // Exhaustive single-bit corruption of every corpus payload: each decode
  // either rejects with a positioned diagnostic or succeeds having read
  // only in-bounds bytes (ASan is the witness for the latter).
  std::size_t rejected = 0, survived = 0;
  for (const CorpusEntry& entry : build_corpus()) {
    for (std::size_t byte = 0; byte < entry.payload.size(); ++byte) {
      for (int bit = 0; bit < 8; ++bit) {
        std::vector<std::uint8_t> bad = entry.payload;
        bad[byte] = static_cast<std::uint8_t>(bad[byte] ^ (1u << bit));
        DecodeError err;
        if (decode_as(entry.tag, bad.data(), bad.size(), err)) {
          ++survived;  // landed in a value byte: different but well-formed
        } else {
          ++rejected;
          expect_positioned(err, bad.size(),
                            std::string(entry.name) + " bit " +
                                std::to_string(bit) + " of byte " +
                                std::to_string(byte));
        }
      }
    }
  }
  // The corpus is structured enough that plenty of flips must trip
  // validation (length prefixes, enum bytes, booleans, snapshot tags)...
  EXPECT_GT(rejected, 100u);
  // ...and plenty must not (pure value bytes), proving the harness
  // exercises the acceptance path under corruption too.
  EXPECT_GT(survived, 100u);
}

TEST(WireFuzz, RandomByteSplattersNeverCrash) {
  // Heavier seeded corruption: 1-16 random byte overwrites per trial, plus
  // random tails appended and random decode-as-wrong-type, over every
  // corpus entry.  Deterministic: every value comes from fixed Rng streams.
  const std::vector<CorpusEntry> corpus = build_corpus();
  std::size_t rejected = 0;
  for (std::uint64_t trial = 0; trial < 400; ++trial) {
    support::Rng rng = support::Rng::stream(0xF12 + trial, 23);
    const CorpusEntry& entry = corpus[rng.below(corpus.size())];
    std::vector<std::uint8_t> bad = entry.payload;
    const std::uint64_t splats = 1 + rng.below(16);
    for (std::uint64_t s = 0; s < splats && !bad.empty(); ++s) {
      bad[rng.below(bad.size())] = static_cast<std::uint8_t>(rng.below(256));
    }
    if (rng.chance(1, 4)) {  // sometimes grow a garbage tail
      for (std::uint64_t i = 1 + rng.below(32); i > 0; --i) {
        bad.push_back(static_cast<std::uint8_t>(rng.below(256)));
      }
    }
    // Sometimes decode as a different payload type entirely (a hostile
    // sender can stamp any tag on any bytes).
    const Payload as = rng.chance(1, 3)
                           ? static_cast<Payload>(1 + rng.below(8))
                           : entry.tag;
    DecodeError err;
    if (!decode_as(as, bad.data(), bad.size(), err)) {
      ++rejected;
      expect_positioned(err, bad.size(), "trial " + std::to_string(trial));
    }
  }
  EXPECT_GT(rejected, 200u);  // the wall actually rejects most garbage
}

TEST(WireFuzz, PureGarbageStreamsRejectEverywhere) {
  // No valid skeleton at all: random byte strings of every small length
  // against every decoder and the frame parser.
  for (std::uint64_t trial = 0; trial < 200; ++trial) {
    support::Rng rng = support::Rng::stream(0x6A4B + trial, 29);
    std::vector<std::uint8_t> junk(rng.below(200));
    for (auto& b : junk) b = static_cast<std::uint8_t>(rng.below(256));
    Frame frame;
    std::size_t consumed = 0;
    DecodeError err;
    if (parse_frame(junk.data(), junk.size(), frame, consumed, err)) {
      // Astronomically unlikely (needs magic+version+tag+zeros to line
      // up), but if it happens the frame must at least be in bounds.
      EXPECT_LE(consumed, junk.size());
    } else {
      expect_positioned(err, junk.size(), "trial " + std::to_string(trial));
    }
    for (int tag = 1; tag <= 8; ++tag) {
      DecodeError derr;
      if (!decode_as(static_cast<Payload>(tag), junk.data(), junk.size(),
                     derr)) {
        expect_positioned(derr, junk.size(),
                          "payload trial " + std::to_string(trial) +
                              " tag " + std::to_string(tag));
      }
    }
  }
}

TEST(WireFuzz, NestedCorruptionInsideWorkerPayloads) {
  // Surgical strikes on the nested structures: corrupt count words and
  // enum bytes buried inside a WorkerRequest/WorkerPartial and check the
  // rejection names the inner field, proving validation reaches all the
  // way down (a count is validated against remaining bytes BEFORE any
  // container is sized off it).
  Encoder e;

  {
    // A direction byte of 7 (valid range 0..2) deep inside the request.
    WorkerRequestData req;
    req.names = {"a", "b"};
    req.directions = {0, 7};
    req.properties = {"(a << i, true)"};
    e.clear();
    encode_worker_request(e, req);
    WorkerRequestData back;
    Decoder d(e.bytes());
    ASSERT_FALSE(decode_worker_request(d, back));
    expect_positioned(d.error(), e.size(), "direction byte");
    EXPECT_NE(d.error().message.find("direction"), std::string::npos)
        << d.error().to_string();
  }
  {
    // A name-count word claiming 2^60 names: must fail the count guard at
    // the count's own offset, before any vector is sized.
    WorkerRequestData req;
    req.names = {"a"};
    req.directions = {0};
    e.clear();
    encode_worker_request(e, req);
    std::vector<std::uint8_t> bad = e.bytes();
    const std::uint64_t lie = std::uint64_t{1} << 60;
    for (int i = 0; i < 8; ++i) {
      bad[i] = static_cast<std::uint8_t>(lie >> (8 * i));
    }
    WorkerRequestData back;
    Decoder d(bad.data(), bad.size());
    ASSERT_FALSE(decode_worker_request(d, back));
    expect_positioned(d.error(), bad.size(), "name count");
    EXPECT_EQ(d.error().offset, 0u);
  }
  {
    // A trace event pointing past its own name table.
    spec::Alphabet ab;
    spec::Trace t;
    t.push_back({ab.name("a"), sim::Time::ns(1)});
    e.clear();
    encode_trace(e, t, ab);
    // Layout: count(names)=1, "a", count(events)=1, idx u64, time u64.
    // The event's table index is the third-from-last u64; overwrite it.
    std::vector<std::uint8_t> bad = e.bytes();
    const std::size_t idx_at = bad.size() - 16;
    bad[idx_at] = 9;  // index 9 into a 1-entry table
    spec::Alphabet ab2;
    spec::Trace back;
    Decoder d(bad.data(), bad.size());
    ASSERT_FALSE(decode_trace(d, back, ab2));
    expect_positioned(d.error(), bad.size(), "trace name index");
    EXPECT_NE(d.error().message.find("names table"), std::string::npos)
        << d.error().to_string();
  }
  {
    // A snapshot whose tag word names a future snapshot version: the wire
    // decoder rejects it exactly like Monitor::restore would, but as a
    // positioned diagnostic instead of an exception.
    mon::Snapshot snap;
    snap.put_u64(mon::snapshot_tag(0x414E5443));  // a real ANTC tag...
    snap.put_u64(7);
    e.clear();
    encode_snapshot(e, snap);
    mon::Snapshot out;
    {
      Decoder d(e.bytes());
      ASSERT_TRUE(decode_snapshot(d, out));  // current version: accepted
    }
    snap.set_word(0, (std::uint64_t{mon::kSnapshotVersion + 1} << 32) |
                         0x414E5443);
    e.clear();
    encode_snapshot(e, snap);
    Decoder d(e.bytes());
    ASSERT_FALSE(decode_snapshot(d, out));
    expect_positioned(d.error(), e.size(), "future snapshot");
    EXPECT_NE(d.error().message.find("snapshot format version 2"),
              std::string::npos)
        << d.error().to_string();
  }
  {
    // A boolean byte of 0xFF inside options (byte-level strictness: a
    // flipped bit cannot smuggle a vacuously-true flag through).
    abv::CampaignOptions o;
    e.clear();
    encode_options(e, o);
    std::vector<std::uint8_t> bad = e.bytes();
    bool tripped = false;
    for (std::size_t i = 0; i < bad.size() && !tripped; ++i) {
      if (bad[i] > 1) continue;  // only bytes that could be the flags
      std::vector<std::uint8_t> mutant = bad;
      mutant[i] = 0xFF;
      abv::CampaignOptions back;
      Decoder d(mutant.data(), mutant.size());
      if (!decode_options(d, back) &&
          d.error().message.find("boolean") != std::string::npos) {
        expect_positioned(d.error(), mutant.size(), "boolean strictness");
        tripped = true;
      }
    }
    EXPECT_TRUE(tripped) << "no 0xFF overwrite ever tripped the boolean "
                            "guard — did the options layout lose its flags?";
  }
}

TEST(WireFuzz, ErrorStateIsStickyAndReadsReturnZero) {
  // After the first failure every later read is a quiet zero and the first
  // diagnostic survives — the pattern the payload codecs rely on to
  // validate eagerly but check ok() once.
  std::vector<std::uint8_t> three = {1, 2, 3};
  Decoder d(three.data(), three.size());
  EXPECT_EQ(d.u64(), 0u);  // truncated: fails
  ASSERT_FALSE(d.ok());
  const std::string first = d.error().to_string();
  EXPECT_EQ(d.u32(), 0u);
  EXPECT_EQ(d.u8(), 0u);
  EXPECT_FALSE(d.boolean());
  std::string s = "unchanged";
  d.string_into(s);
  std::vector<bool> bits = {true};
  d.bits_into(bits);
  EXPECT_EQ(d.remaining(), 0u);
  EXPECT_FALSE(d.exhausted());
  EXPECT_EQ(d.error().to_string(), first);
}

}  // namespace
}  // namespace loom::wire

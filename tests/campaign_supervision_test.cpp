// The seventh engine invariant: a campaign whose workers fault — hang,
// trickle, corrupt a frame, die mid-stream, skip their trailer or exit
// before doing any work — and are then re-dispatched by the supervisor
// must be byte-for-byte identical to a clean run.  Retry accounting is an
// engine diagnostic (CampaignResult::worker_retries), never semantic.
// Plus lockdowns of the degradation contract (allow_partial turns an
// exhausted worker slot into pinned per-shard failure records instead of a
// throw), the frame-deadline escalation (a Hang-faulted worker that
// ignores SIGTERM dies to SIGKILL without wedging the suite), the legacy
// blocking drain (supervised=false) as the differential baseline, and the
// descriptor-hygiene / bounded-wait process primitives underneath.
//
// Custom main: the binary re-execs itself with --worker so the fork+exec
// spawn path runs against a real exec'd worker, not just the fork-only
// in-image path.
#include <gtest/gtest.h>

#include <chrono>
#include <cstring>
#include <string>
#include <vector>

#include "abv/campaign.hpp"
#include "testing.hpp"
#include "wire/payload.hpp"
#include "wire/process.hpp"

#if LOOM_WIRE_HAS_PROCESS

#include <poll.h>
#include <unistd.h>

namespace {
const char* g_self = nullptr;  // argv[0]: the exec-mode worker command
}

namespace loom::abv {
namespace {

constexpr const char* kProperty = "(({a, b}, &) < c << i, true)";

constexpr WorkerFault kAllFaults[] = {
    WorkerFault::CorruptFrame,   WorkerFault::DieMidStream,
    WorkerFault::FutureVersion,  WorkerFault::Hang,
    WorkerFault::SlowStream,     WorkerFault::PartialWritesOnly,
    WorkerFault::ExitBeforeRequest,
};

const char* fault_name(WorkerFault f) {
  switch (f) {
    case WorkerFault::None: return "None";
    case WorkerFault::CorruptFrame: return "CorruptFrame";
    case WorkerFault::DieMidStream: return "DieMidStream";
    case WorkerFault::FutureVersion: return "FutureVersion";
    case WorkerFault::Hang: return "Hang";
    case WorkerFault::SlowStream: return "SlowStream";
    case WorkerFault::PartialWritesOnly: return "PartialWritesOnly";
    case WorkerFault::ExitBeforeRequest: return "ExitBeforeRequest";
  }
  return "?";
}

// seeds=2 → 12 units; shard_size=3 → exactly four shards [0,3) [3,6)
// [6,9) [9,12), so every worker-count / fault-position case below has a
// pinned layout.
CampaignOptions small_options() {
  CampaignOptions opt;
  opt.seeds = 2;
  opt.stimuli.rounds = 2;
  opt.mutants_per_kind = 2;
  opt.shard_size = 3;
  return opt;
}

struct CampaignRun {
  CampaignResult result;
  std::string report;
};

CampaignRun run_with(const CampaignOptions& opt, const char* source = kProperty) {
  spec::Alphabet ab;
  auto p = loom::testing::parse(source, ab);
  const CampaignResult r = run_campaign(p, ab, opt);
  return {r, r.report(ab)};
}

// ---------------------------------------------------------------------------
// The seventh invariant: faulted-then-retried ≡ clean, byte for byte.

TEST(CampaignSupervision, FaultedThenRetriedEqualsCleanAcrossTheGrid) {
  const CampaignRun clean = run_with(small_options());
  // Generous deadline: only the Hang / SlowStream cells depend on it
  // firing, and a retired worker is always re-dispatched fault-free.
  for (const bool exec_mode : {false, true}) {
    for (const std::size_t workers : {std::size_t{1}, std::size_t{2}}) {
      for (const WorkerFault fault : kAllFaults) {
        CampaignOptions opt = small_options();
        opt.workers = workers;
        opt.worker_fault = fault;
        opt.worker_retries = 1;
        opt.worker_timeout_ms = 1000;
        if (exec_mode) opt.worker_command = {g_self, "--worker"};
        const CampaignRun retried = run_with(opt);
        const std::string what = std::string("fault=") + fault_name(fault) +
                                 " workers=" + std::to_string(workers) +
                                 (exec_mode ? " exec" : " fork");
        EXPECT_TRUE(
            loom::testing::results_identical(retried.result, clean.result))
            << what;
        EXPECT_EQ(retried.report, clean.report) << what;
        EXPECT_FALSE(retried.result.degraded()) << what;
        // The recovery is visible as a diagnostic — and only there.
        EXPECT_GE(retried.result.worker_retries, 1u) << what;
      }
    }
  }
}

TEST(CampaignSupervision, NthPartialFaultVariantsRecoverIdentically) {
  // The fault strikes the worker's second partial frame, so the parent has
  // already buffered a clean first partial from the same attempt — it must
  // be discarded with the attempt, not merged twice after the retry.
  const CampaignRun clean = run_with(small_options());
  for (const WorkerFault fault :
       {WorkerFault::CorruptFrame, WorkerFault::DieMidStream,
        WorkerFault::PartialWritesOnly}) {
    CampaignOptions opt = small_options();
    opt.workers = 2;  // two shards per worker → fault_at=1 exists
    opt.worker_fault = fault;
    opt.worker_fault_at = 1;
    opt.worker_retries = 1;
    const CampaignRun retried = run_with(opt);
    const std::string what = std::string("fault=") + fault_name(fault);
    EXPECT_TRUE(
        loom::testing::results_identical(retried.result, clean.result))
        << what;
    EXPECT_EQ(retried.report, clean.report) << what;
  }
}

TEST(CampaignSupervision, SeventhInvariantHoldsPerBackend) {
  for (const mon::Backend backend :
       {mon::Backend::Drct, mon::Backend::ViaPSL, mon::Backend::Vm}) {
    CampaignOptions base = small_options();
    base.backend = backend;
    loom::testing::scalar_lanes_if_forced(base);
    const CampaignRun clean = run_with(base, "(n << i, true)");
    for (const WorkerFault fault :
         {WorkerFault::CorruptFrame, WorkerFault::Hang}) {
      CampaignOptions opt = base;
      opt.workers = 2;
      opt.worker_fault = fault;
      opt.worker_retries = 1;
      opt.worker_timeout_ms = 1000;
      const CampaignRun retried = run_with(opt, "(n << i, true)");
      const std::string what = std::string("backend=") +
                               mon::to_string(backend) +
                               " fault=" + fault_name(fault);
      EXPECT_TRUE(
          loom::testing::results_identical(retried.result, clean.result))
          << what;
      EXPECT_EQ(retried.report, clean.report) << what;
    }
  }
}

TEST(CampaignSupervision, FaultPositionBeyondThePartialCountDisarms) {
  // worker_fault_at past the worker's partial count: the fault never
  // strikes, the run is clean on the first attempt, no retry is spent.
  const CampaignRun clean = run_with(small_options());
  CampaignOptions opt = small_options();
  opt.workers = 2;
  opt.worker_fault = WorkerFault::CorruptFrame;
  opt.worker_fault_at = 99;
  opt.worker_retries = 0;  // would throw if the fault fired
  const CampaignRun run = run_with(opt);
  EXPECT_TRUE(loom::testing::results_identical(run.result, clean.result));
  EXPECT_EQ(run.report, clean.report);
  EXPECT_EQ(run.result.worker_retries, 0u);
}

// ---------------------------------------------------------------------------
// Deadlines and escalation.

TEST(CampaignSupervision, HungWorkerIsRetiredByTheFrameDeadline) {
  // No retries, no degradation: the deadline alone must surface the hang
  // as a WorkerFailure naming the timeout — and the SIGKILL escalation
  // must actually end a worker that ignores SIGTERM, promptly enough that
  // this test never brushes the suite timeout.
  spec::Alphabet ab;
  auto p = loom::testing::parse(kProperty, ab);
  CampaignOptions opt = small_options();
  opt.workers = 1;
  opt.worker_fault = WorkerFault::Hang;
  opt.worker_timeout_ms = 250;
  const auto begin = std::chrono::steady_clock::now();
  try {
    run_campaign(p, ab, opt);
    FAIL() << "expected WorkerFailure";
  } catch (const WorkerFailure& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("timed out after 250 ms"), std::string::npos) << what;
    EXPECT_NE(what.find("attempt 1 of 1"), std::string::npos) << what;
  }
  const auto elapsed = std::chrono::steady_clock::now() - begin;
  EXPECT_LT(std::chrono::duration<double>(elapsed).count(), 30.0);
}

TEST(CampaignSupervision, SlowStreamTimesOutLikeASilentOne) {
  // One byte per interval keeps poll() reporting readable forever; only
  // the per-frame deadline can retire it.
  spec::Alphabet ab;
  auto p = loom::testing::parse(kProperty, ab);
  CampaignOptions opt = small_options();
  opt.workers = 1;
  opt.worker_fault = WorkerFault::SlowStream;
  opt.worker_timeout_ms = 250;
  try {
    run_campaign(p, ab, opt);
    FAIL() << "expected WorkerFailure";
  } catch (const WorkerFailure& e) {
    EXPECT_NE(std::string(e.what()).find("timed out"), std::string::npos)
        << e.what();
  }
}

// ---------------------------------------------------------------------------
// Graceful degradation (allow_partial).

TEST(CampaignSupervision, ExhaustedRetriesDegradeWithPinnedFailureRecords) {
  // Every worker faults, no retries: with allow_partial the campaign
  // returns instead of throwing, and the loss is itemized shard by shard.
  spec::Alphabet ab;
  auto p = loom::testing::parse(kProperty, ab);
  CampaignOptions opt = small_options();
  opt.workers = 2;
  opt.worker_fault = WorkerFault::CorruptFrame;
  opt.worker_retries = 0;
  opt.allow_partial = true;
  const CampaignResult r = run_campaign(p, ab, opt);
  EXPECT_TRUE(r.degraded());
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.worker_retries, 0u);
  ASSERT_EQ(r.shard_failures.size(), 4u);
  for (std::size_t i = 0; i < 4; ++i) {
    const auto& f = r.shard_failures[i];
    EXPECT_EQ(f.shard, i);
    EXPECT_EQ(f.worker, i % 2);
    EXPECT_EQ(f.unit_begin, 3 * i);
    EXPECT_EQ(f.unit_end, 3 * i + 3);
    EXPECT_NE(f.diagnostic.find("bad magic"), std::string::npos)
        << f.diagnostic;
    EXPECT_NE(f.diagnostic.find("attempt 1 of 1"), std::string::npos)
        << f.diagnostic;
  }
  // Nothing from a failed slot merges: with both workers lost, the
  // aggregates are empty.
  EXPECT_EQ(r.traces, 0u);
  // The report carries the loss, line by line, and cannot claim a pass.
  const std::string report = r.report(ab);
  EXPECT_NE(report.find("degraded: shard 0 (units [0,3)) lost on worker 0: "),
            std::string::npos)
      << report;
  EXPECT_NE(report.find("campaign FAILED"), std::string::npos) << report;
}

TEST(CampaignSupervision, DegradationKeepsTheSurvivingWorkersShards) {
  // Three workers, fault on the second partial: only worker 0 (the one
  // with two shards) faults.  Workers 1 and 2 merge normally; exactly
  // worker 0's shards (0 and 3) are recorded lost.
  spec::Alphabet ab;
  auto p = loom::testing::parse(kProperty, ab);
  CampaignOptions opt = small_options();
  opt.workers = 3;
  opt.worker_fault = WorkerFault::DieMidStream;
  opt.worker_fault_at = 1;
  opt.worker_retries = 0;
  opt.allow_partial = true;
  const CampaignResult r = run_campaign(p, ab, opt);
  EXPECT_TRUE(r.degraded());
  ASSERT_EQ(r.shard_failures.size(), 2u);
  EXPECT_EQ(r.shard_failures[0].shard, 0u);
  EXPECT_EQ(r.shard_failures[0].worker, 0u);
  EXPECT_EQ(r.shard_failures[1].shard, 3u);
  EXPECT_EQ(r.shard_failures[1].worker, 0u);
  // The surviving workers' work is present.
  EXPECT_GT(r.traces, 0u);
}

TEST(CampaignSupervision, AllowPartialWithRetriesStillRecoversCleanly) {
  // allow_partial is a last resort, not a shortcut: while the retry budget
  // holds, the run must come back clean and identical.
  const CampaignRun clean = run_with(small_options());
  CampaignOptions opt = small_options();
  opt.workers = 3;
  opt.worker_fault = WorkerFault::DieMidStream;
  opt.worker_fault_at = 1;
  opt.worker_retries = 1;
  opt.allow_partial = true;
  const CampaignRun run = run_with(opt);
  EXPECT_FALSE(run.result.degraded());
  EXPECT_TRUE(loom::testing::results_identical(run.result, clean.result));
  EXPECT_EQ(run.report, clean.report);
  EXPECT_EQ(run.result.worker_retries, 1u);
}

// ---------------------------------------------------------------------------
// The legacy blocking drain stays a faithful baseline.

TEST(CampaignSupervision, LegacyDrainMatchesSupervisedOnCleanRuns) {
  const CampaignRun in_process = run_with(small_options());
  for (const std::size_t workers : {std::size_t{1}, std::size_t{2}}) {
    CampaignOptions sup = small_options();
    sup.workers = workers;
    CampaignOptions legacy = sup;
    legacy.supervised = false;
    const CampaignRun a = run_with(sup);
    const CampaignRun b = run_with(legacy);
    EXPECT_TRUE(
        loom::testing::results_identical(a.result, in_process.result));
    EXPECT_TRUE(
        loom::testing::results_identical(b.result, in_process.result));
    EXPECT_EQ(a.report, in_process.report);
    EXPECT_EQ(b.report, in_process.report);
  }
}

// ---------------------------------------------------------------------------
// Worker-count and layout edges.

TEST(CampaignSupervision, MoreWorkersThanShardsClamps) {
  CampaignOptions base = small_options();
  base.seeds = 1;
  base.shard_size = 6;  // one shard of six units
  const CampaignRun in_process = run_with(base);
  CampaignOptions opt = base;
  opt.workers = 8;  // clamped to the single shard
  const CampaignRun cross = run_with(opt);
  EXPECT_TRUE(
      loom::testing::results_identical(cross.result, in_process.result));
  EXPECT_EQ(cross.report, in_process.report);
}

TEST(CampaignSupervision, ZeroSeedCampaignsWithWorkersDoNotSpawn) {
  // No units → no shards → the workers knob is moot; the run must not
  // throw, hang or fork.
  CampaignOptions opt = small_options();
  opt.seeds = 0;
  opt.workers = 4;
  opt.worker_fault = WorkerFault::Hang;  // would wedge if a worker spawned
  const CampaignRun r = run_with(opt);
  EXPECT_EQ(r.result.traces, 0u);
  EXPECT_EQ(r.result.worker_retries, 0u);
  EXPECT_FALSE(r.result.degraded());
}

// ---------------------------------------------------------------------------
// The process primitives underneath.

TEST(CampaignSupervision, SiblingWorkersDoNotHoldEachOthersPipesOpen) {
  // Regression for fork-mode descriptor leakage: worker 1 is spawned while
  // worker 0's pipes are open in the parent.  If the fork-only child did
  // not close those inherited ends, worker 0 would never see EOF on its
  // request pipe once the parent closes it.  Each child echoes one byte
  // after its EOF arrives.
  const auto echo_after_eof = [](int in, int out) {
    std::uint8_t b = 0;
    while (wire::read_exact(in, &b, 1) == 1) {
    }
    const std::uint8_t done = 0xAA;
    wire::write_all(out, &done, 1);
    return 0;
  };
  wire::WorkerProcess w0 = wire::spawn_worker({}, echo_after_eof, 0);
  wire::WorkerProcess w1 = wire::spawn_worker(
      {}, echo_after_eof, 1, {w0.to_child, w0.from_child});
  // Worker 1 stays fully alive while worker 0's EOF is delivered.
  w0.close_to_child();
  struct pollfd pfd = {w0.from_child, POLLIN, 0};
  ASSERT_GT(::poll(&pfd, 1, 5000), 0)
      << "worker 0 never saw EOF: a sibling holds its request pipe open";
  std::uint8_t byte = 0;
  ASSERT_EQ(wire::read_exact(w0.from_child, &byte, 1), 1);
  EXPECT_EQ(byte, 0xAA);
  w0.close_from_child();
  EXPECT_EQ(wire::exit_code(w0.wait()), 0);
  // Wind worker 1 down the same way: EOF, echo byte, then exit — closing
  // its reply pipe before reading would SIGPIPE the child instead.
  w1.close_to_child();
  byte = 0;
  ASSERT_EQ(wire::read_exact(w1.from_child, &byte, 1), 1);
  EXPECT_EQ(byte, 0xAA);
  w1.close_from_child();
  EXPECT_EQ(wire::exit_code(w1.wait()), 0);
}

TEST(CampaignSupervision, WaitForTimesOutOnARunningWorker) {
  wire::WorkerProcess w = wire::spawn_worker(
      {},
      [](int in, int) {
        std::uint8_t b = 0;
        wire::read_exact(in, &b, 1);  // blocks: the parent never writes
        return 0;
      },
      0);
  int status = 0;
  EXPECT_FALSE(w.wait_for(60, status)) << "worker exited unexpectedly";
  // terminate() escalates and reaps; the child dies to SIGTERM.
  const int final_status = w.terminate(500);
  EXPECT_NE(wire::describe_wait_status(final_status).find("signal"),
            std::string::npos)
      << wire::describe_wait_status(final_status);
}

TEST(CampaignSupervision, RequestTimeoutBoundsAnAbandonedWorker) {
  // A worker whose parent never writes the request frame must exit on its
  // own once run_campaign_worker is given a request deadline — the
  // loomcheck --worker --worker-timeout-ms= path.
  int request[2], reply[2];
  ASSERT_EQ(::pipe(request), 0);
  ASSERT_EQ(::pipe(reply), 0);
  const int code = run_campaign_worker(request[0], reply[1], 100);
  EXPECT_EQ(code, kWorkerExitBadRequest);
  ::close(reply[1]);
  wire::FdFrameReader reader(reply[0]);
  wire::Frame frame;
  wire::DecodeError err;
  ASSERT_EQ(reader.next(frame, err), wire::FdFrameReader::Status::Frame);
  ASSERT_EQ(frame.tag, wire::Payload::WorkerError);
  wire::Decoder d(frame.data, frame.size);
  std::string message;
  ASSERT_TRUE(wire::decode_worker_error(d, message));
  EXPECT_NE(message.find("timed out"), std::string::npos) << message;
  for (int fd : {request[0], request[1], reply[0]}) ::close(fd);
}

}  // namespace
}  // namespace loom::abv

#endif  // LOOM_WIRE_HAS_PROCESS

int main(int argc, char** argv) {
#if LOOM_WIRE_HAS_PROCESS
  // Hidden worker mode, checked before gtest sees the arguments: the
  // exec-mode cells of the grids re-exec this binary as their worker.
  if (argc >= 2 && std::strcmp(argv[1], "--worker") == 0) {
    return loom::abv::run_campaign_worker(0, 1);
  }
  g_self = argv[0];
#endif
  ::testing::InitGoogleTest(&argc, argv);
  return RUN_ALL_TESTS();
}

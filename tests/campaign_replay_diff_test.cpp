// Differential lockdown of the cached / batched campaign engine: for a
// grid of properties × seeds × thread counts, a campaign run with the
// per-seed trace cache and batched MonitorModule replay must be
// bit-identical to the legacy regenerate-and-step-per-event path — same
// counts, same coverage ratios, same report text.  The cache hit/miss
// counters are the one deliberate difference, and even they are pinned to
// exact values (one miss per seed, a hit for each of the seed's other five
// units) because the cache's exactly-once insert makes them deterministic.
#include <gtest/gtest.h>

#include "abv/campaign.hpp"
#include "testing.hpp"

namespace loom::abv {
namespace {

constexpr std::size_t kSlotsPerSeed = 6;  // valid phase + 5 mutation kinds

struct Mode {
  bool reuse_traces;
  bool batch_replay;
  const char* label;
};

constexpr Mode kLegacy = {false, false, "legacy"};
constexpr Mode kModes[] = {
    {true, false, "reuse_traces"},
    {false, true, "batch_replay"},
    {true, true, "reuse_traces+batch_replay"},
};

struct CampaignRun {
  CampaignResult result;
  std::string report;
};

CampaignRun run_with(const char* source, std::size_t threads, Mode mode,
                     std::size_t seeds, bool viapsl,
                     mon::Backend backend = mon::Backend::Auto) {
  // A fresh alphabet per run: runs must not influence each other through
  // interned ids.
  spec::Alphabet ab;
  auto p = loom::testing::parse(source, ab);
  CampaignOptions opt;
  opt.seeds = seeds;
  opt.stimuli.rounds = 3;
  opt.stimuli.noise_permille = 100;
  opt.mutants_per_kind = 8;
  opt.check_viapsl = viapsl;
  opt.threads = threads;
  opt.shard_size = 1;  // maximal interleaving: every unit its own shard
  opt.reuse_traces = mode.reuse_traces;
  opt.batch_replay = mode.batch_replay;
  opt.backend = backend;
  loom::testing::scalar_lanes_if_forced(opt);
  const CampaignResult r = run_campaign(p, ab, opt);
  return {r, r.report(ab)};
}

void expect_cache_counters(const CampaignResult& r, Mode mode,
                           std::size_t seeds, const char* what) {
  if (mode.reuse_traces) {
    // Whichever of a seed's six units gets there first inserts; the split
    // is exact no matter which one won the race.
    EXPECT_EQ(r.trace_cache_misses, seeds) << what;
    EXPECT_EQ(r.trace_cache_hits, (kSlotsPerSeed - 1) * seeds) << what;
  } else {
    EXPECT_EQ(r.trace_cache_misses, 0u) << what;
    EXPECT_EQ(r.trace_cache_hits, 0u) << what;
  }
}

class CampaignReplayDiff : public ::testing::TestWithParam<const char*> {};

TEST_P(CampaignReplayDiff, CachedBatchedReplayIsBitIdenticalToLegacy) {
  constexpr std::size_t kSeeds[] = {1, 5};
  const std::size_t kThreads[] = {1, 4, 0};  // 0 asks the hardware
  for (const std::size_t seeds : kSeeds) {
    const CampaignRun legacy =
        run_with(GetParam(), 1, kLegacy, seeds, /*viapsl=*/false);
    EXPECT_TRUE(legacy.result.ok()) << legacy.report;
    expect_cache_counters(legacy.result, kLegacy, seeds, "legacy");
    for (const std::size_t threads : kThreads) {
      for (const Mode mode : kModes) {
        const std::string what = std::string(mode.label) + " threads=" +
                                 std::to_string(threads) + " seeds=" +
                                 std::to_string(seeds);
        const CampaignRun run =
            run_with(GetParam(), threads, mode, seeds, /*viapsl=*/false);
        EXPECT_TRUE(loom::testing::results_identical(run.result, legacy.result))
            << what;
        EXPECT_EQ(run.report, legacy.report) << what;
        expect_cache_counters(run.result, mode, seeds, what.c_str());
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Properties, CampaignReplayDiff,
    ::testing::Values("(n << i, true)",                               //
                      "(({a, b, c}, &) << s, false)",                 //
                      "(({n1, n2}, &) < ({n3[2,8], n4}, |) < n5 << i, true)",
                      "(p[2,3] => q[1,4] < r, 10us)"));

TEST_P(CampaignReplayDiff, BackendGridKeepsTheCachedPathBitIdentical) {
  // The replay invariant × the backend knob: for every backend, the
  // cached+batched engine at 4 threads must reproduce the legacy
  // regenerate-and-step serial run byte for byte.
  for (const mon::Backend backend :
       {mon::Backend::Auto, mon::Backend::Drct, mon::Backend::ViaPSL,
        mon::Backend::Vm}) {
    const CampaignRun legacy =
        run_with(GetParam(), 1, kLegacy, 3, /*viapsl=*/false, backend);
    const CampaignRun cached =
        run_with(GetParam(), 4, kModes[2], 3, /*viapsl=*/false, backend);
    const std::string what = std::string("backend=") + to_string(backend);
    EXPECT_TRUE(loom::testing::results_identical(cached.result, legacy.result))
        << what;
    EXPECT_EQ(cached.report, legacy.report) << what;
    expect_cache_counters(cached.result, kModes[2], 3, what.c_str());
  }
}

TEST(CampaignReplayDiff, ViaPslPathIsBitIdenticalToo) {
  // The ViaPSL cross-check runs inside the valid units; the cached /
  // batched engine must leave it untouched as well.
  const char* source = "(({a, b}, &) << s, true)";
  const CampaignRun legacy = run_with(source, 1, kLegacy, 4, /*viapsl=*/true);
  const CampaignRun cached =
      run_with(source, 4, kModes[2], 4, /*viapsl=*/true);
  EXPECT_TRUE(loom::testing::results_identical(cached.result, legacy.result));
  EXPECT_EQ(cached.report, legacy.report);
}

TEST(CampaignReplayDiff, BatchRunSplitsCacheCountersPerProperty) {
  // run_campaigns() shares one cache across properties; the per-result
  // counters must still come out exactly per-property.
  const char* sources[] = {"(n << i, true)", "(p[2,3] => q[1,4] < r, 10us)"};
  spec::Alphabet ab;
  std::vector<spec::Property> props;
  for (const char* s : sources) props.push_back(loom::testing::parse(s, ab));
  std::vector<const spec::Property*> ptrs;
  for (const auto& p : props) ptrs.push_back(&p);

  CampaignOptions opt;
  opt.seeds = 3;
  opt.stimuli.rounds = 2;
  opt.mutants_per_kind = 4;
  opt.threads = 4;
  opt.shard_size = 1;
  const auto results = run_campaigns(ptrs, ab, opt);
  ASSERT_EQ(results.size(), 2u);
  for (const auto& r : results) {
    EXPECT_EQ(r.trace_cache_misses, opt.seeds);
    EXPECT_EQ(r.trace_cache_hits, (kSlotsPerSeed - 1) * opt.seeds);
  }
}

}  // namespace
}  // namespace loom::abv

// ABV framework tests: stimuli generation, mutation injection, checker
// aggregation, coverage, trace I/O.
#include <gtest/gtest.h>

#include "abv/checker.hpp"
#include "abv/coverage.hpp"
#include "abv/mutate.hpp"
#include "abv/stimuli.hpp"
#include "abv/trace.hpp"
#include "psl/clause_monitor.hpp"
#include "testing.hpp"

namespace loom::abv {
namespace {

using loom::testing::parse;

const char* kProperties[] = {
    "(n << i, true)",
    "(n[2,4] << i, true)",
    "(({a, b, c}, &) << s, false)",
    "(({a, b}, |) < c << i, true)",
    "(({n1, n2}, &) < ({n3[2,8], n4}, |) < n5 << i, true)",
    "(p => q, 100ns)",
    "(p[2,3] => q[1,4] < r, 10us)",
    "(({u, w}, &) => q < r[2,3], 1ms)",
};

class StimuliValid : public ::testing::TestWithParam<const char*> {};

TEST_P(StimuliValid, GeneratedTracesAreAccepted) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    spec::Alphabet ab;
    auto p = parse(GetParam(), ab);
    support::Rng rng(seed);
    StimuliOptions opt;
    opt.rounds = 1 + seed % 4;
    opt.noise_permille = seed % 2 == 0 ? 200 : 0;
    const spec::Trace t = generate_valid(p, ab, rng, opt);
    ASSERT_FALSE(t.empty());
    const sim::Time end = t.back().time;
    const auto ref = spec::reference_check(p, t, end);
    EXPECT_NE(ref.verdict, spec::RefVerdict::Rejected)
        << GetParam() << " seed " << seed << ": " << ref.reason << " at "
        << ref.error_index;

    // The Drct monitor agrees.
    auto m = mon::make_monitor(p);
    loom::testing::run_monitor(*m, t, end);
    EXPECT_NE(m->verdict(), mon::Verdict::Violated)
        << GetParam() << " seed " << seed
        << (m->violation() ? ": " + m->violation()->to_string(ab) : "");
  }
}

INSTANTIATE_TEST_SUITE_P(Properties, StimuliValid,
                         ::testing::ValuesIn(kProperties));

TEST(Stimuli, AntecedentRoundsEndWithTriggers) {
  spec::Alphabet ab;
  auto p = parse("(n << i, true)", ab);
  support::Rng rng(3);
  StimuliOptions opt;
  opt.rounds = 5;
  const spec::Trace t = generate_valid(p, ab, rng, opt);
  std::size_t triggers = 0;
  for (const auto& ev : t) {
    if (ev.name == *ab.lookup("i")) ++triggers;
  }
  EXPECT_EQ(triggers, 5u);
  EXPECT_EQ(t.back().name, *ab.lookup("i"));
}

TEST(Stimuli, TimedRoundsMeetTheDeadline) {
  spec::Alphabet ab;
  auto p = parse("(p[2,3] => q[1,4] < r, 1us)", ab);
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    support::Rng rng(seed);
    StimuliOptions opt;
    opt.rounds = 3;
    const spec::Trace t = generate_valid(p, ab, rng, opt);
    const auto ref = spec::reference_check(p, t, t.back().time);
    EXPECT_NE(ref.verdict, spec::RefVerdict::Rejected)
        << "seed " << seed << ": " << ref.reason;
  }
}

class MutationDetection
    : public ::testing::TestWithParam<MutationKind> {};

TEST_P(MutationDetection, ReferenceAndMonitorsAgreeOnMutants) {
  // Mutants are not all invalid; whatever the reference says, the Drct
  // monitor must agree, and invalid mutants must be detected.
  std::size_t rejected = 0, produced = 0;
  for (const char* src : kProperties) {
    spec::Alphabet ab;
    auto p = parse(src, ab);
    for (std::uint64_t seed = 1; seed <= 6; ++seed) {
      support::Rng rng(seed * 77);
      StimuliOptions opt;
      opt.rounds = 2;
      const spec::Trace valid = generate_valid(p, ab, rng, opt);
      auto mutant = mutate(valid, GetParam(), p, rng);
      if (!mutant.has_value()) continue;
      ++produced;
      const sim::Time end = mutant->trace.empty()
                                ? sim::Time::zero()
                                : mutant->trace.back().time;
      const auto ref = spec::reference_check(p, mutant->trace, end);
      if (ref.verdict == spec::RefVerdict::Rejected) ++rejected;

      auto m = mon::make_monitor(p);
      loom::testing::run_monitor(*m, mutant->trace, end);
      EXPECT_EQ(loom::testing::as_ref(m->verdict()), ref.verdict)
          << src << " + " << to_string(GetParam()) << " seed " << seed;
    }
  }
  EXPECT_GT(produced, 0u);
  // Every mutation class must be able to produce detected violations.
  EXPECT_GT(rejected, 0u) << to_string(GetParam());
}

INSTANTIATE_TEST_SUITE_P(
    Kinds, MutationDetection,
    ::testing::Values(MutationKind::Drop, MutationKind::Duplicate,
                      MutationKind::SwapAdjacent, MutationKind::EarlyTrigger,
                      MutationKind::StallDeadline));

TEST(Checker, AggregatesMixedMonitors) {
  spec::Alphabet ab;
  auto p = parse("(n << i, true)", ab);
  Checker checker;
  checker.add("drct", mon::make_monitor(p));
  checker.add("viapsl", std::make_unique<psl::ClauseMonitor>(psl::encode(p)));

  const spec::Trace good = loom::testing::trace_of("n i n i", ab);
  checker.run(good, good.back().time);
  EXPECT_TRUE(checker.all_passing());
  EXPECT_EQ(checker.violation_count(), 0u);

  Checker checker2;
  checker2.add("drct", mon::make_monitor(p));
  checker2.add("viapsl", std::make_unique<psl::ClauseMonitor>(psl::encode(p)));
  const spec::Trace bad = loom::testing::trace_of("i", ab);
  checker2.run(bad, bad.back().time);
  EXPECT_FALSE(checker2.all_passing());
  EXPECT_EQ(checker2.violation_count(), 2u);
  const auto reports = checker2.reports();
  ASSERT_EQ(reports.size(), 2u);
  EXPECT_EQ(reports[0].name, "drct");
  EXPECT_EQ(reports[0].verdict, mon::Verdict::Violated);
  ASSERT_TRUE(reports[1].violation.has_value());
  EXPECT_NE(checker2.summary(ab).find("violated"), std::string::npos);
}

TEST(Coverage, AlphabetCoverageTracksMisses) {
  spec::Alphabet ab;
  auto p = parse("(({a, b, c}, &) << s, false)", ab);
  AlphabetCoverage cov(p.alphabet());
  EXPECT_EQ(cov.total(), 4u);
  cov.record(*ab.lookup("a"));
  cov.record(*ab.lookup("s"));
  cov.record(*ab.lookup("a"));        // repeat: no double counting
  cov.record(ab.name("unrelated"));   // outside the alphabet: ignored
  EXPECT_EQ(cov.covered(), 2u);
  EXPECT_DOUBLE_EQ(cov.ratio(), 0.5);
  const auto report = cov.report(ab);
  EXPECT_NE(report.find("b"), std::string::npos);
  EXPECT_NE(report.find("c"), std::string::npos);
}

TEST(Coverage, RecognizerCoverageGrowsWithStimuli) {
  spec::Alphabet ab;
  auto p = parse("(({a, b}, &) < c[2,4] << i, true)", ab);
  mon::AntecedentMonitor m(p.antecedent());
  RecognizerCoverage cov(m);
  cov.sample();
  const double before = cov.state_ratio();

  support::Rng rng(5);
  StimuliOptions opt;
  opt.rounds = 6;
  const spec::Trace t = generate_valid(spec::Property(p.antecedent()), ab,
                                       rng, opt);
  for (const auto& ev : t) {
    m.observe(ev.name, ev.time);
    cov.sample();
  }
  EXPECT_GT(cov.state_ratio(), before);
  EXPECT_GE(cov.lo_bound_hits(), 1u);
  const auto report = cov.report(ab);
  EXPECT_NE(report.find("c[2,4]"), std::string::npos);
}

TEST(TraceIo, RoundTrip) {
  spec::Alphabet ab;
  const spec::Trace t = loom::testing::timed_trace_of("a@10 b@25 a@30", ab);
  const std::string text = to_text(t, ab);
  support::DiagnosticSink sink;
  spec::Alphabet ab2;
  auto parsed = from_text(text, ab2, sink);
  ASSERT_TRUE(parsed.has_value()) << sink.to_string();
  ASSERT_EQ(parsed->size(), 3u);
  EXPECT_EQ(ab2.text((*parsed)[0].name), "a");
  EXPECT_EQ((*parsed)[1].time, sim::Time::ns(25));
}

TEST(TraceIo, RejectsGarbage) {
  spec::Alphabet ab;
  support::DiagnosticSink sink;
  EXPECT_FALSE(from_text("no-at-sign\n", ab, sink).has_value());
  support::DiagnosticSink sink2;
  EXPECT_FALSE(from_text("a@notanumber\n", ab, sink2).has_value());
  support::DiagnosticSink sink3;
  auto t = from_text("# comment\n\na@5\n", ab, sink3);
  ASSERT_TRUE(t.has_value());
  EXPECT_EQ(t->size(), 1u);
}

TEST(TraceRecorderTest, AccumulatesEvents) {
  TraceRecorder rec;
  rec.record(3, sim::Time::ns(1));
  rec.record(4, sim::Time::ns(2));
  EXPECT_EQ(rec.trace().size(), 2u);
  rec.clear();
  EXPECT_TRUE(rec.trace().empty());
}

}  // namespace
}  // namespace loom::abv

// support::AllocCounter under the replacement operators of
// src/support/alloc_hooks.cpp (this target opts in via CMake): the tally
// moves with new/delete, Scope windows are per-thread, and — the
// regression the counters exist to guard — a warmed mutate_into scratch
// mutates without touching the heap at all.
#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "abv/mutate.hpp"
#include "abv/stimuli.hpp"
#include "support/alloc_counter.hpp"
#include "testing.hpp"

namespace loom::support {
namespace {

TEST(AllocCounter, HooksAreLinkedIntoThisBinary) {
  EXPECT_TRUE(AllocCounter::hooks_linked());
}

TEST(AllocCounter, ScopeSeesThisThreadsAllocations) {
  AllocCounter::Scope scope;
  {
    std::vector<std::uint64_t> v;
    v.reserve(1024);
    EXPECT_GE(scope.allocs(), 1u);
    EXPECT_GE(scope.bytes(), 1024u * sizeof(std::uint64_t));
  }
  EXPECT_GE(scope.frees(), 1u);
}

TEST(AllocCounter, TalliesAreThreadLocal) {
  AllocCounter::Scope scope;
  const std::uint64_t before = scope.allocs();
  std::thread worker([] {
    AllocCounter::Scope inner;
    std::vector<int> v(4096, 7);
    EXPECT_GE(inner.allocs(), 1u);
  });
  worker.join();
  // The worker's vector never shows up in this thread's window (the join
  // machinery itself allocates nothing on this side with libstdc++; allow
  // the thread object's control block, created before the window? no — it
  // was created inside the window, so tolerate exactly that).
  EXPECT_LE(scope.allocs() - before, 4u);
}

TEST(AllocCounter, WarmedMutateIntoScratchIsAllocationFree) {
  // The zero-allocation steady state, as a hard guarantee rather than a
  // benchmark printout: after one warming call per mutation kind, every
  // further mutate_into into the same scratch performs zero heap
  // allocations — any regression (a stray copy, a vector regrowth, a
  // diagnostic string) fails this test.
  spec::Alphabet ab;
  const spec::Property property = loom::testing::parse(
      "(({n1, n2}, &) < ({n3[2,8], n4}, |) < n5 << i, true)", ab);
  const spec::NameSet alphabet = property.alphabet();
  abv::StimuliOptions sopt;
  sopt.rounds = 8;
  support::Rng gen = support::Rng::stream(3, 0);
  const spec::Trace valid = abv::generate_valid(property, ab, gen, sopt);

  constexpr abv::MutationKind kKinds[] = {
      abv::MutationKind::Drop, abv::MutationKind::Duplicate,
      abv::MutationKind::SwapAdjacent, abv::MutationKind::EarlyTrigger,
      abv::MutationKind::StallDeadline};

  abv::MutationResult scratch;
  support::Rng rng = support::Rng::stream(3, 1);
  for (const auto kind : kKinds) {  // warm the buffer + the site index
    (void)abv::mutate_into(valid, kind, property, alphabet, rng, scratch);
  }

  AllocCounter::Scope scope;
  std::size_t applied = 0;
  for (int round = 0; round < 16; ++round) {
    for (const auto kind : kKinds) {
      if (abv::mutate_into(valid, kind, property, alphabet, rng, scratch)) {
        ++applied;
      }
    }
  }
  EXPECT_GT(applied, 0u);
  EXPECT_EQ(scope.allocs(), 0u) << "steady-state mutate_into touched the heap";
}

}  // namespace
}  // namespace loom::support

// The wire codec's identity half: decode(encode(x)) ≡ x, field for field
// and double-bit for double-bit, for every payload type — on handcrafted
// values, on seeded-RNG fuzzed values, and on real campaign artifacts.
// This is the contract the sixth engine invariant (in-process ≡
// cross-process campaigns) rides on; the rejection half lives in
// wire_fuzz_test.cpp.  Also locks the buffer-reuse discipline: one Encoder
// and one target buffer serve many frames without cross-talk.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <string>
#include <vector>

#include "abv/campaign.hpp"
#include "mon/monitors.hpp"
#include "mon/snapshot.hpp"
#include "support/rng.hpp"
#include "testing.hpp"
#include "wire/payload.hpp"
#include "wire/wire.hpp"

namespace loom::wire {
namespace {

spec::Trace fuzz_trace(spec::Alphabet& ab, support::Rng& rng,
                       std::size_t events) {
  // A handful of names, some shared, some per-trace; strictly increasing
  // times so the trace is also a plausible monitor input.
  const char* pool[] = {"a", "b", "start", "irq", "set_imgAddr", "read_img"};
  spec::Trace t;
  std::uint64_t ps = 0;
  for (std::size_t i = 0; i < events; ++i) {
    ps += 1 + rng.below(5000);
    t.push_back({ab.name(pool[rng.below(6)]), sim::Time::ps(ps)});
  }
  return t;
}

abv::CampaignOptions fuzz_options(support::Rng& rng) {
  abv::CampaignOptions o;
  o.first_seed = rng.next();
  o.seeds = rng.below(100);
  o.stimuli.rounds = rng.below(10);
  o.stimuli.noise_permille = static_cast<std::uint32_t>(rng.below(1000));
  o.stimuli.noise_names = rng.below(5);
  o.stimuli.max_gap_ns = rng.below(100);
  o.mutants_per_kind = rng.below(50);
  o.check_viapsl = rng.below(2) != 0;
  o.backend = static_cast<mon::Backend>(rng.below(4));
  o.use_compiled_plans = rng.below(2) != 0;
  o.threads = rng.below(16);
  o.shard_size = rng.below(64);
  o.reuse_traces = rng.below(2) != 0;
  o.batch_replay = rng.below(2) != 0;
  o.reuse_scratch = rng.below(2) != 0;
  o.incremental_replay = rng.below(2) != 0;
  o.checkpoint_stride = rng.below(100);
  o.workers = rng.below(8);
  for (std::uint64_t i = rng.below(4); i > 0; --i) {
    o.worker_command.push_back("arg" + std::to_string(i));
  }
  o.worker_fault = static_cast<abv::WorkerFault>(rng.below(8));
  o.worker_fault_at = rng.below(16);
  o.worker_timeout_ms = rng.below(10000);
  o.worker_retries = rng.below(8);
  o.allow_partial = rng.below(2) != 0;
  o.supervised = rng.below(2) != 0;
  o.lane_width = 1 + rng.below(32);
  return o;
}

abv::CampaignResult fuzz_result(support::Rng& rng) {
  abv::CampaignResult r;
  r.traces = rng.below(1000);
  r.events = rng.below(100000);
  r.valid_accepted = rng.below(1000);
  r.oracle_disagreements = rng.below(10);
  r.viapsl_false_alarms = rng.below(10);
  for (auto& m : r.mutation) {
    m.applied = rng.below(500);
    m.invalid = rng.below(500);
    m.detected = rng.below(500);
    m.missed = rng.below(5);
  }
  r.alphabet_coverage = rng.uniform01();
  r.recognizer_state_coverage = rng.uniform01();
  r.monitor_stats.ops = rng.next();
  r.monitor_stats.events = rng.below(1u << 20);
  r.monitor_stats.max_ops_per_event = rng.below(1000);
  r.compile_stats.plans_built = rng.below(10);
  r.compile_stats.viapsl_encodings = rng.below(10);
  r.compile_stats.instances_stamped = rng.below(10000);
  r.compile_stats.instance_reuses = rng.below(10000);
  r.compile_stats.plan_cache_hits = rng.below(100);
  r.compile_stats.plan_cache_misses = rng.below(100);
  r.compile_stats.backend_requested = static_cast<mon::Backend>(rng.below(4));
  r.compile_stats.backend_chosen = static_cast<mon::Backend>(rng.below(4));
  r.trace_cache_hits = rng.below(1000);
  r.trace_cache_misses = rng.below(1000);
  r.checkpoint_hits = rng.below(1000);
  r.events_skipped = rng.below(100000);
  r.worker_retries = rng.below(10);
  r.lane_waves = rng.below(10000);
  r.lanes_filled = rng.below(100000);
  r.lane_capacity = r.lanes_filled + rng.below(100000);
  for (std::uint64_t i = rng.below(3); i > 0; --i) {
    abv::CampaignResult::ShardFailure f;
    f.worker = rng.below(8);
    f.shard = rng.below(64);
    f.unit_begin = rng.below(100);
    f.unit_end = f.unit_begin + rng.below(100);
    f.diagnostic = "worker " + std::to_string(f.worker) + ": lost";
    r.shard_failures.push_back(std::move(f));
  }
  return r;
}

void expect_options_equal(const abv::CampaignOptions& a,
                          const abv::CampaignOptions& b, const char* what) {
  EXPECT_EQ(a.first_seed, b.first_seed) << what;
  EXPECT_EQ(a.seeds, b.seeds) << what;
  EXPECT_EQ(a.stimuli.rounds, b.stimuli.rounds) << what;
  EXPECT_EQ(a.stimuli.noise_permille, b.stimuli.noise_permille) << what;
  EXPECT_EQ(a.stimuli.noise_names, b.stimuli.noise_names) << what;
  EXPECT_EQ(a.stimuli.max_gap_ns, b.stimuli.max_gap_ns) << what;
  EXPECT_EQ(a.mutants_per_kind, b.mutants_per_kind) << what;
  EXPECT_EQ(a.check_viapsl, b.check_viapsl) << what;
  EXPECT_EQ(a.backend, b.backend) << what;
  EXPECT_EQ(a.use_compiled_plans, b.use_compiled_plans) << what;
  EXPECT_EQ(a.threads, b.threads) << what;
  EXPECT_EQ(a.shard_size, b.shard_size) << what;
  EXPECT_EQ(a.reuse_traces, b.reuse_traces) << what;
  EXPECT_EQ(a.batch_replay, b.batch_replay) << what;
  EXPECT_EQ(a.reuse_scratch, b.reuse_scratch) << what;
  EXPECT_EQ(a.incremental_replay, b.incremental_replay) << what;
  EXPECT_EQ(a.checkpoint_stride, b.checkpoint_stride) << what;
  EXPECT_EQ(a.workers, b.workers) << what;
  EXPECT_EQ(a.worker_command, b.worker_command) << what;
  EXPECT_EQ(a.worker_fault, b.worker_fault) << what;
  EXPECT_EQ(a.worker_fault_at, b.worker_fault_at) << what;
  EXPECT_EQ(a.worker_timeout_ms, b.worker_timeout_ms) << what;
  EXPECT_EQ(a.worker_retries, b.worker_retries) << what;
  EXPECT_EQ(a.allow_partial, b.allow_partial) << what;
  EXPECT_EQ(a.supervised, b.supervised) << what;
  EXPECT_EQ(a.lane_width, b.lane_width) << what;
}

void expect_results_bitwise_equal(const abv::CampaignResult& a,
                                  const abv::CampaignResult& b,
                                  const char* what) {
  EXPECT_TRUE(loom::testing::results_identical(a, b)) << what;
  // results_identical deliberately skips the engine diagnostics; the wire
  // must not.  Doubles compare as bits, not values: the invariant grids
  // compare report bytes, so a codec that "only" loses the last ulp of a
  // coverage ratio is already broken.
  EXPECT_EQ(a.trace_cache_hits, b.trace_cache_hits) << what;
  EXPECT_EQ(a.trace_cache_misses, b.trace_cache_misses) << what;
  EXPECT_EQ(a.checkpoint_hits, b.checkpoint_hits) << what;
  EXPECT_EQ(a.events_skipped, b.events_skipped) << what;
  EXPECT_EQ(a.compile_stats.plans_built, b.compile_stats.plans_built) << what;
  EXPECT_EQ(a.compile_stats.viapsl_encodings, b.compile_stats.viapsl_encodings)
      << what;
  EXPECT_EQ(a.compile_stats.instances_stamped,
            b.compile_stats.instances_stamped)
      << what;
  EXPECT_EQ(a.compile_stats.instance_reuses, b.compile_stats.instance_reuses)
      << what;
  EXPECT_EQ(a.compile_stats.plan_cache_hits, b.compile_stats.plan_cache_hits)
      << what;
  EXPECT_EQ(a.compile_stats.plan_cache_misses,
            b.compile_stats.plan_cache_misses)
      << what;
  std::uint64_t abits, bbits;
  std::memcpy(&abits, &a.alphabet_coverage, 8);
  std::memcpy(&bbits, &b.alphabet_coverage, 8);
  EXPECT_EQ(abits, bbits) << what << " (alphabet_coverage bits)";
  std::memcpy(&abits, &a.recognizer_state_coverage, 8);
  std::memcpy(&bbits, &b.recognizer_state_coverage, 8);
  EXPECT_EQ(abits, bbits) << what << " (recognizer_state_coverage bits)";
  EXPECT_EQ(a.worker_retries, b.worker_retries) << what;
  EXPECT_EQ(a.lane_waves, b.lane_waves) << what;
  EXPECT_EQ(a.lanes_filled, b.lanes_filled) << what;
  EXPECT_EQ(a.lane_capacity, b.lane_capacity) << what;
  ASSERT_EQ(a.shard_failures.size(), b.shard_failures.size()) << what;
  for (std::size_t i = 0; i < a.shard_failures.size(); ++i) {
    EXPECT_EQ(a.shard_failures[i].worker, b.shard_failures[i].worker) << what;
    EXPECT_EQ(a.shard_failures[i].shard, b.shard_failures[i].shard) << what;
    EXPECT_EQ(a.shard_failures[i].unit_begin, b.shard_failures[i].unit_begin)
        << what;
    EXPECT_EQ(a.shard_failures[i].unit_end, b.shard_failures[i].unit_end)
        << what;
    EXPECT_EQ(a.shard_failures[i].diagnostic, b.shard_failures[i].diagnostic)
        << what;
  }
}

// Frames a payload and parses it back, asserting the frame layer is
// transparent; returns the parsed payload view.
void frame_and_parse(const Encoder& enc, Payload tag,
                     std::vector<std::uint8_t>& bytes, Frame& frame) {
  bytes.clear();
  write_frame(bytes, tag, enc);
  ASSERT_EQ(bytes.size(), kFrameHeaderBytes + enc.size());
  std::size_t consumed = 0;
  DecodeError err;
  ASSERT_TRUE(parse_frame(bytes.data(), bytes.size(), frame, consumed, err))
      << err.to_string();
  ASSERT_EQ(consumed, bytes.size());
  ASSERT_EQ(frame.tag, tag);
  ASSERT_EQ(frame.size, enc.size());
}

TEST(WireRoundTrip, PrimitivesSurviveInOrder) {
  Encoder e;
  e.put_u8(0xAB);
  e.put_bool(true);
  e.put_bool(false);
  e.put_u32(0xDEADBEEFu);
  e.put_u64(0x0123456789ABCDEFull);
  e.put_f64(0.1);  // not exactly representable: must survive bit-exact
  e.put_f64(-0.0);
  e.put_time(sim::Time::ps(123456789));
  e.put_string("hello");
  e.put_string("");
  e.put_bits({true, false, true, true});
  std::vector<bool> wide(130, false);
  wide[0] = wide[64] = wide[129] = true;
  e.put_bits(wide);

  Decoder d(e.bytes());
  EXPECT_EQ(d.u8(), 0xAB);
  EXPECT_TRUE(d.boolean());
  EXPECT_FALSE(d.boolean());
  EXPECT_EQ(d.u32(), 0xDEADBEEFu);
  EXPECT_EQ(d.u64(), 0x0123456789ABCDEFull);
  EXPECT_EQ(d.f64(), 0.1);
  const double neg_zero = d.f64();
  EXPECT_EQ(neg_zero, 0.0);
  EXPECT_TRUE(std::signbit(neg_zero));
  EXPECT_EQ(d.time(), sim::Time::ps(123456789));
  std::string s;
  d.string_into(s);
  EXPECT_EQ(s, "hello");
  d.string_into(s);
  EXPECT_EQ(s, "");
  std::vector<bool> bits;
  d.bits_into(bits);
  EXPECT_EQ(bits, (std::vector<bool>{true, false, true, true}));
  d.bits_into(bits);
  EXPECT_EQ(bits, wide);
  EXPECT_TRUE(d.exhausted()) << "remaining=" << d.remaining();
}

TEST(WireRoundTrip, TracesSurviveFuzzedAndFramed) {
  std::vector<std::uint8_t> bytes;
  Encoder enc;
  for (std::uint64_t trial = 0; trial < 40; ++trial) {
    support::Rng rng = support::Rng::stream(0x51DE + trial, 17);
    spec::Alphabet ab;
    const spec::Trace t = fuzz_trace(ab, rng, rng.below(200));
    enc.clear();  // one encoder serves every trial
    encode_trace(enc, t, ab);
    Frame frame;
    frame_and_parse(enc, Payload::Trace, bytes, frame);

    // Decode into a different alphabet: the stream must be self-contained.
    spec::Alphabet ab2;
    spec::Trace back;
    Decoder d(frame.data, frame.size);
    ASSERT_TRUE(decode_trace(d, back, ab2)) << d.error().to_string();
    EXPECT_TRUE(d.exhausted());
    ASSERT_EQ(back.size(), t.size());
    for (std::size_t i = 0; i < t.size(); ++i) {
      EXPECT_EQ(ab2.text(back[i].name), ab.text(t[i].name)) << i;
      EXPECT_EQ(back[i].time, t[i].time) << i;
    }
  }
}

TEST(WireRoundTrip, OptionsSurviveFuzzed) {
  Encoder enc;
  for (std::uint64_t trial = 0; trial < 60; ++trial) {
    support::Rng rng = support::Rng::stream(0x0F75 + trial, 3);
    const abv::CampaignOptions o = fuzz_options(rng);
    enc.clear();
    encode_options(enc, o);
    abv::CampaignOptions back;
    Decoder d(enc.bytes());
    ASSERT_TRUE(decode_options(d, back)) << d.error().to_string();
    EXPECT_TRUE(d.exhausted());
    const std::string what = "trial " + std::to_string(trial);
    expect_options_equal(back, o, what.c_str());
    // Borrowed pointers never cross the wire.
    EXPECT_EQ(back.plan_cache, nullptr);
  }
}

TEST(WireRoundTrip, ResultsSurviveFuzzed) {
  Encoder enc;
  for (std::uint64_t trial = 0; trial < 60; ++trial) {
    support::Rng rng = support::Rng::stream(0x4E54 + trial, 5);
    const abv::CampaignResult r = fuzz_result(rng);
    enc.clear();
    encode_result(enc, r);
    abv::CampaignResult back;
    Decoder d(enc.bytes());
    ASSERT_TRUE(decode_result(d, back)) << d.error().to_string();
    EXPECT_TRUE(d.exhausted());
    const std::string what = "trial " + std::to_string(trial);
    expect_results_bitwise_equal(back, r, what.c_str());
  }
}

TEST(WireRoundTrip, ARealCampaignResultSurvivesWithIdenticalReport) {
  // Not just fuzzed field soup: a result the engine actually produced,
  // compared through the same report-bytes yardstick the invariant grids
  // use.
  spec::Alphabet ab;
  auto p = loom::testing::parse(
      "(({n1, n2}, &) < ({n3[2,8], n4}, |) < n5 << i, true)", ab);
  abv::CampaignOptions opt;
  opt.seeds = 3;
  opt.stimuli.noise_permille = 50;
  opt.mutants_per_kind = 4;
  const abv::CampaignResult r = abv::run_campaign(p, ab, opt);

  Encoder enc;
  encode_result(enc, r);
  abv::CampaignResult back;
  Decoder d(enc.bytes());
  ASSERT_TRUE(decode_result(d, back)) << d.error().to_string();
  EXPECT_TRUE(d.exhausted());
  expect_results_bitwise_equal(back, r, "real campaign");
  EXPECT_EQ(back.report(ab), r.report(ab));
  EXPECT_EQ(back.report(ab, true), r.report(ab, true));
}

TEST(WireRoundTrip, MonitorSnapshotsSurviveAndRestore) {
  // Snapshot a monitor mid-trace, push the snapshot through the wire, and
  // restore a fresh instance from the decoded copy: the wire must be as
  // invisible as the in-memory snapshot path mon_snapshot_test locks.
  spec::Alphabet ab;
  auto p = loom::testing::parse("(({a, b}, &) < c << i, true)", ab);
  const mon::CompiledProperty compiled =
      mon::CompiledProperty::compile(p, ab, {});
  auto source = compiled.instantiate();
  auto restored = compiled.instantiate();
  support::Rng rng = support::Rng::stream(0xABBA, 9);
  spec::Trace t = fuzz_trace(ab, rng, 40);

  std::vector<std::uint8_t> bytes;
  Encoder enc;
  mon::Snapshot snap;
  mon::Snapshot decoded;
  for (std::size_t cut = 0; cut < t.size(); cut += 7) {
    for (std::size_t i = 0; i < cut; ++i) {
      source->observe(t[i].name, t[i].time);
    }
    source->snapshot(snap);  // buffer reuse across cuts on both sides
    enc.clear();
    encode_snapshot(enc, snap);
    Frame frame;
    frame_and_parse(enc, Payload::Snapshot, bytes, frame);
    Decoder d(frame.data, frame.size);
    ASSERT_TRUE(decode_snapshot(d, decoded)) << d.error().to_string();
    EXPECT_TRUE(d.exhausted());
    ASSERT_EQ(decoded.word_count(), snap.word_count());
    restored->restore(decoded);
    // The restored monitor continues exactly like the original.
    for (std::size_t i = cut; i < t.size(); ++i) {
      source->observe(t[i].name, t[i].time);
      restored->observe(t[i].name, t[i].time);
    }
    EXPECT_EQ(restored->verdict(), source->verdict()) << "cut=" << cut;
    EXPECT_EQ(restored->stats().ops, source->stats().ops) << "cut=" << cut;
    source->reset();
  }
}

TEST(WireRoundTrip, WorkerProtocolPayloadsSurvive) {
  Encoder enc;
  for (std::uint64_t trial = 0; trial < 30; ++trial) {
    support::Rng rng = support::Rng::stream(0x3075 + trial, 7);
    WorkerRequestData req;
    for (std::uint64_t i = rng.below(10); i > 0; --i) {
      req.names.push_back("name" + std::to_string(i));
      req.directions.push_back(static_cast<std::uint8_t>(rng.below(3)));
    }
    for (std::uint64_t i = rng.below(4); i > 0; --i) {
      req.properties.push_back("(n" + std::to_string(i) + " << i, true)");
    }
    req.options = fuzz_options(rng);
    for (std::uint64_t i = rng.below(6); i > 0; --i) {
      req.shards.push_back({rng.below(100), rng.below(4), rng.below(24),
                            rng.below(24)});
    }
    enc.clear();
    encode_worker_request(enc, req);
    WorkerRequestData back;
    Decoder d(enc.bytes());
    ASSERT_TRUE(decode_worker_request(d, back)) << d.error().to_string();
    EXPECT_TRUE(d.exhausted());
    EXPECT_EQ(back.names, req.names);
    EXPECT_EQ(back.directions, req.directions);
    EXPECT_EQ(back.properties, req.properties);
    const std::string what = "trial " + std::to_string(trial);
    expect_options_equal(back.options, req.options, what.c_str());
    ASSERT_EQ(back.shards.size(), req.shards.size());
    for (std::size_t i = 0; i < req.shards.size(); ++i) {
      EXPECT_EQ(back.shards[i].shard, req.shards[i].shard);
      EXPECT_EQ(back.shards[i].job, req.shards[i].job);
      EXPECT_EQ(back.shards[i].unit_begin, req.shards[i].unit_begin);
      EXPECT_EQ(back.shards[i].unit_end, req.shards[i].unit_end);
    }

    WorkerPartialData part;
    part.shard = rng.below(100);
    part.job = rng.below(4);
    part.partial = fuzz_result(rng);
    part.alphabet_seen.assign(rng.below(70), false);
    for (std::size_t i = 0; i < part.alphabet_seen.size(); ++i) {
      part.alphabet_seen[i] = rng.below(2) != 0;
    }
    part.has_recognizer = rng.below(2) != 0;
    if (part.has_recognizer) {
      for (std::uint64_t f = rng.below(3); f > 0; --f) {
        std::vector<abv::RecognizerCoverage::RangeCov> frag;
        for (std::uint64_t r = rng.below(3); r > 0; --r) {
          abv::RecognizerCoverage::RangeCov row;
          row.name = static_cast<spec::Name>(rng.below(10));
          row.state_mask = static_cast<std::uint8_t>(rng.below(64));
          row.max_count = static_cast<std::uint32_t>(rng.below(20));
          row.lo = static_cast<std::uint32_t>(1 + rng.below(4));
          row.hi = row.lo + static_cast<std::uint32_t>(rng.below(4));
          frag.push_back(row);
        }
        part.recognizer_rows.push_back(frag);
      }
    }
    enc.clear();
    encode_worker_partial(enc, part);
    WorkerPartialData pback;
    Decoder pd(enc.bytes());
    ASSERT_TRUE(decode_worker_partial(pd, pback)) << pd.error().to_string();
    EXPECT_TRUE(pd.exhausted());
    EXPECT_EQ(pback.shard, part.shard);
    EXPECT_EQ(pback.job, part.job);
    expect_results_bitwise_equal(pback.partial, part.partial, what.c_str());
    EXPECT_EQ(pback.alphabet_seen, part.alphabet_seen);
    EXPECT_EQ(pback.has_recognizer, part.has_recognizer);
    ASSERT_EQ(pback.recognizer_rows.size(), part.recognizer_rows.size());
    for (std::size_t f = 0; f < part.recognizer_rows.size(); ++f) {
      ASSERT_EQ(pback.recognizer_rows[f].size(),
                part.recognizer_rows[f].size());
      for (std::size_t r = 0; r < part.recognizer_rows[f].size(); ++r) {
        EXPECT_EQ(pback.recognizer_rows[f][r].name,
                  part.recognizer_rows[f][r].name);
        EXPECT_EQ(pback.recognizer_rows[f][r].state_mask,
                  part.recognizer_rows[f][r].state_mask);
        EXPECT_EQ(pback.recognizer_rows[f][r].max_count,
                  part.recognizer_rows[f][r].max_count);
        EXPECT_EQ(pback.recognizer_rows[f][r].lo,
                  part.recognizer_rows[f][r].lo);
        EXPECT_EQ(pback.recognizer_rows[f][r].hi,
                  part.recognizer_rows[f][r].hi);
      }
    }

    enc.clear();
    encode_worker_done(enc, trial * 7);
    std::uint64_t count = 0;
    Decoder dd(enc.bytes());
    ASSERT_TRUE(decode_worker_done(dd, count));
    EXPECT_TRUE(dd.exhausted());
    EXPECT_EQ(count, trial * 7);

    enc.clear();
    encode_worker_error(enc, "boom " + std::to_string(trial));
    std::string message;
    Decoder ed(enc.bytes());
    ASSERT_TRUE(decode_worker_error(ed, message));
    EXPECT_TRUE(ed.exhausted());
    EXPECT_EQ(message, "boom " + std::to_string(trial));
  }
}

TEST(WireRoundTrip, EncoderClearKeepsCapacityLikeSnapshot) {
  // The mon::Snapshot reuse discipline on the wire: after a warm-up frame,
  // re-encoding payloads of no larger size must not grow the buffer.
  Encoder enc;
  support::Rng rng = support::Rng::stream(0xCAFE, 1);
  const abv::CampaignResult r = fuzz_result(rng);
  encode_result(enc, r);
  const std::size_t warm = enc.bytes().capacity();
  for (int i = 0; i < 100; ++i) {
    enc.clear();
    encode_result(enc, r);
    EXPECT_EQ(enc.bytes().capacity(), warm) << "iteration " << i;
  }
}

TEST(WireRoundTrip, MultipleFramesConcatenateAndStreamBack) {
  // Frames are a stream format: several in one buffer parse back in order,
  // each consuming exactly its own bytes.
  spec::Alphabet ab;
  support::Rng rng = support::Rng::stream(0xF00D, 2);
  const spec::Trace t = fuzz_trace(ab, rng, 30);
  const abv::CampaignOptions o = fuzz_options(rng);

  std::vector<std::uint8_t> stream;
  Encoder enc;
  encode_trace(enc, t, ab);
  write_frame(stream, Payload::Trace, enc);
  enc.clear();
  encode_options(enc, o);
  write_frame(stream, Payload::Options, enc);
  enc.clear();
  encode_worker_done(enc, 42);
  write_frame(stream, Payload::WorkerDone, enc);

  std::size_t offset = 0;
  const Payload expected[] = {Payload::Trace, Payload::Options,
                              Payload::WorkerDone};
  for (const Payload tag : expected) {
    Frame frame;
    std::size_t consumed = 0;
    DecodeError err;
    ASSERT_TRUE(parse_frame(stream.data() + offset, stream.size() - offset,
                            frame, consumed, err))
        << err.to_string();
    EXPECT_EQ(frame.tag, tag);
    offset += consumed;
  }
  EXPECT_EQ(offset, stream.size());
}

}  // namespace
}  // namespace loom::wire

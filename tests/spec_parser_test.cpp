#include <gtest/gtest.h>

#include "spec/ast.hpp"
#include "spec/lexer.hpp"
#include "spec/parser.hpp"

namespace loom::spec {
namespace {

TEST(Lexer, BasicTokens) {
  support::DiagnosticSink sink;
  auto toks = tokenize("({a, b[2,8]}, &) << i => | 60K", sink);
  ASSERT_TRUE(sink.ok());
  std::vector<TokenKind> kinds;
  for (const auto& t : toks) kinds.push_back(t.kind);
  EXPECT_EQ(kinds,
            (std::vector<TokenKind>{
                TokenKind::LParen, TokenKind::LBrace, TokenKind::Ident,
                TokenKind::Comma, TokenKind::Ident, TokenKind::LBracket,
                TokenKind::Nat, TokenKind::Comma, TokenKind::Nat,
                TokenKind::RBracket, TokenKind::RBrace, TokenKind::Comma,
                TokenKind::Amp, TokenKind::RParen, TokenKind::LessLess,
                TokenKind::Ident, TokenKind::Implies, TokenKind::Pipe,
                TokenKind::Nat, TokenKind::End}));
}

TEST(Lexer, KiloMegaSuffixes) {
  support::DiagnosticSink sink;
  auto toks = tokenize("60K 2k 3M 17", sink);
  ASSERT_TRUE(sink.ok());
  EXPECT_EQ(toks[0].value, 60000u);
  EXPECT_EQ(toks[1].value, 2000u);
  EXPECT_EQ(toks[2].value, 3000000u);
  EXPECT_EQ(toks[3].value, 17u);
}

TEST(Lexer, CommentsAndWhitespace) {
  support::DiagnosticSink sink;
  auto toks = tokenize("a # this is a comment\n  b", sink);
  ASSERT_TRUE(sink.ok());
  ASSERT_EQ(toks.size(), 3u);
  EXPECT_EQ(toks[0].text, "a");
  EXPECT_EQ(toks[1].text, "b");
  EXPECT_EQ(toks[1].pos.line, 2u);
}

TEST(Lexer, BadCharacterReported) {
  support::DiagnosticSink sink;
  auto toks = tokenize("a $ b", sink);
  EXPECT_FALSE(sink.ok());
  EXPECT_EQ(toks[1].kind, TokenKind::Invalid);
}

TEST(Parser, SingleRangeAntecedent) {
  Alphabet ab;
  support::DiagnosticSink sink;
  auto p = parse_property("(n << i, true)", ab, sink);
  ASSERT_TRUE(p.has_value()) << sink.to_string();
  ASSERT_TRUE(p->is_antecedent());
  const Antecedent& a = p->antecedent();
  EXPECT_TRUE(a.repeated);
  ASSERT_EQ(a.pattern.fragments.size(), 1u);
  ASSERT_EQ(a.pattern.fragments[0].ranges.size(), 1u);
  const Range& r = a.pattern.fragments[0].ranges[0];
  EXPECT_EQ(ab.text(r.name), "n");
  EXPECT_EQ(r.lo, 1u);
  EXPECT_EQ(r.hi, 1u);
  EXPECT_EQ(ab.text(a.trigger), "i");
}

TEST(Parser, PaperExample2) {
  Alphabet ab;
  support::DiagnosticSink sink;
  auto p = parse_property(
      "(({set_imgAddr, set_glAddr, set_glSize}, &) << start, false)", ab,
      sink);
  ASSERT_TRUE(p.has_value()) << sink.to_string();
  const Antecedent& a = p->antecedent();
  EXPECT_FALSE(a.repeated);
  ASSERT_EQ(a.pattern.fragments.size(), 1u);
  const Fragment& f = a.pattern.fragments[0];
  EXPECT_EQ(f.join, Join::Conj);
  EXPECT_EQ(f.ranges.size(), 3u);
  EXPECT_EQ(ab.text(a.trigger), "start");
}

TEST(Parser, PaperExample3TimedImplication) {
  Alphabet ab;
  support::DiagnosticSink sink;
  auto p = parse_property("(start => read_img[100,60K] < set_irq, 2ms)", ab,
                          sink);
  ASSERT_TRUE(p.has_value()) << sink.to_string();
  ASSERT_TRUE(p->is_timed());
  const TimedImplication& t = p->timed();
  ASSERT_EQ(t.antecedent.fragments.size(), 1u);
  ASSERT_EQ(t.consequent.fragments.size(), 2u);
  const Range& ri = t.consequent.fragments[0].ranges[0];
  EXPECT_EQ(ri.lo, 100u);
  EXPECT_EQ(ri.hi, 60000u);
  EXPECT_EQ(t.bound, sim::Time::ms(2));
}

TEST(Parser, Figure4Property) {
  Alphabet ab;
  support::DiagnosticSink sink;
  auto p = parse_property(
      "(({n1, n2}, &) < ({n3[2,8], n4}, |) < n5 << i, false)", ab, sink);
  ASSERT_TRUE(p.has_value()) << sink.to_string();
  const Antecedent& a = p->antecedent();
  ASSERT_EQ(a.pattern.fragments.size(), 3u);
  EXPECT_EQ(a.pattern.fragments[0].join, Join::Conj);
  EXPECT_EQ(a.pattern.fragments[1].join, Join::Disj);
  EXPECT_EQ(a.pattern.fragments[1].ranges[0].lo, 2u);
  EXPECT_EQ(a.pattern.fragments[1].ranges[0].hi, 8u);
  EXPECT_EQ(a.pattern.fragments[2].ranges.size(), 1u);
}

TEST(Parser, BraceShorthand) {
  Alphabet ab;
  support::DiagnosticSink sink;
  auto l = parse_ordering("{a, b}| < {c, d}", ab, sink);
  ASSERT_TRUE(l.has_value()) << sink.to_string();
  EXPECT_EQ(l->fragments[0].join, Join::Disj);
  EXPECT_EQ(l->fragments[1].join, Join::Conj);  // default
}

TEST(Parser, DurationUnits) {
  Alphabet ab;
  for (auto [src, expect] :
       std::initializer_list<std::pair<const char*, sim::Time>>{
           {"(a => b, 5ps)", sim::Time::ps(5)},
           {"(a => b, 5ns)", sim::Time::ns(5)},
           {"(a => b, 5us)", sim::Time::us(5)},
           {"(a => b, 5ms)", sim::Time::ms(5)},
           {"(a => b, 5s)", sim::Time::sec(5)},
       }) {
    support::DiagnosticSink sink;
    auto p = parse_property(src, ab, sink);
    ASSERT_TRUE(p.has_value()) << src << "\n" << sink.to_string();
    EXPECT_EQ(p->timed().bound, expect) << src;
  }
}

struct BadInput {
  const char* source;
  const char* hint;  // substring expected in the diagnostics
};

class ParserErrors : public ::testing::TestWithParam<BadInput> {};

TEST_P(ParserErrors, Rejected) {
  Alphabet ab;
  support::DiagnosticSink sink;
  auto p = parse_property(GetParam().source, ab, sink);
  EXPECT_FALSE(p.has_value()) << GetParam().source;
  EXPECT_FALSE(sink.ok());
  EXPECT_NE(sink.to_string().find(GetParam().hint), std::string::npos)
      << "diagnostics were: " << sink.to_string();
}

INSTANTIATE_TEST_SUITE_P(
    Syntax, ParserErrors,
    ::testing::Values(
        BadInput{"n << i, true)", "expected '('"},
        BadInput{"(n << i true)", "expected ','"},
        BadInput{"(n << i, maybe)", "'true' or 'false'"},
        BadInput{"(n << 5, true)", "trigger name"},
        BadInput{"(n <> i, true)", "unexpected character"},
        BadInput{"(a => b, 5)", "time unit"},
        BadInput{"(a => b, 5lightyears)", "unknown time unit"},
        BadInput{"(a[2] << i, true)", "expected ','"},
        BadInput{"(a[2,] << i, true)", "expected a number"},
        BadInput{"(({a b}, &) << i, true)", "expected '}'"},
        BadInput{"(({a, b}, +) << i, true)", "unexpected character"},
        BadInput{"(({a, b} &) << i, true)", "expected ','"},
        BadInput{"(a < << i, true)", "expected an interface name"},
        BadInput{"(a << i, true) trailing", "end of input"},
        BadInput{"(a[99999999999,99999999999] << i, true)", "too large"}));

TEST(Printer, RoundTripsThroughParser) {
  Alphabet ab;
  support::DiagnosticSink sink;
  const std::string sources[] = {
      "(n << i, true)",
      "(n[100,60000] << i, true)",
      "(({set_imgAddr, set_glAddr, set_glSize}, &) << start, false)",
      "(({n1, n2}, &) < ({n3[2,8], n4}, |) < n5 << i, false)",
      "(start => read_img[100,60000] < set_irq, 2 ms)",
  };
  for (const auto& src : sources) {
    support::DiagnosticSink s1;
    auto p1 = parse_property(src, ab, s1);
    ASSERT_TRUE(p1.has_value()) << src;
    const std::string printed = to_string(*p1, ab);
    support::DiagnosticSink s2;
    auto p2 = parse_property(printed, ab, s2);
    ASSERT_TRUE(p2.has_value()) << "printed form failed to parse: " << printed;
    EXPECT_EQ(*p1, *p2) << printed;
  }
}

TEST(Ast, AlphabetsOfPatterns) {
  Alphabet ab;
  support::DiagnosticSink sink;
  auto p = parse_property("(({a, b}, &) < c << i, true)", ab, sink);
  ASSERT_TRUE(p.has_value());
  const auto alpha = p->alphabet();
  EXPECT_EQ(alpha.count(), 4u);
  EXPECT_TRUE(alpha.test(*ab.lookup("a")));
  EXPECT_TRUE(alpha.test(*ab.lookup("i")));
}

}  // namespace
}  // namespace loom::spec

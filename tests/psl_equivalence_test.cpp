// Randomized agreement between the ViaPSL clause monitors and the Drct
// monitors / declarative reference.
//
// On finite prefixes the two monitor families are not expected to agree
// exactly: the PSL encoding detects some violations only at the reset point
// (its until-obligations stay open), while the Drct recognizers reject at
// the earliest impossible event.  The sound relations, checked here:
//   1. ViaPSL Rejected  =>  reference Rejected      (no false alarms)
//   2. reference Accepted => ViaPSL Accepted        (complete rounds agree)
//   3. reference Pending  => ViaPSL not Rejected
//   4. reference Rejected => ViaPSL Rejected or Pending; and after
//      appending two trigger events (forcing the reset point), ViaPSL
//      must report Rejected too.
#include <gtest/gtest.h>

#include "psl/clause_monitor.hpp"
#include "support/rng.hpp"
#include "testing.hpp"

namespace loom::psl {
namespace {

using support::Rng;

spec::Antecedent random_antecedent(Rng& rng, spec::Alphabet& ab) {
  spec::Antecedent a;
  std::size_t next_name = 0;
  const std::size_t fragments = 1 + rng.below(3);
  for (std::size_t f = 0; f < fragments; ++f) {
    spec::Fragment frag;
    frag.join = rng.chance(1, 2) ? spec::Join::Conj : spec::Join::Disj;
    const std::size_t ranges = 1 + rng.below(2);
    for (std::size_t r = 0; r < ranges; ++r) {
      spec::Range range;
      range.name = ab.name("n" + std::to_string(next_name++));
      range.lo = static_cast<std::uint32_t>(1 + rng.below(2));
      range.hi = range.lo + static_cast<std::uint32_t>(rng.below(3));
      frag.ranges.push_back(range);
    }
    a.pattern.fragments.push_back(std::move(frag));
  }
  a.trigger = ab.name("i");
  a.repeated = rng.chance(1, 2);
  return a;
}

spec::Trace random_trace(Rng& rng, const std::vector<spec::Name>& names,
                         std::size_t length) {
  spec::Trace t;
  std::uint64_t now_ns = 0;
  spec::Name prev = names[rng.below(names.size())];
  for (std::size_t k = 0; k < length; ++k) {
    const spec::Name name =
        rng.chance(2, 5) ? prev : names[rng.below(names.size())];
    now_ns += 1 + rng.below(20);
    t.push_back({name, sim::Time::ns(now_ns)});
    prev = name;
  }
  return t;
}

std::string render(const spec::Trace& t, const spec::Alphabet& ab) {
  std::string out;
  for (const auto& ev : t) out += ab.text(ev.name) + " ";
  return out;
}

class PslVsDrct : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PslVsDrct, SoundnessAndResetPointAgreement) {
  Rng rng(GetParam());
  for (int iteration = 0; iteration < 40; ++iteration) {
    spec::Alphabet ab;
    const spec::Antecedent a = random_antecedent(rng, ab);

    std::vector<spec::Name> names;
    a.alphabet().for_each(
        [&](std::size_t id) { names.push_back(static_cast<spec::Name>(id)); });

    for (int trace_no = 0; trace_no < 8; ++trace_no) {
      spec::Trace t = random_trace(rng, names, 1 + rng.below(25));
      const spec::RefResult ref = reference_check(a, t);

      ClauseMonitor psl_monitor{encode(a)};
      loom::testing::run_monitor(psl_monitor, t);
      const auto psl = loom::testing::as_ref(psl_monitor.verdict());

      const std::string context = "property: " + spec::to_string(a, ab) +
                                  "\ntrace: " + render(t, ab) +
                                  "\nreference: " + spec::to_string(ref.verdict) +
                                  " (" + ref.reason + ")" +
                                  "\nviapsl: " + spec::to_string(psl);

      switch (ref.verdict) {
        case spec::RefVerdict::Accepted:
          EXPECT_EQ(psl, spec::RefVerdict::Accepted) << context;
          break;
        case spec::RefVerdict::Pending:
          EXPECT_NE(psl, spec::RefVerdict::Rejected) << context;
          break;
        case spec::RefVerdict::Rejected: {
          EXPECT_NE(psl, spec::RefVerdict::Accepted) << context;
          // Force the reset point: within two more triggers every open
          // until-obligation of the encoding resolves.
          spec::Trace extended = t;
          const sim::Time base =
              t.empty() ? sim::Time::zero() : t.back().time;
          extended.push_back({a.trigger, base + sim::Time::ns(5)});
          extended.push_back({a.trigger, base + sim::Time::ns(10)});
          ClauseMonitor resolved{encode(a)};
          loom::testing::run_monitor(resolved, extended);
          EXPECT_EQ(resolved.verdict(), mon::Verdict::Violated)
              << context << "\n(after forcing the reset point)";
          break;
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PslVsDrct,
                         ::testing::Values(101, 102, 103, 104, 105, 106));

TEST(PslVsDrctValid, CleanRoundsAgreeExactly) {
  // Hand-built library of valid traces ending at reset points: both monitor
  // families and the reference must all say Accepted.
  struct Item {
    const char* property;
    const char* trace;
  };
  const Item items[] = {
      {"(n << i, true)", "n i n i n i"},
      {"(n[2,3] << i, true)", "n n i n n n i"},
      {"(({a, b}, &) << i, true)", "a b i b a i"},
      {"(({a, b}, |) << i, true)", "a i b i a b i"},
      {"(a < b << i, true)", "a b i a b i"},
      {"(({a, b}, &) < c[1,2] << i, true)", "b a c c i a b c i"},
      {"(({n1, n2}, &) < ({n3[2,8], n4}, |) < n5 << i, true)",
       "n1 n2 n3 n3 n3 n5 i n2 n1 n4 n5 i"},
  };
  for (const auto& item : items) {
    spec::Alphabet ab;
    auto p = loom::testing::parse(item.property, ab);
    auto t = loom::testing::trace_of(item.trace, ab);

    mon::AntecedentMonitor drct(p.antecedent());
    loom::testing::run_monitor(drct, t);
    ClauseMonitor psl{encode(p)};
    loom::testing::run_monitor(psl, t);
    const auto ref = spec::reference_check(p.antecedent(), t);

    EXPECT_EQ(ref.verdict, spec::RefVerdict::Accepted)
        << item.property << " / " << item.trace << ": " << ref.reason;
    EXPECT_EQ(drct.verdict(), mon::Verdict::Monitoring)
        << item.property << " / " << item.trace;
    EXPECT_EQ(psl.verdict(), mon::Verdict::Monitoring)
        << item.property << " / " << item.trace
        << (psl.violation() ? "\n  " + psl.violation()->to_string(ab) : "");
  }
}

}  // namespace
}  // namespace loom::psl

// Platform integration tests: the Fig. 2 access-control device, its
// firmware, and the paper's Example 2 / Example 3 properties monitored
// in-simulation through the observation adapter.
#include <gtest/gtest.h>

#include "abv/trace.hpp"
#include "mon/monitors.hpp"
#include "plat/platform.hpp"
#include "sim/trace_capture.hpp"
#include "spec/parser.hpp"
#include "spec/wellformed.hpp"
#include "testing.hpp"

namespace loom::plat {
namespace {

constexpr const char* kExample2 =
    "(({set_imgAddr, set_glAddr, set_glSize}, &) << start, false)";
constexpr const char* kExample3 =
    "(start => read_img[1,60000] < set_irq, 2ms)";

struct Harness {
  explicit Harness(const PlatformConfig& cfg) : platform(cfg) {
    support::DiagnosticSink sink;
    auto p2 = spec::parse_property(kExample2, platform.alphabet(), sink);
    auto p3 = spec::parse_property(kExample3, platform.alphabet(), sink);
    if (!p2 || !p3) throw std::runtime_error(sink.to_string());
    EXPECT_TRUE(spec::check_wellformed(*p2, platform.alphabet(), sink))
        << sink.to_string();
    EXPECT_TRUE(spec::check_wellformed(*p3, platform.alphabet(), sink))
        << sink.to_string();
    example2 = std::make_unique<mon::AntecedentMonitor>(p2->antecedent());
    example3 = std::make_unique<mon::TimedImplicationMonitor>(p3->timed());
    mod2 = std::make_unique<mon::MonitorModule>(
        platform.scheduler(), "monitor_ex2", *example2, platform.alphabet());
    mod3 = std::make_unique<mon::MonitorModule>(
        platform.scheduler(), "monitor_ex3", *example3, platform.alphabet());
    platform.observer().add_sink([this](spec::Name n, sim::Time t) {
      mod2->observe(n, t);
      mod3->observe(n, t);
    });
  }

  void run(sim::Time limit = sim::Time::ms(10)) {
    platform.run(limit);
    mod2->finish();
    mod3->finish();
  }

  AccessControlPlatform platform;
  std::unique_ptr<mon::AntecedentMonitor> example2;
  std::unique_ptr<mon::TimedImplicationMonitor> example3;
  std::unique_ptr<mon::MonitorModule> mod2, mod3;
};

TEST(Platform, NominalScenarioCompletesRounds) {
  PlatformConfig cfg;
  cfg.button_presses = 3;
  Harness h(cfg);
  h.run();
  EXPECT_EQ(h.platform.gpio().presses(), 3u);
  EXPECT_EQ(h.platform.cpu().rounds_completed(), 3u);
  EXPECT_EQ(h.platform.ipu().recognitions(), 3u);
  // Every round reads probe + gallery.
  EXPECT_EQ(h.platform.ipu().gallery_reads(),
            3u * (1 + h.platform.config().gallery_size));
  EXPECT_GT(h.platform.lcdc().frames(), 0u);
  EXPECT_GT(h.platform.bus().transaction_count(), 50u);
}

TEST(Platform, NominalScenarioSatisfiesBothProperties) {
  PlatformConfig cfg;
  cfg.button_presses = 4;
  Harness h(cfg);
  h.run();
  EXPECT_NE(h.example2->verdict(), mon::Verdict::Violated)
      << h.example2->violation()->to_string(h.platform.alphabet());
  EXPECT_NE(h.example3->verdict(), mon::Verdict::Violated)
      << h.example3->violation()->to_string(h.platform.alphabet());
  // Example 2 is non-repeated: it retires at the first validated start.
  EXPECT_EQ(h.example2->verdict(), mon::Verdict::Holds);
  // The recorded trace replays cleanly against the reference semantics.
  const auto& trace = h.platform.recorder().trace();
  EXPECT_GE(trace.size(), 4u * 6u);
  const auto ref2 = spec::reference_check(h.example2->property(), trace);
  EXPECT_NE(ref2.verdict, spec::RefVerdict::Rejected) << ref2.reason;
}

TEST(Platform, MatchOpensAndAutoClosesTheLock) {
  PlatformConfig cfg;
  cfg.button_presses = 2;
  cfg.match_every = 1;  // every visitor is enrolled
  Harness h(cfg);
  h.run();
  EXPECT_EQ(h.platform.cpu().matches(), 2u);
  EXPECT_EQ(h.platform.lock().open_count(), 2u);
  EXPECT_FALSE(h.platform.lock().open()) << "TMR2 must auto-close the door";
}

TEST(Platform, StrangersDoNotOpenTheLock) {
  PlatformConfig cfg;
  cfg.button_presses = 3;
  cfg.match_every = 0;  // nobody is enrolled
  Harness h(cfg);
  h.run();
  EXPECT_EQ(h.platform.cpu().matches(), 0u);
  EXPECT_EQ(h.platform.lock().open_count(), 0u);
}

TEST(Platform, SkippedRegisterWriteViolatesExample2) {
  PlatformConfig cfg;
  cfg.button_presses = 2;
  cfg.fault_skip_glsize = true;
  Harness h(cfg);
  h.run();
  ASSERT_EQ(h.example2->verdict(), mon::Verdict::Violated);
  const auto& v = *h.example2->violation();
  EXPECT_EQ(h.platform.alphabet().text(v.name), "start");
  EXPECT_NE(v.reason.find("before"), std::string::npos);
}

TEST(Platform, EarlyStartViolatesExample2) {
  PlatformConfig cfg;
  cfg.button_presses = 2;
  cfg.fault_early_start = true;
  Harness h(cfg);
  h.run();
  ASSERT_EQ(h.example2->verdict(), mon::Verdict::Violated);
  EXPECT_EQ(h.platform.alphabet().text(h.example2->violation()->name),
            "start");
}

TEST(Platform, DroppedIrqViolatesExample3ViaWatchdog) {
  PlatformConfig cfg;
  cfg.button_presses = 1;
  cfg.fault_skip_irq = true;
  Harness h(cfg);
  h.run(sim::Time::ms(10));
  ASSERT_EQ(h.example3->verdict(), mon::Verdict::Violated);
  EXPECT_NE(h.example3->violation()->reason.find("deadline"),
            std::string::npos);
  // The watchdog reports promptly (bound is 2 ms; the round starts ~1 ms
  // in), well before the end of the 10 ms simulation.
  EXPECT_LT(h.example3->violation()->time, sim::Time::ms(4));
}

TEST(Platform, SlowIpuViolatesExample3Deadline) {
  PlatformConfig cfg;
  cfg.button_presses = 1;
  cfg.fault_slow_factor = 400;  // 8 images x 2 us x 400 = 6.4 ms >> 2 ms
  Harness h(cfg);
  h.run(sim::Time::ms(20));
  ASSERT_EQ(h.example3->verdict(), mon::Verdict::Violated);
  EXPECT_NE(h.example3->violation()->reason.find("deadline"),
            std::string::npos);
}

TEST(Platform, RecordedTraceHasTheExpectedShape) {
  PlatformConfig cfg;
  cfg.button_presses = 1;
  cfg.gallery_size = 4;
  Harness h(cfg);
  h.run();
  const auto& ab = h.platform.alphabet();
  std::vector<std::string> names;
  for (const auto& ev : h.platform.recorder().trace()) {
    names.push_back(ab.text(ev.name));
  }
  // Three register writes (any order), start, 5 reads (probe + 4), irq.
  ASSERT_EQ(names.size(), 3u + 1u + 5u + 1u);
  EXPECT_EQ(names[3], "start");
  for (int k = 4; k < 9; ++k) EXPECT_EQ(names[k], "read_img");
  EXPECT_EQ(names[9], "set_irq");
  std::set<std::string> config(names.begin(), names.begin() + 3);
  EXPECT_EQ(config, (std::set<std::string>{"set_imgAddr", "set_glAddr",
                                           "set_glSize"}));
}

TEST(Platform, KernelCaptureFeedsRecorderAndReplaysBitIdentically) {
  // The sim-layer capture pipeline end-to-end on the real platform: the
  // IPU observer fans into a scheduler-bound TraceCapture, the capture
  // into an abv::TraceRecorder, and batch-replaying the captured trace
  // through fresh monitors reproduces the live in-simulation verdicts and
  // operation counts ("cached replay ≡ live stepping").
  PlatformConfig cfg;
  cfg.button_presses = 2;
  Harness h(cfg);
  sim::TraceCapture capture(h.platform.scheduler());
  h.platform.observer().attach(capture);
  abv::TraceRecorder replay_source;
  abv::attach(capture, replay_source);
  h.run();

  EXPECT_EQ(capture.captured_count(), h.platform.observer().events_observed());
  EXPECT_TRUE(loom::testing::traces_equal(replay_source.trace(),
                                          h.platform.recorder().trace(),
                                          h.platform.alphabet()));

  const spec::Trace replay = replay_source.take();
  ASSERT_FALSE(replay.empty());
  mon::Monitor* live[] = {h.example2.get(), h.example3.get()};
  support::DiagnosticSink sink;
  auto p2 = spec::parse_property(kExample2, h.platform.alphabet(), sink);
  auto p3 = spec::parse_property(kExample3, h.platform.alphabet(), sink);
  ASSERT_TRUE(p2 && p3) << sink.to_string();
  const spec::Property props[] = {*p2, *p3};
  for (std::size_t i = 0; i < 2; ++i) {
    sim::Scheduler replay_sched;
    auto monitor = mon::make_monitor(props[i]);
    mon::MonitorModule module(replay_sched, "replay", *monitor,
                              h.platform.alphabet());
    module.observe_batch(replay, mon::MonitorModule::BatchPolicy::ReplayAll);
    monitor->finish(replay.back().time);
    EXPECT_EQ(monitor->verdict(), live[i]->verdict()) << "property " << i;
    EXPECT_EQ(monitor->stats().events, live[i]->stats().events)
        << "property " << i;
    EXPECT_EQ(monitor->stats().ops, live[i]->stats().ops) << "property " << i;
  }
}

TEST(Platform, RegisterOrderIsActuallyRandomized) {
  // The loose-ordering freedom is real: across seeds, different write
  // orders occur (this is what over-constrained specs would forbid).
  std::set<std::string> orders;
  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    PlatformConfig cfg;
    cfg.seed = seed;
    cfg.button_presses = 1;
    Harness h(cfg);
    h.run();
    std::string order;
    const auto& ab = h.platform.alphabet();
    for (const auto& ev : h.platform.recorder().trace()) {
      const std::string n = ab.text(ev.name);
      if (n.rfind("set_", 0) == 0 && n != "set_irq") order += n + " ";
      if (n == "start") break;
    }
    orders.insert(order);
  }
  EXPECT_GE(orders.size(), 3u);
}

TEST(Platform, IpuRegistersReadBack) {
  PlatformConfig cfg;
  cfg.button_presses = 0;
  AccessControlPlatform plat(cfg);
  tlm::InitiatorSocket probe("probe");
  probe.bind(plat.bus().target_socket());
  sim::Time delay;
  probe.write_u32(AccessControlPlatform::kIpuBase + Ipu::kGlSize, 42, delay);
  std::uint32_t v = 0;
  probe.read_u32(AccessControlPlatform::kIpuBase + Ipu::kGlSize, v, delay);
  EXPECT_EQ(v, 42u);
  // Write to a read-only register is a command error.
  EXPECT_EQ(probe.write_u32(AccessControlPlatform::kIpuBase + Ipu::kStatus, 1,
                            delay),
            tlm::Response::CommandError);
}

TEST(Platform, UnmappedBusAccessFaultsTheCpu) {
  PlatformConfig cfg;
  cfg.button_presses = 0;
  AccessControlPlatform plat(cfg);
  tlm::InitiatorSocket probe("probe");
  probe.bind(plat.bus().target_socket());
  sim::Time delay;
  std::uint32_t v = 0;
  EXPECT_EQ(probe.read_u32(0xdead0000, v, delay),
            tlm::Response::AddressError);
}

}  // namespace
}  // namespace loom::plat

// Transition-level tests of the elementary range recognizer (paper Fig. 5).
#include <gtest/gtest.h>

#include "mon/range_recognizer.hpp"

namespace loom::mon {
namespace {

using State = RangeRecognizer::State;
using Out = RangeRecognizer::Out;

/// Context: R = n[u,v] with B = {b}, C = {c}, Ac = {ac}, Af = {af}.
/// Names are fixed ids: n=0, c=1, ac=2, af=3, b=4.
constexpr spec::Name kN = 0, kC = 1, kAc = 2, kAf = 3, kB = 4;

spec::RangePlan make_plan(std::uint32_t lo, std::uint32_t hi,
                          spec::Join join) {
  spec::RangePlan p;
  p.name = kN;
  p.lo = lo;
  p.hi = hi;
  p.parent_join = join;
  p.siblings.set(kC);
  p.accept.set(kAc);
  p.after.set(kAf);
  p.before.set(kB);
  return p;
}

class RangeFixture : public ::testing::Test {
 protected:
  MonitorStats stats;
};

TEST_F(RangeFixture, IdleIgnoresEverything) {
  auto plan = make_plan(1, 1, spec::Join::Conj);
  RangeRecognizer r(plan, stats);
  EXPECT_EQ(r.state(), State::Idle);
  for (spec::Name ev : {kN, kC, kAc, kAf, kB}) {
    EXPECT_EQ(r.step(ev), Out::None);
    EXPECT_EQ(r.state(), State::Idle);
  }
}

TEST_F(RangeFixture, S1FirstOwnNameStartsCounting) {
  auto plan = make_plan(2, 8, spec::Join::Disj);
  RangeRecognizer r(plan, stats);
  r.start();
  EXPECT_EQ(r.state(), State::WaitFirst);
  EXPECT_EQ(r.step(kN), Out::None);
  EXPECT_EQ(r.state(), State::Counting);
  EXPECT_EQ(r.count(), 1u);
}

TEST_F(RangeFixture, S1SiblingMovesToWaitSibling) {
  auto plan = make_plan(1, 1, spec::Join::Conj);
  RangeRecognizer r(plan, stats);
  r.start();
  EXPECT_EQ(r.step(kC), Out::None);
  EXPECT_EQ(r.state(), State::WaitFirstSibling);
}

TEST_F(RangeFixture, S1StoppingNameIsError) {
  for (auto join : {spec::Join::Conj, spec::Join::Disj}) {
    auto plan = make_plan(1, 1, join);
    RangeRecognizer r(plan, stats);
    r.start();
    EXPECT_EQ(r.step(kAc), Out::Err);
    EXPECT_EQ(r.state(), State::Error);
  }
}

TEST_F(RangeFixture, S1ForbiddenNamesAreErrors) {
  for (spec::Name bad : {kAf, kB}) {
    auto plan = make_plan(1, 1, spec::Join::Conj);
    RangeRecognizer r(plan, stats);
    r.start();
    EXPECT_EQ(r.step(bad), Out::Err);
  }
}

TEST_F(RangeFixture, S2OwnNameStartsCounting) {
  auto plan = make_plan(1, 2, spec::Join::Conj);
  RangeRecognizer r(plan, stats);
  r.start();
  r.step(kC);
  EXPECT_EQ(r.step(kN), Out::None);
  EXPECT_EQ(r.state(), State::Counting);
  EXPECT_EQ(r.count(), 1u);
}

TEST_F(RangeFixture, S2SiblingStays) {
  auto plan = make_plan(1, 2, spec::Join::Conj);
  RangeRecognizer r(plan, stats);
  r.start();
  r.step(kC);
  EXPECT_EQ(r.step(kC), Out::None);
  EXPECT_EQ(r.state(), State::WaitFirstSibling);
}

TEST_F(RangeFixture, S2StopUnderDisjunctionIsNok) {
  auto plan = make_plan(1, 2, spec::Join::Disj);
  RangeRecognizer r(plan, stats);
  r.start();
  r.step(kC);
  EXPECT_EQ(r.step(kAc), Out::Nok);
  EXPECT_EQ(r.state(), State::Idle);
}

TEST_F(RangeFixture, S2StopUnderConjunctionIsError) {
  auto plan = make_plan(1, 2, spec::Join::Conj);
  RangeRecognizer r(plan, stats);
  r.start();
  r.step(kC);
  EXPECT_EQ(r.step(kAc), Out::Err);
}

TEST_F(RangeFixture, S3CountsUpToUpperBound) {
  auto plan = make_plan(2, 3, spec::Join::Conj);
  RangeRecognizer r(plan, stats);
  r.start();
  EXPECT_EQ(r.step(kN), Out::None);
  EXPECT_EQ(r.step(kN), Out::None);
  EXPECT_EQ(r.step(kN), Out::None);
  EXPECT_EQ(r.count(), 3u);
  EXPECT_EQ(r.step(kN), Out::Err) << "v=3 exceeded";
}

TEST_F(RangeFixture, S3SiblingBelowMinIsError) {
  auto plan = make_plan(2, 3, spec::Join::Conj);
  RangeRecognizer r(plan, stats);
  r.start();
  r.step(kN);
  EXPECT_EQ(r.step(kC), Out::Err);
}

TEST_F(RangeFixture, S3SiblingAtMinMovesToDone) {
  auto plan = make_plan(2, 3, spec::Join::Conj);
  RangeRecognizer r(plan, stats);
  r.start();
  r.step(kN);
  r.step(kN);
  EXPECT_EQ(r.step(kC), Out::None);
  EXPECT_EQ(r.state(), State::DoneSibling);
}

TEST_F(RangeFixture, S3StopAtMinIsOk) {
  auto plan = make_plan(2, 3, spec::Join::Conj);
  RangeRecognizer r(plan, stats);
  r.start();
  r.step(kN);
  r.step(kN);
  EXPECT_EQ(r.step(kAc), Out::Ok);
  EXPECT_EQ(r.state(), State::Idle);
}

TEST_F(RangeFixture, S3StopBelowMinIsError) {
  auto plan = make_plan(2, 3, spec::Join::Conj);
  RangeRecognizer r(plan, stats);
  r.start();
  r.step(kN);
  EXPECT_EQ(r.step(kAc), Out::Err);
}

TEST_F(RangeFixture, S3ForbiddenNamesAreErrors) {
  for (spec::Name bad : {kAf, kB}) {
    auto plan = make_plan(1, 3, spec::Join::Conj);
    RangeRecognizer r(plan, stats);
    r.start();
    r.step(kN);
    EXPECT_EQ(r.step(bad), Out::Err);
  }
}

TEST_F(RangeFixture, S4OwnNameReopeningIsError) {
  auto plan = make_plan(1, 3, spec::Join::Conj);
  RangeRecognizer r(plan, stats);
  r.start();
  r.step(kN);
  r.step(kC);  // -> DoneSibling
  ASSERT_EQ(r.state(), State::DoneSibling);
  EXPECT_EQ(r.step(kN), Out::Err);
}

TEST_F(RangeFixture, S4SiblingStaysAndStopIsOk) {
  auto plan = make_plan(1, 3, spec::Join::Conj);
  RangeRecognizer r(plan, stats);
  r.start();
  r.step(kN);
  r.step(kC);
  EXPECT_EQ(r.step(kC), Out::None);
  EXPECT_EQ(r.state(), State::DoneSibling);
  EXPECT_EQ(r.step(kAc), Out::Ok);
}

TEST_F(RangeFixture, ErrorStateIsAbsorbing) {
  auto plan = make_plan(1, 1, spec::Join::Conj);
  RangeRecognizer r(plan, stats);
  r.start();
  r.step(kB);
  ASSERT_EQ(r.state(), State::Error);
  for (spec::Name ev : {kN, kC, kAc, kAf}) {
    EXPECT_EQ(r.step(ev), Out::Err);
    EXPECT_EQ(r.state(), State::Error);
  }
  EXPECT_FALSE(r.error_reason().empty());
}

TEST_F(RangeFixture, MinReachedTracking) {
  auto plan = make_plan(2, 4, spec::Join::Conj);
  RangeRecognizer r(plan, stats);
  r.start();
  EXPECT_FALSE(r.min_reached());
  r.step(kN);
  EXPECT_FALSE(r.min_reached());
  r.step(kN);
  EXPECT_TRUE(r.min_reached());
  EXPECT_TRUE(r.started_counting());
}

TEST_F(RangeFixture, ResetReturnsToIdle) {
  auto plan = make_plan(1, 1, spec::Join::Conj);
  RangeRecognizer r(plan, stats);
  r.start();
  r.step(kB);
  r.reset();
  EXPECT_EQ(r.state(), State::Idle);
  EXPECT_EQ(r.count(), 0u);
  EXPECT_TRUE(r.error_reason().empty());
}

TEST_F(RangeFixture, SpaceBitsMatchCounterWidth) {
  MonitorStats s;
  auto p1 = make_plan(1, 1, spec::Join::Conj);     // cpt in [0,1]: 1 bit
  auto p60k = make_plan(100, 60000, spec::Join::Conj);  // 16 bits
  EXPECT_EQ(RangeRecognizer(p1, s).space_bits(), 3u + 1u);
  EXPECT_EQ(RangeRecognizer(p60k, s).space_bits(), 3u + 16u);
}

TEST_F(RangeFixture, OpsAreCounted) {
  auto plan = make_plan(1, 4, spec::Join::Conj);
  RangeRecognizer r(plan, stats);
  const auto before = stats.ops;
  r.start();
  r.step(kN);
  r.step(kN);
  EXPECT_GT(stats.ops, before);
}

TEST(RangeStateNames, AllDistinct) {
  EXPECT_STREQ(to_string(State::Idle), "s0/idle");
  EXPECT_STREQ(to_string(State::Error), "s5/error");
}

}  // namespace
}  // namespace loom::mon

// Per-clause soundness: every clause of an encoding is both a PSL formula
// and a 1-bit automaton (arm/forbid/disarm).  For exhaustively enumerated
// token words, an automaton violation must imply that the formula is false
// under the finite-trace LTL semantics of psl/evaluator.hpp — this is the
// link the paper delegated to SPOT.
#include <gtest/gtest.h>

#include "psl/evaluator.hpp"
#include "psl/translate.hpp"
#include "spec/parser.hpp"

namespace loom::psl {
namespace {

/// Replays the ClauseMonitor's generic automaton on a token word.
bool automaton_violates(const Clause& clause,
                        const std::vector<spec::Name>& word) {
  bool armed = clause.initially_armed;
  for (const auto token : word) {
    if (armed && clause.forbid.test(token)) return true;
    if (clause.arm.test(token)) armed = true;
    if (clause.disarm.test(token)) armed = false;
  }
  return false;
}

template <typename Fn>
void for_all_words(std::size_t alphabet, std::size_t max_len, Fn&& fn) {
  std::vector<spec::Name> word;
  std::vector<std::size_t> digits;
  for (std::size_t len = 1; len <= max_len; ++len) {
    digits.assign(len, 0);
    for (;;) {
      word.clear();
      for (std::size_t k = 0; k < len; ++k) {
        word.push_back(static_cast<spec::Name>(digits[k]));
      }
      fn(word);
      std::size_t pos = 0;
      while (pos < len && ++digits[pos] == alphabet) {
        digits[pos] = 0;
        ++pos;
      }
      if (pos == len) break;
    }
  }
}

class ClauseSoundness : public ::testing::TestWithParam<const char*> {};

TEST_P(ClauseSoundness, AutomatonViolationImpliesFormulaFalse) {
  spec::Alphabet ab;
  support::DiagnosticSink sink;
  auto p = spec::parse_property(GetParam(), ab, sink);
  ASSERT_TRUE(p.has_value()) << sink.to_string();
  const Encoding enc = encode(*p);
  std::size_t violations_seen = 0;

  for_all_words(enc.vocab.token_count(), 5, [&](const auto& word) {
    for (const Clause& clause : enc.clauses) {
      if (automaton_violates(clause, word)) {
        ++violations_seen;
        EXPECT_FALSE(eval(clause.formula, word))
            << GetParam() << ": automaton of "
            << to_string(clause.formula, enc.vocab.texts())
            << " fired on a word satisfying the formula";
      }
    }
  });
  EXPECT_GT(violations_seen, 0u) << "sweep exercised no violations";
}

INSTANTIATE_TEST_SUITE_P(
    Encodings, ClauseSoundness,
    ::testing::Values("(a << i, true)",            //
                      "(a[2,3] << i, true)",       //
                      "(({a, b}, &) << i, true)",  //
                      "(({a, b}, |) << i, true)",  //
                      "(a < b << i, true)"));

TEST(ClauseSemantics, MaxOneAutomatonMatchesFormulaOnCompleteRounds) {
  // On words that end with the reset token, automaton and formula agree
  // exactly (no open strong-until obligations remain for armed clauses
  // other than After, which is excluded by construction of the words).
  spec::Alphabet ab;
  support::DiagnosticSink sink;
  auto p = spec::parse_property("(a << i, false)", ab, sink);
  const Encoding enc = encode(*p);  // b=false: no After clauses

  const auto reset = static_cast<spec::Name>(enc.reset_tokens.first());
  for_all_words(enc.vocab.token_count(), 4, [&](auto word) {
    word.push_back(reset);  // force the reset point
    for (const Clause& clause : enc.clauses) {
      if (clause.kind == ClauseKind::Mutex) continue;
      EXPECT_EQ(automaton_violates(clause, word),
                !eval(clause.formula, word))
          << to_string(clause.formula, enc.vocab.texts());
    }
  });
}

}  // namespace
}  // namespace loom::psl

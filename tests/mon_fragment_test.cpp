// Direct unit tests of the fragment and ordering recognizers (the
// synchronous-parallel / sequential compositions of paper §6), independent
// of the full property monitors.
#include <gtest/gtest.h>

#include "mon/ordering_recognizer.hpp"
#include "spec/parser.hpp"

namespace loom::mon {
namespace {

struct Fixture {
  spec::Alphabet ab;
  spec::OrderingPlan plan;
  MonitorStats stats;

  explicit Fixture(const std::string& property_src) {
    support::DiagnosticSink sink;
    auto p = spec::parse_property(property_src, ab, sink);
    if (!p) throw std::runtime_error(sink.to_string());
    plan = spec::plan_antecedent(p->antecedent());
  }

  spec::Name id(const char* name) { return *ab.lookup(name); }
};

TEST(FragmentRecognizer, ConjunctiveCompletesInAnyOrder) {
  Fixture fx("(({a, b, c}, &) << i, true)");
  for (const auto& order : std::vector<std::vector<const char*>>{
           {"a", "b", "c"}, {"c", "b", "a"}, {"b", "a", "c"}}) {
    FragmentRecognizer frag(fx.plan.fragments[0], fx.stats);
    frag.start();
    EXPECT_FALSE(frag.min_complete());
    for (const char* n : order) {
      EXPECT_EQ(frag.step(fx.id(n), sim::Time::ns(1)),
                FragmentRecognizer::Out::None);
    }
    EXPECT_TRUE(frag.min_complete());
    EXPECT_TRUE(frag.in_progress());
    EXPECT_EQ(frag.step(fx.id("i"), sim::Time::ns(2)),
              FragmentRecognizer::Out::Ok);
  }
}

TEST(FragmentRecognizer, ConjunctiveMissingRangeErrsOnStop) {
  Fixture fx("(({a, b, c}, &) << i, true)");
  FragmentRecognizer frag(fx.plan.fragments[0], fx.stats);
  frag.start();
  frag.step(fx.id("a"), sim::Time::ns(1));
  frag.step(fx.id("b"), sim::Time::ns(2));
  EXPECT_EQ(frag.step(fx.id("i"), sim::Time::ns(3)),
            FragmentRecognizer::Out::Err);
  EXPECT_FALSE(frag.error_reason().empty());
}

TEST(FragmentRecognizer, DisjunctiveMinCompleteAfterOneBlock) {
  Fixture fx("(({a[2,3], b}, |) << i, true)");
  FragmentRecognizer frag(fx.plan.fragments[0], fx.stats);
  frag.start();
  frag.step(fx.id("a"), sim::Time::ns(1));
  EXPECT_FALSE(frag.min_complete()) << "a needs two occurrences";
  frag.step(fx.id("a"), sim::Time::ns(2));
  EXPECT_TRUE(frag.min_complete());
  EXPECT_EQ(frag.min_complete_time(), sim::Time::ns(2));
  EXPECT_EQ(frag.step(fx.id("i"), sim::Time::ns(3)),
            FragmentRecognizer::Out::Ok);
}

TEST(FragmentRecognizer, MinCompleteTimeIsFirstInstant) {
  Fixture fx("(({a, b}, |) << i, true)");
  FragmentRecognizer frag(fx.plan.fragments[0], fx.stats);
  frag.start();
  frag.step(fx.id("a"), sim::Time::ns(5));
  ASSERT_TRUE(frag.min_complete());
  frag.step(fx.id("b"), sim::Time::ns(9));  // still min-complete
  EXPECT_EQ(frag.min_complete_time(), sim::Time::ns(5));
}

TEST(FragmentRecognizer, ResetClearsProgress) {
  Fixture fx("(({a, b}, &) << i, true)");
  FragmentRecognizer frag(fx.plan.fragments[0], fx.stats);
  frag.start();
  frag.step(fx.id("a"), sim::Time::ns(1));
  EXPECT_TRUE(frag.in_progress());
  frag.reset();
  EXPECT_FALSE(frag.in_progress());
  EXPECT_FALSE(frag.min_complete());
  EXPECT_EQ(frag.child(0).state(), RangeRecognizer::State::Idle);
}

TEST(OrderingRecognizer, ChainsFragmentsOnTheStoppingEvent) {
  Fixture fx("(({a, b}, &) < c << i, true)");
  OrderingRecognizer rec(fx.plan, fx.stats);
  rec.activate();
  EXPECT_EQ(rec.active_fragment(), 0u);
  rec.step(fx.id("b"), sim::Time::ns(1));
  rec.step(fx.id("a"), sim::Time::ns(2));
  EXPECT_EQ(rec.active_fragment(), 0u);
  // c stops fragment 1 and simultaneously opens fragment 2.
  EXPECT_EQ(rec.step(fx.id("c"), sim::Time::ns(3)),
            OrderingRecognizer::Out::None);
  EXPECT_EQ(rec.active_fragment(), 1u);
  EXPECT_TRUE(rec.fragment(1).in_progress())
      << "the chaining event must be consumed by the new fragment";
  EXPECT_EQ(rec.step(fx.id("i"), sim::Time::ns(4)),
            OrderingRecognizer::Out::Completed);
}

TEST(OrderingRecognizer, EarlyLaterFragmentNameErrs) {
  Fixture fx("(a < b < c << i, true)");
  OrderingRecognizer rec(fx.plan, fx.stats);
  rec.activate();
  rec.step(fx.id("a"), sim::Time::ns(1));
  EXPECT_EQ(rec.step(fx.id("c"), sim::Time::ns(2)),
            OrderingRecognizer::Out::Err)
      << "c belongs to fragment 3 while fragment 1 is still active";
}

TEST(OrderingRecognizer, EarlierFragmentNameErrsAfterAdvance) {
  Fixture fx("(a < b < c << i, true)");
  OrderingRecognizer rec(fx.plan, fx.stats);
  rec.activate();
  rec.step(fx.id("a"), sim::Time::ns(1));
  rec.step(fx.id("b"), sim::Time::ns(2));
  EXPECT_EQ(rec.active_fragment(), 1u);
  EXPECT_EQ(rec.step(fx.id("a"), sim::Time::ns(3)),
            OrderingRecognizer::Out::Err)
      << "a belongs to the completed fragment 1";
}

TEST(OrderingRecognizer, RestartBeginsANewRound) {
  Fixture fx("(a < b << i, true)");
  OrderingRecognizer rec(fx.plan, fx.stats);
  rec.activate();
  rec.step(fx.id("a"), sim::Time::ns(1));
  rec.step(fx.id("b"), sim::Time::ns(2));
  EXPECT_EQ(rec.step(fx.id("i"), sim::Time::ns(3)),
            OrderingRecognizer::Out::Completed);
  rec.restart();
  EXPECT_EQ(rec.active_fragment(), 0u);
  EXPECT_FALSE(rec.in_progress());
  rec.step(fx.id("a"), sim::Time::ns(4));
  EXPECT_TRUE(rec.in_progress());
}

TEST(OrderingRecognizer, SpaceSumsChildrenPlusIndex) {
  Fixture fx("(a < b << i, true)");
  OrderingRecognizer rec(fx.plan, fx.stats);
  const std::size_t child_bits =
      rec.fragment(0).space_bits() + rec.fragment(1).space_bits();
  EXPECT_EQ(rec.space_bits(), child_bits + bits_for_value(2));
}

TEST(OrderingRecognizer, OnlyActiveFragmentWorks) {
  // The ops spent on one event must not grow with the number of inactive
  // fragments — the structural source of the Drct Θ(max |α(F)|) bound.
  Fixture small("(a1 << i, true)");
  Fixture large("(a1 < b1 < c1 < d1 < e1 < f1 < g1 < h1 << i, true)");
  OrderingRecognizer rec_small(small.plan, small.stats);
  OrderingRecognizer rec_large(large.plan, large.stats);
  rec_small.activate();
  rec_large.activate();
  const auto before_small = small.stats.ops;
  rec_small.step(small.id("a1"), sim::Time::ns(1));
  const auto cost_small = small.stats.ops - before_small;
  const auto before_large = large.stats.ops;
  rec_large.step(large.id("a1"), sim::Time::ns(1));
  const auto cost_large = large.stats.ops - before_large;
  EXPECT_LE(cost_large, cost_small + 2);
}

}  // namespace
}  // namespace loom::mon

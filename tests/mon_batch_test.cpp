// MonitorModule::observe_batch contract: same verdict as the per-event
// observe() path, violation callback exactly once, and the documented
// early-stop on a violating slice.
#include <gtest/gtest.h>

#include "mon/monitors.hpp"
#include "testing.hpp"

namespace loom::mon {
namespace {

struct PathResult {
  Verdict verdict = Verdict::Monitoring;
  int callbacks = 0;
  std::uint64_t monitor_events = 0;
};

PathResult run_per_event(const spec::Property& p, const spec::Alphabet& ab,
                         const spec::Trace& trace) {
  sim::Scheduler scheduler;
  auto monitor = make_monitor(p);
  MonitorModule module(scheduler, "per_event", *monitor, ab);
  PathResult out;
  module.on_violation([&out](const Violation&) { ++out.callbacks; });
  for (const auto& ev : trace) module.observe(ev.name, ev.time);
  out.verdict = monitor->verdict();
  out.monitor_events = monitor->stats().events;
  return out;
}

PathResult run_batch(const spec::Property& p, const spec::Alphabet& ab,
                     const spec::Trace& trace) {
  sim::Scheduler scheduler;
  auto monitor = make_monitor(p);
  MonitorModule module(scheduler, "batch", *monitor, ab);
  PathResult out;
  module.on_violation([&out](const Violation&) { ++out.callbacks; });
  module.observe_batch(trace);
  out.verdict = monitor->verdict();
  out.monitor_events = monitor->stats().events;
  return out;
}

TEST(MonitorModuleBatch, AgreesWithPerEventPathOnValidTrace) {
  spec::Alphabet ab;
  auto p = loom::testing::parse("(({a, b}, &) << s, true)", ab);
  const spec::Trace trace = loom::testing::trace_of("a b s b a s", ab);
  ASSERT_FALSE(spec::reference_check(p, trace, trace.back().time).rejected());

  const PathResult per_event = run_per_event(p, ab, trace);
  const PathResult batch = run_batch(p, ab, trace);
  EXPECT_EQ(per_event.verdict, batch.verdict);
  EXPECT_NE(batch.verdict, Verdict::Violated);
  EXPECT_EQ(per_event.callbacks, 0);
  EXPECT_EQ(batch.callbacks, 0);
  // No violation → no early stop: both paths step every event.
  EXPECT_EQ(per_event.monitor_events, batch.monitor_events);
}

TEST(MonitorModuleBatch, ViolatingSliceFiresCallbackExactlyOnce) {
  spec::Alphabet ab;
  auto p = loom::testing::parse("(({a, b}, &) << s, true)", ab);
  // Trigger fires before b completes the fragment: an invalid trace.
  const spec::Trace trace = loom::testing::trace_of("a s", ab);
  ASSERT_TRUE(spec::reference_check(p, trace, trace.back().time).rejected());

  const PathResult per_event = run_per_event(p, ab, trace);
  const PathResult batch = run_batch(p, ab, trace);
  EXPECT_EQ(per_event.verdict, Verdict::Violated);
  EXPECT_EQ(batch.verdict, Verdict::Violated);
  EXPECT_EQ(per_event.callbacks, 1);
  EXPECT_EQ(batch.callbacks, 1);
}

TEST(MonitorModuleBatch, StopsSteppingAtTheViolation) {
  spec::Alphabet ab;
  auto p = loom::testing::parse("(({a, b}, &) << s, true)", ab);
  // Violation at the second event, then a long valid-looking tail: the
  // batch path must not keep feeding the dead monitor (documented early
  // stop — its stats cover only events up to the violation).
  const spec::Trace trace =
      loom::testing::trace_of("a s a b s a b s a b s", ab);

  const PathResult per_event = run_per_event(p, ab, trace);
  const PathResult batch = run_batch(p, ab, trace);
  EXPECT_EQ(per_event.verdict, batch.verdict);
  EXPECT_EQ(batch.verdict, Verdict::Violated);
  EXPECT_EQ(batch.callbacks, 1);
  EXPECT_EQ(batch.monitor_events, 2u);
  EXPECT_EQ(per_event.monitor_events, trace.size());
}

TEST(MonitorModuleBatch, ReplayAllMatchesPerEventStatsExactly) {
  // The campaign's replay policy: every event stepped even past the
  // violation, so verdict AND stats land bit-identical to an observe()
  // loop — the equivalence the cached-replay differential tests build on.
  spec::Alphabet ab;
  auto p = loom::testing::parse("(({a, b}, &) << s, true)", ab);
  const spec::Trace traces[] = {
      loom::testing::trace_of("a b s b a s", ab),        // valid
      loom::testing::trace_of("a s a b s a b s a b s", ab),  // violating
  };
  for (const auto& trace : traces) {
    const PathResult per_event = run_per_event(p, ab, trace);

    sim::Scheduler scheduler;
    auto monitor = make_monitor(p);
    MonitorModule module(scheduler, "replay_all", *monitor, ab);
    int callbacks = 0;
    module.on_violation([&callbacks](const Violation&) { ++callbacks; });
    module.observe_batch(trace, MonitorModule::BatchPolicy::ReplayAll);

    EXPECT_EQ(monitor->verdict(), per_event.verdict);
    EXPECT_EQ(callbacks, per_event.callbacks);
    EXPECT_EQ(monitor->stats().events, per_event.monitor_events);
    EXPECT_EQ(monitor->stats().events, trace.size());
  }
}

TEST(MonitorModuleBatch, MonitorLevelBatchIsObservationallyPerEvent) {
  // Monitor::observe_batch (the devirtualized override every monitor kind
  // carries) must be indistinguishable from an observe() loop, ops
  // accounting included.
  spec::Alphabet ab;
  auto p = loom::testing::parse("(p[2,3] => q[1,4] < r, 10us)", ab);
  const spec::Trace trace = loom::testing::trace_of("p p q q r p p q r", ab);

  auto looped = make_monitor(p);
  for (const auto& ev : trace) looped->observe(ev.name, ev.time);
  auto batched = make_monitor(p);
  batched->observe_batch(trace);

  EXPECT_EQ(batched->verdict(), looped->verdict());
  EXPECT_EQ(batched->stats().events, looped->stats().events);
  EXPECT_EQ(batched->stats().ops, looped->stats().ops);
  EXPECT_EQ(batched->stats().max_ops_per_event,
            looped->stats().max_ops_per_event);
}

}  // namespace
}  // namespace loom::mon

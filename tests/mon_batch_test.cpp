// MonitorModule::observe_batch contract: same verdict as the per-event
// observe() path, violation callback exactly once, and the documented
// early-stop on a violating slice.
#include <gtest/gtest.h>

#include "mon/monitors.hpp"
#include "testing.hpp"

namespace loom::mon {
namespace {

struct PathResult {
  Verdict verdict = Verdict::Monitoring;
  int callbacks = 0;
  std::uint64_t monitor_events = 0;
};

PathResult run_per_event(const spec::Property& p, const spec::Alphabet& ab,
                         const spec::Trace& trace) {
  sim::Scheduler scheduler;
  auto monitor = make_monitor(p);
  MonitorModule module(scheduler, "per_event", *monitor, ab);
  PathResult out;
  module.on_violation([&out](const Violation&) { ++out.callbacks; });
  for (const auto& ev : trace) module.observe(ev.name, ev.time);
  out.verdict = monitor->verdict();
  out.monitor_events = monitor->stats().events;
  return out;
}

PathResult run_batch(const spec::Property& p, const spec::Alphabet& ab,
                     const spec::Trace& trace) {
  sim::Scheduler scheduler;
  auto monitor = make_monitor(p);
  MonitorModule module(scheduler, "batch", *monitor, ab);
  PathResult out;
  module.on_violation([&out](const Violation&) { ++out.callbacks; });
  module.observe_batch(trace);
  out.verdict = monitor->verdict();
  out.monitor_events = monitor->stats().events;
  return out;
}

TEST(MonitorModuleBatch, AgreesWithPerEventPathOnValidTrace) {
  spec::Alphabet ab;
  auto p = loom::testing::parse("(({a, b}, &) << s, true)", ab);
  const spec::Trace trace = loom::testing::trace_of("a b s b a s", ab);
  ASSERT_FALSE(spec::reference_check(p, trace, trace.back().time).rejected());

  const PathResult per_event = run_per_event(p, ab, trace);
  const PathResult batch = run_batch(p, ab, trace);
  EXPECT_EQ(per_event.verdict, batch.verdict);
  EXPECT_NE(batch.verdict, Verdict::Violated);
  EXPECT_EQ(per_event.callbacks, 0);
  EXPECT_EQ(batch.callbacks, 0);
  // No violation → no early stop: both paths step every event.
  EXPECT_EQ(per_event.monitor_events, batch.monitor_events);
}

TEST(MonitorModuleBatch, ViolatingSliceFiresCallbackExactlyOnce) {
  spec::Alphabet ab;
  auto p = loom::testing::parse("(({a, b}, &) << s, true)", ab);
  // Trigger fires before b completes the fragment: an invalid trace.
  const spec::Trace trace = loom::testing::trace_of("a s", ab);
  ASSERT_TRUE(spec::reference_check(p, trace, trace.back().time).rejected());

  const PathResult per_event = run_per_event(p, ab, trace);
  const PathResult batch = run_batch(p, ab, trace);
  EXPECT_EQ(per_event.verdict, Verdict::Violated);
  EXPECT_EQ(batch.verdict, Verdict::Violated);
  EXPECT_EQ(per_event.callbacks, 1);
  EXPECT_EQ(batch.callbacks, 1);
}

TEST(MonitorModuleBatch, StopsSteppingAtTheViolation) {
  spec::Alphabet ab;
  auto p = loom::testing::parse("(({a, b}, &) << s, true)", ab);
  // Violation at the second event, then a long valid-looking tail: the
  // batch path must not keep feeding the dead monitor (documented early
  // stop — its stats cover only events up to the violation).
  const spec::Trace trace =
      loom::testing::trace_of("a s a b s a b s a b s", ab);

  const PathResult per_event = run_per_event(p, ab, trace);
  const PathResult batch = run_batch(p, ab, trace);
  EXPECT_EQ(per_event.verdict, batch.verdict);
  EXPECT_EQ(batch.verdict, Verdict::Violated);
  EXPECT_EQ(batch.callbacks, 1);
  EXPECT_EQ(batch.monitor_events, 2u);
  EXPECT_EQ(per_event.monitor_events, trace.size());
}

}  // namespace
}  // namespace loom::mon

// Differential lockdown of checkpointed, suffix-only mutant replay — the
// fifth engine invariant: a campaign that restores each mutant's monitor
// from the nearest checkpoint at or before the mutation site and replays
// only the suffix must be byte-for-byte identical to the full-replay
// engine — for every backend, at every thread count, at every checkpoint
// stride, under every cache/batch/plan/scratch knob.  Plus lockdowns of the
// accounting: the checkpoint_hits / events_skipped diagnostics are a pure
// function of the campaign parameters (never of scheduling), the ladder
// actually fires on checkpoint-friendly shapes, and configurations without
// a ladder (cache off, stride 0, knob off) replay in full.
#include <gtest/gtest.h>

#include <string>

#include "abv/campaign.hpp"
#include "testing.hpp"

namespace loom::abv {
namespace {

constexpr mon::Backend kBackends[] = {
    mon::Backend::Auto, mon::Backend::Drct, mon::Backend::ViaPSL,
    mon::Backend::Vm};

struct CampaignRun {
  CampaignResult result;
  std::string report;
};

struct Knobs {
  bool compiled = true;
  bool reuse_traces = true;
  bool batch_replay = true;
  bool reuse_scratch = true;
};

CampaignRun run_with(const char* source, mon::Backend backend,
                     bool incremental, std::size_t stride,
                     std::size_t threads, const Knobs& knobs,
                     std::size_t shard_size = 1, bool viapsl = false) {
  // A fresh alphabet per run: runs must not influence each other through
  // interned ids.
  spec::Alphabet ab;
  auto p = loom::testing::parse(source, ab);
  CampaignOptions opt;
  opt.seeds = 4;
  opt.stimuli.rounds = 4;
  opt.stimuli.noise_permille = 100;
  opt.mutants_per_kind = 6;
  opt.check_viapsl = viapsl;
  opt.backend = backend;
  loom::testing::scalar_lanes_if_forced(opt);
  opt.use_compiled_plans = knobs.compiled;
  opt.threads = threads;
  opt.shard_size = shard_size;
  opt.reuse_traces = knobs.reuse_traces;
  opt.batch_replay = knobs.batch_replay;
  opt.reuse_scratch = knobs.reuse_scratch;
  opt.incremental_replay = incremental;
  opt.checkpoint_stride = stride;
  const CampaignResult r = run_campaign(p, ab, opt);
  return {r, r.report(ab)};
}

class CampaignIncrementalDiff : public ::testing::TestWithParam<const char*> {
};

TEST_P(CampaignIncrementalDiff, IncrementalEqualsFullReplayByteForByte) {
  // The fifth engine invariant across the full grid: the full-replay run is
  // computed once per (backend, knobs) and every incremental variant —
  // any stride, any thread count — must match it byte for byte.
  const Knobs knob_grid[] = {
      {true, true, true, true},     // the default engine
      {true, true, false, true},    // per-event suffix stepping
      {true, true, true, false},    // no scratch arenas (fresh hosts)
      {false, true, true, true},    // legacy translate-per-unit baseline
  };
  const std::size_t strides[] = {1, 3, 32, 1000000};
  for (const mon::Backend backend : kBackends) {
    for (const Knobs& knobs : knob_grid) {
      const CampaignRun full = run_with(GetParam(), backend,
                                        /*incremental=*/false, 32, 1, knobs);
      for (const std::size_t stride : strides) {
        for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
          const CampaignRun inc = run_with(GetParam(), backend,
                                           /*incremental=*/true, stride,
                                           threads, knobs);
          const std::string what =
              std::string("backend=") + to_string(backend) +
              " stride=" + std::to_string(stride) +
              " threads=" + std::to_string(threads) +
              " compiled=" + std::to_string(knobs.compiled) +
              " batch=" + std::to_string(knobs.batch_replay) +
              " scratch=" + std::to_string(knobs.reuse_scratch);
          EXPECT_TRUE(
              loom::testing::results_identical(inc.result, full.result))
              << what;
          EXPECT_EQ(inc.report, full.report) << what;
        }
      }
    }
  }
}

TEST_P(CampaignIncrementalDiff, NoLadderConfigurationsReplayInFull) {
  // Without a cache entry to hold the ladder (reuse_traces off), with a
  // zero stride, or with the knob off, every mutant replays from event 0 —
  // and the diagnostics say so.
  Knobs no_cache;
  no_cache.reuse_traces = false;
  const CampaignRun uncached = run_with(GetParam(), mon::Backend::Auto,
                                        /*incremental=*/true, 32, 1, no_cache);
  EXPECT_EQ(uncached.result.checkpoint_hits, 0u);
  EXPECT_EQ(uncached.result.events_skipped, 0u);

  const CampaignRun zero_stride = run_with(GetParam(), mon::Backend::Auto,
                                           /*incremental=*/true, 0, 1,
                                           Knobs{});
  EXPECT_EQ(zero_stride.result.checkpoint_hits, 0u);
  EXPECT_EQ(zero_stride.result.events_skipped, 0u);

  const CampaignRun off = run_with(GetParam(), mon::Backend::Auto,
                                   /*incremental=*/false, 32, 1, Knobs{});
  EXPECT_EQ(off.result.checkpoint_hits, 0u);
  EXPECT_EQ(off.result.events_skipped, 0u);

  // The no-ladder runs still agree with the default-engine bytes.
  const CampaignRun inc = run_with(GetParam(), mon::Backend::Auto,
                                   /*incremental=*/true, 32, 1, Knobs{});
  EXPECT_TRUE(loom::testing::results_identical(uncached.result, inc.result));
  EXPECT_EQ(zero_stride.report, inc.report);
}

TEST_P(CampaignIncrementalDiff, DiagnosticsAreSchedulingIndependent) {
  // checkpoint_hits and events_skipped are engine diagnostics, but like
  // the trace-cache split they must be a pure function of the campaign
  // parameters: serial and 4-thread runs agree counter for counter at
  // every shard size and stride.
  for (const std::size_t stride : {std::size_t{1}, std::size_t{16}}) {
    for (const std::size_t shard_size : {std::size_t{1}, std::size_t{5}}) {
      const CampaignRun serial = run_with(GetParam(), mon::Backend::Auto,
                                          true, stride, 1, Knobs{},
                                          shard_size);
      const CampaignRun parallel = run_with(GetParam(), mon::Backend::Auto,
                                            true, stride, 4, Knobs{},
                                            shard_size);
      const std::string what = "stride=" + std::to_string(stride) +
                               " shard_size=" + std::to_string(shard_size);
      EXPECT_EQ(parallel.report, serial.report) << what;
      EXPECT_EQ(parallel.result.checkpoint_hits,
                serial.result.checkpoint_hits)
          << what;
      EXPECT_EQ(parallel.result.events_skipped,
                serial.result.events_skipped)
          << what;
    }
  }
}

TEST_P(CampaignIncrementalDiff, TightStrideActuallySkipsPrefixWork) {
  // With stride 1 every mutation site has a floor checkpoint one event
  // below it, so on these multi-round traces the ladder must fire for
  // every replayed (reference-rejected) mutant and skip a nonzero prefix.
  const CampaignRun inc = run_with(GetParam(), mon::Backend::Auto,
                                   /*incremental=*/true, 1, 1, Knobs{});
  std::size_t replayed = 0;
  for (const auto& m : inc.result.mutation) replayed += m.invalid;
  ASSERT_GT(replayed, 0u);
  EXPECT_GT(inc.result.checkpoint_hits, 0u);
  EXPECT_GT(inc.result.events_skipped, 0u);
  // A mutant at position p skips at most p events; hits never exceed the
  // replayed-mutant count.
  EXPECT_LE(inc.result.checkpoint_hits, replayed);

  // Diagnostics land in the opt-in report, never the default one.
  spec::Alphabet ab;
  EXPECT_EQ(inc.report.find("replay:"), std::string::npos);
  const std::string diag = inc.result.report(ab, true);
  EXPECT_NE(diag.find("replay:"), std::string::npos);
  EXPECT_NE(diag.find("checkpoint restores"), std::string::npos);
}

TEST_P(CampaignIncrementalDiff, ViaPslCrossCheckStaysIdentical) {
  // check_viapsl runs a second monitor per valid unit; the ladder belongs
  // to the chosen backend only, and the cross-check path must stay
  // untouched by the knob.
  const CampaignRun full = run_with(GetParam(), mon::Backend::Drct,
                                    /*incremental=*/false, 8, 1, Knobs{},
                                    /*shard_size=*/6, /*viapsl=*/true);
  const CampaignRun inc = run_with(GetParam(), mon::Backend::Drct,
                                   /*incremental=*/true, 8, 4, Knobs{},
                                   /*shard_size=*/6, /*viapsl=*/true);
  EXPECT_TRUE(loom::testing::results_identical(inc.result, full.result));
  EXPECT_EQ(inc.report, full.report);
}

INSTANTIATE_TEST_SUITE_P(
    Properties, CampaignIncrementalDiff,
    ::testing::Values("(n << i, true)",                               //
                      "(({a, b, c}, &) << s, false)",                 //
                      "(({n1, n2}, &) < ({n3[2,8], n4}, |) < n5 << i, true)",
                      "(p[2,3] => q[1,4] < r, 10us)"));

}  // namespace
}  // namespace loom::abv

// Both monitor families attached to the live platform simultaneously:
// Drct and ViaPSL must reach compatible verdicts on the same in-simulation
// event stream, for the nominal scenario and for every fault injection.
#include <gtest/gtest.h>

#include "mon/monitors.hpp"
#include "plat/platform.hpp"
#include "psl/clause_monitor.hpp"
#include "spec/parser.hpp"

namespace loom::plat {
namespace {

constexpr const char* kExample2 =
    "(({set_imgAddr, set_glAddr, set_glSize}, &) << start, false)";
// Range bounds kept materializable for the ViaPSL encoding (gallery of 8
// plus the probe read: 9 reads, comfortably within [1,40]).
constexpr const char* kExample3 =
    "(start => read_img[1,40] < set_irq, 2ms)";

struct DualHarness {
  explicit DualHarness(const PlatformConfig& cfg) : platform(cfg) {
    auto& ab = platform.alphabet();
    support::DiagnosticSink sink;
    auto p2 = spec::parse_property(kExample2, ab, sink);
    auto p3 = spec::parse_property(kExample3, ab, sink);
    if (!p2 || !p3) throw std::runtime_error(sink.to_string());

    drct2 = mon::make_monitor(*p2);
    drct3 = mon::make_monitor(*p3);
    psl2 = std::make_unique<psl::ClauseMonitor>(psl::encode(*p2, 2000000, &ab));
    psl3 = std::make_unique<psl::ClauseMonitor>(psl::encode(*p3, 2000000, &ab));
    for (auto* m :
         {drct2.get(), drct3.get(), psl2.get(), psl3.get()}) {
      modules.push_back(std::make_unique<mon::MonitorModule>(
          platform.scheduler(), "m" + std::to_string(modules.size()), *m,
          ab));
    }
    platform.observer().add_sink([this](spec::Name n, sim::Time t) {
      for (auto& mod : modules) mod->observe(n, t);
    });
  }

  void run() {
    platform.run(sim::Time::ms(10));
    for (auto& mod : modules) mod->finish();
  }

  AccessControlPlatform platform;
  std::unique_ptr<mon::Monitor> drct2, drct3, psl2, psl3;
  std::vector<std::unique_ptr<mon::MonitorModule>> modules;
};

TEST(DualFamily, NominalRunBothFamiliesPass) {
  PlatformConfig cfg;
  cfg.button_presses = 3;
  DualHarness h(cfg);
  h.run();
  EXPECT_EQ(h.drct2->verdict(), mon::Verdict::Holds);
  EXPECT_EQ(h.psl2->verdict(), mon::Verdict::Holds);
  EXPECT_NE(h.drct3->verdict(), mon::Verdict::Violated);
  EXPECT_NE(h.psl3->verdict(), mon::Verdict::Violated)
      << h.psl3->violation()->to_string(h.platform.alphabet());
}

TEST(DualFamily, SkippedRegisterCaughtByBoth) {
  PlatformConfig cfg;
  cfg.button_presses = 2;
  cfg.fault_skip_glsize = true;
  DualHarness h(cfg);
  h.run();
  EXPECT_EQ(h.drct2->verdict(), mon::Verdict::Violated);
  EXPECT_EQ(h.psl2->verdict(), mon::Verdict::Violated);
  // Example 3 remains satisfied in both families.
  EXPECT_NE(h.drct3->verdict(), mon::Verdict::Violated);
  EXPECT_NE(h.psl3->verdict(), mon::Verdict::Violated);
}

TEST(DualFamily, EarlyStartCaughtByBoth) {
  PlatformConfig cfg;
  cfg.button_presses = 2;
  cfg.fault_early_start = true;
  DualHarness h(cfg);
  h.run();
  EXPECT_EQ(h.drct2->verdict(), mon::Verdict::Violated);
  EXPECT_EQ(h.psl2->verdict(), mon::Verdict::Violated);
}

TEST(DualFamily, DroppedIrqCaughtByBothWatchdogs) {
  PlatformConfig cfg;
  cfg.button_presses = 1;
  cfg.fault_skip_irq = true;
  DualHarness h(cfg);
  h.run();
  EXPECT_EQ(h.drct3->verdict(), mon::Verdict::Violated);
  EXPECT_EQ(h.psl3->verdict(), mon::Verdict::Violated);
  EXPECT_NE(h.psl3->violation()->reason.find("deadline"), std::string::npos);
}

TEST(DualFamily, SlowIpuCaughtByBoth) {
  PlatformConfig cfg;
  cfg.button_presses = 1;
  cfg.fault_slow_factor = 400;
  DualHarness h(cfg);
  h.run();
  EXPECT_EQ(h.drct3->verdict(), mon::Verdict::Violated);
  EXPECT_EQ(h.psl3->verdict(), mon::Verdict::Violated);
}

TEST(DualFamily, CostGapVisibleInSimulation) {
  PlatformConfig cfg;
  cfg.button_presses = 4;
  DualHarness h(cfg);
  h.run();
  // Same event stream: the ViaPSL monitor for Example 3 does far more work
  // per event than the Drct monitor (clause network vs active fragment).
  EXPECT_GT(h.psl3->stats().max_ops_per_event,
            5 * h.drct3->stats().max_ops_per_event);
  EXPECT_GT(h.psl3->space_bits(), h.drct3->space_bits());
}

}  // namespace
}  // namespace loom::plat

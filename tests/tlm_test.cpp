#include <gtest/gtest.h>

#include "tlm/payload.hpp"
#include "tlm/router.hpp"
#include "tlm/socket.hpp"

namespace loom::tlm {
namespace {

TEST(Payload, Factories) {
  Payload r = Payload::read(0x100, 8);
  EXPECT_EQ(r.command(), Command::Read);
  EXPECT_EQ(r.address(), 0x100u);
  EXPECT_EQ(r.length(), 8u);
  EXPECT_EQ(r.response(), Response::Incomplete);

  Payload w = Payload::write_u32(0x20, 0xdeadbeef);
  EXPECT_EQ(w.command(), Command::Write);
  EXPECT_EQ(w.get_u32(), 0xdeadbeefu);
}

TEST(Payload, U32LittleEndian) {
  Payload p = Payload::write_u32(0, 0x01020304);
  EXPECT_EQ(p.data()[0], 0x04);
  EXPECT_EQ(p.data()[1], 0x03);
  EXPECT_EQ(p.data()[2], 0x02);
  EXPECT_EQ(p.data()[3], 0x01);
  p.set_u32(0xa0b0c0d0);
  EXPECT_EQ(p.get_u32(), 0xa0b0c0d0u);
}

TEST(Payload, U32OutOfRangeThrows) {
  Payload p = Payload::read(0, 2);
  EXPECT_THROW(p.get_u32(), std::out_of_range);
  EXPECT_THROW(p.set_u32(1), std::out_of_range);
}

TEST(Payload, ToStringMentionsCommandAndResponse) {
  Payload p = Payload::read(0xab, 4);
  p.set_response(Response::Ok);
  const std::string s = p.to_string();
  EXPECT_NE(s.find("read"), std::string::npos);
  EXPECT_NE(s.find("ab"), std::string::npos);
  EXPECT_NE(s.find("ok"), std::string::npos);
}

/// A 16-byte scratch target recording the addresses it was accessed at.
class ScratchTarget final : public BlockingTransport {
 public:
  explicit ScratchTarget(std::string name) : socket(std::move(name)) {
    socket.bind(*this);
  }

  void b_transport(Payload& trans, sim::Time& delay) override {
    delay += sim::Time::ns(5);
    last_address = trans.address();
    if (trans.address() + trans.length() > mem.size()) {
      trans.set_response(Response::AddressError);
      return;
    }
    if (trans.command() == Command::Write) {
      std::copy(trans.data().begin(), trans.data().end(),
                mem.begin() + static_cast<long>(trans.address()));
    } else if (trans.command() == Command::Read) {
      std::copy(mem.begin() + static_cast<long>(trans.address()),
                mem.begin() + static_cast<long>(trans.address()) +
                    static_cast<long>(trans.length()),
                trans.data().begin());
    }
    trans.set_response(Response::Ok);
  }

  TargetSocket socket;
  std::array<std::uint8_t, 16> mem{};
  std::uint64_t last_address = ~0ull;
};

TEST(Socket, WriteThenReadRoundtrip) {
  ScratchTarget target("mem");
  InitiatorSocket init("cpu");
  init.bind(target.socket);

  sim::Time delay;
  EXPECT_EQ(init.write_u32(4, 0xcafef00d, delay), Response::Ok);
  std::uint32_t v = 0;
  EXPECT_EQ(init.read_u32(4, v, delay), Response::Ok);
  EXPECT_EQ(v, 0xcafef00du);
  EXPECT_EQ(delay, sim::Time::ns(10));  // two 5 ns accesses
}

TEST(Socket, UnboundThrows) {
  InitiatorSocket init("cpu");
  Payload p = Payload::read(0, 4);
  sim::Time delay;
  EXPECT_THROW(init.b_transport(p, delay), std::logic_error);

  TargetSocket t("t");
  Payload q = Payload::read(0, 4);
  EXPECT_THROW(t.deliver(q, delay), std::logic_error);
}

TEST(Socket, ObserversSeeCompletedTransactions) {
  ScratchTarget target("mem");
  InitiatorSocket init("cpu");
  init.bind(target.socket);
  std::vector<std::uint64_t> observed;
  target.socket.add_observer(
      [&](const Payload& p, sim::Time) { observed.push_back(p.address()); });

  sim::Time delay;
  init.write_u32(0, 1, delay);
  init.write_u32(8, 2, delay);
  EXPECT_EQ(observed, (std::vector<std::uint64_t>{0, 8}));
}

TEST(Router, DecodesAndRebases) {
  ScratchTarget a("a"), b("b");
  Router bus("bus");
  bus.map(0x1000, 16, a.socket);
  bus.map(0x2000, 16, b.socket);
  InitiatorSocket init("cpu");
  init.bind(bus.target_socket());

  sim::Time delay;
  EXPECT_EQ(init.write_u32(0x1004, 0x11, delay), Response::Ok);
  EXPECT_EQ(a.last_address, 4u);  // rebased
  EXPECT_EQ(init.write_u32(0x2008, 0x22, delay), Response::Ok);
  EXPECT_EQ(b.last_address, 8u);
  EXPECT_EQ(bus.transaction_count(), 2u);
}

TEST(Router, AbsoluteMappingKeepsAddress) {
  ScratchTarget a("a");
  Router bus("bus");
  bus.map(0, 16, a.socket, /*relative=*/false);
  InitiatorSocket init("cpu");
  init.bind(bus.target_socket());
  sim::Time delay;
  EXPECT_EQ(init.write_u32(12, 9, delay), Response::Ok);
  EXPECT_EQ(a.last_address, 12u);
}

TEST(Router, UnmappedAddressErrors) {
  Router bus("bus");
  ScratchTarget a("a");
  bus.map(0x1000, 16, a.socket);
  InitiatorSocket init("cpu");
  init.bind(bus.target_socket());
  sim::Time delay;
  std::uint32_t v = 0;
  EXPECT_EQ(init.read_u32(0x9000, v, delay), Response::AddressError);
}

TEST(Router, OverlappingWindowsRejected) {
  Router bus("bus");
  ScratchTarget a("a"), b("b");
  bus.map(0x1000, 0x100, a.socket);
  EXPECT_THROW(bus.map(0x10f0, 0x10, b.socket), std::invalid_argument);
  EXPECT_THROW(bus.map(0x1000, 0x100, b.socket), std::invalid_argument);
  bus.map(0x1100, 0x100, b.socket);  // adjacent is fine
}

TEST(Router, LatencyAnnotated) {
  ScratchTarget a("a");
  Router bus("bus");
  bus.set_latency(sim::Time::ns(2));
  bus.map(0, 16, a.socket);
  InitiatorSocket init("cpu");
  init.bind(bus.target_socket());
  sim::Time delay;
  init.write_u32(0, 1, delay);
  EXPECT_EQ(delay, sim::Time::ns(7));  // 2 (bus) + 5 (target)
}

TEST(Router, ObserverOnRouterSeesOriginalAddress) {
  ScratchTarget a("a");
  Router bus("bus");
  bus.map(0x500, 16, a.socket);
  InitiatorSocket init("cpu");
  init.bind(bus.target_socket());
  std::uint64_t seen = 0;
  bus.target_socket().add_observer(
      [&](const Payload& p, sim::Time) { seen = p.address(); });
  sim::Time delay;
  init.write_u32(0x504, 7, delay);
  EXPECT_EQ(seen, 0x504u);  // restored after routing
}

}  // namespace
}  // namespace loom::tlm

// Determinism contract of the sharded campaign engine: the thread count
// and the shard size are pure performance knobs — every CampaignResult
// field and the rendered report must be bit-identical across them.
#include <gtest/gtest.h>

#include "abv/campaign.hpp"
#include "abv/checker.hpp"
#include "mon/monitors.hpp"
#include "testing.hpp"

namespace loom::abv {
namespace {

struct CampaignRun {
  CampaignResult result;
  std::string report;
};

// Each run parses into a fresh alphabet so runs cannot influence each other
// through interned ids.
CampaignRun run_with(const char* source, std::size_t threads, std::size_t shard_size,
             bool viapsl = true,
             mon::Backend backend = mon::Backend::Auto) {
  spec::Alphabet ab;
  auto p = loom::testing::parse(source, ab);
  CampaignOptions opt;
  opt.seeds = 6;
  opt.stimuli.rounds = 3;
  opt.stimuli.noise_permille = 100;
  opt.mutants_per_kind = 8;
  opt.check_viapsl = viapsl;
  opt.threads = threads;
  opt.shard_size = shard_size;
  opt.backend = backend;
  loom::testing::scalar_lanes_if_forced(opt);
  const CampaignResult r = run_campaign(p, ab, opt);
  return {r, r.report(ab)};
}

void expect_identical(const CampaignRun& a, const CampaignRun& b, const char* what) {
  EXPECT_EQ(a.result.traces, b.result.traces) << what;
  EXPECT_EQ(a.result.events, b.result.events) << what;
  EXPECT_EQ(a.result.valid_accepted, b.result.valid_accepted) << what;
  EXPECT_EQ(a.result.oracle_disagreements, b.result.oracle_disagreements)
      << what;
  EXPECT_EQ(a.result.viapsl_false_alarms, b.result.viapsl_false_alarms)
      << what;
  for (std::size_t k = 0; k < 5; ++k) {
    EXPECT_EQ(a.result.mutation[k].applied, b.result.mutation[k].applied)
        << what << " kind " << k;
    EXPECT_EQ(a.result.mutation[k].invalid, b.result.mutation[k].invalid)
        << what << " kind " << k;
    EXPECT_EQ(a.result.mutation[k].detected, b.result.mutation[k].detected)
        << what << " kind " << k;
    EXPECT_EQ(a.result.mutation[k].missed, b.result.mutation[k].missed)
        << what << " kind " << k;
  }
  // Coverage ratios and the operation accounting must match to the bit,
  // not within a tolerance: the merge is exact.
  EXPECT_EQ(a.result.alphabet_coverage, b.result.alphabet_coverage) << what;
  EXPECT_EQ(a.result.recognizer_state_coverage,
            b.result.recognizer_state_coverage)
      << what;
  EXPECT_EQ(a.result.monitor_stats.ops, b.result.monitor_stats.ops) << what;
  EXPECT_EQ(a.result.monitor_stats.events, b.result.monitor_stats.events)
      << what;
  EXPECT_EQ(a.result.monitor_stats.max_ops_per_event,
            b.result.monitor_stats.max_ops_per_event)
      << what;
  EXPECT_EQ(a.report, b.report) << what;
}

class ParallelCampaign : public ::testing::TestWithParam<const char*> {};

TEST_P(ParallelCampaign, ThreadCountDoesNotChangeTheResult) {
  const CampaignRun serial = run_with(GetParam(), 1, 0);
  EXPECT_TRUE(serial.result.ok()) << serial.report;

  const CampaignRun eight = run_with(GetParam(), 8, 0);
  expect_identical(serial, eight, "threads=8");

  const CampaignRun hardware = run_with(GetParam(), 0, 0);
  expect_identical(serial, hardware, "threads=auto");
}

TEST_P(ParallelCampaign, ShardSizeDoesNotChangeTheResult) {
  const CampaignRun serial = run_with(GetParam(), 1, 0);
  const CampaignRun tiny_shards = run_with(GetParam(), 8, 1);
  expect_identical(serial, tiny_shards, "shard_size=1");
  const CampaignRun odd_shards = run_with(GetParam(), 3, 7);
  expect_identical(serial, odd_shards, "threads=3 shard_size=7");
}

TEST_P(ParallelCampaign, BackendKnobStaysDeterministicAcrossThreads) {
  // The backend grid: whichever monitor construction executes the units,
  // the thread count and shard size stay pure performance knobs.
  for (const mon::Backend backend :
       {mon::Backend::Auto, mon::Backend::Drct, mon::Backend::ViaPSL,
        mon::Backend::Vm}) {
    const CampaignRun serial =
        run_with(GetParam(), 1, 0, /*viapsl=*/false, backend);
    const CampaignRun eight =
        run_with(GetParam(), 8, 1, /*viapsl=*/false, backend);
    expect_identical(serial, eight, to_string(backend));
    // The backend line of the report records the resolved choice.
    EXPECT_NE(serial.report.find(std::string("backend: ") +
                                 to_string(serial.result.compile_stats
                                               .backend_chosen)),
              std::string::npos)
        << serial.report;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Properties, ParallelCampaign,
    ::testing::Values("(n << i, true)",                               //
                      "(({a, b, c}, &) << s, false)",                 //
                      "(({n1, n2}, &) < ({n3[2,8], n4}, |) < n5 << i, true)",
                      "(p[2,3] => q[1,4] < r, 10us)"));

TEST(ParallelCampaignBatch, MatchesIndividualRuns) {
  // run_campaigns() shards all properties onto one pool; each result must
  // still equal its stand-alone run (same alphabet, same options).
  const char* sources[] = {"(n << i, true)",
                           "(p[2,3] => q[1,4] < r, 10us)"};
  spec::Alphabet batch_ab;
  std::vector<spec::Property> props;
  for (const char* s : sources) {
    props.push_back(loom::testing::parse(s, batch_ab));
  }
  CampaignOptions opt;
  opt.seeds = 4;
  opt.stimuli.rounds = 2;
  opt.mutants_per_kind = 5;
  opt.threads = 4;
  opt.shard_size = 1;

  std::vector<const spec::Property*> ptrs;
  for (const auto& p : props) ptrs.push_back(&p);
  const auto batch = run_campaigns(ptrs, batch_ab, opt);
  ASSERT_EQ(batch.size(), 2u);

  spec::Alphabet solo_ab;
  CampaignOptions solo_opt = opt;
  solo_opt.threads = 1;
  for (std::size_t i = 0; i < 2; ++i) {
    auto p = loom::testing::parse(sources[i], solo_ab);
    const CampaignResult solo = run_campaign(p, solo_ab, solo_opt);
    EXPECT_EQ(batch[i].report(batch_ab), solo.report(solo_ab)) << sources[i];
  }
}

TEST(CheckerAggregation, AbsorbMergesShardCheckersAndStats) {
  spec::Alphabet ab;
  auto p = loom::testing::parse("(({a, b}, &) << s, true)", ab);
  const spec::Trace trace = loom::testing::trace_of("a b s", ab);

  // Two worker-style checkers over the same trace, absorbed into a master.
  Checker master;
  master.add("drct#0", mon::make_monitor(p));
  Checker shard;
  shard.add("drct#1", mon::make_monitor(p));
  master.run(trace, trace.back().time);
  shard.run(trace, trace.back().time);

  const auto solo = master.aggregate_stats();
  master.absorb(std::move(shard));
  ASSERT_EQ(master.size(), 2u);
  EXPECT_EQ(master.name(1), "drct#1");
  EXPECT_TRUE(master.all_passing());

  // Both monitors saw identical traffic, so the absorbed aggregate is
  // exactly double the events/ops with an unchanged per-event worst case.
  const auto merged = master.aggregate_stats();
  EXPECT_EQ(merged.events, 2 * solo.events);
  EXPECT_EQ(merged.ops, 2 * solo.ops);
  EXPECT_EQ(merged.max_ops_per_event, solo.max_ops_per_event);
}

TEST(ParallelCampaign, MonitorStatsAggregateAcrossShards) {
  const CampaignRun serial = run_with("(({a, b, c}, &) << s, false)", 1, 0, false);
  // Every valid phase and every killed mutant ran a monitor, so the
  // aggregated accounting must have seen more events than the stimuli
  // alone and a sane worst case.
  EXPECT_GT(serial.result.monitor_stats.events, serial.result.events);
  EXPECT_GT(serial.result.monitor_stats.ops, 0u);
  EXPECT_GT(serial.result.monitor_stats.max_ops_per_event, 0u);
}

}  // namespace
}  // namespace loom::abv

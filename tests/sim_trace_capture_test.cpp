// Kernel-level trace capture: buffered events, sink fan-out, scheduler
// time stamping, and the buffering toggle.
#include <gtest/gtest.h>

#include <vector>

#include "sim/scheduler.hpp"
#include "sim/trace_capture.hpp"

namespace loom::sim {
namespace {

TEST(TraceCapture, BuffersExplicitlyStampedEvents) {
  TraceCapture capture;
  capture.capture(3, Time::ns(5));
  capture.capture(1, Time::ns(5));
  capture.capture(2, Time::us(1));

  const std::vector<TraceCapture::Captured> expected = {
      {3, Time::ns(5)}, {1, Time::ns(5)}, {2, Time::us(1)}};
  EXPECT_EQ(capture.events(), expected);
  EXPECT_EQ(capture.captured_count(), 3u);

  capture.clear();
  EXPECT_TRUE(capture.events().empty());
  EXPECT_EQ(capture.captured_count(), 3u) << "clear keeps the running count";
}

TEST(TraceCapture, StampsWithTheSchedulersCurrentTime) {
  Scheduler scheduler;
  TraceCapture capture(scheduler);
  scheduler.schedule_at(Time::ns(10), [&] { capture.capture(1); });
  scheduler.schedule_at(Time::ns(30), [&] { capture.capture(2); });
  scheduler.schedule_at(Time::ns(30), [&] { capture.capture(3); });
  scheduler.run();

  const std::vector<TraceCapture::Captured> expected = {
      {1, Time::ns(10)}, {2, Time::ns(30)}, {3, Time::ns(30)}};
  EXPECT_EQ(capture.events(), expected);
}

TEST(TraceCapture, FansOutToEverySink) {
  TraceCapture capture;
  std::vector<TraceCapture::Captured> first, second;
  capture.add_sink([&](TraceCapture::Id id, Time t) {
    first.push_back({id, t});
  });
  capture.capture(1, Time::ns(1));
  // A sink added later sees only subsequent events.
  capture.add_sink([&](TraceCapture::Id id, Time t) {
    second.push_back({id, t});
  });
  capture.capture(2, Time::ns(2));

  ASSERT_EQ(first.size(), 2u);
  ASSERT_EQ(second.size(), 1u);
  EXPECT_EQ(second[0], (TraceCapture::Captured{2, Time::ns(2)}));
  EXPECT_EQ(capture.events().size(), 2u);
}

TEST(TraceCapture, BufferingOffKeepsSinksAndCountWorking) {
  TraceCapture capture;
  capture.set_buffering(false);
  std::size_t sunk = 0;
  capture.add_sink([&](TraceCapture::Id, Time) { ++sunk; });
  capture.capture(1, Time::ns(1));
  capture.capture(2, Time::ns(2));

  EXPECT_TRUE(capture.events().empty());
  EXPECT_EQ(sunk, 2u);
  EXPECT_EQ(capture.captured_count(), 2u);
}

}  // namespace
}  // namespace loom::sim

// Exhaustive small-model checking (our replacement for the paper's SPOT
// validation): for small alphabets, enumerate EVERY trace up to a length
// bound and require
//   - Drct monitor verdict == declarative reference verdict (exact), and
//   - ViaPSL soundness: no false alarms, agreement on accepted traces.
// Unlike the randomized suites, these sweeps cover every corner the bound
// allows — thousands of traces per property.
#include <gtest/gtest.h>

#include "psl/clause_monitor.hpp"
#include "testing.hpp"

namespace loom::mon {
namespace {

/// Calls fn(trace) for every trace over `names` with length <= max_len.
/// Events are spaced 10 ns apart.
template <typename Fn>
void for_all_traces(const std::vector<spec::Name>& names,
                    std::size_t max_len, Fn&& fn) {
  std::vector<std::size_t> digits;
  spec::Trace trace;
  for (std::size_t len = 0; len <= max_len; ++len) {
    digits.assign(len, 0);
    for (;;) {
      trace.clear();
      for (std::size_t k = 0; k < len; ++k) {
        trace.push_back({names[digits[k]], sim::Time::ns(10 * (k + 1))});
      }
      fn(trace);
      // Next combination (odometer).
      std::size_t pos = 0;
      while (pos < len && ++digits[pos] == names.size()) {
        digits[pos] = 0;
        ++pos;
      }
      if (pos == len) break;
      if (len == 0) break;
    }
    if (len == 0) continue;
  }
}

std::string render(const spec::Trace& t, const spec::Alphabet& ab) {
  std::string out;
  for (const auto& ev : t) out += ab.text(ev.name) + " ";
  return out;
}

class ExhaustiveAntecedent : public ::testing::TestWithParam<const char*> {};

TEST_P(ExhaustiveAntecedent, DrctEqualsReferenceOnAllTraces) {
  spec::Alphabet ab;
  auto p = loom::testing::parse(GetParam(), ab);
  std::vector<spec::Name> names;
  p.alphabet().for_each(
      [&](std::size_t id) { names.push_back(static_cast<spec::Name>(id)); });
  const std::size_t max_len = names.size() <= 3 ? 7 : 5;

  std::size_t checked = 0;
  for_all_traces(names, max_len, [&](const spec::Trace& t) {
    ++checked;
    const auto ref = spec::reference_check(p.antecedent(), t);
    AntecedentMonitor m(p.antecedent());
    loom::testing::run_monitor(m, t);
    ASSERT_EQ(loom::testing::as_ref(m.verdict()), ref.verdict)
        << GetParam() << " on [" << render(t, ab) << "] ref=" << ref.reason;
    if (ref.rejected() && m.violation().has_value()) {
      ASSERT_EQ(m.violation()->event_ordinal, ref.error_index)
          << GetParam() << " on [" << render(t, ab) << "]";
    }
  });
  EXPECT_GT(checked, 100u);
}

INSTANTIATE_TEST_SUITE_P(
    Patterns, ExhaustiveAntecedent,
    ::testing::Values("(a << i, true)",                //
                      "(a << i, false)",               //
                      "(a[2,3] << i, true)",           //
                      "(({a, b}, &) << i, true)",      //
                      "(({a, b}, |) << i, true)",      //
                      "(({a, b}, |) << i, false)",     //
                      "(a < b << i, true)",            //
                      "(a[1,2] < b << i, true)",       //
                      "(({a, b}, &) < c << i, true)",  //
                      "(a < ({b, c}, |) << i, false)"));

class ExhaustivePslSoundness : public ::testing::TestWithParam<const char*> {
};

TEST_P(ExhaustivePslSoundness, NoFalseAlarmsAcceptedAgreement) {
  spec::Alphabet ab;
  auto p = loom::testing::parse(GetParam(), ab);
  std::vector<spec::Name> names;
  p.alphabet().for_each(
      [&](std::size_t id) { names.push_back(static_cast<spec::Name>(id)); });
  const psl::Encoding enc = psl::encode(p);

  for_all_traces(names, 6, [&](const spec::Trace& t) {
    const auto ref = spec::reference_check(p.antecedent(), t);
    psl::ClauseMonitor m(enc);
    loom::testing::run_monitor(m, t);
    const auto psl_verdict = loom::testing::as_ref(m.verdict());
    if (psl_verdict == spec::RefVerdict::Rejected) {
      ASSERT_EQ(ref.verdict, spec::RefVerdict::Rejected)
          << GetParam() << " false alarm on [" << render(t, ab) << "]: "
          << (m.violation() ? m.violation()->reason : "");
    }
    if (ref.verdict == spec::RefVerdict::Accepted) {
      ASSERT_EQ(psl_verdict, spec::RefVerdict::Accepted)
          << GetParam() << " on [" << render(t, ab) << "]";
    }
  });
}

INSTANTIATE_TEST_SUITE_P(
    Patterns, ExhaustivePslSoundness,
    ::testing::Values("(a << i, true)",             //
                      "(a << i, false)",            //
                      "(a[2,3] << i, true)",        //
                      "(({a, b}, &) << i, true)",   //
                      "(({a, b}, |) << i, true)",   //
                      "(a < b << i, true)"));

class ExhaustiveTimed : public ::testing::TestWithParam<const char*> {};

TEST_P(ExhaustiveTimed, DrctEqualsReferenceOnAllTraces) {
  spec::Alphabet ab;
  auto p = loom::testing::parse(GetParam(), ab);
  std::vector<spec::Name> names;
  p.alphabet().for_each(
      [&](std::size_t id) { names.push_back(static_cast<spec::Name>(id)); });

  std::size_t checked = 0;
  for_all_traces(names, 6, [&](const spec::Trace& t) {
    // Two end-of-observation points: right at the last event, and long
    // after (forcing deadline checks at finish()).
    const sim::Time last = t.empty() ? sim::Time::zero() : t.back().time;
    for (const sim::Time end : {last, last + sim::Time::us(1)}) {
      ++checked;
      const auto ref = spec::reference_check(p.timed(), t, end);
      TimedImplicationMonitor m(p.timed());
      loom::testing::run_monitor(m, t, end);
      ASSERT_EQ(loom::testing::as_ref(m.verdict()), ref.verdict)
          << GetParam() << " on [" << render(t, ab)
          << "] end=" << end.to_string() << " ref=" << ref.reason
          << (m.violation() ? "\nmon=" + m.violation()->reason : "");
    }
  });
  EXPECT_GT(checked, 100u);
}

INSTANTIATE_TEST_SUITE_P(
    Patterns, ExhaustiveTimed,
    ::testing::Values(
        // Bound 35 ns with 10 ns spacing: deadlines bite mid-trace.
        "(a => b, 35ns)",            //
        "(a => b, 1us)",             //
        "(a => b[1,2], 35ns)",       //
        "(a[1,2] => b, 45ns)",       //
        "(a => b < c, 55ns)",        //
        "(a < b => c, 55ns)"));

}  // namespace
}  // namespace loom::mon

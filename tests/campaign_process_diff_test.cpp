// Differential lockdown of cross-process shard workers — the sixth engine
// invariant: a campaign whose shards run in forked worker subprocesses,
// with every partial result crossing a pipe in the versioned wire format,
// must be byte-for-byte identical to the in-process engine — for every
// backend, at every thread count, at every worker count, under the
// performance knobs.  Plus lockdowns of the documented exception (the
// trace-cache split becomes per-process but stays scheduling-independent)
// and of the instance accounting, which being a pure function of the
// shard layout must survive the process boundary exactly.
#include <gtest/gtest.h>

#include <string>

#include "abv/campaign.hpp"
#include "testing.hpp"

namespace loom::abv {
namespace {

constexpr mon::Backend kBackends[] = {
    mon::Backend::Auto, mon::Backend::Drct, mon::Backend::ViaPSL,
    mon::Backend::Vm};

struct CampaignRun {
  CampaignResult result;
  std::string report;
};

struct Knobs {
  bool compiled = true;
  bool reuse_traces = true;
  bool batch_replay = true;
  bool incremental = true;
};

CampaignRun run_with(const char* source, mon::Backend backend,
                     std::size_t workers, std::size_t threads,
                     const Knobs& knobs, std::size_t shard_size = 1,
                     bool viapsl = false) {
  // A fresh alphabet per run: runs must not influence each other through
  // interned ids.
  spec::Alphabet ab;
  auto p = loom::testing::parse(source, ab);
  CampaignOptions opt;
  opt.seeds = 4;
  opt.stimuli.rounds = 4;
  opt.stimuli.noise_permille = 100;
  opt.mutants_per_kind = 6;
  opt.check_viapsl = viapsl;
  opt.backend = backend;
  loom::testing::scalar_lanes_if_forced(opt);
  opt.use_compiled_plans = knobs.compiled;
  opt.threads = threads;
  opt.shard_size = shard_size;
  opt.reuse_traces = knobs.reuse_traces;
  opt.incremental_replay = knobs.incremental;
  opt.batch_replay = knobs.batch_replay;
  opt.workers = workers;  // 0: in-process; N: forked worker subprocesses
  const CampaignResult r = run_campaign(p, ab, opt);
  return {r, r.report(ab)};
}

class CampaignProcessDiff : public ::testing::TestWithParam<const char*> {};

TEST_P(CampaignProcessDiff, CrossProcessEqualsInProcessByteForByte) {
  // The sixth engine invariant across the full grid: the in-process run is
  // computed once per (backend, knobs) and every cross-process variant —
  // any worker count, any thread count per worker — must match it byte
  // for byte, report text included.
  const Knobs knob_grid[] = {
      {true, true, true, true},    // the default engine
      {true, true, false, false},  // per-event stepping, full replay
      {false, true, true, true},   // legacy translate-per-unit baseline
  };
  for (const mon::Backend backend : kBackends) {
    for (const Knobs& knobs : knob_grid) {
      const CampaignRun in_process =
          run_with(GetParam(), backend, /*workers=*/0, /*threads=*/1, knobs);
      for (const std::size_t workers : {std::size_t{1}, std::size_t{2},
                                        std::size_t{3}}) {
        for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
          const CampaignRun cross =
              run_with(GetParam(), backend, workers, threads, knobs);
          const std::string what =
              std::string("backend=") + to_string(backend) +
              " workers=" + std::to_string(workers) +
              " threads=" + std::to_string(threads) +
              " compiled=" + std::to_string(knobs.compiled) +
              " batch=" + std::to_string(knobs.batch_replay) +
              " incremental=" + std::to_string(knobs.incremental);
          EXPECT_TRUE(loom::testing::results_identical(cross.result,
                                                       in_process.result))
              << what;
          EXPECT_EQ(cross.report, in_process.report) << what;
          // The instance accounting is a pure function of the shard
          // layout, which both sides share — the process boundary must
          // not show up in it.
          EXPECT_EQ(cross.result.compile_stats.instances_stamped,
                    in_process.result.compile_stats.instances_stamped)
              << what;
          EXPECT_EQ(cross.result.compile_stats.instance_reuses,
                    in_process.result.compile_stats.instance_reuses)
              << what;
          EXPECT_EQ(cross.result.checkpoint_hits,
                    in_process.result.checkpoint_hits)
              << what;
          EXPECT_EQ(cross.result.events_skipped,
                    in_process.result.events_skipped)
              << what;
        }
      }
    }
  }
}

TEST_P(CampaignProcessDiff, ShardSizeStaysResultNeutralAcrossProcesses) {
  const CampaignRun in_process = run_with(GetParam(), mon::Backend::Auto,
                                          /*workers=*/0, /*threads=*/1,
                                          Knobs{}, /*shard_size=*/6);
  for (const std::size_t shard_size : {std::size_t{1}, std::size_t{3},
                                       std::size_t{100}}) {
    const CampaignRun cross = run_with(GetParam(), mon::Backend::Auto,
                                       /*workers=*/2, /*threads=*/2, Knobs{},
                                       shard_size);
    EXPECT_TRUE(
        loom::testing::results_identical(cross.result, in_process.result))
        << "shard_size=" << shard_size;
    EXPECT_EQ(cross.report, in_process.report)
        << "shard_size=" << shard_size;
  }
}

TEST_P(CampaignProcessDiff, ViaPslCrossCheckSurvivesTheProcessBoundary) {
  // check_viapsl runs a second monitor per valid unit inside each worker;
  // its false-alarm accounting must merge across the pipe like everything
  // else.
  const CampaignRun in_process = run_with(GetParam(), mon::Backend::Drct,
                                          /*workers=*/0, /*threads=*/1,
                                          Knobs{}, /*shard_size=*/6,
                                          /*viapsl=*/true);
  const CampaignRun cross = run_with(GetParam(), mon::Backend::Drct,
                                     /*workers=*/2, /*threads=*/1, Knobs{},
                                     /*shard_size=*/6, /*viapsl=*/true);
  EXPECT_TRUE(
      loom::testing::results_identical(cross.result, in_process.result));
  EXPECT_EQ(cross.report, in_process.report);
}

TEST_P(CampaignProcessDiff, TraceCacheSplitIsPerProcessButDeterministic) {
  // The one documented diagnostic difference: each worker process owns its
  // trace cache, so a seed whose units land on two workers misses once per
  // worker.  The split still must be a pure function of the campaign
  // parameters — repeating the identical cross-process run reproduces it
  // counter for counter — and the semantic bytes never see it.
  const CampaignRun a = run_with(GetParam(), mon::Backend::Auto,
                                 /*workers=*/2, /*threads=*/2, Knobs{});
  const CampaignRun b = run_with(GetParam(), mon::Backend::Auto,
                                 /*workers=*/2, /*threads=*/2, Knobs{});
  EXPECT_EQ(a.result.trace_cache_hits, b.result.trace_cache_hits);
  EXPECT_EQ(a.result.trace_cache_misses, b.result.trace_cache_misses);
  EXPECT_TRUE(loom::testing::results_identical(a.result, b.result));
  EXPECT_EQ(a.report, b.report);
  // Every unit either hit or missed: the split covers all six units per
  // seed no matter how they were scattered across processes.
  EXPECT_EQ(a.result.trace_cache_hits + a.result.trace_cache_misses,
            6 * 4u);  // kSlotsPerSeed × seeds
}

TEST_P(CampaignProcessDiff, MoreWorkersThanShardsClampsCleanly) {
  // 24 units in one shard each at shard_size=100 → one shard total; asking
  // for 8 workers must clamp to the shard count, not spawn idle workers or
  // fail.
  const CampaignRun in_process = run_with(GetParam(), mon::Backend::Auto,
                                          /*workers=*/0, /*threads=*/1,
                                          Knobs{}, /*shard_size=*/100);
  const CampaignRun cross = run_with(GetParam(), mon::Backend::Auto,
                                     /*workers=*/8, /*threads=*/1, Knobs{},
                                     /*shard_size=*/100);
  EXPECT_TRUE(
      loom::testing::results_identical(cross.result, in_process.result));
  EXPECT_EQ(cross.report, in_process.report);
}

INSTANTIATE_TEST_SUITE_P(
    Properties, CampaignProcessDiff,
    ::testing::Values("(n << i, true)",                               //
                      "(({a, b, c}, &) << s, false)",                 //
                      "(({n1, n2}, &) < ({n3[2,8], n4}, |) < n5 << i, true)",
                      "(p[2,3] => q[1,4] < r, 10us)"));

}  // namespace
}  // namespace loom::abv

// Monitor snapshot/restore contract: restoring a snapshot reproduces the
// state at snapshot time bit for bit — continuing observation afterwards is
// indistinguishable from an uninterrupted run (verdict, violation report,
// Figure-6 stats, space accounting) — over fuzzed traces, for every monitor
// kind (Drct antecedent repeated and not, Drct timed, ViaPSL clause
// network) and for instances stamped from a mon::CompiledProperty.  The
// checkpointed campaign engine leans on this: a mutant replayed from a
// restored checkpoint must be byte-identical to a full replay.
#include <gtest/gtest.h>

#include <functional>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "mon/compiled.hpp"
#include "mon/monitors.hpp"
#include "mon/snapshot.hpp"
#include "psl/clause_monitor.hpp"
#include "support/rng.hpp"
#include "testing.hpp"
#include "wire/payload.hpp"
#include "wire/wire.hpp"

namespace loom::mon {
namespace {

using MonitorFactory = std::function<std::unique_ptr<Monitor>()>;

// A fuzzed trace: events drawn from the property's names plus two noise
// names, at strictly increasing times with jittered gaps.  Deterministic —
// the Rng is seeded per trial.
spec::Trace fuzz_trace(const std::vector<spec::Name>& names,
                       support::Rng& rng, sim::Time start = sim::Time()) {
  spec::Trace t;
  const std::size_t len = rng.below(40);
  sim::Time now = start;
  for (std::size_t i = 0; i < len; ++i) {
    now += sim::Time::ns(1 + rng.below(2000));
    t.push_back({names[rng.below(names.size())], now});
  }
  return t;
}

void feed(Monitor& m, const spec::Trace& t, std::size_t begin,
          std::size_t end) {
  for (std::size_t i = begin; i < end; ++i) {
    m.observe(t[i].name, t[i].time);
  }
}

void expect_same_outcome(Monitor& a, Monitor& b, const std::string& what) {
  EXPECT_EQ(a.verdict(), b.verdict()) << what;
  ASSERT_EQ(a.violation().has_value(), b.violation().has_value()) << what;
  if (a.violation() && b.violation()) {
    EXPECT_EQ(a.violation()->event_ordinal, b.violation()->event_ordinal)
        << what;
    EXPECT_EQ(a.violation()->time, b.violation()->time) << what;
    EXPECT_EQ(a.violation()->name, b.violation()->name) << what;
    EXPECT_EQ(a.violation()->reason, b.violation()->reason) << what;
  }
  EXPECT_EQ(a.stats().ops, b.stats().ops) << what;
  EXPECT_EQ(a.stats().events, b.stats().events) << what;
  EXPECT_EQ(a.stats().max_ops_per_event, b.stats().max_ops_per_event) << what;
  EXPECT_EQ(a.space_bits(), b.space_bits()) << what;
}

// For every trial: run one uninterrupted reference instance over the whole
// trace.  Then replay the same trace through a second instance that, at a
// random cut point, snapshots, observes a junk detour (fresh events that
// would corrupt any state the restore failed to roll back — retirements,
// armed obligations, half-open lexer blocks), restores, and continues.  A
// third instance never sees the prefix at all: it restores the snapshot
// cold and replays only the suffix — exactly the campaign's checkpointed
// mutant replay.  All three must agree byte for byte.
void check_snapshot_restore(const MonitorFactory& make,
                            const std::vector<spec::Name>& names,
                            const char* label) {
  Snapshot snap;  // one reused buffer across all trials (capacity pool)
  for (std::uint64_t trial = 0; trial < 60; ++trial) {
    support::Rng rng = support::Rng::stream(0x5EED + trial, 11);
    const spec::Trace trace = fuzz_trace(names, rng);
    const std::size_t cut = trace.empty() ? 0 : rng.below(trace.size() + 1);
    const sim::Time end =
        trace.empty() ? sim::Time::zero() : trace.back().time;
    const std::string what =
        std::string(label) + " trial " + std::to_string(trial) + " cut " +
        std::to_string(cut) + "/" + std::to_string(trace.size());

    auto reference = make();
    feed(*reference, trace, 0, trace.size());
    reference->finish(end);

    auto interrupted = make();
    feed(*interrupted, trace, 0, cut);
    interrupted->snapshot(snap);
    // Junk detour: late-timestamped fuzz the restore must fully erase.
    const spec::Trace junk =
        fuzz_trace(names, rng, end + sim::Time::us(1));
    feed(*interrupted, junk, 0, junk.size());
    interrupted->restore(snap);
    feed(*interrupted, trace, cut, trace.size());
    interrupted->finish(end);
    expect_same_outcome(*reference, *interrupted, what + " [round-trip]");

    auto cold = make();
    cold->restore(snap);
    feed(*cold, trace, cut, trace.size());
    cold->finish(end);
    expect_same_outcome(*reference, *cold, what + " [cold restore]");
  }
}

struct Case {
  const char* label;
  const char* source;
};

constexpr Case kCases[] = {
    {"antecedent-repeated", "(n << i, true)"},
    {"antecedent-retiring", "(({a, b, c}, &) << s, false)"},
    {"antecedent-ranged",
     "(({n1, n2}, &) < ({n3[2,8], n4}, |) < n5 << i, true)"},
    {"timed", "(p[2,3] => q[1,4] < r, 10us)"},
};

std::vector<spec::Name> names_of(const spec::Property& p, spec::Alphabet& ab) {
  std::vector<spec::Name> names;
  p.alphabet().for_each(
      [&](std::size_t n) { names.push_back(static_cast<spec::Name>(n)); });
  names.push_back(ab.name("noise_x"));
  names.push_back(ab.name("noise_y"));
  return names;
}

TEST(MonSnapshot, DrctMonitorsRoundTripAtRandomCuts) {
  for (const auto& c : kCases) {
    spec::Alphabet ab;
    const spec::Property p = loom::testing::parse(c.source, ab);
    const auto names = names_of(p, ab);
    check_snapshot_restore([&] { return make_monitor(p); }, names, c.label);
  }
}

TEST(MonSnapshot, ViaPslMonitorsRoundTripAtRandomCuts) {
  for (const auto& c : kCases) {
    spec::Alphabet ab;
    const spec::Property p = loom::testing::parse(c.source, ab);
    const auto names = names_of(p, ab);
    const auto encoding =
        std::make_shared<const psl::Encoding>(psl::encode(p, 2000000, &ab));
    check_snapshot_restore(
        [&] { return std::make_unique<psl::ClauseMonitor>(encoding); }, names,
        c.label);
  }
}

TEST(MonSnapshot, CompiledInstancesRoundTripAtRandomCuts) {
  // The campaign's checkpoint ladders restore into instances stamped from
  // shared translate-once artifacts; the contract must hold there exactly
  // as for stand-alone construction, on both backends.
  for (const auto& c : kCases) {
    spec::Alphabet ab;
    const spec::Property p = loom::testing::parse(c.source, ab);
    const auto names = names_of(p, ab);
    CompileOptions opt;
    opt.with_viapsl_artifact = true;
    const CompiledProperty compiled = CompiledProperty::compile(p, ab, opt);
    check_snapshot_restore([&] { return compiled.instantiate(Backend::Drct); },
                           names, c.label);
    check_snapshot_restore(
        [&] { return compiled.instantiate(Backend::ViaPSL); }, names,
        c.label);
    // The bytecode VM frame: compiled separately because the program is
    // only materialized when the compile targets Backend::Vm.
    CompileOptions vm_opt;
    vm_opt.backend = Backend::Vm;
    const CompiledProperty vm = CompiledProperty::compile(p, ab, vm_opt);
    check_snapshot_restore([&] { return vm.instantiate(Backend::Vm); }, names,
                           c.label);
  }
}

TEST(MonSnapshot, VmRestoreCrossesInstancesOfTheSameProgram) {
  // The lane-batched campaign shape: a snapshot written by one VM frame
  // restores into a different, dirty frame stamped from the same program.
  spec::Alphabet ab;
  const spec::Property p = loom::testing::parse(
      "(({n1, n2}, &) < ({n3[2,8], n4}, |) < n5 << i, true)", ab);
  const auto names = names_of(p, ab);
  CompileOptions opt;
  opt.backend = Backend::Vm;
  const CompiledProperty compiled = CompiledProperty::compile(p, ab, opt);

  support::Rng rng = support::Rng::stream(101, 3);
  const spec::Trace trace = fuzz_trace(names, rng);
  const sim::Time end = trace.empty() ? sim::Time::zero() : trace.back().time;
  const std::size_t cut = trace.size() / 2;

  auto reference = compiled.instantiate();
  feed(*reference, trace, 0, trace.size());
  reference->finish(end);

  auto writer = compiled.instantiate();
  feed(*writer, trace, 0, cut);
  Snapshot snap;
  writer->snapshot(snap);
  writer.reset();

  auto pooled = compiled.instantiate();
  feed(*pooled, trace, 0, trace.size());  // dirty from unrelated work
  pooled->restore(snap);
  feed(*pooled, trace, cut, trace.size());
  pooled->finish(end);
  expect_same_outcome(*reference, *pooled, "vm cross-instance restore");
}

TEST(MonSnapshot, RestoreCrossesInstancesOfTheSamePlan) {
  // A snapshot written by one instance restores into a *different* pooled
  // instance of the same plan — the exact shape of the campaign engine,
  // where the ladder-building monitor dies long before the mutation units'
  // pooled monitors restore its checkpoints.
  spec::Alphabet ab;
  const spec::Property p = loom::testing::parse(
      "(({n1, n2}, &) < ({n3[2,8], n4}, |) < n5 << i, true)", ab);
  const auto names = names_of(p, ab);
  const CompiledProperty compiled = CompiledProperty::compile(p, ab);

  support::Rng rng = support::Rng::stream(99, 3);
  const spec::Trace trace = fuzz_trace(names, rng);
  const sim::Time end = trace.empty() ? sim::Time::zero() : trace.back().time;
  const std::size_t cut = trace.size() / 2;

  auto reference = compiled.instantiate();
  feed(*reference, trace, 0, trace.size());
  reference->finish(end);

  auto writer = compiled.instantiate();
  feed(*writer, trace, 0, cut);
  Snapshot snap;
  writer->snapshot(snap);
  writer.reset();  // the writer is gone before anyone restores

  auto pooled = compiled.instantiate();
  feed(*pooled, trace, 0, trace.size());  // dirty from unrelated work
  pooled->restore(snap);
  feed(*pooled, trace, cut, trace.size());
  pooled->finish(end);
  expect_same_outcome(*reference, *pooled, "cross-instance restore");
}

TEST(MonSnapshot, RestoreRejectsAForeignMonitorKind) {
  spec::Alphabet ab;
  const spec::Property ante = loom::testing::parse("(n << i, true)", ab);
  const spec::Property timed =
      loom::testing::parse("(p[2,3] => q[1,4] < r, 10us)", ab);

  auto a = make_monitor(ante);
  auto t = make_monitor(timed);
  Snapshot snap;
  a->snapshot(snap);
  EXPECT_THROW(t->restore(snap), std::logic_error);

  auto viapsl = std::make_unique<psl::ClauseMonitor>(psl::encode(ante));
  EXPECT_THROW(viapsl->restore(snap), std::logic_error);

  // The VM frame rejects every foreign format tag, and its own snapshots
  // are rejected right back by the Drct monitors.
  CompileOptions vm_opt;
  vm_opt.backend = Backend::Vm;
  const CompiledProperty vm_ante = CompiledProperty::compile(ante, ab, vm_opt);
  auto vm = vm_ante.instantiate();
  EXPECT_THROW(vm->restore(snap), std::logic_error);  // ANTC into VMFR
  Snapshot vm_snap;
  vm->snapshot(vm_snap);
  EXPECT_THROW(a->restore(vm_snap), std::logic_error);  // VMFR into ANTC
  EXPECT_THROW(t->restore(vm_snap), std::logic_error);  // VMFR into TIMD

  // Same tag, different program shape: a timed chain's frame layout does
  // not match the antecedent program's, and restore must say so rather
  // than misread the words.
  const CompiledProperty vm_timed =
      CompiledProperty::compile(timed, ab, vm_opt);
  auto vt = vm_timed.instantiate();
  EXPECT_THROW(vt->restore(vm_snap), std::logic_error);
}

TEST(MonSnapshot, OneBufferServesManySnapshotsWithoutGrowth) {
  // clear() keeps capacity: after the first snapshot of each shape the
  // buffer re-snapshots with stable word counts — the pooled-buffer
  // property the per-seed checkpoint ladders rely on.
  spec::Alphabet ab;
  const spec::Property p = loom::testing::parse(
      "(({n1, n2}, &) < ({n3[2,8], n4}, |) < n5 << i, true)", ab);
  const auto names = names_of(p, ab);
  auto monitor = make_monitor(p);
  Snapshot snap;
  support::Rng rng = support::Rng::stream(7, 7);
  const spec::Trace trace = fuzz_trace(names, rng);

  monitor->snapshot(snap);
  const std::size_t fresh_words = snap.word_count();
  EXPECT_GT(fresh_words, 0u);
  for (const auto& ev : trace) {
    monitor->observe(ev.name, ev.time);
    monitor->snapshot(snap);
    // Same automaton, same word layout: reuse never changes the format.
    // (A present violation report appends its ordinal/time/name words; the
    // reason string lands in the reusable string pool.)
    const std::size_t expected =
        fresh_words + (monitor->violation().has_value() ? 3u : 0u);
    EXPECT_EQ(snap.word_count(), expected);
  }
}

TEST(MonSnapshot, VmFrameBufferReuseKeepsWordCountsStable) {
  // Same lockdown for the bytecode VM frame: its flat word layout is a
  // pure function of the program shape, so reusing one buffer across a
  // whole fuzzed run never changes the count except for the violation
  // report's three appended words.
  spec::Alphabet ab;
  const spec::Property p = loom::testing::parse(
      "(({n1, n2}, &) < ({n3[2,8], n4}, |) < n5 << i, true)", ab);
  const auto names = names_of(p, ab);
  CompileOptions opt;
  opt.backend = Backend::Vm;
  const CompiledProperty compiled = CompiledProperty::compile(p, ab, opt);
  auto monitor = compiled.instantiate();
  Snapshot snap;
  support::Rng rng = support::Rng::stream(8, 7);
  const spec::Trace trace = fuzz_trace(names, rng);

  monitor->snapshot(snap);
  const std::size_t fresh_words = snap.word_count();
  EXPECT_GT(fresh_words, 0u);
  for (const auto& ev : trace) {
    monitor->observe(ev.name, ev.time);
    monitor->snapshot(snap);
    const std::size_t expected =
        fresh_words + (monitor->violation().has_value() ? 3u : 0u);
    EXPECT_EQ(snap.word_count(), expected);
  }
}

TEST(MonSnapshot, RestoreRejectsAFutureFormatVersionByName) {
  // A snapshot whose tag word carries a future format version — same
  // monitor kind, newer layout — must be refused by every monitor kind's
  // restore() with a diagnostic naming both versions, not misread.  The
  // forgery flips only the version half of the tag word, so the rejection
  // is provably the version check, not the kind check.
  spec::Alphabet ab;
  const spec::Property ante = loom::testing::parse("(n << i, true)", ab);
  const spec::Property timed =
      loom::testing::parse("(p[2,3] => q[1,4] < r, 10us)", ab);
  CompileOptions vm_opt;
  vm_opt.backend = Backend::Vm;
  const CompiledProperty vm_ante = CompiledProperty::compile(ante, ab, vm_opt);
  const auto encoding = std::make_shared<const psl::Encoding>(
      psl::encode(ante, 2000000, &ab));

  struct Kind {
    const char* label;
    std::unique_ptr<Monitor> monitor;
  };
  Kind kinds[4] = {
      {"antecedent", make_monitor(ante)},
      {"timed", make_monitor(timed)},
      {"viapsl", std::make_unique<psl::ClauseMonitor>(encoding)},
      {"vm", vm_ante.instantiate()},
  };
  for (auto& kind : kinds) {
    Snapshot snap;
    kind.monitor->snapshot(snap);
    ASSERT_GT(snap.word_count(), 0u) << kind.label;
    const std::uint64_t tag = snap.words()[0];
    ASSERT_EQ(snapshot_tag_version(tag), kSnapshotVersion) << kind.label;
    snap.set_word(0, (std::uint64_t{kSnapshotVersion + 1} << 32) |
                         snapshot_tag_kind(tag));
    try {
      kind.monitor->restore(snap);
      FAIL() << kind.label << ": future-version snapshot was accepted";
    } catch (const std::logic_error& e) {
      const std::string what = e.what();
      EXPECT_NE(what.find("snapshot format version 2"), std::string::npos)
          << kind.label << ": " << what;
      EXPECT_NE(what.find("reads version 1"), std::string::npos)
          << kind.label << ": " << what;
    }
    // The same forged snapshot through the wire decoder: rejected with a
    // positioned diagnostic (the pipe-facing twin of the restore() throw),
    // so a future-version snapshot cannot even enter a parent process.
    wire::Encoder enc;
    wire::encode_snapshot(enc, snap);
    Snapshot decoded;
    wire::Decoder d(enc.bytes());
    EXPECT_FALSE(wire::decode_snapshot(d, decoded)) << kind.label;
    EXPECT_FALSE(d.ok()) << kind.label;
    EXPECT_NE(d.error().message.find("snapshot format version 2"),
              std::string::npos)
        << kind.label << ": " << d.error().to_string();
  }
}

TEST(MonSnapshot, WirePathReusesBuffersLikeTheInMemoryPath) {
  // The wire crossing must keep the snapshot pool discipline: one Encoder,
  // one decode-target Snapshot and one source buffer serve a whole fuzzed
  // run without the encoder's buffer growing past its warmed capacity and
  // with the decoded word counts tracking the in-memory counts exactly.
  spec::Alphabet ab;
  const spec::Property p = loom::testing::parse(
      "(({n1, n2}, &) < ({n3[2,8], n4}, |) < n5 << i, true)", ab);
  const auto names = names_of(p, ab);
  auto monitor = make_monitor(p);
  support::Rng rng = support::Rng::stream(9, 7);
  const spec::Trace trace = fuzz_trace(names, rng);

  Snapshot snap;
  Snapshot decoded;
  wire::Encoder enc;
  // Warm-up pass: replay the whole trace once so the encoder has seen the
  // largest snapshot shape this run produces (a violation report appends
  // three words plus its reason string).
  for (const auto& ev : trace) {
    monitor->observe(ev.name, ev.time);
    monitor->snapshot(snap);
    enc.clear();
    wire::encode_snapshot(enc, snap);
  }
  monitor->reset();
  const std::size_t warm_bytes = enc.bytes().capacity();
  auto cold = make_monitor(p);
  for (const auto& ev : trace) {
    monitor->observe(ev.name, ev.time);
    monitor->snapshot(snap);
    enc.clear();
    wire::encode_snapshot(enc, snap);
    EXPECT_LE(enc.bytes().capacity(), warm_bytes);
    wire::Decoder d(enc.bytes());
    ASSERT_TRUE(wire::decode_snapshot(d, decoded)) << d.error().to_string();
    EXPECT_TRUE(d.exhausted());
    EXPECT_EQ(decoded.word_count(), snap.word_count());
    EXPECT_EQ(decoded.string_count(), snap.string_count());
    // And the decoded copy is restorable: the wire is not just shuttling
    // bytes, it is shuttling working monitor state.
    cold->restore(decoded);
    expect_same_outcome(*monitor, *cold, "wire-path restore");
  }
}

}  // namespace
}  // namespace loom::mon

// End-to-end tests of the Drct timed-implication monitor, including the
// in-simulation watchdog binding (MonitorModule).
#include <gtest/gtest.h>

#include "testing.hpp"

namespace loom::mon {
namespace {

using loom::testing::as_ref;
using loom::testing::parse;
using loom::testing::run_monitor;
using loom::testing::timed_trace_of;

struct Case {
  const char* property;
  const char* trace;  // "name@ns" entries
  std::uint64_t end_ns;
  spec::RefVerdict expected;
};

class TimedDrct : public ::testing::TestWithParam<Case> {};

TEST_P(TimedDrct, MatchesExpectedVerdict) {
  spec::Alphabet ab;
  auto p = parse(GetParam().property, ab);
  TimedImplicationMonitor m(p.timed());
  auto t = timed_trace_of(GetParam().trace, ab);
  run_monitor(m, t, sim::Time::ns(GetParam().end_ns));
  EXPECT_EQ(as_ref(m.verdict()), GetParam().expected)
      << GetParam().property << " on [" << GetParam().trace << "] -> "
      << to_string(m.verdict())
      << (m.violation() ? "\n  " + m.violation()->to_string(ab) : "");
}

INSTANTIATE_TEST_SUITE_P(
    Basic, TimedDrct,
    ::testing::Values(
        Case{"(a => b, 100ns)", "a@10 b@50", 200, spec::RefVerdict::Accepted},
        Case{"(a => b, 100ns)", "a@10 b@110", 200,
             spec::RefVerdict::Accepted},
        Case{"(a => b, 100ns)", "a@10 b@111", 200,
             spec::RefVerdict::Rejected},
        Case{"(a => b, 100ns)", "a@10", 300, spec::RefVerdict::Rejected},
        Case{"(a => b, 100ns)", "a@10", 50, spec::RefVerdict::Pending},
        Case{"(a => b, 100ns)", "", 500, spec::RefVerdict::Accepted},
        Case{"(a => b, 100ns)", "a@10 b@20 a@30 b@40", 500,
             spec::RefVerdict::Accepted},
        Case{"(a => b, 100ns)", "a@10 b@20 a@30 b@200", 500,
             spec::RefVerdict::Rejected},
        Case{"(a => b, 100ns)", "b@10", 100, spec::RefVerdict::Rejected}));

INSTANTIATE_TEST_SUITE_P(
    Example3Shape, TimedDrct,
    ::testing::Values(
        Case{"(start => read_img[2,5] < set_irq, 1us)",
             "start@10 read_img@20 read_img@30 set_irq@40", 2000,
             spec::RefVerdict::Accepted},
        Case{"(start => read_img[2,5] < set_irq, 1us)",
             "start@10 read_img@20 set_irq@30", 2000,
             spec::RefVerdict::Rejected},
        Case{"(start => read_img[2,5] < set_irq, 1us)",
             "start@10 read_img@20 read_img@900 set_irq@1200", 2000,
             spec::RefVerdict::Rejected},
        Case{"(start => read_img[2,5] < set_irq, 1us)",
             "start@10 read_img@20 read_img@30 set_irq@40 start@50 "
             "read_img@60 read_img@70 set_irq@80",
             2000, spec::RefVerdict::Accepted},
        Case{"(start => read_img[2,5] < set_irq, 1us)",
             "start@10 set_irq@20", 2000, spec::RefVerdict::Rejected}));

INSTANTIATE_TEST_SUITE_P(
    MinComplete, TimedDrct,
    ::testing::Values(
        Case{"(a => b[2,4], 100ns)", "a@10 b@20 b@30", 500,
             spec::RefVerdict::Accepted},
        Case{"(a => b[2,4], 100ns)", "a@10 b@20 b@30 b@40 b@50", 500,
             spec::RefVerdict::Accepted},
        Case{"(a => b[2,4], 100ns)", "a@10 b@20", 500,
             spec::RefVerdict::Rejected},
        Case{"(a => b[2,4], 100ns)", "a@10 b@20 b@30 b@40 b@50 b@60", 500,
             spec::RefVerdict::Rejected},
        Case{"(a => b[2,4], 100ns)", "a@10 b@20 b@30 a@40 b@50 b@60", 500,
             spec::RefVerdict::Accepted},
        Case{"(p[2,3] => q, 100ns)", "p@10 p@50 q@140", 500,
             spec::RefVerdict::Accepted},
        Case{"(p[2,3] => q, 100ns)", "p@10 p@50 p@60 q@160", 500,
             spec::RefVerdict::Rejected}));

TEST(TimedMonitor, RoundsAreCounted) {
  spec::Alphabet ab;
  auto p = parse("(a => b, 100ns)", ab);
  TimedImplicationMonitor m(p.timed());
  auto t = timed_trace_of("a@10 b@20 a@30 b@40 a@50 b@60", ab);
  run_monitor(m, t, sim::Time::ns(500));
  // Rounds complete at the *restart* events (reset point is the end of Q):
  // two restarts happened (a@30, a@50); the last round is min-complete.
  EXPECT_EQ(m.completed_rounds(), 2u);
  EXPECT_EQ(m.verdict(), Verdict::Monitoring);
}

TEST(TimedMonitor, DeadlineExposedWhileArmed) {
  spec::Alphabet ab;
  auto p = parse("(a => b, 100ns)", ab);
  TimedImplicationMonitor m(p.timed());
  EXPECT_FALSE(m.deadline().has_value());
  m.observe(*ab.lookup("a"), sim::Time::ns(10));
  ASSERT_TRUE(m.deadline().has_value());
  EXPECT_EQ(*m.deadline(), sim::Time::ns(110));
  m.observe(*ab.lookup("b"), sim::Time::ns(50));
  EXPECT_FALSE(m.deadline().has_value());
}

TEST(TimedMonitor, PollDetectsOverdueObligation) {
  spec::Alphabet ab;
  auto p = parse("(a => b, 100ns)", ab);
  TimedImplicationMonitor m(p.timed());
  m.observe(*ab.lookup("a"), sim::Time::ns(10));
  m.poll(sim::Time::ns(110));
  EXPECT_EQ(m.verdict(), Verdict::Pending) << "deadline not yet passed";
  m.poll(sim::Time::ns(111));
  EXPECT_EQ(m.verdict(), Verdict::Violated);
  EXPECT_NE(m.violation()->reason.find("watchdog"), std::string::npos);
}

TEST(TimedMonitor, SpaceIncludesTheTwoTimeVariables) {
  spec::Alphabet ab;
  auto p = parse("(a => b, 100ns)", ab);
  TimedImplicationMonitor m(p.timed());
  EXPECT_GE(m.space_bits(), 2u * 64u);
}

TEST(TimedMonitor, HugeRangeDoesNotIncreasePerEventWork) {
  spec::Alphabet ab;
  auto small = parse("(a => b < c, 10us)", ab);
  auto huge = parse("(d => e[100,60K] < f, 10us)", ab);
  TimedImplicationMonitor m_small(small.timed());
  TimedImplicationMonitor m_huge(huge.timed());

  auto t_small = timed_trace_of("a@10 b@20 c@30 a@40 b@50 c@60", ab);
  run_monitor(m_small, t_small, sim::Time::us(1));

  spec::Trace t_huge;
  std::uint64_t ns = 10;
  t_huge.push_back({*ab.lookup("d"), sim::Time::ns(ns)});
  for (int k = 0; k < 150; ++k) {
    t_huge.push_back({*ab.lookup("e"), sim::Time::ns(ns += 10)});
  }
  t_huge.push_back({*ab.lookup("f"), sim::Time::ns(ns += 10)});
  run_monitor(m_huge, t_huge, sim::Time::us(9));

  EXPECT_EQ(m_huge.verdict(), Verdict::Monitoring);
  EXPECT_LE(m_huge.stats().max_ops_per_event,
            m_small.stats().max_ops_per_event + 4);
}

TEST(MonitorModule, WatchdogFiresAtDeadlineInSimulation) {
  sim::Scheduler sched;
  spec::Alphabet ab;
  auto p = parse("(a => b, 100ns)", ab);
  TimedImplicationMonitor m(p.timed());
  MonitorModule mod(sched, "monitor", m, ab);
  std::vector<std::string> reported;
  mod.on_violation(
      [&](const Violation& v) { reported.push_back(v.to_string(ab)); });

  struct Driver {
    static sim::Process run(sim::Scheduler& s, MonitorModule& mod,
                            spec::Name a) {
      co_await s.wait(sim::Time::ns(10));
      mod.observe(a);  // P observed; Q never follows
      co_await s.wait(sim::Time::ns(1000));
    }
  };
  sched.spawn(Driver::run(sched, mod, *ab.lookup("a")), "driver");
  sched.run();

  EXPECT_EQ(m.verdict(), Verdict::Violated);
  ASSERT_EQ(reported.size(), 1u);
  // Reported right after the deadline (110 ns), not at the end (1010 ns).
  EXPECT_EQ(m.violation()->time, sim::Time::ns(110) + sim::Time::ps(1));
}

TEST(MonitorModule, NoWatchdogFalsePositiveWhenQCompletes) {
  sim::Scheduler sched;
  spec::Alphabet ab;
  auto p = parse("(a => b, 100ns)", ab);
  TimedImplicationMonitor m(p.timed());
  MonitorModule mod(sched, "monitor", m, ab);
  int violations = 0;
  mod.on_violation([&](const Violation&) { ++violations; });

  struct Driver {
    static sim::Process run(sim::Scheduler& s, MonitorModule& mod,
                            spec::Name a, spec::Name b) {
      co_await s.wait(sim::Time::ns(10));
      mod.observe(a);
      co_await s.wait(sim::Time::ns(50));
      mod.observe(b);  // within the deadline
      co_await s.wait(sim::Time::ns(500));
    }
  };
  sched.spawn(Driver::run(sched, mod, *ab.lookup("a"), *ab.lookup("b")),
              "driver");
  sched.run();

  EXPECT_EQ(violations, 0);
  EXPECT_NE(m.verdict(), Verdict::Violated);
}

TEST(MonitorModule, AntecedentViolationReportedOnce) {
  sim::Scheduler sched;
  spec::Alphabet ab;
  auto p = parse("(n << i, true)", ab);
  AntecedentMonitor m(p.antecedent());
  MonitorModule mod(sched, "monitor", m, ab);
  int violations = 0;
  mod.on_violation([&](const Violation&) { ++violations; });
  struct Driver {
    static sim::Process run(sim::Scheduler& s, MonitorModule& mod,
                            spec::Name i) {
      co_await s.wait(sim::Time::ns(5));
      mod.observe(i);  // violation: trigger before P
      co_await s.wait(sim::Time::ns(5));
      mod.observe(i);  // already violated; must not re-report
    }
  };
  sched.spawn(Driver::run(sched, mod, *ab.lookup("i")), "driver");
  sched.run();
  EXPECT_EQ(violations, 1);
}

}  // namespace
}  // namespace loom::mon

// Golden tests for the recognition-context computation against the worked
// example of the paper's Fig. 4:
//
//   (({n1, n2}, &) < ({n3[2,8], n4}, |) < n5 << i, false)
//
//   for n3[2,8]:  s = ∨,  B = {n1, n2},  C = {n4},  Ac = {n5},  Af = {i}
#include <gtest/gtest.h>

#include "spec/attributes.hpp"
#include "spec/parser.hpp"

namespace loom::spec {
namespace {

class Figure4 : public ::testing::Test {
 protected:
  void SetUp() override {
    support::DiagnosticSink sink;
    auto p = parse_property(
        "(({n1, n2}, &) < ({n3[2,8], n4}, |) < n5 << i, false)", ab, sink);
    ASSERT_TRUE(p.has_value()) << sink.to_string();
    plan = plan_antecedent(p->antecedent());
    for (const char* n : {"n1", "n2", "n3", "n4", "n5", "i"}) {
      ids[n] = *ab.lookup(n);
    }
  }

  NameSet set(std::initializer_list<const char*> names) {
    NameSet s;
    for (const char* n : names) s.set(ids.at(n));
    return s;
  }

  const RangePlan& range_of(const char* name) {
    const Name id = ids.at(name);
    for (const auto& f : plan.fragments) {
      for (const auto& r : f.ranges) {
        if (r.name == id) return r;
      }
    }
    throw std::runtime_error("no such range");
  }

  Alphabet ab;
  OrderingPlan plan;
  std::map<std::string, Name> ids;
};

TEST_F(Figure4, StructureOfThePlan) {
  ASSERT_EQ(plan.fragments.size(), 3u);
  EXPECT_EQ(plan.fragments[0].ranges.size(), 2u);
  EXPECT_EQ(plan.fragments[1].ranges.size(), 2u);
  EXPECT_EQ(plan.fragments[2].ranges.size(), 1u);
  EXPECT_EQ(plan.terminal, set({"i"}));
  EXPECT_EQ(plan.chain_alphabet, set({"n1", "n2", "n3", "n4", "n5"}));
  EXPECT_EQ(plan.alphabet, set({"n1", "n2", "n3", "n4", "n5", "i"}));
  EXPECT_EQ(plan.max_hi, 8u);
  EXPECT_FALSE(plan.cyclic);
}

TEST_F(Figure4, ContextOfN3MatchesThePaper) {
  const RangePlan& n3 = range_of("n3");
  EXPECT_EQ(n3.lo, 2u);
  EXPECT_EQ(n3.hi, 8u);
  EXPECT_EQ(n3.parent_join, Join::Disj);       // s = ∨
  EXPECT_EQ(n3.before, set({"n1", "n2"}));     // B
  EXPECT_EQ(n3.siblings, set({"n4"}));         // C
  EXPECT_EQ(n3.accept, set({"n5"}));           // Ac
  EXPECT_EQ(n3.after, set({"i"}));             // Af
}

TEST_F(Figure4, ContextOfN1) {
  const RangePlan& n1 = range_of("n1");
  EXPECT_EQ(n1.parent_join, Join::Conj);
  EXPECT_TRUE(n1.before.empty());
  EXPECT_EQ(n1.siblings, set({"n2"}));
  EXPECT_EQ(n1.accept, set({"n3", "n4"}));
  EXPECT_EQ(n1.after, set({"n5", "i"}));
}

TEST_F(Figure4, ContextOfN5LastFragment) {
  const RangePlan& n5 = range_of("n5");
  EXPECT_EQ(n5.parent_join, Join::Conj);
  EXPECT_EQ(n5.before, set({"n1", "n2", "n3", "n4"}));
  EXPECT_TRUE(n5.siblings.empty());
  EXPECT_EQ(n5.accept, set({"i"}));  // the trigger stops the last fragment
  EXPECT_TRUE(n5.after.empty());
}

TEST_F(Figure4, FragmentAcceptSetsChain) {
  EXPECT_EQ(plan.fragments[0].accept, set({"n3", "n4"}));
  EXPECT_EQ(plan.fragments[1].accept, set({"n5"}));
  EXPECT_EQ(plan.fragments[2].accept, set({"i"}));
}

TEST(PlanTimed, ConcatenatesAndWrapsAround) {
  Alphabet ab;
  support::DiagnosticSink sink;
  auto p = parse_property("(a < b => c[2,4] < d, 100ns)", ab, sink);
  ASSERT_TRUE(p.has_value()) << sink.to_string();
  OrderingPlan plan = plan_timed(p->timed());

  ASSERT_EQ(plan.fragments.size(), 4u);
  EXPECT_TRUE(plan.cyclic);
  EXPECT_EQ(plan.p_boundary, 2u);
  EXPECT_TRUE(plan.terminal.empty());
  EXPECT_EQ(plan.max_hi, 4u);

  const Name a = *ab.lookup("a"), b = *ab.lookup("b"), c = *ab.lookup("c");
  // The chain a < b < c[2,4] < d restarts at {a}: the accept set of the
  // final fragment is the alphabet of the first one.
  NameSet first;
  first.set(a);
  EXPECT_EQ(plan.fragments[3].accept, first);
  // Middle accepts chain normally.
  NameSet bs;
  bs.set(b);
  EXPECT_EQ(plan.fragments[0].accept, bs);
  // B of the last fragment holds all earlier names.
  NameSet before_d;
  before_d.set(a);
  before_d.set(b);
  before_d.set(c);
  EXPECT_EQ(plan.fragments[3].ranges[0].before, before_d);
}

TEST(PlanAntecedent, SingleRangeSingleFragment) {
  Alphabet ab;
  support::DiagnosticSink sink;
  auto p = parse_property("(n << i, true)", ab, sink);
  ASSERT_TRUE(p.has_value());
  OrderingPlan plan = plan_antecedent(p->antecedent());
  ASSERT_EQ(plan.fragments.size(), 1u);
  const RangePlan& n = plan.fragments[0].ranges[0];
  EXPECT_TRUE(n.before.empty());
  EXPECT_TRUE(n.siblings.empty());
  EXPECT_TRUE(n.after.empty());
  NameSet i;
  i.set(*ab.lookup("i"));
  EXPECT_EQ(n.accept, i);
}

}  // namespace
}  // namespace loom::spec

// Unit tests for the work-stealing pool behind the parallel campaign
// engine: completion, exception propagation, bounded-queue saturation and
// shutdown draining.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <stdexcept>
#include <thread>
#include <vector>

#include "support/thread_pool.hpp"

namespace loom::support {
namespace {

TEST(ThreadPool, RunsEverySubmittedTask) {
  std::atomic<int> counter{0};
  ThreadPool pool(4);
  for (int i = 0; i < 1000; ++i) {
    pool.submit([&counter] { counter.fetch_add(1); });
  }
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 1000);
}

TEST(ThreadPool, ZeroThreadsIsPromotedToOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.thread_count(), 1u);
  std::atomic<bool> ran{false};
  pool.submit([&ran] { ran = true; });
  pool.wait_idle();
  EXPECT_TRUE(ran.load());
}

TEST(ThreadPool, ForEachIndexCoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(257);
  pool.for_each_index(hits.size(),
                      [&hits](std::size_t i) { hits[i].fetch_add(1); });
  for (std::size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPool, PropagatesTheFirstExceptionAndRecovers) {
  ThreadPool pool(2);
  std::atomic<int> survivors{0};
  for (int i = 0; i < 16; ++i) {
    pool.submit([&survivors, i] {
      if (i == 5) throw std::runtime_error("shard 5 exploded");
      survivors.fetch_add(1);
    });
  }
  EXPECT_THROW(pool.wait_idle(), std::runtime_error);
  // The failure does not poison the pool: later batches run and a clean
  // wait_idle() returns normally.
  EXPECT_EQ(survivors.load(), 15);
  pool.submit([&survivors] { survivors.fetch_add(1); });
  EXPECT_NO_THROW(pool.wait_idle());
  EXPECT_EQ(survivors.load(), 16);
}

TEST(ThreadPool, SaturationBlocksProducersWithoutLosingTasks) {
  // A queue bound far below the task count forces submit() into its
  // back-pressure path; every task must still run exactly once.
  std::atomic<int> counter{0};
  ThreadPool pool(3, /*queue_capacity=*/2);
  for (int i = 0; i < 200; ++i) {
    pool.submit([&counter] {
      std::this_thread::sleep_for(std::chrono::microseconds(50));
      counter.fetch_add(1);
    });
  }
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 200);
}

TEST(ThreadPool, DestructorDrainsPendingTasks) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 64; ++i) {
      pool.submit([&counter] {
        std::this_thread::sleep_for(std::chrono::microseconds(100));
        counter.fetch_add(1);
      });
    }
    // No wait_idle(): shutdown itself must finish the queue.
  }
  EXPECT_EQ(counter.load(), 64);
}

TEST(ThreadPool, ManyProducersOneConsumerPool) {
  // Cross-thread submission exercises the stealing path: producers enqueue
  // round-robin while a single worker drains everything.
  std::atomic<int> counter{0};
  ThreadPool pool(1);
  std::vector<std::thread> producers;
  for (int t = 0; t < 4; ++t) {
    producers.emplace_back([&pool, &counter] {
      for (int i = 0; i < 50; ++i) {
        pool.submit([&counter] { counter.fetch_add(1); });
      }
    });
  }
  for (auto& p : producers) p.join();
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 200);
}

}  // namespace
}  // namespace loom::support

// ABV-loop rates (google-benchmark): valid-stimuli generation, mutation
// injection, reference checking and full checker round trips — the paper's
// Fig. 1 flow, quantified.
#include <benchmark/benchmark.h>

#include "abv/checker.hpp"
#include "abv/mutate.hpp"
#include "abv/stimuli.hpp"
#include "mon/monitors.hpp"
#include "psl/clause_monitor.hpp"
#include "spec/parser.hpp"

namespace {

using namespace loom;

constexpr const char* kProperty =
    "(({n1, n2}, &) < ({n3[2,8], n4}, |) < n5 << i, true)";

spec::Property parse(spec::Alphabet& ab) {
  support::DiagnosticSink sink;
  auto p = spec::parse_property(kProperty, ab, sink);
  if (!p) throw std::runtime_error(sink.to_string());
  return *p;
}

void BM_ReferenceCheck(benchmark::State& state) {
  spec::Alphabet ab;
  auto property = parse(ab);
  support::Rng rng(3);
  abv::StimuliOptions opt;
  opt.rounds = static_cast<std::size_t>(state.range(0));
  const spec::Trace trace = abv::generate_valid(property, ab, rng, opt);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        spec::reference_check(property, trace, trace.back().time));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(trace.size()));
}
BENCHMARK(BM_ReferenceCheck)->Arg(16)->Arg(256);

void BM_MutateAndDetect(benchmark::State& state) {
  // One full negative-test round: mutate a valid trace, run the Drct
  // monitor, observe the verdict.
  spec::Alphabet ab;
  auto property = parse(ab);
  support::Rng rng(9);
  abv::StimuliOptions opt;
  opt.rounds = 16;
  const spec::Trace valid = abv::generate_valid(property, ab, rng, opt);
  const abv::MutationKind kinds[] = {
      abv::MutationKind::Drop, abv::MutationKind::Duplicate,
      abv::MutationKind::SwapAdjacent, abv::MutationKind::EarlyTrigger};
  std::size_t detected = 0, produced = 0;
  for (auto _ : state) {
    auto mutant = abv::mutate(valid, kinds[produced % 4], property, rng);
    ++produced;
    if (!mutant) continue;
    auto monitor = mon::make_monitor(property);
    for (const auto& ev : mutant->trace) monitor->observe(ev.name, ev.time);
    monitor->finish(mutant->trace.back().time);
    if (monitor->verdict() == mon::Verdict::Violated) ++detected;
    benchmark::DoNotOptimize(detected);
  }
  state.counters["detected_pct"] = produced == 0
      ? 0.0
      : 100.0 * static_cast<double>(detected) / static_cast<double>(produced);
}
BENCHMARK(BM_MutateAndDetect);

void BM_CheckerFanout(benchmark::State& state) {
  // Broadcast cost of one event into N mixed monitors.
  spec::Alphabet ab;
  auto property = parse(ab);
  const auto monitors = static_cast<std::size_t>(state.range(0));
  abv::Checker checker;
  for (std::size_t k = 0; k < monitors; ++k) {
    if (k % 2 == 0) {
      checker.add("drct" + std::to_string(k), mon::make_monitor(property));
    } else {
      checker.add("psl" + std::to_string(k),
                  std::make_unique<psl::ClauseMonitor>(psl::encode(property)));
    }
  }
  support::Rng rng(4);
  abv::StimuliOptions opt;
  opt.rounds = 8;
  const spec::Trace trace = abv::generate_valid(property, ab, rng, opt);
  for (auto _ : state) {
    for (std::size_t k = 0; k < checker.size(); ++k) {
      checker.monitor(k).reset();
    }
    checker.run(trace, trace.back().time);
    benchmark::DoNotOptimize(checker.all_passing());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(trace.size()));
}
BENCHMARK(BM_CheckerFanout)->Arg(1)->Arg(4)->Arg(16);

}  // namespace

BENCHMARK_MAIN();

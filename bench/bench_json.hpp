// Shared JSON emission for the benchmark binaries, so the hand-rolled
// mains (bench_scaling) speak the same --benchmark_format=json dialect as
// the google-benchmark binaries and tools/bench_record.py can normalize
// both with one code path into the tracked BENCH_*.json baselines.
//
// Only the subset of google-benchmark's JSON schema that bench_record.py
// consumes is emitted: a "context" object (num_cpus, executable) and a
// "benchmarks" array of {name, run_type, real_time, time_unit, label,
// <counter>: value} objects.  Counter names are part of the baseline
// schema — see CampaignResult::diagnostic_counters() — and must stay
// stable across PRs or the recorded perf trajectory is orphaned.
#pragma once

#include <cstdio>
#include <cstring>
#include <ostream>
#include <string>
#include <string_view>
#include <thread>
#include <utility>
#include <vector>

namespace loom::bench {

/// Guarded ratio for counter math: a zero denominator means "no such work
/// happened" and reports 0.0, never NaN — NaN is unorderable, so a
/// regression gate could not threshold it (and printf renders it "nan%").
inline double safe_ratio(double num, double den) {
  return den == 0.0 ? 0.0 : num / den;
}

/// True when argv asks for JSON output, using the exact spelling the
/// google-benchmark binaries accept, so one flag drives every binary.
inline bool json_format_requested(int argc, char** argv) {
  for (int k = 1; k < argc; ++k) {
    if (std::strcmp(argv[k], "--benchmark_format=json") == 0) return true;
  }
  return false;
}

inline std::string json_escape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// One benchmark entry: a stable name, wall time in nanoseconds, an
/// optional human label, and named counters (insertion order preserved).
struct JsonBenchmark {
  std::string name;
  double real_time_ns = 0.0;
  std::string label;
  std::vector<std::pair<std::string, double>> counters;
};

/// Accumulates entries and writes the google-benchmark-compatible JSON
/// document.  Times are always emitted in nanoseconds ("time_unit": "ns"),
/// matching what the google-benchmark binaries produce by default.
class JsonReport {
 public:
  explicit JsonReport(std::string executable)
      : executable_(std::move(executable)) {}

  void add(JsonBenchmark entry) { benchmarks_.push_back(std::move(entry)); }

  void write(std::ostream& os) const {
    char buf[64];
    const auto number = [&buf](double v) {
      std::snprintf(buf, sizeof buf, "%.17g", v);
      return std::string(buf);
    };
    os << "{\n  \"context\": {\n";
    os << "    \"executable\": \"" << json_escape(executable_) << "\",\n";
    os << "    \"num_cpus\": "
       << std::max(1u, std::thread::hardware_concurrency()) << "\n";
    os << "  },\n  \"benchmarks\": [\n";
    for (std::size_t i = 0; i < benchmarks_.size(); ++i) {
      const JsonBenchmark& b = benchmarks_[i];
      os << "    {\n";
      os << "      \"name\": \"" << json_escape(b.name) << "\",\n";
      os << "      \"run_type\": \"iteration\",\n";
      os << "      \"real_time\": " << number(b.real_time_ns) << ",\n";
      os << "      \"time_unit\": \"ns\"";
      if (!b.label.empty()) {
        os << ",\n      \"label\": \"" << json_escape(b.label) << "\"";
      }
      for (const auto& [name, value] : b.counters) {
        os << ",\n      \"" << json_escape(name) << "\": " << number(value);
      }
      os << "\n    }" << (i + 1 < benchmarks_.size() ? "," : "") << "\n";
    }
    os << "  ]\n}\n";
  }

 private:
  std::string executable_;
  std::vector<JsonBenchmark> benchmarks_;
};

}  // namespace loom::bench

// In-simulation monitoring overhead: the access-control platform simulated
// with 0, 1, 2 and 4 attached monitors (google-benchmark).  Supports the
// paper's motivation that Drct monitors are cheap enough to leave enabled
// during TLM simulation.
#include <benchmark/benchmark.h>

#include "mon/monitors.hpp"
#include "plat/platform.hpp"
#include "spec/parser.hpp"

namespace {

using namespace loom;

constexpr const char* kProperties[] = {
    "(({set_imgAddr, set_glAddr, set_glSize}, &) << start, false)",
    "(start => read_img[1,60000] < set_irq, 2ms)",
    "(({set_imgAddr, set_glAddr}, &) << start, true)",
    "(set_glSize << start, true)",
};

void BM_PlatformWithMonitors(benchmark::State& state) {
  const auto monitor_count = static_cast<std::size_t>(state.range(0));
  std::uint64_t events = 0;
  for (auto _ : state) {
    plat::PlatformConfig cfg;
    cfg.button_presses = 8;
    cfg.press_interval = sim::Time::us(200);
    plat::AccessControlPlatform platform(cfg);
    auto& ab = platform.alphabet();

    std::vector<std::unique_ptr<mon::Monitor>> monitors;
    std::vector<std::unique_ptr<mon::MonitorModule>> modules;
    for (std::size_t k = 0; k < monitor_count; ++k) {
      support::DiagnosticSink sink;
      auto p = spec::parse_property(kProperties[k], ab, sink);
      monitors.push_back(mon::make_monitor(*p));
      modules.push_back(std::make_unique<mon::MonitorModule>(
          platform.scheduler(), "monitor" + std::to_string(k),
          *monitors.back(), ab));
    }
    if (!modules.empty()) {
      platform.observer().add_sink([&](spec::Name n, sim::Time t) {
        for (auto& mod : modules) mod->observe(n, t);
      });
    }
    platform.run(sim::Time::ms(2));
    for (auto& mod : modules) mod->finish();
    events += platform.observer().events_observed();
    benchmark::DoNotOptimize(platform.cpu().rounds_completed());
  }
  state.SetLabel(std::to_string(monitor_count) + " monitors");
  state.counters["ifc_events"] =
      benchmark::Counter(static_cast<double>(events),
                         benchmark::Counter::kIsIterationInvariantRate);
}
BENCHMARK(BM_PlatformWithMonitors)->Arg(0)->Arg(1)->Arg(2)->Arg(4)
    ->Unit(benchmark::kMillisecond);

void BM_PlatformKernelOnly(benchmark::State& state) {
  // Raw kernel + TLM throughput without the access-control scenario: a
  // floor for interpreting the numbers above.
  for (auto _ : state) {
    plat::PlatformConfig cfg;
    cfg.button_presses = 0;
    plat::AccessControlPlatform platform(cfg);
    platform.run(sim::Time::ms(2));  // LCDC refresh traffic only
    benchmark::DoNotOptimize(platform.lcdc().frames());
  }
  state.SetLabel("LCDC refresh only");
}
BENCHMARK(BM_PlatformKernelOnly)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();

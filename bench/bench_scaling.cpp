// Scaling of the sharded campaign engine: the paper's Fig. 1 loop
// (stimuli → monitors → mutation → coverage) run serially and on a
// work-stealing pool with growing thread counts.  Prints events/second and
// speedup per thread count and verifies on the way that every parallel run
// is bit-identical to the serial baseline (the engine's core invariant —
// see tests/campaign_parallel_test.cpp for the exhaustive version).
//
//   $ ./bench_scaling [max_threads] [seeds] [auto|drct|viapsl|vm] [stride]
//                     [--benchmark_format=json]
//
// `stride` is the checkpoint spacing of the incremental (suffix-only)
// mutant replay, so the threads sweep exercises the checkpointed path at
// any granularity (the default engine setting is 32).
//
// With --benchmark_format=json (the google-benchmark spelling, shared via
// bench/bench_json.hpp) the human table goes to stderr and stdout carries
// a benchmark-compatible JSON document — one entry per (property, thread
// count) with the stable engine counters — which tools/bench_record.py
// normalizes into the tracked BENCH_scaling.json baseline.
//
// The complexity sweeps that used to live here moved conceptually into
// bench_fig6_table, which prints the same Drct-vs-ViaPSL cost story.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "abv/campaign.hpp"
#include "bench_json.hpp"
#include "spec/parser.hpp"
#include "support/args.hpp"

namespace {

using namespace loom;

constexpr const char* kProperties[] = {
    "(({n1, n2}, &) < ({n3[2,8], n4}, |) < n5 << i, true)",
    "(p[2,3] => q[1,4] < r, 1ms)",
};

struct Sample {
  double seconds = 0.0;
  std::size_t monitor_events = 0;
  std::string report;
  abv::CampaignResult result;
};

Sample run_once(const char* source, std::size_t threads, std::size_t seeds,
                mon::Backend backend, std::size_t checkpoint_stride) {
  spec::Alphabet ab;
  support::DiagnosticSink sink;
  auto property = spec::parse_property(source, ab, sink);
  if (!property) {
    std::fprintf(stderr, "parse error:\n%s\n", sink.to_string().c_str());
    std::exit(1);
  }
  abv::CampaignOptions opt;
  opt.seeds = seeds;
  opt.stimuli.rounds = 6;
  opt.stimuli.noise_permille = 100;
  opt.mutants_per_kind = 24;
  opt.threads = threads;
  opt.shard_size = 1;  // finest grain: every unit can be stolen
  opt.backend = backend;
  opt.checkpoint_stride = checkpoint_stride;  // incremental replay is on

  const auto begin = std::chrono::steady_clock::now();
  Sample s;
  s.result = abv::run_campaign(*property, ab, opt);
  const auto end = std::chrono::steady_clock::now();

  s.seconds = std::chrono::duration<double>(end - begin).count();
  s.monitor_events = static_cast<std::size_t>(s.result.monitor_stats.events);
  s.report = s.result.report(ab);
  return s;
}

int usage_error(const char* fmt, const char* what, const char* prog) {
  std::fprintf(stderr, fmt, what);
  std::fprintf(stderr,
               "usage: %s [max_threads] [seeds] [auto|drct|viapsl|vm] [stride]\n"
               "          [--benchmark_format=json]\n",
               prog);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  // Flags may appear anywhere; positionals keep their order.  The one flag
  // is the google-benchmark JSON spelling so every bench binary is driven
  // the same way; anything else starting with "--" is a usage error, and a
  // malformed positional ("5x", "99999999999999999999") exits 2 instead of
  // silently running the sweep with a substituted value.
  const bool json = bench::json_format_requested(argc, argv);
  std::vector<char*> positional = {argv[0]};
  for (int k = 1; k < argc; ++k) {
    if (std::strcmp(argv[k], "--benchmark_format=json") == 0) continue;
    if (std::strncmp(argv[k], "--", 2) == 0) {
      return usage_error("unknown option: %s\n", argv[k], argv[0]);
    }
    positional.push_back(argv[k]);
  }
  const int pos_argc = static_cast<int>(positional.size());
  char** pos_argv = positional.data();

  const std::size_t hw = std::max(1u, std::thread::hardware_concurrency());
  const auto max_threads =
      support::parse_count(pos_argc, pos_argv, 1, std::max<std::size_t>(hw, 8));
  if (!max_threads) {
    return usage_error("bad max_threads '%s' (want a positive count)\n",
                       pos_argv[1], argv[0]);
  }
  const auto seeds = support::parse_count(pos_argc, pos_argv, 2, 48);
  if (!seeds) {
    return usage_error("bad seeds '%s' (want a positive count)\n", pos_argv[2],
                       argv[0]);
  }
  const auto backend = loom::mon::parse_backend_arg(pos_argc, pos_argv, 3);
  if (!backend) {
    return usage_error("bad backend '%s' (want auto, drct, viapsl or vm)\n",
                       pos_argv[3], argv[0]);
  }
  const auto stride = support::parse_count(pos_argc, pos_argv, 4, 32);
  if (!stride) {
    return usage_error("bad stride '%s' (want a positive count)\n", pos_argv[4],
                       argv[0]);
  }

  // In JSON mode the table moves to stderr so stdout is exactly the
  // document tools/bench_record.py parses.
  std::FILE* const out = json ? stderr : stdout;
  bench::JsonReport report(argv[0]);

  std::fprintf(out,
               "Sharded campaign scaling (%zu hardware threads, %zu seeds, "
               "backend %s, checkpoint stride %zu)\n",
               hw, *seeds, loom::mon::to_string(*backend), *stride);
  bool all_identical = true;
  for (std::size_t p = 0; p < std::size(kProperties); ++p) {
    const char* source = kProperties[p];
    std::fprintf(out, "\nproperty: %s\n", source);
    std::fprintf(out, "%8s %12s %14s %9s %s\n", "threads", "wall [ms]",
                 "mon events/s", "speedup", "deterministic");

    const Sample serial = run_once(source, 1, *seeds, *backend, *stride);
    for (std::size_t t = 1; t <= *max_threads; t *= 2) {
      const Sample s =
          t == 1 ? serial : run_once(source, t, *seeds, *backend, *stride);
      const bool identical = s.report == serial.report;
      all_identical = all_identical && identical;
      std::fprintf(out, "%8zu %12.1f %14.3e %8.2fx %s\n", t, s.seconds * 1e3,
                   bench::safe_ratio(static_cast<double>(s.monitor_events),
                                     s.seconds),
                   bench::safe_ratio(serial.seconds, s.seconds),
                   identical ? "bit-identical" : "MISMATCH");

      bench::JsonBenchmark entry;
      entry.name = "BM_ScalingSweep/property:" + std::to_string(p) +
                   "/threads:" + std::to_string(t);
      entry.real_time_ns = s.seconds * 1e9;
      entry.label = source;
      entry.counters.emplace_back(
          "mon_events_per_s",
          bench::safe_ratio(static_cast<double>(s.monitor_events), s.seconds));
      entry.counters.emplace_back(
          "speedup", bench::safe_ratio(serial.seconds, s.seconds));
      entry.counters.emplace_back("bit_identical", identical ? 1.0 : 0.0);
      for (const auto& c : s.result.diagnostic_counters()) {
        entry.counters.emplace_back(c.name, c.value);
      }
      report.add(std::move(entry));
    }
  }

  if (json) report.write(std::cout);

  if (!all_identical) {
    std::fprintf(stderr, "\nFAIL: a parallel run diverged from serial\n");
    return 1;
  }
  std::fprintf(out, "\nall parallel runs bit-identical to the serial baseline\n");
  return 0;
}

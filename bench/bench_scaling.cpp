// Ablation: the §7 complexity claims as parameter sweeps.
//
//   Drct   time Θ(max_i |α(F_i)|), space Θ(Σ_i |α(F_i)|) — independent of
//          the range bounds [u,v];
//   ViaPSL Θ(Δ + Σ (v-u+1)^2 + Σ |α(F_j)|·|α(F_j-1)|) — quadratic in the
//          range width and in fragment arity.
//
// Prints three sweeps: range width v, fragment arity k, fragment count q.
#include <cstdio>
#include <string>

#include "abv/stimuli.hpp"
#include "mon/monitors.hpp"
#include "psl/cost_model.hpp"
#include "spec/parser.hpp"

namespace {

using namespace loom;

struct Cost {
  double drct_ops, drct_bits, via_ops, via_bits;
};

Cost measure(const std::string& source) {
  spec::Alphabet ab;
  support::DiagnosticSink sink;
  auto property = spec::parse_property(source, ab, sink);
  if (!property) {
    std::fprintf(stderr, "parse error: %s\n%s\n", source.c_str(),
                 sink.to_string().c_str());
    std::exit(1);
  }
  support::Rng rng(7);
  abv::StimuliOptions opt;
  opt.rounds = 5;
  const spec::Trace trace = abv::generate_valid(*property, ab, rng, opt);
  auto monitor = mon::make_monitor(*property);
  for (const auto& ev : trace) monitor->observe(ev.name, ev.time);
  monitor->finish(trace.back().time);
  const psl::PslCost cost = psl::estimate(*property);
  return {static_cast<double>(monitor->stats().max_ops_per_event),
          static_cast<double>(monitor->space_bits()),
          static_cast<double>(cost.ops_per_token + cost.lexer_ops),
          static_cast<double>(cost.total_bits())};
}

void print_row(const std::string& param, const Cost& c) {
  std::printf("%-18s | %10.0f %10.0f | %12.3e %12.3e\n", param.c_str(),
              c.drct_ops, c.drct_bits, c.via_ops, c.via_bits);
}

void header(const char* sweep) {
  std::printf("\n%s\n%-18s | %10s %10s | %12s %12s\n", sweep, "parameter",
              "Drct ops", "Drct bits", "ViaPSL ops", "ViaPSL bits");
  std::printf("%s\n", std::string(72, '-').c_str());
}

}  // namespace

int main() {
  std::printf("Complexity sweeps (Drct measured, ViaPSL analytic model)\n");

  header("Sweep 1: range width — (n[1,v] << i, true)");
  for (const unsigned v : {1u, 4u, 16u, 64u, 256u, 1024u, 4096u, 16384u}) {
    // Cap stimulus block lengths by sampling the property as written; for
    // large v the generator picks lengths uniformly, so runtime stays sane.
    const Cost c = measure("(n[1," + std::to_string(v) + "] << i, true)");
    print_row("v=" + std::to_string(v), c);
  }

  header("Sweep 2: fragment arity — (({n1..nk}, &) << i, false)");
  for (const unsigned k : {1u, 2u, 4u, 8u, 16u, 32u}) {
    std::string names;
    for (unsigned j = 1; j <= k; ++j) {
      if (j > 1) names += ", ";
      names += "n" + std::to_string(j);
    }
    const Cost c = measure("(({" + names + "}, &) << i, false)");
    print_row("k=" + std::to_string(k), c);
  }

  header("Sweep 3: fragment count — (m1 < m2 < ... < mq << i, true)");
  for (const unsigned q : {1u, 2u, 4u, 8u, 16u}) {
    std::string chain;
    for (unsigned j = 1; j <= q; ++j) {
      if (j > 1) chain += " < ";
      chain += "m" + std::to_string(j);
    }
    const Cost c = measure("(" + chain + " << i, true)");
    print_row("q=" + std::to_string(q), c);
  }

  std::printf(
      "\nExpected shapes: Drct ops flat in v (sweep 1), linear-ish in k and "
      "constant-per-event in q;\nViaPSL ops quadratic in v and in total "
      "token count (Asynch pairs + Range pairs + Order products).\n");
  return 0;
}

// Scaling of the sharded campaign engine: the paper's Fig. 1 loop
// (stimuli → monitors → mutation → coverage) run serially and on a
// work-stealing pool with growing thread counts.  Prints events/second and
// speedup per thread count and verifies on the way that every parallel run
// is bit-identical to the serial baseline (the engine's core invariant —
// see tests/campaign_parallel_test.cpp for the exhaustive version).
//
//   $ ./bench_scaling [max_threads] [seeds] [auto|drct|viapsl] [stride]
//
// `stride` is the checkpoint spacing of the incremental (suffix-only)
// mutant replay, so the threads sweep exercises the checkpointed path at
// any granularity (the default engine setting is 32).
//
// The complexity sweeps that used to live here moved conceptually into
// bench_fig6_table, which prints the same Drct-vs-ViaPSL cost story.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "abv/campaign.hpp"
#include "spec/parser.hpp"
#include "support/args.hpp"

namespace {

using namespace loom;

constexpr const char* kProperties[] = {
    "(({n1, n2}, &) < ({n3[2,8], n4}, |) < n5 << i, true)",
    "(p[2,3] => q[1,4] < r, 1ms)",
};

struct Sample {
  double seconds = 0.0;
  std::size_t monitor_events = 0;
  std::string report;
};

Sample run_once(const char* source, std::size_t threads, std::size_t seeds,
                mon::Backend backend, std::size_t checkpoint_stride) {
  spec::Alphabet ab;
  support::DiagnosticSink sink;
  auto property = spec::parse_property(source, ab, sink);
  if (!property) {
    std::fprintf(stderr, "parse error:\n%s\n", sink.to_string().c_str());
    std::exit(1);
  }
  abv::CampaignOptions opt;
  opt.seeds = seeds;
  opt.stimuli.rounds = 6;
  opt.stimuli.noise_permille = 100;
  opt.mutants_per_kind = 24;
  opt.threads = threads;
  opt.shard_size = 1;  // finest grain: every unit can be stolen
  opt.backend = backend;
  opt.checkpoint_stride = checkpoint_stride;  // incremental replay is on

  const auto begin = std::chrono::steady_clock::now();
  const abv::CampaignResult r = abv::run_campaign(*property, ab, opt);
  const auto end = std::chrono::steady_clock::now();

  Sample s;
  s.seconds = std::chrono::duration<double>(end - begin).count();
  s.monitor_events = static_cast<std::size_t>(r.monitor_stats.events);
  s.report = r.report(ab);
  return s;
}

}  // namespace

int main(int argc, char** argv) {
  const std::size_t hw = std::max(1u, std::thread::hardware_concurrency());
  const std::size_t max_threads =
      support::parse_count(argc, argv, 1, std::max<std::size_t>(hw, 8));
  const std::size_t seeds = support::parse_count(argc, argv, 2, 48);
  const auto backend = loom::mon::parse_backend_arg(argc, argv, 3);
  if (!backend) {
    std::fprintf(stderr,
                 "bad backend '%s' (want auto, drct or viapsl)\n"
                 "usage: %s [max_threads] [seeds] [auto|drct|viapsl] "
                 "[stride]\n",
                 argv[3], argv[0]);
    return 2;
  }
  const std::size_t stride = support::parse_count(argc, argv, 4, 32);

  std::printf(
      "Sharded campaign scaling (%zu hardware threads, %zu seeds, "
      "backend %s, checkpoint stride %zu)\n",
      hw, seeds, loom::mon::to_string(*backend), stride);
  bool all_identical = true;
  for (const char* source : kProperties) {
    std::printf("\nproperty: %s\n", source);
    std::printf("%8s %12s %14s %9s %s\n", "threads", "wall [ms]",
                "mon events/s", "speedup", "deterministic");

    const Sample serial = run_once(source, 1, seeds, *backend, stride);
    for (std::size_t t = 1; t <= max_threads; t *= 2) {
      const Sample s =
          t == 1 ? serial : run_once(source, t, seeds, *backend, stride);
      const bool identical = s.report == serial.report;
      all_identical = all_identical && identical;
      std::printf("%8zu %12.1f %14.3e %8.2fx %s\n", t, s.seconds * 1e3,
                  static_cast<double>(s.monitor_events) / s.seconds,
                  serial.seconds / s.seconds,
                  identical ? "bit-identical" : "MISMATCH");
    }
  }

  if (!all_identical) {
    std::fprintf(stderr, "\nFAIL: a parallel run diverged from serial\n");
    return 1;
  }
  std::printf("\nall parallel runs bit-identical to the serial baseline\n");
  return 0;
}

// Regenerates the paper's Figure 6: time (operations per observed event)
// and space (bits of monitor state) of the Drct and ViaPSL monitors for
// the six property configurations of the evaluation.
//
// Methodology (see DESIGN.md §4 and EXPERIMENTS.md):
//  - Drct: the monitor is instrumented; it runs over conforming stimuli
//    generated from the property itself, and we report the worst-case
//    operations spent on a single event plus the static state bits.
//  - ViaPSL: the §5 encoding is materialized and run the same way when it
//    fits (< 2e6 conjuncts); for the [100,60K] rows it cannot be built —
//    exactly the paper's point — and the analytic cost model (validated
//    against materialized encodings in tests/psl_translate_test.cpp)
//    supplies the numbers.  Δ (the run-length lexer) is reported inline.
//  - Absolute constants differ from the paper's implementation; the claims
//    that must reproduce are the Drct << ViaPSL gaps and the insensitivity
//    of Drct to range bounds.
#include <cinttypes>
#include <cstdio>
#include <string>
#include <vector>

#include "abv/stimuli.hpp"
#include "mon/monitors.hpp"
#include "psl/clause_monitor.hpp"
#include "psl/cost_model.hpp"
#include "spec/parser.hpp"

namespace {

using namespace loom;

struct Row {
  const char* label;        // as printed in the paper
  const char* source;       // our concrete syntax
  double paper_drct_ops, paper_drct_bits;
  double paper_via_ops, paper_via_bits;  // paper's "x + Δ" values
};

const Row kRows[] = {
    {"(n << i, true)", "(n << i, true)",  //
     80, 192, 238, 896},
    {"(n[100,60K] << i, true)", "(n[100,60K] << i, true)",  //
     80, 192, 4e11, 2e12},
    {"(({n1..n4}, &) << i, false)", "(({n1, n2, n3, n4}, &) << i, false)",  //
     230, 1132, 1785, 6720},
    {"(({n1..n5}, &) << i, false)",
     "(({n1, n2, n3, n4, n5}, &) << i, false)",  //
     280, 1568, 2142, 8064},
    {"(n1 => n2 < n3 < n4, T)", "(n1 => n2 < n3 < n4, 1ms)",  //
     296, 1051, 1428, 5376},
    {"(n1 => n2[100,60K] < n3 < n4, T)", "(n1 => n2[100,60K] < n3 < n4, 1ms)",
     296, 1051, 4e11, 2e12},
};

struct Measured {
  double ops = 0;
  double bits = 0;
  bool analytic = false;
};

std::string fmt(double v) {
  char buf[32];
  if (v >= 1e6) {
    std::snprintf(buf, sizeof buf, "%.1e", v);
  } else {
    std::snprintf(buf, sizeof buf, "%.0f", v);
  }
  return buf;
}

}  // namespace

int main() {
  std::printf(
      "Figure 6 — Drct vs ViaPSL monitor complexity "
      "(paper values in parentheses; ViaPSL paper values are \"+D\")\n\n");
  std::printf("%-34s | %12s %14s | %14s %16s\n", "configuration",
              "Drct ops", "Drct bits", "ViaPSL ops", "ViaPSL bits");
  std::printf("%s\n", std::string(100, '-').c_str());

  for (const Row& row : kRows) {
    spec::Alphabet ab;
    support::DiagnosticSink sink;
    auto property = spec::parse_property(row.source, ab, sink);
    if (!property) {
      std::fprintf(stderr, "parse error in %s:\n%s\n", row.source,
                   sink.to_string().c_str());
      return 1;
    }

    // Conforming stimuli (shared by both monitor families).
    support::Rng rng(2016);
    abv::StimuliOptions opt;
    opt.rounds = 10;
    const spec::Trace trace = abv::generate_valid(*property, ab, rng, opt);
    const sim::Time end = trace.back().time;

    // --- Drct ---
    Measured drct;
    {
      auto monitor = mon::make_monitor(*property);
      for (const auto& ev : trace) monitor->observe(ev.name, ev.time);
      monitor->finish(end);
      if (monitor->verdict() == mon::Verdict::Violated) {
        std::fprintf(stderr, "Drct rejected its own stimuli for %s: %s\n",
                     row.source,
                     monitor->violation()->to_string(ab).c_str());
        return 1;
      }
      drct.ops = static_cast<double>(monitor->stats().max_ops_per_event);
      drct.bits = static_cast<double>(monitor->space_bits());
    }

    // --- ViaPSL ---
    Measured via;
    try {
      psl::ClauseMonitor monitor(psl::encode(*property, 2000000, &ab));
      for (const auto& ev : trace) monitor.observe(ev.name, ev.time);
      monitor.finish(end);
      if (monitor.verdict() == mon::Verdict::Violated) {
        std::fprintf(stderr, "ViaPSL rejected its own stimuli for %s: %s\n",
                     row.source, monitor.violation()->to_string(ab).c_str());
        return 1;
      }
      via.ops = static_cast<double>(monitor.stats().max_ops_per_event);
      via.bits = static_cast<double>(monitor.space_bits());
    } catch (const std::length_error&) {
      // Encoding too large to materialize: analytic model (the paper's
      // explosive rows).
      const psl::PslCost cost = psl::estimate(*property);
      via.ops = static_cast<double>(cost.ops_per_token + cost.lexer_ops);
      via.bits = static_cast<double>(cost.total_bits());
      via.analytic = true;
    }

    std::printf("%-34s | %7s (%s) %8s (%s) | %9s%s (%s) %10s%s (%s)\n",
                row.label, fmt(drct.ops).c_str(),
                fmt(row.paper_drct_ops).c_str(), fmt(drct.bits).c_str(),
                fmt(row.paper_drct_bits).c_str(), fmt(via.ops).c_str(),
                via.analytic ? "*" : "", fmt(row.paper_via_ops).c_str(),
                fmt(via.bits).c_str(), via.analytic ? "*" : "",
                fmt(row.paper_via_bits).c_str());
  }

  std::printf("%s\n", std::string(100, '-').c_str());
  std::printf(
      "(*) analytic cost model: the encoding exceeds 2e6 conjuncts and "
      "cannot be materialized.\n"
      "Shape checks (the paper's claims):\n");

  // Claim 1: Drct is insensitive to range bounds (rows 1 vs 2, 5 vs 6).
  // Claim 2: ViaPSL is always more expensive than Drct.
  // Recompute compactly for the verdict lines.
  struct Summary {
    double drct_ops, via_ops, drct_bits, via_bits;
  };
  std::vector<Summary> summaries;
  for (const Row& row : kRows) {
    spec::Alphabet ab;
    support::DiagnosticSink sink;
    auto property = spec::parse_property(row.source, ab, sink);
    support::Rng rng(2016);
    abv::StimuliOptions opt;
    opt.rounds = 10;
    const spec::Trace trace = abv::generate_valid(*property, ab, rng, opt);
    auto monitor = mon::make_monitor(*property);
    for (const auto& ev : trace) monitor->observe(ev.name, ev.time);
    monitor->finish(trace.back().time);
    Summary s{};
    s.drct_ops = static_cast<double>(monitor->stats().max_ops_per_event);
    s.drct_bits = static_cast<double>(monitor->space_bits());
    const psl::PslCost cost = psl::estimate(*property);
    s.via_ops = static_cast<double>(cost.ops_per_token + cost.lexer_ops);
    s.via_bits = static_cast<double>(cost.total_bits());
    summaries.push_back(s);
  }
  const bool drct_flat_ops =
      summaries[1].drct_ops <= summaries[0].drct_ops + 2 &&
      summaries[5].drct_ops <= summaries[4].drct_ops + 2;
  bool via_dominates = true;
  for (const auto& s : summaries) {
    via_dominates = via_dominates && s.via_ops > s.drct_ops &&
                    s.via_bits > s.drct_bits;
  }
  const double blowup_ops = summaries[1].via_ops / summaries[0].via_ops;
  std::printf(
      "  [%s] Drct per-event ops unaffected by [100,60K] ranges "
      "(rows 2 and 6 vs 1 and 5)\n",
      drct_flat_ops ? "ok" : "FAIL");
  std::printf(
      "  [%s] ViaPSL costs exceed Drct costs on every row (paper: always "
      "smaller)\n",
      via_dominates ? "ok" : "FAIL");
  std::printf(
      "  [%s] non-trivial range blows ViaPSL up by %.1e x "
      "(paper: ~1.7e9 x on ops)\n",
      blowup_ops > 1e6 ? "ok" : "FAIL", blowup_ops);
  return drct_flat_ops && via_dominates && blowup_ops > 1e6 ? 0 : 1;
}

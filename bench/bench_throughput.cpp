// Runtime throughput (google-benchmark): events/second sustained by the
// Drct monitors vs the materialized ViaPSL clause monitors, plus parser
// and stimuli-generation rates.  Complements Figure 6's abstract op counts
// with wall-clock numbers on this host.
#include <benchmark/benchmark.h>

#include "abv/campaign.hpp"
#include "abv/stimuli.hpp"
#include "mon/monitors.hpp"
#include "psl/clause_monitor.hpp"
#include "sim/scheduler.hpp"
#include "spec/parser.hpp"

namespace {

using namespace loom;

struct Fixture {
  spec::Alphabet ab;
  spec::Property property;
  spec::Trace trace;

  explicit Fixture(const char* source, std::size_t rounds = 64)
      : property(parse(source)) {
    support::Rng rng(42);
    abv::StimuliOptions opt;
    opt.rounds = rounds;
    trace = abv::generate_valid(property, ab, rng, opt);
  }

  spec::Property parse(const char* source) {
    support::DiagnosticSink sink;
    auto p = spec::parse_property(source, ab, sink);
    if (!p) throw std::runtime_error(sink.to_string());
    return *p;
  }
};

const char* kConfig[] = {
    "(n << i, true)",
    "(({n1, n2, n3, n4}, &) << i, false)",
    "(({n1, n2}, &) < ({n3[2,8], n4}, |) < n5 << i, true)",
    "(n1 => n2 < n3 < n4, 1ms)",
};

void BM_DrctMonitor(benchmark::State& state) {
  Fixture fx(kConfig[state.range(0)]);
  auto monitor = mon::make_monitor(fx.property);
  for (auto _ : state) {
    monitor->reset();
    for (const auto& ev : fx.trace) monitor->observe(ev.name, ev.time);
    benchmark::DoNotOptimize(monitor->verdict());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(fx.trace.size()));
  state.SetLabel(kConfig[state.range(0)]);
}
BENCHMARK(BM_DrctMonitor)->DenseRange(0, 3);

void BM_ViaPslMonitor(benchmark::State& state) {
  Fixture fx(kConfig[state.range(0)]);
  psl::ClauseMonitor monitor(psl::encode(fx.property));
  for (auto _ : state) {
    monitor.reset();
    for (const auto& ev : fx.trace) monitor.observe(ev.name, ev.time);
    benchmark::DoNotOptimize(monitor.verdict());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(fx.trace.size()));
  state.SetLabel(kConfig[state.range(0)]);
}
BENCHMARK(BM_ViaPslMonitor)->DenseRange(0, 3);

void BM_ViaPslWideRange(benchmark::State& state) {
  // Materialized ViaPSL with a growing range width: the per-event cost of
  // the clause network grows quadratically until materialization becomes
  // impossible (the Figure 6 [100,60K] rows).
  const auto width = static_cast<std::uint32_t>(state.range(0));
  const std::string source =
      "(n[1," + std::to_string(width) + "] << i, true)";
  Fixture fx(source.c_str(), 8);
  psl::ClauseMonitor monitor(psl::encode(fx.property));
  for (auto _ : state) {
    monitor.reset();
    for (const auto& ev : fx.trace) monitor.observe(ev.name, ev.time);
    benchmark::DoNotOptimize(monitor.verdict());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(fx.trace.size()));
  state.SetComplexityN(width);
}
BENCHMARK(BM_ViaPslWideRange)->RangeMultiplier(4)->Range(1, 256);

void BM_DrctWideRange(benchmark::State& state) {
  const auto width = static_cast<std::uint32_t>(state.range(0));
  const std::string source =
      "(n[1," + std::to_string(width) + "] << i, true)";
  Fixture fx(source.c_str(), 8);
  auto monitor = mon::make_monitor(fx.property);
  for (auto _ : state) {
    monitor->reset();
    for (const auto& ev : fx.trace) monitor->observe(ev.name, ev.time);
    benchmark::DoNotOptimize(monitor->verdict());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(fx.trace.size()));
  state.SetComplexityN(width);
}
BENCHMARK(BM_DrctWideRange)->RangeMultiplier(4)->Range(1, 256);

void BM_CampaignSharded(benchmark::State& state) {
  // The full Fig. 1 loop on the sharded engine; the argument is the thread
  // count (1 = serial baseline).  Deterministic across the sweep, so the
  // runs are directly comparable.
  Fixture fx(kConfig[2], 4);
  abv::CampaignOptions opt;
  opt.seeds = 8;
  opt.stimuli.rounds = 4;
  opt.mutants_per_kind = 8;
  opt.threads = static_cast<std::size_t>(state.range(0));
  opt.shard_size = 1;
  std::uint64_t monitor_events = 0;
  for (auto _ : state) {
    const abv::CampaignResult r = abv::run_campaign(fx.property, fx.ab, opt);
    monitor_events += r.monitor_stats.events;
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(monitor_events));
  state.SetLabel("threads=" + std::to_string(opt.threads));
}
BENCHMARK(BM_CampaignSharded)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->UseRealTime();

void BM_CampaignMutationHeavy(benchmark::State& state) {
  // Mutation-heavy campaign, cached+batched vs legacy: six units per seed
  // share one valid trace, so the per-seed cache amortizes stimuli
  // generation 6× and mutants replay through the batched MonitorModule
  // path.  Both runs produce bit-identical results (enforced by
  // campaign_replay_diff_test); only the wall clock differs.
  const bool cached = state.range(0) != 0;
  Fixture fx(kConfig[2], 4);
  abv::CampaignOptions opt;
  opt.seeds = 64;
  opt.stimuli.rounds = 16;  // long traces: regeneration is the hot path
  opt.mutants_per_kind = 4;
  opt.threads = 1;
  opt.reuse_traces = cached;
  opt.batch_replay = cached;
  std::uint64_t monitor_events = 0;
  for (auto _ : state) {
    const abv::CampaignResult r = abv::run_campaign(fx.property, fx.ab, opt);
    monitor_events += r.monitor_stats.events;
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(monitor_events));
  state.SetLabel(cached ? "reuse_traces+batch_replay" : "legacy");
}
BENCHMARK(BM_CampaignMutationHeavy)->Arg(0)->Arg(1)->UseRealTime();

void BM_CampaignCompiledPlans(benchmark::State& state) {
  // Translate-once vs translate-per-unit on the mutation-heavy shape: six
  // units per seed and a fresh monitor per killed mutant make the legacy
  // path re-run the spec→monitor translation hundreds of times per seed;
  // the compiled path plans once and stamps/reset-reuses instances.  Both
  // runs are byte-identical (compiled_plan_diff_test); only the wall clock
  // differs — the label names the path, the delta is the win.
  const bool compiled = state.range(0) != 0;
  Fixture fx(kConfig[2], 4);
  abv::CampaignOptions opt;
  opt.seeds = 48;
  opt.stimuli.rounds = 4;
  opt.mutants_per_kind = 24;  // mutation-heavy: stamping dominates
  opt.threads = 1;
  opt.use_compiled_plans = compiled;
  std::uint64_t monitor_events = 0;
  for (auto _ : state) {
    const abv::CampaignResult r = abv::run_campaign(fx.property, fx.ab, opt);
    monitor_events += r.monitor_stats.events;
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(monitor_events));
  state.SetLabel(compiled ? "compiled plans" : "legacy per-unit translation");
}
BENCHMARK(BM_CampaignCompiledPlans)->Arg(0)->Arg(1)->UseRealTime();

void BM_CampaignManyProperties(benchmark::State& state) {
  // The many-property shape: run_campaigns over a batch, where the legacy
  // engine pays one translation per (property × unit) and the compiled
  // engine exactly one per property.
  const bool compiled = state.range(0) != 0;
  spec::Alphabet ab;
  std::vector<spec::Property> props;
  for (const char* source : kConfig) {
    support::DiagnosticSink sink;
    auto p = spec::parse_property(source, ab, sink);
    if (!p) throw std::runtime_error(sink.to_string());
    props.push_back(*p);
  }
  std::vector<const spec::Property*> ptrs;
  for (const auto& p : props) ptrs.push_back(&p);
  abv::CampaignOptions opt;
  opt.seeds = 16;
  opt.stimuli.rounds = 4;
  opt.mutants_per_kind = 12;
  opt.threads = 1;
  opt.use_compiled_plans = compiled;
  std::uint64_t monitor_events = 0;
  for (auto _ : state) {
    const auto results = abv::run_campaigns(ptrs, ab, opt);
    for (const auto& r : results) monitor_events += r.monitor_stats.events;
    benchmark::DoNotOptimize(results);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(monitor_events));
  state.SetLabel(compiled ? "compiled plans" : "legacy per-unit translation");
}
BENCHMARK(BM_CampaignManyProperties)->Arg(0)->Arg(1)->UseRealTime();

void BM_MonitorModulePerEvent(benchmark::State& state) {
  // In-simulation stepping, one observe() per event: every step pays the
  // violation-callback check and the watchdog re-arm.
  Fixture fx(kConfig[state.range(0)]);
  for (auto _ : state) {
    sim::Scheduler scheduler;
    auto monitor = mon::make_monitor(fx.property);
    mon::MonitorModule module(scheduler, "mon", *monitor, fx.ab);
    for (const auto& ev : fx.trace) module.observe(ev.name, ev.time);
    benchmark::DoNotOptimize(monitor->verdict());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(fx.trace.size()));
  state.SetLabel(kConfig[state.range(0)]);
}
BENCHMARK(BM_MonitorModulePerEvent)->DenseRange(0, 3);

void BM_MonitorModuleBatch(benchmark::State& state) {
  // Batched fast path: the whole recorded slice in one observe_batch()
  // call, bookkeeping once at the end.
  Fixture fx(kConfig[state.range(0)]);
  for (auto _ : state) {
    sim::Scheduler scheduler;
    auto monitor = mon::make_monitor(fx.property);
    mon::MonitorModule module(scheduler, "mon", *monitor, fx.ab);
    module.observe_batch(fx.trace);
    benchmark::DoNotOptimize(monitor->verdict());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(fx.trace.size()));
  state.SetLabel(kConfig[state.range(0)]);
}
BENCHMARK(BM_MonitorModuleBatch)->DenseRange(0, 3);

void BM_ParseProperty(benchmark::State& state) {
  const char* source =
      "(({n1, n2}, &) < ({n3[2,8], n4}, |) < n5 << i, false)";
  for (auto _ : state) {
    spec::Alphabet ab;
    support::DiagnosticSink sink;
    benchmark::DoNotOptimize(spec::parse_property(source, ab, sink));
  }
}
BENCHMARK(BM_ParseProperty);

void BM_GenerateStimuli(benchmark::State& state) {
  Fixture fx(kConfig[2], 1);
  support::Rng rng(5);
  abv::StimuliOptions opt;
  opt.rounds = static_cast<std::size_t>(state.range(0));
  std::size_t events = 0;
  for (auto _ : state) {
    auto t = abv::generate_valid(fx.property, fx.ab, rng, opt);
    events += t.size();
    benchmark::DoNotOptimize(t);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(events));
}
BENCHMARK(BM_GenerateStimuli)->Arg(16)->Arg(128);

}  // namespace

BENCHMARK_MAIN();

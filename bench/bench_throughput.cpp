// Runtime throughput (google-benchmark): events/second sustained by the
// Drct monitors vs the materialized ViaPSL clause monitors, plus parser
// and stimuli-generation rates.  Complements Figure 6's abstract op counts
// with wall-clock numbers on this host.
//
// The campaign benchmarks additionally print heap-allocation counters
// (allocs/unit, allocs/mutant) from support::AllocCounter — this binary
// links the counting operator new/delete (src/support/alloc_hooks.cpp), so
// the zero-allocation steady state is a printed number a regression moves,
// not folklore.
#include <benchmark/benchmark.h>

#include <chrono>

#include "abv/campaign.hpp"
#include "abv/stimuli.hpp"
#include "wire/payload.hpp"
#include "wire/process.hpp"
#include "wire/wire.hpp"
#include "bench_json.hpp"
#include "mon/bytecode.hpp"
#include "mon/monitors.hpp"
#include "mon/vm.hpp"
#include "psl/clause_monitor.hpp"
#include "sim/scheduler.hpp"
#include "spec/parser.hpp"
#include "support/alloc_counter.hpp"

namespace {

using namespace loom;

// Per-iteration tally for the campaign loops: heap allocations (reported
// per work unit — a seed's valid phase or one seed×kind mutation batch —
// and per mutant attempt; thread-local counters only see the serial
// campaigns' own thread, which is exactly the steady-state loop being
// measured), wall time per unit, and the engine diagnostics from
// CampaignResult summed across iterations.  report() emits the stable
// counter schema the tracked BENCH_*.json baselines record — names are
// API (tools/bench_compare.py thresholds them by name); every ratio
// guards its denominator via bench::safe_ratio, so a zero-work shape
// reports 0, never NaN.
struct CampaignTally {
  std::uint64_t allocs = 0;
  std::uint64_t units = 0;
  std::uint64_t mutants = 0;
  std::uint64_t monitor_events = 0;
  double seconds = 0.0;
  std::uint64_t trace_cache_hits = 0;
  std::uint64_t trace_cache_misses = 0;
  std::uint64_t plan_cache_hits = 0;
  std::uint64_t plan_cache_misses = 0;
  std::uint64_t instances_stamped = 0;
  std::uint64_t instance_reuses = 0;
  std::uint64_t checkpoint_hits = 0;
  std::uint64_t events_skipped = 0;
  std::uint64_t lane_waves = 0;
  std::uint64_t lanes_filled = 0;
  std::uint64_t lane_capacity = 0;
  bool backend_viapsl = false;
  bool backend_vm = false;

  /// Times one campaign run and folds its diagnostics into the tally.
  template <typename Run>
  auto timed(Run&& run) {
    const auto begin = std::chrono::steady_clock::now();
    auto result = run();
    seconds +=
        std::chrono::duration<double>(std::chrono::steady_clock::now() - begin)
            .count();
    return result;
  }

  void absorb(const abv::CampaignResult& r) {
    monitor_events += r.monitor_stats.events;
    trace_cache_hits += r.trace_cache_hits;
    trace_cache_misses += r.trace_cache_misses;
    plan_cache_hits += r.compile_stats.plan_cache_hits;
    plan_cache_misses += r.compile_stats.plan_cache_misses;
    instances_stamped += r.compile_stats.instances_stamped;
    instance_reuses += r.compile_stats.instance_reuses;
    checkpoint_hits += r.checkpoint_hits;
    events_skipped += r.events_skipped;
    lane_waves += r.lane_waves;
    lanes_filled += r.lanes_filled;
    lane_capacity += r.lane_capacity;
    backend_viapsl = r.compile_stats.backend_chosen == mon::Backend::ViaPSL;
    backend_vm = r.compile_stats.backend_chosen == mon::Backend::Vm;
  }

  void report(benchmark::State& state) const {
    using bench::safe_ratio;
    const auto d = [](std::uint64_t v) { return static_cast<double>(v); };
    if (units != 0) {
      state.counters["wall/unit"] =
          benchmark::Counter(safe_ratio(seconds * 1e9, d(units)));  // ns
      if (support::AllocCounter::hooks_linked()) {
        state.counters["allocs/unit"] =
            benchmark::Counter(safe_ratio(d(allocs), d(units)));
        if (mutants != 0) {
          state.counters["allocs/mutant"] =
              benchmark::Counter(safe_ratio(d(allocs), d(mutants)));
        }
      }
    }
    state.counters["trace_cache_hit_rate"] = benchmark::Counter(safe_ratio(
        d(trace_cache_hits), d(trace_cache_hits + trace_cache_misses)));
    state.counters["plan_cache_hit_rate"] = benchmark::Counter(safe_ratio(
        d(plan_cache_hits), d(plan_cache_hits + plan_cache_misses)));
    state.counters["instance_reuse_rate"] = benchmark::Counter(safe_ratio(
        d(instance_reuses), d(instances_stamped + instance_reuses)));
    state.counters["checkpoint_hits"] = benchmark::Counter(d(checkpoint_hits));
    state.counters["events_skipped"] = benchmark::Counter(d(events_skipped));
    state.counters["skip_ratio"] = benchmark::Counter(safe_ratio(
        d(events_skipped), d(events_skipped) + d(monitor_events)));
    state.counters["lane_occupancy"] = benchmark::Counter(
        safe_ratio(d(lanes_filled), d(lane_capacity)));
    state.counters["lane_waves"] = benchmark::Counter(d(lane_waves));
    state.counters["backend_viapsl"] =
        benchmark::Counter(backend_viapsl ? 1.0 : 0.0);
    state.counters["backend_vm"] = benchmark::Counter(backend_vm ? 1.0 : 0.0);
  }
};

struct Fixture {
  spec::Alphabet ab;
  spec::Property property;
  spec::Trace trace;

  explicit Fixture(const char* source, std::size_t rounds = 64)
      : property(parse(source)) {
    support::Rng rng(42);
    abv::StimuliOptions opt;
    opt.rounds = rounds;
    trace = abv::generate_valid(property, ab, rng, opt);
  }

  spec::Property parse(const char* source) {
    support::DiagnosticSink sink;
    auto p = spec::parse_property(source, ab, sink);
    if (!p) throw std::runtime_error(sink.to_string());
    return *p;
  }
};

const char* kConfig[] = {
    "(n << i, true)",
    "(({n1, n2, n3, n4}, &) << i, false)",
    "(({n1, n2}, &) < ({n3[2,8], n4}, |) < n5 << i, true)",
    "(n1 => n2 < n3 < n4, 1ms)",
};

void BM_DrctMonitor(benchmark::State& state) {
  Fixture fx(kConfig[state.range(0)]);
  auto monitor = mon::make_monitor(fx.property);
  for (auto _ : state) {
    monitor->reset();
    for (const auto& ev : fx.trace) monitor->observe(ev.name, ev.time);
    benchmark::DoNotOptimize(monitor->verdict());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(fx.trace.size()));
  state.SetLabel(kConfig[state.range(0)]);
}
BENCHMARK(BM_DrctMonitor)->DenseRange(0, 3);

void BM_VmMonitor(benchmark::State& state) {
  // The same trace replay as BM_DrctMonitor through the bytecode VM: one
  // compiled program, one frame, reset-reused per iteration.  Verdicts and
  // the Figure-6 op counts are bit-identical to the Drct row by contract
  // (tests/mon_bytecode_test.cpp); the delta is pure dispatch mechanics.
  Fixture fx(kConfig[state.range(0)]);
  mon::VmMonitor monitor(mon::compile_vm(fx.property));
  for (auto _ : state) {
    monitor.reset();
    for (const auto& ev : fx.trace) monitor.observe(ev.name, ev.time);
    benchmark::DoNotOptimize(monitor.verdict());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(fx.trace.size()));
  state.SetLabel(kConfig[state.range(0)]);
}
BENCHMARK(BM_VmMonitor)->DenseRange(0, 3);

void BM_VmLaneBatch(benchmark::State& state) {
  // Many frames of one program advanced block-lockstep: the campaign
  // shard's mutant shape.  Items processed counts every lane's events, so
  // the rate is directly comparable to BM_VmMonitor's single frame.
  constexpr std::size_t kLanes = 16;
  Fixture fx(kConfig[state.range(0)]);
  mon::VmLaneBatch lanes(mon::compile_vm(fx.property), kLanes);
  std::vector<const spec::Trace*> traces(kLanes, &fx.trace);
  for (auto _ : state) {
    for (std::size_t l = 0; l < kLanes; ++l) lanes.reset(l);
    lanes.run(traces);
    benchmark::DoNotOptimize(lanes.verdict(0));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(fx.trace.size() * kLanes));
  state.SetLabel(kConfig[state.range(0)]);
}
BENCHMARK(BM_VmLaneBatch)->DenseRange(0, 3);

void BM_ViaPslMonitor(benchmark::State& state) {
  Fixture fx(kConfig[state.range(0)]);
  psl::ClauseMonitor monitor(psl::encode(fx.property));
  for (auto _ : state) {
    monitor.reset();
    for (const auto& ev : fx.trace) monitor.observe(ev.name, ev.time);
    benchmark::DoNotOptimize(monitor.verdict());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(fx.trace.size()));
  state.SetLabel(kConfig[state.range(0)]);
}
BENCHMARK(BM_ViaPslMonitor)->DenseRange(0, 3);

void BM_ViaPslWideRange(benchmark::State& state) {
  // Materialized ViaPSL with a growing range width: the per-event cost of
  // the clause network grows quadratically until materialization becomes
  // impossible (the Figure 6 [100,60K] rows).
  const auto width = static_cast<std::uint32_t>(state.range(0));
  const std::string source =
      "(n[1," + std::to_string(width) + "] << i, true)";
  Fixture fx(source.c_str(), 8);
  psl::ClauseMonitor monitor(psl::encode(fx.property));
  for (auto _ : state) {
    monitor.reset();
    for (const auto& ev : fx.trace) monitor.observe(ev.name, ev.time);
    benchmark::DoNotOptimize(monitor.verdict());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(fx.trace.size()));
  state.SetComplexityN(width);
}
BENCHMARK(BM_ViaPslWideRange)->RangeMultiplier(4)->Range(1, 256);

void BM_DrctWideRange(benchmark::State& state) {
  const auto width = static_cast<std::uint32_t>(state.range(0));
  const std::string source =
      "(n[1," + std::to_string(width) + "] << i, true)";
  Fixture fx(source.c_str(), 8);
  auto monitor = mon::make_monitor(fx.property);
  for (auto _ : state) {
    monitor->reset();
    for (const auto& ev : fx.trace) monitor->observe(ev.name, ev.time);
    benchmark::DoNotOptimize(monitor->verdict());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(fx.trace.size()));
  state.SetComplexityN(width);
}
BENCHMARK(BM_DrctWideRange)->RangeMultiplier(4)->Range(1, 256);

void BM_CampaignSharded(benchmark::State& state) {
  // The full Fig. 1 loop on the sharded engine; the argument is the thread
  // count (1 = serial baseline).  Deterministic across the sweep, so the
  // runs are directly comparable.
  Fixture fx(kConfig[2], 4);
  abv::CampaignOptions opt;
  opt.seeds = 8;
  opt.stimuli.rounds = 4;
  opt.mutants_per_kind = 8;
  opt.threads = static_cast<std::size_t>(state.range(0));
  opt.shard_size = 1;
  CampaignTally tally;
  for (auto _ : state) {
    support::AllocCounter::Scope scope;
    const abv::CampaignResult r =
        tally.timed([&] { return abv::run_campaign(fx.property, fx.ab, opt); });
    tally.allocs += scope.allocs();  // workers' allocations not included
    tally.units += opt.seeds * 6;
    tally.absorb(r);
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(tally.monitor_events));
  tally.report(state);
  state.SetLabel("threads=" + std::to_string(opt.threads));
}
BENCHMARK(BM_CampaignSharded)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->UseRealTime();

void BM_CampaignMutationHeavy(benchmark::State& state) {
  // Mutation-heavy campaign in four gears: the fully naive engine, the
  // PR 2 cached+batched engine, the zero-allocation scratch engine
  // (per-worker mutant buffers, per-shard monitor pools, hoisted replay
  // host), and the scratch engine running the bytecode VM backend.  All
  // four produce bit-identical mutation results (enforced by
  // campaign_replay_diff_test / campaign_scratch_diff_test, whose backend
  // grids include Vm); only the wall clock and the allocation counters
  // differ — allocs/mutant drops to ~0 in the scratch gears once the
  // arena is warm, and the VM gear trades the Drct monitors' virtual
  // per-event stepping for the flat dispatch loop.
  const int gear = static_cast<int>(state.range(0));
  Fixture fx(kConfig[2], 4);
  abv::CampaignOptions opt;
  opt.seeds = 64;
  opt.stimuli.rounds = 16;  // long traces: regeneration is the hot path
  opt.mutants_per_kind = 4;
  opt.threads = 1;
  opt.reuse_traces = gear >= 1;
  opt.batch_replay = gear >= 1;
  opt.reuse_scratch = gear >= 2;
  if (gear >= 3) opt.backend = mon::Backend::Vm;
  CampaignTally tally;
  for (auto _ : state) {
    support::AllocCounter::Scope scope;
    const abv::CampaignResult r =
        tally.timed([&] { return abv::run_campaign(fx.property, fx.ab, opt); });
    tally.allocs += scope.allocs();
    tally.units += opt.seeds * 6;
    tally.mutants += opt.seeds * 5 * opt.mutants_per_kind;
    tally.absorb(r);
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(tally.monitor_events));
  tally.report(state);
  state.SetLabel(gear == 0   ? "legacy"
                 : gear == 1 ? "reuse_traces+batch_replay"
                 : gear == 2 ? "+scratch arenas"
                             : "+vm backend");
}
BENCHMARK(BM_CampaignMutationHeavy)
    ->Arg(0)
    ->Arg(1)
    ->Arg(2)
    ->Arg(3)
    ->UseRealTime();

void BM_CampaignLaneBatch(benchmark::State& state) {
  // Lane-width sweep of the wave engine on the mutation-heavy VM shape:
  // the argument is CampaignOptions::lane_width (1 = the scalar
  // per-mutant loop, the eighth invariant's differential baseline).
  // Every width produces bit-identical results (campaign_lane_diff_test);
  // the wall clock per unit, the block-lockstep sweep's amortized
  // dispatch, and the printed lane_occupancy are the win.  16 mutants per
  // kind, so even width-16 waves can fill — occupancy measures oracle
  // rejections and unit tails, not an artificially starved fixture.
  const auto width = static_cast<std::size_t>(state.range(0));
  Fixture fx(kConfig[2], 4);
  abv::CampaignOptions opt;
  opt.seeds = 64;
  opt.stimuli.rounds = 16;  // long traces: suffix replay is the hot path
  opt.mutants_per_kind = 16;
  opt.threads = 1;
  opt.backend = mon::Backend::Vm;
  opt.lane_width = width;
  CampaignTally tally;
  for (auto _ : state) {
    support::AllocCounter::Scope scope;
    const abv::CampaignResult r =
        tally.timed([&] { return abv::run_campaign(fx.property, fx.ab, opt); });
    tally.allocs += scope.allocs();
    tally.units += opt.seeds * 6;
    tally.mutants += opt.seeds * 5 * opt.mutants_per_kind;
    tally.absorb(r);
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(tally.monitor_events));
  tally.report(state);
  state.SetLabel(width == 1 ? "scalar baseline"
                            : "lane_width=" + std::to_string(width));
}
BENCHMARK(BM_CampaignLaneBatch)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Arg(16)
    ->UseRealTime();

void BM_CampaignIncremental(benchmark::State& state) {
  // Checkpointed, suffix-only mutant replay vs full replay on the
  // mutation-heavy, long-trace shape (the BM_CampaignMutationHeavy
  // workload where per-mutant cost is replay-dominated).  Gear 0 replays
  // every mutant from event 0; gear 1 restores the floor checkpoint and
  // replays only [floor, end).  Both produce bit-identical results
  // (campaign_incremental_diff_test); the wall clock and the printed
  // skip ratio — prefix events not re-stepped over the events the
  // monitors would have stepped in full — are the win.  The timed
  // property makes StallDeadline mutants (long preserved prefixes) part
  // of the mix, where the suffix is shortest.
  const bool incremental = state.range(0) != 0;
  Fixture fx(kConfig[3], 48);
  abv::CampaignOptions opt;
  opt.seeds = 24;
  opt.stimuli.rounds = 32;  // long traces: prefix re-evaluation dominates
  opt.mutants_per_kind = 8;
  opt.threads = 1;
  opt.incremental_replay = incremental;
  opt.checkpoint_stride = 32;
  CampaignTally tally;
  for (auto _ : state) {
    support::AllocCounter::Scope scope;
    const abv::CampaignResult r =
        tally.timed([&] { return abv::run_campaign(fx.property, fx.ab, opt); });
    tally.allocs += scope.allocs();
    tally.units += opt.seeds * 6;
    tally.mutants += opt.seeds * 5 * opt.mutants_per_kind;
    tally.absorb(r);
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(tally.monitor_events));
  // The tally emits skip_ratio on both gears (0 for full replay) with a
  // guarded denominator, so the counter schema is identical across the
  // sweep and a zero-mutant shape can never print nan.
  tally.report(state);
  state.SetLabel(incremental ? "incremental (suffix-only) replay"
                             : "full replay");
}
BENCHMARK(BM_CampaignIncremental)->Arg(0)->Arg(1)->UseRealTime();

void BM_CampaignCompiledPlans(benchmark::State& state) {
  // Translate-once vs translate-per-unit on the mutation-heavy shape: six
  // units per seed and a fresh monitor per killed mutant make the legacy
  // path re-run the spec→monitor translation hundreds of times per seed;
  // the compiled path plans once and stamps/reset-reuses instances.  Both
  // runs are byte-identical (compiled_plan_diff_test); only the wall clock
  // differs — the label names the path, the delta is the win.
  const bool compiled = state.range(0) != 0;
  Fixture fx(kConfig[2], 4);
  abv::CampaignOptions opt;
  opt.seeds = 48;
  opt.stimuli.rounds = 4;
  opt.mutants_per_kind = 24;  // mutation-heavy: stamping dominates
  opt.threads = 1;
  opt.use_compiled_plans = compiled;
  CampaignTally tally;
  for (auto _ : state) {
    support::AllocCounter::Scope scope;
    const abv::CampaignResult r =
        tally.timed([&] { return abv::run_campaign(fx.property, fx.ab, opt); });
    tally.allocs += scope.allocs();
    tally.units += opt.seeds * 6;
    tally.mutants += opt.seeds * 5 * opt.mutants_per_kind;
    tally.absorb(r);
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(tally.monitor_events));
  tally.report(state);
  state.SetLabel(compiled ? "compiled plans" : "legacy per-unit translation");
}
BENCHMARK(BM_CampaignCompiledPlans)->Arg(0)->Arg(1)->UseRealTime();

void BM_CampaignManyProperties(benchmark::State& state) {
  // The many-property shape: run_campaigns over a batch, where the legacy
  // engine pays one translation per (property × unit), the compiled engine
  // exactly one per property per campaign, and the plan-cache gear exactly
  // one per property for the whole benchmark — the long-lived-embedder
  // steady state, where every iteration after the first recompiles
  // nothing (CampaignOptions::plan_cache).
  const int gear = static_cast<int>(state.range(0));
  spec::Alphabet ab;
  std::vector<spec::Property> props;
  for (const char* source : kConfig) {
    support::DiagnosticSink sink;
    auto p = spec::parse_property(source, ab, sink);
    if (!p) throw std::runtime_error(sink.to_string());
    props.push_back(*p);
  }
  std::vector<const spec::Property*> ptrs;
  for (const auto& p : props) ptrs.push_back(&p);
  abv::CampaignOptions opt;
  opt.seeds = 16;
  opt.stimuli.rounds = 4;
  opt.mutants_per_kind = 12;
  opt.threads = 1;
  opt.use_compiled_plans = gear >= 1;
  mon::CompiledPropertyCache plan_cache;
  if (gear >= 2) opt.plan_cache = &plan_cache;
  CampaignTally tally;
  for (auto _ : state) {
    support::AllocCounter::Scope scope;
    const auto results =
        tally.timed([&] { return abv::run_campaigns(ptrs, ab, opt); });
    tally.allocs += scope.allocs();
    tally.units += opt.seeds * 6 * ptrs.size();
    for (const auto& r : results) tally.absorb(r);
    benchmark::DoNotOptimize(results);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(tally.monitor_events));
  // plan_cache_hit_rate from the tally replaces the old raw hit counter:
  // gear 2 converges toward 1.0 as iterations replay the warm cache.
  tally.report(state);
  state.SetLabel(gear == 0   ? "legacy per-unit translation"
                 : gear == 1 ? "compiled plans"
                             : "+cross-campaign plan cache");
}
BENCHMARK(BM_CampaignManyProperties)->Arg(0)->Arg(1)->Arg(2)->UseRealTime();

#if LOOM_WIRE_HAS_PROCESS
void BM_WorkerSupervision(benchmark::State& state) {
  // Prices the supervised drain (poll-multiplexed, nonblocking readers,
  // per-frame deadlines) against the legacy blocking drain it replaced,
  // on a clean fork-mode cross-process campaign: arg 0 = legacy
  // (supervised=false), arg 1 = supervised with a deadline armed.  Same
  // bits out either way (campaign_supervision_test); the delta is what
  // the supervision machinery costs when nothing goes wrong.
  const bool supervised = state.range(0) != 0;
  Fixture fx(kConfig[2], 4);
  abv::CampaignOptions opt;
  opt.seeds = 8;
  opt.stimuli.rounds = 4;
  opt.mutants_per_kind = 8;
  opt.threads = 1;
  opt.shard_size = 1;
  opt.workers = 2;
  opt.supervised = supervised;
  opt.worker_timeout_ms = supervised ? 10000 : 0;
  CampaignTally tally;
  for (auto _ : state) {
    support::AllocCounter::Scope scope;
    const abv::CampaignResult r =
        tally.timed([&] { return abv::run_campaign(fx.property, fx.ab, opt); });
    tally.allocs += scope.allocs();  // workers' allocations not included
    tally.units += opt.seeds * 6;
    tally.absorb(r);
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(tally.monitor_events));
  tally.report(state);
  state.SetLabel(supervised ? "supervised drain" : "legacy blocking drain");
}
BENCHMARK(BM_WorkerSupervision)->Arg(0)->Arg(1)->UseRealTime();
#endif  // LOOM_WIRE_HAS_PROCESS

void BM_WireRoundTrip(benchmark::State& state) {
  // The versioned wire codec under cross-process load: Arg 0 frames and
  // re-decodes a realistic CampaignResult (what every worker partial
  // carries), Arg 1 a long generated trace (the biggest payload the format
  // defines).  One Encoder and capacity-reusing decode targets, the
  // steady-state shape of a parent draining worker pipes — so allocs/frame
  // measures the reuse discipline, not first-touch growth.
  const bool long_trace = state.range(0) != 0;
  Fixture fx(kConfig[2], 64);

  abv::CampaignResult result;
  result.traces = 24;
  result.events = 120000;
  result.valid_accepted = 24;
  for (auto& m : result.mutation) {
    m.applied = 160;
    m.invalid = 150;
    m.detected = 150;
  }
  result.alphabet_coverage = 0.875;
  result.recognizer_state_coverage = 0.9375;
  result.monitor_stats.ops = 2400000;
  result.monitor_stats.events = 120000;
  result.monitor_stats.max_ops_per_event = 24;
  result.compile_stats.plans_built = 1;
  result.compile_stats.instances_stamped = 12;
  result.compile_stats.instance_reuses = 930;
  result.trace_cache_hits = 120;
  result.trace_cache_misses = 24;
  result.checkpoint_hits = 700;
  result.events_skipped = 90000;

  wire::Encoder enc;
  std::vector<std::uint8_t> framed;
  abv::CampaignResult result_out;
  spec::Trace trace_out;
  std::uint64_t bytes = 0;
  std::uint64_t frames = 0;
  std::uint64_t allocs = 0;
  for (auto _ : state) {
    support::AllocCounter::Scope scope;
    enc.clear();
    framed.clear();
    if (long_trace) {
      wire::encode_trace(enc, fx.trace, fx.ab);
      wire::write_frame(framed, wire::Payload::Trace, enc);
    } else {
      wire::encode_result(enc, result);
      wire::write_frame(framed, wire::Payload::Result, enc);
    }
    wire::Frame frame;
    std::size_t consumed = 0;
    wire::DecodeError err;
    if (!wire::parse_frame(framed.data(), framed.size(), frame, consumed,
                           err)) {
      state.SkipWithError(err.to_string().c_str());
      return;
    }
    wire::Decoder d(frame.data, frame.size);
    bool ok;
    if (long_trace) {
      spec::Alphabet ab;
      ok = wire::decode_trace(d, trace_out, ab);
      benchmark::DoNotOptimize(trace_out);
    } else {
      ok = wire::decode_result(d, result_out);
      benchmark::DoNotOptimize(result_out);
    }
    if (!ok || !d.exhausted()) {
      state.SkipWithError("decode failed");
      return;
    }
    bytes += framed.size();
    ++frames;
    allocs += scope.allocs();
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(bytes));
  state.SetItemsProcessed(static_cast<std::int64_t>(frames));
  if (support::AllocCounter::hooks_linked()) {
    state.counters["allocs/frame"] = benchmark::Counter(bench::safe_ratio(
        static_cast<double>(allocs), static_cast<double>(frames)));
  }
  state.SetLabel(long_trace ? "payload=trace" : "payload=result");
}
BENCHMARK(BM_WireRoundTrip)->Arg(0)->Arg(1);

void BM_MonitorModulePerEvent(benchmark::State& state) {
  // In-simulation stepping, one observe() per event: every step pays the
  // violation-callback check and the watchdog re-arm.
  Fixture fx(kConfig[state.range(0)]);
  for (auto _ : state) {
    sim::Scheduler scheduler;
    auto monitor = mon::make_monitor(fx.property);
    mon::MonitorModule module(scheduler, "mon", *monitor, fx.ab);
    for (const auto& ev : fx.trace) module.observe(ev.name, ev.time);
    benchmark::DoNotOptimize(monitor->verdict());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(fx.trace.size()));
  state.SetLabel(kConfig[state.range(0)]);
}
BENCHMARK(BM_MonitorModulePerEvent)->DenseRange(0, 3);

void BM_MonitorModuleBatch(benchmark::State& state) {
  // Batched fast path: the whole recorded slice in one observe_batch()
  // call, bookkeeping once at the end.
  Fixture fx(kConfig[state.range(0)]);
  for (auto _ : state) {
    sim::Scheduler scheduler;
    auto monitor = mon::make_monitor(fx.property);
    mon::MonitorModule module(scheduler, "mon", *monitor, fx.ab);
    module.observe_batch(fx.trace);
    benchmark::DoNotOptimize(monitor->verdict());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(fx.trace.size()));
  state.SetLabel(kConfig[state.range(0)]);
}
BENCHMARK(BM_MonitorModuleBatch)->DenseRange(0, 3);

void BM_ParseProperty(benchmark::State& state) {
  const char* source =
      "(({n1, n2}, &) < ({n3[2,8], n4}, |) < n5 << i, false)";
  for (auto _ : state) {
    spec::Alphabet ab;
    support::DiagnosticSink sink;
    benchmark::DoNotOptimize(spec::parse_property(source, ab, sink));
  }
}
BENCHMARK(BM_ParseProperty);

void BM_GenerateStimuli(benchmark::State& state) {
  Fixture fx(kConfig[2], 1);
  support::Rng rng(5);
  abv::StimuliOptions opt;
  opt.rounds = static_cast<std::size_t>(state.range(0));
  std::size_t events = 0;
  for (auto _ : state) {
    auto t = abv::generate_valid(fx.property, fx.ab, rng, opt);
    events += t.size();
    benchmark::DoNotOptimize(t);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(events));
}
BENCHMARK(BM_GenerateStimuli)->Arg(16)->Arg(128);

}  // namespace

BENCHMARK_MAIN();

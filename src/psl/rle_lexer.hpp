// Run-length lexer: rewrites the raw event stream into the unfolded token
// vocabulary (paper §5, "Dealing with Ranges"; its runtime cost is the Δ of
// the paper's Figure 6).
//
// A maximal block of k consecutive occurrences of a range's name becomes
// the single token name#k.  The token is emitted as soon as the block is
// provably finished: eagerly when k reaches the upper bound v (so trivial
// [1,1] names pass through with no latency), otherwise at the first event
// of a different name.  Blocks whose length falls outside [u,v] are
// reported as errors — the rewritten word would not exist in the unfolded
// vocabulary.
#pragma once

#include <string>
#include <vector>

#include "mon/stats.hpp"
#include "psl/translate.hpp"

namespace loom::psl {

class RleLexer {
 public:
  RleLexer(const TokenVocab& vocab, mon::MonitorStats& stats);

  struct Result {
    bool error = false;
    std::string reason;
  };

  /// Feeds one source event (must be a source of the vocabulary); emitted
  /// tokens are appended to `out` (0, 1 or 2 tokens).
  Result step(spec::Name source, std::vector<spec::Name>& out);

  /// Closes a trailing block at end of observation.  `pending` is set when
  /// an unfinished block (below its lower bound) remains: not an error on a
  /// finite trace, just an incomplete recognition.
  Result finish(std::vector<spec::Name>& out, bool& pending);

  /// True while a block is accumulating (its token not yet emitted).
  bool block_open() const {
    return current_ != spec::kInvalidName && !emitted_;
  }

  void reset();

  /// Checkpoint support: current-source register, block counter and the
  /// emitted flag (mon/snapshot.hpp).
  void snapshot(mon::Snapshot& out) const;
  void restore(mon::SnapshotReader& in);

  /// Lexer state: the block counter (sized by the largest upper bound), the
  /// current-source register and the emitted flag.
  std::size_t space_bits() const;

 private:
  const TokenVocab* vocab_;
  mon::MonitorStats* stats_;
  spec::Name current_ = spec::kInvalidName;
  std::uint32_t count_ = 0;
  bool emitted_ = false;
};

}  // namespace loom::psl

// PSL/LTL formula AST (the fragment used by the paper's §5 encodings).
//
// Formulas are immutable shared trees over a *token* alphabet: after range
// unfolding, every token stands for "a maximal block of k occurrences of a
// range's name" (paper §5, "Dealing with Ranges").  Operators:
//   atoms, !, &&, ||, ->, X (next), U! (strong until), G (always),
//   F (eventually).
#pragma once

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "spec/alphabet.hpp"

namespace loom::psl {

enum class Op : std::uint8_t {
  True,
  False,
  Atom,
  Not,
  And,
  Or,
  Implies,
  Next,        // strong next
  Until,       // strong until  (U!)
  Always,      // G
  Eventually,  // F
};

struct Formula;
using FormulaPtr = std::shared_ptr<const Formula>;

struct Formula {
  Op op = Op::True;
  spec::Name atom = spec::kInvalidName;  // for Op::Atom
  FormulaPtr lhs;                        // unary operand / left operand
  FormulaPtr rhs;
};

FormulaPtr f_true();
FormulaPtr f_false();
FormulaPtr f_atom(spec::Name token);
FormulaPtr f_not(FormulaPtr a);
FormulaPtr f_and(FormulaPtr a, FormulaPtr b);
FormulaPtr f_or(FormulaPtr a, FormulaPtr b);
FormulaPtr f_implies(FormulaPtr a, FormulaPtr b);
FormulaPtr f_next(FormulaPtr a);
FormulaPtr f_until(FormulaPtr a, FormulaPtr b);
FormulaPtr f_always(FormulaPtr a);
FormulaPtr f_eventually(FormulaPtr a);

/// Disjunction of atoms; f_false() when empty.
FormulaPtr f_any_of(const std::vector<spec::Name>& tokens);

/// Number of AST nodes.  In the modular monitor construction of [14] every
/// node becomes a small hardware component, so this is the per-event
/// operation count of the generated monitor.
std::size_t size(const FormulaPtr& f);

/// Number of temporal operators (X, U!, G, F): the stateful components of
/// the [14] construction, i.e. the monitor's register count.
std::size_t temporal_size(const FormulaPtr& f);

/// Renders the formula with token names from `vocab` texts.
std::string to_string(const FormulaPtr& f,
                      const std::vector<std::string>& token_texts);

}  // namespace loom::psl

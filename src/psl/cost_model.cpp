#include "psl/cost_model.hpp"

#include <algorithm>
#include <vector>

#include "mon/stats.hpp"

namespace loom::psl {
namespace {

std::uint64_t width(const spec::Range& r) {
  return static_cast<std::uint64_t>(r.hi) - r.lo + 1;
}

/// Mirrors translate.cpp over the chain; `has_trigger` adds one token and
/// makes the trigger the reset point, otherwise the (single-range) final
/// fragment is the reset.
PslCost estimate_chain(const std::vector<spec::Fragment>& chain,
                       bool has_trigger, bool with_after) {
  PslCost cost;

  std::vector<std::uint64_t> fragment_tokens(chain.size(), 0);
  std::uint64_t chain_tokens = 0;
  std::uint32_t max_hi = 1;
  std::uint64_t source_count = has_trigger ? 1 : 0;
  for (std::size_t f = 0; f < chain.size(); ++f) {
    for (const auto& r : chain[f].ranges) {
      fragment_tokens[f] += width(r);
      max_hi = std::max(max_hi, r.hi);
      ++source_count;
    }
    chain_tokens += fragment_tokens[f];
  }
  const std::uint64_t total_tokens = chain_tokens + (has_trigger ? 1 : 0);
  cost.tokens = total_tokens;

  const std::size_t reset_fragment = has_trigger ? chain.size() : chain.size() - 1;
  const std::uint64_t reset_width =
      has_trigger ? 1 : width(chain.back().ranges.front());
  const std::uint64_t reset_dis = 2 * reset_width - 1;

  auto add = [&](std::uint64_t count, std::uint64_t size,
                 std::uint64_t bits) {
    cost.clauses += count;
    cost.ops_per_token += count * size;
    cost.clause_bits += count * bits;
  };

  // Asynch: C(N, 2) mutex clauses of size 5 (G, !, &&, atom, atom).
  add(total_tokens * (total_tokens - 1) / 2, 5, 1);

  for (std::size_t f = 0; f < chain.size(); ++f) {
    for (const auto& r : chain[f].ranges) {
      const std::uint64_t w = width(r);
      // MaxOne: one per token, G(a -> X(!a U! reset)).
      add(w, 7 + reset_dis, 3);
      // Range: ordered pairs within the range, G(a -> (!b U! reset)).
      add(w * (w - 1), 6 + reset_dis, 2);
      // Before/After per-range groups for ∧-fragments.
      if (f != reset_fragment && chain[f].join == spec::Join::Conj) {
        const std::uint64_t group = 2 * w - 1;
        add(1, 2 + reset_dis + group, 1);  // Before
        if (with_after) add(1, 5 + 2 * reset_dis + group, 3);
      }
    }
    // Before/After whole-fragment groups for ∨-fragments.
    if (f != reset_fragment && chain[f].join == spec::Join::Disj) {
      const std::uint64_t group = 2 * fragment_tokens[f] - 1;
      add(1, 2 + reset_dis + group, 1);
      if (with_after) add(1, 5 + 2 * reset_dis + group, 3);
    }
  }

  // Order: adjacent-fragment token products.
  for (std::size_t f = 1; f < chain.size(); ++f) {
    add(fragment_tokens[f] * fragment_tokens[f - 1], 6 + reset_dis, 2);
  }

  // Lexer (Δ): counter sized by the largest bound, current-source register,
  // emitted flag; ~5 primitive operations per source event.
  cost.lexer_bits = mon::bits_for_value(max_hi) +
                    mon::bits_for_value(source_count) + 1;
  cost.lexer_ops = 5;
  return cost;
}

}  // namespace

PslCost estimate(const spec::Antecedent& a) {
  return estimate_chain(a.pattern.fragments, /*has_trigger=*/true,
                        /*with_after=*/a.repeated);
}

PslCost estimate(const spec::TimedImplication& t) {
  std::vector<spec::Fragment> chain = t.antecedent.fragments;
  chain.insert(chain.end(), t.consequent.fragments.begin(),
               t.consequent.fragments.end());
  PslCost cost =
      estimate_chain(chain, /*has_trigger=*/false, /*with_after=*/true);
  // sc_time start/stop + armed/q_done + one completion bit per range
  // (mirrors ClauseMonitor::space_bits).
  std::uint64_t ranges = 0;
  for (const auto& f : chain) ranges += f.ranges.size();
  cost.timed_bits = 2 * 64 + 2 + ranges;
  return cost;
}

PslCost estimate(const spec::Property& p) {
  if (p.is_antecedent()) return estimate(p.antecedent());
  return estimate(p.timed());
}

}  // namespace loom::psl

// Analytic cost model of the ViaPSL monitors.
//
// Computes, without materializing the encoding, exactly the clause count,
// per-token operation count and state bits that translate.cpp +
// clause_monitor.cpp would produce.  Needed for the paper's Figure 6 rows
// with ranges like [100, 60000], whose encodings have ~10^9 conjuncts and
// cannot be built; validated against materialized encodings on small
// instances (tests/psl_cost_test.cpp).
#pragma once

#include <cstdint>

#include "spec/ast.hpp"

namespace loom::psl {

struct PslCost {
  std::uint64_t tokens = 0;         // unfolded vocabulary size
  std::uint64_t clauses = 0;        // conjuncts of the encoding
  std::uint64_t ops_per_token = 0;  // Σ clause formula sizes ([14] work)
  std::uint64_t clause_bits = 0;    // Σ clause temporal operators
  std::uint64_t lexer_bits = 0;     // Δ: run-length lexer state
  std::uint64_t lexer_ops = 0;      // Δ: lexer work per source event
  std::uint64_t timed_bits = 0;     // sc_time start/stop + flags (timed only)

  std::uint64_t total_bits() const {
    return clause_bits + lexer_bits + timed_bits + 2;
  }
};

PslCost estimate(const spec::Antecedent& a);
PslCost estimate(const spec::TimedImplication& t);
PslCost estimate(const spec::Property& p);

}  // namespace loom::psl

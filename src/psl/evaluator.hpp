// Finite-trace LTL evaluator (ground truth for the clause automata).
//
// Evaluates a formula on a complete finite token word with the *strong*
// reading: X φ is false at the last position, and φ U! ψ requires ψ to
// occur within the word.  This replaces the paper's SPOT validation: the
// clause automata of clause_monitor.cpp are checked against this evaluator
// on exhaustive small words, and the full encodings are checked against the
// Drct monitors and the declarative reference on random traces.
#pragma once

#include <vector>

#include "psl/formula.hpp"

namespace loom::psl {

/// Truth of `f` at position `pos` of `word` (one token per step).
bool eval_at(const FormulaPtr& f, const std::vector<spec::Name>& word,
             std::size_t pos);

/// Truth at the first position; true for the empty word only for formulas
/// that are vacuously true (G over anything, etc.).
bool eval(const FormulaPtr& f, const std::vector<spec::Name>& word);

}  // namespace loom::psl

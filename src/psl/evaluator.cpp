#include "psl/evaluator.hpp"

namespace loom::psl {

bool eval_at(const FormulaPtr& f, const std::vector<spec::Name>& word,
             std::size_t pos) {
  switch (f->op) {
    case Op::True:
      return true;
    case Op::False:
      return false;
    case Op::Atom:
      return pos < word.size() && word[pos] == f->atom;
    case Op::Not:
      return !eval_at(f->lhs, word, pos);
    case Op::And:
      return eval_at(f->lhs, word, pos) && eval_at(f->rhs, word, pos);
    case Op::Or:
      return eval_at(f->lhs, word, pos) || eval_at(f->rhs, word, pos);
    case Op::Implies:
      return !eval_at(f->lhs, word, pos) || eval_at(f->rhs, word, pos);
    case Op::Next:
      return pos + 1 < word.size() && eval_at(f->lhs, word, pos + 1);
    case Op::Until:
      for (std::size_t k = pos; k < word.size(); ++k) {
        if (eval_at(f->rhs, word, k)) return true;
        if (!eval_at(f->lhs, word, k)) return false;
      }
      return false;  // strong until: ψ must occur
    case Op::Always:
      for (std::size_t k = pos; k < word.size(); ++k) {
        if (!eval_at(f->lhs, word, k)) return false;
      }
      return true;
    case Op::Eventually:
      for (std::size_t k = pos; k < word.size(); ++k) {
        if (eval_at(f->lhs, word, k)) return true;
      }
      return false;
  }
  return false;
}

bool eval(const FormulaPtr& f, const std::vector<spec::Name>& word) {
  return eval_at(f, word, 0);
}

}  // namespace loom::psl

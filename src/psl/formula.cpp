#include "psl/formula.hpp"

namespace loom::psl {
namespace {

FormulaPtr make(Op op, FormulaPtr lhs = nullptr, FormulaPtr rhs = nullptr) {
  auto f = std::make_shared<Formula>();
  f->op = op;
  f->lhs = std::move(lhs);
  f->rhs = std::move(rhs);
  return f;
}

}  // namespace

FormulaPtr f_true() {
  static const FormulaPtr t = make(Op::True);
  return t;
}

FormulaPtr f_false() {
  static const FormulaPtr f = make(Op::False);
  return f;
}

FormulaPtr f_atom(spec::Name token) {
  auto f = std::make_shared<Formula>();
  f->op = Op::Atom;
  f->atom = token;
  return f;
}

FormulaPtr f_not(FormulaPtr a) { return make(Op::Not, std::move(a)); }
FormulaPtr f_and(FormulaPtr a, FormulaPtr b) {
  return make(Op::And, std::move(a), std::move(b));
}
FormulaPtr f_or(FormulaPtr a, FormulaPtr b) {
  return make(Op::Or, std::move(a), std::move(b));
}
FormulaPtr f_implies(FormulaPtr a, FormulaPtr b) {
  return make(Op::Implies, std::move(a), std::move(b));
}
FormulaPtr f_next(FormulaPtr a) { return make(Op::Next, std::move(a)); }
FormulaPtr f_until(FormulaPtr a, FormulaPtr b) {
  return make(Op::Until, std::move(a), std::move(b));
}
FormulaPtr f_always(FormulaPtr a) { return make(Op::Always, std::move(a)); }
FormulaPtr f_eventually(FormulaPtr a) {
  return make(Op::Eventually, std::move(a));
}

FormulaPtr f_any_of(const std::vector<spec::Name>& tokens) {
  if (tokens.empty()) return f_false();
  FormulaPtr out = f_atom(tokens.front());
  for (std::size_t i = 1; i < tokens.size(); ++i) {
    out = f_or(std::move(out), f_atom(tokens[i]));
  }
  return out;
}

std::size_t size(const FormulaPtr& f) {
  if (!f) return 0;
  return 1 + size(f->lhs) + size(f->rhs);
}

std::size_t temporal_size(const FormulaPtr& f) {
  if (!f) return 0;
  const std::size_t self =
      f->op == Op::Next || f->op == Op::Until || f->op == Op::Always ||
              f->op == Op::Eventually
          ? 1
          : 0;
  return self + temporal_size(f->lhs) + temporal_size(f->rhs);
}

std::string to_string(const FormulaPtr& f,
                      const std::vector<std::string>& token_texts) {
  if (!f) return "?";
  switch (f->op) {
    case Op::True: return "true";
    case Op::False: return "false";
    case Op::Atom:
      return f->atom < token_texts.size() ? token_texts[f->atom]
                                          : "tok" + std::to_string(f->atom);
    case Op::Not: return "!" + to_string(f->lhs, token_texts);
    case Op::And:
      return "(" + to_string(f->lhs, token_texts) + " && " +
             to_string(f->rhs, token_texts) + ")";
    case Op::Or:
      return "(" + to_string(f->lhs, token_texts) + " || " +
             to_string(f->rhs, token_texts) + ")";
    case Op::Implies:
      return "(" + to_string(f->lhs, token_texts) + " -> " +
             to_string(f->rhs, token_texts) + ")";
    case Op::Next: return "next(" + to_string(f->lhs, token_texts) + ")";
    case Op::Until:
      return "(" + to_string(f->lhs, token_texts) + " until! " +
             to_string(f->rhs, token_texts) + ")";
    case Op::Always: return "always(" + to_string(f->lhs, token_texts) + ")";
    case Op::Eventually:
      return "eventually(" + to_string(f->lhs, token_texts) + ")";
  }
  return "?";
}

}  // namespace loom::psl

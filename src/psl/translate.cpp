#include "psl/translate.hpp"

namespace loom::psl {

const char* to_string(ClauseKind k) {
  switch (k) {
    case ClauseKind::Mutex: return "asynch";
    case ClauseKind::MaxOne: return "max-one";
    case ClauseKind::Range: return "range";
    case ClauseKind::Order: return "order";
    case ClauseKind::Before: return "before";
    case ClauseKind::After: return "after";
  }
  return "?";
}

spec::Name TokenVocab::add_source(spec::Name source, std::uint32_t lo,
                                  std::uint32_t hi, std::size_t fragment,
                                  const std::string& text) {
  SourceRange sr;
  sr.source = source;
  sr.lo = lo;
  sr.hi = hi;
  sr.fragment = fragment;
  sr.first_token = static_cast<spec::Name>(texts_.size());
  by_source_.emplace(source, sources_.size());
  sources_.push_back(sr);
  if (lo == 1 && hi == 1) {
    texts_.push_back(text);
  } else {
    for (std::uint32_t k = lo; k <= hi; ++k) {
      texts_.push_back(text + "#" + std::to_string(k));
    }
  }
  return sr.first_token;
}

spec::Name TokenVocab::token_for(spec::Name source,
                                 std::uint32_t count) const {
  auto it = by_source_.find(source);
  if (it == by_source_.end()) return spec::kInvalidName;
  const SourceRange& sr = sources_[it->second];
  if (count < sr.lo || count > sr.hi) return spec::kInvalidName;
  return sr.first_token + (count - sr.lo);
}

std::vector<spec::Name> TokenVocab::tokens_of(const SourceRange& sr) const {
  std::vector<spec::Name> out;
  for (std::uint32_t k = sr.lo; k <= sr.hi; ++k) {
    out.push_back(sr.first_token + (k - sr.lo));
  }
  return out;
}

std::uint64_t Encoding::ops_per_token() const {
  std::uint64_t total = 0;
  for (const auto& c : clauses) total += c.cost_ops;
  return total;
}

std::uint64_t Encoding::clause_bits() const {
  std::uint64_t total = 0;
  for (const auto& c : clauses) total += c.cost_bits;
  return total;
}

namespace {

spec::NameSet set_of(const std::vector<spec::Name>& tokens) {
  spec::NameSet s;
  for (auto t : tokens) s.set(t);
  return s;
}

/// Shared construction over a fragment chain.  `trigger` is kInvalidName
/// for timed chains (the final fragment then acts as the reset point).
Encoding build_chain(const std::vector<spec::Fragment>& chain,
                     spec::Name trigger, bool with_after,
                     bool retire_on_reset, std::size_t max_clauses,
                     const spec::Alphabet* ab) {
  const auto text_of = [ab](spec::Name name) {
    return ab != nullptr ? ab->text(name) : "n" + std::to_string(name);
  };
  Encoding enc;
  enc.retire_on_reset = retire_on_reset;

  const bool has_trigger = trigger != spec::kInvalidName;
  // The reset group: the trigger, or the single range of the last fragment.
  const std::size_t reset_fragment =
      has_trigger ? SourceRange::npos : chain.size() - 1;
  if (!has_trigger && chain.back().ranges.size() != 1) {
    throw std::invalid_argument(
        "ViaPSL encoding requires a single-range final fragment as the "
        "reset point of a timed chain");
  }

  // 1. Unfold ranges into tokens.
  for (std::size_t f = 0; f < chain.size(); ++f) {
    Encoding::FragmentTokens ft;
    ft.join = chain[f].join;
    for (const auto& r : chain[f].ranges) {
      enc.vocab.add_source(r.name, r.lo, r.hi, f, text_of(r.name));
      ft.per_range.push_back(
          set_of(enc.vocab.tokens_of(enc.vocab.sources().back())));
    }
    enc.fragments.push_back(std::move(ft));
  }
  if (has_trigger) {
    enc.vocab.add_source(trigger, 1, 1, SourceRange::npos, text_of(trigger));
  }

  // Reset token set and its disjunction width.
  std::vector<spec::Name> reset_tokens;
  if (has_trigger) {
    reset_tokens.push_back(enc.vocab.source_info(trigger).first_token);
  } else {
    reset_tokens = enc.vocab.tokens_of(
        enc.vocab.source_info(chain.back().ranges.front().name));
  }
  enc.reset_tokens = set_of(reset_tokens);
  const FormulaPtr reset_dis = f_any_of(reset_tokens);

  auto add_clause = [&](Clause c) {
    if (enc.clauses.size() >= max_clauses) {
      throw std::length_error(
          "ViaPSL encoding exceeds the clause limit; use the analytic cost "
          "model (psl/cost_model.hpp)");
    }
    c.cost_ops = size(c.formula);
    c.cost_bits = temporal_size(c.formula);
    enc.clauses.push_back(std::move(c));
  };

  const std::size_t total_tokens = enc.vocab.token_count();

  // 2. Asynch: mutual exclusion of every pair of tokens.
  for (spec::Name a = 0; a < total_tokens; ++a) {
    for (spec::Name b = a + 1; b < total_tokens; ++b) {
      if (enc.clauses.size() + (total_tokens - b) > max_clauses) {
        throw std::length_error("ViaPSL encoding exceeds the clause limit");
      }
      Clause c;
      c.kind = ClauseKind::Mutex;
      c.formula = f_always(f_not(f_and(f_atom(a), f_atom(b))));
      add_clause(std::move(c));
    }
  }

  // Token lists per chain range (skipping the reset fragment of a timed
  // chain, whose tokens *are* the reset point).
  for (const auto& sr : enc.vocab.sources()) {
    if (sr.fragment == SourceRange::npos) continue;  // the trigger
    const bool is_reset_range = sr.fragment == reset_fragment;
    const auto tokens = enc.vocab.tokens_of(sr);

    // 3. MaxOne per token (also for the reset range: a block may not repeat
    //    within a round).
    for (auto a : tokens) {
      Clause c;
      c.kind = ClauseKind::MaxOne;
      c.arm.set(a);
      c.forbid.set(a);
      c.disarm = enc.reset_tokens;
      c.formula = f_always(
          f_implies(f_atom(a), f_next(f_until(f_not(f_atom(a)), reset_dis))));
      add_clause(std::move(c));
    }

    // 4. Range: at most one token per range before the reset point.
    for (auto a : tokens) {
      for (auto b : tokens) {
        if (a == b) continue;
        Clause c;
        c.kind = ClauseKind::Range;
        c.arm.set(a);
        c.forbid.set(b);
        c.disarm = enc.reset_tokens;
        c.formula = f_always(
            f_implies(f_atom(a), f_until(f_not(f_atom(b)), reset_dis)));
        add_clause(std::move(c));
      }
    }

    // 5/6. BeforeI / AfterI groups: one per range of a ∧-fragment, one per
    // ∨-fragment (built after the loop for ∨, below), not for the reset
    // fragment.
    if (!is_reset_range && chain[sr.fragment].join == spec::Join::Conj) {
      const FormulaPtr group = f_any_of(tokens);
      Clause before;
      before.kind = ClauseKind::Before;
      before.initially_armed = true;
      before.forbid = enc.reset_tokens;
      before.disarm = set_of(tokens);
      before.formula = f_until(f_not(reset_dis), group);
      add_clause(std::move(before));
      if (with_after) {
        Clause after;
        after.kind = ClauseKind::After;
        after.arm = enc.reset_tokens;
        after.forbid = enc.reset_tokens;
        after.disarm = set_of(tokens);
        after.formula = f_always(f_implies(
            reset_dis, f_next(f_until(f_not(reset_dis), group))));
        add_clause(std::move(after));
      }
    }
  }

  // 5/6 continued: whole-fragment groups for ∨-fragments.
  for (std::size_t f = 0; f < chain.size(); ++f) {
    if (f == reset_fragment) continue;
    if (chain[f].join != spec::Join::Disj) continue;
    std::vector<spec::Name> tokens;
    for (const auto& r : chain[f].ranges) {
      for (auto t : enc.vocab.tokens_of(enc.vocab.source_info(r.name))) {
        tokens.push_back(t);
      }
    }
    const FormulaPtr group = f_any_of(tokens);
    Clause before;
    before.kind = ClauseKind::Before;
    before.initially_armed = true;
    before.forbid = enc.reset_tokens;
    before.disarm = set_of(tokens);
    before.formula = f_until(f_not(reset_dis), group);
    add_clause(std::move(before));
    if (with_after) {
      Clause after;
      after.kind = ClauseKind::After;
      after.arm = enc.reset_tokens;
      after.forbid = enc.reset_tokens;
      after.disarm = set_of(tokens);
      after.formula = f_always(
          f_implies(reset_dis, f_next(f_until(f_not(reset_dis), group))));
      add_clause(std::move(after));
    }
  }

  // 7. Order: adjacent-fragment exclusion.
  for (std::size_t f = 1; f < chain.size(); ++f) {
    std::vector<spec::Name> cur, prev;
    for (const auto& r : chain[f].ranges) {
      for (auto t : enc.vocab.tokens_of(enc.vocab.source_info(r.name))) {
        cur.push_back(t);
      }
    }
    for (const auto& r : chain[f - 1].ranges) {
      for (auto t : enc.vocab.tokens_of(enc.vocab.source_info(r.name))) {
        prev.push_back(t);
      }
    }
    if (enc.clauses.size() + cur.size() * prev.size() > max_clauses) {
      throw std::length_error("ViaPSL encoding exceeds the clause limit");
    }
    for (auto a : cur) {
      for (auto b : prev) {
        Clause c;
        c.kind = ClauseKind::Order;
        c.arm.set(a);
        c.forbid.set(b);
        c.disarm = enc.reset_tokens;
        c.formula = f_always(
            f_implies(f_atom(a), f_until(f_not(f_atom(b)), reset_dis)));
        add_clause(std::move(c));
      }
    }
  }

  return enc;
}

}  // namespace

Encoding encode(const spec::Antecedent& a, std::size_t max_clauses,
                const spec::Alphabet* ab) {
  Encoding enc = build_chain(a.pattern.fragments, a.trigger,
                             /*with_after=*/a.repeated,
                             /*retire_on_reset=*/!a.repeated, max_clauses, ab);
  return enc;
}

Encoding encode(const spec::TimedImplication& t, std::size_t max_clauses,
                const spec::Alphabet* ab) {
  std::vector<spec::Fragment> chain = t.antecedent.fragments;
  chain.insert(chain.end(), t.consequent.fragments.begin(),
               t.consequent.fragments.end());
  Encoding enc = build_chain(chain, spec::kInvalidName, /*with_after=*/true,
                             /*retire_on_reset=*/false, max_clauses, ab);
  enc.timed = true;
  enc.bound = t.bound;
  enc.p_fragment_count = t.antecedent.fragments.size();
  return enc;
}

Encoding encode(const spec::Property& p, std::size_t max_clauses,
                const spec::Alphabet* ab) {
  if (p.is_antecedent()) return encode(p.antecedent(), max_clauses, ab);
  return encode(p.timed(), max_clauses, ab);
}

bool encodable(const spec::Property& p) {
  // Mirror of the one shape refusal above: a timed chain (no trigger)
  // needs a single-range final fragment as its reset point.  Antecedents
  // always have their trigger as the reset point.  encode() inspects the
  // back of the concatenated antecedent ++ consequent chain, so judge the
  // same fragment — and an empty chain (never produced by the parser, but
  // representable) has no reset point at all.
  if (p.is_antecedent()) return true;
  const spec::TimedImplication& t = p.timed();
  const std::vector<spec::Fragment>& tail_side =
      !t.consequent.fragments.empty() ? t.consequent.fragments
                                      : t.antecedent.fragments;
  if (tail_side.empty()) return false;
  return tail_side.back().ranges.size() == 1;
}

}  // namespace loom::psl

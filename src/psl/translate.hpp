// Translation of loose-ordering patterns into PSL (paper §5) and into the
// clause structure executed by the ViaPSL monitors.
//
// Range unfolding: every range n[u,v] is replaced by the fresh names
// n#u .. n#v ("tokens"); a run-length lexer (rle_lexer.*) rewrites the
// event stream into tokens, at the cost the paper calls Δ.  The encoding of
// an antecedent requirement A = (P << i, b) is the conjunction of:
//
//   Asynch   G !(nx && ny)                 all pairs of distinct tokens
//   MaxOne   G (nx -> X(!nx U! i))         every token of P
//   Range    G (nx -> (!ny U! i))          ordered pairs within one range
//   Order    G (nx -> (!my U! i))          nx in F_k, my in F_(k-1)
//   BeforeI  (!i U! (nx1 || ... || nxk))   one per range (per ∨-fragment:
//                                          one clause over the fragment)
//   AfterI   G (i -> X(!i U! (nx1||...)))  same groups; only when b = true
//
// For a timed implication (P => Q, t) the chain P ++ Q is encoded the same
// way with the tokens of Q's final fragment playing the role of i (the
// paper's "end of Q as reset point"); the final fragment must then hold a
// single range.  The real-time bound is checked outside PSL with the same
// start/stop time variables as the Drct monitor, at token granularity.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <vector>

#include "psl/formula.hpp"
#include "sim/time.hpp"
#include "spec/ast.hpp"

namespace loom::psl {

/// One source interface name with its unfolded token interval.
struct SourceRange {
  spec::Name source = spec::kInvalidName;
  std::uint32_t lo = 1;
  std::uint32_t hi = 1;
  spec::Name first_token = 0;   // tokens first_token .. first_token+(hi-lo)
  std::size_t fragment = npos;  // owning chain fragment; npos for triggers
  static constexpr std::size_t npos = static_cast<std::size_t>(-1);
};

/// Token vocabulary: dense ids for the unfolded names.
class TokenVocab {
 public:
  spec::Name add_source(spec::Name source, std::uint32_t lo, std::uint32_t hi,
                        std::size_t fragment, const std::string& text);

  std::size_t token_count() const { return texts_.size(); }
  const std::vector<std::string>& texts() const { return texts_; }
  const std::vector<SourceRange>& sources() const { return sources_; }

  bool has_source(spec::Name source) const {
    return by_source_.count(source) != 0;
  }
  const SourceRange& source_info(spec::Name source) const {
    return sources_[by_source_.at(source)];
  }

  /// Token for a block of `count` occurrences; kInvalidName if out of range.
  spec::Name token_for(spec::Name source, std::uint32_t count) const;

  /// All tokens of one source range.
  std::vector<spec::Name> tokens_of(const SourceRange& sr) const;

 private:
  std::vector<std::string> texts_;
  std::vector<SourceRange> sources_;
  std::unordered_map<spec::Name, std::size_t> by_source_;
};

enum class ClauseKind : std::uint8_t { Mutex, MaxOne, Range, Order, Before, After };

const char* to_string(ClauseKind k);

/// One conjunct of the encoding, together with the 1-bit automaton that
/// monitors it:  violated when an armed clause sees a forbidden token.
struct Clause {
  ClauseKind kind = ClauseKind::Mutex;
  spec::NameSet arm;
  spec::NameSet forbid;
  spec::NameSet disarm;
  bool initially_armed = false;
  FormulaPtr formula;
  std::size_t cost_ops = 0;   // size(formula): per-event work in [14]
  std::size_t cost_bits = 0;  // temporal_size(formula): registers in [14]
};

struct Encoding {
  TokenVocab vocab;
  std::vector<Clause> clauses;
  spec::NameSet reset_tokens;    // trigger tokens / Q-final tokens
  bool retire_on_reset = false;  // antecedent with b = false

  // Timed-implication bookkeeping (token-granular timing).
  bool timed = false;
  sim::Time bound;
  std::size_t p_fragment_count = 0;
  struct FragmentTokens {
    spec::Join join = spec::Join::Conj;
    std::vector<spec::NameSet> per_range;
  };
  std::vector<FragmentTokens> fragments;

  /// Per-event monitor work: every clause evaluates on every token ([14]).
  std::uint64_t ops_per_token() const;
  /// State bits of the clause network (excluding the lexer).
  std::uint64_t clause_bits() const;
};

/// Builds the encoding; throws std::length_error when more than
/// `max_clauses` conjuncts would be needed (use the analytic cost model
/// from cost_model.hpp instead) and std::invalid_argument for unsupported
/// shapes (timed chain whose final fragment has several ranges).  Passing
/// the alphabet gives human-readable token texts in printed formulas.
Encoding encode(const spec::Antecedent& a, std::size_t max_clauses = 2000000,
                const spec::Alphabet* ab = nullptr);
Encoding encode(const spec::TimedImplication& t,
                std::size_t max_clauses = 2000000,
                const spec::Alphabet* ab = nullptr);
Encoding encode(const spec::Property& p, std::size_t max_clauses = 2000000,
                const spec::Alphabet* ab = nullptr);

/// True when the property's *shape* has a ViaPSL encoding at all — the
/// same rule encode() enforces with std::invalid_argument, kept next to it
/// so feasibility gates (mon::CompiledProperty's Auto choice) can never
/// drift from the translator.  Size is judged separately, against the
/// analytic clause count of cost_model.hpp.
bool encodable(const spec::Property& p);

}  // namespace loom::psl

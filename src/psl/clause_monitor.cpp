#include "psl/clause_monitor.hpp"

#include <stdexcept>

#include "mon/snapshot.hpp"
#include "support/diagnostics.hpp"

namespace loom::psl {
namespace {
// Format tag (see mon/antecedent_monitor.cpp): kind-checks restore().
constexpr std::uint32_t kSnapshotKind = 0x434C4155;  // "CLAU"
}  // namespace

ClauseMonitor::ClauseMonitor(Encoding encoding)
    : ClauseMonitor(std::make_shared<const Encoding>(std::move(encoding))) {}

ClauseMonitor::ClauseMonitor(std::shared_ptr<const Encoding> encoding)
    : encoding_(std::move(encoding)),
      lexer_(encoding_->vocab, stats_),
      armed_(encoding_->clauses.size(), false) {
  for (std::size_t c = 0; c < encoding_->clauses.size(); ++c) {
    armed_[c] = encoding_->clauses[c].initially_armed;
  }
  range_seen_.resize(encoding_->fragments.size());
  for (std::size_t f = 0; f < encoding_->fragments.size(); ++f) {
    range_seen_[f].assign(encoding_->fragments[f].per_range.size(), false);
  }
}

void ClauseMonitor::violate(std::size_t ordinal, sim::Time time,
                            spec::Name name, std::string reason) {
  verdict_ = mon::Verdict::Violated;
  violation_ = mon::Violation{ordinal, time, name, std::move(reason)};
}

void ClauseMonitor::reset_round() {
  for (auto& f : range_seen_) f.assign(f.size(), false);
  armed_obligation_ = false;
  q_done_ = false;
  in_progress_ = false;
}

void ClauseMonitor::process_token(spec::Name token, sim::Time time,
                                  std::size_t ordinal) {
  // [14] accounting: the whole clause network re-evaluates on every token.
  stats_.add(encoding_->ops_per_token());

  for (std::size_t c = 0; c < encoding_->clauses.size(); ++c) {
    const Clause& clause = encoding_->clauses[c];
    if (armed_[c] && clause.forbid.test(token)) {
      violate(ordinal, time, token,
              std::string("PSL conjunct violated (") + to_string(clause.kind) +
                  "): " + to_string(clause.formula, encoding_->vocab.texts()));
      return;
    }
    if (clause.arm.test(token)) armed_[c] = true;
    if (clause.disarm.test(token)) armed_[c] = false;
  }

  // Token-granular timing for timed implications.
  if (encoding_->timed) {
    // Locate the token's fragment/range.
    for (std::size_t f = 0; f < encoding_->fragments.size(); ++f) {
      const auto& ft = encoding_->fragments[f];
      for (std::size_t r = 0; r < ft.per_range.size(); ++r) {
        if (ft.per_range[r].test(token)) range_seen_[f][r] = true;
      }
    }
    auto fragment_done = [&](std::size_t f) {
      const auto& ft = encoding_->fragments[f];
      if (ft.join == spec::Join::Conj) {
        for (std::size_t r = 0; r < ft.per_range.size(); ++r) {
          if (!range_seen_[f][r]) return false;
        }
        return true;
      }
      for (std::size_t r = 0; r < ft.per_range.size(); ++r) {
        if (range_seen_[f][r]) return true;
      }
      return false;
    };
    if (!armed_obligation_) {
      bool p_done = true;
      for (std::size_t f = 0; f < encoding_->p_fragment_count; ++f) {
        p_done = p_done && fragment_done(f);
      }
      if (p_done) {
        armed_obligation_ = true;
        t_start_ = time;
      }
    }
    if (armed_obligation_ && !q_done_) {
      bool all_done = true;
      for (std::size_t f = 0; f < encoding_->fragments.size(); ++f) {
        all_done = all_done && fragment_done(f);
      }
      if (all_done) {
        q_done_ = true;
        if (time - t_start_ > encoding_->bound) {
          violate(ordinal, time, token,
                  "consequent finished after the deadline (took " +
                      (time - t_start_).to_string() + ", bound " +
                      encoding_->bound.to_string() + ")");
          return;
        }
      }
    }
  }

  if (encoding_->reset_tokens.test(token)) {
    if (encoding_->retire_on_reset) {
      verdict_ = mon::Verdict::Holds;
      return;
    }
    ++rounds_;
    reset_round();
  } else {
    in_progress_ = true;
  }
}

void ClauseMonitor::observe(spec::Name name, sim::Time time) {
  const auto before = stats_.begin_event();
  const std::size_t ordinal = ordinal_++;
  if (verdict_ == mon::Verdict::Violated ||
      verdict_ == mon::Verdict::Holds) {
    stats_.end_event(before);
    return;
  }
  stats_.add();  // alphabet filter
  if (!encoding_->vocab.has_source(name)) {
    stats_.end_event(before);
    return;
  }
  if (encoding_->timed && armed_obligation_ && !q_done_ &&
      time > t_start_ + encoding_->bound) {
    violate(ordinal, time, name,
            "deadline elapsed before the consequent finished");
    stats_.end_event(before);
    return;
  }
  token_buffer_.clear();
  const RleLexer::Result r = lexer_.step(name, token_buffer_);
  if (r.error) {
    violate(ordinal, time, name, "lexer: " + r.reason);
    stats_.end_event(before);
    return;
  }
  for (const auto token : token_buffer_) {
    process_token(token, time, ordinal);
    if (verdict_ == mon::Verdict::Violated ||
        verdict_ == mon::Verdict::Holds) {
      break;
    }
  }
  if (verdict_ != mon::Verdict::Violated && verdict_ != mon::Verdict::Holds) {
    verdict_ = in_progress_ || lexer_.block_open() ? mon::Verdict::Pending
                                                   : mon::Verdict::Monitoring;
  }
  stats_.end_event(before);
}

void ClauseMonitor::finish(sim::Time end_time) {
  if (verdict_ == mon::Verdict::Violated ||
      verdict_ == mon::Verdict::Holds) {
    return;
  }
  token_buffer_.clear();
  bool pending = false;
  (void)lexer_.finish(token_buffer_, pending);
  for (const auto token : token_buffer_) {
    process_token(token, end_time, ordinal_);
    if (verdict_ == mon::Verdict::Violated ||
        verdict_ == mon::Verdict::Holds) {
      return;
    }
  }
  if (encoding_->timed && armed_obligation_ && !q_done_ &&
      end_time > t_start_ + encoding_->bound) {
    violate(ordinal_, end_time, spec::kInvalidName,
            "observation ended after the deadline with the consequent "
            "unfinished");
    return;
  }
  if (encoding_->timed && q_done_) {
    verdict_ = mon::Verdict::Monitoring;
    return;
  }
  verdict_ = in_progress_ || pending ? mon::Verdict::Pending
                                     : mon::Verdict::Monitoring;
}

void ClauseMonitor::poll(sim::Time now) {
  if (verdict_ == mon::Verdict::Violated) return;
  if (encoding_->timed && armed_obligation_ && !q_done_ &&
      now > t_start_ + encoding_->bound) {
    violate(ordinal_, now, spec::kInvalidName,
            "deadline elapsed before the consequent finished (watchdog)");
  }
}

std::optional<sim::Time> ClauseMonitor::deadline() const {
  if (encoding_->timed && armed_obligation_ && !q_done_) {
    return t_start_ + encoding_->bound;
  }
  return std::nullopt;
}

std::size_t ClauseMonitor::space_bits() const {
  std::size_t bits = encoding_->clause_bits() + lexer_.space_bits() + 2;
  if (encoding_->timed) {
    // PSL cannot express the real-time bound: like the paper's §5(ii)
    // construction, the ViaPSL timed monitor carries the same two sc_time
    // variables plus armed/q_done flags and per-range completion bits.
    bits += 2 * 64 + 2;
    for (const auto& f : encoding_->fragments) bits += f.per_range.size();
  }
  return bits;
}

void ClauseMonitor::reset() {
  for (std::size_t c = 0; c < encoding_->clauses.size(); ++c) {
    armed_[c] = encoding_->clauses[c].initially_armed;
  }
  lexer_.reset();
  reset_round();
  verdict_ = mon::Verdict::Monitoring;
  violation_.reset();
  rounds_ = 0;
  ordinal_ = 0;
  stats_.reset();
}

void ClauseMonitor::snapshot(mon::Snapshot& out) const {
  out.clear();
  out.put_u64(mon::snapshot_tag(kSnapshotKind));
  stats_.snapshot(out);
  lexer_.snapshot(out);
  out.put_bits(armed_);
  out.put_u64(static_cast<std::uint64_t>(verdict_));
  mon::snapshot_violation(out, violation_);
  out.put_bool(in_progress_);
  out.put_u64(rounds_);
  out.put_u64(ordinal_);
  out.put_u64(range_seen_.size());
  for (const auto& f : range_seen_) out.put_bits(f);
  out.put_bool(armed_obligation_);
  out.put_bool(q_done_);
  out.put_time(t_start_);
}

void ClauseMonitor::restore(const mon::Snapshot& in) {
  mon::SnapshotReader r(in);
  mon::check_snapshot_tag(r.u64(), kSnapshotKind, "ClauseMonitor::restore");
  stats_.restore(r);
  lexer_.restore(r);
  r.bits_into(armed_);
  verdict_ = static_cast<mon::Verdict>(r.u64());
  mon::restore_violation(r, violation_);
  in_progress_ = r.boolean();
  rounds_ = r.u64();
  ordinal_ = static_cast<std::size_t>(r.u64());
  const std::size_t fragments = static_cast<std::size_t>(r.u64());
  if (fragments != range_seen_.size()) {
    throw std::logic_error(
        "ClauseMonitor::restore: snapshot of a different clause set");
  }
  for (auto& f : range_seen_) r.bits_into(f);
  armed_obligation_ = r.boolean();
  q_done_ = r.boolean();
  t_start_ = r.time();
  LOOM_DASSERT(r.exhausted());  // format drift: snapshot wrote more fields
}

}  // namespace loom::psl

#include "psl/rle_lexer.hpp"

#include "mon/snapshot.hpp"

namespace loom::psl {

void RleLexer::snapshot(mon::Snapshot& out) const {
  out.put_u64(current_);
  out.put_u64(count_);
  out.put_bool(emitted_);
}

void RleLexer::restore(mon::SnapshotReader& in) {
  current_ = static_cast<spec::Name>(in.u64());
  count_ = static_cast<std::uint32_t>(in.u64());
  emitted_ = in.boolean();
}

RleLexer::RleLexer(const TokenVocab& vocab, mon::MonitorStats& stats)
    : vocab_(&vocab), stats_(&stats) {}

void RleLexer::reset() {
  current_ = spec::kInvalidName;
  count_ = 0;
  emitted_ = false;
}

RleLexer::Result RleLexer::step(spec::Name source,
                                std::vector<spec::Name>& out) {
  stats_->add(2);  // current-name comparison + counter update
  if (source == current_) {
    const SourceRange& sr = vocab_->source_info(source);
    ++count_;
    stats_->add();  // upper-bound comparison
    if (count_ > sr.hi) {
      return {true, "block of '" + std::to_string(source) + "' exceeds v=" +
                        std::to_string(sr.hi)};
    }
    if (count_ == sr.hi && !emitted_) {
      stats_->add();
      out.push_back(vocab_->token_for(source, count_));
      emitted_ = true;
    }
    return {};
  }
  // Boundary: close the previous block first.
  if (current_ != spec::kInvalidName && !emitted_) {
    const SourceRange& prev = vocab_->source_info(current_);
    stats_->add();  // lower-bound comparison
    if (count_ < prev.lo) {
      return {true, "block of '" + std::to_string(current_) +
                        "' ended after " + std::to_string(count_) +
                        " occurrences, below u=" + std::to_string(prev.lo)};
    }
    out.push_back(vocab_->token_for(current_, count_));
  }
  const SourceRange& sr = vocab_->source_info(source);
  current_ = source;
  count_ = 1;
  emitted_ = false;
  stats_->add();
  if (sr.hi == 1) {
    out.push_back(sr.first_token);
    emitted_ = true;
  }
  return {};
}

RleLexer::Result RleLexer::finish(std::vector<spec::Name>& out,
                                  bool& pending) {
  pending = false;
  if (current_ == spec::kInvalidName || emitted_) return {};
  const SourceRange& sr = vocab_->source_info(current_);
  if (count_ < sr.lo) {
    pending = true;  // unfinished block: weakly acceptable
    return {};
  }
  out.push_back(vocab_->token_for(current_, count_));
  emitted_ = true;
  return {};
}

std::size_t RleLexer::space_bits() const {
  std::uint32_t max_hi = 1;
  for (const auto& sr : vocab_->sources()) max_hi = std::max(max_hi, sr.hi);
  return mon::bits_for_value(max_hi) +
         mon::bits_for_value(vocab_->sources().size()) + 1;
}

}  // namespace loom::psl

// Well-formedness of loose-ordering properties (paper Fig. 3, right column).
//
// Checks, per property:
//  - every ordering has at least one fragment, every fragment one range;
//  - range bounds satisfy 1 <= u <= v;
//  - range names within a fragment are pairwise distinct;
//  - fragment alphabets within an ordering are pairwise disjoint;
//  - antecedent: the trigger i does not occur in α(P), and i is an input
//    when its direction is known;
//  - timed implication: α(P) and α(Q) are disjoint (they form one chain),
//    and α(Q) contains only outputs when directions are known.
#pragma once

#include "spec/ast.hpp"
#include "support/diagnostics.hpp"

namespace loom::spec {

bool check_wellformed(const Property& p, const Alphabet& ab,
                      support::DiagnosticSink& sink);
bool check_wellformed(const Antecedent& a, const Alphabet& ab,
                      support::DiagnosticSink& sink);
bool check_wellformed(const TimedImplication& t, const Alphabet& ab,
                      support::DiagnosticSink& sink);
/// Checks an ordering in isolation (constraints 1-4 above).
bool check_wellformed(const LooseOrdering& l, const Alphabet& ab,
                      support::DiagnosticSink& sink);

}  // namespace loom::spec

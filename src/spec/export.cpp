#include "spec/export.hpp"

namespace loom::spec {
namespace {

std::string escape(const std::string& s) {
  std::string out;
  for (const char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  return out;
}

void emit_plan_tree(const OrderingPlan& plan, const Alphabet& ab,
                    const std::string& root_label, std::string& out) {
  out += "digraph property {\n";
  out += "  node [shape=box, fontname=\"monospace\"];\n";
  out += "  root [label=\"" + escape(root_label) + "\", style=bold];\n";
  for (std::size_t f = 0; f < plan.fragments.size(); ++f) {
    const FragmentPlan& fp = plan.fragments[f];
    const std::string fid = "f" + std::to_string(f);
    out += "  " + fid + " [label=\"F" + std::to_string(f + 1) + "  (" +
           (fp.join == Join::Conj ? "∧" : "∨") + ")\"];\n";
    out += "  root -> " + fid + ";\n";
    for (std::size_t r = 0; r < fp.ranges.size(); ++r) {
      const RangePlan& rp = fp.ranges[r];
      const std::string rid = fid + "r" + std::to_string(r);
      std::string label = ab.text(rp.name) + "[" + std::to_string(rp.lo) +
                          "," + std::to_string(rp.hi) + "]";
      label += "\\ns=" + std::string(rp.parent_join == Join::Conj ? "∧" : "∨");
      label += "  B=" + ab.render(rp.before);
      label += "\\nC=" + ab.render(rp.siblings);
      label += "  Ac=" + ab.render(rp.accept);
      label += "\\nAf=" + ab.render(rp.after);
      out += "  " + rid + " [label=\"" + escape(label) + "\"];\n";
      out += "  " + fid + " -> " + rid + ";\n";
    }
    if (f + 1 < plan.fragments.size()) {
      out += "  f" + std::to_string(f) + " -> f" + std::to_string(f + 1) +
             " [style=dashed, constraint=false, label=\"<\"];\n";
    }
  }
  out += "}\n";
}

}  // namespace

std::string to_dot(const Property& p, const Alphabet& ab) {
  std::string out;
  if (p.is_antecedent()) {
    emit_plan_tree(plan_antecedent(p.antecedent()), ab,
                   to_string(p.antecedent(), ab), out);
  } else {
    emit_plan_tree(plan_timed(p.timed()), ab, to_string(p.timed(), ab), out);
  }
  return out;
}

std::string range_automaton_dot(const RangePlan& plan, const Alphabet& ab) {
  const std::string n = ab.text(plan.name);
  const std::string c = ab.render(plan.siblings);
  const std::string ac = ab.render(plan.accept);
  const std::string bad = ab.render(plan.before | plan.after);
  const std::string u = std::to_string(plan.lo), v = std::to_string(plan.hi);
  const bool disj = plan.parent_join == Join::Disj;

  std::string out = "digraph range_recognizer {\n";
  out += "  rankdir=LR;\n  node [shape=circle, fontname=\"monospace\"];\n";
  out += "  label=\"recognizer for " + escape(n) + "[" + u + "," + v +
         "]  (s=" + (disj ? "∨" : "∧") + ")\";\n";
  out += "  s5 [shape=doublecircle, label=\"s5\\nerr\"];\n";
  for (const char* s : {"s0", "s1", "s2", "s3", "s4"}) {
    out += std::string("  ") + s + ";\n";
  }
  auto edge = [&](const char* from, const char* to, const std::string& lbl) {
    out += std::string("  ") + from + " -> " + to + " [label=\"" +
           escape(lbl) + "\"];\n";
  };
  edge("s0", "s1", "start");
  edge("s1", "s3", n + " /cpt=1");
  edge("s1", "s2", "C " + c);
  edge("s1", "s5", "Ac " + ac + " | B∪Af " + bad);
  edge("s2", "s3", n + " /cpt=1");
  edge("s2", "s2", "C " + c);
  edge("s2", disj ? "s0" : "s5",
       "Ac " + ac + (disj ? " /nok" : " /err (∧)"));
  edge("s2", "s5", "B∪Af " + bad);
  edge("s3", "s3", n + " [cpt<" + v + "] /cpt+=1");
  edge("s3", "s5", n + " [cpt=" + v + "]");
  edge("s3", "s4", "C [cpt>=" + u + "]");
  edge("s3", "s0", "Ac [cpt>=" + u + "] /ok");
  edge("s3", "s5", "Ac|C [cpt<" + u + "] | B∪Af");
  edge("s4", "s4", "C");
  edge("s4", "s0", "Ac /ok");
  edge("s4", "s5", n + " | B∪Af");
  out += "}\n";
  return out;
}

}  // namespace loom::spec

// Graphviz exporters: visualize a property's attributed syntax tree (the
// paper's Fig. 4) and a range recognizer instance (the paper's Fig. 5)
// with its concrete recognition context.
//
//   dot -Tsvg property.dot -o property.svg
#pragma once

#include <string>

#include "spec/ast.hpp"
#include "spec/attributes.hpp"

namespace loom::spec {

/// The syntax tree of a property, each range node annotated with its
/// inherited attributes (s, B, C, Ac, Af) — the paper's Fig. 4.
std::string to_dot(const Property& p, const Alphabet& ab);

/// One elementary range recognizer (the paper's Fig. 5 automaton) with the
/// concrete sets of `plan` substituted into the transition labels.
std::string range_automaton_dot(const RangePlan& plan, const Alphabet& ab);

}  // namespace loom::spec

#include "spec/lexer.hpp"

#include <cctype>

namespace loom::spec {

const char* to_string(TokenKind kind) {
  switch (kind) {
    case TokenKind::Ident: return "identifier";
    case TokenKind::Nat: return "number";
    case TokenKind::LParen: return "'('";
    case TokenKind::RParen: return "')'";
    case TokenKind::LBrace: return "'{'";
    case TokenKind::RBrace: return "'}'";
    case TokenKind::LBracket: return "'['";
    case TokenKind::RBracket: return "']'";
    case TokenKind::Comma: return "','";
    case TokenKind::Less: return "'<'";
    case TokenKind::LessLess: return "'<<'";
    case TokenKind::Implies: return "'=>'";
    case TokenKind::Amp: return "'&'";
    case TokenKind::Pipe: return "'|'";
    case TokenKind::End: return "end of input";
    case TokenKind::Invalid: return "invalid token";
  }
  return "?";
}

std::vector<Token> tokenize(std::string_view source,
                            support::DiagnosticSink& sink) {
  std::vector<Token> tokens;
  support::SourcePos pos;
  std::size_t i = 0;

  auto advance = [&](std::size_t n) {
    for (std::size_t k = 0; k < n; ++k) {
      if (i < source.size() && source[i] == '\n') {
        ++pos.line;
        pos.column = 1;
      } else {
        ++pos.column;
      }
      ++i;
    }
  };
  auto push = [&](TokenKind kind, std::size_t start, std::size_t len,
                  std::uint64_t value = 0) {
    tokens.push_back({kind, source.substr(start, len), value, pos});
    advance(len);
  };

  while (i < source.size()) {
    const char c = source[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      advance(1);
      continue;
    }
    if (c == '#') {  // comment to end of line
      while (i < source.size() && source[i] != '\n') advance(1);
      continue;
    }
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      std::size_t len = 1;
      while (i + len < source.size() &&
             (std::isalnum(static_cast<unsigned char>(source[i + len])) ||
              source[i + len] == '_')) {
        ++len;
      }
      push(TokenKind::Ident, i, len);
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      std::size_t len = 0;
      std::uint64_t value = 0;
      while (i + len < source.size() &&
             std::isdigit(static_cast<unsigned char>(source[i + len]))) {
        value = value * 10 + static_cast<std::uint64_t>(source[i + len] - '0');
        ++len;
      }
      // Multiplier suffix used by the paper ("60K").
      if (i + len < source.size() &&
          (source[i + len] == 'k' || source[i + len] == 'K')) {
        value *= 1000;
        ++len;
      } else if (i + len < source.size() && source[i + len] == 'M') {
        value *= 1000000;
        ++len;
      }
      push(TokenKind::Nat, i, len, value);
      continue;
    }
    switch (c) {
      case '(': push(TokenKind::LParen, i, 1); continue;
      case ')': push(TokenKind::RParen, i, 1); continue;
      case '{': push(TokenKind::LBrace, i, 1); continue;
      case '}': push(TokenKind::RBrace, i, 1); continue;
      case '[': push(TokenKind::LBracket, i, 1); continue;
      case ']': push(TokenKind::RBracket, i, 1); continue;
      case ',': push(TokenKind::Comma, i, 1); continue;
      case '&': push(TokenKind::Amp, i, 1); continue;
      case '|': push(TokenKind::Pipe, i, 1); continue;
      case '<':
        if (i + 1 < source.size() && source[i + 1] == '<') {
          push(TokenKind::LessLess, i, 2);
        } else {
          push(TokenKind::Less, i, 1);
        }
        continue;
      case '=':
        if (i + 1 < source.size() && source[i + 1] == '>') {
          push(TokenKind::Implies, i, 2);
          continue;
        }
        [[fallthrough]];
      default:
        sink.error(pos, std::string("unexpected character '") + c + "'");
        push(TokenKind::Invalid, i, 1);
        continue;
    }
  }
  tokens.push_back({TokenKind::End, source.substr(source.size(), 0), 0, pos});
  return tokens;
}

}  // namespace loom::spec

// Abstract syntax of loose-ordering properties (paper Fig. 3).
//
//   range            R = n[u,v]
//   fragment         F = ({R1..Rn}, #)         # in {∧ (Conj), ∨ (Disj)}
//   loose-ordering   L = F1 < ... < Fq
//   antecedent req.  A = (P << i, b)           "i only after P"
//   timed impl.      T = (P => Q, t)           "P observed -> Q within t"
#pragma once

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "sim/time.hpp"
#include "spec/alphabet.hpp"

namespace loom::spec {

/// R = n[u,v]: a block of k consecutive occurrences of n, k in [lo, hi].
struct Range {
  Name name = kInvalidName;
  std::uint32_t lo = 1;
  std::uint32_t hi = 1;

  bool trivial() const { return lo == 1 && hi == 1; }
  bool operator==(const Range&) const = default;
};

enum class Join : std::uint8_t {
  Conj,  // ∧ : every range block must appear (any order)
  Disj,  // ∨ : at least one range block must appear
};

struct Fragment {
  std::vector<Range> ranges;
  Join join = Join::Conj;

  /// Union of the range names.
  NameSet alphabet() const;
  bool operator==(const Fragment&) const = default;
};

struct LooseOrdering {
  std::vector<Fragment> fragments;

  NameSet alphabet() const;
  bool operator==(const LooseOrdering&) const = default;
};

/// A = (P << i, b): i may occur only after P has been observed; with
/// `repeated`, every i needs its own P since the previous i.
struct Antecedent {
  LooseOrdering pattern;
  Name trigger = kInvalidName;
  bool repeated = false;

  NameSet alphabet() const;  // α(P) ∪ {i}
  bool operator==(const Antecedent&) const = default;
};

/// T = (P => Q, t): whenever P is observed, Q must occur and finish within
/// t time units of the end of P (implicitly repeated).
struct TimedImplication {
  LooseOrdering antecedent;
  LooseOrdering consequent;
  sim::Time bound;

  NameSet alphabet() const;  // α(P) ∪ α(Q)
  bool operator==(const TimedImplication&) const = default;
};

class Property {
 public:
  Property(Antecedent a) : value_(std::move(a)) {}          // NOLINT(implicit)
  Property(TimedImplication t) : value_(std::move(t)) {}    // NOLINT(implicit)

  bool is_antecedent() const {
    return std::holds_alternative<Antecedent>(value_);
  }
  bool is_timed() const {
    return std::holds_alternative<TimedImplication>(value_);
  }

  const Antecedent& antecedent() const { return std::get<Antecedent>(value_); }
  const TimedImplication& timed() const {
    return std::get<TimedImplication>(value_);
  }

  NameSet alphabet() const;

  bool operator==(const Property&) const = default;

 private:
  std::variant<Antecedent, TimedImplication> value_;
};

// --- pretty-printing (concrete syntax, re-parseable) ---

std::string to_string(const Range& r, const Alphabet& ab);
std::string to_string(const Fragment& f, const Alphabet& ab);
std::string to_string(const LooseOrdering& l, const Alphabet& ab);
std::string to_string(const Antecedent& a, const Alphabet& ab);
std::string to_string(const TimedImplication& t, const Alphabet& ab);
std::string to_string(const Property& p, const Alphabet& ab);

}  // namespace loom::spec

#include "spec/ast.hpp"

namespace loom::spec {

NameSet Fragment::alphabet() const {
  NameSet set;
  for (const auto& r : ranges) set.set(r.name);
  return set;
}

NameSet LooseOrdering::alphabet() const {
  NameSet set;
  for (const auto& f : fragments) set |= f.alphabet();
  return set;
}

NameSet Antecedent::alphabet() const {
  NameSet set = pattern.alphabet();
  set.set(trigger);
  return set;
}

NameSet TimedImplication::alphabet() const {
  NameSet set = antecedent.alphabet();
  set |= consequent.alphabet();
  return set;
}

NameSet Property::alphabet() const {
  if (is_antecedent()) return antecedent().alphabet();
  return timed().alphabet();
}

std::string to_string(const Range& r, const Alphabet& ab) {
  std::string out = ab.text(r.name);
  if (!r.trivial()) {
    out += "[" + std::to_string(r.lo) + "," + std::to_string(r.hi) + "]";
  }
  return out;
}

std::string to_string(const Fragment& f, const Alphabet& ab) {
  if (f.ranges.size() == 1) return to_string(f.ranges.front(), ab);
  std::string out = "({";
  for (std::size_t i = 0; i < f.ranges.size(); ++i) {
    if (i != 0) out += ", ";
    out += to_string(f.ranges[i], ab);
  }
  out += "}, ";
  out += f.join == Join::Conj ? "&" : "|";
  out += ")";
  return out;
}

std::string to_string(const LooseOrdering& l, const Alphabet& ab) {
  std::string out;
  for (std::size_t i = 0; i < l.fragments.size(); ++i) {
    if (i != 0) out += " < ";
    out += to_string(l.fragments[i], ab);
  }
  return out;
}

std::string to_string(const Antecedent& a, const Alphabet& ab) {
  return "(" + to_string(a.pattern, ab) + " << " + ab.text(a.trigger) + ", " +
         (a.repeated ? "true" : "false") + ")";
}

std::string to_string(const TimedImplication& t, const Alphabet& ab) {
  return "(" + to_string(t.antecedent, ab) + " => " +
         to_string(t.consequent, ab) + ", " + t.bound.to_string() + ")";
}

std::string to_string(const Property& p, const Alphabet& ab) {
  if (p.is_antecedent()) return to_string(p.antecedent(), ab);
  return to_string(p.timed(), ab);
}

}  // namespace loom::spec

// Declarative reference semantics (test oracle).
//
// An independent, offline implementation of Definitions 1-5 used to
// cross-check the online monitors: it walks a complete trace with the
// block-greedy interpretation (names of a property are pairwise disjoint,
// so matching is deterministic; see DESIGN.md §3).  It is deliberately
// written in a different style from the recognizer automata: block
// accounting over the projected trace instead of per-range state machines.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "sim/time.hpp"
#include "spec/ast.hpp"

namespace loom::spec {

struct TimedEvent {
  Name name = kInvalidName;
  sim::Time time;

  bool operator==(const TimedEvent&) const = default;
};

using Trace = std::vector<TimedEvent>;

enum class RefVerdict {
  Accepted,  // no violation, no recognition in progress
  Pending,   // no violation, recognition in progress at end of trace
  Rejected,  // violation
};

const char* to_string(RefVerdict v);

struct RefResult {
  RefVerdict verdict = RefVerdict::Accepted;
  /// Index (into the full trace) of the offending event when Rejected.
  std::size_t error_index = static_cast<std::size_t>(-1);
  std::string reason;

  bool rejected() const { return verdict == RefVerdict::Rejected; }
};

/// Checks an antecedent requirement against a finite trace.
RefResult reference_check(const Antecedent& a, const Trace& trace);

/// Checks a timed implication constraint; `end_time` is the simulation time
/// at which observation stopped (deadline checks run against it).
RefResult reference_check(const TimedImplication& t, const Trace& trace,
                          sim::Time end_time);

RefResult reference_check(const Property& p, const Trace& trace,
                          sim::Time end_time);

struct OrderingPlan;  // spec/attributes.hpp

/// Plan-reusing forms: identical semantics, but the caller supplies the
/// property's flattened OrderingPlan (plan_antecedent / plan_timed — e.g.
/// mon::CompiledProperty::plan()) instead of this function re-planning on
/// every call.  The plan is a pure function of the property, so the result
/// is byte-identical either way; the campaign engine's steady-state loop
/// checks thousands of mutants per property and uses these to pay the
/// planning cost once.
RefResult reference_check(const Antecedent& a, const OrderingPlan& plan,
                          const Trace& trace);
RefResult reference_check(const TimedImplication& t, const OrderingPlan& plan,
                          const Trace& trace, sim::Time end_time);
RefResult reference_check(const Property& p, const OrderingPlan& plan,
                          const Trace& trace, sim::Time end_time);

}  // namespace loom::spec

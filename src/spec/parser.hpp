// Recursive-descent parser for loose-ordering properties.
//
// Grammar (paper Fig. 3, concretized; see DESIGN.md §5):
//
//   property := '(' ordering '<<' name ',' bool ')'
//             | '(' ordering '=>' ordering ',' duration ')'
//   ordering := fragment ('<' fragment)*
//   fragment := range
//             | '(' '{' range (',' range)* '}' ',' ('&'|'|') ')'
//             | '{' range (',' range)* '}' ('&'|'|')?        (shorthand, & default)
//   range    := name ('[' nat ',' nat ']')?                  (default [1,1])
//   duration := nat ('ps'|'ns'|'us'|'ms'|'s')
//
// Parsed names are interned into the supplied Alphabet with Unknown
// direction; platform code typically pre-declares directions.
#pragma once

#include <optional>
#include <string_view>

#include "spec/ast.hpp"
#include "support/diagnostics.hpp"

namespace loom::spec {

/// Parses a full property; returns nullopt (with diagnostics) on error.
std::optional<Property> parse_property(std::string_view source, Alphabet& ab,
                                       support::DiagnosticSink& sink);

/// Parses a bare loose-ordering (used by tests and the stimuli generator).
std::optional<LooseOrdering> parse_ordering(std::string_view source,
                                            Alphabet& ab,
                                            support::DiagnosticSink& sink);

}  // namespace loom::spec

// Interface alphabet (I, O) of a component under verification.
//
// The paper writes properties over the input/output interface of a
// component: inputs are actions of the environment affecting the component
// (e.g. set_imgAddr, start), outputs are activities of the component
// affecting others (e.g. read_img, set_irq).  The Alphabet interns names,
// records their direction and hands out dense ids used in Bitset name sets.
#pragma once

#include <initializer_list>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "support/bitset.hpp"
#include "support/interner.hpp"

namespace loom::spec {

using Name = support::Interner::Id;
using NameSet = support::Bitset;

constexpr Name kInvalidName = support::Interner::kInvalid;

enum class Direction { Input, Output, Unknown };

class Alphabet {
 public:
  /// Declares (or re-declares) an input name.
  Name input(std::string_view name) { return declare(name, Direction::Input); }
  /// Declares (or re-declares) an output name.
  Name output(std::string_view name) {
    return declare(name, Direction::Output);
  }
  /// Interns a name without fixing its direction (parser default).
  Name name(std::string_view name) {
    return declare(name, Direction::Unknown);
  }

  std::optional<Name> lookup(std::string_view name) const {
    return interner_.lookup(name);
  }

  const std::string& text(Name id) const { return interner_.name(id); }
  Direction direction(Name id) const { return directions_.at(id); }

  std::size_t size() const { return interner_.size(); }

  /// Builds a NameSet from a list of (new or existing) names.
  NameSet set_of(std::initializer_list<std::string_view> names);

  /// Renders "{a, b, c}" for diagnostics.
  std::string render(const NameSet& set) const;

 private:
  Name declare(std::string_view name, Direction dir);

  support::Interner interner_;
  std::vector<Direction> directions_;
};

}  // namespace loom::spec

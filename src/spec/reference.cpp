#include "spec/reference.hpp"

#include <cassert>

#include "spec/attributes.hpp"

namespace loom::spec {
namespace {

constexpr std::size_t kNoIndex = static_cast<std::size_t>(-1);

/// Walks one "round" of a flattened chain (P for antecedents, P++Q for
/// timed implications) using block-greedy matching over the projected trace.
class RoundWalker {
 public:
  RoundWalker() = default;
  explicit RoundWalker(const OrderingPlan& plan) { bind(plan); }

  /// (Re)attaches the walker to a plan and restores the initial state,
  /// reusing the buffers' capacity — the pooled-walker entry point.
  void bind(const OrderingPlan& plan) {
    plan_ = &plan;
    counts_.resize(plan.alphabet.capacity());
    reset();
  }

  void reset() {
    k_ = 0;
    current_ = kInvalidName;
    closed_.clear();
    consumed_ = false;
    frag_min_complete_ = false;
    std::fill(counts_.begin(), counts_.end(), 0);
  }

  enum class Step { Consumed, RoundCompleted, Error };

  /// Processes one projected event.  On Error, `reason()` explains why.
  Step step(Name name, sim::Time time) {
    const FragmentPlan& f = plan_->fragments[k_];
    if (f.alphabet.test(name)) {
      consumed_ = true;
      const RangePlan& r = range_of(f, name);
      if (name == current_) {
        if (++counts_[name] > r.hi) {
          return fail("more than v=" + std::to_string(r.hi) +
                      " consecutive occurrences of the range name");
        }
      } else {
        if (current_ != kInvalidName) {
          const RangePlan& cur = range_of(f, current_);
          if (counts_[current_] < cur.lo) {
            return fail("block ended after " +
                        std::to_string(counts_[current_]) +
                        " occurrences, below u=" + std::to_string(cur.lo));
          }
          closed_.set(current_);
        }
        if (closed_.test(name)) {
          return fail("range block reopened after it ended");
        }
        current_ = name;
        counts_[name] = 1;
      }
      if (!frag_min_complete_ && fragment_min_complete(f)) {
        frag_min_complete_ = true;
        frag_min_time_ = time;
      }
      return Step::Consumed;
    }
    if (f.accept.test(name)) {
      if (current_ != kInvalidName) {
        const RangePlan& cur = range_of(f, current_);
        if (counts_[current_] < cur.lo) {
          return fail("fragment stopped while a block had only " +
                      std::to_string(counts_[current_]) +
                      " occurrences, below u=" + std::to_string(cur.lo));
        }
        closed_.set(current_);
      }
      const std::size_t done = closed_.count();
      const bool complete = f.join == Join::Conj
                                ? done == f.ranges.size()
                                : done >= 1;
      if (!complete) {
        return fail(f.join == Join::Conj
                        ? "conjunctive fragment stopped before all its "
                          "ranges were observed"
                        : "disjunctive fragment stopped before any of its "
                          "ranges was observed");
      }
      ++k_;
      current_ = kInvalidName;
      closed_.clear();
      frag_min_complete_ = false;
      for (const auto& rp : f.ranges) counts_[rp.name] = 0;
      if (k_ == plan_->fragments.size()) return Step::RoundCompleted;
      return step(name, time);  // same event opens the next fragment
    }
    // Out-of-place name: classify for the diagnostic.
    if (plan_->terminal.test(name)) {
      return fail("trigger observed before the pattern was recognized");
    }
    for (std::size_t j = 0; j < plan_->fragments.size(); ++j) {
      if (plan_->fragments[j].alphabet.test(name)) {
        return fail(j < k_ ? "name belongs to an already-completed fragment"
                           : "name belongs to a later fragment");
      }
    }
    return fail("name not in the property alphabet");  // unreachable
  }

  std::size_t fragment_index() const { return k_; }
  bool consumed_anything() const { return consumed_; }
  bool fragment_min_complete_flag() const { return frag_min_complete_; }
  sim::Time fragment_min_time() const { return frag_min_time_; }
  const std::string& reason() const { return reason_; }

 private:
  static const RangePlan& range_of(const FragmentPlan& f, Name name) {
    for (const auto& r : f.ranges) {
      if (r.name == name) return r;
    }
    assert(false && "name not in fragment");
    return f.ranges.front();
  }

  bool fragment_min_complete(const FragmentPlan& f) const {
    if (f.join == Join::Conj) {
      for (const auto& r : f.ranges) {
        if (counts_[r.name] < r.lo) return false;
      }
      return true;
    }
    for (const auto& r : f.ranges) {
      if (counts_[r.name] >= r.lo) return true;
    }
    return false;
  }

  Step fail(std::string why) {
    reason_ = std::move(why);
    return Step::Error;
  }

  const OrderingPlan* plan_ = nullptr;
  std::size_t k_ = 0;
  Name current_ = kInvalidName;
  NameSet closed_;
  std::vector<std::uint32_t> counts_;
  bool consumed_ = false;
  bool frag_min_complete_ = false;
  sim::Time frag_min_time_;
  std::string reason_;
};

// One walker per thread, rebound per check: the checks are not reentrant
// and every bind() rebuilds the full state from the plan, so reuse is
// invisible to results — it only drops the per-call buffer allocations
// that dominated the campaign engine's per-mutant oracle checks.
RoundWalker& pooled_walker(const OrderingPlan& plan) {
  thread_local RoundWalker walker;
  walker.bind(plan);
  return walker;
}

}  // namespace

const char* to_string(RefVerdict v) {
  switch (v) {
    case RefVerdict::Accepted: return "accepted";
    case RefVerdict::Pending: return "pending";
    case RefVerdict::Rejected: return "rejected";
  }
  return "?";
}

RefResult reference_check(const Antecedent& a, const Trace& trace) {
  return reference_check(a, plan_antecedent(a), trace);
}

RefResult reference_check(const Antecedent& a, const OrderingPlan& plan,
                          const Trace& trace) {
  RoundWalker& walker = pooled_walker(plan);
  for (std::size_t i = 0; i < trace.size(); ++i) {
    const auto& ev = trace[i];
    if (!plan.alphabet.test(ev.name)) continue;  // projection
    switch (walker.step(ev.name, ev.time)) {
      case RoundWalker::Step::Consumed:
        break;
      case RoundWalker::Step::RoundCompleted:
        if (!a.repeated) return {RefVerdict::Accepted, kNoIndex, ""};
        walker.reset();
        break;
      case RoundWalker::Step::Error:
        return {RefVerdict::Rejected, i, walker.reason()};
    }
  }
  return {walker.consumed_anything() ? RefVerdict::Pending
                                     : RefVerdict::Accepted,
          kNoIndex, ""};
}

RefResult reference_check(const TimedImplication& t, const Trace& trace,
                          sim::Time end_time) {
  return reference_check(t, plan_timed(t), trace, end_time);
}

RefResult reference_check(const TimedImplication& t, const OrderingPlan& plan,
                          const Trace& trace, sim::Time end_time) {
  const std::size_t p_last = plan.p_boundary - 1;
  const std::size_t q_last = plan.fragments.size() - 1;
  RoundWalker& walker = pooled_walker(plan);

  bool armed = false;    // P min-complete, obligation running
  bool q_done = false;   // Q min-complete in this round
  sim::Time t_start;

  auto update_timing = [&](sim::Time now, std::size_t index,
                           RefResult* failure) {
    if (!armed && (walker.fragment_index() > p_last ||
                   (walker.fragment_index() == p_last &&
                    walker.fragment_min_complete_flag()))) {
      armed = true;
      t_start = walker.fragment_index() == p_last ? walker.fragment_min_time()
                                                  : now;
    }
    if (armed && !q_done && walker.fragment_index() == q_last &&
        walker.fragment_min_complete_flag()) {
      q_done = true;
      const sim::Time t_stop = walker.fragment_min_time();
      if (t_stop - t_start > t.bound) {
        *failure = {RefVerdict::Rejected, index,
                    "consequent finished after the deadline"};
      }
    }
  };

  for (std::size_t i = 0; i < trace.size(); ++i) {
    const auto& ev = trace[i];
    if (!plan.alphabet.test(ev.name)) continue;
    if (armed && !q_done && ev.time > t_start + t.bound) {
      return {RefVerdict::Rejected, i,
              "deadline elapsed before the consequent finished"};
    }
    switch (walker.step(ev.name, ev.time)) {
      case RoundWalker::Step::Consumed: {
        RefResult failure;
        update_timing(ev.time, i, &failure);
        if (failure.rejected()) return failure;
        break;
      }
      case RoundWalker::Step::RoundCompleted: {
        // The completing event restarts the chain at fragment 0.
        armed = false;
        q_done = false;
        walker.reset();
        if (walker.step(ev.name, ev.time) == RoundWalker::Step::Error) {
          return {RefVerdict::Rejected, i, walker.reason()};
        }
        RefResult failure;
        update_timing(ev.time, i, &failure);
        if (failure.rejected()) return failure;
        break;
      }
      case RoundWalker::Step::Error:
        return {RefVerdict::Rejected, i, walker.reason()};
    }
  }
  if (armed && !q_done && end_time > t_start + t.bound) {
    return {RefVerdict::Rejected, trace.empty() ? kNoIndex : trace.size() - 1,
            "observation ended after the deadline with the consequent "
            "unfinished"};
  }
  if (!walker.consumed_anything()) return {RefVerdict::Accepted, kNoIndex, ""};
  // Mid-round at end of trace: if the final fragment already reached its
  // minimum within the deadline, the obligation is met (earliest-match).
  if (q_done) return {RefVerdict::Accepted, kNoIndex, ""};
  return {RefVerdict::Pending, kNoIndex, ""};
}

RefResult reference_check(const Property& p, const Trace& trace,
                          sim::Time end_time) {
  if (p.is_antecedent()) return reference_check(p.antecedent(), trace);
  return reference_check(p.timed(), trace, end_time);
}

RefResult reference_check(const Property& p, const OrderingPlan& plan,
                          const Trace& trace, sim::Time end_time) {
  if (p.is_antecedent()) return reference_check(p.antecedent(), plan, trace);
  return reference_check(p.timed(), plan, trace, end_time);
}

}  // namespace loom::spec

#include "spec/wellformed.hpp"

namespace loom::spec {
namespace {

const support::SourcePos kNoPos{};

}  // namespace

bool check_wellformed(const LooseOrdering& l, const Alphabet& ab,
                      support::DiagnosticSink& sink) {
  bool ok = true;
  if (l.fragments.empty()) {
    sink.error(kNoPos, "a loose-ordering needs at least one fragment");
    return false;
  }
  NameSet seen;
  for (std::size_t fi = 0; fi < l.fragments.size(); ++fi) {
    const Fragment& f = l.fragments[fi];
    if (f.ranges.empty()) {
      sink.error(kNoPos,
                 "fragment #" + std::to_string(fi + 1) + " has no ranges");
      ok = false;
      continue;
    }
    NameSet in_fragment;
    for (const Range& r : f.ranges) {
      if (r.lo < 1 || r.lo > r.hi) {
        sink.error(kNoPos, "range " + to_string(r, ab) +
                               ": bounds must satisfy 1 <= u <= v");
        ok = false;
      }
      if (in_fragment.test(r.name)) {
        sink.error(kNoPos, "name '" + ab.text(r.name) +
                               "' used by two ranges of the same fragment");
        ok = false;
      }
      in_fragment.set(r.name);
    }
    if (seen.intersects(in_fragment)) {
      NameSet overlap = seen & in_fragment;
      sink.error(kNoPos, "fragments share names " + ab.render(overlap) +
                             "; fragment alphabets must be disjoint");
      ok = false;
    }
    seen |= in_fragment;
  }
  return ok;
}

bool check_wellformed(const Antecedent& a, const Alphabet& ab,
                      support::DiagnosticSink& sink) {
  bool ok = check_wellformed(a.pattern, ab, sink);
  if (a.trigger == kInvalidName) {
    sink.error(kNoPos, "antecedent requirement needs a trigger name");
    return false;
  }
  if (a.pattern.alphabet().test(a.trigger)) {
    sink.error(kNoPos, "trigger '" + ab.text(a.trigger) +
                           "' must not occur in the antecedent pattern");
    ok = false;
  }
  if (ab.direction(a.trigger) == Direction::Output) {
    sink.error(kNoPos, "trigger '" + ab.text(a.trigger) +
                           "' must be an input of the component");
    ok = false;
  }
  return ok;
}

bool check_wellformed(const TimedImplication& t, const Alphabet& ab,
                      support::DiagnosticSink& sink) {
  bool ok = check_wellformed(t.antecedent, ab, sink);
  ok = check_wellformed(t.consequent, ab, sink) && ok;
  if (!ok) return false;
  NameSet p = t.antecedent.alphabet();
  NameSet q = t.consequent.alphabet();
  if (p.intersects(q)) {
    sink.error(kNoPos,
               "antecedent and consequent share names " + ab.render(p & q));
    ok = false;
  }
  bool all_outputs = true;
  q.for_each([&](std::size_t id) {
    if (ab.direction(static_cast<Name>(id)) == Direction::Input) {
      sink.error(kNoPos, "consequent name '" +
                             ab.text(static_cast<Name>(id)) +
                             "' is an input; α(Q) must contain only outputs");
      all_outputs = false;
    }
  });
  return ok && all_outputs;
}

bool check_wellformed(const Property& p, const Alphabet& ab,
                      support::DiagnosticSink& sink) {
  if (p.is_antecedent()) return check_wellformed(p.antecedent(), ab, sink);
  return check_wellformed(p.timed(), ab, sink);
}

}  // namespace loom::spec

#include "spec/attributes.hpp"

#include <algorithm>

namespace loom::spec {

OrderingPlan plan_ordering(const LooseOrdering& l, NameSet terminal,
                           bool cyclic, std::size_t p_boundary) {
  OrderingPlan plan;
  plan.terminal = terminal;
  plan.cyclic = cyclic;
  const std::size_t q = l.fragments.size();
  plan.p_boundary = p_boundary == 0 ? q : p_boundary;

  std::vector<NameSet> alpha(q);
  for (std::size_t k = 0; k < q; ++k) alpha[k] = l.fragments[k].alphabet();

  // prefix[k] = union of alpha[j], j < k
  std::vector<NameSet> prefix(q);
  for (std::size_t k = 1; k < q; ++k) prefix[k] = prefix[k - 1] | alpha[k - 1];
  // suffix_beyond[k] = union of alpha[j], j >= k+2, plus the terminal when
  // the terminal is not already this fragment's stopping set.
  std::vector<NameSet> beyond(q);
  {
    NameSet acc;  // union of alpha[j] for j > current+1
    for (std::size_t k = q; k-- > 0;) {
      beyond[k] = acc;
      if (k + 1 < q) beyond[k] |= terminal;
      if (k + 1 < q) acc |= alpha[k + 1];
    }
  }

  for (std::size_t k = 0; k < q; ++k) {
    const Fragment& f = l.fragments[k];
    FragmentPlan fp;
    fp.join = f.join;
    fp.alphabet = alpha[k];
    if (k + 1 < q) {
      fp.accept = alpha[k + 1];
    } else if (cyclic) {
      fp.accept = alpha[0];
    } else {
      fp.accept = terminal;
    }
    for (const Range& r : f.ranges) {
      RangePlan rp;
      rp.name = r.name;
      rp.lo = r.lo;
      rp.hi = r.hi;
      rp.parent_join = f.join;
      rp.before = prefix[k];
      rp.siblings = alpha[k];
      rp.siblings.reset(r.name);
      rp.accept = fp.accept;
      rp.after = beyond[k];
      // In a cyclic chain the restart names (alpha[0]) double as the accept
      // set of the final fragment; they must not stay in B of fragment 0
      // recognizers or in Af anywhere.  plan.before/after exclude nothing
      // for acyclic chains.
      if (cyclic) rp.after.subtract(fp.accept);
      fp.ranges.push_back(std::move(rp));
    }
    for (const Range& r : f.ranges) plan.max_hi = std::max(plan.max_hi, r.hi);
    plan.fragments.push_back(std::move(fp));
  }

  if (cyclic && !plan.fragments.empty()) {
    plan.fragments[plan.p_boundary - 1].track_min_time = true;
    plan.fragments.back().track_min_time = true;
  }

  for (const auto& a : alpha) plan.chain_alphabet |= a;
  plan.alphabet = plan.chain_alphabet | terminal;
  return plan;
}

OrderingPlan plan_antecedent(const Antecedent& a) {
  NameSet terminal;
  terminal.set(a.trigger);
  return plan_ordering(a.pattern, terminal);
}

OrderingPlan plan_timed(const TimedImplication& t) {
  LooseOrdering chain;
  chain.fragments = t.antecedent.fragments;
  chain.fragments.insert(chain.fragments.end(), t.consequent.fragments.begin(),
                         t.consequent.fragments.end());
  return plan_ordering(chain, NameSet{}, /*cyclic=*/true,
                       /*p_boundary=*/t.antecedent.fragments.size());
}

}  // namespace loom::spec

#include "spec/parser.hpp"

#include <limits>

#include "spec/lexer.hpp"

namespace loom::spec {
namespace {

class Parser {
 public:
  Parser(std::vector<Token> tokens, Alphabet& ab,
         support::DiagnosticSink& sink)
      : tokens_(std::move(tokens)), ab_(ab), sink_(sink) {}

  std::optional<Property> property() {
    if (!expect(TokenKind::LParen)) return std::nullopt;
    auto lhs = ordering();
    if (!lhs) return std::nullopt;

    if (at(TokenKind::LessLess)) {
      next();
      const Token name_tok = peek();
      if (!at(TokenKind::Ident)) {
        error("expected trigger name after '<<'");
        return std::nullopt;
      }
      next();
      if (!expect(TokenKind::Comma)) return std::nullopt;
      auto rep = boolean();
      if (!rep) return std::nullopt;
      if (!expect(TokenKind::RParen)) return std::nullopt;
      if (!expect(TokenKind::End)) return std::nullopt;
      Antecedent a;
      a.pattern = std::move(*lhs);
      a.trigger = ab_.name(name_tok.text);
      a.repeated = *rep;
      return Property(std::move(a));
    }
    if (at(TokenKind::Implies)) {
      next();
      auto rhs = ordering();
      if (!rhs) return std::nullopt;
      if (!expect(TokenKind::Comma)) return std::nullopt;
      auto bound = duration();
      if (!bound) return std::nullopt;
      if (!expect(TokenKind::RParen)) return std::nullopt;
      if (!expect(TokenKind::End)) return std::nullopt;
      TimedImplication t;
      t.antecedent = std::move(*lhs);
      t.consequent = std::move(*rhs);
      t.bound = *bound;
      return Property(std::move(t));
    }
    error("expected '<<' or '=>' after the loose-ordering");
    return std::nullopt;
  }

  std::optional<LooseOrdering> top_ordering() {
    auto l = ordering();
    if (!l) return std::nullopt;
    if (!expect(TokenKind::End)) return std::nullopt;
    return l;
  }

 private:
  std::optional<LooseOrdering> ordering() {
    LooseOrdering l;
    auto f = fragment();
    if (!f) return std::nullopt;
    l.fragments.push_back(std::move(*f));
    while (at(TokenKind::Less)) {
      next();
      auto g = fragment();
      if (!g) return std::nullopt;
      l.fragments.push_back(std::move(*g));
    }
    return l;
  }

  std::optional<Fragment> fragment() {
    // '(' '{' ... '}' ',' join ')'
    if (at(TokenKind::LParen)) {
      next();
      auto f = brace_fragment(/*require_join=*/true);
      if (!f) return std::nullopt;
      if (!expect(TokenKind::RParen)) return std::nullopt;
      return f;
    }
    if (at(TokenKind::LBrace)) {
      return brace_fragment(/*require_join=*/false);
    }
    // single range
    auto r = range();
    if (!r) return std::nullopt;
    Fragment f;
    f.join = Join::Conj;
    f.ranges.push_back(*r);
    return f;
  }

  /// Parses '{' range (',' range)* '}' followed by a join: with
  /// `require_join`, as ", &" / ", |" (paper style); otherwise an optional
  /// trailing '&' or '|'.
  std::optional<Fragment> brace_fragment(bool require_join) {
    if (!expect(TokenKind::LBrace)) return std::nullopt;
    Fragment f;
    auto r = range();
    if (!r) return std::nullopt;
    f.ranges.push_back(*r);
    while (at(TokenKind::Comma)) {
      next();
      auto r2 = range();
      if (!r2) return std::nullopt;
      f.ranges.push_back(*r2);
    }
    if (!expect(TokenKind::RBrace)) return std::nullopt;
    if (require_join) {
      if (!expect(TokenKind::Comma)) return std::nullopt;
      if (at(TokenKind::Amp)) {
        f.join = Join::Conj;
      } else if (at(TokenKind::Pipe)) {
        f.join = Join::Disj;
      } else {
        error("expected '&' or '|' as the fragment join");
        return std::nullopt;
      }
      next();
    } else {
      f.join = Join::Conj;
      if (at(TokenKind::Amp)) {
        next();
      } else if (at(TokenKind::Pipe)) {
        f.join = Join::Disj;
        next();
      }
    }
    return f;
  }

  std::optional<Range> range() {
    if (!at(TokenKind::Ident)) {
      error("expected an interface name");
      return std::nullopt;
    }
    Range r;
    r.name = ab_.name(peek().text);
    next();
    if (at(TokenKind::LBracket)) {
      next();
      auto lo = nat();
      if (!lo) return std::nullopt;
      if (!expect(TokenKind::Comma)) return std::nullopt;
      auto hi = nat();
      if (!hi) return std::nullopt;
      if (!expect(TokenKind::RBracket)) return std::nullopt;
      if (*lo > std::numeric_limits<std::uint32_t>::max() ||
          *hi > std::numeric_limits<std::uint32_t>::max()) {
        error("range bound too large");
        return std::nullopt;
      }
      r.lo = static_cast<std::uint32_t>(*lo);
      r.hi = static_cast<std::uint32_t>(*hi);
    }
    return r;
  }

  std::optional<bool> boolean() {
    if (at(TokenKind::Ident)) {
      if (peek().text == "true") {
        next();
        return true;
      }
      if (peek().text == "false") {
        next();
        return false;
      }
    }
    error("expected 'true' or 'false'");
    return std::nullopt;
  }

  std::optional<sim::Time> duration() {
    auto v = nat();
    if (!v) return std::nullopt;
    if (!at(TokenKind::Ident)) {
      error("expected a time unit (ps, ns, us, ms, s)");
      return std::nullopt;
    }
    const std::string_view unit = peek().text;
    next();
    if (unit == "ps") return sim::Time::ps(*v);
    if (unit == "ns") return sim::Time::ns(*v);
    if (unit == "us") return sim::Time::us(*v);
    if (unit == "ms") return sim::Time::ms(*v);
    if (unit == "s" || unit == "sec") return sim::Time::sec(*v);
    error("unknown time unit '" + std::string(unit) + "'");
    return std::nullopt;
  }

  std::optional<std::uint64_t> nat() {
    if (!at(TokenKind::Nat)) {
      error("expected a number");
      return std::nullopt;
    }
    const std::uint64_t v = peek().value;
    next();
    return v;
  }

  const Token& peek() const { return tokens_[index_]; }
  bool at(TokenKind kind) const { return peek().kind == kind; }
  void next() {
    if (index_ + 1 < tokens_.size()) ++index_;
  }

  bool expect(TokenKind kind) {
    if (at(kind)) {
      if (kind != TokenKind::End) next();
      return true;
    }
    error(std::string("expected ") + to_string(kind) + ", found " +
          to_string(peek().kind));
    return false;
  }

  void error(std::string message) {
    sink_.error(peek().pos, std::move(message));
  }

  std::vector<Token> tokens_;
  std::size_t index_ = 0;
  Alphabet& ab_;
  support::DiagnosticSink& sink_;
};

}  // namespace

std::optional<Property> parse_property(std::string_view source, Alphabet& ab,
                                       support::DiagnosticSink& sink) {
  auto tokens = tokenize(source, sink);
  if (!sink.ok()) return std::nullopt;
  Parser parser(std::move(tokens), ab, sink);
  return parser.property();
}

std::optional<LooseOrdering> parse_ordering(std::string_view source,
                                            Alphabet& ab,
                                            support::DiagnosticSink& sink) {
  auto tokens = tokenize(source, sink);
  if (!sink.ok()) return std::nullopt;
  Parser parser(std::move(tokens), ab, sink);
  return parser.top_ordering();
}

}  // namespace loom::spec

// Lexer for the concrete loose-ordering property syntax.
//
//   (({set_imgAddr, set_glAddr, set_glSize}, &) << start, false)
//   (start => read_img[100,60000] < set_irq, 2ms)
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "support/diagnostics.hpp"

namespace loom::spec {

enum class TokenKind {
  Ident,     // [A-Za-z_][A-Za-z0-9_]*
  Nat,       // decimal natural, with optional k/K/M suffix (60K = 60000)
  LParen,    // (
  RParen,    // )
  LBrace,    // {
  RBrace,    // }
  LBracket,  // [
  RBracket,  // ]
  Comma,     // ,
  Less,      // <
  LessLess,  // <<
  Implies,   // =>
  Amp,       // &
  Pipe,      // |
  End,       // end of input
  Invalid,
};

const char* to_string(TokenKind kind);

struct Token {
  TokenKind kind = TokenKind::Invalid;
  std::string_view text;
  std::uint64_t value = 0;  // for Nat
  support::SourcePos pos;
};

/// Tokenizes `source`; reports bad characters to `sink` and keeps going.
/// The final token is always End.
std::vector<Token> tokenize(std::string_view source,
                            support::DiagnosticSink& sink);

}  // namespace loom::spec

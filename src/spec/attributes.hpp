// Recognition contexts: the attribute computation of the paper's Fig. 4.
//
// Every range recognizer works in a context (B, C, Ac, Af, s) derived from
// where the range sits in the syntax tree of the property:
//   B  (before)   names of earlier fragments   -> forbidden (already done)
//   C  (siblings) other names of this fragment -> allowed, switch block
//   Ac (accept)   names stopping the fragment  -> ok/nok if minimum reached
//   Af (after)    names beyond the next fragment (incl. the trigger for
//                 non-final fragments)         -> forbidden
//   s  (join)     ∧ or ∨ semantics inherited from the parent fragment
//
// plan_antecedent / plan_timed flatten a property into an OrderingPlan the
// monitors execute directly:
//   - antecedent (P << i, b): chain = fragments of P, terminal = {i};
//   - timed (P => Q, t): chain = fragments of P ++ fragments of Q, no
//     terminal; the chain restarts at α(F1) (reset point at the end of Q),
//     and the boundary between P and Q is recorded for the timing rule.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "spec/ast.hpp"

namespace loom::spec {

struct RangePlan {
  Name name = kInvalidName;
  std::uint32_t lo = 1;
  std::uint32_t hi = 1;
  Join parent_join = Join::Conj;  // the s attribute
  NameSet before;                 // B
  NameSet siblings;               // C
  NameSet accept;                 // Ac
  NameSet after;                  // Af
};

struct FragmentPlan {
  Join join = Join::Conj;
  std::vector<RangePlan> ranges;
  NameSet alphabet;  // names of this fragment
  NameSet accept;    // the shared Ac of its ranges
  /// True for the fragments whose min-complete instant a timed monitor
  /// reads (end of P, end of Q): these recognizers carry a 64-bit
  /// timestamp register — the paper's sc_time start/stop variables.
  bool track_min_time = false;
};

struct OrderingPlan {
  std::vector<FragmentPlan> fragments;
  NameSet chain_alphabet;   // union of fragment alphabets (without terminal)
  NameSet alphabet;         // chain_alphabet plus the terminal names
  NameSet terminal;         // {i} for antecedents; empty for timed chains
  bool cyclic = false;      // timed chains restart at fragment 0
  std::size_t p_boundary = 0;  // #fragments belonging to P (timed); else q
  /// Largest range upper bound; determines counter widths.
  std::uint32_t max_hi = 1;
};

/// Flattens P with stopping set {i}.
OrderingPlan plan_antecedent(const Antecedent& a);

/// Flattens the concatenation P ++ Q with wrap-around restart.
OrderingPlan plan_timed(const TimedImplication& t);

/// General form: chain with an explicit terminal stopping set (may be empty
/// together with `cyclic` for wrap-around chains).
OrderingPlan plan_ordering(const LooseOrdering& l, NameSet terminal,
                           bool cyclic = false, std::size_t p_boundary = 0);

}  // namespace loom::spec

#include "spec/alphabet.hpp"

namespace loom::spec {

Name Alphabet::declare(std::string_view name, Direction dir) {
  const Name id = interner_.intern(name);
  if (id >= directions_.size()) directions_.resize(id + 1, Direction::Unknown);
  // A direction given explicitly wins over Unknown; conflicting explicit
  // directions keep the first declaration (checked by the WF pass).
  if (directions_[id] == Direction::Unknown) directions_[id] = dir;
  return id;
}

NameSet Alphabet::set_of(std::initializer_list<std::string_view> names) {
  NameSet set;
  for (auto n : names) set.set(name(n));
  return set;
}

std::string Alphabet::render(const NameSet& set) const {
  std::string out = "{";
  bool sep = false;
  set.for_each([&](std::size_t id) {
    if (sep) out += ", ";
    out += text(static_cast<Name>(id));
    sep = true;
  });
  out += "}";
  return out;
}

}  // namespace loom::spec

//! Versioned binary wire format: the length-prefixed frame codec behind
//! cross-process campaign sharding (and the future loomd daemon).
//!
//! A frame is a fixed 16-byte header followed by the payload bytes:
//!
//!   offset 0   u32  magic          0x4D4F4F4C — the bytes "LOOM"
//!   offset 4   u8   version        kWireVersion (readers reject others)
//!   offset 5   u8   payload tag    wire::Payload (what the bytes mean)
//!   offset 6   u16  reserved       must be zero
//!   offset 8   u64  payload size   bytes that follow the header
//!   offset 16  ...  payload        primitives in little-endian order
//!
//! Primitives are fixed-width little-endian integers, IEEE doubles moved
//! bit-exact through u64 (the differential invariants compare doubles byte
//! for byte), strings as a u64 length plus raw bytes, and bit vectors as a
//! length word plus 64-bit packed payload (the mon::Snapshot convention).
//!
//! Decoding is hostile-input safe by contract (tests/wire_fuzz_test.cpp):
//! every read is bounds-checked, every length is validated against the
//! bytes actually present *before* any allocation sizes off it, and every
//! failure is a positioned diagnostic (byte offset + message) — truncation,
//! bit flips, oversized length prefixes and foreign tags reject cleanly,
//! never UB.  The ASan+UBSan CI leg holds the corpus to that.
//!
//! Ownership: Encoder and Decoder are plain values; the Encoder's buffer
//! and a Decoder's target buffers reuse their capacity across frames
//! (clear() forgets content, keeps capacity — the mon::Snapshot style).
//! Thread-safety: instances are single-thread; encoded bytes are immutable
//! values that may cross threads or processes freely.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "sim/time.hpp"

namespace loom::wire {

/// Format version stamped into every frame header.  Bump on any layout
/// change; readers reject frames from a different version with a
/// positioned diagnostic (never a misparse).  Version 2 extended the
/// CampaignOptions payload with the supervision knobs (timeout, retries,
/// allow_partial, fault position) and the CampaignResult payload with the
/// per-shard failure records of degraded runs.  Version 3 added the
/// lane-batched wave surface: the lane_width knob in CampaignOptions and
/// the lane_waves / lanes_filled / lane_capacity counters in
/// CampaignResult.
constexpr std::uint8_t kWireVersion = 3;

/// "LOOM" as a little-endian u32 (the file starts with the bytes L O O M).
constexpr std::uint32_t kMagic = 0x4D4F4F4Cu;

/// Hard ceiling on one frame's payload: an oversized length prefix is a
/// diagnostic, never a gigantic allocation.
constexpr std::uint64_t kMaxFrameBytes = std::uint64_t{1} << 30;

constexpr std::size_t kFrameHeaderBytes = 16;

/// What a frame's payload bytes mean.
enum class Payload : std::uint8_t {
  Trace = 1,          // abv::Trace (wire/payload.hpp)
  Options = 2,        // abv::CampaignOptions
  Result = 3,         // abv::CampaignResult
  Snapshot = 4,       // mon::Snapshot word buffer
  WorkerRequest = 5,  // parent -> worker: alphabet, properties, shards
  WorkerPartial = 6,  // worker -> parent: one job's partial result
  WorkerDone = 7,     // worker -> parent: end of stream, summary count
  WorkerError = 8,    // worker -> parent: diagnostic before exiting
};

const char* to_string(Payload p);

/// A decode failure: the byte offset (into the buffer handed to the
/// Decoder) where the problem was detected, plus a human-readable message.
struct DecodeError {
  std::size_t offset = 0;
  std::string message;

  /// "wire: byte 12: truncated u64" — the positioned diagnostic form every
  /// decode error surfaces as.
  std::string to_string() const;
};

/// Appends primitives to a byte buffer in wire order.  clear() keeps the
/// buffer's capacity, so one Encoder serves any number of frames without
/// steady-state heap traffic.
class Encoder {
 public:
  void clear() { bytes_.clear(); }
  bool empty() const { return bytes_.empty(); }
  std::size_t size() const { return bytes_.size(); }
  const std::vector<std::uint8_t>& bytes() const { return bytes_; }

  void put_u8(std::uint8_t v) { bytes_.push_back(v); }
  void put_bool(bool b) { put_u8(b ? 1 : 0); }
  void put_u32(std::uint32_t v);
  void put_u64(std::uint64_t v);
  /// Bit-exact double transport (no text round-trip loss).
  void put_f64(double v);
  void put_time(sim::Time t) { put_u64(t.picoseconds()); }
  /// u64 length + raw bytes.
  void put_string(std::string_view s);
  /// Length word + 64-bit packed payload (mon::Snapshot::put_bits layout).
  void put_bits(const std::vector<bool>& bits);

 private:
  std::vector<std::uint8_t> bytes_;
};

/// Sequential reader over a payload byte range with sticky, positioned
/// error state: the first failure records (offset, message), and every
/// later read returns a zero value without touching memory.  Callers check
/// ok() once at the end (or wherever they need to bail early).
class Decoder {
 public:
  Decoder(const std::uint8_t* data, std::size_t size)
      : data_(data), size_(size) {}
  explicit Decoder(const std::vector<std::uint8_t>& bytes)
      : Decoder(bytes.data(), bytes.size()) {}

  bool ok() const { return !failed_; }
  const DecodeError& error() const { return error_; }
  std::size_t offset() const { return offset_; }
  std::size_t remaining() const { return failed_ ? 0 : size_ - offset_; }
  /// True when every payload byte has been consumed (and nothing failed) —
  /// decode functions end on an exhausted decoder or the formats drifted.
  bool exhausted() const { return !failed_ && offset_ == size_; }

  /// Records a failure at the current offset (first failure wins).
  void fail(std::string message) { fail_at(offset_, std::move(message)); }
  void fail_at(std::size_t offset, std::string message);

  std::uint8_t u8();
  std::uint32_t u32();
  std::uint64_t u64();
  /// A u8 that must be 0 or 1 (anything else is a diagnostic, so a flipped
  /// bit cannot smuggle a vacuously-true flag through).
  bool boolean();
  double f64();
  sim::Time time() { return sim::Time::ps(u64()); }
  /// Assigns into `out` (capacity-reusing); validates the length against
  /// the bytes actually remaining before sizing anything.
  void string_into(std::string& out);
  /// Restores a put_bits() payload; validates before sizing `out`.
  void bits_into(std::vector<bool>& out);

  /// Validates a count prefix: at least `min_bytes_each * count` bytes must
  /// remain, so a corrupt count fails here instead of sizing a container.
  /// Returns 0 after recording the failure.
  std::uint64_t count(std::uint64_t min_bytes_each, const char* what);

 private:
  const std::uint8_t* take(std::size_t n, const char* what);

  const std::uint8_t* data_ = nullptr;
  std::size_t size_ = 0;
  std::size_t offset_ = 0;
  bool failed_ = false;
  DecodeError error_;
};

/// Appends one framed payload (header + the encoder's bytes) to `out`.
void write_frame(std::vector<std::uint8_t>& out, Payload tag,
                 const Encoder& payload);

/// A parsed frame view into the caller's buffer (no copy).
struct Frame {
  Payload tag = Payload::Trace;
  const std::uint8_t* data = nullptr;
  std::size_t size = 0;
};

/// A validated frame header (streaming readers parse this first, then read
/// exactly `length` payload bytes off the pipe).
struct FrameHeader {
  Payload tag = Payload::Trace;
  std::uint64_t length = 0;
};

/// Validates the 16 header bytes alone: magic, version, tag, reserved
/// bytes and the length ceiling (kMaxFrameBytes) — everything except
/// whether the payload bytes are actually present.
bool parse_frame_header(const std::uint8_t* data, std::size_t size,
                        FrameHeader& header, DecodeError& err);

/// Parses one frame starting at `data`.  On success fills `frame` and
/// `consumed` and returns true; on any malformation (short header, bad
/// magic, foreign version, unknown tag, nonzero reserved bytes, oversized
/// or truncated length) records a positioned diagnostic in `err` and
/// returns false.  `data + size` may extend past the frame (streams).
bool parse_frame(const std::uint8_t* data, std::size_t size, Frame& frame,
                 std::size_t& consumed, DecodeError& err);

}  // namespace loom::wire

//! Payload codecs: the engine types that cross the wire, written and read
//! in a fixed field order over the wire::Encoder/Decoder primitives.
//!
//! Four public payloads (traces, campaign options, campaign results,
//! monitor snapshots) plus the worker-protocol payloads behind
//! cross-process campaign sharding.  Every decode_* validates as it reads
//! — counts against remaining bytes before sizing containers, enum bytes
//! against their range, snapshot tag words against the snapshot format
//! version — and reports failures through the Decoder's positioned
//! diagnostic, so a corrupt or hostile payload rejects cleanly
//! (tests/wire_fuzz_test.cpp holds the codecs to that under ASan+UBSan).
//!
//! Identity contract (tests/wire_roundtrip_test.cpp): for every payload
//! type, decode(encode(x)) compares equal to x field for field — doubles
//! bit for bit, because the sixth differential invariant (in-process ≡
//! cross-process campaigns) rides on these codecs.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "abv/campaign.hpp"
#include "mon/snapshot.hpp"
#include "spec/alphabet.hpp"
#include "spec/reference.hpp"
#include "wire/wire.hpp"

namespace loom::wire {

/// abv::Trace (Payload::Trace): a name table (texts in first-appearance
/// order) plus events as (table index, picoseconds), so the byte stream is
/// self-contained — ids are re-interned by the receiving alphabet.
void encode_trace(Encoder& e, const spec::Trace& trace,
                  const spec::Alphabet& ab);
/// Interns the table into `ab`; returns false (with the Decoder holding a
/// positioned error) on any malformation.
bool decode_trace(Decoder& d, spec::Trace& trace, spec::Alphabet& ab);

/// abv::CampaignOptions (Payload::Options).  The plan_cache pointer does
/// not cross the wire (a decoded options block has plan_cache == nullptr);
/// every other field round-trips, workers/worker_command/worker_fault
/// included — the parent zeroes those itself before handing options to a
/// worker, so a worker never recursively spawns workers.
void encode_options(Encoder& e, const abv::CampaignOptions& options);
bool decode_options(Decoder& d, abv::CampaignOptions& options);

/// abv::CampaignResult (Payload::Result): every counter, the five
/// MutationStats, both coverage ratios (bit-exact f64), MonitorStats,
/// CompileStats, the engine diagnostics (retry count included) and the
/// per-shard failure records of a degraded run.
void encode_result(Encoder& e, const abv::CampaignResult& result);
bool decode_result(Decoder& d, abv::CampaignResult& result);

/// mon::Snapshot (Payload::Snapshot): the word sequence plus the string
/// pool.  decode_snapshot rejects a snapshot whose leading tag word names
/// a foreign format version (the same policy Monitor::restore enforces),
/// with a positioned diagnostic instead of an exception.
void encode_snapshot(Encoder& e, const mon::Snapshot& snap);
bool decode_snapshot(Decoder& d, mon::Snapshot& snap);

// ---------------------------------------------------------------------------
// Worker protocol (parent campaign process <-> shard worker process).
//
// One request frame travels parent -> worker; the worker answers with one
// WorkerPartial frame per assigned shard followed by a WorkerDone frame
// (or a WorkerError frame naming the failure before a nonzero exit).  The
// parent buffers partials and merges only after a clean Done — a worker
// that dies or corrupts its stream contributes nothing.

/// One shard assignment: `shard` is the global shard index in the parent's
/// layout (partials slot back into the same merge order the in-process
/// engine uses), `job` the property index, [unit_begin, unit_end) the
/// (seed × slot) unit range.
struct WorkerShardSpec {
  std::uint64_t shard = 0;
  std::uint64_t job = 0;
  std::uint64_t unit_begin = 0;
  std::uint64_t unit_end = 0;
};

/// Parent -> worker: everything a fresh process needs to reproduce the
/// parent's interning and plans bit for bit — the alphabet's names in id
/// order (with directions), each property's normalized text
/// (spec::to_string, re-parsed by the worker), the options block and the
/// assigned shards.
struct WorkerRequestData {
  std::vector<std::string> names;
  std::vector<std::uint8_t> directions;  // spec::Direction per name
  std::vector<std::string> properties;
  abv::CampaignOptions options;
  std::vector<WorkerShardSpec> shards;
};

void encode_worker_request(Encoder& e, const WorkerRequestData& req);
bool decode_worker_request(Decoder& d, WorkerRequestData& req);

/// Worker -> parent: one shard's outcome — the partial CampaignResult, the
/// names the shard observed (bit per alphabet id; the parent replays them
/// through AlphabetCoverage::record) and, for Drct-backed properties, the
/// recognizer coverage rows.
struct WorkerPartialData {
  std::uint64_t shard = 0;
  std::uint64_t job = 0;
  abv::CampaignResult partial;
  std::vector<bool> alphabet_seen;
  bool has_recognizer = false;
  std::vector<std::vector<abv::RecognizerCoverage::RangeCov>> recognizer_rows;
};

void encode_worker_partial(Encoder& e, const WorkerPartialData& partial);
bool decode_worker_partial(Decoder& d, WorkerPartialData& partial);

/// Worker -> parent trailer: the number of partials that preceded it (the
/// parent cross-checks against its assignment before merging anything).
void encode_worker_done(Encoder& e, std::uint64_t partials);
bool decode_worker_done(Decoder& d, std::uint64_t& partials);

/// Worker -> parent: a diagnostic message sent before a nonzero exit.
void encode_worker_error(Encoder& e, const std::string& message);
bool decode_worker_error(Decoder& d, std::string& message);

}  // namespace loom::wire

#include "wire/process.hpp"

#if LOOM_WIRE_HAS_PROCESS

#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstring>
#include <stdexcept>

#include <fcntl.h>
#include <poll.h>
#include <sys/wait.h>
#include <unistd.h>

namespace loom::wire {

namespace {

using Clock = std::chrono::steady_clock;

// Milliseconds until `deadline`, clamped at 0 (poll() treats a negative
// timeout as infinite, which is exactly the bug a clamp prevents).
int remaining_ms(Clock::time_point deadline) {
  const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
                        deadline - Clock::now())
                        .count();
  if (left <= 0) return 0;
  if (left > 0x7fffffff) return 0x7fffffff;
  return static_cast<int>(left);
}

// Waits until `fd` is readable or the deadline passes.  True when readable
// (POLLHUP/POLLERR count: the following read() reports EOF or the error);
// false on deadline expiry.
bool poll_readable_until(int fd, Clock::time_point deadline) {
  for (;;) {
    struct pollfd pfd;
    pfd.fd = fd;
    pfd.events = POLLIN;
    pfd.revents = 0;
    const int rc = ::poll(&pfd, 1, remaining_ms(deadline));
    if (rc > 0) return true;
    if (rc == 0) return false;
    if (errno != EINTR) return true;  // let read() surface the error
  }
}

// Creates a close-on-exec pipe: pipe2(O_CLOEXEC) where available, else
// pipe() + fcntl(FD_CLOEXEC) on both ends.  Returns 0 or -1 with errno.
int pipe_cloexec(int fds[2]) {
#if defined(O_CLOEXEC) && defined(__linux__)
  return ::pipe2(fds, O_CLOEXEC);
#else
  if (::pipe(fds) != 0) return -1;
  for (int i = 0; i < 2; ++i) {
    const int flags = ::fcntl(fds[i], F_GETFD);
    if (flags < 0 || ::fcntl(fds[i], F_SETFD, flags | FD_CLOEXEC) < 0) {
      const int saved = errno;
      ::close(fds[0]);
      ::close(fds[1]);
      errno = saved;
      return -1;
    }
  }
  return 0;
#endif
}

}  // namespace

bool write_all(int fd, const std::uint8_t* data, std::size_t n) {
  while (n > 0) {
    const ssize_t w = ::write(fd, data, n);
    if (w < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    data += w;
    n -= static_cast<std::size_t>(w);
  }
  return true;
}

long read_exact(int fd, std::uint8_t* out, std::size_t n) {
  std::size_t got = 0;
  while (got < n) {
    const ssize_t r = ::read(fd, out + got, n - got);
    if (r < 0) {
      if (errno == EINTR) continue;
      return -1;
    }
    if (r == 0) break;  // EOF
    got += static_cast<std::size_t>(r);
  }
  return static_cast<long>(got);
}

void ignore_sigpipe() {
  // Armed once per process image; the disposition survives fork() and is
  // re-armed by run_campaign_worker after exec, so both halves of the pipe
  // protocol see EPIPE instead of dying.  sigaction instead of signal():
  // defined semantics everywhere, no accidental SA_RESTART surprises.
  static const bool armed = [] {
    struct sigaction sa;
    std::memset(&sa, 0, sizeof sa);
    sa.sa_handler = SIG_IGN;
    ::sigemptyset(&sa.sa_mask);
    ::sigaction(SIGPIPE, &sa, nullptr);
    return true;
  }();
  (void)armed;
}

bool set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL);
  if (flags < 0) return false;
  return ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) >= 0;
}

WorkerProcess::WorkerProcess(WorkerProcess&& other) noexcept {
  *this = std::move(other);
}

WorkerProcess& WorkerProcess::operator=(WorkerProcess&& other) noexcept {
  if (this == &other) return *this;
  close_to_child();
  close_from_child();
  pid = other.pid;
  to_child = other.to_child;
  from_child = other.from_child;
  index = other.index;
  waited_ = other.waited_;
  status_ = other.status_;
  other.pid = -1;
  other.to_child = -1;
  other.from_child = -1;
  return *this;
}

WorkerProcess::~WorkerProcess() {
  close_to_child();
  close_from_child();
}

void WorkerProcess::close_to_child() {
  if (to_child >= 0) ::close(to_child);
  to_child = -1;
}

void WorkerProcess::close_from_child() {
  if (from_child >= 0) ::close(from_child);
  from_child = -1;
}

int WorkerProcess::wait() {
  if (!waited_ && pid > 0) {
    int status = 0;
    while (::waitpid(static_cast<pid_t>(pid), &status, 0) < 0) {
      if (errno != EINTR) {
        status = 0;
        break;
      }
    }
    status_ = status;
    waited_ = true;
  }
  return status_;
}

bool WorkerProcess::wait_for(long timeout_ms, int& status) {
  if (waited_ || pid <= 0) {
    status = status_;
    return true;
  }
  const auto deadline =
      Clock::now() + std::chrono::milliseconds(timeout_ms > 0 ? timeout_ms : 0);
  for (;;) {
    int raw = 0;
    const pid_t r = ::waitpid(static_cast<pid_t>(pid), &raw, WNOHANG);
    if (r == static_cast<pid_t>(pid)) {
      status_ = raw;
      waited_ = true;
      status = status_;
      return true;
    }
    if (r < 0 && errno != EINTR) {
      // ECHILD etc.: nothing left to reap — report "done" with a zero
      // status rather than spinning until the deadline.
      status_ = 0;
      waited_ = true;
      status = status_;
      return true;
    }
    if (Clock::now() >= deadline) return false;
    // Exits are signaled by SIGCHLD, not by a pollable fd here; a short
    // sleep bounds the reap latency without burning a core.
    ::usleep(1000);
  }
}

int WorkerProcess::terminate(long grace_ms) {
  close_to_child();
  close_from_child();
  if (waited_ || pid <= 0) return status_;
  ::kill(static_cast<pid_t>(pid), SIGTERM);
  int status = 0;
  if (wait_for(grace_ms, status)) return status;
  ::kill(static_cast<pid_t>(pid), SIGKILL);
  return wait();  // SIGKILL cannot be ignored; this reaps promptly
}

WorkerProcess spawn_worker(const std::vector<std::string>& argv,
                           const std::function<int(int, int)>& child_main,
                           std::size_t index,
                           const std::vector<int>& inherited_fds) {
  int to_child[2];    // parent writes [1], child reads [0]
  int from_child[2];  // child writes [1], parent reads [0]
  if (pipe_cloexec(to_child) != 0) {
    throw std::runtime_error(std::string("pipe failed: ") +
                             std::strerror(errno));
  }
  if (pipe_cloexec(from_child) != 0) {
    const int saved = errno;
    ::close(to_child[0]);
    ::close(to_child[1]);
    throw std::runtime_error(std::string("pipe failed: ") +
                             std::strerror(saved));
  }
  const pid_t pid = ::fork();
  if (pid < 0) {
    const int saved = errno;
    ::close(to_child[0]);
    ::close(to_child[1]);
    ::close(from_child[0]);
    ::close(from_child[1]);
    throw std::runtime_error(std::string("fork failed: ") +
                             std::strerror(saved));
  }
  if (pid == 0) {
    // Child.  Close the parent's ends first so EOF propagates.
    ::close(to_child[1]);
    ::close(from_child[0]);
    if (argv.empty()) {
      // Fork-only mode: no exec, so O_CLOEXEC never fires — close the
      // inherited parent-side pipe ends of sibling workers explicitly, or
      // a sibling's EOF would wait on this process too.
      for (const int fd : inherited_fds) {
        if (fd >= 0) ::close(fd);
      }
      // Run the worker loop in this image and leave via _exit — no
      // destructors, no atexit; the parent's state must not be torn down
      // twice.
      int code = 127;
      if (child_main) code = child_main(to_child[0], from_child[1]);
      ::_exit(code);
    }
    // Exec mode: the worker speaks wire on stdin/stdout.  dup2 clears
    // FD_CLOEXEC on the duplicate, so exactly these two descriptors
    // survive the exec; every other pipe end closes itself.
    if (::dup2(to_child[0], STDIN_FILENO) < 0 ||
        ::dup2(from_child[1], STDOUT_FILENO) < 0) {
      ::_exit(126);  // abv::kWorkerExitExecSetup
    }
    ::close(to_child[0]);
    ::close(from_child[1]);
    std::vector<char*> cargv;
    cargv.reserve(argv.size() + 1);
    for (const auto& a : argv) cargv.push_back(const_cast<char*>(a.c_str()));
    cargv.push_back(nullptr);
    ::execvp(cargv[0], cargv.data());
    ::_exit(127);  // abv::kWorkerExitExecMissing: exec itself failed
  }
  // Parent.
  ::close(to_child[0]);
  ::close(from_child[1]);
  WorkerProcess w;
  w.pid = pid;
  w.to_child = to_child[1];
  w.from_child = from_child[0];
  w.index = index;
  return w;
}

std::string describe_wait_status(int status) {
  if (WIFEXITED(status)) {
    return "exited with code " + std::to_string(WEXITSTATUS(status));
  }
  if (WIFSIGNALED(status)) {
    return "killed by signal " + std::to_string(WTERMSIG(status));
  }
  return "ended with wait status " + std::to_string(status);
}

int exit_code(int status) {
  return WIFEXITED(status) ? WEXITSTATUS(status) : -1;
}

FdFrameReader::Status FdFrameReader::next(Frame& frame, DecodeError& err) {
  const bool timed = timeout_ms_ > 0;
  const auto deadline = Clock::now() + std::chrono::milliseconds(timed ? timeout_ms_ : 0);

  // One incremental read step.  Returns the bytes read (> 0), 0 on EOF, or
  // a negative sentinel: -1 read error, -2 deadline expired, -3 would
  // block without a deadline (the caller's poll loop owns the waiting).
  // When a deadline is armed the poll comes *before* the read: the fd may
  // be in blocking mode (a worker's stdin), and a blocked read() would
  // never notice the deadline at all.
  const auto step = [&](std::uint8_t* dst, std::size_t want) -> long {
    for (;;) {
      if (timed && !poll_readable_until(fd_, deadline)) return -2;
      const ssize_t r = ::read(fd_, dst, want);
      if (r >= 0) return static_cast<long>(r);
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        if (!timed) return -3;
        continue;
      }
      return -1;
    }
  };

  for (;;) {
    if (!in_payload_) {
      while (header_got_ < kFrameHeaderBytes) {
        if (timed && Clock::now() >= deadline) {
          err.offset = header_got_;
          err.message = "read timed out after " + std::to_string(timeout_ms_) +
                        " ms inside a frame header (" +
                        std::to_string(header_got_) + " of 16 bytes)";
          return Status::Timeout;
        }
        const long r = step(header_ + header_got_,
                            kFrameHeaderBytes - header_got_);
        if (r > 0) {
          header_got_ += static_cast<std::size_t>(r);
          continue;
        }
        if (r == 0) {
          if (header_got_ == 0) return Status::Eof;
          err.offset = header_got_;
          err.message = "stream ended inside a frame header (" +
                        std::to_string(header_got_) + " of 16 bytes)";
          return Status::Error;
        }
        if (r == -3) return Status::Again;
        if (r == -2) {
          err.offset = header_got_;
          err.message = "read timed out after " + std::to_string(timeout_ms_) +
                        " ms inside a frame header (" +
                        std::to_string(header_got_) + " of 16 bytes)";
          return Status::Timeout;
        }
        err.offset = header_got_;
        err.message = "pipe read failed";
        return Status::Error;
      }
      FrameHeader h;
      if (!parse_frame_header(header_, kFrameHeaderBytes, h, err)) {
        return Status::Error;
      }
      // parse_frame_header already capped the length at kMaxFrameBytes, so
      // this resize is bounded; the buffer's capacity survives across
      // frames.
      pending_tag_ = h.tag;
      payload_.resize(static_cast<std::size_t>(h.length));
      payload_got_ = 0;
      in_payload_ = true;
    }
    while (payload_got_ < payload_.size()) {
      if (timed && Clock::now() >= deadline) {
        err.offset = kFrameHeaderBytes + payload_got_;
        err.message = "read timed out after " + std::to_string(timeout_ms_) +
                      " ms inside a frame payload (" +
                      std::to_string(payload_got_) + " of " +
                      std::to_string(payload_.size()) + " bytes)";
        return Status::Timeout;
      }
      const long r =
          step(payload_.data() + payload_got_, payload_.size() - payload_got_);
      if (r > 0) {
        payload_got_ += static_cast<std::size_t>(r);
        continue;
      }
      if (r == 0) {
        err.offset = kFrameHeaderBytes + payload_got_;
        err.message = "stream ended inside a frame payload (" +
                      std::to_string(payload_got_) + " of " +
                      std::to_string(payload_.size()) + " bytes)";
        return Status::Error;
      }
      if (r == -3) return Status::Again;
      if (r == -2) {
        err.offset = kFrameHeaderBytes + payload_got_;
        err.message = "read timed out after " + std::to_string(timeout_ms_) +
                      " ms inside a frame payload (" +
                      std::to_string(payload_got_) + " of " +
                      std::to_string(payload_.size()) + " bytes)";
        return Status::Timeout;
      }
      err.offset = kFrameHeaderBytes + payload_got_;
      err.message = "pipe read failed";
      return Status::Error;
    }
    // Frame complete: reset the state machine for the next call; the
    // payload buffer stays valid (and owned) until then.
    in_payload_ = false;
    header_got_ = 0;
    ++frames_read_;
    frame.tag = pending_tag_;
    frame.data = payload_.data();
    frame.size = payload_.size();
    return Status::Frame;
  }
}

}  // namespace loom::wire

#endif  // LOOM_WIRE_HAS_PROCESS

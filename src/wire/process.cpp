#include "wire/process.hpp"

#if LOOM_WIRE_HAS_PROCESS

#include <cerrno>
#include <csignal>
#include <cstring>
#include <stdexcept>

#include <sys/wait.h>
#include <unistd.h>

namespace loom::wire {

bool write_all(int fd, const std::uint8_t* data, std::size_t n) {
  while (n > 0) {
    const ssize_t w = ::write(fd, data, n);
    if (w < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    data += w;
    n -= static_cast<std::size_t>(w);
  }
  return true;
}

long read_exact(int fd, std::uint8_t* out, std::size_t n) {
  std::size_t got = 0;
  while (got < n) {
    const ssize_t r = ::read(fd, out + got, n - got);
    if (r < 0) {
      if (errno == EINTR) continue;
      return -1;
    }
    if (r == 0) break;  // EOF
    got += static_cast<std::size_t>(r);
  }
  return static_cast<long>(got);
}

void ignore_sigpipe() { ::signal(SIGPIPE, SIG_IGN); }

WorkerProcess::WorkerProcess(WorkerProcess&& other) noexcept {
  *this = std::move(other);
}

WorkerProcess& WorkerProcess::operator=(WorkerProcess&& other) noexcept {
  if (this == &other) return *this;
  close_to_child();
  close_from_child();
  pid = other.pid;
  to_child = other.to_child;
  from_child = other.from_child;
  index = other.index;
  waited_ = other.waited_;
  status_ = other.status_;
  other.pid = -1;
  other.to_child = -1;
  other.from_child = -1;
  return *this;
}

WorkerProcess::~WorkerProcess() {
  close_to_child();
  close_from_child();
}

void WorkerProcess::close_to_child() {
  if (to_child >= 0) ::close(to_child);
  to_child = -1;
}

void WorkerProcess::close_from_child() {
  if (from_child >= 0) ::close(from_child);
  from_child = -1;
}

int WorkerProcess::wait() {
  if (!waited_ && pid > 0) {
    int status = 0;
    while (::waitpid(static_cast<pid_t>(pid), &status, 0) < 0) {
      if (errno != EINTR) {
        status = 0;
        break;
      }
    }
    status_ = status;
    waited_ = true;
  }
  return status_;
}

WorkerProcess spawn_worker(const std::vector<std::string>& argv,
                           const std::function<int(int, int)>& child_main,
                           std::size_t index) {
  int to_child[2];    // parent writes [1], child reads [0]
  int from_child[2];  // child writes [1], parent reads [0]
  if (::pipe(to_child) != 0) {
    throw std::runtime_error(std::string("pipe failed: ") +
                             std::strerror(errno));
  }
  if (::pipe(from_child) != 0) {
    const int saved = errno;
    ::close(to_child[0]);
    ::close(to_child[1]);
    throw std::runtime_error(std::string("pipe failed: ") +
                             std::strerror(saved));
  }
  const pid_t pid = ::fork();
  if (pid < 0) {
    const int saved = errno;
    ::close(to_child[0]);
    ::close(to_child[1]);
    ::close(from_child[0]);
    ::close(from_child[1]);
    throw std::runtime_error(std::string("fork failed: ") +
                             std::strerror(saved));
  }
  if (pid == 0) {
    // Child.  Close the parent's ends first so EOF propagates.
    ::close(to_child[1]);
    ::close(from_child[0]);
    if (argv.empty()) {
      // Fork-only mode: run the worker loop in this image and leave via
      // _exit — no destructors, no atexit; the parent's state must not be
      // torn down twice.
      int code = 127;
      if (child_main) code = child_main(to_child[0], from_child[1]);
      ::_exit(code);
    }
    // Exec mode: the worker speaks wire on stdin/stdout.
    if (::dup2(to_child[0], STDIN_FILENO) < 0 ||
        ::dup2(from_child[1], STDOUT_FILENO) < 0) {
      ::_exit(126);
    }
    ::close(to_child[0]);
    ::close(from_child[1]);
    std::vector<char*> cargv;
    cargv.reserve(argv.size() + 1);
    for (const auto& a : argv) cargv.push_back(const_cast<char*>(a.c_str()));
    cargv.push_back(nullptr);
    ::execvp(cargv[0], cargv.data());
    ::_exit(127);  // exec failed
  }
  // Parent.
  ::close(to_child[0]);
  ::close(from_child[1]);
  WorkerProcess w;
  w.pid = pid;
  w.to_child = to_child[1];
  w.from_child = from_child[0];
  w.index = index;
  return w;
}

std::string describe_wait_status(int status) {
  if (WIFEXITED(status)) {
    return "exited with code " + std::to_string(WEXITSTATUS(status));
  }
  if (WIFSIGNALED(status)) {
    return "killed by signal " + std::to_string(WTERMSIG(status));
  }
  return "ended with wait status " + std::to_string(status);
}

int exit_code(int status) {
  return WIFEXITED(status) ? WEXITSTATUS(status) : -1;
}

FdFrameReader::Status FdFrameReader::next(Frame& frame, DecodeError& err) {
  std::uint8_t header[kFrameHeaderBytes];
  const long got = read_exact(fd_, header, sizeof header);
  if (got == 0) return Status::Eof;
  if (got < 0 || static_cast<std::size_t>(got) != sizeof header) {
    err.offset = got < 0 ? 0 : static_cast<std::size_t>(got);
    err.message = got < 0 ? "pipe read failed"
                          : "stream ended inside a frame header (" +
                                std::to_string(got) + " of 16 bytes)";
    return Status::Error;
  }
  FrameHeader h;
  if (!parse_frame_header(header, sizeof header, h, err)) {
    return Status::Error;
  }
  // parse_frame_header already capped the length at kMaxFrameBytes, so
  // this resize is bounded; the buffer's capacity survives across frames.
  payload_.resize(static_cast<std::size_t>(h.length));
  if (h.length > 0) {
    const long body = read_exact(fd_, payload_.data(), payload_.size());
    if (body < 0 || static_cast<std::size_t>(body) != payload_.size()) {
      err.offset =
          kFrameHeaderBytes + (body < 0 ? 0 : static_cast<std::size_t>(body));
      err.message = body < 0 ? "pipe read failed"
                             : "stream ended inside a frame payload (" +
                                   std::to_string(body) + " of " +
                                   std::to_string(payload_.size()) +
                                   " bytes)";
      return Status::Error;
    }
  }
  ++frames_read_;
  frame.tag = h.tag;
  frame.data = payload_.data();
  frame.size = payload_.size();
  return Status::Frame;
}

}  // namespace loom::wire

#endif  // LOOM_WIRE_HAS_PROCESS

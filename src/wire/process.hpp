//! POSIX plumbing for cross-process campaign workers: pipe pairs, worker
//! spawning (fork-only or fork+exec), exact-length pipe I/O and a buffered
//! frame reader over a file descriptor.
//!
//! Everything here is mechanism; the protocol (who writes which frames
//! when) lives in abv/campaign.cpp.  The reader reuses its header and
//! payload buffers across frames, so a parent draining thousands of
//! partial frames allocates only while a frame grows past every earlier
//! one — the mon::Snapshot reuse discipline applied to pipes.
//!
//! Supervision primitives: the reader keeps incremental per-frame state so
//! it can resume after a would-block read (Status::Again on O_NONBLOCK
//! descriptors — the multiplexed drain's building block) and enforces an
//! optional poll(2)-based read deadline (Status::Timeout) so a stalled or
//! trickling peer can never wedge the caller inside read(2).  WorkerProcess
//! grows a bounded wait (wait_for) and a SIGTERM→grace→SIGKILL escalation
//! (terminate) for workers that ignore pipe EOF.
//!
//! Descriptor hygiene: pipes are created close-on-exec (pipe2(O_CLOEXEC)
//! with a fcntl fallback), so exec-mode workers only ever see their own
//! dup2'd stdin/stdout; fork-only children additionally close every fd the
//! caller lists in `inherited_fds`, so a sibling worker can never hold a
//! parent pipe end open and swallow its EOF.
//!
//! Ownership: WorkerProcess owns its two descriptors until close_fds() or
//! wait(); the destructor closes leaked descriptors but never waits (a
//! parent must reap explicitly so exit codes are observed, not lost).
//! Platform: POSIX only (fork/pipe/waitpid); LOOM_WIRE_HAS_PROCESS tells
//! callers whether cross-process mode exists in this build.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "wire/wire.hpp"

#if defined(__unix__) || defined(__APPLE__)
#define LOOM_WIRE_HAS_PROCESS 1
#else
#define LOOM_WIRE_HAS_PROCESS 0
#endif

namespace loom::wire {

#if LOOM_WIRE_HAS_PROCESS

/// Writes all `n` bytes (restarting on EINTR / short writes); false on any
/// write error — e.g. EPIPE after the reader died, which the campaign
/// driver turns into a WorkerFailure instead of a SIGPIPE kill (it ignores
/// the signal around worker I/O).
bool write_all(int fd, const std::uint8_t* data, std::size_t n);

/// Reads exactly `n` bytes.  Returns n on success, 0 on clean EOF before
/// the first byte, and the short count on EOF mid-read; -1 on a read
/// error.  Restarts on EINTR.
long read_exact(int fd, std::uint8_t* out, std::size_t n);

/// Makes SIGPIPE a visible write error (EPIPE) instead of a process kill
/// for the whole program.  sigaction-based and armed exactly once per
/// process image (idempotent under repeated calls); both the supervising
/// parent and the worker child path call it, so an exec'd worker whose
/// parent dies mid-drain fails its writes instead of dying silently.
void ignore_sigpipe();

/// Sets O_NONBLOCK on `fd`; false (with errno set) on fcntl failure.  The
/// multiplexed drain puts worker read-ends in this mode so FdFrameReader
/// returns Status::Again instead of blocking between poll() wakeups.
bool set_nonblocking(int fd);

/// One spawned worker: its pid plus the parent's two pipe ends.
struct WorkerProcess {
  long pid = -1;
  int to_child = -1;    // parent writes the request frame here
  int from_child = -1;  // parent reads partial/done/error frames here
  /// Index in the parent's worker list (diagnostics only).
  std::size_t index = 0;

  WorkerProcess() = default;
  WorkerProcess(WorkerProcess&& other) noexcept;
  WorkerProcess& operator=(WorkerProcess&& other) noexcept;
  WorkerProcess(const WorkerProcess&) = delete;
  WorkerProcess& operator=(const WorkerProcess&) = delete;
  ~WorkerProcess();

  void close_to_child();
  void close_from_child();

  /// waitpid for this worker; returns the raw wait status (idempotent —
  /// later calls return the first status).  Blocks until the worker exits.
  int wait();

  /// Bounded wait: polls waitpid(WNOHANG) for up to `timeout_ms`
  /// milliseconds.  True (with the status in `status`) once the worker is
  /// reaped — also on later calls, like wait(); false if it is still
  /// running when the deadline passes.  Never blocks longer than the
  /// deadline, so supervision tests stay well under the ctest timeout.
  bool wait_for(long timeout_ms, int& status);

  /// SIGTERM→grace→SIGKILL escalation: closes both pipe ends (EOF/EPIPE
  /// for a cooperative worker), sends SIGTERM, waits up to `grace_ms`,
  /// then SIGKILLs and reaps unconditionally.  Returns the final wait
  /// status.  Idempotent: an already-reaped worker just returns its
  /// recorded status.
  int terminate(long grace_ms);

 private:
  bool waited_ = false;
  int status_ = 0;
};

/// Spawns one worker.  With a non-empty `argv` the child execs it with the
/// pipes dup2'd onto stdin/stdout (the `loomcheck --worker` path).  With
/// an empty `argv` the child never execs: it runs `child_main(read_fd,
/// write_fd)` in the forked image and _exit()s with its return value —
/// the single-binary path tests use.  Throws std::runtime_error when the
/// pipes or the fork itself fail.
///
/// `inherited_fds` lists descriptors the fork-only child must close before
/// running child_main — typically the parent-side pipe ends of its sibling
/// workers, which O_CLOEXEC cannot cover on the no-exec path.  Exec-mode
/// children need no list: every pipe is close-on-exec.
WorkerProcess spawn_worker(const std::vector<std::string>& argv,
                           const std::function<int(int, int)>& child_main,
                           std::size_t index,
                           const std::vector<int>& inherited_fds = {});

/// Renders a waitpid status ("exited with code 5", "killed by signal 9")
/// for WorkerFailure messages; exit_code() extracts the code, -1 when the
/// worker died of a signal instead of exiting.
std::string describe_wait_status(int status);
int exit_code(int status);

/// Reads length-prefixed frames off a descriptor, one at a time, into
/// capacity-reusing buffers.  The Frame view returned by next() is valid
/// until the following next() call.
///
/// The reader is an incremental state machine: a read that would block on
/// an O_NONBLOCK descriptor returns Status::Again with the partial frame
/// retained, and the following next() resumes exactly where it stopped —
/// which is what lets a supervisor multiplex many workers' streams through
/// one poll(2) loop without a slow worker hiding a sibling's failure.
/// With a read deadline set (set_read_timeout_ms), next() instead poll()s
/// for more bytes and returns Status::Timeout once the whole frame has
/// failed to arrive within the budget — a trickling peer (one byte per
/// interval) times out exactly like a silent one.
class FdFrameReader {
 public:
  explicit FdFrameReader(int fd) : fd_(fd) {}

  enum class Status {
    Frame,    // `frame` holds a validated frame
    Eof,      // clean end of stream at a frame boundary
    Error,    // `err` holds the positioned diagnostic
    Again,    // O_NONBLOCK and no complete frame yet; call next() later
    Timeout,  // the read deadline expired inside a frame read
  };

  /// Per-call deadline for completing one frame, in milliseconds; <= 0
  /// (the default) disables the deadline.  With a deadline set, a read
  /// that would block poll()s for the remaining budget instead of
  /// returning Again.
  void set_read_timeout_ms(long ms) { timeout_ms_ = ms; }

  Status next(Frame& frame, DecodeError& err);

 private:
  int fd_;
  long timeout_ms_ = 0;
  std::vector<std::uint8_t> payload_;
  std::uint8_t header_[16] = {};
  std::size_t header_got_ = 0;
  std::size_t payload_got_ = 0;
  bool in_payload_ = false;
  Payload pending_tag_ = Payload::Trace;
  std::uint64_t frames_read_ = 0;
};

#endif  // LOOM_WIRE_HAS_PROCESS

}  // namespace loom::wire

//! POSIX plumbing for cross-process campaign workers: pipe pairs, worker
//! spawning (fork-only or fork+exec), exact-length pipe I/O and a buffered
//! frame reader over a file descriptor.
//!
//! Everything here is mechanism; the protocol (who writes which frames
//! when) lives in abv/campaign.cpp.  The reader reuses its header and
//! payload buffers across frames, so a parent draining thousands of
//! partial frames allocates only while a frame grows past every earlier
//! one — the mon::Snapshot reuse discipline applied to pipes.
//!
//! Ownership: WorkerProcess owns its two descriptors until close_fds() or
//! wait(); the destructor closes leaked descriptors but never waits (a
//! parent must reap explicitly so exit codes are observed, not lost).
//! Platform: POSIX only (fork/pipe/waitpid); LOOM_WIRE_HAS_PROCESS tells
//! callers whether cross-process mode exists in this build.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "wire/wire.hpp"

#if defined(__unix__) || defined(__APPLE__)
#define LOOM_WIRE_HAS_PROCESS 1
#else
#define LOOM_WIRE_HAS_PROCESS 0
#endif

namespace loom::wire {

#if LOOM_WIRE_HAS_PROCESS

/// Writes all `n` bytes (restarting on EINTR / short writes); false on any
/// write error — e.g. EPIPE after the reader died, which the campaign
/// driver turns into a WorkerFailure instead of a SIGPIPE kill (it ignores
/// the signal around worker I/O).
bool write_all(int fd, const std::uint8_t* data, std::size_t n);

/// Reads exactly `n` bytes.  Returns n on success, 0 on clean EOF before
/// the first byte, and the short count on EOF mid-read; -1 on a read
/// error.  Restarts on EINTR.
long read_exact(int fd, std::uint8_t* out, std::size_t n);

/// Makes SIGPIPE a visible write error (EPIPE) instead of a process kill
/// for the whole program; idempotent.
void ignore_sigpipe();

/// One spawned worker: its pid plus the parent's two pipe ends.
struct WorkerProcess {
  long pid = -1;
  int to_child = -1;    // parent writes the request frame here
  int from_child = -1;  // parent reads partial/done/error frames here
  /// Index in the parent's worker list (diagnostics only).
  std::size_t index = 0;

  WorkerProcess() = default;
  WorkerProcess(WorkerProcess&& other) noexcept;
  WorkerProcess& operator=(WorkerProcess&& other) noexcept;
  WorkerProcess(const WorkerProcess&) = delete;
  WorkerProcess& operator=(const WorkerProcess&) = delete;
  ~WorkerProcess();

  void close_to_child();
  void close_from_child();

  /// waitpid for this worker; returns the raw wait status (idempotent —
  /// later calls return the first status).
  int wait();

 private:
  bool waited_ = false;
  int status_ = 0;
};

/// Spawns one worker.  With a non-empty `argv` the child execs it with the
/// pipes dup2'd onto stdin/stdout (the `loomcheck --worker` path).  With
/// an empty `argv` the child never execs: it runs `child_main(read_fd,
/// write_fd)` in the forked image and _exit()s with its return value —
/// the single-binary path tests use.  Throws std::runtime_error when the
/// pipes or the fork itself fail.
WorkerProcess spawn_worker(const std::vector<std::string>& argv,
                           const std::function<int(int, int)>& child_main,
                           std::size_t index);

/// Renders a waitpid status ("exited with code 5", "killed by signal 9")
/// for WorkerFailure messages; exit_code() extracts the code, -1 when the
/// worker died of a signal instead of exiting.
std::string describe_wait_status(int status);
int exit_code(int status);

/// Reads length-prefixed frames off a descriptor, one at a time, into
/// capacity-reusing buffers.  The Frame view returned by next() is valid
/// until the following next() call.
class FdFrameReader {
 public:
  explicit FdFrameReader(int fd) : fd_(fd) {}

  enum class Status {
    Frame,  // `frame` holds a validated frame
    Eof,    // clean end of stream at a frame boundary
    Error,  // `err` holds the positioned diagnostic
  };

  Status next(Frame& frame, DecodeError& err);

 private:
  int fd_;
  std::vector<std::uint8_t> payload_;
  std::uint64_t frames_read_ = 0;
};

#endif  // LOOM_WIRE_HAS_PROCESS

}  // namespace loom::wire

#include "wire/payload.hpp"

#include <unordered_map>

namespace loom::wire {
namespace {

// Shared sub-codecs.  Each encode_/decode_ pair below must mirror field
// order exactly; the round-trip grid (wire_roundtrip_test) catches drift.

void put_size(Encoder& e, std::size_t v) {
  e.put_u64(static_cast<std::uint64_t>(v));
}

std::size_t get_size(Decoder& d) { return static_cast<std::size_t>(d.u64()); }

void encode_mutation_stats(Encoder& e, const abv::MutationStats& m) {
  put_size(e, m.applied);
  put_size(e, m.invalid);
  put_size(e, m.detected);
  put_size(e, m.missed);
}

void decode_mutation_stats(Decoder& d, abv::MutationStats& m) {
  m.applied = get_size(d);
  m.invalid = get_size(d);
  m.detected = get_size(d);
  m.missed = get_size(d);
}

void encode_backend(Encoder& e, mon::Backend b) {
  e.put_u8(static_cast<std::uint8_t>(b));
}

mon::Backend decode_backend(Decoder& d) {
  const std::size_t at = d.offset();
  const std::uint8_t b = d.u8();
  if (d.ok() && b > static_cast<std::uint8_t>(mon::Backend::Vm)) {
    d.fail_at(at, "bad backend byte " + std::to_string(b) +
                      " (want 0..3: Auto/Drct/ViaPSL/Vm)");
    return mon::Backend::Auto;
  }
  return static_cast<mon::Backend>(b);
}

void encode_monitor_stats(Encoder& e, const mon::MonitorStats& s) {
  e.put_u64(s.ops);
  e.put_u64(s.events);
  e.put_u64(s.max_ops_per_event);
}

void decode_monitor_stats(Decoder& d, mon::MonitorStats& s) {
  s.ops = d.u64();
  s.events = d.u64();
  s.max_ops_per_event = d.u64();
}

void encode_compile_stats(Encoder& e, const abv::CompileStats& s) {
  put_size(e, s.plans_built);
  put_size(e, s.viapsl_encodings);
  put_size(e, s.instances_stamped);
  put_size(e, s.instance_reuses);
  put_size(e, s.plan_cache_hits);
  put_size(e, s.plan_cache_misses);
  encode_backend(e, s.backend_requested);
  encode_backend(e, s.backend_chosen);
}

void decode_compile_stats(Decoder& d, abv::CompileStats& s) {
  s.plans_built = get_size(d);
  s.viapsl_encodings = get_size(d);
  s.instances_stamped = get_size(d);
  s.instance_reuses = get_size(d);
  s.plan_cache_hits = get_size(d);
  s.plan_cache_misses = get_size(d);
  s.backend_requested = decode_backend(d);
  s.backend_chosen = decode_backend(d);
}

void encode_range_cov(Encoder& e, const abv::RecognizerCoverage::RangeCov& c) {
  e.put_u32(c.name);
  e.put_u8(c.state_mask);
  e.put_u32(c.max_count);
  e.put_u32(c.lo);
  e.put_u32(c.hi);
}

void decode_range_cov(Decoder& d, abv::RecognizerCoverage::RangeCov& c) {
  c.name = d.u32();
  c.state_mask = d.u8();
  c.max_count = d.u32();
  c.lo = d.u32();
  c.hi = d.u32();
}

}  // namespace

void encode_trace(Encoder& e, const spec::Trace& trace,
                  const spec::Alphabet& ab) {
  // Name table in first-appearance order: the stream is self-contained, and
  // a short trace ships only the names it actually uses.
  std::unordered_map<spec::Name, std::uint64_t> table;
  std::vector<spec::Name> order;
  for (const auto& ev : trace) {
    if (table.emplace(ev.name, order.size()).second) order.push_back(ev.name);
  }
  e.put_u64(order.size());
  for (const spec::Name n : order) e.put_string(ab.text(n));
  e.put_u64(trace.size());
  for (const auto& ev : trace) {
    e.put_u64(table.at(ev.name));
    e.put_time(ev.time);
  }
}

bool decode_trace(Decoder& d, spec::Trace& trace, spec::Alphabet& ab) {
  // A name costs at least its 8-byte length word; an event is 16 bytes.
  const std::uint64_t names = d.count(8, "trace name table");
  std::vector<spec::Name> ids;
  ids.reserve(static_cast<std::size_t>(names));
  std::string text;
  for (std::uint64_t i = 0; i < names && d.ok(); ++i) {
    d.string_into(text);
    if (d.ok()) ids.push_back(ab.name(text));
  }
  const std::uint64_t events = d.count(16, "trace event list");
  trace.clear();
  if (d.ok()) trace.reserve(static_cast<std::size_t>(events));
  for (std::uint64_t i = 0; i < events && d.ok(); ++i) {
    const std::size_t at = d.offset();
    const std::uint64_t idx = d.u64();
    const sim::Time t = d.time();
    if (!d.ok()) break;
    if (idx >= ids.size()) {
      d.fail_at(at, "trace event names table entry " + std::to_string(idx) +
                        " of " + std::to_string(ids.size()));
      break;
    }
    trace.push_back({ids[static_cast<std::size_t>(idx)], t});
  }
  return d.ok();
}

void encode_options(Encoder& e, const abv::CampaignOptions& o) {
  e.put_u64(o.first_seed);
  put_size(e, o.seeds);
  put_size(e, o.stimuli.rounds);
  e.put_u32(o.stimuli.noise_permille);
  put_size(e, o.stimuli.noise_names);
  e.put_u64(o.stimuli.max_gap_ns);
  put_size(e, o.mutants_per_kind);
  e.put_bool(o.check_viapsl);
  encode_backend(e, o.backend);
  e.put_bool(o.use_compiled_plans);
  put_size(e, o.threads);
  put_size(e, o.shard_size);
  e.put_bool(o.reuse_traces);
  e.put_bool(o.batch_replay);
  e.put_bool(o.reuse_scratch);
  e.put_bool(o.incremental_replay);
  put_size(e, o.checkpoint_stride);
  put_size(e, o.workers);
  e.put_u64(o.worker_command.size());
  for (const auto& arg : o.worker_command) e.put_string(arg);
  e.put_u8(static_cast<std::uint8_t>(o.worker_fault));
  put_size(e, o.worker_fault_at);
  put_size(e, o.worker_timeout_ms);
  put_size(e, o.worker_retries);
  e.put_bool(o.allow_partial);
  e.put_bool(o.supervised);
  put_size(e, o.lane_width);
}

bool decode_options(Decoder& d, abv::CampaignOptions& o) {
  o.first_seed = d.u64();
  o.seeds = get_size(d);
  o.stimuli.rounds = get_size(d);
  o.stimuli.noise_permille = d.u32();
  o.stimuli.noise_names = get_size(d);
  o.stimuli.max_gap_ns = d.u64();
  o.mutants_per_kind = get_size(d);
  o.check_viapsl = d.boolean();
  o.backend = decode_backend(d);
  o.use_compiled_plans = d.boolean();
  o.threads = get_size(d);
  o.shard_size = get_size(d);
  o.reuse_traces = d.boolean();
  o.batch_replay = d.boolean();
  o.reuse_scratch = d.boolean();
  o.incremental_replay = d.boolean();
  o.checkpoint_stride = get_size(d);
  o.workers = get_size(d);
  const std::uint64_t args = d.count(8, "worker command");
  o.worker_command.clear();
  for (std::uint64_t i = 0; i < args && d.ok(); ++i) {
    o.worker_command.emplace_back();
    d.string_into(o.worker_command.back());
  }
  const std::size_t at = d.offset();
  const std::uint8_t fault = d.u8();
  if (d.ok() &&
      fault > static_cast<std::uint8_t>(abv::WorkerFault::ExitBeforeRequest)) {
    d.fail_at(at, "bad worker-fault byte " + std::to_string(fault));
  }
  if (d.ok()) o.worker_fault = static_cast<abv::WorkerFault>(fault);
  o.worker_fault_at = get_size(d);
  o.worker_timeout_ms = get_size(d);
  o.worker_retries = get_size(d);
  o.allow_partial = d.boolean();
  o.supervised = d.boolean();
  o.lane_width = get_size(d);
  // Borrowed pointers never cross a process boundary.
  o.plan_cache = nullptr;
  return d.ok();
}

void encode_result(Encoder& e, const abv::CampaignResult& r) {
  put_size(e, r.traces);
  put_size(e, r.events);
  put_size(e, r.valid_accepted);
  put_size(e, r.oracle_disagreements);
  put_size(e, r.viapsl_false_alarms);
  for (const auto& m : r.mutation) encode_mutation_stats(e, m);
  e.put_f64(r.alphabet_coverage);
  e.put_f64(r.recognizer_state_coverage);
  encode_monitor_stats(e, r.monitor_stats);
  encode_compile_stats(e, r.compile_stats);
  put_size(e, r.trace_cache_hits);
  put_size(e, r.trace_cache_misses);
  put_size(e, r.checkpoint_hits);
  put_size(e, r.events_skipped);
  put_size(e, r.worker_retries);
  e.put_u64(r.lane_waves);
  e.put_u64(r.lanes_filled);
  e.put_u64(r.lane_capacity);
  e.put_u64(r.shard_failures.size());
  for (const auto& f : r.shard_failures) {
    put_size(e, f.worker);
    put_size(e, f.shard);
    put_size(e, f.unit_begin);
    put_size(e, f.unit_end);
    e.put_string(f.diagnostic);
  }
}

bool decode_result(Decoder& d, abv::CampaignResult& r) {
  r = abv::CampaignResult{};
  r.traces = get_size(d);
  r.events = get_size(d);
  r.valid_accepted = get_size(d);
  r.oracle_disagreements = get_size(d);
  r.viapsl_false_alarms = get_size(d);
  for (auto& m : r.mutation) decode_mutation_stats(d, m);
  r.alphabet_coverage = d.f64();
  r.recognizer_state_coverage = d.f64();
  decode_monitor_stats(d, r.monitor_stats);
  decode_compile_stats(d, r.compile_stats);
  r.trace_cache_hits = get_size(d);
  r.trace_cache_misses = get_size(d);
  r.checkpoint_hits = get_size(d);
  r.events_skipped = get_size(d);
  r.worker_retries = get_size(d);
  r.lane_waves = d.u64();
  r.lanes_filled = d.u64();
  r.lane_capacity = d.u64();
  // A failure record is at least four u64 fields plus the diagnostic's
  // 8-byte length word.
  const std::uint64_t failures = d.count(40, "shard failure list");
  r.shard_failures.clear();
  for (std::uint64_t i = 0; i < failures && d.ok(); ++i) {
    abv::CampaignResult::ShardFailure f;
    f.worker = get_size(d);
    f.shard = get_size(d);
    f.unit_begin = get_size(d);
    f.unit_end = get_size(d);
    d.string_into(f.diagnostic);
    if (d.ok()) r.shard_failures.push_back(std::move(f));
  }
  return d.ok();
}

void encode_snapshot(Encoder& e, const mon::Snapshot& snap) {
  e.put_u64(snap.word_count());
  for (const std::uint64_t w : snap.words()) e.put_u64(w);
  e.put_u64(snap.string_count());
  for (std::size_t i = 0; i < snap.string_count(); ++i) {
    e.put_string(snap.string_at(i));
  }
}

bool decode_snapshot(Decoder& d, mon::Snapshot& snap) {
  const std::uint64_t words = d.count(8, "snapshot word");
  snap.clear();
  for (std::uint64_t i = 0; i < words && d.ok(); ++i) {
    const std::size_t at = d.offset();
    const std::uint64_t w = d.u64();
    if (!d.ok()) break;
    // The leading word is the monitor's tag: enforce the snapshot format
    // version here too, so a foreign-version snapshot rejects at the wire
    // with a positioned diagnostic instead of deep inside restore().
    if (i == 0 && mon::snapshot_tag_version(w) != mon::kSnapshotVersion) {
      d.fail_at(at, "snapshot format version " +
                        std::to_string(mon::snapshot_tag_version(w)) +
                        ", this build reads version " +
                        std::to_string(mon::kSnapshotVersion));
      break;
    }
    snap.put_u64(w);
  }
  const std::uint64_t strings = d.count(8, "snapshot string pool");
  std::string text;
  for (std::uint64_t i = 0; i < strings && d.ok(); ++i) {
    d.string_into(text);
    if (d.ok()) snap.put_string(text);
  }
  return d.ok();
}

void encode_worker_request(Encoder& e, const WorkerRequestData& req) {
  e.put_u64(req.names.size());
  for (std::size_t i = 0; i < req.names.size(); ++i) {
    e.put_string(req.names[i]);
    e.put_u8(i < req.directions.size() ? req.directions[i] : 2);
  }
  e.put_u64(req.properties.size());
  for (const auto& p : req.properties) e.put_string(p);
  encode_options(e, req.options);
  e.put_u64(req.shards.size());
  for (const auto& s : req.shards) {
    e.put_u64(s.shard);
    e.put_u64(s.job);
    e.put_u64(s.unit_begin);
    e.put_u64(s.unit_end);
  }
}

bool decode_worker_request(Decoder& d, WorkerRequestData& req) {
  const std::uint64_t names = d.count(9, "alphabet name table");
  req.names.clear();
  req.directions.clear();
  for (std::uint64_t i = 0; i < names && d.ok(); ++i) {
    req.names.emplace_back();
    d.string_into(req.names.back());
    const std::size_t at = d.offset();
    const std::uint8_t dir = d.u8();
    if (d.ok() && dir > 2) {
      d.fail_at(at, "bad direction byte " + std::to_string(dir));
      break;
    }
    req.directions.push_back(dir);
  }
  const std::uint64_t props = d.count(8, "property list");
  req.properties.clear();
  for (std::uint64_t i = 0; i < props && d.ok(); ++i) {
    req.properties.emplace_back();
    d.string_into(req.properties.back());
  }
  if (!decode_options(d, req.options)) return false;
  const std::uint64_t shards = d.count(32, "shard list");
  req.shards.clear();
  req.shards.reserve(static_cast<std::size_t>(shards));
  for (std::uint64_t i = 0; i < shards && d.ok(); ++i) {
    WorkerShardSpec s;
    s.shard = d.u64();
    s.job = d.u64();
    s.unit_begin = d.u64();
    s.unit_end = d.u64();
    if (d.ok()) req.shards.push_back(s);
  }
  return d.ok();
}

void encode_worker_partial(Encoder& e, const WorkerPartialData& p) {
  e.put_u64(p.shard);
  e.put_u64(p.job);
  encode_result(e, p.partial);
  e.put_bits(p.alphabet_seen);
  e.put_bool(p.has_recognizer);
  if (p.has_recognizer) {
    e.put_u64(p.recognizer_rows.size());
    for (const auto& frag : p.recognizer_rows) {
      e.put_u64(frag.size());
      for (const auto& row : frag) encode_range_cov(e, row);
    }
  }
}

bool decode_worker_partial(Decoder& d, WorkerPartialData& p) {
  p.shard = d.u64();
  p.job = d.u64();
  if (!decode_result(d, p.partial)) return false;
  d.bits_into(p.alphabet_seen);
  p.has_recognizer = d.boolean();
  p.recognizer_rows.clear();
  if (d.ok() && p.has_recognizer) {
    const std::uint64_t frags = d.count(8, "recognizer fragment list");
    p.recognizer_rows.reserve(static_cast<std::size_t>(frags));
    for (std::uint64_t f = 0; f < frags && d.ok(); ++f) {
      const std::uint64_t rows = d.count(17, "recognizer row list");
      std::vector<abv::RecognizerCoverage::RangeCov> frag;
      frag.reserve(static_cast<std::size_t>(rows));
      for (std::uint64_t r = 0; r < rows && d.ok(); ++r) {
        abv::RecognizerCoverage::RangeCov row;
        decode_range_cov(d, row);
        if (d.ok()) frag.push_back(row);
      }
      if (d.ok()) p.recognizer_rows.push_back(std::move(frag));
    }
  }
  return d.ok();
}

void encode_worker_done(Encoder& e, std::uint64_t partials) {
  e.put_u64(partials);
}

bool decode_worker_done(Decoder& d, std::uint64_t& partials) {
  partials = d.u64();
  return d.ok();
}

void encode_worker_error(Encoder& e, const std::string& message) {
  e.put_string(message);
}

bool decode_worker_error(Decoder& d, std::string& message) {
  d.string_into(message);
  return d.ok();
}

}  // namespace loom::wire

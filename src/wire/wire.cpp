#include "wire/wire.hpp"

#include <bit>
#include <cstring>

namespace loom::wire {

const char* to_string(Payload p) {
  switch (p) {
    case Payload::Trace: return "Trace";
    case Payload::Options: return "Options";
    case Payload::Result: return "Result";
    case Payload::Snapshot: return "Snapshot";
    case Payload::WorkerRequest: return "WorkerRequest";
    case Payload::WorkerPartial: return "WorkerPartial";
    case Payload::WorkerDone: return "WorkerDone";
    case Payload::WorkerError: return "WorkerError";
  }
  return "?";
}

std::string DecodeError::to_string() const {
  return "wire: byte " + std::to_string(offset) + ": " + message;
}

void Encoder::put_u32(std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    bytes_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

void Encoder::put_u64(std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    bytes_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

void Encoder::put_f64(double v) { put_u64(std::bit_cast<std::uint64_t>(v)); }

void Encoder::put_string(std::string_view s) {
  put_u64(s.size());
  bytes_.insert(bytes_.end(), s.begin(), s.end());
}

void Encoder::put_bits(const std::vector<bool>& bits) {
  put_u64(bits.size());
  std::uint64_t word = 0;
  std::size_t filled = 0;
  for (const bool b : bits) {
    if (b) word |= std::uint64_t{1} << filled;
    if (++filled == 64) {
      put_u64(word);
      word = 0;
      filled = 0;
    }
  }
  if (filled != 0) put_u64(word);
}

void Decoder::fail_at(std::size_t offset, std::string message) {
  if (failed_) return;  // the first failure is the diagnostic that matters
  failed_ = true;
  error_.offset = offset;
  error_.message = std::move(message);
}

const std::uint8_t* Decoder::take(std::size_t n, const char* what) {
  if (failed_) return nullptr;
  if (size_ - offset_ < n) {
    fail(std::string("truncated ") + what + " (need " + std::to_string(n) +
         " bytes, have " + std::to_string(size_ - offset_) + ")");
    return nullptr;
  }
  const std::uint8_t* p = data_ + offset_;
  offset_ += n;
  return p;
}

std::uint8_t Decoder::u8() {
  const std::uint8_t* p = take(1, "u8");
  return p == nullptr ? 0 : *p;
}

std::uint32_t Decoder::u32() {
  const std::uint8_t* p = take(4, "u32");
  if (p == nullptr) return 0;
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(p[i]) << (8 * i);
  return v;
}

std::uint64_t Decoder::u64() {
  const std::uint8_t* p = take(8, "u64");
  if (p == nullptr) return 0;
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
  return v;
}

bool Decoder::boolean() {
  const std::size_t at = offset_;
  const std::uint8_t v = u8();
  if (v > 1) {
    fail_at(at, "bad boolean (want 0 or 1, got " + std::to_string(v) + ")");
    return false;
  }
  return v != 0;
}

double Decoder::f64() { return std::bit_cast<double>(u64()); }

void Decoder::string_into(std::string& out) {
  const std::size_t at = offset_;
  const std::uint64_t n = u64();
  if (failed_) return;
  if (n > size_ - offset_) {
    fail_at(at, "string length " + std::to_string(n) + " overruns the " +
                    std::to_string(size_ - offset_) + " bytes left");
    return;
  }
  out.assign(reinterpret_cast<const char*>(data_ + offset_),
             static_cast<std::size_t>(n));
  offset_ += static_cast<std::size_t>(n);
}

void Decoder::bits_into(std::vector<bool>& out) {
  const std::size_t at = offset_;
  const std::uint64_t n = u64();
  if (failed_) return;
  const std::uint64_t words_needed = n / 64 + (n % 64 != 0 ? 1 : 0);
  if (words_needed > (size_ - offset_) / 8) {
    fail_at(at, "bit vector of " + std::to_string(n) +
                    " bits overruns the payload");
    return;
  }
  if (out.size() != n) out.assign(static_cast<std::size_t>(n), false);
  std::uint64_t word = 0;
  for (std::uint64_t i = 0; i < n; ++i) {
    const std::size_t bit = i % 64;
    if (bit == 0) word = u64();
    out[static_cast<std::size_t>(i)] = (word >> bit) & 1;
  }
}

std::uint64_t Decoder::count(std::uint64_t min_bytes_each, const char* what) {
  const std::size_t at = offset_;
  const std::uint64_t n = u64();
  if (failed_) return 0;
  if (min_bytes_each != 0 && n > remaining() / min_bytes_each) {
    fail_at(at, std::string(what) + " count " + std::to_string(n) +
                    " overruns the payload (" + std::to_string(remaining()) +
                    " bytes left)");
    return 0;
  }
  return n;
}

void write_frame(std::vector<std::uint8_t>& out, Payload tag,
                 const Encoder& payload) {
  Encoder header;
  header.put_u32(kMagic);
  header.put_u8(kWireVersion);
  header.put_u8(static_cast<std::uint8_t>(tag));
  header.put_u8(0);  // reserved
  header.put_u8(0);  // reserved
  header.put_u64(payload.size());
  out.insert(out.end(), header.bytes().begin(), header.bytes().end());
  out.insert(out.end(), payload.bytes().begin(), payload.bytes().end());
}

bool parse_frame_header(const std::uint8_t* data, std::size_t size,
                        FrameHeader& header, DecodeError& err) {
  Decoder d(data, size);
  const std::uint32_t magic = d.u32();
  if (d.ok() && magic != kMagic) {
    d.fail_at(0, "bad magic (not a LOOM wire frame)");
  }
  const std::uint8_t version = d.u8();
  if (d.ok() && version != kWireVersion) {
    d.fail_at(4, "wire format version " + std::to_string(version) +
                     ", this build reads version " +
                     std::to_string(kWireVersion));
  }
  const std::uint8_t tag = d.u8();
  if (d.ok() && (tag < static_cast<std::uint8_t>(Payload::Trace) ||
                 tag > static_cast<std::uint8_t>(Payload::WorkerError))) {
    d.fail_at(5, "unknown payload tag " + std::to_string(tag));
  }
  const std::uint8_t r0 = d.u8();
  const std::uint8_t r1 = d.u8();
  if (d.ok() && (r0 != 0 || r1 != 0)) {
    d.fail_at(6, "nonzero reserved header bytes");
  }
  const std::uint64_t length = d.u64();
  if (d.ok() && length > kMaxFrameBytes) {
    d.fail_at(8, "oversized payload length " + std::to_string(length) +
                     " (limit " + std::to_string(kMaxFrameBytes) + ")");
  }
  if (!d.ok()) {
    err = d.error();
    return false;
  }
  header.tag = static_cast<Payload>(tag);
  header.length = length;
  return true;
}

bool parse_frame(const std::uint8_t* data, std::size_t size, Frame& frame,
                 std::size_t& consumed, DecodeError& err) {
  FrameHeader header;
  if (!parse_frame_header(data, size, header, err)) return false;
  if (header.length > size - kFrameHeaderBytes) {
    err.offset = 8;
    err.message = "payload length " + std::to_string(header.length) +
                  " overruns the " + std::to_string(size - kFrameHeaderBytes) +
                  " bytes that follow the header";
    return false;
  }
  frame.tag = header.tag;
  frame.data = data + kFrameHeaderBytes;
  frame.size = static_cast<std::size_t>(header.length);
  consumed = kFrameHeaderBytes + frame.size;
  return true;
}

}  // namespace loom::wire

#include "mon/compiled.hpp"

#include <stdexcept>

#include "mon/antecedent_monitor.hpp"
#include "mon/timed_monitor.hpp"
#include "mon/vm.hpp"
#include "psl/clause_monitor.hpp"

namespace loom::mon {

const char* to_string(Backend b) {
  switch (b) {
    case Backend::Auto: return "auto";
    case Backend::Drct: return "drct";
    case Backend::ViaPSL: return "viapsl";
    case Backend::Vm: return "vm";
  }
  return "?";
}

std::optional<Backend> parse_backend(std::string_view text) {
  if (text == "auto") return Backend::Auto;
  if (text == "drct") return Backend::Drct;
  if (text == "viapsl") return Backend::ViaPSL;
  if (text == "vm") return Backend::Vm;
  return std::nullopt;
}

std::optional<Backend> parse_backend_arg(int argc, char** argv, int index) {
  if (argc <= index) return Backend::Auto;
  return parse_backend(argv[index]);
}

namespace {

// The paper's Drct per-event bound Θ(max_i |α(Fi)|): only the active
// fragment steps, and its work is linear in the fragment's range count.
// The +2 covers the alphabet filter and the active-fragment dispatch.
std::uint64_t estimate_drct_ops(const spec::OrderingPlan& plan) {
  std::uint64_t widest = 0;
  for (const auto& f : plan.fragments) {
    widest = std::max<std::uint64_t>(widest, f.ranges.size());
  }
  return widest + 2;
}

}  // namespace

CompiledProperty CompiledProperty::compile(const spec::Property& property,
                                           const spec::Alphabet& ab,
                                           const CompileOptions& options) {
  CompiledProperty c;
  c.property_ = std::make_shared<const spec::Property>(property);
  c.plan_ = std::make_shared<const spec::OrderingPlan>(
      property.is_antecedent() ? spec::plan_antecedent(property.antecedent())
                               : spec::plan_timed(property.timed()));
  c.alphabet_ = property.alphabet();
  c.local_of_name_.assign(c.alphabet_.capacity(), support::Interner::kInvalid);
  c.alphabet_.for_each([&](std::size_t name) {
    c.local_of_name_[name] =
        c.names_.intern(ab.text(static_cast<spec::Name>(name)));
  });

  c.requested_ = options.backend;
  c.max_clauses_ = options.max_clauses;
  c.drct_ops_ = estimate_drct_ops(*c.plan_);
  c.viapsl_cost_ = psl::estimate(property);
  // Shape feasibility comes from the translator itself (psl::encodable,
  // the rule behind encode()'s invalid_argument); size from the analytic
  // clause count, so nothing is materialized to judge either.
  c.viapsl_feasible_ = psl::encodable(property) &&
                       c.viapsl_cost_.clauses <= options.max_clauses;

  switch (options.backend) {
    case Backend::Drct:
      c.chosen_ = Backend::Drct;
      break;
    case Backend::ViaPSL:
      // Let psl::encode below report the precise reason (shape / budget).
      c.chosen_ = Backend::ViaPSL;
      break;
    case Backend::Vm:
      c.chosen_ = Backend::Vm;
      break;
    case Backend::Auto: {
      // Per-event work of each construction, from the analytic model alone:
      // nothing is materialized to make this choice.  Drct and Vm tie by
      // construction (the VM runs Drct's op schedule); prefer_vm breaks
      // the tie toward the wall-clock winner, default keeps Drct.
      const std::uint64_t viapsl_ops =
          c.viapsl_cost_.ops_per_token + c.viapsl_cost_.lexer_ops;
      c.chosen_ = c.viapsl_feasible_ && viapsl_ops < c.drct_ops_
                      ? Backend::ViaPSL
                      : (options.prefer_vm ? Backend::Vm : Backend::Drct);
      break;
    }
  }

  if (c.chosen_ == Backend::ViaPSL || options.with_viapsl_artifact) {
    c.encoding_ = std::make_shared<const psl::Encoding>(
        psl::encode(property, options.max_clauses, &ab));
  }
  if (c.chosen_ == Backend::Vm) {
    // compile_vm is pure over (property, plan), so this artifact is byte-
    // identical to the one the legacy per-unit path rebuilds
    // (compiled_plan_diff_test's compiled≡per-unit invariant).
    c.vm_program_ = compile_vm(property, c.plan_);
  }
  return c;
}

const std::string& CompiledProperty::text_of(spec::Name name) const {
  if (name >= local_of_name_.size() ||
      local_of_name_[name] == support::Interner::kInvalid) {
    throw std::out_of_range("name is not in the compiled alphabet");
  }
  return names_.name(local_of_name_[name]);
}

std::string CompiledPropertyCache::key_of(const spec::Property& property,
                                          const spec::Alphabet& ab,
                                          const CompileOptions& options) {
  // The normalized text alone is re-parseable but id-blind: the same
  // property interned into two alphabets in different orders yields the
  // same text over different Name values, and the compiled artifacts bake
  // those values in.  Appending the name→id bindings makes the key honest.
  std::string key = spec::to_string(property, ab);
  property.alphabet().for_each([&](std::size_t name) {
    key += '|';
    key += std::to_string(name);
    key += '=';
    key += ab.text(static_cast<spec::Name>(name));
  });
  key += "|backend=";
  key += to_string(options.backend);
  key += "|max_clauses=";
  key += std::to_string(options.max_clauses);
  if (options.with_viapsl_artifact) key += "|viapsl_artifact";
  if (options.prefer_vm) key += "|prefer_vm";
  return key;
}

const CompiledProperty& CompiledPropertyCache::get_or_compile(
    const spec::Property& property, const spec::Alphabet& ab,
    const CompileOptions& options, bool* inserted) {
  std::string key = key_of(property, ab, options);
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = entries_.find(key);
  if (it != entries_.end()) {
    ++stats_.hits;
    if (inserted != nullptr) *inserted = false;
    return it->second;
  }
  ++stats_.misses;
  if (inserted != nullptr) *inserted = true;
  // std::unordered_map references are stable across rehashes and entries
  // are never erased, so handing the mapped value out by reference is safe
  // for the cache's lifetime.
  return entries_
      .emplace(std::move(key),
               CompiledProperty::compile(property, ab, options))
      .first->second;
}

CompiledPropertyCache::Stats CompiledPropertyCache::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

std::size_t CompiledPropertyCache::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return entries_.size();
}

std::unique_ptr<Monitor> CompiledProperty::instantiate(Backend backend) const {
  if (property_ == nullptr) {
    throw std::logic_error("instantiate() on a default-constructed "
                           "CompiledProperty (run compile() first)");
  }
  switch (backend) {
    case Backend::Drct:
      if (property_->is_antecedent()) {
        return std::make_unique<AntecedentMonitor>(property_->antecedent(),
                                                   plan_);
      }
      return std::make_unique<TimedImplicationMonitor>(property_->timed(),
                                                       plan_);
    case Backend::ViaPSL:
      if (encoding_ == nullptr) {
        throw std::logic_error(
            "ViaPSL was not compiled for this property (set "
            "CompileOptions::with_viapsl_artifact or backend=ViaPSL)");
      }
      return std::make_unique<psl::ClauseMonitor>(encoding_);
    case Backend::Vm:
      if (vm_program_ == nullptr) {
        throw std::logic_error(
            "the VM program was not compiled for this property (compile "
            "with backend=Vm)");
      }
      return std::make_unique<VmMonitor>(vm_program_);
    case Backend::Auto:
      break;
  }
  throw std::logic_error("Auto is a selection policy, not a backend");
}

}  // namespace loom::mon

#include "mon/range_recognizer.hpp"

#include "mon/snapshot.hpp"

namespace loom::mon {

void RangeRecognizer::snapshot(Snapshot& out) const {
  out.put_u64(static_cast<std::uint64_t>(state_));
  out.put_u64(cpt_);
  out.put_string(error_reason_);
}

void RangeRecognizer::restore(SnapshotReader& in) {
  state_ = static_cast<State>(in.u64());
  cpt_ = static_cast<std::uint32_t>(in.u64());
  in.string_into(error_reason_);
}

const char* to_string(RangeRecognizer::State s) {
  switch (s) {
    case RangeRecognizer::State::Idle: return "s0/idle";
    case RangeRecognizer::State::WaitFirst: return "s1/wait-first";
    case RangeRecognizer::State::WaitFirstSibling: return "s2/wait-sibling";
    case RangeRecognizer::State::Counting: return "s3/counting";
    case RangeRecognizer::State::DoneSibling: return "s4/done-sibling";
    case RangeRecognizer::State::Error: return "s5/error";
  }
  return "?";
}

void RangeRecognizer::start() {
  stats_->add();  // state assignment
  state_ = State::WaitFirst;
  cpt_ = 0;
}

void RangeRecognizer::reset() {
  state_ = State::Idle;
  cpt_ = 0;
  error_reason_.clear();
}

RangeRecognizer::Out RangeRecognizer::fail(std::string reason) {
  stats_->add();
  state_ = State::Error;
  error_reason_ = std::move(reason);
  return Out::Err;
}

RangeRecognizer::Out RangeRecognizer::step(spec::Name name) {
  // Classification of the event in this recognizer's context.  Each test
  // counts as one operation; tests are evaluated lazily per state.
  const auto is_n = [&] {
    stats_->add();
    return name == plan_->name;
  };
  const auto in_c = [&] {
    stats_->add();
    return plan_->siblings.test(name);
  };
  const auto in_ac = [&] {
    stats_->add();
    return plan_->accept.test(name);
  };

  switch (state_) {
    case State::Idle:
      return Out::None;  // not started; the fragment routes no events here

    case State::WaitFirst:  // s1
      if (is_n()) {
        stats_->add(2);  // state + counter assignment
        state_ = State::Counting;
        cpt_ = 1;
        return Out::None;
      }
      if (in_c()) {
        stats_->add();
        state_ = State::WaitFirstSibling;
        return Out::None;
      }
      if (in_ac()) {
        return fail("fragment stopped before any of its ranges started");
      }
      return fail("name from outside the active fragment (B or Af)");

    case State::WaitFirstSibling:  // s2
      if (is_n()) {
        stats_->add(2);
        state_ = State::Counting;
        cpt_ = 1;
        return Out::None;
      }
      if (in_c()) return Out::None;
      if (in_ac()) {
        stats_->add();  // join test
        if (plan_->parent_join == spec::Join::Disj) {
          stats_->add();
          state_ = State::Idle;
          return Out::Nok;
        }
        return fail(
            "conjunctive fragment stopped before one of its ranges was "
            "observed");
      }
      return fail("name from outside the active fragment (B or Af)");

    case State::Counting:  // s3
      if (is_n()) {
        stats_->add();  // bound comparison
        if (cpt_ == plan_->hi) {
          return fail("more than v=" + std::to_string(plan_->hi) +
                      " consecutive occurrences");
        }
        stats_->add();
        ++cpt_;
        return Out::None;
      }
      if (in_c()) {
        stats_->add();  // lower-bound comparison
        if (cpt_ >= plan_->lo) {
          stats_->add();
          state_ = State::DoneSibling;
          return Out::None;
        }
        return fail("block ended after " + std::to_string(cpt_) +
                    " occurrences, below u=" + std::to_string(plan_->lo));
      }
      if (in_ac()) {
        stats_->add();
        if (cpt_ >= plan_->lo) {
          stats_->add();
          state_ = State::Idle;
          return Out::Ok;
        }
        return fail("fragment stopped after " + std::to_string(cpt_) +
                    " occurrences, below u=" + std::to_string(plan_->lo));
      }
      return fail("name from outside the active fragment (B or Af)");

    case State::DoneSibling:  // s4
      if (is_n()) {
        return fail("range block reopened after it ended");
      }
      if (in_c()) return Out::None;
      if (in_ac()) {
        stats_->add();
        state_ = State::Idle;
        return Out::Ok;
      }
      return fail("name from outside the active fragment (B or Af)");

    case State::Error:  // s5, absorbing
      return Out::Err;
  }
  return Out::None;
}

}  // namespace loom::mon

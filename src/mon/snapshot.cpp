#include "mon/snapshot.hpp"

#include <stdexcept>

namespace loom::mon {

void check_snapshot_tag(std::uint64_t word, std::uint32_t kind,
                        const char* who) {
  if (snapshot_tag_kind(word) != kind) {
    throw std::logic_error(std::string(who) +
                           ": snapshot of a different monitor kind");
  }
  if (snapshot_tag_version(word) != kSnapshotVersion) {
    throw std::logic_error(
        std::string(who) + ": snapshot format version " +
        std::to_string(snapshot_tag_version(word)) +
        ", this build reads version " + std::to_string(kSnapshotVersion));
  }
}

void Snapshot::put_string(const std::string& s) {
  if (strings_used_ == strings_.size()) {
    strings_.emplace_back(s);
  } else {
    strings_[strings_used_] = s;  // slot reuse: capacity survives clear()
  }
  ++strings_used_;
}

void Snapshot::put_bits(const std::vector<bool>& bits) {
  put_u64(bits.size());
  std::uint64_t word = 0;
  std::size_t filled = 0;
  for (const bool b : bits) {
    if (b) word |= std::uint64_t{1} << filled;
    if (++filled == 64) {
      put_u64(word);
      word = 0;
      filled = 0;
    }
  }
  if (filled != 0) put_u64(word);
}

std::uint64_t SnapshotReader::u64() {
  // Always-on bounds check (one compare per word, negligible next to the
  // monitor stepping it replaces): a truncated, empty or foreign snapshot
  // must reject with the documented logic_error, not read out of bounds —
  // in Release builds just as in Debug.
  if (word_ >= snap_->words_.size()) {
    throw std::logic_error(
        "SnapshotReader: read past the end of a snapshot (truncated or "
        "foreign format)");
  }
  return snap_->words_[word_++];
}

void SnapshotReader::string_into(std::string& out) {
  if (str_ >= snap_->strings_used_) {
    throw std::logic_error(
        "SnapshotReader: read past the snapshot's string pool (truncated "
        "or foreign format)");
  }
  out = snap_->strings_[str_++];
}

void SnapshotReader::bits_into(std::vector<bool>& out) {
  const std::size_t n = static_cast<std::size_t>(u64());
  // Validate the payload before sizing `out`: a garbage length word from a
  // foreign snapshot must throw, not trigger a huge allocation.
  const std::size_t words_needed = n / 64 + (n % 64 != 0 ? 1 : 0);
  if (snap_->words_.size() - word_ < words_needed) {
    throw std::logic_error(
        "SnapshotReader: truncated bit vector in snapshot");
  }
  if (out.size() != n) out.assign(n, false);
  std::uint64_t word = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t bit = i % 64;
    if (bit == 0) word = u64();
    out[i] = (word >> bit) & 1;
  }
}

bool SnapshotReader::exhausted() const {
  return word_ == snap_->words_.size() && str_ == snap_->strings_used_;
}

}  // namespace loom::mon

//! Monitor verdicts, violation reports and the Monitor interface every
//! runtime construction (Drct and ViaPSL) implements.
//!
//! Ownership: a Monitor owns all of its mutable state; compiled
//! constructions (mon::CompiledProperty) additionally share immutable
//! artifacts behind shared_ptr, which instances keep alive.
//! Thread-safety: one Monitor belongs to one thread at a time; immutable
//! artifacts may be shared freely across threads.
//! Determinism contracts every implementation must keep:
//!   - observe_batch() ≡ an observe() loop, bit for bit (verdict, stats,
//!     violation) — the replay engine's foundation;
//!   - reset() ≡ fresh construction, bit for bit, including the Figure-6
//!     stats accounting — the instance-reuse foundation
//!     (mon_reset_reuse_test).
#pragma once

#include <cstddef>
#include <optional>
#include <string>

#include "sim/time.hpp"
#include "spec/alphabet.hpp"
#include "spec/reference.hpp"

namespace loom::mon {

enum class Verdict {
  Monitoring,  // active, no recognition in progress, no violation
  Pending,     // active, mid-recognition (weakly holds on a finite trace)
  Holds,       // retired satisfied (non-repeated antecedent validated)
  Violated,
};

const char* to_string(Verdict v);

struct Violation {
  /// Ordinal of the observe() call that failed (counting every observed
  /// event, including filtered ones).
  std::size_t event_ordinal = 0;
  sim::Time time;
  spec::Name name = spec::kInvalidName;
  std::string reason;

  std::string to_string(const spec::Alphabet& ab) const;
};

/// Common interface of all property monitors (Drct and ViaPSL), used by the
/// ABV checker and the benches.
class Monitor {
 public:
  virtual ~Monitor() = default;

  /// Feeds one observed interface event.
  virtual void observe(spec::Name name, sim::Time time) = 0;
  /// Steps a recorded trace slice back-to-back.  Semantically identical to
  /// calling observe() once per event — same verdict, same stats, every
  /// event stepped even past a violation — the concrete monitors merely
  /// override it to skip the per-event virtual dispatch.  Replay paths
  /// (MonitorModule::BatchPolicy::ReplayAll, the campaign engine) lean on
  /// that equivalence for their bit-identity guarantees.
  virtual void observe_batch(const spec::Trace& slice);
  /// Signals end of observation at `end_time` (deadline checks).
  virtual void finish(sim::Time end_time) { (void)end_time; }
  /// Time-triggered check between events (in-simulation watchdogs).
  virtual void poll(sim::Time now) { (void)now; }
  /// Deadline of a currently armed timed obligation, if any.
  virtual std::optional<sim::Time> deadline() const { return std::nullopt; }

  virtual Verdict verdict() const = 0;
  virtual const std::optional<Violation>& violation() const = 0;

  virtual struct MonitorStats& stats() = 0;
  /// Bits of Boolean / bounded-integer monitor state (paper's "space").
  virtual std::size_t space_bits() const = 0;

  /// Restores the initial state (keeps the compiled plan).
  virtual void reset() = 0;
};

}  // namespace loom::mon

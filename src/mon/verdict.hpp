//! Monitor verdicts, violation reports and the Monitor interface every
//! runtime construction (Drct and ViaPSL) implements.
//!
//! Ownership: a Monitor owns all of its mutable state; compiled
//! constructions (mon::CompiledProperty) additionally share immutable
//! artifacts behind shared_ptr, which instances keep alive.
//! Thread-safety: one Monitor belongs to one thread at a time; immutable
//! artifacts may be shared freely across threads.
//! Determinism contracts every implementation must keep:
//!   - observe_batch() ≡ an observe() loop, bit for bit (verdict, stats,
//!     violation) — the replay engine's foundation;
//!   - reset() ≡ fresh construction, bit for bit, including the Figure-6
//!     stats accounting — the instance-reuse foundation
//!     (mon_reset_reuse_test);
//!   - restore(s) after snapshot(s) ≡ the state at snapshot time, bit for
//!     bit, stats included — the checkpointed-replay foundation
//!     (mon_snapshot_test).
#pragma once

#include <cstddef>
#include <optional>
#include <string>

#include "sim/time.hpp"
#include "spec/alphabet.hpp"
#include "spec/reference.hpp"

namespace loom::mon {

class Snapshot;        // mon/snapshot.hpp
class SnapshotReader;  // mon/snapshot.hpp

enum class Verdict {
  Monitoring,  // active, no recognition in progress, no violation
  Pending,     // active, mid-recognition (weakly holds on a finite trace)
  Holds,       // retired satisfied (non-repeated antecedent validated)
  Violated,
};

const char* to_string(Verdict v);

struct Violation {
  /// Ordinal of the observe() call that failed (counting every observed
  /// event, including filtered ones).
  std::size_t event_ordinal = 0;
  sim::Time time;
  spec::Name name = spec::kInvalidName;
  std::string reason;

  std::string to_string(const spec::Alphabet& ab) const;
};

/// Common interface of all property monitors (Drct and ViaPSL), used by the
/// ABV checker and the benches.
class Monitor {
 public:
  virtual ~Monitor() = default;

  /// Feeds one observed interface event.
  virtual void observe(spec::Name name, sim::Time time) = 0;
  /// Steps a recorded event range back-to-back.  Semantically identical to
  /// calling observe() once per event — same verdict, same stats, every
  /// event stepped even past a violation — the concrete monitors merely
  /// override it to skip the per-event virtual dispatch.  Replay paths
  /// (MonitorModule::BatchPolicy::ReplayAll, the campaign engine) lean on
  /// that equivalence for their bit-identity guarantees; the range form is
  /// what lets the checkpointed engine replay only a mutant's suffix.
  virtual void observe_batch(const spec::TimedEvent* begin,
                             const spec::TimedEvent* end);
  /// Whole-trace convenience form of the range overload above.
  void observe_batch(const spec::Trace& slice) {
    observe_batch(slice.data(), slice.data() + slice.size());
  }
  /// Signals end of observation at `end_time` (deadline checks).
  virtual void finish(sim::Time end_time) { (void)end_time; }
  /// Time-triggered check between events (in-simulation watchdogs).
  virtual void poll(sim::Time now) { (void)now; }
  /// Deadline of a currently armed timed obligation, if any.
  virtual std::optional<sim::Time> deadline() const { return std::nullopt; }

  virtual Verdict verdict() const = 0;
  virtual const std::optional<Violation>& violation() const = 0;

  virtual struct MonitorStats& stats() = 0;
  /// Bits of Boolean / bounded-integer monitor state (paper's "space").
  virtual std::size_t space_bits() const = 0;

  /// Restores the initial state (keeps the compiled plan).
  virtual void reset() = 0;

  /// Serializes the complete mutable state — recognizers, stats, verdict,
  /// violation, timing registers — into `out` (cleared first; capacity
  /// reused).  The compiled plan is not part of the state: a snapshot may
  /// be restored into any instance of the same kind stamped from the same
  /// plan.
  virtual void snapshot(Snapshot& out) const = 0;
  /// Inverse of snapshot(): afterwards the instance is bit-identical to
  /// the one snapshot() saw — continuing observation is indistinguishable
  /// from an uninterrupted run (mon_snapshot_test).  Throws
  /// std::logic_error when `in` was written by a different monitor kind.
  virtual void restore(const Snapshot& in) = 0;
};

/// Shared snapshot encoding of a violation report (all monitor kinds carry
/// one): presence flag, ordinal, time, name, reason string.
void snapshot_violation(Snapshot& out, const std::optional<Violation>& v);
void restore_violation(SnapshotReader& in, std::optional<Violation>& v);

}  // namespace loom::mon

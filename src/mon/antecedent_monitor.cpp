#include "mon/antecedent_monitor.hpp"

#include <stdexcept>

#include "mon/snapshot.hpp"
#include "support/diagnostics.hpp"

namespace loom::mon {
namespace {
// Format tag: a snapshot written by one monitor kind must never restore
// into another (the state layouts differ silently otherwise).
constexpr std::uint32_t kSnapshotKind = 0x414E5443;  // "ANTC"
}  // namespace

AntecedentMonitor::AntecedentMonitor(spec::Antecedent property)
    : AntecedentMonitor(std::move(property), nullptr) {}

AntecedentMonitor::AntecedentMonitor(
    spec::Antecedent property, std::shared_ptr<const spec::OrderingPlan> plan)
    : property_(std::move(property)),
      plan_(plan != nullptr ? std::move(plan)
                            : std::make_shared<const spec::OrderingPlan>(
                                  spec::plan_antecedent(property_))),
      recognizer_(*plan_, stats_) {
  recognizer_.activate();
}

void AntecedentMonitor::observe(spec::Name name, sim::Time time) {
  const auto before = stats_.begin_event();
  const std::size_t ordinal = ordinal_++;
  if (verdict_ == Verdict::Holds || verdict_ == Verdict::Violated) {
    stats_.end_event(before);
    return;  // retired
  }
  stats_.add();  // alphabet filter
  if (!plan_->alphabet.test(name)) {
    stats_.end_event(before);
    return;
  }
  switch (recognizer_.step(name, time)) {
    case OrderingRecognizer::Out::None:
      verdict_ = recognizer_.in_progress() ? Verdict::Pending
                                           : Verdict::Monitoring;
      break;
    case OrderingRecognizer::Out::Completed:
      ++validated_;
      if (property_.repeated) {
        recognizer_.restart();
        verdict_ = Verdict::Monitoring;
      } else {
        verdict_ = Verdict::Holds;
      }
      break;
    case OrderingRecognizer::Out::Err:
      verdict_ = Verdict::Violated;
      violation_ = Violation{ordinal, time, name, recognizer_.error_reason()};
      break;
  }
  stats_.end_event(before);
}

void AntecedentMonitor::finish(sim::Time) {
  // Antecedent requirements are pure safety properties: nothing to check at
  // the end of observation; a Pending verdict means "weakly holds".
}

std::size_t AntecedentMonitor::space_bits() const {
  return recognizer_.space_bits() + 2;  // verdict encoding
}

void AntecedentMonitor::reset() {
  // Stats first: restart() re-runs the activation (RangeRecognizer::start
  // charges one op per range of F1), and a fresh monitor carries exactly
  // those ops — clearing afterwards would lose them and make a reused
  // instance distinguishable from a fresh one (mon_reset_reuse_test).
  stats_.reset();
  recognizer_.restart();
  verdict_ = Verdict::Monitoring;
  violation_.reset();
  validated_ = 0;
  ordinal_ = 0;
}

void AntecedentMonitor::snapshot(Snapshot& out) const {
  out.clear();
  out.put_u64(snapshot_tag(kSnapshotKind));
  stats_.snapshot(out);
  recognizer_.snapshot(out);
  out.put_u64(static_cast<std::uint64_t>(verdict_));
  snapshot_violation(out, violation_);
  out.put_u64(validated_);
  out.put_u64(ordinal_);
}

void AntecedentMonitor::restore(const Snapshot& in) {
  SnapshotReader r(in);
  check_snapshot_tag(r.u64(), kSnapshotKind, "AntecedentMonitor::restore");
  stats_.restore(r);
  recognizer_.restore(r);
  verdict_ = static_cast<Verdict>(r.u64());
  restore_violation(r, violation_);
  validated_ = r.u64();
  ordinal_ = static_cast<std::size_t>(r.u64());
  LOOM_DASSERT(r.exhausted());  // format drift: snapshot wrote more fields
}

}  // namespace loom::mon

// Recognizer for a loose-ordering L = F1 < ... < Fq: the sequential
// composition of the fragment recognizers (paper §6).
//
// Only the active fragment receives events, which gives the Drct time
// complexity Θ(max_i |α(Fi)|).  The ok of fragment Fi starts F(i+1) on the
// same event (the stopping name of Fi is the first name of F(i+1)); the ok
// of the last fragment completes the round.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "mon/fragment_recognizer.hpp"

namespace loom::mon {

class OrderingRecognizer {
 public:
  OrderingRecognizer(const spec::OrderingPlan& plan, MonitorStats& stats);

  /// Starts the round: fragment F1 begins waiting.
  void activate();
  /// Full reset + activate (used at the reset points of the patterns).
  void restart();

  /// Checkpoint support: active-fragment index, error reason and every
  /// fragment, in index order (mon/snapshot.hpp).
  void snapshot(Snapshot& out) const;
  void restore(SnapshotReader& in);

  enum class Out : std::uint8_t { None, Completed, Err };

  Out step(spec::Name name, sim::Time time);

  std::size_t active_fragment() const { return active_; }
  const FragmentRecognizer& fragment(std::size_t i) const {
    return fragments_[i];
  }
  std::size_t fragment_count() const { return fragments_.size(); }

  /// True when the current round consumed at least one event.
  bool in_progress() const;

  const std::string& error_reason() const { return error_reason_; }
  const spec::OrderingPlan& plan() const { return *plan_; }

  /// Children bits + the active-fragment index.
  std::size_t space_bits() const;

 private:
  const spec::OrderingPlan* plan_;
  MonitorStats* stats_;
  std::vector<FragmentRecognizer> fragments_;
  std::size_t active_ = 0;
  std::string error_reason_;
};

}  // namespace loom::mon

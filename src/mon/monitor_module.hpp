// In-simulation monitor binding (the SystemC face of the Drct monitors).
//
// A MonitorModule lives in the module hierarchy next to the DUV, stamps
// observed interface events with the kernel's current time, forwards them
// to a property monitor, fires violation callbacks, and keeps a watchdog
// armed on the deadline of timed implication constraints so that overdue
// consequents are reported at the instant the deadline passes, not at the
// next event.
#pragma once

#include <functional>
#include <vector>

#include "mon/verdict.hpp"
#include "sim/module.hpp"

namespace loom::mon {

class MonitorModule final : public sim::Module {
 public:
  MonitorModule(sim::Scheduler& scheduler, std::string name, Monitor& monitor,
                const spec::Alphabet& alphabet, sim::Module* parent = nullptr);

  /// Feeds an event stamped with the current simulation time.
  void observe(spec::Name name);
  void observe(spec::Name name, sim::Time time);

  /// Ends observation (typically at the end of simulation).
  void finish();

  Monitor& monitor() { return monitor_; }
  const spec::Alphabet& alphabet() const { return alphabet_; }

  using ViolationCallback = std::function<void(const Violation&)>;
  void on_violation(ViolationCallback cb) {
    callbacks_.push_back(std::move(cb));
  }

 private:
  void after_step();
  void arm_watchdog();

  Monitor& monitor_;
  const spec::Alphabet& alphabet_;
  std::vector<ViolationCallback> callbacks_;
  bool violation_reported_ = false;
  std::optional<sim::Time> armed_deadline_;
  sim::Scheduler::CancelToken watchdog_token_;
};

}  // namespace loom::mon

// In-simulation monitor binding (the SystemC face of the Drct monitors).
//
// A MonitorModule lives in the module hierarchy next to the DUV, stamps
// observed interface events with the kernel's current time, forwards them
// to a property monitor, fires violation callbacks, and keeps a watchdog
// armed on the deadline of timed implication constraints so that overdue
// consequents are reported at the instant the deadline passes, not at the
// next event.
#pragma once

#include <functional>
#include <vector>

#include "mon/verdict.hpp"
#include "sim/module.hpp"
#include "spec/reference.hpp"

namespace loom::mon {

class MonitorModule final : public sim::Module {
 public:
  MonitorModule(sim::Scheduler& scheduler, std::string name, Monitor& monitor,
                const spec::Alphabet& alphabet, sim::Module* parent = nullptr);

  /// Feeds an event stamped with the current simulation time.
  void observe(spec::Name name);
  void observe(spec::Name name, sim::Time time);

  /// Batched fast path for recorded trace slices (see bench_throughput's
  /// BM_MonitorModuleBatch for the per-event comparison): steps the
  /// monitor back-to-back, stopping at the first violation, and runs the
  /// violation-callback / watchdog bookkeeping once at the end of the
  /// slice instead of per event.  Events carry their own timestamps, so
  /// deadline overruns are still detected mid-slice; the callback firing
  /// coalesces to the end of the batch, and on a violating slice the
  /// MonitorStats counters cover only the events up to the violation
  /// (unlike an observe() loop that keeps feeding afterwards).
  void observe_batch(const spec::Trace& slice);

  /// Ends observation (typically at the end of simulation).
  void finish();

  Monitor& monitor() { return monitor_; }
  const spec::Alphabet& alphabet() const { return alphabet_; }

  using ViolationCallback = std::function<void(const Violation&)>;
  void on_violation(ViolationCallback cb) {
    callbacks_.push_back(std::move(cb));
  }

 private:
  void after_step();
  void arm_watchdog();

  Monitor& monitor_;
  const spec::Alphabet& alphabet_;
  std::vector<ViolationCallback> callbacks_;
  bool violation_reported_ = false;
  std::optional<sim::Time> armed_deadline_;
  sim::Scheduler::CancelToken watchdog_token_;
};

}  // namespace loom::mon

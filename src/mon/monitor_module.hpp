//! In-simulation monitor binding (the SystemC face of the Drct monitors).
//!
//! A MonitorModule lives in the module hierarchy next to the DUV, stamps
//! observed interface events with the kernel's current time, forwards them
//! to a property monitor, fires violation callbacks, and keeps a watchdog
//! armed on the deadline of timed implication constraints so that overdue
//! consequents are reported at the instant the deadline passes, not at the
//! next event.
//!
//! Ownership: the module borrows its Monitor, Scheduler and Alphabet — all
//! must outlive it; its destructor disarms any still-queued watchdog so a
//! dead module is never called back.
//! Thread-safety: none — modules live on the (single-threaded) simulation
//! kernel; the campaign engine scopes one kernel + module per worker shard
//! (reset() between mutants, watchdog arming off) on its scratch path, and
//! one throwaway pair per replayed mutant on the fresh baseline path.
//! Determinism: observe_batch(ReplayAll) is bit-identical to a per-event
//! observe() loop — verdict, stats and violation alike (mon_batch_test,
//! campaign_replay_diff_test); StopAtViolation intentionally stops early
//! and reports at the cause.
#pragma once

#include <functional>
#include <vector>

#include "mon/verdict.hpp"
#include "sim/module.hpp"
#include "spec/reference.hpp"

namespace loom::mon {

class MonitorModule final : public sim::Module {
 public:
  MonitorModule(sim::Scheduler& scheduler, std::string name, Monitor& monitor,
                const spec::Alphabet& alphabet, sim::Module* parent = nullptr);

  /// Disarms a still-pending watchdog: a queued entry must never outlive
  /// the module it captures (the campaign's replay modules die long before
  /// their scheduler would drain).
  ~MonitorModule() override {
    if (watchdog_token_ != nullptr) *watchdog_token_ = true;
  }

  /// Feeds an event stamped with the current simulation time.
  void observe(spec::Name name);
  void observe(spec::Name name, sim::Time time);

  /// How observe_batch treats the tail of a violating slice.
  enum class BatchPolicy {
    /// Stop stepping at the first violation: the violation report points
    /// at its cause and the MonitorStats counters cover only the events up
    /// to it (unlike an observe() loop that keeps feeding afterwards).
    StopAtViolation,
    /// Step every event, violated or not, through the monitor's own
    /// devirtualized Monitor::observe_batch — verdict and stats land
    /// bit-identical to a per-event observe() loop.  The campaign engine
    /// replays cached mutant traces this way so its batched path stays
    /// indistinguishable from the legacy one.
    ReplayAll,
  };

  /// Batched fast path for recorded trace slices (see bench_throughput's
  /// BM_MonitorModuleBatch for the per-event comparison): steps the
  /// monitor back-to-back and runs the violation-callback / watchdog
  /// bookkeeping once at the end of the slice instead of per event.
  /// Events carry their own timestamps, so deadline overruns are still
  /// detected mid-slice; the callback firing coalesces to the end of the
  /// batch.  `begin` skips the slice's first events — the checkpointed
  /// campaign engine restores the monitor to the state after
  /// trace[0, begin) and replays only the suffix (same bytes out as a full
  /// replay, by the Monitor::snapshot contract).
  void observe_batch(const spec::Trace& slice,
                     BatchPolicy policy = BatchPolicy::StopAtViolation,
                     std::size_t begin = 0);

  /// Ends observation (typically at the end of simulation).
  void finish();

  /// Re-arms the module for a fresh observation run over the same monitor:
  /// disarms any queued watchdog and forgets the reported violation, so the
  /// callbacks fire again on the next one.  The borrowed monitor is reset
  /// separately (Monitor::reset()); together the pair is bit-identical to
  /// constructing a fresh module + fresh monitor — the campaign engine's
  /// hoisted replay host resets one host per mutant instead of building
  /// one (campaign_scratch_diff_test locks the equivalence).
  void reset();

  /// Toggles watchdog arming (default on).  A pure replay host whose
  /// scheduler is never pumped gains nothing from the queued entry — it
  /// can never fire — so the campaign's scratch path turns arming off to
  /// keep the kernel's timed queue empty across thousands of mutants.
  /// Observable behavior is unchanged wherever the scheduler never runs;
  /// in-simulation users must leave it on.
  void set_arm_watchdogs(bool arm) {
    arm_watchdogs_ = arm;
    if (!arm) disarm_watchdog();
  }

  Monitor& monitor() { return monitor_; }
  const spec::Alphabet& alphabet() const { return alphabet_; }

  using ViolationCallback = std::function<void(const Violation&)>;
  void on_violation(ViolationCallback cb) {
    callbacks_.push_back(std::move(cb));
  }

 private:
  void after_step();
  void arm_watchdog();
  void disarm_watchdog() {
    if (watchdog_token_ != nullptr) *watchdog_token_ = true;
    watchdog_token_ = nullptr;
    armed_deadline_.reset();
  }

  Monitor& monitor_;
  const spec::Alphabet& alphabet_;
  std::vector<ViolationCallback> callbacks_;
  bool violation_reported_ = false;
  bool arm_watchdogs_ = true;
  std::optional<sim::Time> armed_deadline_;
  sim::Scheduler::CancelToken watchdog_token_;
};

}  // namespace loom::mon

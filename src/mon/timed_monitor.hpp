// Drct monitor for a timed implication constraint T = (P => Q, t).
//
// The chain P ++ Q is recognized with a cyclic ordering recognizer (the end
// of Q is the reset point).  Following the paper's SystemC monitor, two
// simulation-time variables are kept:
//   start - set when P becomes min-complete (the earliest instant P can be
//           considered finished; for the common n[1,1] antecedents this is
//           exactly the time of the triggering event);
//   stop  - set when Q's final fragment becomes min-complete
//           (earliest-match completion of Q).
// The property is violated when stop - start > t, when any event is
// observed past the deadline while Q is unfinished, or when observation
// ends past the deadline with Q unfinished.
#pragma once

#include <memory>
#include <optional>

#include "mon/ordering_recognizer.hpp"
#include "mon/verdict.hpp"

namespace loom::mon {

class TimedImplicationMonitor final : public Monitor {
 public:
  explicit TimedImplicationMonitor(spec::TimedImplication property);
  /// Instantiation from a precomputed plan (mon::CompiledProperty): the
  /// plan must describe `property`; no attribute computation runs here.
  TimedImplicationMonitor(spec::TimedImplication property,
                          std::shared_ptr<const spec::OrderingPlan> plan);

  void observe(spec::Name name, sim::Time time) override;
  using Monitor::observe_batch;
  void observe_batch(const spec::TimedEvent* begin,
                     const spec::TimedEvent* end) override {
    for (const auto* ev = begin; ev != end; ++ev) {
      observe(ev->name, ev->time);  // devirtualized
    }
  }
  void finish(sim::Time end_time) override;
  void poll(sim::Time now) override;
  std::optional<sim::Time> deadline() const override {
    return current_deadline();
  }

  Verdict verdict() const override { return verdict_; }
  const std::optional<Violation>& violation() const override {
    return violation_;
  }
  MonitorStats& stats() override { return stats_; }
  std::size_t space_bits() const override;
  void reset() override;
  void snapshot(Snapshot& out) const override;
  void restore(const Snapshot& in) override;

  /// Completed P=>Q rounds.
  std::uint64_t completed_rounds() const { return rounds_; }

  /// The deadline of the currently armed obligation, if any (used by the
  /// in-simulation watchdog of MonitorModule).
  std::optional<sim::Time> current_deadline() const {
    if (armed_ && !q_done_) return t_start_ + property_.bound;
    return std::nullopt;
  }

  const spec::TimedImplication& property() const { return property_; }
  const spec::OrderingPlan& plan() const { return *plan_; }

 private:
  void update_timing(sim::Time now, std::size_t ordinal, spec::Name name);
  void violate(std::size_t ordinal, sim::Time time, spec::Name name,
               std::string reason);

  spec::TimedImplication property_;
  std::shared_ptr<const spec::OrderingPlan> plan_;
  MonitorStats stats_;
  OrderingRecognizer recognizer_;
  Verdict verdict_ = Verdict::Monitoring;
  std::optional<Violation> violation_;

  bool armed_ = false;   // P min-complete; obligation running
  bool q_done_ = false;  // Q min-complete within this round
  sim::Time t_start_;
  sim::Time t_stop_;
  std::uint64_t rounds_ = 0;
  std::size_t ordinal_ = 0;
};

}  // namespace loom::mon

#include "mon/verdict.hpp"

#include "mon/snapshot.hpp"
#include "mon/stats.hpp"

namespace loom::mon {

void Monitor::observe_batch(const spec::TimedEvent* begin,
                            const spec::TimedEvent* end) {
  for (const spec::TimedEvent* ev = begin; ev != end; ++ev) {
    observe(ev->name, ev->time);
  }
}

void snapshot_violation(Snapshot& out, const std::optional<Violation>& v) {
  out.put_bool(v.has_value());
  if (!v.has_value()) return;
  out.put_u64(v->event_ordinal);
  out.put_time(v->time);
  out.put_u64(v->name);
  out.put_string(v->reason);
}

void restore_violation(SnapshotReader& in, std::optional<Violation>& v) {
  if (!in.boolean()) {
    v.reset();
    return;
  }
  if (!v.has_value()) v.emplace();
  v->event_ordinal = static_cast<std::size_t>(in.u64());
  v->time = in.time();
  v->name = static_cast<spec::Name>(in.u64());
  in.string_into(v->reason);
}

const char* to_string(Verdict v) {
  switch (v) {
    case Verdict::Monitoring: return "monitoring";
    case Verdict::Pending: return "pending";
    case Verdict::Holds: return "holds";
    case Verdict::Violated: return "violated";
  }
  return "?";
}

std::string Violation::to_string(const spec::Alphabet& ab) const {
  std::string out = "violation at event #" + std::to_string(event_ordinal);
  out += " (t=" + time.to_string() + ")";
  if (name != spec::kInvalidName) out += " on '" + ab.text(name) + "'";
  out += ": " + reason;
  return out;
}

}  // namespace loom::mon

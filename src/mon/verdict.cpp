#include "mon/verdict.hpp"

#include "mon/stats.hpp"

namespace loom::mon {

void Monitor::observe_batch(const spec::Trace& slice) {
  for (const auto& ev : slice) observe(ev.name, ev.time);
}

const char* to_string(Verdict v) {
  switch (v) {
    case Verdict::Monitoring: return "monitoring";
    case Verdict::Pending: return "pending";
    case Verdict::Holds: return "holds";
    case Verdict::Violated: return "violated";
  }
  return "?";
}

std::string Violation::to_string(const spec::Alphabet& ab) const {
  std::string out = "violation at event #" + std::to_string(event_ordinal);
  out += " (t=" + time.to_string() + ")";
  if (name != spec::kInvalidName) out += " on '" + ab.text(name) + "'";
  out += ": " + reason;
  return out;
}

}  // namespace loom::mon

#include "mon/stats.hpp"

namespace loom::mon {

std::size_t bits_for_value(std::uint64_t max_value) {
  std::size_t bits = 0;
  while (max_value != 0) {
    ++bits;
    max_value >>= 1;
  }
  return bits == 0 ? 1 : bits;
}

}  // namespace loom::mon

#include "mon/stats.hpp"

#include "mon/snapshot.hpp"

namespace loom::mon {

void MonitorStats::snapshot(Snapshot& out) const {
  out.put_u64(ops);
  out.put_u64(events);
  out.put_u64(max_ops_per_event);
}

void MonitorStats::restore(SnapshotReader& in) {
  ops = in.u64();
  events = in.u64();
  max_ops_per_event = in.u64();
}

void MonitorStats::merge(const MonitorStats& other) {
  ops += other.ops;
  events += other.events;
  if (other.max_ops_per_event > max_ops_per_event) {
    max_ops_per_event = other.max_ops_per_event;
  }
}

std::size_t bits_for_value(std::uint64_t max_value) {
  std::size_t bits = 0;
  while (max_value != 0) {
    ++bits;
    max_value >>= 1;
  }
  return bits == 0 ? 1 : bits;
}

}  // namespace loom::mon

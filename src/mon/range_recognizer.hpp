// Elementary recognizer for a range R = n[u,v] (paper Fig. 5).
//
// The recognizer runs in a recognition context (B, C, Ac, Af, s) computed
// by spec::plan_ordering (Fig. 4).  States:
//
//   Idle             (s0) waiting to be started
//   WaitFirst        (s1) started, no range of the fragment has begun
//   WaitFirstSibling (s2) started, a sibling range is already counting
//   Counting         (s3) counting occurrences of n with cpt
//   DoneSibling      (s4) block finished (cpt >= u), a sibling took over
//   Error            (s5) absorbing error state
//
// Outputs: Ok (range recognized), Nok (skipped, allowed only under a
// disjunctive parent), Err.  Termination (Ok/Nok) is triggered by a name of
// the stopping set Ac, which simultaneously starts the next fragment.
#pragma once

#include <cstdint>
#include <string>

#include "mon/stats.hpp"
#include "spec/attributes.hpp"

namespace loom::mon {

class RangeRecognizer {
 public:
  enum class State : std::uint8_t {
    Idle,
    WaitFirst,
    WaitFirstSibling,
    Counting,
    DoneSibling,
    Error,
  };

  enum class Out : std::uint8_t { None, Ok, Nok, Err };

  RangeRecognizer(const spec::RangePlan& plan, MonitorStats& stats)
      : plan_(&plan), stats_(&stats) {}

  /// Activation (the `start` input of Fig. 5 without a simultaneous event).
  void start();

  /// Processes one event of the property alphabet.
  Out step(spec::Name name);

  void reset();

  /// Checkpoint support: state, counter and error reason (mon/snapshot.hpp).
  void snapshot(Snapshot& out) const;
  void restore(SnapshotReader& in);

  State state() const { return state_; }
  std::uint32_t count() const { return cpt_; }
  const spec::RangePlan& plan() const { return *plan_; }

  /// True once the block reached its lower bound (or finished).
  bool min_reached() const {
    return (state_ == State::Counting && cpt_ >= plan_->lo) ||
           state_ == State::DoneSibling;
  }
  /// True when the recognizer consumed at least one of its own names.
  bool started_counting() const {
    return state_ == State::Counting || state_ == State::DoneSibling;
  }

  /// Explanation of the last Err output.
  const std::string& error_reason() const { return error_reason_; }

  /// State bits: 3 (state encoding) + ceil(log2(v+1)) (the counter cpt).
  std::size_t space_bits() const {
    return 3 + bits_for_value(plan_->hi);
  }

 private:
  Out fail(std::string reason);

  const spec::RangePlan* plan_;
  MonitorStats* stats_;
  State state_ = State::Idle;
  std::uint32_t cpt_ = 0;
  std::string error_reason_;
};

const char* to_string(RangeRecognizer::State s);

}  // namespace loom::mon

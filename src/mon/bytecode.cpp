#include "mon/bytecode.hpp"

#include <cstdio>
#include <stdexcept>

#include "mon/stats.hpp"
#include "mon/verdict.hpp"

namespace loom::mon {

const char* to_string(Op op) {
  switch (op) {
    case Op::RetireIfDone: return "retire.if";
    case Op::Filter: return "filter";
    case Op::DeadlineGuard: return "deadline.guard";
    case Op::Dispatch: return "dispatch";
    case Op::StepFragment: return "frag.step";
    case Op::Advance: return "advance";
    case Op::CompleteAntecedent: return "complete.ante";
    case Op::CompleteTimed: return "complete.timed";
    case Op::UpdateTiming: return "update.timing";
    case Op::NoteProgress: return "note.progress";
    case Op::LatchViolation: return "latch.violation";
    case Op::Halt: return "halt";
  }
  return "?";
}

namespace {

// Retirement masks: one bit per Verdict value.  An antecedent monitor
// retires on Holds or Violated, a timed monitor only on Violated (it keeps
// observing through Pending/Monitoring rounds forever).
constexpr std::uint8_t bit(Verdict v) {
  return static_cast<std::uint8_t>(1u << static_cast<unsigned>(v));
}
constexpr std::uint8_t kRetireAntecedent =
    bit(Verdict::Holds) | bit(Verdict::Violated);
constexpr std::uint8_t kRetireTimed = bit(Verdict::Violated);

std::uint16_t intern_const(std::vector<RangeConst>& pool, RangeConst rc) {
  for (std::size_t i = 0; i < pool.size(); ++i) {
    if (pool[i] == rc) return static_cast<std::uint16_t>(i);
  }
  pool.push_back(rc);
  return static_cast<std::uint16_t>(pool.size() - 1);
}

// The monitor's space accounting must match the Drct construction bit for
// bit (results_identical compares space via the campaign reports): range =
// 3 state bits + the counter width, fragment = 2 flags (+ a 64-bit
// timestamp register when a timed monitor reads its min-complete instant),
// chain = the active-fragment index, monitor = verdict (+ armed / q_done
// for timed).
std::size_t space_bits_of(const spec::OrderingPlan& plan, bool timed) {
  std::size_t bits = bits_for_value(plan.fragments.size());
  for (const auto& f : plan.fragments) {
    bits += 2 + (f.track_min_time ? 64 : 0);
    for (const auto& r : f.ranges) bits += 3 + bits_for_value(r.hi);
  }
  return bits + (timed ? 4 : 2);
}

}  // namespace

std::shared_ptr<const VmProgram> compile_vm(
    const spec::Property& property,
    std::shared_ptr<const spec::OrderingPlan> plan) {
  if (plan == nullptr) {
    plan = std::make_shared<const spec::OrderingPlan>(
        property.is_antecedent() ? spec::plan_antecedent(property.antecedent())
                                 : spec::plan_timed(property.timed()));
  }
  auto prog = std::make_shared<VmProgram>();
  VmProgram& p = *prog;
  p.plan = plan;
  p.timed = property.is_timed();
  if (p.timed) {
    p.bound = property.timed().bound;
    p.p_last = static_cast<std::uint32_t>(plan->p_boundary - 1);
  } else {
    p.repeated = property.antecedent().repeated;
  }
  p.frag_count = static_cast<std::uint32_t>(plan->fragments.size());
  p.q_last = p.frag_count - 1;
  if (p.frag_count == 0 || p.frag_count > 255) {
    throw std::logic_error("compile_vm: fragment count does not fit u8");
  }

  // --- flatten fragments and ranges, interning the bound constants -------
  for (const auto& f : plan->fragments) {
    p.frag_first.push_back(p.range_total);
    p.frag_ranges.push_back(static_cast<std::uint32_t>(f.ranges.size()));
    p.frag_conj.push_back(f.join == spec::Join::Conj ? 1 : 0);
    p.frag_track_min_time.push_back(f.track_min_time ? 1 : 0);
    for (const auto& r : f.ranges) {
      p.range_name.push_back(r.name);
      p.range_const.push_back(intern_const(
          p.pool,
          RangeConst{r.lo, r.hi, r.parent_join == spec::Join::Disj}));
      ++p.range_total;
    }
  }
  if (p.range_total > 0xFFFF) {
    throw std::logic_error("compile_vm: range count does not fit u16");
  }

  // --- route tables --------------------------------------------------------
  // One byte per (name, range) resolves the Fig. 5 input class in the Drct
  // recognizers' lazy test order (n, then C, then Ac); one flag byte per
  // (name, fragment) resolves the accept / in-alphabet tests; one byte per
  // name is the whole-plan filter.  Names beyond the table (alphabets grow
  // during campaigns) are handled by the Filter bounds check — exactly the
  // out-of-capacity-is-false contract of support::Bitset.
  p.table_names = static_cast<std::uint32_t>(plan->alphabet.capacity());
  p.filter.resize(p.table_names);
  p.route.resize(static_cast<std::size_t>(p.table_names) * p.range_total);
  p.frag_flags.resize(static_cast<std::size_t>(p.table_names) * p.frag_count);
  for (std::uint32_t name = 0; name < p.table_names; ++name) {
    p.filter[name] = plan->alphabet.test(name) ? 1 : 0;
    std::uint32_t flat = 0;
    for (std::uint32_t f = 0; f < p.frag_count; ++f) {
      const auto& fp = plan->fragments[f];
      std::uint8_t flags = 0;
      if (fp.accept.test(name)) flags |= kFlagAccept;
      if (fp.alphabet.test(name)) flags |= kFlagAlphabet;
      p.frag_flags[static_cast<std::size_t>(name) * p.frag_count + f] = flags;
      for (const auto& r : fp.ranges) {
        std::uint8_t cls = kClassOther;
        if (name == r.name) {
          cls = kClassN;
        } else if (r.siblings.test(name)) {
          cls = kClassC;
        } else if (r.accept.test(name)) {
          cls = kClassAc;
        }
        p.route[static_cast<std::size_t>(name) * p.range_total + flat] = cls;
        ++flat;
      }
    }
  }

  // --- code ---------------------------------------------------------------
  // Layout (F fragments; pcs are absolute):
  //   prologue: retire.if, filter, [deadline.guard], dispatch
  //   base+f:   frag.step f          (the dispatch targets)
  //   adv_f:    advance f+1 -> none  (ok of every non-final fragment)
  //   complete: complete.ante/timed  (ok of the final fragment)
  //   none:     [update.timing] note.progress; halt
  //   err:      latch.violation; halt
  const std::uint16_t base = p.timed ? 4 : 3;
  const std::uint16_t adv0 = static_cast<std::uint16_t>(base + p.frag_count);
  const std::uint16_t complete =
      static_cast<std::uint16_t>(adv0 + p.frag_count - 1);
  const std::uint16_t none_pc = static_cast<std::uint16_t>(complete + 1);
  const std::uint16_t err_pc =
      static_cast<std::uint16_t>(none_pc + (p.timed ? 3 : 2));

  p.code.push_back(
      Insn{Op::RetireIfDone, p.timed ? kRetireTimed : kRetireAntecedent,
           0, 0, 0});
  p.code.push_back(Insn{Op::Filter, 0, 0, 0, 0});
  if (p.timed) p.code.push_back(Insn{Op::DeadlineGuard, 0, 0, 0, 0});
  p.code.push_back(Insn{Op::Dispatch, 0, 0, 0, 0});
  for (std::uint32_t f = 0; f < p.frag_count; ++f) {
    p.frag_entry.push_back(static_cast<std::uint16_t>(base + f));
    const std::uint16_t ok =
        f + 1 == p.frag_count ? complete
                              : static_cast<std::uint16_t>(adv0 + f);
    p.code.push_back(Insn{Op::StepFragment, static_cast<std::uint8_t>(f), ok,
                          none_pc, err_pc});
  }
  for (std::uint32_t f = 0; f + 1 < p.frag_count; ++f) {
    p.code.push_back(Insn{Op::Advance, static_cast<std::uint8_t>(f + 1),
                          none_pc, 0, 0});
  }
  p.code.push_back(Insn{p.timed ? Op::CompleteTimed : Op::CompleteAntecedent,
                        0, 0, 0, 0});
  if (p.timed) p.code.push_back(Insn{Op::UpdateTiming, 0, 0, 0, 0});
  p.code.push_back(Insn{Op::NoteProgress, 0, 0, 0, 0});
  p.code.push_back(Insn{Op::Halt, 0, 0, 0, 0});
  p.code.push_back(Insn{Op::LatchViolation, 0, 0, 0, 0});
  p.code.push_back(Insn{Op::Halt, 0, 0, 0, 0});

  p.space_bits = space_bits_of(*plan, p.timed);
  return prog;
}

std::string disassemble(const VmProgram& p) {
  std::string out;
  char line[160];
  auto emit = [&](const char* fmt, auto... args) {
    std::snprintf(line, sizeof line, fmt, args...);
    out += line;
  };

  if (p.timed) {
    emit("vm timed bound=%s fragments=%u ranges=%u names=%u space=%zu\n",
         p.bound.to_string().c_str(), p.frag_count, p.range_total,
         p.table_names, p.space_bits);
  } else {
    emit("vm antecedent repeated=%u fragments=%u ranges=%u names=%u "
         "space=%zu\n",
         p.repeated ? 1u : 0u, p.frag_count, p.range_total, p.table_names,
         p.space_bits);
  }
  out += "pool:\n";
  for (std::size_t k = 0; k < p.pool.size(); ++k) {
    emit("  k%zu: [%u,%u] %s\n", k, p.pool[k].lo, p.pool[k].hi,
         p.pool[k].disj_parent ? "disj" : "conj");
  }
  out += "frags:\n";
  for (std::uint32_t f = 0; f < p.frag_count; ++f) {
    emit("  f%u: r%u..r%u %s%s\n", f, p.frag_first[f],
         p.frag_first[f] + p.frag_ranges[f] - 1,
         p.frag_conj[f] ? "conj" : "disj",
         p.frag_track_min_time[f] ? " min-time" : "");
  }
  out += "ranges:\n";
  for (std::uint32_t r = 0; r < p.range_total; ++r) {
    emit("  r%u: n=#%u k%u\n", r, static_cast<unsigned>(p.range_name[r]),
         static_cast<unsigned>(p.range_const[r]));
  }
  out += "code:\n";
  for (std::size_t pc = 0; pc < p.code.size(); ++pc) {
    const Insn& in = p.code[pc];
    switch (in.op) {
      case Op::RetireIfDone: {
        std::string mask;
        for (int v = 0; v < 4; ++v) {
          if ((in.a >> v) & 1) {
            if (!mask.empty()) mask += '|';
            mask += to_string(static_cast<Verdict>(v));
          }
        }
        emit("  %2zu: %-15s %s\n", pc, to_string(in.op), mask.c_str());
        break;
      }
      case Op::StepFragment:
        emit("  %2zu: %-15s f%u ok->%u none->%u err->%u\n", pc,
             to_string(in.op), in.a, in.b, in.c, in.d);
        break;
      case Op::Advance:
        emit("  %2zu: %-15s f%u ->%u\n", pc, to_string(in.op), in.a, in.b);
        break;
      default:
        emit("  %2zu: %s\n", pc, to_string(in.op));
        break;
    }
  }
  return out;
}

}  // namespace loom::mon

//! Cloneable monitor state: the flat, reusable buffer behind the
//! checkpointed-replay engine.
//!
//! A Snapshot captures the complete mutable state of one monitor instance —
//! recognizer automata, Figure-6 stats, verdict, violation, timing
//! registers — as a flat sequence of 64-bit words plus a small string pool.
//! Writers append in a fixed order (Monitor::snapshot); SnapshotReader
//! replays the same order (Monitor::restore).  The contract every
//! implementation keeps, locked by tests/mon_snapshot_test.cpp:
//!
//!   restore(s) after snapshot(s) ≡ the state at snapshot time, bit for
//!   bit — continuing observation afterwards is indistinguishable from an
//!   uninterrupted run (verdict, violation, stats and space accounting).
//!
//! Ownership: the caller owns the Snapshot; one buffer may be reused across
//! any number of snapshot() calls (clear() keeps the word vector's and the
//! string slots' capacity, so a warmed buffer re-snapshots without heap
//! traffic).  A Snapshot written by one monitor may only be restored into a
//! monitor of the same kind stamped from the same plan — each monitor tags
//! its format and restore() rejects a foreign tag.
//! Thread-safety: a Snapshot is a plain value; concurrent readers are fine
//! once writing stops (the campaign's checkpoint ladders are published
//! read-only through support::TraceCache).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "sim/time.hpp"

namespace loom::mon {

class SnapshotReader;

/// Snapshot format version, stamped into the high half of every monitor's
/// tag word.  Bump on any layout change to a monitor's snapshot order; a
/// restore (or wire decode) of a snapshot from a different version rejects
/// with a clear diagnostic instead of misreading the words.
constexpr std::uint32_t kSnapshotVersion = 1;

/// The tag word each monitor writes first: (version << 32) | kind, where
/// `kind` is the monitor's four-byte ASCII constant (e.g. "ANTC").
constexpr std::uint64_t snapshot_tag(std::uint32_t kind) {
  return (std::uint64_t{kSnapshotVersion} << 32) | kind;
}

constexpr std::uint32_t snapshot_tag_kind(std::uint64_t word) {
  return static_cast<std::uint32_t>(word);
}
constexpr std::uint32_t snapshot_tag_version(std::uint64_t word) {
  return static_cast<std::uint32_t>(word >> 32);
}

/// Restore-side tag validation: throws std::logic_error naming `who` with
/// a kind-mismatch diagnostic (foreign monitor kind) or a version
/// diagnostic (future or past format), so both failure modes read clearly
/// in test output and worker error frames.
void check_snapshot_tag(std::uint64_t word, std::uint32_t kind,
                        const char* who);

class Snapshot {
 public:
  /// Forgets the content, keeps every capacity (words and string slots):
  /// the reuse entry point for pooled snapshot buffers.
  void clear() {
    words_.clear();
    strings_used_ = 0;
  }

  bool empty() const { return words_.empty() && strings_used_ == 0; }
  std::size_t word_count() const { return words_.size(); }

  /// Raw word access for the wire codec (and the version-forgery tests):
  /// a Snapshot is semantically the word sequence plus the string pool, so
  /// serializing one is exactly these two views.
  const std::vector<std::uint64_t>& words() const { return words_; }
  std::size_t string_count() const { return strings_used_; }
  const std::string& string_at(std::size_t i) const { return strings_[i]; }
  /// Overwrites one word in place (tests forge tag words with this; the
  /// wire decoder never needs it).
  void set_word(std::size_t i, std::uint64_t v) { words_[i] = v; }

  void put_u64(std::uint64_t v) { words_.push_back(v); }
  void put_bool(bool b) { words_.push_back(b ? 1 : 0); }
  void put_time(sim::Time t) { words_.push_back(t.picoseconds()); }
  /// Strings land in a slot pool: a cleared buffer re-assigns into its old
  /// slots, reusing their capacity (error reasons are empty on the hot
  /// path, so this never grows in steady state).
  void put_string(const std::string& s);
  /// Bit vector as a length word plus 64-bit packed payload (the ViaPSL
  /// armed/range-seen sets can be wide; one word per bit would not do).
  void put_bits(const std::vector<bool>& bits);

 private:
  friend class SnapshotReader;
  std::vector<std::uint64_t> words_;
  std::vector<std::string> strings_;
  std::size_t strings_used_ = 0;
};

/// Sequential reader over a Snapshot; reads must mirror the write order.
/// Reads past the end throw std::logic_error (always, Release included):
/// restoring a truncated, empty or foreign snapshot rejects instead of
/// reading out of bounds.
class SnapshotReader {
 public:
  explicit SnapshotReader(const Snapshot& snap) : snap_(&snap) {}

  std::uint64_t u64();
  bool boolean() { return u64() != 0; }
  sim::Time time() { return sim::Time::ps(u64()); }
  /// Assigns into `out` (capacity-reusing; never a fresh string).
  void string_into(std::string& out);
  /// Restores a put_bits() payload; resizes `out` only on a width change.
  void bits_into(std::vector<bool>& out);

  /// True when every word and string has been consumed — restore()
  /// implementations end on an exhausted reader or the formats drifted.
  bool exhausted() const;

 private:
  const Snapshot* snap_;
  std::size_t word_ = 0;
  std::size_t str_ = 0;
};

}  // namespace loom::mon

#include "mon/vm.hpp"

#include <algorithm>
#include <stdexcept>

#include "mon/snapshot.hpp"
#include "support/diagnostics.hpp"

// Any step that latches an error formats a reason string — keep that code
// out of line so the hot automaton stays small enough to inline.
#if defined(__GNUC__) || defined(__clang__)
#define LOOM_VM_COLD __attribute__((noinline, cold))
#else
#define LOOM_VM_COLD
#endif

namespace loom::mon {
namespace {

// Format tag (see antecedent_monitor.cpp): kind-checks restore().
constexpr std::uint32_t kSnapshotKind = 0x564D4652;  // "VMFR"

// The range automaton's states — values match RangeRecognizer::State so a
// frame dump reads the same as a recognizer dump.
enum class RS : std::uint8_t {
  Idle,
  WaitFirst,
  WaitFirstSibling,
  Counting,
  DoneSibling,
  Error,
};

enum class RangeOut : std::uint8_t { None, Ok, Nok, Err };
enum class FragOut : std::uint8_t { None, Ok, Err };

// The Figure-6 operation count accumulates in a register (`ops`) for the
// duration of one entry point and flushes into MonitorStats once at the
// end — the totals are exactly the per-call add() sequence the Drct
// monitors execute, without a memory round-trip per charge.

void vm_violate(const VmFrameRef& f, std::uint64_t ordinal, sim::Time time,
                spec::Name name, std::string reason) {
  *f.verdict = Verdict::Violated;
  *f.violation = Violation{static_cast<std::size_t>(ordinal), time, name,
                           std::move(reason)};
}

// --- the range automaton (RangeRecognizer::step, compiled) ----------------
// The route byte replaces the lazy is_n / in_c / in_ac membership tests,
// but the Figure-6 accounting must not notice: every charge below equals
// the number of tests the Drct recognizer would have evaluated for this
// (state, class) cell plus its assignment/comparison charges, and the
// reason strings are formatted identically.

LOOM_VM_COLD RangeOut range_fail(const VmFrameRef& f, std::uint64_t& ops,
                                 std::uint32_t r, std::string reason) {
  ++ops;
  f.range_state[r] = static_cast<std::uint8_t>(RS::Error);
  f.range_reason[r] = std::move(reason);
  return RangeOut::Err;
}

LOOM_VM_COLD RangeOut fail_outside(const VmFrameRef& f, std::uint64_t& ops,
                                   std::uint32_t r) {
  return range_fail(f, ops, r,
                    "name from outside the active fragment (B or Af)");
}

LOOM_VM_COLD RangeOut fail_never_started(const VmFrameRef& f,
                                         std::uint64_t& ops,
                                         std::uint32_t r) {
  return range_fail(f, ops, r,
                    "fragment stopped before any of its ranges started");
}

LOOM_VM_COLD RangeOut fail_conj_unobserved(const VmFrameRef& f,
                                           std::uint64_t& ops,
                                           std::uint32_t r) {
  return range_fail(f, ops, r,
                    "conjunctive fragment stopped before one of its "
                    "ranges was observed");
}

LOOM_VM_COLD RangeOut fail_over_hi(const VmFrameRef& f, std::uint64_t& ops,
                                   std::uint32_t r, std::uint32_t hi) {
  return range_fail(f, ops, r,
                    "more than v=" + std::to_string(hi) +
                        " consecutive occurrences");
}

LOOM_VM_COLD RangeOut fail_block_below_lo(const VmFrameRef& f,
                                          std::uint64_t& ops,
                                          std::uint32_t r, std::uint32_t cpt,
                                          std::uint32_t lo) {
  return range_fail(f, ops, r,
                    "block ended after " + std::to_string(cpt) +
                        " occurrences, below u=" + std::to_string(lo));
}

LOOM_VM_COLD RangeOut fail_stop_below_lo(const VmFrameRef& f,
                                         std::uint64_t& ops, std::uint32_t r,
                                         std::uint32_t cpt,
                                         std::uint32_t lo) {
  return range_fail(f, ops, r,
                    "fragment stopped after " + std::to_string(cpt) +
                        " occurrences, below u=" + std::to_string(lo));
}

LOOM_VM_COLD RangeOut fail_reopened(const VmFrameRef& f, std::uint64_t& ops,
                                    std::uint32_t r) {
  return range_fail(f, ops, r, "range block reopened after it ended");
}

RangeOut range_step(const VmProgram& p, const VmFrameRef& f,
                    std::uint64_t& ops, std::uint32_t r, std::uint8_t cls) {
  switch (static_cast<RS>(f.range_state[r])) {
    case RS::Idle:
      return RangeOut::None;  // not started; no events routed here

    case RS::WaitFirst:  // s1
      switch (cls) {
        case kClassN:
          ops += 3;  // is_n + state + counter assignment
          f.range_state[r] = static_cast<std::uint8_t>(RS::Counting);
          f.range_cpt[r] = 1;
          return RangeOut::None;
        case kClassC:
          ops += 3;  // is_n + in_c + state assignment
          f.range_state[r] = static_cast<std::uint8_t>(RS::WaitFirstSibling);
          return RangeOut::None;
        case kClassAc:
          ops += 3;  // is_n + in_c + in_ac
          return fail_never_started(f, ops, r);
        default:
          ops += 3;
          return fail_outside(f, ops, r);
      }

    case RS::WaitFirstSibling:  // s2
      switch (cls) {
        case kClassN:
          ops += 3;
          f.range_state[r] = static_cast<std::uint8_t>(RS::Counting);
          f.range_cpt[r] = 1;
          return RangeOut::None;
        case kClassC:
          ops += 2;
          return RangeOut::None;
        case kClassAc:
          ops += 4;  // the three tests + the join test
          if (p.consts_of(r).disj_parent) {
            ++ops;
            f.range_state[r] = static_cast<std::uint8_t>(RS::Idle);
            return RangeOut::Nok;
          }
          return fail_conj_unobserved(f, ops, r);
        default:
          ops += 3;
          return fail_outside(f, ops, r);
      }

    case RS::Counting:  // s3
      switch (cls) {
        case kClassN:
          ops += 2;  // is_n + bound comparison
          if (f.range_cpt[r] == p.consts_of(r).hi) {
            return fail_over_hi(f, ops, r, p.consts_of(r).hi);
          }
          ++ops;
          ++f.range_cpt[r];
          return RangeOut::None;
        case kClassC:
          ops += 3;  // is_n + in_c + lower-bound comparison
          if (f.range_cpt[r] >= p.consts_of(r).lo) {
            ++ops;
            f.range_state[r] = static_cast<std::uint8_t>(RS::DoneSibling);
            return RangeOut::None;
          }
          return fail_block_below_lo(f, ops, r, f.range_cpt[r],
                                     p.consts_of(r).lo);
        case kClassAc:
          ops += 4;
          if (f.range_cpt[r] >= p.consts_of(r).lo) {
            ++ops;
            f.range_state[r] = static_cast<std::uint8_t>(RS::Idle);
            return RangeOut::Ok;
          }
          return fail_stop_below_lo(f, ops, r, f.range_cpt[r],
                                    p.consts_of(r).lo);
        default:
          ops += 3;
          return fail_outside(f, ops, r);
      }

    case RS::DoneSibling:  // s4
      switch (cls) {
        case kClassN:
          ++ops;
          return fail_reopened(f, ops, r);
        case kClassC:
          ops += 2;
          return RangeOut::None;
        case kClassAc:
          ops += 4;
          f.range_state[r] = static_cast<std::uint8_t>(RS::Idle);
          return RangeOut::Ok;
        default:
          ops += 3;
          return fail_outside(f, ops, r);
      }

    case RS::Error:  // s5, absorbing (the stored reason persists)
      return RangeOut::Err;
  }
  return RangeOut::None;
}

// --- fragment stepping (FragmentRecognizer::step, compiled) ---------------

void start_fragment(const VmProgram& p, const VmFrameRef& f,
                    std::uint64_t& ops, std::uint32_t frag) {
  const std::uint32_t first = p.frag_first[frag];
  const std::uint32_t count = p.frag_ranges[frag];
  for (std::uint32_t r = first; r < first + count; ++r) {
    ++ops;  // state assignment (RangeRecognizer::start)
    f.range_state[r] = static_cast<std::uint8_t>(RS::WaitFirst);
    f.range_cpt[r] = 0;
  }
  f.frag_min_complete[frag] = 0;
  f.frag_in_progress[frag] = 0;
}

bool min_reached(const VmProgram& p, const VmFrameRef& f, std::uint32_t r) {
  const RS s = static_cast<RS>(f.range_state[r]);
  return (s == RS::Counting && f.range_cpt[r] >= p.consts_of(r).lo) ||
         s == RS::DoneSibling;
}

FragOut fragment_step(const VmProgram& p, const VmFrameRef& f,
                      std::uint64_t& ops, std::uint32_t frag,
                      spec::Name name, sim::Time time,
                      std::uint32_t* err_range) {
  const std::uint32_t first = p.frag_first[frag];
  const std::uint32_t count = p.frag_ranges[frag];
  const std::uint8_t* route =
      p.route.data() + static_cast<std::size_t>(name) * p.range_total;
  // Synchronous parallel composition: every child sees the event; the
  // first child error aborts the sweep (the remaining children are not
  // stepped), exactly like the recognizer's loop.
  for (std::uint32_t r = first; r < first + count; ++r) {
    if (range_step(p, f, ops, r, route[r]) == RangeOut::Err) {
      *err_range = r;
      return FragOut::Err;
    }
  }
  ++ops;  // accept-set test for the aggregate decision
  const std::uint8_t flags =
      p.frag_flags[static_cast<std::size_t>(name) * p.frag_count + frag];
  if (flags & kFlagAccept) return FragOut::Ok;
  ++ops;  // in-fragment test
  if (flags & kFlagAlphabet) {
    f.frag_in_progress[frag] = 1;
    if (!f.frag_min_complete[frag]) {
      ops += count;  // one bound check per child
      bool done;
      if (p.frag_conj[frag]) {
        done = true;
        for (std::uint32_t r = first; r < first + count; ++r) {
          if (!min_reached(p, f, r)) {
            done = false;
            break;
          }
        }
      } else {
        done = false;
        for (std::uint32_t r = first; r < first + count; ++r) {
          if (min_reached(p, f, r)) {
            done = true;
            break;
          }
        }
      }
      if (done) {
        ++ops;
        f.frag_min_complete[frag] = 1;
        f.frag_min_time[frag] = time;
      }
    }
  }
  return FragOut::None;
}

// --- chain helpers (OrderingRecognizer, compiled) -------------------------

void restart_chain(const VmProgram& p, const VmFrameRef& f,
                   std::uint64_t& ops) {
  for (std::uint32_t r = 0; r < p.range_total; ++r) {
    f.range_state[r] = static_cast<std::uint8_t>(RS::Idle);
    f.range_cpt[r] = 0;
    f.range_reason[r].clear();
  }
  for (std::uint32_t frag = 0; frag < p.frag_count; ++frag) {
    f.frag_min_complete[frag] = 0;
    f.frag_in_progress[frag] = 0;
  }
  *f.active = 0;
  start_fragment(p, f, ops, 0);
}

// OrderingRecognizer::step with the result discarded: only used for the
// re-step of the completing event after a timed chain's reset point, where
// the Drct monitor also ignores the outcome but keeps the side effects.
void chain_step_discarded(const VmProgram& p, const VmFrameRef& f,
                          std::uint64_t& ops, spec::Name name,
                          sim::Time time) {
  std::uint32_t err_range = 0;
  ++ops;  // active-fragment dispatch
  switch (fragment_step(p, f, ops, *f.active, name, time, &err_range)) {
    case FragOut::None:
    case FragOut::Err:
      return;
    case FragOut::Ok:
      break;
  }
  if (*f.active + 1 == p.frag_count) return;  // completed again; discarded
  ++*f.active;
  ++ops;
  start_fragment(p, f, ops, *f.active);
  (void)fragment_step(p, f, ops, *f.active, name, time, &err_range);
}

// --- timed bookkeeping (TimedImplicationMonitor::update_timing) -----------

LOOM_VM_COLD void violate_deadline(const VmFrameRef& f, std::uint64_t ordinal,
                                   spec::Name name, sim::Time took,
                                   sim::Time bound) {
  vm_violate(f, ordinal, *f.t_stop, name,
             "consequent finished after the deadline (took " +
                 took.to_string() + ", bound " + bound.to_string() + ")");
}

void update_timing(const VmProgram& p, const VmFrameRef& f,
                   std::uint64_t& ops, sim::Time now, std::uint64_t ordinal,
                   spec::Name name) {
  const std::uint32_t p_last = p.p_last;
  const std::uint32_t q_last = p.q_last;
  const std::uint32_t active = *f.active;
  ops += 2;  // the two stage comparisons below
  if (!*f.armed &&
      (active > p_last ||
       (active == p_last && f.frag_min_complete[p_last]))) {
    *f.armed = 1;
    *f.t_start = active == p_last ? f.frag_min_time[p_last] : now;
    ops += 2;
  }
  if (*f.armed && !*f.q_done && active == q_last &&
      f.frag_min_complete[q_last]) {
    *f.q_done = 1;
    *f.t_stop = f.frag_min_time[q_last];
    ops += 3;  // flag + assignment + deadline comparison
    if (*f.t_stop - *f.t_start > p.bound) {
      violate_deadline(f, ordinal, name, *f.t_stop - *f.t_start, p.bound);
    }
  }
}

// The dispatch loop proper, shared by the single-event and batched entry
// points: executes one event from pc 0 and returns the event's Figure-6
// spend (the callers own the events/ops/max-ops bookkeeping).
std::uint64_t step_event_core(const VmProgram& p, const VmFrameRef& f,
                              const Insn* const code, spec::Name name,
                              sim::Time time) {
  std::uint64_t ops = 0;
  const std::uint64_t ordinal = (*f.ordinal)++;
  std::uint32_t err_range = 0;
  std::uint16_t pc = 0;
  for (;;) {
    const Insn in = code[pc];
    switch (in.op) {
      case Op::RetireIfDone:
        if ((in.a >> static_cast<unsigned>(*f.verdict)) & 1) return ops;
        ++pc;
        break;
      case Op::Filter:
        ++ops;  // alphabet filter
        if (name >= p.table_names || !p.filter[name]) return ops;
        ++pc;
        break;
      case Op::DeadlineGuard:
        ++ops;  // deadline pre-check
        if (*f.armed && !*f.q_done && time > *f.t_start + p.bound) {
          vm_violate(f, ordinal, time, name,
                     "deadline elapsed before the consequent finished");
          return ops;
        }
        ++pc;
        break;
      case Op::Dispatch:
        ++ops;  // active-fragment dispatch
        pc = p.frag_entry[*f.active];
        break;
      case Op::StepFragment:
        switch (fragment_step(p, f, ops, in.a, name, time, &err_range)) {
          case FragOut::Ok:
            pc = in.b;
            break;
          case FragOut::None:
            pc = in.c;
            break;
          case FragOut::Err:
            pc = in.d;
            break;
        }
        break;
      case Op::Advance:
        // The stopping name of the previous fragment is the first event of
        // the new one; the nested step can neither complete nor fail.
        *f.active = in.a;
        ++ops;
        start_fragment(p, f, ops, in.a);
        (void)fragment_step(p, f, ops, in.a, name, time, &err_range);
        pc = in.b;
        break;
      case Op::CompleteAntecedent:
        ++*f.validated_or_rounds;
        if (p.repeated) {
          restart_chain(p, f, ops);
          *f.verdict = Verdict::Monitoring;
        } else {
          *f.verdict = Verdict::Holds;
        }
        return ops;
      case Op::CompleteTimed:
        // The reset point: the completing event restarts the chain at F1.
        ++*f.validated_or_rounds;
        *f.armed = 0;
        *f.q_done = 0;
        restart_chain(p, f, ops);
        chain_step_discarded(p, f, ops, name, time);
        update_timing(p, f, ops, time, ordinal, name);
        if (*f.verdict != Verdict::Violated) *f.verdict = Verdict::Pending;
        return ops;
      case Op::UpdateTiming:
        update_timing(p, f, ops, time, ordinal, name);
        ++pc;
        break;
      case Op::NoteProgress:
        if (*f.verdict != Verdict::Violated) {
          *f.verdict = (*f.active > 0 || f.frag_in_progress[0])
                           ? Verdict::Pending
                           : Verdict::Monitoring;
        }
        ++pc;
        break;
      case Op::LatchViolation:
        // Copy (not move) the erring range's reason: the range keeps it,
        // exactly like the recognizer keeps error_reason().
        vm_violate(f, ordinal, time, name, f.range_reason[err_range]);
        ++pc;
        break;
      case Op::Halt:
        return ops;
    }
  }
}

}  // namespace

// --- interpreter entry points ---------------------------------------------

void vm_init(const VmProgram& p, const VmFrameRef& f) {
  // Fresh-construction state: the chain activates, charging one op per
  // range of fragment 0 (RangeRecognizer::start), just like the Drct
  // monitor constructors.
  *f.active = 0;
  std::uint64_t ops = 0;
  start_fragment(p, f, ops, 0);
  f.stats->add(ops);
}

void vm_reset(const VmProgram& p, const VmFrameRef& f) {
  // Stats first: restart re-runs the activation ops a fresh monitor
  // carries; clearing afterwards would lose them (mon_reset_reuse_test).
  f.stats->reset();
  std::uint64_t ops = 0;
  restart_chain(p, f, ops);
  f.stats->add(ops);
  *f.verdict = Verdict::Monitoring;
  f.violation->reset();
  *f.armed = 0;
  *f.q_done = 0;
  *f.validated_or_rounds = 0;
  *f.ordinal = 0;
}

void vm_step_event(const VmProgram& p, const VmFrameRef& f, spec::Name name,
                   sim::Time time) {
  MonitorStats& st = *f.stats;
  ++st.events;  // begin_event(); the core returns this event's exact spend
  const std::uint64_t ops = step_event_core(p, f, p.code.data(), name, time);
  st.ops += ops;  // end_event(): flush the register-held spend
  if (ops > st.max_ops_per_event) st.max_ops_per_event = ops;
}

void vm_run_batch(const VmProgram& p, const VmFrameRef& f,
                  const spec::TimedEvent* begin, const spec::TimedEvent* end) {
  // Same per-event schedule as vm_step_event in a loop — the events/ops/
  // max-ops totals land identically, they just flush once per slice.
  MonitorStats& st = *f.stats;
  const Insn* const code = p.code.data();
  std::uint64_t total = 0;
  std::uint64_t max_ops = st.max_ops_per_event;
  for (const auto* ev = begin; ev != end; ++ev) {
    const std::uint64_t ops = step_event_core(p, f, code, ev->name, ev->time);
    total += ops;
    if (ops > max_ops) max_ops = ops;
  }
  st.events += static_cast<std::uint64_t>(end - begin);
  st.ops += total;
  st.max_ops_per_event = max_ops;
}

void vm_finish(const VmProgram& p, const VmFrameRef& f, sim::Time end_time) {
  if (!p.timed) return;  // pure safety: nothing to check at the end
  if (*f.verdict == Verdict::Violated) return;
  if (*f.armed && !*f.q_done && end_time > *f.t_start + p.bound) {
    vm_violate(f, *f.ordinal, end_time, spec::kInvalidName,
               "observation ended after the deadline with the consequent "
               "unfinished");
    return;
  }
  // Earliest-match: a round whose consequent reached its minimum within
  // the deadline has met its obligation even if the final block is open.
  if (*f.q_done) *f.verdict = Verdict::Monitoring;
}

void vm_poll(const VmProgram& p, const VmFrameRef& f, sim::Time now) {
  if (!p.timed) return;
  if (*f.verdict == Verdict::Violated) return;
  if (*f.armed && !*f.q_done && now > *f.t_start + p.bound) {
    vm_violate(f, *f.ordinal, now, spec::kInvalidName,
               "deadline elapsed before the consequent finished (watchdog)");
  }
}

// --- VmMonitor ------------------------------------------------------------

VmMonitor::VmMonitor(std::shared_ptr<const VmProgram> program)
    : program_(std::move(program)),
      range_state_(program_->range_total,
                   static_cast<std::uint8_t>(RS::Idle)),
      range_cpt_(program_->range_total, 0),
      range_reason_(program_->range_total),
      frag_min_complete_(program_->frag_count, 0),
      frag_in_progress_(program_->frag_count, 0),
      frag_min_time_(program_->frag_count),
      frame_(make_ref()) {
  vm_init(*program_, frame_);
}

VmFrameRef VmMonitor::make_ref() {
  return VmFrameRef{range_state_.data(), range_cpt_.data(),
                    range_reason_.data(), frag_min_complete_.data(),
                    frag_in_progress_.data(), frag_min_time_.data(),
                    &active_, &verdict_, &violation_, &stats_,
                    &armed_, &q_done_, &t_start_, &t_stop_,
                    &validated_or_rounds_, &ordinal_};
}

std::optional<sim::Time> VmMonitor::deadline() const {
  if (program_->timed && armed_ && !q_done_) {
    return t_start_ + program_->bound;
  }
  return std::nullopt;
}

void vm_snapshot(const VmProgram& p, const VmFrameRef& f, Snapshot& out) {
  out.clear();
  out.put_u64(snapshot_tag(kSnapshotKind));
  // Shape guard: a snapshot only restores into an instance of the same
  // program shape (cf. ClauseMonitor's clause-count check).
  out.put_u64(p.range_total);
  out.put_u64(p.frag_count);
  f.stats->snapshot(out);
  out.put_u64(*f.active);
  for (std::uint32_t r = 0; r < p.range_total; ++r) {
    out.put_u64(f.range_state[r]);
    out.put_u64(f.range_cpt[r]);
    out.put_string(f.range_reason[r]);
  }
  for (std::uint32_t frag = 0; frag < p.frag_count; ++frag) {
    out.put_bool(f.frag_min_complete[frag] != 0);
    out.put_bool(f.frag_in_progress[frag] != 0);
    out.put_time(f.frag_min_time[frag]);
  }
  out.put_u64(static_cast<std::uint64_t>(*f.verdict));
  snapshot_violation(out, *f.violation);
  out.put_bool(*f.armed != 0);
  out.put_bool(*f.q_done != 0);
  out.put_time(*f.t_start);
  out.put_time(*f.t_stop);
  out.put_u64(*f.validated_or_rounds);
  out.put_u64(*f.ordinal);
}

void vm_restore(const VmProgram& p, const VmFrameRef& f, const Snapshot& in,
                const char* who) {
  SnapshotReader r(in);
  check_snapshot_tag(r.u64(), kSnapshotKind, who);
  if (r.u64() != p.range_total || r.u64() != p.frag_count) {
    throw std::logic_error(std::string(who) +
                           ": snapshot of a different program shape");
  }
  f.stats->restore(r);
  *f.active = static_cast<std::uint32_t>(r.u64());
  for (std::uint32_t i = 0; i < p.range_total; ++i) {
    f.range_state[i] = static_cast<std::uint8_t>(r.u64());
    f.range_cpt[i] = static_cast<std::uint32_t>(r.u64());
    r.string_into(f.range_reason[i]);
  }
  for (std::uint32_t frag = 0; frag < p.frag_count; ++frag) {
    f.frag_min_complete[frag] = r.boolean() ? 1 : 0;
    f.frag_in_progress[frag] = r.boolean() ? 1 : 0;
    f.frag_min_time[frag] = r.time();
  }
  *f.verdict = static_cast<Verdict>(r.u64());
  restore_violation(r, *f.violation);
  *f.armed = r.boolean() ? 1 : 0;
  *f.q_done = r.boolean() ? 1 : 0;
  *f.t_start = r.time();
  *f.t_stop = r.time();
  *f.validated_or_rounds = r.u64();
  *f.ordinal = r.u64();
  LOOM_DASSERT(r.exhausted());  // format drift: snapshot wrote more fields
}

void VmMonitor::snapshot(Snapshot& out) const {
  vm_snapshot(*program_, frame_, out);
}

void VmMonitor::restore(const Snapshot& in) {
  vm_restore(*program_, frame_, in, "VmMonitor::restore");
}

// --- VmLaneBatch ----------------------------------------------------------

namespace {

// Rounds a per-lane row length up so each lane's row starts on a 64-byte
// cache-line boundary in the flat lane-major arrays (element sizes here are
// 1, 4, 8 or 32 bytes — all divide or are multiples of 64 after the
// element-count rounding below, so one count-level stride serves every
// array of the same row).
std::size_t lane_stride(std::size_t count) {
  constexpr std::size_t kLine = 64;
  return (count + kLine - 1) / kLine * kLine;
}

}  // namespace

VmLaneBatch::VmLaneBatch(std::shared_ptr<const VmProgram> program,
                         std::size_t lanes)
    : program_(std::move(program)),
      lanes_(lanes),
      range_stride_(lane_stride(program_->range_total)),
      frag_stride_(lane_stride(program_->frag_count)),
      range_state_(lanes * range_stride_,
                   static_cast<std::uint8_t>(RS::Idle)),
      range_cpt_(lanes * range_stride_, 0),
      range_reason_(lanes * range_stride_),
      frag_min_complete_(lanes * frag_stride_, 0),
      frag_in_progress_(lanes * frag_stride_, 0),
      frag_min_time_(lanes * frag_stride_),
      active_(lanes, 0),
      verdict_(lanes, Verdict::Monitoring),
      violation_(lanes),
      stats_(lanes),
      armed_(lanes, 0),
      q_done_(lanes, 0),
      t_start_(lanes),
      t_stop_(lanes),
      validated_or_rounds_(lanes, 0),
      ordinal_(lanes, 0) {
  frames_.reserve(lanes_);
  for (std::size_t lane = 0; lane < lanes_; ++lane) {
    frames_.push_back(make_ref(lane));
    vm_init(*program_, frames_[lane]);
  }
}

VmFrameRef VmLaneBatch::make_ref(std::size_t lane) {
  return VmFrameRef{
      range_state_.data() + lane * range_stride_,
      range_cpt_.data() + lane * range_stride_,
      range_reason_.data() + lane * range_stride_,
      frag_min_complete_.data() + lane * frag_stride_,
      frag_in_progress_.data() + lane * frag_stride_,
      frag_min_time_.data() + lane * frag_stride_,
      &active_[lane], &verdict_[lane], &violation_[lane], &stats_[lane],
      &armed_[lane], &q_done_[lane], &t_start_[lane], &t_stop_[lane],
      &validated_or_rounds_[lane], &ordinal_[lane]};
}

namespace {

// Lockstep block size: lanes advance together in windows of this many
// suffix positions, and within a window each lane's sub-slice runs through
// vm_run_batch's hoisted inner loop — the per-event entry overhead (code
// pointer reload, per-event stats flush) is paid once per block per lane
// instead of once per event, while lanes still stay within one block of
// each other, so the shared program tables and every used frame remain
// hot.  Lanes are independent frames: relative alignment is a pure
// scheduling choice, and vm_run_batch accumulates ops/events and folds
// max-ops exactly like per-event stepping, so the block size is invisible
// in every result byte (mon_bytecode_test locks lockstep ≡ solo).
constexpr std::size_t kLockstepBlock = 64;

}  // namespace

void VmLaneBatch::run(const std::vector<const spec::Trace*>& traces) {
  LOOM_DASSERT(traces.size() == lanes_);
  std::size_t longest = 0;
  for (const auto* t : traces) {
    if (t->size() > longest) longest = t->size();
  }
  const VmFrameRef* const frames = frames_.data();
  for (std::size_t b = 0; b < longest; b += kLockstepBlock) {
    for (std::size_t lane = 0; lane < lanes_; ++lane) {
      const spec::Trace& t = *traces[lane];
      if (b >= t.size()) continue;
      const std::size_t end = std::min(t.size(), b + kLockstepBlock);
      vm_run_batch(*program_, frames[lane], t.data() + b, t.data() + end);
    }
  }
}

void VmLaneBatch::run(const std::vector<const spec::Trace*>& traces,
                      const std::vector<std::size_t>& starts) {
  // A partial wave steps only the first traces.size() lanes; the rest are
  // untouched (the campaign's final wave per unit is usually partial).
  const std::size_t used = traces.size();
  LOOM_DASSERT(used <= lanes_);
  LOOM_DASSERT(starts.size() == used);
  // Lockstep by suffix position: lane l's block b covers its events
  // [starts[l] + b·B, starts[l] + (b+1)·B) — each lane still sees exactly
  // its own suffix in order, which is all bit-identity needs.
  std::size_t longest = 0;
  for (std::size_t lane = 0; lane < used; ++lane) {
    const std::size_t size = traces[lane]->size();
    const std::size_t suffix = size > starts[lane] ? size - starts[lane] : 0;
    if (suffix > longest) longest = suffix;
  }
  const VmFrameRef* const frames = frames_.data();
  for (std::size_t b = 0; b < longest; b += kLockstepBlock) {
    for (std::size_t lane = 0; lane < used; ++lane) {
      const spec::Trace& t = *traces[lane];
      const std::size_t begin = starts[lane] + b;
      if (begin >= t.size()) continue;
      const std::size_t end = std::min(t.size(), begin + kLockstepBlock);
      vm_run_batch(*program_, frames[lane], t.data() + begin,
                   t.data() + end);
    }
  }
}

}  // namespace loom::mon

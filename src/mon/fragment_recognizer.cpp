#include "mon/fragment_recognizer.hpp"

#include "mon/snapshot.hpp"

namespace loom::mon {

void FragmentRecognizer::snapshot(Snapshot& out) const {
  out.put_bool(min_complete_);
  out.put_bool(in_progress_);
  out.put_time(min_complete_time_);
  out.put_string(error_reason_);
  for (const auto& c : children_) c.snapshot(out);
}

void FragmentRecognizer::restore(SnapshotReader& in) {
  min_complete_ = in.boolean();
  in_progress_ = in.boolean();
  min_complete_time_ = in.time();
  in.string_into(error_reason_);
  for (auto& c : children_) c.restore(in);
}

FragmentRecognizer::FragmentRecognizer(const spec::FragmentPlan& plan,
                                       MonitorStats& stats)
    : plan_(&plan), stats_(&stats) {
  children_.reserve(plan.ranges.size());
  for (const auto& rp : plan.ranges) children_.emplace_back(rp, stats);
}

void FragmentRecognizer::start() {
  for (auto& c : children_) c.start();
  min_complete_ = false;
  in_progress_ = false;
}

void FragmentRecognizer::reset() {
  for (auto& c : children_) c.reset();
  min_complete_ = false;
  in_progress_ = false;
  error_reason_.clear();
}

bool FragmentRecognizer::compute_min_complete() const {
  stats_->add(children_.size());  // one bound check per child
  if (plan_->join == spec::Join::Conj) {
    for (const auto& c : children_) {
      if (!c.min_reached()) return false;
    }
    return true;
  }
  for (const auto& c : children_) {
    if (c.min_reached()) return true;
  }
  return false;
}

FragmentRecognizer::Out FragmentRecognizer::step(spec::Name name,
                                                 sim::Time time) {
  // Synchronous parallel composition: every child sees the event.
  std::size_t oks = 0;
  std::size_t noks = 0;
  for (auto& c : children_) {
    switch (c.step(name)) {
      case RangeRecognizer::Out::None:
        break;
      case RangeRecognizer::Out::Ok:
        ++oks;
        break;
      case RangeRecognizer::Out::Nok:
        ++noks;
        break;
      case RangeRecognizer::Out::Err:
        error_reason_ = c.error_reason();
        return Out::Err;
    }
  }
  stats_->add();  // accept-set test for the aggregate decision
  if (plan_->accept.test(name)) {
    // Stopping name with no child error: the child automata guarantee the
    // fragment's completion condition (∧: all Ok; ∨: >= 1 Ok).
    (void)oks;
    (void)noks;
    return Out::Ok;
  }
  stats_->add();  // in-fragment test
  if (plan_->alphabet.test(name)) {
    in_progress_ = true;
    if (!min_complete_ && compute_min_complete()) {
      stats_->add();
      min_complete_ = true;
      min_complete_time_ = time;
    }
  }
  return Out::None;
}

std::size_t FragmentRecognizer::space_bits() const {
  // min-complete + in-progress flags; the 64-bit timestamp register exists
  // only on the fragments a timed monitor reads (paper's sc_time start /
  // stop).
  std::size_t bits = 2 + (plan_->track_min_time ? 64 : 0);
  for (const auto& c : children_) bits += c.space_bits();
  return bits;
}

}  // namespace loom::mon

#include "mon/timed_monitor.hpp"

#include <stdexcept>

#include "mon/snapshot.hpp"
#include "support/diagnostics.hpp"

namespace loom::mon {
namespace {
// Format tag (see antecedent_monitor.cpp): kind-checks restore().
constexpr std::uint32_t kSnapshotKind = 0x54494D44;  // "TIMD"
}  // namespace

TimedImplicationMonitor::TimedImplicationMonitor(spec::TimedImplication property)
    : TimedImplicationMonitor(std::move(property), nullptr) {}

TimedImplicationMonitor::TimedImplicationMonitor(
    spec::TimedImplication property,
    std::shared_ptr<const spec::OrderingPlan> plan)
    : property_(std::move(property)),
      plan_(plan != nullptr ? std::move(plan)
                            : std::make_shared<const spec::OrderingPlan>(
                                  spec::plan_timed(property_))),
      recognizer_(*plan_, stats_) {
  recognizer_.activate();
}

void TimedImplicationMonitor::violate(std::size_t ordinal, sim::Time time,
                                      spec::Name name, std::string reason) {
  verdict_ = Verdict::Violated;
  violation_ = Violation{ordinal, time, name, std::move(reason)};
}

void TimedImplicationMonitor::update_timing(sim::Time now, std::size_t ordinal,
                                            spec::Name name) {
  const std::size_t p_last = plan_->p_boundary - 1;
  const std::size_t q_last = plan_->fragments.size() - 1;
  const std::size_t active = recognizer_.active_fragment();
  stats_.add(2);  // the two stage comparisons below
  if (!armed_ && (active > p_last ||
                  (active == p_last &&
                   recognizer_.fragment(p_last).min_complete()))) {
    armed_ = true;
    t_start_ = active == p_last
                   ? recognizer_.fragment(p_last).min_complete_time()
                   : now;
    stats_.add(2);
  }
  if (armed_ && !q_done_ && active == q_last &&
      recognizer_.fragment(q_last).min_complete()) {
    q_done_ = true;
    t_stop_ = recognizer_.fragment(q_last).min_complete_time();
    stats_.add(3);  // flag + assignment + deadline comparison
    if (t_stop_ - t_start_ > property_.bound) {
      violate(ordinal, t_stop_, name,
              "consequent finished after the deadline (took " +
                  (t_stop_ - t_start_).to_string() + ", bound " +
                  property_.bound.to_string() + ")");
    }
  }
}

void TimedImplicationMonitor::observe(spec::Name name, sim::Time time) {
  const auto before = stats_.begin_event();
  const std::size_t ordinal = ordinal_++;
  if (verdict_ == Verdict::Violated) {
    stats_.end_event(before);
    return;
  }
  stats_.add();  // alphabet filter
  if (!plan_->alphabet.test(name)) {
    stats_.end_event(before);
    return;
  }
  stats_.add();  // deadline pre-check
  if (armed_ && !q_done_ && time > t_start_ + property_.bound) {
    violate(ordinal, time, name,
            "deadline elapsed before the consequent finished");
    stats_.end_event(before);
    return;
  }
  switch (recognizer_.step(name, time)) {
    case OrderingRecognizer::Out::None:
      update_timing(time, ordinal, name);
      if (verdict_ != Verdict::Violated) {
        verdict_ = recognizer_.in_progress() ? Verdict::Pending
                                             : Verdict::Monitoring;
      }
      break;
    case OrderingRecognizer::Out::Completed: {
      // The reset point: the completing event restarts the chain at F1.
      ++rounds_;
      armed_ = false;
      q_done_ = false;
      recognizer_.restart();
      (void)recognizer_.step(name, time);  // same event opens fragment 0
      update_timing(time, ordinal, name);
      if (verdict_ != Verdict::Violated) verdict_ = Verdict::Pending;
      break;
    }
    case OrderingRecognizer::Out::Err:
      violate(ordinal, time, name, recognizer_.error_reason());
      break;
  }
  stats_.end_event(before);
}

void TimedImplicationMonitor::poll(sim::Time now) {
  if (verdict_ == Verdict::Violated) return;
  if (armed_ && !q_done_ && now > t_start_ + property_.bound) {
    violate(ordinal_, now, spec::kInvalidName,
            "deadline elapsed before the consequent finished (watchdog)");
  }
}

void TimedImplicationMonitor::finish(sim::Time end_time) {
  if (verdict_ == Verdict::Violated) return;
  if (armed_ && !q_done_ && end_time > t_start_ + property_.bound) {
    violate(ordinal_, end_time, spec::kInvalidName,
            "observation ended after the deadline with the consequent "
            "unfinished");
    return;
  }
  // Earliest-match: a round whose consequent reached its minimum within the
  // deadline has met its obligation even if the final block is still open.
  if (q_done_) verdict_ = Verdict::Monitoring;
}

std::size_t TimedImplicationMonitor::space_bits() const {
  // Recognizer state (including the two sc_time registers of the paper's
  // §6, carried by the end-of-P / end-of-Q fragments) + verdict + the
  // armed / q_done flags.
  return recognizer_.space_bits() + 2 + 2;
}

void TimedImplicationMonitor::reset() {
  // Stats first: restart() re-runs the activation ops a fresh monitor
  // carries; clearing afterwards would lose them (mon_reset_reuse_test).
  stats_.reset();
  recognizer_.restart();
  verdict_ = Verdict::Monitoring;
  violation_.reset();
  armed_ = false;
  q_done_ = false;
  rounds_ = 0;
  ordinal_ = 0;
}

void TimedImplicationMonitor::snapshot(Snapshot& out) const {
  out.clear();
  out.put_u64(snapshot_tag(kSnapshotKind));
  stats_.snapshot(out);
  recognizer_.snapshot(out);
  out.put_u64(static_cast<std::uint64_t>(verdict_));
  snapshot_violation(out, violation_);
  out.put_bool(armed_);
  out.put_bool(q_done_);
  out.put_time(t_start_);
  out.put_time(t_stop_);
  out.put_u64(rounds_);
  out.put_u64(ordinal_);
}

void TimedImplicationMonitor::restore(const Snapshot& in) {
  SnapshotReader r(in);
  check_snapshot_tag(r.u64(), kSnapshotKind,
                     "TimedImplicationMonitor::restore");
  stats_.restore(r);
  recognizer_.restore(r);
  verdict_ = static_cast<Verdict>(r.u64());
  restore_violation(r, violation_);
  armed_ = r.boolean();
  q_done_ = r.boolean();
  t_start_ = r.time();
  t_stop_ = r.time();
  rounds_ = r.u64();
  ordinal_ = static_cast<std::size_t>(r.u64());
  LOOM_DASSERT(r.exhausted());  // format drift: snapshot wrote more fields
}

}  // namespace loom::mon

#include "mon/monitor_module.hpp"

namespace loom::mon {

MonitorModule::MonitorModule(sim::Scheduler& scheduler, std::string name,
                             Monitor& monitor, const spec::Alphabet& alphabet,
                             sim::Module* parent)
    : sim::Module(scheduler, std::move(name), parent),
      monitor_(monitor),
      alphabet_(alphabet) {}

void MonitorModule::observe(spec::Name name) {
  observe(name, scheduler().now());
}

void MonitorModule::observe(spec::Name name, sim::Time time) {
  monitor_.observe(name, time);
  after_step();
}

void MonitorModule::observe_batch(const spec::Trace& slice,
                                  BatchPolicy policy, std::size_t begin) {
  if (begin > slice.size()) begin = slice.size();
  if (policy == BatchPolicy::ReplayAll) {
    monitor_.observe_batch(slice.data() + begin,
                           slice.data() + slice.size());
  } else {
    for (std::size_t i = begin; i < slice.size(); ++i) {
      monitor_.observe(slice[i].name, slice[i].time);
      // Stop stepping once violated: the remaining slice cannot un-violate
      // the monitor and the violation report should point at its cause.
      if (monitor_.verdict() == Verdict::Violated) break;
    }
  }
  after_step();
}

void MonitorModule::finish() {
  monitor_.finish(scheduler().now());
  after_step();
}

void MonitorModule::reset() {
  disarm_watchdog();
  violation_reported_ = false;
}

void MonitorModule::after_step() {
  if (!violation_reported_ && monitor_.verdict() == Verdict::Violated &&
      monitor_.violation().has_value()) {
    violation_reported_ = true;
    for (const auto& cb : callbacks_) cb(*monitor_.violation());
  }
  arm_watchdog();
}

void MonitorModule::arm_watchdog() {
  if (!arm_watchdogs_) return;
  const auto deadline = monitor_.deadline();
  if (!deadline.has_value()) {
    if (watchdog_token_ != nullptr) *watchdog_token_ = true;  // disarm
    armed_deadline_.reset();
    return;
  }
  if (deadline == armed_deadline_) return;
  if (watchdog_token_ != nullptr) *watchdog_token_ = true;
  armed_deadline_ = deadline;
  watchdog_token_ = std::make_shared<bool>(false);
  // Fire one resolution step past the deadline: finishing exactly on the
  // deadline is allowed.
  scheduler().schedule_at(
      *deadline + sim::Time::ps(1),
      [this] {
        monitor_.poll(scheduler().now());
        armed_deadline_.reset();
        if (!violation_reported_ && monitor_.verdict() == Verdict::Violated &&
            monitor_.violation().has_value()) {
          violation_reported_ = true;
          for (const auto& cb : callbacks_) cb(*monitor_.violation());
        }
      },
      watchdog_token_);
}

}  // namespace loom::mon

//! Compiled property plans: translate a property exactly once, stamp out
//! monitor instances cheaply ever after.
//!
//! A CompiledProperty holds the one-time-translated, immutable artifacts of
//! one property:
//!   - the interned event alphabet (a support::Interner snapshot of the
//!     property's names, so renders never touch the shared spec::Alphabet);
//!   - the flattened recognizer construction tables (spec::OrderingPlan,
//!     the paper's Fig. 4 attribute computation) the Drct monitors execute;
//!   - for ViaPSL, the psl::translate clause set (psl::Encoding).
//! instantiate() stamps a fresh monitor from those shared artifacts without
//! re-running any translation; combined with Monitor::reset() a caller can
//! keep one instance per worker and reuse it across traces.
//!
//! Backend selection: Auto consults psl::cost_model — the analytic per-event
//! operation counts of both constructions, computed without materializing
//! anything — and picks the cheaper monitor (for the paper's properties that
//! is Drct, which is the point of its Figure 6).  Drct / ViaPSL force one
//! side; forcing ViaPSL on an untranslatable shape (timed chain whose final
//! fragment holds several ranges, or an encoding past max_clauses) throws.
//!
//! CompiledPropertyCache adds the cross-campaign memoization layer: one
//! compilation per (normalized property text, name→id bindings, compile
//! options) for the whole lifetime of an embedder.
//!
//! Ownership: artifacts live behind shared_ptr<const ...>; CompiledProperty
//! is cheap to copy and every instantiated monitor keeps its artifacts
//! alive.  Thread-safety: a CompiledProperty is immutable after compile();
//! sharing one across threads and calling instantiate() concurrently is
//! safe.  Determinism: compile() and the Auto choice are pure functions of
//! the property, so campaigns over compiled plans stay bit-identical to
//! per-unit translation (tests/compiled_plan_diff_test.cpp).
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "mon/verdict.hpp"
#include "psl/cost_model.hpp"
#include "psl/translate.hpp"
#include "spec/attributes.hpp"
#include "support/interner.hpp"

namespace loom::mon {

struct VmProgram;  // mon/bytecode.hpp

/// Which monitor construction executes a property.
enum class Backend : std::uint8_t {
  Auto,    // pick per property via psl::cost_model
  Drct,    // the paper's direct monitors (§6)
  ViaPSL,  // the PSL clause network of [14] (§5)
  Vm,      // the Drct plan compiled to bytecode (mon/bytecode.hpp)
};

const char* to_string(Backend b);

/// Parses "auto" / "drct" / "viapsl" / "vm" (case-sensitive, the CLI
/// spelling).
std::optional<Backend> parse_backend(std::string_view text);

/// Positional-argv form for the bench/example mains (the sibling of
/// support::parse_count): Backend::Auto when argv[index] is absent,
/// std::nullopt on an unknown spelling — callers report their own usage.
std::optional<Backend> parse_backend_arg(int argc, char** argv, int index);

struct CompileOptions {
  Backend backend = Backend::Auto;
  /// Clause budget for ViaPSL materialization (see psl::encode); Auto never
  /// picks ViaPSL past it, forcing ViaPSL past it throws std::length_error.
  std::size_t max_clauses = 2000000;
  /// Materialize the ViaPSL encoding even when the chosen backend is Drct
  /// (the campaign's check_viapsl cross-check instantiates both sides).
  bool with_viapsl_artifact = false;
  /// Auto tie-break: the VM executes Drct's exact abstract op schedule, so
  /// the two tie under the Figure-6 cost model and ties historically went
  /// to Drct.  With prefer_vm set, Auto resolves that tie to Vm instead —
  /// the wall-clock winner (flat dispatch loop, lane-batchable frames) —
  /// while a ViaPSL cost win still takes precedence.  The campaign engine
  /// sets this on both its compiled and legacy translation paths, so the
  /// compiled ≡ per-unit invariant sees one resolution; standalone
  /// compile() keeps the historic Drct default.
  bool prefer_vm = false;
};

class CompiledProperty {
 public:
  /// Empty placeholder (so aggregates holding one are default-
  /// constructible); every accessor but requested()/chosen() throws or
  /// dereferences null until compile() assigns a real instance.
  CompiledProperty() = default;

  /// Translates once: plans the recognizer tables, snapshots the interned
  /// alphabet, estimates both backends' costs, resolves Auto, and
  /// materializes the ViaPSL clause set iff it will be instantiated.
  static CompiledProperty compile(const spec::Property& property,
                                  const spec::Alphabet& ab,
                                  const CompileOptions& options = {});

  const spec::Property& property() const { return *property_; }
  /// The backend the caller asked for (possibly Auto).
  Backend requested() const { return requested_; }
  /// The backend instantiate() uses (never Auto).
  Backend chosen() const { return chosen_; }

  /// Flattened recognizer construction tables (shared by all instances).
  const spec::OrderingPlan& plan() const { return *plan_; }
  /// The ViaPSL clause set; nullptr unless chosen()==ViaPSL or
  /// CompileOptions::with_viapsl_artifact was set.
  const psl::Encoding* encoding() const { return encoding_.get(); }

  /// The property's interned event names: ids (in the source alphabet's
  /// numbering) with an immutable text snapshot, usable without the — in
  /// campaigns lazily growing — spec::Alphabet.
  const spec::NameSet& alphabet() const { return alphabet_; }
  const std::string& text_of(spec::Name name) const;

  /// The compiled bytecode program; nullptr unless chosen()==Vm.
  const VmProgram* vm_program() const { return vm_program_.get(); }
  /// Owning form of the same artifact, for executors that outlive a plain
  /// borrow or batch many frames over one program (mon::VmLaneBatch takes
  /// shared ownership, exactly like a stamped VmMonitor does).
  std::shared_ptr<const VmProgram> vm_program_shared() const {
    return vm_program_;
  }

  /// Analytic per-event operation estimates that drive the Auto choice.
  std::uint64_t drct_ops_per_event() const { return drct_ops_; }
  /// The VM executes the Drct plan's exact abstract op schedule (that is
  /// its bit-identity contract), so its analytic per-event cost equals the
  /// Drct estimate — the Drct/Vm choice is a pure tie under the paper's
  /// Figure-6 operation count, broken by CompileOptions::prefer_vm
  /// (default off: ties go Drct, the historic behavior).
  std::uint64_t vm_ops_per_event() const { return drct_ops_; }
  const psl::PslCost& viapsl_cost() const { return viapsl_cost_; }
  /// False when the ViaPSL construction cannot be materialized (shape or
  /// clause budget); Auto then resolves to Drct unconditionally.
  bool viapsl_feasible() const { return viapsl_feasible_; }
  /// The clause budget this property was compiled under (callers that
  /// re-translate — the campaign's legacy differential path — must reuse
  /// it, not restate it).
  std::size_t max_clauses() const { return max_clauses_; }

  /// Stamps a fresh monitor of the chosen backend from the shared
  /// artifacts: no parsing, no planning, no clause translation.
  std::unique_ptr<Monitor> instantiate() const { return instantiate(chosen_); }
  /// Stamps a specific backend; the artifact must have been compiled
  /// (ViaPSL without an encoding throws std::logic_error), Auto is not an
  /// instantiable backend.
  std::unique_ptr<Monitor> instantiate(Backend backend) const;

 private:
  std::shared_ptr<const spec::Property> property_;
  std::shared_ptr<const spec::OrderingPlan> plan_;
  std::shared_ptr<const psl::Encoding> encoding_;
  std::shared_ptr<const VmProgram> vm_program_;
  spec::NameSet alphabet_;
  support::Interner names_;                 // dense snapshot of the texts
  std::vector<std::uint32_t> local_of_name_;  // alphabet id -> snapshot id
  Backend requested_ = Backend::Auto;
  Backend chosen_ = Backend::Drct;
  std::size_t max_clauses_ = 0;
  std::uint64_t drct_ops_ = 0;
  psl::PslCost viapsl_cost_;
  bool viapsl_feasible_ = false;
};

/// Cross-campaign cache of translate-once artifacts: long-lived embedders
/// that call abv::run_campaigns repeatedly over recurring properties hand
/// one of these in (CampaignOptions::plan_cache) and every campaign after
/// the first skips recompilation entirely.
///
/// Keyed by the *normalized property text* — the re-parseable
/// spec::to_string rendering — concatenated with the property's name→id
/// bindings and the compile options, so two alphabets interning the same
/// names under different ids never alias, and neither do two backends or
/// clause budgets of the same property (key_of() exposes the exact key).
///
/// Ownership: the cache owns its CompiledProperty entries; get_or_compile()
/// returns references that stay valid for the cache's lifetime (entries are
/// never removed).  Thread-safety: one mutex around the map — compilation
/// is rare by design (each distinct property compiles exactly once), so
/// contention is not a concern.  Determinism: a cache hit hands back the
/// identical immutable artifacts a fresh compile() would rebuild, so cached
/// campaigns stay byte-for-byte equal to uncached ones
/// (tests/campaign_scratch_diff_test.cpp).
class CompiledPropertyCache {
 public:
  struct Stats {
    std::uint64_t hits = 0;    // lookups that found an existing entry
    std::uint64_t misses = 0;  // lookups that compiled (== entries)
  };

  /// Returns the cached compilation of `property` under `options`,
  /// compiling it on first sight.  When `inserted` is non-null it is set
  /// to whether this call compiled (miss) or found an entry (hit).
  const CompiledProperty& get_or_compile(const spec::Property& property,
                                         const spec::Alphabet& ab,
                                         const CompileOptions& options = {},
                                         bool* inserted = nullptr);

  /// The normalized cache key (exposed so tests can pin the aliasing
  /// rules): property text + name→id bindings + compile options.
  static std::string key_of(const spec::Property& property,
                            const spec::Alphabet& ab,
                            const CompileOptions& options);

  Stats stats() const;
  std::size_t size() const;

 private:
  mutable std::mutex mutex_;
  std::unordered_map<std::string, CompiledProperty> entries_;
  Stats stats_;
};

}  // namespace loom::mon

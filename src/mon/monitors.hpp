// Aggregate header for the Drct monitors plus a factory from parsed
// properties.
#pragma once

#include <memory>

#include "mon/antecedent_monitor.hpp"
#include "mon/monitor_module.hpp"
#include "mon/timed_monitor.hpp"

namespace loom::mon {

/// Builds the Drct monitor matching the property kind.
inline std::unique_ptr<Monitor> make_monitor(const spec::Property& p) {
  if (p.is_antecedent()) {
    return std::make_unique<AntecedentMonitor>(p.antecedent());
  }
  return std::make_unique<TimedImplicationMonitor>(p.timed());
}

}  // namespace loom::mon

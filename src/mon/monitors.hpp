//! Aggregate header for the Drct monitors plus a factory from parsed
//! properties.
//!
//! make_monitor() re-runs the full attribute computation per call; hot
//! paths that build many instances of one property should compile once
//! with mon::CompiledProperty (compiled.hpp) and stamp instances from the
//! shared plan instead — same bytes out, none of the per-call translation.
//! Ownership: the caller owns the returned monitor.  Thread-safety: the
//! factory is pure; each monitor instance is single-thread.
#pragma once

#include <memory>

#include "mon/antecedent_monitor.hpp"
#include "mon/monitor_module.hpp"
#include "mon/timed_monitor.hpp"

namespace loom::mon {

/// Builds the Drct monitor matching the property kind.
inline std::unique_ptr<Monitor> make_monitor(const spec::Property& p) {
  if (p.is_antecedent()) {
    return std::make_unique<AntecedentMonitor>(p.antecedent());
  }
  return std::make_unique<TimedImplicationMonitor>(p.timed());
}

}  // namespace loom::mon

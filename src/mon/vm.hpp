//! The monitor VM: interprets a mon::VmProgram (bytecode.hpp) over monitor
//! state held in a flat struct-of-arrays frame.
//!
//! Two execution shapes share one interpreter core:
//!   - VmMonitor: the mon::Monitor implementation behind Backend::Vm — one
//!     frame, the drop-in peer of the Drct/ViaPSL monitors in campaigns,
//!     CLIs and diff grids;
//!   - VmLaneBatch: L frames over one shared program laid out lane-major in
//!     contiguous arrays, advanced block-lockstep — the shape a campaign
//!     shard wants for many mutants of the same (seed × property): the
//!     program's route tables stay hot while the per-lane state streams.
//!
//! Bit-identity contract (tests/mon_bytecode_test.cpp): a VmMonitor is
//! indistinguishable from the Drct monitor of the same property — verdicts,
//! violation reports (including the formatted runtime values in the reason
//! strings), the Figure-6 op/event/max-ops accounting and the space bits
//! all match exactly, event for event.  That is what admits Backend::Vm
//! into every byte-for-byte invariant grid unchanged.
//!
//! Ownership: frames own their state; the program is shared immutable.
//! Thread-safety: one VmMonitor / VmLaneBatch belongs to one thread at a
//! time; a VmProgram may be shared across threads freely.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "mon/bytecode.hpp"
#include "mon/stats.hpp"
#include "mon/verdict.hpp"

namespace loom::mon {

/// Pointer bundle over one monitor's mutable state, however it is stored
/// (a VmMonitor's own frame or one lane of a VmLaneBatch).  The interpreter
/// only ever touches state through this view, so both shapes execute the
/// same code paths — divergence between them is structurally impossible.
struct VmFrameRef {
  std::uint8_t* range_state;    // [range_total] RangeState values
  std::uint32_t* range_cpt;     // [range_total] occurrence counters
  std::string* range_reason;    // [range_total] sticky error reasons
  std::uint8_t* frag_min_complete;  // [frag_count]
  std::uint8_t* frag_in_progress;   // [frag_count]
  sim::Time* frag_min_time;         // [frag_count]
  std::uint32_t* active;
  Verdict* verdict;
  std::optional<Violation>* violation;
  MonitorStats* stats;
  std::uint8_t* armed;   // timed: P min-complete, obligation running
  std::uint8_t* q_done;  // timed: Q min-complete within this round
  sim::Time* t_start;
  sim::Time* t_stop;
  std::uint64_t* validated_or_rounds;  // validated triggers / P=>Q rounds
  std::uint64_t* ordinal;              // next event ordinal
};

/// Interpreter entry points (shared by VmMonitor and VmLaneBatch; see
/// vm.cpp for the dispatch loop).  Each mirrors the corresponding Drct
/// monitor entry point bit for bit.  The frame is taken by reference — the
/// callers below keep a prebuilt VmFrameRef per frame, so stepping an event
/// never re-materializes the 16-pointer bundle.
void vm_init(const VmProgram& p, const VmFrameRef& f);
void vm_reset(const VmProgram& p, const VmFrameRef& f);
void vm_step_event(const VmProgram& p, const VmFrameRef& f, spec::Name name,
                   sim::Time time);
/// Steps a whole event slice through one frame: identical state, verdict
/// and Figure-6 accounting to calling vm_step_event per event, but the
/// program pointer stays hoisted and the stats flush once per slice — the
/// campaign's batched mutant replay lands here.
void vm_run_batch(const VmProgram& p, const VmFrameRef& f,
                  const spec::TimedEvent* begin, const spec::TimedEvent* end);
void vm_finish(const VmProgram& p, const VmFrameRef& f, sim::Time end_time);
void vm_poll(const VmProgram& p, const VmFrameRef& f, sim::Time now);
/// Serializes / restores one frame's complete mutable state through
/// mon::Snapshot — the same format (tag word, shape guard, field order)
/// whether the frame is a VmMonitor's own or one lane of a VmLaneBatch,
/// which is what lets a campaign restore a checkpoint-ladder rung (written
/// by a pooled VmMonitor) straight into a batch lane.  `who` names the
/// caller in the foreign-format / shape-mismatch diagnostics.
void vm_snapshot(const VmProgram& p, const VmFrameRef& f, Snapshot& out);
void vm_restore(const VmProgram& p, const VmFrameRef& f, const Snapshot& in,
                const char* who);

/// The Monitor implementation behind Backend::Vm.
class VmMonitor final : public Monitor {
 public:
  explicit VmMonitor(std::shared_ptr<const VmProgram> program);
  // The cached frame_ points into the state vectors: copying or moving a
  // VmMonitor would leave it dangling, and nothing needs either (instances
  // live behind unique_ptr or as locals).
  VmMonitor(const VmMonitor&) = delete;
  VmMonitor& operator=(const VmMonitor&) = delete;

  void observe(spec::Name name, sim::Time time) override {
    vm_step_event(*program_, frame_, name, time);
  }
  using Monitor::observe_batch;
  void observe_batch(const spec::TimedEvent* begin,
                     const spec::TimedEvent* end) override {
    vm_run_batch(*program_, frame_, begin, end);
  }
  void finish(sim::Time end_time) override {
    vm_finish(*program_, frame_, end_time);
  }
  void poll(sim::Time now) override { vm_poll(*program_, frame_, now); }
  std::optional<sim::Time> deadline() const override;

  Verdict verdict() const override { return verdict_; }
  const std::optional<Violation>& violation() const override {
    return violation_;
  }
  MonitorStats& stats() override { return stats_; }
  std::size_t space_bits() const override { return program_->space_bits; }
  void reset() override { vm_reset(*program_, frame_); }
  void snapshot(Snapshot& out) const override;
  void restore(const Snapshot& in) override;

  const VmProgram& program() const { return *program_; }
  /// Validated triggers (antecedent) / completed P=>Q rounds (timed).
  std::uint64_t validated_or_rounds() const { return validated_or_rounds_; }

 private:
  VmFrameRef make_ref();

  std::shared_ptr<const VmProgram> program_;
  std::vector<std::uint8_t> range_state_;
  std::vector<std::uint32_t> range_cpt_;
  std::vector<std::string> range_reason_;
  std::vector<std::uint8_t> frag_min_complete_;
  std::vector<std::uint8_t> frag_in_progress_;
  std::vector<sim::Time> frag_min_time_;
  std::uint32_t active_ = 0;
  Verdict verdict_ = Verdict::Monitoring;
  std::optional<Violation> violation_;
  MonitorStats stats_;
  std::uint8_t armed_ = 0;
  std::uint8_t q_done_ = 0;
  sim::Time t_start_;
  sim::Time t_stop_;
  std::uint64_t validated_or_rounds_ = 0;
  std::uint64_t ordinal_ = 0;
  VmFrameRef frame_;  // prebuilt view over the members above (stable)
};

/// L monitor frames over one shared program, laid out lane-major in flat
/// arrays (lane l's ranges live at [l * range_total, (l+1) * range_total)).
/// Each lane is semantically an independent VmMonitor — same verdicts, same
/// stats (tests/mon_bytecode_test.cpp locks the equivalence) — but the
/// frames are contiguous and the program tables are shared, so advancing
/// many mutants of one (seed × property) in block-lockstep keeps both in
/// cache.
class VmLaneBatch {
 public:
  VmLaneBatch(std::shared_ptr<const VmProgram> program, std::size_t lanes);
  // frames_ points into the lane-major state arrays (see VmMonitor).
  VmLaneBatch(const VmLaneBatch&) = delete;
  VmLaneBatch& operator=(const VmLaneBatch&) = delete;

  std::size_t lanes() const { return lanes_; }
  const VmProgram& program() const { return *program_; }

  void observe(std::size_t lane, spec::Name name, sim::Time time) {
    vm_step_event(*program_, frames_[lane], name, time);
  }
  void observe_batch(std::size_t lane, const spec::TimedEvent* begin,
                     const spec::TimedEvent* end) {
    vm_run_batch(*program_, frames_[lane], begin, end);
  }
  /// Block-lockstep over per-lane traces (the mutant-replay shape): lanes
  /// advance together in fixed event-index windows, each lane's sub-slice
  /// running through vm_run_batch's hoisted inner loop — lanes whose trace
  /// is exhausted simply sit out the tail.  Equivalent, bit for bit, to
  /// running each lane's trace through its own monitor.
  void run(const std::vector<const spec::Trace*>& traces);
  /// Suffix-replay lockstep: lane l steps only events
  /// [starts[l], traces[l]->size()) of its trace — the checkpointed-mutant
  /// shape, where each lane was restored from its floor rung and owes only
  /// its own suffix.  Lockstep is by suffix position (relative index), so
  /// uneven starts and uneven lengths both just sit out the tail; with all
  /// starts zero and every lane used this is exactly run(traces).  A
  /// partial wave (traces.size() < lanes()) steps only the listed lanes
  /// and leaves the rest untouched.
  void run(const std::vector<const spec::Trace*>& traces,
           const std::vector<std::size_t>& starts);
  void finish(std::size_t lane, sim::Time end_time) {
    vm_finish(*program_, frames_[lane], end_time);
  }
  void poll(std::size_t lane, sim::Time now) {
    vm_poll(*program_, frames_[lane], now);
  }
  void reset(std::size_t lane) { vm_reset(*program_, frames_[lane]); }
  /// Lane-addressed snapshot/restore, format-identical to VmMonitor's:
  /// restoring a VmMonitor-written snapshot (e.g. a checkpoint-ladder rung)
  /// into lane l reproduces that monitor's state bit for bit, other lanes
  /// untouched.
  void snapshot(std::size_t lane, Snapshot& out) const {
    vm_snapshot(*program_, frames_[lane], out);
  }
  void restore(std::size_t lane, const Snapshot& in) {
    vm_restore(*program_, frames_[lane], in, "VmLaneBatch::restore");
  }

  Verdict verdict(std::size_t lane) const { return verdict_[lane]; }
  const std::optional<Violation>& violation(std::size_t lane) const {
    return violation_[lane];
  }
  MonitorStats& stats(std::size_t lane) { return stats_[lane]; }
  std::size_t space_bits() const { return program_->space_bits; }

 private:
  VmFrameRef make_ref(std::size_t lane);

  std::shared_ptr<const VmProgram> program_;
  std::size_t lanes_ = 0;
  // Per-lane row strides, rounded up from range_total / frag_count so every
  // lane's row starts on a cache-line boundary in the flat arrays below —
  // lockstep stepping never has two lanes' hot words sharing a line.  The
  // interpreter only ever touches [0, range_total) / [0, frag_count) of a
  // row through the VmFrameRef, so the padding slack is dead space, not
  // state.
  std::size_t range_stride_ = 0;
  std::size_t frag_stride_ = 0;
  std::vector<std::uint8_t> range_state_;
  std::vector<std::uint32_t> range_cpt_;
  std::vector<std::string> range_reason_;
  std::vector<std::uint8_t> frag_min_complete_;
  std::vector<std::uint8_t> frag_in_progress_;
  std::vector<sim::Time> frag_min_time_;
  std::vector<std::uint32_t> active_;
  std::vector<Verdict> verdict_;
  std::vector<std::optional<Violation>> violation_;
  std::vector<MonitorStats> stats_;
  std::vector<std::uint8_t> armed_;
  std::vector<std::uint8_t> q_done_;
  std::vector<sim::Time> t_start_;
  std::vector<sim::Time> t_stop_;
  std::vector<std::uint64_t> validated_or_rounds_;
  std::vector<std::uint64_t> ordinal_;
  std::vector<VmFrameRef> frames_;  // prebuilt per-lane views (stable)
};

}  // namespace loom::mon

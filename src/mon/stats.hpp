//! Operation and state accounting for monitors.
//!
//! The paper's Figure 6 compares monitors by
//!   time  = number of operations executed per observed event,
//!   space = number of bits of Boolean and bounded-Integer state.
//! Every monitor (Drct and ViaPSL) threads a MonitorStats through its step
//! functions; each membership test, comparison, assignment and counter
//! update adds one operation.  Space is computed statically from the plan
//! (see space_bits() on each recognizer).
//!
//! Ownership/thread-safety: a MonitorStats lives inside one monitor on one
//! thread; cross-monitor and cross-shard aggregation go through merge().
//! Determinism: merge() is commutative and associative (sums + max), so
//! any merge order yields the same aggregate — the campaign's shard
//! reduction depends on it.
#pragma once

#include <cstddef>
#include <cstdint>

namespace loom::mon {

class Snapshot;        // mon/snapshot.hpp
class SnapshotReader;  // mon/snapshot.hpp

/// Bits needed to store values in [0, max_value]:  ceil(log2(max_value+1)).
std::size_t bits_for_value(std::uint64_t max_value);

struct MonitorStats {
  std::uint64_t ops = 0;            // total primitive operations
  std::uint64_t events = 0;         // observed events (after retirement too)
  std::uint64_t max_ops_per_event = 0;

  void add(std::uint64_t n = 1) { ops += n; }

  /// Call at the start of an observe(); returns a token for note_event_end.
  std::uint64_t begin_event() {
    ++events;
    return ops;
  }
  void end_event(std::uint64_t ops_before) {
    const std::uint64_t spent = ops - ops_before;
    if (spent > max_ops_per_event) max_ops_per_event = spent;
  }

  double ops_per_event() const {
    return events == 0 ? 0.0 : static_cast<double>(ops) / static_cast<double>(events);
  }

  void reset() { *this = MonitorStats{}; }

  /// Checkpoint support: the three counters are part of every monitor's
  /// snapshot, so a restored monitor accounts exactly like one that
  /// observed the whole prefix itself (mon/snapshot.hpp).
  void snapshot(Snapshot& out) const;
  void restore(SnapshotReader& in);

  /// Order-independent aggregation across monitors / campaign shards: ops
  /// and events add, the per-event worst case is the max of the two.
  void merge(const MonitorStats& other);
};

}  // namespace loom::mon

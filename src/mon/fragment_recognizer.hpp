// Recognizer for a fragment F = ({R1..Rn}, #): the synchronous parallel
// composition of the range recognizers of the Ri (paper §6).
//
// Every event routed to the fragment is offered to all child recognizers
// simultaneously; this is what bounds Drct per-event work by |α(F)| for the
// active fragment.  The fragment terminates with Ok when a stopping name
// (Ac) arrives and every child terminated (Ok, or Nok under ∨ with at least
// one Ok); any child Err aborts the whole property monitor.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "mon/range_recognizer.hpp"
#include "sim/time.hpp"

namespace loom::mon {

class FragmentRecognizer {
 public:
  FragmentRecognizer(const spec::FragmentPlan& plan, MonitorStats& stats);

  void start();
  void reset();

  /// Checkpoint support: own flags/timestamp plus every child, in index
  /// order (mon/snapshot.hpp).
  void snapshot(Snapshot& out) const;
  void restore(SnapshotReader& in);

  enum class Out : std::uint8_t { None, Ok, Err };

  Out step(spec::Name name, sim::Time time);

  /// True once the fragment could be considered complete (every range at
  /// its lower bound under ∧, some range at its lower bound under ∨).
  bool min_complete() const { return min_complete_; }
  sim::Time min_complete_time() const { return min_complete_time_; }

  /// True when any child consumed one of its names in this round.
  bool in_progress() const { return in_progress_; }

  const std::string& error_reason() const { return error_reason_; }
  const spec::FragmentPlan& plan() const { return *plan_; }
  const RangeRecognizer& child(std::size_t i) const { return children_[i]; }
  std::size_t child_count() const { return children_.size(); }

  /// Children bits + min-complete flag + in-progress flag + 64-bit
  /// timestamp of the min-complete instant (used by timed monitors).
  std::size_t space_bits() const;

 private:
  bool compute_min_complete() const;

  const spec::FragmentPlan* plan_;
  MonitorStats* stats_;
  std::vector<RangeRecognizer> children_;
  bool min_complete_ = false;
  bool in_progress_ = false;
  sim::Time min_complete_time_;
  std::string error_reason_;
};

}  // namespace loom::mon

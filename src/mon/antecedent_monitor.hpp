// Drct monitor for an antecedent requirement A = (P << i, b).
//
// The trigger i may occur only once P has been recognized; with b=true
// (repeated) each i is a reset point and needs its own P, with b=false a
// single recognition of P validates all later occurrences of i and the
// monitor retires with verdict Holds at the first validated i.
#pragma once

#include <memory>
#include <optional>

#include "mon/ordering_recognizer.hpp"
#include "mon/verdict.hpp"

namespace loom::mon {

class AntecedentMonitor final : public Monitor {
 public:
  explicit AntecedentMonitor(spec::Antecedent property);
  /// Instantiation from a precomputed plan (mon::CompiledProperty): the
  /// plan must describe `property`; no attribute computation runs here.
  AntecedentMonitor(spec::Antecedent property,
                    std::shared_ptr<const spec::OrderingPlan> plan);

  void observe(spec::Name name, sim::Time time) override;
  using Monitor::observe_batch;
  void observe_batch(const spec::TimedEvent* begin,
                     const spec::TimedEvent* end) override {
    for (const auto* ev = begin; ev != end; ++ev) {
      observe(ev->name, ev->time);  // devirtualized
    }
  }
  void finish(sim::Time end_time) override;

  Verdict verdict() const override { return verdict_; }
  const std::optional<Violation>& violation() const override {
    return violation_;
  }
  MonitorStats& stats() override { return stats_; }
  std::size_t space_bits() const override;
  void reset() override;
  void snapshot(Snapshot& out) const override;
  void restore(const Snapshot& in) override;

  /// Number of trigger occurrences that were validated.
  std::uint64_t validated_triggers() const { return validated_; }

  const spec::Antecedent& property() const { return property_; }
  const spec::OrderingPlan& plan() const { return *plan_; }
  const OrderingRecognizer& recognizer() const { return recognizer_; }

 private:
  spec::Antecedent property_;
  std::shared_ptr<const spec::OrderingPlan> plan_;
  MonitorStats stats_;
  OrderingRecognizer recognizer_;
  Verdict verdict_ = Verdict::Monitoring;
  std::optional<Violation> violation_;
  std::uint64_t validated_ = 0;
  std::size_t ordinal_ = 0;
};

}  // namespace loom::mon

//! Bytecode compilation of property plans: backend #3 (Backend::Vm).
//!
//! compile_vm() lowers one property's spec::OrderingPlan — the same
//! translate-once tables the Drct monitors walk through virtual recognizer
//! objects — into a flat VmProgram a single dispatch loop executes
//! (mon/vm.hpp).  The lowering follows the classic chunk / constant-pool /
//! dispatch-loop architecture of register VMs:
//!
//!   - an *instruction stream* (8-byte Insn records) encoding the per-event
//!     control flow: retirement check, alphabet filter, deadline guard,
//!     active-fragment dispatch, fragment stepping, chain advance, verdict
//!     latches;
//!   - an *interned constant pool* of range bounds: every distinct
//!     (lo, hi, parent-join) triple is stored once and ranges reference it
//!     by pool index;
//!   - *route tables* resolving, per (event name, range), the Fig. 5 input
//!     class (n / C / Ac / other) with one byte load — replacing the
//!     per-event lazy bitset membership tests of the object recognizers —
//!     plus per-(name, fragment) accept/alphabet flag bytes and a flat
//!     filter byte per name.
//!
//! Determinism: compile_vm() is a pure function of (property, plan); two
//! compilations of the same property yield byte-identical programs, which
//! is what keeps the campaign engine's legacy per-unit path bit-identical
//! to the compiled path under Backend::Vm (compiled_plan_diff_test).  The
//! executed program reproduces the Drct monitors' verdicts, violation
//! reports *and* Figure-6 operation accounting exactly — the abstract op
//! schedule is compiled into the transition tables — so the VM slots into
//! every byte-for-byte invariant grid without a carve-out
//! (tests/mon_bytecode_test.cpp locks VM ≡ Drct event-for-event).
//!
//! Ownership: a VmProgram is immutable after compile_vm() and shared
//! behind shared_ptr by every monitor instance and lane batch it stamps;
//! sharing one program across threads is safe.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "sim/time.hpp"
#include "spec/ast.hpp"
#include "spec/attributes.hpp"

namespace loom::mon {

/// Opcodes of the monitor VM.  One event executes the stream from pc 0
/// until a halting instruction; jumps are absolute instruction indices.
enum class Op : std::uint8_t {
  RetireIfDone,  // a: verdict bit mask; halt when the monitor retired
  Filter,        // charge 1; halt when the name is outside the alphabet
  DeadlineGuard,  // timed: charge 1; latch the overdue violation and halt
  Dispatch,       // charge 1; pc <- frag_entry[active]
  StepFragment,   // a: fragment; jump b on Ok, c on None, d on Err
  Advance,        // a: next fragment; charge 1, start it, re-step; jump b
  CompleteAntecedent,  // ++validated; repeated: restart, else Holds; halt
  CompleteTimed,  // ++rounds, restart, re-step, retime, Pending; halt
  UpdateTiming,   // timed arming / q-done / deadline bookkeeping
  NoteProgress,   // verdict <- in-progress ? Pending : Monitoring
  LatchViolation,  // verdict <- Violated with the erring range's reason
  Halt,
};

const char* to_string(Op op);

/// One 8-byte instruction: opcode, a small operand and three jump/operand
/// slots (absolute pc values fit u16 — programs are a few dozen insns).
struct Insn {
  Op op = Op::Halt;
  std::uint8_t a = 0;
  std::uint16_t b = 0;
  std::uint16_t c = 0;
  std::uint16_t d = 0;
};

/// Interned range constants (the VM's constant pool): every distinct
/// (lo, hi, parent-join) triple appears once.
struct RangeConst {
  std::uint32_t lo = 1;
  std::uint32_t hi = 1;
  bool disj_parent = false;  // the s attribute: parent join is ∨

  bool operator==(const RangeConst&) const = default;
};

/// The Fig. 5 input classes a route-table byte resolves per (name, range),
/// in the Drct recognizers' test order (n before C before Ac).
enum NameClass : std::uint8_t {
  kClassN = 0,      // the range's own name
  kClassC = 1,      // sibling range names (C)
  kClassAc = 2,     // the fragment's stopping set (Ac)
  kClassOther = 3,  // B / Af: forbidden here
};

/// Per-(name, fragment) flag bits.
enum FragFlag : std::uint8_t {
  kFlagAccept = 1,    // name ∈ Ac of the fragment
  kFlagAlphabet = 2,  // name ∈ α(fragment)
};

/// A compiled monitor program: immutable, shared by all of its instances.
struct VmProgram {
  // --- header ------------------------------------------------------------
  bool timed = false;     // timed implication vs antecedent requirement
  bool repeated = false;  // antecedent: every trigger needs its own P
  sim::Time bound;        // timed: the deadline t
  std::uint32_t p_last = 0;  // timed: index of P's final fragment
  std::uint32_t q_last = 0;  // timed: index of Q's final fragment
  std::uint32_t frag_count = 0;
  std::uint32_t range_total = 0;  // ranges across all fragments
  std::size_t space_bits = 0;     // the paper's space accounting

  // --- per-fragment tables ----------------------------------------------
  std::vector<std::uint32_t> frag_first;   // first flat range index
  std::vector<std::uint32_t> frag_ranges;  // range count
  std::vector<std::uint8_t> frag_conj;     // join is ∧
  std::vector<std::uint8_t> frag_track_min_time;

  // --- per-range tables + interned constant pool -------------------------
  std::vector<spec::Name> range_name;         // the range's own n
  std::vector<std::uint16_t> range_const;     // index into `pool`
  std::vector<RangeConst> pool;

  // --- route tables (indexed by event name id) ---------------------------
  std::uint32_t table_names = 0;        // name ids covered by the tables
  std::vector<std::uint8_t> filter;     // [table_names]: in plan alphabet
  std::vector<std::uint8_t> route;      // [name * range_total + range]
  std::vector<std::uint8_t> frag_flags;  // [name * frag_count + fragment]

  // --- code ---------------------------------------------------------------
  std::vector<Insn> code;
  std::vector<std::uint16_t> frag_entry;  // pc of each StepFragment

  /// The plan the program was lowered from (kept alive for introspection
  /// and the space/estimate accessors; the interpreter reads tables only).
  std::shared_ptr<const spec::OrderingPlan> plan;

  const RangeConst& consts_of(std::uint32_t range) const {
    return pool[range_const[range]];
  }
};

/// Lowers a property into a VmProgram.  `plan` may be the property's
/// shared translate-once tables (mon::CompiledProperty); when null the
/// plan is computed here (the campaign's legacy per-unit path) — either
/// way the program bytes are identical, compile_vm is a pure function.
std::shared_ptr<const VmProgram> compile_vm(
    const spec::Property& property,
    std::shared_ptr<const spec::OrderingPlan> plan = nullptr);

/// Stable, human-readable program listing: header, constant pool, range
/// table and instruction stream (the golden-disassembly surface of
/// tests/mon_bytecode_test.cpp — route tables are summarized, not dumped).
std::string disassemble(const VmProgram& program);

}  // namespace loom::mon

#include "mon/ordering_recognizer.hpp"

#include "mon/snapshot.hpp"

namespace loom::mon {

void OrderingRecognizer::snapshot(Snapshot& out) const {
  out.put_u64(active_);
  out.put_string(error_reason_);
  for (const auto& f : fragments_) f.snapshot(out);
}

void OrderingRecognizer::restore(SnapshotReader& in) {
  active_ = static_cast<std::size_t>(in.u64());
  in.string_into(error_reason_);
  for (auto& f : fragments_) f.restore(in);
}

OrderingRecognizer::OrderingRecognizer(const spec::OrderingPlan& plan,
                                       MonitorStats& stats)
    : plan_(&plan), stats_(&stats) {
  fragments_.reserve(plan.fragments.size());
  for (const auto& fp : plan.fragments) fragments_.emplace_back(fp, stats);
}

void OrderingRecognizer::activate() {
  active_ = 0;
  fragments_.front().start();
}

void OrderingRecognizer::restart() {
  for (auto& f : fragments_) f.reset();
  error_reason_.clear();
  activate();
}

OrderingRecognizer::Out OrderingRecognizer::step(spec::Name name,
                                                 sim::Time time) {
  stats_->add();  // active-fragment dispatch
  switch (fragments_[active_].step(name, time)) {
    case FragmentRecognizer::Out::None:
      return Out::None;
    case FragmentRecognizer::Out::Err:
      error_reason_ = fragments_[active_].error_reason();
      return Out::Err;
    case FragmentRecognizer::Out::Ok:
      break;
  }
  if (active_ + 1 == fragments_.size()) return Out::Completed;
  ++active_;
  stats_->add();
  fragments_[active_].start();
  // The stopping name of the previous fragment is the first event of the
  // new one; by construction it lies in the new fragment's alphabet, so
  // this nested step can neither complete nor fail.
  (void)fragments_[active_].step(name, time);
  return Out::None;
}

bool OrderingRecognizer::in_progress() const {
  if (active_ > 0) return true;
  return fragments_.front().in_progress();
}

std::size_t OrderingRecognizer::space_bits() const {
  std::size_t bits = bits_for_value(fragments_.size());
  for (const auto& f : fragments_) bits += f.space_bits();
  return bits;
}

}  // namespace loom::mon

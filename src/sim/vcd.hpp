// Value-change-dump (VCD) writer: waveform output for kernel signals and
// interface-event strobes, viewable in GTKWave & co.
//
// Usage:
//   std::ofstream out("run.vcd");
//   VcdWriter vcd(out, scheduler);
//   auto v = vcd.add_wire("top.ipu.status", 2);
//   vcd.add_signal("top.lock.open", lock_open_signal);   // auto-tracked
//   auto e = vcd.add_event("top.ipu.read_img");
//   ...
//   vcd.change(v, 1);  vcd.strobe(e);   // stamped with scheduler.now()
//
// Timestamps must be monotone (they are, when driven from one kernel).
// The header is emitted lazily before the first change, so variables can
// be registered during elaboration in any order.
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "sim/scheduler.hpp"
#include "sim/signal.hpp"

namespace loom::sim {

class VcdWriter {
 public:
  /// Identifies a registered variable.
  struct Var {
    std::size_t index = static_cast<std::size_t>(-1);
  };

  VcdWriter(std::ostream& out, Scheduler& scheduler);
  ~VcdWriter();

  VcdWriter(const VcdWriter&) = delete;
  VcdWriter& operator=(const VcdWriter&) = delete;

  /// Registers a multi-bit wire; `name` is a dot-separated hierarchy path.
  Var add_wire(const std::string& name, unsigned width);
  /// Registers a 1-bit VCD event variable (pulse per strobe()).
  Var add_event(const std::string& name);

  /// Registers a wire bound to a Signal<T>: changes are dumped
  /// automatically (T must convert to std::uint64_t).
  template <typename T>
  Var add_signal(const std::string& name, Signal<T>& signal,
                 unsigned width = 8 * sizeof(T)) {
    const Var var = add_wire(name, width);
    change(var, static_cast<std::uint64_t>(signal.read()));
    signal.changed().on_trigger([this, var, &signal] {
      change(var, static_cast<std::uint64_t>(signal.read()));
    });
    return var;
  }

  /// Records a value change at the current simulation time.
  void change(Var var, std::uint64_t value);
  /// Records an event pulse at the current simulation time.
  void strobe(Var var);

  /// Flushes the header (if still pending) and the stream.
  void finish();

  std::size_t variable_count() const { return vars_.size(); }

 private:
  struct VarInfo {
    std::string name;
    std::string id;        // short VCD identifier
    unsigned width = 1;
    bool is_event = false;
    std::uint64_t last_value = 0;
    bool has_value = false;
  };

  static std::string make_id(std::size_t index);
  void emit_header();
  void advance_time();

  std::ostream& out_;
  Scheduler& sched_;
  std::vector<VarInfo> vars_;
  bool header_done_ = false;
  bool time_started_ = false;
  std::uint64_t current_ps_ = 0;
};

}  // namespace loom::sim

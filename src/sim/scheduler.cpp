#include "sim/scheduler.hpp"

#include <utility>

#include "sim/event.hpp"

namespace loom::sim {

Scheduler::~Scheduler() {
  for (auto& rec : processes_) {
    if (rec.handle) rec.handle.destroy();
  }
}

void Scheduler::spawn(Process process, std::string name) {
  Process::Handle h = process.release();
  if (!h) return;
  h.promise().scheduler = this;
  processes_.push_back({h, std::move(name)});
  next_runnable_.emplace_back(std::coroutine_handle<>(h));
}

void Scheduler::schedule_at(Time t, std::coroutine_handle<> h) {
  TimedEntry entry;
  entry.time = t;
  entry.seq = seq_++;
  entry.handle = h;
  timed_.push(std::move(entry));
}

void Scheduler::schedule_at(Time t, std::function<void()> fn,
                            CancelToken token) {
  TimedEntry entry;
  entry.time = t;
  entry.seq = seq_++;
  entry.callback = std::move(fn);
  entry.cancel_token = std::move(token);
  timed_.push(std::move(entry));
}

void Scheduler::schedule_delta(std::coroutine_handle<> h) {
  next_runnable_.emplace_back(h);
}

void Scheduler::schedule_delta(std::function<void()> fn) {
  next_runnable_.emplace_back(std::move(fn));
}

void Scheduler::notify_at(Time t, Event& event) {
  TimedEntry entry;
  entry.time = t;
  entry.seq = seq_++;
  entry.event = &event;
  entry.event_generation = event.timed_generation_;
  timed_.push(std::move(entry));
}

void Scheduler::notify_delta(Event& event) { delta_events_.push_back(&event); }

void Scheduler::request_update(Updatable& channel) {
  update_queue_.push_back(&channel);
}

bool Scheduler::idle() const {
  return next_runnable_.empty() && delta_events_.empty() && timed_.empty();
}

void Scheduler::run_runnable(Runnable& r) {
  if (auto* h = std::get_if<std::coroutine_handle<>>(&r)) {
    if (*h && !h->done()) h->resume();
  } else {
    std::get<std::function<void()>>(r)();
  }
}

void Scheduler::evaluation_phase() {
  for (auto& r : runnable_) {
    if (stop_requested_) break;
    run_runnable(r);
  }
  runnable_.clear();
}

void Scheduler::update_phase() {
  // Updates may request further updates (rare); process in waves.
  std::vector<Updatable*> queue;
  std::swap(queue, update_queue_);
  for (Updatable* u : queue) u->update();
}

void Scheduler::delta_notification_phase() {
  std::vector<Event*> events;
  std::swap(events, delta_events_);
  for (Event* e : events) {
    if (e->delta_pending_) e->trigger();
  }
}

bool Scheduler::advance_time(Time limit) {
  // Drop stale timed notifications (cancelled or superseded).
  while (!timed_.empty()) {
    const TimedEntry& top = timed_.top();
    if (top.event != nullptr &&
        (top.event_generation != top.event->timed_generation_ ||
         !top.event->timed_pending_)) {
      timed_.pop();
      continue;
    }
    if (top.cancel_token != nullptr && *top.cancel_token) {
      timed_.pop();
      continue;
    }
    break;
  }
  if (timed_.empty()) return false;
  const Time t = timed_.top().time;
  if (t > limit) {
    if (limit != Time::max()) now_ = limit;
    return false;
  }
  now_ = t;
  while (!timed_.empty() && timed_.top().time == t) {
    TimedEntry entry = timed_.top();
    timed_.pop();
    if (entry.event != nullptr) {
      if (entry.event_generation == entry.event->timed_generation_ &&
          entry.event->timed_pending_) {
        entry.event->trigger();
      }
    } else if (entry.handle) {
      next_runnable_.emplace_back(entry.handle);
    } else if (entry.callback) {
      if (entry.cancel_token == nullptr || !*entry.cancel_token) {
        next_runnable_.emplace_back(std::move(entry.callback));
      }
    }
  }
  return true;
}

Time Scheduler::run(Time limit) {
  stop_requested_ = false;
  while (!stop_requested_) {
    if (next_runnable_.empty() && delta_events_.empty()) {
      if (!advance_time(limit)) break;
      continue;  // triggers may or may not have produced runnables
    }
    std::swap(runnable_, next_runnable_);
    evaluation_phase();
    update_phase();
    delta_notification_phase();
    ++delta_count_;
    if (pending_exception_) {
      auto e = std::exchange(pending_exception_, nullptr);
      std::rethrow_exception(e);
    }
  }
  return now_;
}

void EventAwaiter::await_suspend(std::coroutine_handle<> h) {
  event.waiters_.push_back(h);
}

void EventTimeoutAwaiter::await_suspend(std::coroutine_handle<> h) {
  auto st = state;
  Scheduler* s = &sched;
  auto cancel = std::make_shared<bool>(false);
  event.on_next_trigger([st, s, h, cancel] {
    if (st->settled) return;
    st->settled = true;
    st->event_fired = true;
    *cancel = true;  // drop the pending timeout entry
    s->schedule_delta(h);
  });
  sched.schedule_at(
      sched.now() + timeout,
      [st, s, h] {
        if (st->settled) return;
        st->settled = true;
        s->schedule_delta(h);
      },
      cancel);
}

}  // namespace loom::sim

// Signal<T>: a primitive channel with SystemC update semantics.
//
// Writes are buffered during the evaluation phase and become visible in the
// update phase; value changes notify a delta event.  This gives the usual
// deterministic "all readers in a delta see the old value" behaviour.
#pragma once

#include <string>
#include <utility>

#include "sim/event.hpp"
#include "sim/scheduler.hpp"

namespace loom::sim {

template <typename T>
class Signal final : public Updatable {
 public:
  Signal(Scheduler& scheduler, std::string name, T initial = T{})
      : sched_(scheduler),
        changed_(scheduler, name + ".changed"),
        name_(std::move(name)),
        current_(initial),
        next_(std::move(initial)) {}

  const std::string& name() const { return name_; }

  const T& read() const { return current_; }

  void write(T value) {
    next_ = std::move(value);
    if (!update_requested_) {
      update_requested_ = true;
      sched_.request_update(*this);
    }
  }

  /// Triggered one delta after any write that changed the value.
  Event& changed() { return changed_; }

  void update() override {
    update_requested_ = false;
    if (!(next_ == current_)) {
      current_ = next_;
      changed_.notify();
    }
  }

 private:
  Scheduler& sched_;
  Event changed_;
  std::string name_;
  T current_;
  T next_;
  bool update_requested_ = false;
};

}  // namespace loom::sim

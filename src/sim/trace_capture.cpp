#include "sim/trace_capture.hpp"

#include "support/diagnostics.hpp"

namespace loom::sim {

void TraceCapture::capture(Id id) {
  LOOM_DASSERT(scheduler_ != nullptr);
  capture(id, scheduler_->now());
}

void TraceCapture::capture(Id id, Time time) {
  ++count_;
  if (buffering_) events_.push_back({id, time});
  for (const auto& sink : sinks_) sink(id, time);
}

}  // namespace loom::sim

// Module hierarchy, modeled on sc_module.
//
// A Module owns simulation processes and lives in a named hierarchy used
// for diagnostics ("top.ipu.engine").  Modules must outlive the scheduler
// run; they are typically stack- or platform-owned.
#pragma once

#include <string>
#include <vector>

#include "sim/process.hpp"
#include "sim/scheduler.hpp"

namespace loom::sim {

class Module {
 public:
  Module(Scheduler& scheduler, std::string name, Module* parent = nullptr);
  virtual ~Module() = default;

  Module(const Module&) = delete;
  Module& operator=(const Module&) = delete;

  const std::string& name() const { return name_; }
  /// Dot-separated hierarchical name from the root, e.g. "top.ipu".
  std::string full_name() const;

  Scheduler& scheduler() const { return sched_; }
  Module* parent() const { return parent_; }
  const std::vector<Module*>& children() const { return children_; }

 protected:
  /// Registers a coroutine process under this module's name.
  void spawn(Process process, const std::string& process_name = "proc");

 private:
  Scheduler& sched_;
  std::string name_;
  Module* parent_;
  std::vector<Module*> children_;
};

}  // namespace loom::sim

// Simulation time.
//
// Mirrors SystemC's sc_time: an unsigned count of a fixed base resolution
// (1 picosecond here).  All kernel and monitor timing (notably the bound t
// of a timed implication constraint (P => Q, t)) is expressed in this type.
#pragma once

#include <cstdint>
#include <limits>
#include <string>

namespace loom::sim {

class Time {
 public:
  constexpr Time() = default;

  static constexpr Time ps(std::uint64_t v) { return Time(v); }
  static constexpr Time ns(std::uint64_t v) { return Time(v * 1000ULL); }
  static constexpr Time us(std::uint64_t v) { return Time(v * 1000000ULL); }
  static constexpr Time ms(std::uint64_t v) { return Time(v * 1000000000ULL); }
  static constexpr Time sec(std::uint64_t v) {
    return Time(v * 1000000000000ULL);
  }

  /// Largest representable time; used as "no limit".
  static constexpr Time max() {
    return Time(std::numeric_limits<std::uint64_t>::max());
  }
  static constexpr Time zero() { return Time(0); }

  constexpr std::uint64_t picoseconds() const { return ps_; }
  constexpr double to_ns() const { return static_cast<double>(ps_) / 1e3; }
  constexpr double to_us() const { return static_cast<double>(ps_) / 1e6; }

  constexpr bool is_zero() const { return ps_ == 0; }

  friend constexpr bool operator==(Time a, Time b) { return a.ps_ == b.ps_; }
  friend constexpr bool operator!=(Time a, Time b) { return a.ps_ != b.ps_; }
  friend constexpr bool operator<(Time a, Time b) { return a.ps_ < b.ps_; }
  friend constexpr bool operator<=(Time a, Time b) { return a.ps_ <= b.ps_; }
  friend constexpr bool operator>(Time a, Time b) { return a.ps_ > b.ps_; }
  friend constexpr bool operator>=(Time a, Time b) { return a.ps_ >= b.ps_; }

  friend constexpr Time operator+(Time a, Time b) {
    // Saturating: Time::max() + anything stays max (used as "no deadline").
    const std::uint64_t s = a.ps_ + b.ps_;
    return Time(s < a.ps_ ? std::numeric_limits<std::uint64_t>::max() : s);
  }
  friend constexpr Time operator-(Time a, Time b) {
    return Time(a.ps_ >= b.ps_ ? a.ps_ - b.ps_ : 0);
  }
  friend constexpr Time operator*(Time a, std::uint64_t k) {
    return Time(a.ps_ * k);
  }

  Time& operator+=(Time b) { return *this = *this + b; }

  /// Human-readable rendering with the largest exact unit, e.g. "150 ns".
  std::string to_string() const;

 private:
  constexpr explicit Time(std::uint64_t ps) : ps_(ps) {}
  std::uint64_t ps_ = 0;
};

}  // namespace loom::sim

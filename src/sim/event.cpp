#include "sim/event.hpp"

#include "sim/scheduler.hpp"

namespace loom::sim {

Event::Event(Scheduler& scheduler, std::string name)
    : scheduler_(scheduler), name_(std::move(name)) {}

void Event::notify() {
  // A delta notification overrides any pending timed notification.
  if (timed_pending_) {
    ++timed_generation_;
    timed_pending_ = false;
  }
  if (delta_pending_) return;
  delta_pending_ = true;
  scheduler_.notify_delta(*this);
}

void Event::notify(Time delay) {
  if (delta_pending_) return;  // a delta notification is already earlier
  const Time at = scheduler_.now() + delay;
  if (timed_pending_ && timed_at_ <= at) return;  // earlier notification wins
  ++timed_generation_;
  timed_pending_ = true;
  timed_at_ = at;
  scheduler_.notify_at(at, *this);
}

void Event::cancel() {
  delta_pending_ = false;
  if (timed_pending_) {
    ++timed_generation_;
    timed_pending_ = false;
  }
}

void Event::trigger() {
  delta_pending_ = false;
  timed_pending_ = false;
  for (auto h : waiters_) scheduler_.schedule_delta(h);
  waiters_.clear();
  for (auto& cb : callbacks_) scheduler_.schedule_delta(cb);
  for (auto& cb : once_callbacks_) scheduler_.schedule_delta(std::move(cb));
  once_callbacks_.clear();
}

}  // namespace loom::sim

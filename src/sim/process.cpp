#include "sim/process.hpp"

#include "sim/scheduler.hpp"

namespace loom::sim {

void Process::promise_type::unhandled_exception() {
  if (scheduler != nullptr) {
    scheduler->report_exception(std::current_exception());
  } else {
    throw;  // not owned by a kernel: propagate out of resume()
  }
}

}  // namespace loom::sim

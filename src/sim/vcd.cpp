#include "sim/vcd.hpp"

#include <map>
#include <stdexcept>

namespace loom::sim {

VcdWriter::VcdWriter(std::ostream& out, Scheduler& scheduler)
    : out_(out), sched_(scheduler) {}

VcdWriter::~VcdWriter() { finish(); }

std::string VcdWriter::make_id(std::size_t index) {
  // Printable identifiers over '!'..'~' (94 symbols), little-endian.
  std::string id;
  do {
    id += static_cast<char>('!' + index % 94);
    index /= 94;
  } while (index != 0);
  return id;
}

VcdWriter::Var VcdWriter::add_wire(const std::string& name, unsigned width) {
  if (header_done_) {
    throw std::logic_error("VcdWriter: cannot add variables after dumping");
  }
  VarInfo info;
  info.name = name;
  info.id = make_id(vars_.size());
  info.width = width == 0 ? 1 : width;
  vars_.push_back(std::move(info));
  return Var{vars_.size() - 1};
}

VcdWriter::Var VcdWriter::add_event(const std::string& name) {
  Var var = add_wire(name, 1);
  vars_[var.index].is_event = true;
  return var;
}

void VcdWriter::emit_header() {
  if (header_done_) return;
  header_done_ = true;
  out_ << "$timescale 1ps $end\n";

  // Group variables by their dot-separated scopes.
  struct Entry {
    std::vector<std::string> scope;
    std::string leaf;
    std::size_t index;
  };
  std::vector<Entry> entries;
  for (std::size_t i = 0; i < vars_.size(); ++i) {
    Entry e;
    e.index = i;
    std::string rest = vars_[i].name;
    std::size_t dot;
    while ((dot = rest.find('.')) != std::string::npos) {
      e.scope.push_back(rest.substr(0, dot));
      rest = rest.substr(dot + 1);
    }
    e.leaf = rest;
    entries.push_back(std::move(e));
  }
  std::vector<std::string> open;
  auto close_to = [&](std::size_t depth) {
    while (open.size() > depth) {
      out_ << "$upscope $end\n";
      open.pop_back();
    }
  };
  for (const auto& e : entries) {
    std::size_t common = 0;
    while (common < open.size() && common < e.scope.size() &&
           open[common] == e.scope[common]) {
      ++common;
    }
    close_to(common);
    for (std::size_t d = common; d < e.scope.size(); ++d) {
      out_ << "$scope module " << e.scope[d] << " $end\n";
      open.push_back(e.scope[d]);
    }
    const VarInfo& v = vars_[e.index];
    out_ << "$var " << (v.is_event ? "event" : "wire") << " " << v.width
         << " " << v.id << " " << e.leaf << " $end\n";
  }
  close_to(0);
  out_ << "$enddefinitions $end\n";
}

void VcdWriter::advance_time() {
  const std::uint64_t now = sched_.now().picoseconds();
  if (!time_started_ || now != current_ps_) {
    if (time_started_ && now < current_ps_) {
      throw std::logic_error("VcdWriter: time went backwards");
    }
    out_ << "#" << now << "\n";
    current_ps_ = now;
    time_started_ = true;
  }
}

void VcdWriter::change(Var var, std::uint64_t value) {
  VarInfo& info = vars_.at(var.index);
  if (info.has_value && info.last_value == value && !info.is_event) return;
  emit_header();
  advance_time();
  info.last_value = value;
  info.has_value = true;
  if (info.width == 1) {
    out_ << (value & 1) << info.id << "\n";
    return;
  }
  std::string bits;
  for (unsigned b = info.width; b-- > 0;) {
    bits += ((value >> b) & 1) != 0 ? '1' : '0';
  }
  out_ << "b" << bits << " " << info.id << "\n";
}

void VcdWriter::strobe(Var var) {
  VarInfo& info = vars_.at(var.index);
  if (!info.is_event) {
    throw std::logic_error("VcdWriter: strobe on a non-event variable");
  }
  emit_header();
  advance_time();
  out_ << "1" << info.id << "\n";
}

void VcdWriter::finish() {
  emit_header();
  out_.flush();
}

}  // namespace loom::sim

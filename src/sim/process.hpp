// Simulation processes as C++20 coroutines.
//
// A Process plays the role of an SC_THREAD: a coroutine that suspends on
// `co_await scheduler.wait(...)` and is resumed by the kernel.  Handles are
// owned either by the Process wrapper (before spawn) or by the Scheduler
// (after spawn); they are never shared.
#pragma once

#include <coroutine>
#include <exception>
#include <utility>

namespace loom::sim {

class Scheduler;

class Process {
 public:
  struct promise_type {
    Scheduler* scheduler = nullptr;  // set by Scheduler::spawn

    Process get_return_object() {
      return Process(std::coroutine_handle<promise_type>::from_promise(*this));
    }
    std::suspend_always initial_suspend() noexcept { return {}; }
    std::suspend_always final_suspend() noexcept { return {}; }
    void return_void() {}
    void unhandled_exception();
  };

  using Handle = std::coroutine_handle<promise_type>;

  Process() = default;
  Process(Process&& other) noexcept : handle_(std::exchange(other.handle_, {})) {}
  Process& operator=(Process&& other) noexcept {
    if (this != &other) {
      destroy();
      handle_ = std::exchange(other.handle_, {});
    }
    return *this;
  }
  Process(const Process&) = delete;
  Process& operator=(const Process&) = delete;
  ~Process() { destroy(); }

  bool valid() const { return static_cast<bool>(handle_); }

  /// Transfers ownership of the coroutine frame (used by Scheduler::spawn).
  Handle release() { return std::exchange(handle_, {}); }

 private:
  explicit Process(Handle h) : handle_(h) {}

  void destroy() {
    if (handle_) {
      handle_.destroy();
      handle_ = {};
    }
  }

  Handle handle_;
};

}  // namespace loom::sim

// Kernel events, modeled on sc_event.
//
// An Event can be notified immediately for the next delta cycle or after a
// simulated delay.  Following SystemC semantics, at most one timed
// notification is pending per event and an earlier notification overrides a
// later pending one.  Both coroutine waiters (`co_await event.wait()`) and
// plain callbacks (monitor taps) are supported.
#pragma once

#include <coroutine>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "sim/time.hpp"

namespace loom::sim {

class Scheduler;

class Event {
 public:
  explicit Event(Scheduler& scheduler, std::string name = "");

  Event(const Event&) = delete;
  Event& operator=(const Event&) = delete;

  const std::string& name() const { return name_; }

  /// Notifies the event for the next delta cycle.
  void notify();

  /// Notifies the event `delay` after the current time.  An already pending
  /// notification that would fire earlier wins; a later one is replaced.
  void notify(Time delay);

  /// Cancels any pending (delta or timed) notification.
  void cancel();

  /// Registers a persistent callback invoked each time the event triggers.
  void on_trigger(std::function<void()> fn) {
    callbacks_.push_back(std::move(fn));
  }

  /// Registers a callback invoked only on the next trigger.
  void on_next_trigger(std::function<void()> fn) {
    once_callbacks_.push_back(std::move(fn));
  }

  /// Awaitable: suspends the calling process until the event triggers.
  auto wait() {
    struct Awaiter {
      Event& event;
      bool await_ready() const noexcept { return false; }
      void await_suspend(std::coroutine_handle<> h) {
        event.waiters_.push_back(h);
      }
      void await_resume() const noexcept {}
    };
    return Awaiter{*this};
  }

 private:
  friend class Scheduler;
  friend struct EventAwaiter;

  /// Resumes waiters and fires callbacks; called by the kernel when the
  /// notification matures.
  void trigger();

  Scheduler& scheduler_;
  std::string name_;
  std::vector<std::coroutine_handle<>> waiters_;
  std::vector<std::function<void()>> callbacks_;
  std::vector<std::function<void()>> once_callbacks_;

  bool delta_pending_ = false;
  bool timed_pending_ = false;
  Time timed_at_;
  std::uint64_t timed_generation_ = 0;  // invalidates cancelled timed notifies
};

}  // namespace loom::sim

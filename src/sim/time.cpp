#include "sim/time.hpp"

namespace loom::sim {

std::string Time::to_string() const {
  if (ps_ == std::numeric_limits<std::uint64_t>::max()) return "inf";
  struct Unit {
    std::uint64_t factor;
    const char* suffix;
  };
  static constexpr Unit units[] = {
      {1000000000000ULL, " s"}, {1000000000ULL, " ms"}, {1000000ULL, " us"},
      {1000ULL, " ns"},         {1ULL, " ps"},
  };
  for (const auto& u : units) {
    if (ps_ != 0 && ps_ % u.factor == 0) {
      return std::to_string(ps_ / u.factor) + u.suffix;
    }
  }
  return "0 s";
}

}  // namespace loom::sim

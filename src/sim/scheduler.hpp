// Discrete-event simulation kernel.
//
// Implements the SystemC evaluate/update/delta-notification cycle:
//   1. evaluation  - resume every runnable process / callback;
//   2. update      - apply primitive-channel updates (Signal<T>);
//   3. delta       - trigger delta-notified events, collect new runnables;
//   repeat from 1 while runnables exist, otherwise advance time to the
//   earliest pending timed notification.
//
// The kernel is deliberately single-threaded and deterministic: runnables
// are executed in FIFO order of scheduling, and timed notifications at equal
// times fire in notification order.
#pragma once

#include <coroutine>
#include <cstdint>
#include <exception>
#include <functional>
#include <memory>
#include <queue>
#include <string>
#include <variant>
#include <vector>

#include "sim/process.hpp"
#include "sim/time.hpp"

namespace loom::sim {

class Event;
struct EventAwaiter;
struct EventTimeoutAwaiter;

/// Primitive channels (e.g. Signal<T>) implement this to take part in the
/// update phase.
class Updatable {
 public:
  virtual ~Updatable() = default;
  virtual void update() = 0;
};

class Scheduler {
 public:
  Scheduler() = default;
  ~Scheduler();

  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  Time now() const { return now_; }
  std::uint64_t delta_count() const { return delta_count_; }

  /// Registers a process and makes it runnable in the first delta cycle.
  void spawn(Process process, std::string name = "process");

  /// Runs until no activity remains or simulated time would exceed `limit`.
  /// Returns the time at which simulation stopped.
  Time run(Time limit = Time::max());

  /// Requests an orderly stop; the current evaluation finishes first.
  void stop() { stop_requested_ = true; }
  bool stopped() const { return stop_requested_; }

  /// True when no runnable process and no pending notification remain.
  bool idle() const;

  // --- services used by awaitables, events and channels ---

  /// Awaitable: suspends the caller for `delay` of simulated time.
  auto wait(Time delay) {
    struct Awaiter {
      Scheduler& sched;
      Time delay;
      bool await_ready() const noexcept { return false; }
      void await_suspend(std::coroutine_handle<> h) {
        sched.schedule_at(sched.now_ + delay, h);
      }
      void await_resume() const noexcept {}
    };
    return Awaiter{*this, delay};
  }

  /// Awaitable: suspends the caller until `event` triggers.  Convenience
  /// forwarding so call sites read `co_await sched.wait(ev)`.
  EventAwaiter wait(Event& event);

  /// Awaitable: waits for `event` with a timeout; resumes with true when the
  /// event fired, false when the timeout elapsed first.
  EventTimeoutAwaiter wait(Event& event, Time timeout);

  /// Token for cancellable timed callbacks: set *token = true to cancel.
  /// A cancelled entry is dropped without advancing simulation time.
  using CancelToken = std::shared_ptr<bool>;

  /// Schedules a coroutine resumption at absolute time `t`.
  void schedule_at(Time t, std::coroutine_handle<> h);
  /// Schedules a callback at absolute time `t` (kernel timeouts, watchdogs).
  void schedule_at(Time t, std::function<void()> fn,
                   CancelToken token = nullptr);
  /// Makes a coroutine runnable in the next delta cycle.
  void schedule_delta(std::coroutine_handle<> h);
  /// Runs a callback in the next delta cycle.
  void schedule_delta(std::function<void()> fn);

  /// Queues a timed notification for `event`.
  void notify_at(Time t, Event& event);
  /// Queues a delta notification for `event`.
  void notify_delta(Event& event);

  /// Registers a channel for the current update phase.
  void request_update(Updatable& channel);

  /// Records an exception escaping a process; rethrown from run().
  void report_exception(std::exception_ptr e) {
    if (!pending_exception_) pending_exception_ = e;
  }

 private:
  using Runnable = std::variant<std::coroutine_handle<>, std::function<void()>>;

  struct TimedEntry {
    Time time;
    std::uint64_t seq;  // FIFO tie-break
    // Exactly one of the three below is active.
    Event* event = nullptr;
    std::uint64_t event_generation = 0;  // matches Event::timed_generation_
    std::coroutine_handle<> handle;
    std::function<void()> callback;
    CancelToken cancel_token;

    bool operator>(const TimedEntry& other) const {
      if (time != other.time) return time > other.time;
      return seq > other.seq;
    }
  };

  void run_runnable(Runnable& r);
  void evaluation_phase();
  void update_phase();
  void delta_notification_phase();
  /// Pops every timed entry at the earliest time; returns false if none.
  bool advance_time(Time limit);

  Time now_;
  std::uint64_t delta_count_ = 0;
  std::uint64_t seq_ = 0;
  bool stop_requested_ = false;

  std::vector<Runnable> runnable_;
  std::vector<Runnable> next_runnable_;
  std::vector<Event*> delta_events_;
  std::vector<Updatable*> update_queue_;
  std::priority_queue<TimedEntry, std::vector<TimedEntry>, std::greater<>>
      timed_;

  struct ProcessRecord {
    Process::Handle handle;
    std::string name;
  };
  std::vector<ProcessRecord> processes_;

  std::exception_ptr pending_exception_;

  friend class Event;
};

/// Awaiter for `co_await sched.wait(event)`.
struct EventAwaiter {
  Event& event;
  bool await_ready() const noexcept { return false; }
  void await_suspend(std::coroutine_handle<> h);  // defined in scheduler.cpp
  void await_resume() const noexcept {}
};

/// Awaiter for `co_await sched.wait(event, timeout)`; resumes with true when
/// the event fired before the timeout.
struct EventTimeoutAwaiter {
  Scheduler& sched;
  Event& event;
  Time timeout;

  struct State {
    bool settled = false;
    bool event_fired = false;
  };
  std::shared_ptr<State> state = std::make_shared<State>();

  bool await_ready() const noexcept { return false; }
  void await_suspend(std::coroutine_handle<> h);  // defined in scheduler.cpp
  bool await_resume() const noexcept { return state->event_fired; }
};

inline EventAwaiter Scheduler::wait(Event& event) { return EventAwaiter{event}; }

inline EventTimeoutAwaiter Scheduler::wait(Event& event, Time timeout) {
  return EventTimeoutAwaiter{*this, event, timeout};
}

}  // namespace loom::sim

// Bounded FIFO channel with blocking put/get — the sc_fifo analogue of the
// kernel substrate.  Producers suspend when the queue is full, consumers
// when it is empty; non-blocking variants and occupancy events support
// polling styles.
//
// Like sc_fifo, the blocking interface is designed for one producer and
// one consumer process per FIFO; with several concurrent blocked producers
// the occupancy can transiently overshoot by the number of simultaneously
// woken writers (use nb_put and retry loops for many-to-one traffic).
#pragma once

#include <deque>
#include <optional>
#include <string>

#include "sim/event.hpp"
#include "sim/scheduler.hpp"

namespace loom::sim {

template <typename T>
class Fifo {
 public:
  Fifo(Scheduler& scheduler, std::string name, std::size_t capacity)
      : sched_(scheduler),
        name_(std::move(name)),
        capacity_(capacity == 0 ? 1 : capacity),
        data_written_(scheduler, name_ + ".written"),
        data_read_(scheduler, name_ + ".read") {}

  std::size_t size() const { return queue_.size(); }
  std::size_t capacity() const { return capacity_; }
  bool empty() const { return queue_.empty(); }
  bool full() const { return queue_.size() >= capacity_; }

  /// Non-blocking put; false when full.
  bool nb_put(T value) {
    if (full()) return false;
    queue_.push_back(std::move(value));
    data_written_.notify();
    return true;
  }

  /// Non-blocking get; nullopt when empty.
  std::optional<T> nb_get() {
    if (queue_.empty()) return std::nullopt;
    T value = std::move(queue_.front());
    queue_.pop_front();
    data_read_.notify();
    return value;
  }

  /// Awaitable blocking put: suspends while the FIFO is full.
  /// Usage: `co_await fifo.put(v);`
  auto put(T value) {
    struct Awaiter {
      Fifo& fifo;
      T value;
      bool await_ready() { return !fifo.full(); }
      void await_suspend(std::coroutine_handle<> h) {
        fifo.data_read_.on_next_trigger([this, h] {
          if (!fifo.full()) {
            fifo.sched_.schedule_delta(h);
          } else {
            await_suspend(h);  // still full: wait for the next read
          }
        });
      }
      void await_resume() { fifo.force_put(std::move(value)); }
    };
    return Awaiter{*this, std::move(value)};
  }

  /// Awaitable blocking get: suspends while the FIFO is empty.
  /// Usage: `T v = co_await fifo.get();`
  auto get() {
    struct Awaiter {
      Fifo& fifo;
      bool await_ready() { return !fifo.empty(); }
      void await_suspend(std::coroutine_handle<> h) {
        fifo.data_written_.on_next_trigger([this, h] {
          if (!fifo.empty()) {
            fifo.sched_.schedule_delta(h);
          } else {
            await_suspend(h);
          }
        });
      }
      T await_resume() {
        T value = std::move(fifo.queue_.front());
        fifo.queue_.pop_front();
        fifo.data_read_.notify();
        return value;
      }
    };
    return Awaiter{*this};
  }

  /// Triggered after each successful put / get.
  Event& data_written_event() { return data_written_; }
  Event& data_read_event() { return data_read_; }

 private:
  void force_put(T value) {
    queue_.push_back(std::move(value));
    data_written_.notify();
  }

  Scheduler& sched_;
  std::string name_;
  std::size_t capacity_;
  std::deque<T> queue_;
  Event data_written_;
  Event data_read_;
};

}  // namespace loom::sim

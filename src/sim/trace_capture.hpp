// Kernel-level trace capture: records (id, time) interface events as they
// happen during a simulation run.
//
// The sim layer knows nothing about property alphabets, so events are
// identified by a dense 32-bit id — the plat observation adapters feed
// their interned spec::Name values straight through (spec::Name is the
// same underlying type), and abv::TraceRecorder consumes the capture on
// the other side to build a replayable spec::Trace.  A capture buffers the
// events it sees and fans them out to any number of sinks; when bound to a
// Scheduler it stamps unstamped events with the kernel's current time,
// mirroring how MonitorModule stamps observations.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "sim/scheduler.hpp"
#include "sim/time.hpp"

namespace loom::sim {

class TraceCapture {
 public:
  /// Dense event id; the plat adapters use interned spec::Name values.
  using Id = std::uint32_t;

  struct Captured {
    Id id = 0;
    Time time;

    bool operator==(const Captured&) const = default;
  };

  using Sink = std::function<void(Id, Time)>;

  /// Free-standing capture: every event must carry its own stamp.
  TraceCapture() = default;

  /// Scheduler-bound capture: capture(id) stamps with scheduler.now().
  explicit TraceCapture(const Scheduler& scheduler)
      : scheduler_(&scheduler) {}

  /// Records an event at the kernel's current time (requires a bound
  /// scheduler).
  void capture(Id id);

  /// Records an event with an explicit stamp.
  void capture(Id id, Time time);

  /// Adds a sink that sees every subsequent event (already-buffered events
  /// are not replayed into it).
  void add_sink(Sink sink) { sinks_.push_back(std::move(sink)); }

  /// Toggles the internal buffer.  Sinks always fire; with buffering off a
  /// capture is a pure fan-out stage and events() stays empty.
  void set_buffering(bool on) { buffering_ = on; }
  bool buffering() const { return buffering_; }

  const std::vector<Captured>& events() const { return events_; }
  std::uint64_t captured_count() const { return count_; }

  /// Drops the buffered events (the total count keeps running).
  void clear() { events_.clear(); }

 private:
  const Scheduler* scheduler_ = nullptr;
  std::vector<Captured> events_;
  std::vector<Sink> sinks_;
  std::uint64_t count_ = 0;
  bool buffering_ = true;
};

}  // namespace loom::sim

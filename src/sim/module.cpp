#include "sim/module.hpp"

namespace loom::sim {

Module::Module(Scheduler& scheduler, std::string name, Module* parent)
    : sched_(scheduler), name_(std::move(name)), parent_(parent) {
  if (parent_ != nullptr) parent_->children_.push_back(this);
}

std::string Module::full_name() const {
  if (parent_ == nullptr) return name_;
  return parent_->full_name() + "." + name_;
}

void Module::spawn(Process process, const std::string& process_name) {
  sched_.spawn(std::move(process), full_name() + "." + process_name);
}

}  // namespace loom::sim

// Trace utilities: text serialization ("name@time_ps" lines) and an event
// recorder used by the platform observation adapters.
#pragma once

#include <optional>
#include <string>
#include <string_view>

#include "spec/reference.hpp"
#include "support/diagnostics.hpp"

namespace loom::abv {

/// Serializes a trace, one "name@picoseconds" entry per line.
std::string to_text(const spec::Trace& trace, const spec::Alphabet& ab);

/// Parses the to_text format; unknown names are interned on the fly.
std::optional<spec::Trace> from_text(std::string_view text,
                                     spec::Alphabet& ab,
                                     support::DiagnosticSink& sink);

/// Accumulates observed events (e.g. from a TLM observation adapter) for
/// later replay against monitors or the reference checker.
class TraceRecorder {
 public:
  void record(spec::Name name, sim::Time time) {
    trace_.push_back({name, time});
  }
  const spec::Trace& trace() const { return trace_; }
  void clear() { trace_.clear(); }

 private:
  spec::Trace trace_;
};

}  // namespace loom::abv

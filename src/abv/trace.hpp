//! Trace utilities: text serialization ("name@time_ps" lines) and an event
//! recorder used by the platform observation adapters.
//!
//! Ownership: TraceRecorder owns its recorded events until take() moves
//! them out; attach() subscribes a recorder to a sim::TraceCapture whose
//! lifetime the caller manages.
//! Thread-safety: recording rides the (single-threaded) simulation kernel;
//! parsing/serialization are pure.
//! Determinism: from_text(to_text(t)) == t for every trace
//! (abv_trace_roundtrip_test) — the text format is the interchange the
//! campaign's cached replay and loomcheck both rely on.
#pragma once

#include <functional>
#include <optional>
#include <string>
#include <string_view>
#include <utility>

#include "sim/trace_capture.hpp"
#include "spec/reference.hpp"
#include "support/diagnostics.hpp"

namespace loom::abv {

/// Serializes a trace, one "name@picoseconds" entry per line.
std::string to_text(const spec::Trace& trace, const spec::Alphabet& ab);

/// Parses the to_text format; unknown names are interned on the fly.
std::optional<spec::Trace> from_text(std::string_view text,
                                     spec::Alphabet& ab,
                                     support::DiagnosticSink& sink);

/// Accumulates observed events (e.g. from a TLM observation adapter or a
/// sim::TraceCapture) for later replay against monitors or the reference
/// checker.
class TraceRecorder {
 public:
  void record(spec::Name name, sim::Time time) {
    trace_.push_back({name, time});
  }
  const spec::Trace& trace() const { return trace_; }
  /// Moves the recorded trace out, leaving the recorder empty.
  spec::Trace take() { return std::exchange(trace_, {}); }
  void clear() { trace_.clear(); }

  /// Sink form of record(), for observer-style event sources
  /// (IpuObserver::add_sink, sim::TraceCapture::add_sink).
  std::function<void(spec::Name, sim::Time)> sink() {
    return [this](spec::Name name, sim::Time time) { record(name, time); };
  }

 private:
  spec::Trace trace_;
};

/// Feeds every event a capture sees into the recorder (capture ids are the
/// interned spec::Name values, see sim::TraceCapture).  The recorder must
/// outlive the capture's use.
void attach(sim::TraceCapture& capture, TraceRecorder& recorder);

}  // namespace loom::abv

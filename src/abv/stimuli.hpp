//! Stimuli generation from loose-ordering patterns (the paper's §8 "further
//! work": generating random sequences from the patterns, closing the ABV
//! loop of Fig. 1).
//!
//! generate_valid() samples a trace from the language of a property:
//! fragments in order, blocks in a random order within each fragment (a
//! random non-empty subset for ∨), block lengths uniform in [u,v], trigger /
//! reset events between rounds, and optional irrelevant noise events that
//! the monitors must ignore.  Timed implications get event gaps budgeted so
//! every round meets its deadline.
//!
//! Thread-safety: generation interns lazily into the shared Alphabet —
//! parallel engines must call pre_intern_stimuli_names() serially first,
//! after which generation only reads the alphabet.
//! Determinism: a trace is a pure function of (property, rng stream,
//! options); the campaign's per-seed trace cache depends on exactly that.
#pragma once

#include "spec/ast.hpp"
#include "spec/reference.hpp"
#include "support/rng.hpp"

namespace loom::abv {

struct StimuliOptions {
  std::size_t rounds = 3;        // P<<i rounds / P=>Q rounds
  std::uint32_t noise_permille = 0;  // chance of a noise event per position
  std::size_t noise_names = 2;   // distinct irrelevant names to use
  std::uint64_t max_gap_ns = 20; // inter-event spacing (antecedents)
};

/// Interns every name generate_valid() may lazily intern (the noise pool)
/// so that later generation runs are write-free on the alphabet.  The
/// parallel campaign engine calls this once during setup and then shares
/// one alphabet across workers; keep it in lockstep with the generator's
/// naming scheme (it lives next to noise_pool() for exactly that reason).
void pre_intern_stimuli_names(spec::Alphabet& ab,
                              const StimuliOptions& options);

/// Generates a trace satisfying the property.  The result is guaranteed
/// accepted by the reference semantics (asserted in tests).
spec::Trace generate_valid(const spec::Property& p, spec::Alphabet& ab,
                           support::Rng& rng, const StimuliOptions& options);

spec::Trace generate_valid(const spec::Antecedent& a, spec::Alphabet& ab,
                           support::Rng& rng, const StimuliOptions& options);

spec::Trace generate_valid(const spec::TimedImplication& t,
                           spec::Alphabet& ab, support::Rng& rng,
                           const StimuliOptions& options);

}  // namespace loom::abv

//! Coverage measurement (the "coverage improver" input of the paper's
//! Fig. 1): which part of a property's behaviour a stimuli set exercised.
//!
//!   AlphabetCoverage    which interface names were observed at all;
//!   RecognizerCoverage  which states of each Fig. 5 range recognizer were
//!                       visited and whether the block-length bounds u and v
//!                       were actually hit.
//!
//! Ownership: RecognizerCoverage borrows the Drct antecedent monitor it
//! samples — call detach() before outliving it (the campaign engine stores
//! merged coverage long after each unit's monitor died).  A ViaPSL-backed
//! campaign has no recognizer structure to sample and reports 1.0.
//! Thread-safety: instances are single-thread; campaign shards each sample
//! into their own instance and merge() afterwards.
//! Determinism: merge() is an order-independent union (state masks OR,
//! block maxima max), which is what lets shard merges stay bit-identical
//! at any thread count.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "mon/antecedent_monitor.hpp"

namespace loom::abv {

class AlphabetCoverage {
 public:
  explicit AlphabetCoverage(spec::NameSet alphabet)
      : alphabet_(std::move(alphabet)) {}

  void record(spec::Name name) {
    if (alphabet_.test(name)) seen_.set(name);
  }

  std::size_t total() const { return alphabet_.count(); }
  std::size_t covered() const { return seen_.count(); }
  double ratio() const {
    return total() == 0 ? 1.0
                        : static_cast<double>(covered()) /
                              static_cast<double>(total());
  }
  spec::NameSet missed() const {
    spec::NameSet m = alphabet_;
    m.subtract(seen_);
    return m;
  }
  /// Order-independent union with another shard's coverage of the same
  /// alphabet (campaign shards each record into their own instance).
  void merge(const AlphabetCoverage& other) { seen_ |= other.seen_; }
  /// The observed subset (always ⊆ the alphabet): what a worker process
  /// ships over the wire — the parent replays it through record().
  const spec::NameSet& seen() const { return seen_; }
  std::string report(const spec::Alphabet& ab) const;

 private:
  spec::NameSet alphabet_;
  spec::NameSet seen_;
};

/// Structural coverage of a Drct antecedent monitor: call sample() after
/// every observed event.
class RecognizerCoverage {
 public:
  /// One range recognizer's coverage row: which of its six states were
  /// visited (bit per RangeRecognizer::State) and the longest block seen,
  /// against the plan's [lo, hi] bounds.  Public because the wire codec
  /// ships these rows verbatim between worker and parent processes.
  struct RangeCov {
    spec::Name name = spec::kInvalidName;
    std::uint8_t state_mask = 0;
    std::uint32_t max_count = 0;
    std::uint32_t lo = 1, hi = 1;
  };

  explicit RecognizerCoverage(const mon::AntecedentMonitor& monitor);

  /// Rebuilds a detached instance from wire-decoded rows (sample() is
  /// unavailable; merge() and every accessor work).
  explicit RecognizerCoverage(std::vector<std::vector<RangeCov>> rows)
      : monitor_(nullptr), per_fragment_(std::move(rows)) {}

  void sample();

  /// Drops the monitor binding.  Call before storing the coverage past the
  /// monitor's lifetime (the campaign engine keeps merged coverage around
  /// long after each seed's monitor is gone); sample() asserts against use
  /// after detach, every other accessor keeps working.
  void detach() { monitor_ = nullptr; }

  /// Order-independent union with coverage sampled from another monitor of
  /// the same property (state masks OR, block-length maxima take the max).
  void merge(const RecognizerCoverage& other);

  /// Visited states over reachable states (6 per range recognizer).
  double state_ratio() const;
  /// Ranges whose block length reached the lower / upper bound.
  std::size_t lo_bound_hits() const;
  std::size_t hi_bound_hits() const;

  std::string report(const spec::Alphabet& ab) const;

  /// Row access for the wire codec (fragment-major, recognizer-minor).
  const std::vector<std::vector<RangeCov>>& per_fragment() const {
    return per_fragment_;
  }

 private:
  const mon::AntecedentMonitor* monitor_;
  std::vector<std::vector<RangeCov>> per_fragment_;
};

}  // namespace loom::abv

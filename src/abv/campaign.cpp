#include "abv/campaign.hpp"

#include <algorithm>
#include <cstdio>
#include <optional>
#include <thread>

#include "mon/monitors.hpp"
#include "psl/clause_monitor.hpp"
#include "sim/scheduler.hpp"
#include "support/thread_pool.hpp"
#include "support/trace_cache.hpp"

namespace loom::abv {
namespace {

constexpr MutationKind kAllKinds[5] = {
    MutationKind::Drop, MutationKind::Duplicate, MutationKind::SwapAdjacent,
    MutationKind::EarlyTrigger, MutationKind::StallDeadline};

// A work unit is one cell of the sharded campaign space: slot 0 is a seed's
// valid-stimuli phase, slots 1..5 are the seed's batch of one mutation
// kind.  Units are independent by construction — each derives its own Rng
// stream from (seed, slot) — which is what makes the reduction
// order-independent and the engine deterministic under any thread count.
constexpr std::size_t kSlotsPerSeed = 6;

sim::Time end_of(const spec::Trace& t) {
  return t.empty() ? sim::Time::zero() : t.back().time;
}

// Everything a work unit needs, shared read-only across workers once
// run_campaigns() has finished its setup (noise names pre-interned,
// property plans compiled, ViaPSL encodings materialized).
struct CampaignJob {
  const spec::Property* property = nullptr;
  const PropertyPlan* plan = nullptr;
  std::size_t index = 0;  // position in run_campaigns' property list
};

// Per-seed valid-trace cache shared by every worker of one run_campaigns()
// call: keyed by (job, seed) so batch runs over several properties never
// alias, generated on first touch by whichever of the seed's six units gets
// there first.
using SeedTraceCache = support::TraceCache<spec::Trace>;

// Accumulator local to one shard; merged into the campaign result in shard
// index order after the pool drains.
struct ShardOutcome {
  CampaignResult partial;
  std::optional<AlphabetCoverage> alphabet;
  std::optional<RecognizerCoverage> recognizer;
};

struct Shard {
  std::size_t job = 0;
  std::size_t unit_begin = 0;  // within the job's seeds×slots space
  std::size_t unit_end = 0;
};

// Stamps the monitor a work unit checks with.  On the compiled path this is
// a cheap instantiation from the shared translate-once artifacts; on the
// legacy path it re-runs the full per-unit translation the pre-plan engine
// did (make_monitor re-plans the property, a ViaPSL unit re-encodes the
// clause set).  Either way the bytes that come out are identical — that is
// the compiled ≡ per-unit invariant of compiled_plan_diff_test.
std::unique_ptr<mon::Monitor> stamp_monitor(const CampaignJob& job,
                                            const CampaignOptions& options,
                                            const spec::Alphabet& ab,
                                            ShardOutcome& out) {
  ++out.partial.compile_stats.instances_stamped;
  const mon::CompiledProperty& compiled = job.plan->compiled;
  if (options.use_compiled_plans) return compiled.instantiate();
  if (compiled.chosen() == mon::Backend::ViaPSL) {
    return std::make_unique<psl::ClauseMonitor>(
        psl::encode(*job.property, compiled.max_clauses(), &ab));
  }
  return mon::make_monitor(*job.property);
}

// The valid trace of seed `s` is a pure function of (first_seed + s): both
// the valid phase and every mutation unit of the seed regenerate it from
// stream 0, so no cross-unit state needs sharing.
spec::Trace seed_trace(const CampaignJob& job, spec::Alphabet& ab,
                       const CampaignOptions& options, std::size_t s) {
  support::Rng rng = support::Rng::stream(options.first_seed + s, 0);
  return generate_valid(*job.property, ab, rng, options.stimuli);
}

// Hands out the seed's valid trace: from the shared cache when trace reuse
// is on (whichever unit asks first generates and inserts, the rest hit),
// regenerated into `local` otherwise.  Cached or not, the bytes are the
// same — the trace is a pure function of (first_seed + s).
const spec::Trace& obtain_seed_trace(const CampaignJob& job,
                                     spec::Alphabet& ab,
                                     const CampaignOptions& options,
                                     std::size_t s, SeedTraceCache* cache,
                                     ShardOutcome& out, spec::Trace& local) {
  if (cache == nullptr) {
    local = seed_trace(job, ab, options, s);
    return local;
  }
  bool inserted = false;
  const std::uint64_t key =
      static_cast<std::uint64_t>(job.index) * options.seeds + s;
  const spec::Trace& valid = cache->get_or_emplace(
      key, [&] { return seed_trace(job, ab, options, s); }, &inserted);
  if (inserted) {
    ++out.partial.trace_cache_misses;
  } else {
    ++out.partial.trace_cache_hits;
  }
  return valid;
}

void run_valid_unit(const CampaignJob& job, spec::Alphabet& ab,
                    const CampaignOptions& options, std::size_t s,
                    SeedTraceCache* cache, ShardOutcome& out) {
  const spec::Property& property = *job.property;
  spec::Trace local;
  const spec::Trace& valid =
      obtain_seed_trace(job, ab, options, s, cache, out, local);
  ++out.partial.traces;
  out.partial.events += valid.size();

  auto monitor = stamp_monitor(job, options, ab, out);
  // Recognizer-state coverage samples the Drct antecedent recognizer; a
  // ViaPSL-backed campaign has no such structure to sample.
  std::optional<RecognizerCoverage> rec_cov;
  if (property.is_antecedent() &&
      job.plan->compiled.chosen() == mon::Backend::Drct) {
    rec_cov.emplace(static_cast<const mon::AntecedentMonitor&>(*monitor));
  }
  for (const auto& ev : valid) {
    monitor->observe(ev.name, ev.time);
    out.alphabet->record(ev.name);
    if (rec_cov) rec_cov->sample();
  }
  monitor->finish(end_of(valid));
  if (rec_cov) {
    rec_cov->detach();  // outlives this unit's monitor from here on
    if (out.recognizer) {
      out.recognizer->merge(*rec_cov);
    } else {
      out.recognizer.emplace(std::move(*rec_cov));
    }
  }

  const auto ref = spec::reference_check(property, valid, end_of(valid));
  const bool monitor_ok = monitor->verdict() != mon::Verdict::Violated;
  if (monitor_ok && !ref.rejected()) ++out.partial.valid_accepted;
  if (monitor_ok == ref.rejected()) ++out.partial.oracle_disagreements;
  out.partial.monitor_stats.merge(monitor->stats());

  if (options.check_viapsl) {
    // The cross-check always instantiates from the shared clause set (the
    // pre-plan engine shared its encodings the same way).
    auto viapsl = job.plan->compiled.instantiate(mon::Backend::ViaPSL);
    ++out.partial.compile_stats.instances_stamped;
    for (const auto& ev : valid) viapsl->observe(ev.name, ev.time);
    viapsl->finish(end_of(valid));
    if (!ref.rejected() && viapsl->verdict() == mon::Verdict::Violated) {
      ++out.partial.viapsl_false_alarms;
    }
    out.partial.monitor_stats.merge(viapsl->stats());
  }
}

void run_mutation_unit(const CampaignJob& job, spec::Alphabet& ab,
                       const CampaignOptions& options, std::size_t s,
                       std::size_t slot, SeedTraceCache* cache,
                       ShardOutcome& out) {
  LOOM_DASSERT(slot >= 1 && slot < kSlotsPerSeed);
  const spec::Property& property = *job.property;
  spec::Trace local;
  const spec::Trace& valid =
      obtain_seed_trace(job, ab, options, s, cache, out, local);
  const std::size_t k = slot - 1;
  auto& stats = out.partial.mutation[k];
  support::Rng rng = support::Rng::stream(options.first_seed + s, slot);
  // Compiled path: the unit stamps one instance on first need and reuses
  // it across its mutants via Monitor::reset() (fresh ≡ reset, locked by
  // mon_reset_reuse_test).  Legacy path: a fresh translation per mutant.
  std::unique_ptr<mon::Monitor> mmon;
  for (std::size_t m = 0; m < options.mutants_per_kind; ++m) {
    auto mutant = mutate(valid, kAllKinds[k], property, rng);
    if (!mutant) continue;
    ++stats.applied;
    const auto mref =
        spec::reference_check(property, mutant->trace, end_of(mutant->trace));
    if (!mref.rejected()) continue;
    ++stats.invalid;
    if (mmon == nullptr || !options.use_compiled_plans) {
      mmon = stamp_monitor(job, options, ab, out);
    } else {
      mmon->reset();
      ++out.partial.compile_stats.instance_reuses;
    }
    if (options.batch_replay) {
      // In-simulation replay host, scoped per mutant: the kernel only
      // supplies the watchdog queue, which is never pumped — deadline
      // checks happen in finish(), exactly as on the per-event path — and
      // whatever the module armed dies with it right here.
      sim::Scheduler replay_sched;
      mon::MonitorModule module(replay_sched, "replay", *mmon, ab);
      module.observe_batch(mutant->trace,
                           mon::MonitorModule::BatchPolicy::ReplayAll);
    } else {
      for (const auto& ev : mutant->trace) {
        mmon->observe(ev.name, ev.time);
      }
    }
    mmon->finish(end_of(mutant->trace));
    if (mmon->verdict() == mon::Verdict::Violated) {
      ++stats.detected;
    } else {
      ++stats.missed;
    }
    out.partial.monitor_stats.merge(mmon->stats());
  }
}

void run_shard(const std::vector<CampaignJob>& jobs, spec::Alphabet& ab,
               const CampaignOptions& options, const Shard& shard,
               SeedTraceCache* cache, ShardOutcome& out) {
  const CampaignJob& job = jobs[shard.job];
  out.alphabet.emplace(job.property->alphabet());
  // Workers share the one alphabet without locks or copies: setup
  // pre-interned every name stimuli generation touches, and noise_pool()
  // looks names up before interning, so generation is read-only here.
  for (std::size_t u = shard.unit_begin; u < shard.unit_end; ++u) {
    const std::size_t s = u / kSlotsPerSeed;
    const std::size_t slot = u % kSlotsPerSeed;
    if (slot == 0) {
      run_valid_unit(job, ab, options, s, cache, out);
    } else {
      run_mutation_unit(job, ab, options, s, slot, cache, out);
    }
  }
}

}  // namespace

std::vector<PropertyPlan> compile_property_plans(
    const std::vector<const spec::Property*>& properties,
    const spec::Alphabet& ab, const CampaignOptions& options) {
  std::vector<PropertyPlan> plans(properties.size());
  mon::CompileOptions copt;
  copt.backend = options.backend;
  // The cross-check instantiates ViaPSL monitors next to Drct units, so the
  // clause set must be materialized even when the chosen backend is Drct.
  copt.with_viapsl_artifact = options.check_viapsl;
  for (std::size_t p = 0; p < properties.size(); ++p) {
    PropertyPlan& plan = plans[p];
    plan.property = properties[p];
    plan.index = p;
    plan.compiled = mon::CompiledProperty::compile(*properties[p], ab, copt);
    plan.base_stats.plans_built = 1;
    plan.base_stats.viapsl_encodings =
        plan.compiled.encoding() != nullptr ? 1 : 0;
    plan.base_stats.backend_requested = plan.compiled.requested();
    plan.base_stats.backend_chosen = plan.compiled.chosen();
  }
  return plans;
}

std::vector<CampaignResult> run_campaigns(
    const std::vector<const spec::Property*>& properties, spec::Alphabet& ab,
    const CampaignOptions& options) {
  // Setup runs serially on the caller: intern everything stimuli
  // generation could lazily intern, then translate every property exactly
  // once — plan tables, backend choice, ViaPSL clause sets — so both the
  // alphabet and the plans are strictly read-only once workers share them.
  pre_intern_stimuli_names(ab, options.stimuli);
  const std::vector<PropertyPlan> plans =
      compile_property_plans(properties, ab, options);
  std::vector<CampaignJob> jobs(properties.size());
  for (std::size_t p = 0; p < properties.size(); ++p) {
    jobs[p].property = properties[p];
    jobs[p].plan = &plans[p];
    jobs[p].index = p;
  }

  // Shard the flattened (property × seed × slot) space.  Shards never span
  // properties so each merges into exactly one result.
  std::size_t threads = options.threads != 0
                            ? options.threads
                            : std::max(1u, std::thread::hardware_concurrency());
  const std::size_t units_per_job = options.seeds * kSlotsPerSeed;
  std::size_t shard_size = options.shard_size;
  if (shard_size == 0) {
    const std::size_t total_units = units_per_job * jobs.size();
    shard_size = std::max<std::size_t>(1, total_units / (threads * 4));
  }
  std::vector<Shard> shards;
  for (std::size_t p = 0; p < jobs.size(); ++p) {
    for (std::size_t begin = 0; begin < units_per_job; begin += shard_size) {
      shards.push_back(
          {p, begin, std::min(units_per_job, begin + shard_size)});
    }
  }

  std::vector<ShardOutcome> outcomes(shards.size());
  std::optional<SeedTraceCache> trace_cache;
  if (options.reuse_traces) trace_cache.emplace(/*shard_count=*/4 * threads);
  SeedTraceCache* cache = trace_cache ? &*trace_cache : nullptr;
  if (threads <= 1 || shards.size() <= 1) {
    for (std::size_t i = 0; i < shards.size(); ++i) {
      run_shard(jobs, ab, options, shards[i], cache, outcomes[i]);
    }
  } else {
    support::ThreadPool pool(std::min(threads, shards.size()));
    pool.for_each_index(shards.size(), [&](std::size_t i) {
      run_shard(jobs, ab, options, shards[i], cache, outcomes[i]);
    });
  }

  // Merge in shard-index order, one pass over the shards.  Every reduction
  // below is commutative and associative (sums, set unions, maxima), so
  // the fixed order is not load-bearing for determinism — it just makes
  // the bit-identity obvious.
  std::vector<CampaignResult> results(jobs.size());
  std::vector<AlphabetCoverage> alphabet_covs;
  alphabet_covs.reserve(jobs.size());
  for (const auto& job : jobs) {
    alphabet_covs.emplace_back(job.property->alphabet());
  }
  for (std::size_t p = 0; p < jobs.size(); ++p) {
    results[p].compile_stats = plans[p].base_stats;
  }
  std::vector<std::optional<RecognizerCoverage>> rec_covs(jobs.size());
  for (std::size_t i = 0; i < shards.size(); ++i) {
    const std::size_t p = shards[i].job;
    CampaignResult& result = results[p];
    ShardOutcome& out = outcomes[i];
    result.traces += out.partial.traces;
    result.events += out.partial.events;
    result.valid_accepted += out.partial.valid_accepted;
    result.oracle_disagreements += out.partial.oracle_disagreements;
    result.viapsl_false_alarms += out.partial.viapsl_false_alarms;
    for (std::size_t k = 0; k < 5; ++k) {
      result.mutation[k].merge(out.partial.mutation[k]);
    }
    result.monitor_stats.merge(out.partial.monitor_stats);
    result.compile_stats.merge(out.partial.compile_stats);
    result.trace_cache_hits += out.partial.trace_cache_hits;
    result.trace_cache_misses += out.partial.trace_cache_misses;
    if (out.alphabet) alphabet_covs[p].merge(*out.alphabet);
    if (out.recognizer) {
      if (rec_covs[p]) {
        rec_covs[p]->merge(*out.recognizer);
      } else {
        rec_covs[p].emplace(std::move(*out.recognizer));
      }
    }
  }
  for (std::size_t p = 0; p < jobs.size(); ++p) {
    results[p].alphabet_coverage = alphabet_covs[p].ratio();
    results[p].recognizer_state_coverage =
        rec_covs[p] ? rec_covs[p]->state_ratio() : 1.0;
  }
  return results;
}

CampaignResult run_campaign(const spec::Property& property,
                            spec::Alphabet& ab,
                            const CampaignOptions& options) {
  return run_campaigns({&property}, ab, options)[0];
}

std::string CampaignResult::report(const spec::Alphabet&) const {
  char buf[256];
  std::string out;
  std::snprintf(buf, sizeof buf,
                "campaign: %zu traces (%zu events), %zu accepted, "
                "%zu oracle disagreements, %zu ViaPSL false alarms\n",
                traces, events, valid_accepted, oracle_disagreements,
                viapsl_false_alarms);
  out += buf;
  std::snprintf(buf, sizeof buf, "backend: %s (requested %s)\n",
                mon::to_string(compile_stats.backend_chosen),
                mon::to_string(compile_stats.backend_requested));
  out += buf;
  std::snprintf(buf, sizeof buf,
                "coverage: alphabet %.0f%%, recognizer states %.0f%%\n",
                alphabet_coverage * 100.0,
                recognizer_state_coverage * 100.0);
  out += buf;
  std::snprintf(buf, sizeof buf,
                "monitors: %llu ops over %llu events (worst %llu/event)\n",
                static_cast<unsigned long long>(monitor_stats.ops),
                static_cast<unsigned long long>(monitor_stats.events),
                static_cast<unsigned long long>(monitor_stats.max_ops_per_event));
  out += buf;
  for (std::size_t k = 0; k < 5; ++k) {
    const auto& m = mutation[k];
    std::snprintf(buf, sizeof buf,
                  "mutation %-14s: %3zu applied, %3zu invalid, %3zu "
                  "detected, %zu missed\n",
                  to_string(kAllKinds[k]), m.applied, m.invalid, m.detected,
                  m.missed);
    out += buf;
  }
  out += ok() ? "campaign PASSED\n" : "campaign FAILED\n";
  return out;
}

}  // namespace loom::abv

#include "abv/campaign.hpp"

#include <cstdio>

#include "mon/monitors.hpp"
#include "psl/clause_monitor.hpp"

namespace loom::abv {
namespace {

constexpr MutationKind kAllKinds[5] = {
    MutationKind::Drop, MutationKind::Duplicate, MutationKind::SwapAdjacent,
    MutationKind::EarlyTrigger, MutationKind::StallDeadline};

sim::Time end_of(const spec::Trace& t) {
  return t.empty() ? sim::Time::zero() : t.back().time;
}

}  // namespace

CampaignResult run_campaign(const spec::Property& property,
                            spec::Alphabet& ab,
                            const CampaignOptions& options) {
  CampaignResult result;
  AlphabetCoverage alphabet_cov(property.alphabet());
  double recognizer_cov = 1.0;

  std::optional<psl::Encoding> encoding;
  if (options.check_viapsl) {
    encoding = psl::encode(property, 2000000, &ab);
  }

  for (std::size_t s = 0; s < options.seeds; ++s) {
    support::Rng rng(options.first_seed + s);
    const spec::Trace valid =
        generate_valid(property, ab, rng, options.stimuli);
    ++result.traces;
    result.events += valid.size();

    // Valid stimuli through the Drct monitor (with coverage sampling for
    // antecedents) and the oracle.
    auto monitor = mon::make_monitor(property);
    std::optional<RecognizerCoverage> rec_cov;
    if (property.is_antecedent()) {
      rec_cov.emplace(
          static_cast<const mon::AntecedentMonitor&>(*monitor));
    }
    for (const auto& ev : valid) {
      monitor->observe(ev.name, ev.time);
      alphabet_cov.record(ev.name);
      if (rec_cov) rec_cov->sample();
    }
    monitor->finish(end_of(valid));
    if (rec_cov) recognizer_cov = rec_cov->state_ratio();

    const auto ref = spec::reference_check(property, valid, end_of(valid));
    const bool monitor_ok = monitor->verdict() != mon::Verdict::Violated;
    if (monitor_ok && !ref.rejected()) ++result.valid_accepted;
    if (monitor_ok == ref.rejected()) ++result.oracle_disagreements;

    if (encoding) {
      psl::ClauseMonitor viapsl(*encoding);
      for (const auto& ev : valid) viapsl.observe(ev.name, ev.time);
      viapsl.finish(end_of(valid));
      if (!ref.rejected() && viapsl.verdict() == mon::Verdict::Violated) {
        ++result.viapsl_false_alarms;
      }
    }

    // Mutation phase.
    for (std::size_t k = 0; k < 5; ++k) {
      auto& stats = result.mutation[k];
      for (std::size_t m = 0; m < options.mutants_per_kind; ++m) {
        auto mutant = mutate(valid, kAllKinds[k], property, rng);
        if (!mutant) continue;
        ++stats.applied;
        const auto mref = spec::reference_check(property, mutant->trace,
                                                end_of(mutant->trace));
        if (!mref.rejected()) continue;
        ++stats.invalid;
        auto mmon = mon::make_monitor(property);
        for (const auto& ev : mutant->trace) {
          mmon->observe(ev.name, ev.time);
        }
        mmon->finish(end_of(mutant->trace));
        if (mmon->verdict() == mon::Verdict::Violated) {
          ++stats.detected;
        } else {
          ++stats.missed;
        }
      }
    }
  }

  result.alphabet_coverage = alphabet_cov.ratio();
  result.recognizer_state_coverage = recognizer_cov;
  return result;
}

std::string CampaignResult::report(const spec::Alphabet&) const {
  char buf[256];
  std::string out;
  std::snprintf(buf, sizeof buf,
                "campaign: %zu traces (%zu events), %zu accepted, "
                "%zu oracle disagreements, %zu ViaPSL false alarms\n",
                traces, events, valid_accepted, oracle_disagreements,
                viapsl_false_alarms);
  out += buf;
  std::snprintf(buf, sizeof buf,
                "coverage: alphabet %.0f%%, recognizer states %.0f%%\n",
                alphabet_coverage * 100.0,
                recognizer_state_coverage * 100.0);
  out += buf;
  for (std::size_t k = 0; k < 5; ++k) {
    const auto& m = mutation[k];
    std::snprintf(buf, sizeof buf,
                  "mutation %-14s: %3zu applied, %3zu invalid, %3zu "
                  "detected, %zu missed\n",
                  to_string(kAllKinds[k]), m.applied, m.invalid, m.detected,
                  m.missed);
    out += buf;
  }
  out += ok() ? "campaign PASSED\n" : "campaign FAILED\n";
  return out;
}

}  // namespace loom::abv

#include "abv/campaign.hpp"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <climits>
#include <cstdio>
#include <cstring>
#include <functional>
#include <optional>
#include <thread>

#include "mon/monitors.hpp"
#include "mon/snapshot.hpp"
#include "mon/vm.hpp"
#include "psl/clause_monitor.hpp"
#include "sim/scheduler.hpp"
#include "spec/parser.hpp"
#include "support/thread_pool.hpp"
#include "support/trace_cache.hpp"
#include "wire/payload.hpp"
#include "wire/process.hpp"

#if LOOM_WIRE_HAS_PROCESS
#include <csignal>
#include <poll.h>
#include <unistd.h>
#endif

namespace loom::abv {
namespace {

constexpr MutationKind kAllKinds[5] = {
    MutationKind::Drop, MutationKind::Duplicate, MutationKind::SwapAdjacent,
    MutationKind::EarlyTrigger, MutationKind::StallDeadline};

// A work unit is one cell of the sharded campaign space: slot 0 is a seed's
// valid-stimuli phase, slots 1..5 are the seed's batch of one mutation
// kind.  Units are independent by construction — each derives its own Rng
// stream from (seed, slot) — which is what makes the reduction
// order-independent and the engine deterministic under any thread count.
constexpr std::size_t kSlotsPerSeed = 6;

sim::Time end_of(const spec::Trace& t) {
  return t.empty() ? sim::Time::zero() : t.back().time;
}

// Everything a work unit needs, shared read-only across workers once
// run_campaigns() has finished its setup (noise names pre-interned,
// property plans compiled, ViaPSL encodings materialized).
struct CampaignJob {
  const spec::Property* property = nullptr;
  const PropertyPlan* plan = nullptr;
  std::size_t index = 0;  // position in run_campaigns' property list
};

// One per-seed cache entry: the valid trace plus — when incremental replay
// is on — the checkpoint ladder recorded while a throwaway monitor observes
// that trace exactly once.  checkpoints[k] is the monitor state after the
// first (k+1)*stride events; a mutant whose divergence position p admits a
// floor rung restores checkpoints[p/stride - 1] and replays only the
// suffix.  The ladder is a pure function of (property, seed, options), so
// it is deterministic no matter which unit's lookup builds it.
struct CachedSeedTrace {
  spec::Trace trace;
  std::vector<mon::Snapshot> checkpoints;
  std::size_t stride = 0;  // 0: no ladder (incremental off or stride 0)
};

// Per-seed valid-trace cache shared by every worker of one run_campaigns()
// call: keyed by (job, seed) so batch runs over several properties never
// alias, generated on first touch by whichever of the seed's six units gets
// there first.
using SeedTraceCache = support::TraceCache<CachedSeedTrace>;

// A unit's view of its seed's valid trace: the events, plus the checkpoint
// ladder when the entry came from the cache (null on the regenerate-per-
// unit baseline path, which has nowhere to keep a ladder).
struct SeedTraceRef {
  const spec::Trace* trace = nullptr;
  const CachedSeedTrace* cached = nullptr;
};

// Accumulator local to one shard; merged into the campaign result in shard
// index order after the pool drains.
struct ShardOutcome {
  CampaignResult partial;
  std::optional<AlphabetCoverage> alphabet;
  std::optional<RecognizerCoverage> recognizer;
};

struct Shard {
  std::size_t job = 0;
  std::size_t unit_begin = 0;  // within the job's seeds×slots space
  std::size_t unit_end = 0;
};

// Stamps the monitor a work unit checks with.  On the compiled path this is
// a cheap instantiation from the shared translate-once artifacts; on the
// legacy path it re-runs the full per-unit translation the pre-plan engine
// did (make_monitor re-plans the property, a ViaPSL unit re-encodes the
// clause set).  Either way the bytes that come out are identical — that is
// the compiled ≡ per-unit invariant of compiled_plan_diff_test.
std::unique_ptr<mon::Monitor> stamp_monitor(const CampaignJob& job,
                                            const CampaignOptions& options,
                                            const spec::Alphabet& ab,
                                            ShardOutcome& out) {
  ++out.partial.compile_stats.instances_stamped;
  const mon::CompiledProperty& compiled = job.plan->compiled;
  if (options.use_compiled_plans) return compiled.instantiate();
  if (compiled.chosen() == mon::Backend::ViaPSL) {
    return std::make_unique<psl::ClauseMonitor>(
        psl::encode(*job.property, compiled.max_clauses(), &ab));
  }
  if (compiled.chosen() == mon::Backend::Vm) {
    // compile_vm is pure, so the re-lowered program is byte-identical to
    // the compiled path's shared artifact.
    return std::make_unique<mon::VmMonitor>(mon::compile_vm(*job.property));
  }
  return mon::make_monitor(*job.property);
}

}  // namespace

// Per-worker scratch arena for the steady-state loop
// (CampaignOptions::reuse_scratch).  Two lifetimes coexist inside it:
//   - the *buffers* live for the worker: the mutant trace's capacity
//     ratchets up once and every later mutate_into reuses it; local_trace
//     is only a stable home for the per-unit generated trace on the
//     cache-off path (generation itself still allocates — it is the
//     non-default baseline knob);
//   - the *pool* (monitor, ViaPSL cross-check instance, replay host) is
//     scoped to one shard: begin_shard() drops it, so the draw/stamp
//     accounting is a pure function of the deterministic shard layout and
//     never of which worker ran which shard — that is what keeps the
//     instance counters identical between serial and parallel runs.
// Shards never span properties, so within a shard the pooled monitor's
// identity is stable and the hoisted replay host can keep borrowing it.
struct UnitScratch {
  MutationResult mutant;       // mutate_into target, capacity reused
  spec::Trace local_trace;     // valid trace when the seed cache is off
  std::unique_ptr<mon::Monitor> monitor;  // chosen-backend pool slot
  std::unique_ptr<mon::Monitor> viapsl;   // check_viapsl pool slot
  // Hoisted batched-replay host: one kernel + module per shard, reset
  // between mutants, watchdogs off (the kernel is never pumped, so an
  // armed entry could never fire — skipping it keeps the timed queue
  // empty).  Declaration order matters: the module borrows the scheduler
  // and is destroyed first.
  std::optional<sim::Scheduler> replay_sched;
  std::optional<mon::MonitorModule> replay_module;

  // Wave arena (lane-batched mutant replay, CampaignOptions::lane_width):
  // per-lane reusable mutant slots — each ratchets its capacity like
  // `mutant` — plus the VmLaneBatch the wave scheduler fills and runs, and
  // the per-wave trace/start scatter vectors.  Unlike the monitor pool the
  // batch survives shard boundaries: it borrows nothing (it shares
  // ownership of the program) and carries no draw accounting, so the wave
  // scheduler just rebuilds it whenever the shard's program or the lane
  // width differs from what it was built for — every lane is restored or
  // reset before it runs either way.
  std::vector<MutationResult> lane_mutants;
  std::unique_ptr<mon::VmLaneBatch> lane_batch;
  std::vector<const spec::Trace*> lane_traces;
  std::vector<std::size_t> lane_starts;
  std::vector<const mon::Snapshot*> lane_rungs;

  /// Drops every pooled instance; buffers keep their capacity.  Also the
  /// end-of-shard cleanup, so nothing borrowed (monitor, alphabet) can
  /// dangle past the campaign in a worker's thread-local scratch.
  void begin_shard() {
    replay_module.reset();
    replay_sched.reset();
    monitor.reset();
    viapsl.reset();
  }
};

namespace {

// Draws a pooled monitor instance for one work unit of the scratch path:
// the first draw of a shard stamps from the shared plan, every later draw
// resets the existing instance (reset ≡ fresh, mon_reset_reuse_test) —
// valid units and mutation units alike.  `skip_reset` elides the physical
// reset when the caller is about to restore() a checkpoint over the whole
// state anyway (restore overwrites every field a reset touches, and the
// snapshot fuzz covers restoring into a dirty instance); the reuse
// accounting still counts the logical draw either way.
mon::Monitor& draw_pooled(std::unique_ptr<mon::Monitor>& slot,
                          const CampaignJob& job, const CampaignOptions& options,
                          const spec::Alphabet& ab, mon::Backend backend,
                          ShardOutcome& out, bool skip_reset = false) {
  if (slot == nullptr) {
    if (backend == mon::Backend::ViaPSL) {
      slot = job.plan->compiled.instantiate(mon::Backend::ViaPSL);
      ++out.partial.compile_stats.instances_stamped;
    } else {
      slot = stamp_monitor(job, options, ab, out);
    }
  } else {
    if (!skip_reset) slot->reset();
    ++out.partial.compile_stats.instance_reuses;
  }
  return *slot;
}

// The scratch path draws from the pool only when instances are stamped
// from shared artifacts; the legacy translate-per-unit baseline keeps its
// fresh-translation-per-unit behavior even with scratch buffers on.
bool pool_monitors(const CampaignOptions& options) {
  return options.reuse_scratch && options.use_compiled_plans;
}

// The valid trace of seed `s` is a pure function of (first_seed + s): both
// the valid phase and every mutation unit of the seed regenerate it from
// stream 0, so no cross-unit state needs sharing.
spec::Trace seed_trace(const CampaignJob& job, spec::Alphabet& ab,
                       const CampaignOptions& options, std::size_t s) {
  support::Rng rng = support::Rng::stream(options.first_seed + s, 0);
  return generate_valid(*job.property, ab, rng, options.stimuli);
}

// The ladder only exists where it can live (the per-seed cache entry) and
// where it has rungs to stand on (a positive stride).
bool incremental_enabled(const CampaignOptions& options) {
  return options.incremental_replay && options.reuse_traces &&
         options.checkpoint_stride > 0;
}

// Records the checkpoint ladder for one cached seed trace: a throwaway
// monitor stamped from the shared plan observes the valid trace once,
// snapshotting after every `stride` events.  The pass is engine overhead of
// the cache-entry build (like generation itself): its instance and
// Figure-6 stats are deliberately not accounted anywhere, so the ladder
// knob cannot move a semantic counter.
void build_checkpoint_ladder(const CampaignJob& job,
                             const CampaignOptions& options,
                             CachedSeedTrace& entry) {
  entry.stride = options.checkpoint_stride;
  const std::size_t rungs = entry.trace.size() / entry.stride;
  if (rungs == 0) return;
  entry.checkpoints.resize(rungs);
  const std::unique_ptr<mon::Monitor> monitor =
      job.plan->compiled.instantiate();
  std::size_t next = 0;
  for (std::size_t i = 0; i < entry.trace.size(); ++i) {
    monitor->observe(entry.trace[i].name, entry.trace[i].time);
    if ((i + 1) % entry.stride == 0) {
      monitor->snapshot(entry.checkpoints[next]);
      if (++next == rungs) break;  // ladder full; the tail has no rung
    }
  }
}

// Hands out the seed's valid trace: from the shared cache when trace reuse
// is on (whichever unit asks first generates — and, with incremental
// replay, records the checkpoint ladder — then inserts; the rest hit),
// regenerated into `local` otherwise.  Cached or not, the trace bytes are
// the same — a pure function of (first_seed + s).
SeedTraceRef obtain_seed_trace(const CampaignJob& job, spec::Alphabet& ab,
                               const CampaignOptions& options, std::size_t s,
                               SeedTraceCache* cache, ShardOutcome& out,
                               spec::Trace& local) {
  if (cache == nullptr) {
    local = seed_trace(job, ab, options, s);
    return {&local, nullptr};
  }
  bool inserted = false;
  const std::uint64_t key =
      static_cast<std::uint64_t>(job.index) * options.seeds + s;
  const CachedSeedTrace& entry = cache->get_or_emplace(
      key,
      [&] {
        CachedSeedTrace fresh;
        fresh.trace = seed_trace(job, ab, options, s);
        if (incremental_enabled(options)) {
          build_checkpoint_ladder(job, options, fresh);
        }
        return fresh;
      },
      &inserted);
  if (inserted) {
    ++out.partial.trace_cache_misses;
  } else {
    ++out.partial.trace_cache_hits;
  }
  return {&entry.trace, &entry};
}

// The reference oracle for one unit: the scratch path hands the compiled
// OrderingPlan back to the checker instead of letting it re-plan the
// property per call — the plan is a pure function of the property, so the
// verdict bytes are identical (spec/reference.hpp).
spec::RefResult oracle_check(const CampaignJob& job,
                             const CampaignOptions& options,
                             const spec::Trace& trace, sim::Time end_time) {
  if (options.reuse_scratch) {
    return spec::reference_check(*job.property, job.plan->compiled.plan(),
                                 trace, end_time);
  }
  return spec::reference_check(*job.property, trace, end_time);
}

void run_valid_unit(const CampaignJob& job, spec::Alphabet& ab,
                    const CampaignOptions& options, std::size_t s,
                    SeedTraceCache* cache, UnitScratch& scratch,
                    ShardOutcome& out) {
  const spec::Property& property = *job.property;
  const spec::Trace& valid = *obtain_seed_trace(job, ab, options, s, cache,
                                                out, scratch.local_trace)
                                  .trace;
  ++out.partial.traces;
  out.partial.events += valid.size();

  // Scratch path: draw from the shard's pool (stamp once, reset after);
  // fresh path: stamp a throwaway instance per unit like the pre-pool
  // engine.  reset ≡ fresh makes the two indistinguishable byte-for-byte.
  std::unique_ptr<mon::Monitor> fresh;
  mon::Monitor* monitor = nullptr;
  if (pool_monitors(options)) {
    monitor = &draw_pooled(scratch.monitor, job, options, ab,
                           mon::Backend::Auto, out);
  } else {
    fresh = stamp_monitor(job, options, ab, out);
    monitor = fresh.get();
  }
  // Recognizer-state coverage samples the Drct antecedent recognizer; a
  // ViaPSL-backed campaign has no such structure to sample.
  std::optional<RecognizerCoverage> rec_cov;
  if (property.is_antecedent() &&
      job.plan->compiled.chosen() == mon::Backend::Drct) {
    rec_cov.emplace(static_cast<const mon::AntecedentMonitor&>(*monitor));
  }
  for (const auto& ev : valid) {
    monitor->observe(ev.name, ev.time);
    out.alphabet->record(ev.name);
    if (rec_cov) rec_cov->sample();
  }
  monitor->finish(end_of(valid));
  if (rec_cov) {
    rec_cov->detach();  // outlives this unit's monitor from here on
    if (out.recognizer) {
      out.recognizer->merge(*rec_cov);
    } else {
      out.recognizer.emplace(std::move(*rec_cov));
    }
  }

  const auto ref = oracle_check(job, options, valid, end_of(valid));
  const bool monitor_ok = monitor->verdict() != mon::Verdict::Violated;
  if (monitor_ok && !ref.rejected()) ++out.partial.valid_accepted;
  if (monitor_ok == ref.rejected()) ++out.partial.oracle_disagreements;
  out.partial.monitor_stats.merge(monitor->stats());

  if (options.check_viapsl) {
    // The cross-check always instantiates from the shared clause set (the
    // pre-plan engine shared its encodings the same way); the scratch path
    // additionally pools the instance per shard.
    std::unique_ptr<mon::Monitor> fresh_viapsl;
    mon::Monitor* viapsl = nullptr;
    if (pool_monitors(options)) {
      viapsl = &draw_pooled(scratch.viapsl, job, options, ab,
                            mon::Backend::ViaPSL, out);
    } else {
      fresh_viapsl = job.plan->compiled.instantiate(mon::Backend::ViaPSL);
      ++out.partial.compile_stats.instances_stamped;
      viapsl = fresh_viapsl.get();
    }
    for (const auto& ev : valid) viapsl->observe(ev.name, ev.time);
    viapsl->finish(end_of(valid));
    if (!ref.rejected() && viapsl->verdict() == mon::Verdict::Violated) {
      ++out.partial.viapsl_false_alarms;
    }
    out.partial.monitor_stats.merge(viapsl->stats());
  }
}

// Lane-batched wave execution of one mutation unit's inner loop (the
// tentpole of CampaignOptions::lane_width): mutants are mutated into
// per-lane scratch slots until the wave holds lane_width reference-rejected
// mutants (or the unit runs out), each lane is restored from its own
// checkpoint-ladder floor rung — the same mon::Snapshot rungs the scalar
// path restores, written by a pooled VmMonitor and read back into a batch
// lane, which the shared snapshot format makes exact — and the whole wave
// advances through VmLaneBatch's block-lockstep with per-lane
// suffix starts.  Verdicts, kill accounting and MonitorStats then merge
// per lane in buffering order, which is exactly the scalar mutant order.
//
// Byte-for-byte contract (the eighth invariant, campaign_lane_diff_test):
// every counter this produces — semantic and diagnostic alike, minus the
// wave accounting itself — equals the scalar loop's.  Three facts carry
// that: mutate_into and the oracle run before buffering, in mutant order,
// drawing the same Rng stream; a batch lane is bit-equal to a solo
// VmMonitor (mon_bytecode_test's lockstep ≡ solo); and the logical
// per-mutant pool draw is replicated on the shard's pooled slot, so the
// stamp/reuse accounting never depends on the lane knob.
void run_mutation_wave(const CampaignJob& job, spec::Alphabet& ab,
                       const CampaignOptions& options,
                       const spec::Trace& valid, const CachedSeedTrace* ladder,
                       std::size_t k, MutationStats& stats, support::Rng& rng,
                       UnitScratch& scratch, ShardOutcome& out) {
  const spec::Property& property = *job.property;
  const mon::CompiledProperty& compiled = job.plan->compiled;
  const std::size_t width = options.lane_width;
  if (scratch.lane_mutants.size() < width) scratch.lane_mutants.resize(width);
  if (scratch.lane_batch == nullptr ||
      &scratch.lane_batch->program() != compiled.vm_program_shared().get() ||
      scratch.lane_batch->lanes() != width) {
    // Worker-pooled, beyond shard boundaries: the batch shares ownership
    // of the program and every lane is restored/reset before running, so
    // only a program or width change forces a rebuild.
    scratch.lane_batch = std::make_unique<mon::VmLaneBatch>(
        compiled.vm_program_shared(), width);
  }
  mon::VmLaneBatch& batch = *scratch.lane_batch;
  scratch.lane_traces.clear();
  scratch.lane_starts.clear();
  scratch.lane_rungs.clear();

  const auto flush = [&] {
    const std::size_t wave = scratch.lane_traces.size();
    if (wave == 0) return;
    ++out.partial.lane_waves;
    out.partial.lanes_filled += wave;
    out.partial.lane_capacity += width;
    for (std::size_t lane = 0; lane < wave; ++lane) {
      // Replicate the scalar path's logical pool draw: the wave replays
      // through batch lanes, but the draw accounting — and the pooled slot
      // itself, which this shard's valid units share — must not depend on
      // the lane knob.  The physical reset is skipped (the lane, not the
      // slot, carries the mutant's state); the next unit to actually use
      // the slot resets or restores it first, like every unit does.
      draw_pooled(scratch.monitor, job, options, ab, mon::Backend::Auto, out,
                  /*skip_reset=*/true);
      const mon::Snapshot* rung = scratch.lane_rungs[lane];
      if (rung != nullptr) {
        batch.restore(lane, *rung);
        ++out.partial.checkpoint_hits;
        out.partial.events_skipped += scratch.lane_starts[lane];
      } else {
        batch.reset(lane);
      }
    }
    batch.run(scratch.lane_traces, scratch.lane_starts);
    for (std::size_t lane = 0; lane < wave; ++lane) {
      batch.finish(lane, end_of(*scratch.lane_traces[lane]));
      if (batch.verdict(lane) == mon::Verdict::Violated) {
        ++stats.detected;
      } else {
        ++stats.missed;
      }
      out.partial.monitor_stats.merge(batch.stats(lane));
    }
    scratch.lane_traces.clear();
    scratch.lane_starts.clear();
    scratch.lane_rungs.clear();
  };

  for (std::size_t m = 0; m < options.mutants_per_kind; ++m) {
    // Fill the next free lane slot; a mutant the oracle accepts (or a kind
    // that does not apply) leaves the slot free for the next draw.
    MutationResult& mutant = scratch.lane_mutants[scratch.lane_traces.size()];
    if (!mutate_into(valid, kAllKinds[k], property, compiled.alphabet(), rng,
                     mutant)) {
      continue;
    }
    ++stats.applied;
    const auto mref =
        oracle_check(job, options, mutant.trace, end_of(mutant.trace));
    if (!mref.rejected()) continue;
    ++stats.invalid;
    // Floor-rung resolution, verbatim from the scalar path.
    std::size_t replay_begin = 0;
    const mon::Snapshot* rung = nullptr;
    if (ladder != nullptr && !ladder->checkpoints.empty()) {
      const std::size_t whole_strides = mutant.position / ladder->stride;
      const std::size_t rungs =
          std::min(whole_strides, ladder->checkpoints.size());
      if (rungs > 0) {
        rung = &ladder->checkpoints[rungs - 1];
        replay_begin = rungs * ladder->stride;
      }
    }
    LOOM_DASSERT(replay_begin <= mutant.trace.size());
    scratch.lane_traces.push_back(&mutant.trace);
    scratch.lane_starts.push_back(replay_begin);
    scratch.lane_rungs.push_back(rung);
    if (scratch.lane_traces.size() == width) flush();
  }
  flush();  // the unit's final, usually partial, wave
}

void run_mutation_unit(const CampaignJob& job, spec::Alphabet& ab,
                       const CampaignOptions& options, std::size_t s,
                       std::size_t slot, SeedTraceCache* cache,
                       UnitScratch& scratch, ShardOutcome& out) {
  LOOM_DASSERT(slot >= 1 && slot < kSlotsPerSeed);
  const spec::Property& property = *job.property;
  const SeedTraceRef seed_ref = obtain_seed_trace(job, ab, options, s, cache,
                                                  out, scratch.local_trace);
  const spec::Trace& valid = *seed_ref.trace;
  // Checkpoint ladder for suffix-only replay (null without the cache or
  // with the knob off — those configurations replay every mutant in full).
  const CachedSeedTrace* ladder =
      options.incremental_replay && seed_ref.cached != nullptr &&
              seed_ref.cached->stride != 0
          ? seed_ref.cached
          : nullptr;
  const std::size_t k = slot - 1;
  auto& stats = out.partial.mutation[k];
  support::Rng rng = support::Rng::stream(options.first_seed + s, slot);
  const bool pooled = pool_monitors(options);
  // Wave execution wants lanes to fill (lane_width > 1), VM frames to
  // restore into (chosen backend Vm), the pooled arena (the lane batch is
  // pool machinery) and batched replay (the wave IS a batch).  Any other
  // combination runs the scalar loop below — silently, because Auto may
  // legitimately resolve elsewhere; a *forced* non-Vm backend with
  // lane_width > 1 was already rejected by run_campaigns.
  if (options.lane_width > 1 && pooled && options.batch_replay &&
      job.plan->compiled.chosen() == mon::Backend::Vm) {
    run_mutation_wave(job, ab, options, valid, ladder, k, stats, rng, scratch,
                      out);
    return;
  }
  // Fresh-path monitor: stamped per unit (compiled) or per mutant (legacy
  // translation), exactly like the pre-scratch engine.  The scratch path
  // draws from the shard pool instead.
  std::unique_ptr<mon::Monitor> fresh;
  std::optional<MutationResult> fresh_mutant;
  for (std::size_t m = 0; m < options.mutants_per_kind; ++m) {
    // Scratch path: write the mutant into the worker's reusable buffer
    // (identical bytes and Rng draws — mutate() is the same code).  The
    // compiled alphabet snapshot saves the per-call NameSet rebuild.
    const MutationResult* mutant = nullptr;
    if (options.reuse_scratch) {
      if (!mutate_into(valid, kAllKinds[k], property,
                       job.plan->compiled.alphabet(), rng, scratch.mutant)) {
        continue;
      }
      mutant = &scratch.mutant;
    } else {
      fresh_mutant = mutate(valid, kAllKinds[k], property, rng);
      if (!fresh_mutant) continue;
      mutant = &*fresh_mutant;
    }
    ++stats.applied;
    const auto mref =
        oracle_check(job, options, mutant->trace, end_of(mutant->trace));
    if (!mref.rejected()) continue;
    ++stats.invalid;
    // Incremental replay: MutationResult::position guarantees the mutant
    // shares its first `position` events with the valid trace, so the
    // monitor state after that prefix is exactly what the ladder recorded.
    // Resolve the floor rung (the highest checkpoint at or below the
    // position) before drawing the monitor: when a restore will overwrite
    // the whole state, the draw below skips its redundant reset pass.
    std::size_t replay_begin = 0;
    const mon::Snapshot* rung = nullptr;
    if (ladder != nullptr && !ladder->checkpoints.empty()) {
      const std::size_t whole_strides = mutant->position / ladder->stride;
      const std::size_t rungs =
          std::min(whole_strides, ladder->checkpoints.size());
      if (rungs > 0) {
        rung = &ladder->checkpoints[rungs - 1];
        replay_begin = rungs * ladder->stride;
      }
    }
    mon::Monitor* mmon = nullptr;
    if (pooled) {
      mmon = &draw_pooled(scratch.monitor, job, options, ab,
                          mon::Backend::Auto, out,
                          /*skip_reset=*/rung != nullptr);
    } else if (fresh == nullptr || !options.use_compiled_plans) {
      fresh = stamp_monitor(job, options, ab, out);
      mmon = fresh.get();
    } else {
      if (rung == nullptr) fresh->reset();
      ++out.partial.compile_stats.instance_reuses;
      mmon = fresh.get();
    }
    // The restored state already carries the prefix's stats, verdict and
    // timing registers, so replaying only [floor, end) produces bytes that
    // match a full replay exactly (campaign_incremental_diff_test).
    if (rung != nullptr) {
      mmon->restore(*rung);
      LOOM_DASSERT(replay_begin <= mutant->trace.size());
      ++out.partial.checkpoint_hits;
      out.partial.events_skipped += replay_begin;
    }
    if (options.batch_replay) {
      if (options.reuse_scratch && pooled) {
        // Hoisted replay host: one kernel + module per shard, reset
        // between mutants, watchdogs off (the kernel is never pumped, so
        // the armed entry could never fire — finish() still runs every
        // deadline check, exactly as on the per-event path).
        if (!scratch.replay_module) {
          scratch.replay_sched.emplace();
          scratch.replay_module.emplace(*scratch.replay_sched, "replay",
                                        *mmon, ab);
          scratch.replay_module->set_arm_watchdogs(false);
        } else {
          scratch.replay_module->reset();
        }
        scratch.replay_module->observe_batch(
            mutant->trace, mon::MonitorModule::BatchPolicy::ReplayAll,
            replay_begin);
      } else {
        // Fresh baseline: in-simulation replay host scoped per mutant —
        // whatever the module armed dies with it right here.
        sim::Scheduler replay_sched;
        mon::MonitorModule module(replay_sched, "replay", *mmon, ab);
        module.observe_batch(mutant->trace,
                             mon::MonitorModule::BatchPolicy::ReplayAll,
                             replay_begin);
      }
    } else {
      for (std::size_t e = replay_begin; e < mutant->trace.size(); ++e) {
        mmon->observe(mutant->trace[e].name, mutant->trace[e].time);
      }
    }
    mmon->finish(end_of(mutant->trace));
    if (mmon->verdict() == mon::Verdict::Violated) {
      ++stats.detected;
    } else {
      ++stats.missed;
    }
    out.partial.monitor_stats.merge(mmon->stats());
  }
}

void run_shard(const std::vector<CampaignJob>& jobs, spec::Alphabet& ab,
               const CampaignOptions& options, const Shard& shard,
               SeedTraceCache* cache, UnitScratch& scratch,
               ShardOutcome& out) {
  const CampaignJob& job = jobs[shard.job];
  // Fresh pool + replay host per shard (buffers keep their capacity): the
  // instance accounting stays a pure function of the shard layout, and
  // nothing borrowed survives in a worker's scratch past this campaign.
  scratch.begin_shard();
  out.alphabet.emplace(job.property->alphabet());
  // Workers share the one alphabet without locks or copies: setup
  // pre-interned every name stimuli generation touches, and noise_pool()
  // looks names up before interning, so generation is read-only here.
  for (std::size_t u = shard.unit_begin; u < shard.unit_end; ++u) {
    const std::size_t s = u / kSlotsPerSeed;
    const std::size_t slot = u % kSlotsPerSeed;
    if (slot == 0) {
      run_valid_unit(job, ab, options, s, cache, scratch, out);
    } else {
      run_mutation_unit(job, ab, options, s, slot, cache, scratch, out);
    }
  }
  scratch.begin_shard();  // end-of-shard cleanup (see UnitScratch)
}

// Runs every listed shard in this process — serially or on a work-stealing
// pool — filling outcomes[i] for shard i.  Shared by run_campaigns (the
// workers=0 path) and run_campaign_worker (each worker process runs its
// assigned slice through exactly this code, which is half of why
// in-process ≡ cross-process holds byte for byte).
void run_shards_in_process(const std::vector<CampaignJob>& jobs,
                           spec::Alphabet& ab, const CampaignOptions& options,
                           const std::vector<Shard>& shards,
                           std::size_t threads,
                           std::vector<ShardOutcome>& outcomes) {
  std::optional<SeedTraceCache> trace_cache;
  if (options.reuse_traces) trace_cache.emplace(/*shard_count=*/4 * threads);
  SeedTraceCache* cache = trace_cache ? &*trace_cache : nullptr;
  if (threads <= 1 || shards.size() <= 1) {
    UnitScratch scratch;  // one worker: the caller's thread
    for (std::size_t i = 0; i < shards.size(); ++i) {
      run_shard(jobs, ab, options, shards[i], cache, scratch, outcomes[i]);
    }
  } else {
    support::ThreadPool pool(std::min(threads, shards.size()));
    pool.for_each_index(shards.size(), [&](std::size_t i) {
      // One arena per worker thread, reused across every shard the worker
      // happens to run (and across campaigns on the caller's thread): the
      // buffers' capacity ratchets, while run_shard scopes the pooled
      // instances so the scratch never outlives anything it borrows.
      static thread_local UnitScratch scratch;
      run_shard(jobs, ab, options, shards[i], cache, scratch, outcomes[i]);
    });
  }
}

#if LOOM_WIRE_HAS_PROCESS

// How long a worker gets between SIGTERM and SIGKILL when the supervisor
// retires it, and how long a Done-frame worker gets to actually exit.
constexpr long kKillGraceMs = 500;

// Supervision bookkeeping run_shards_cross_process hands back to
// run_campaigns: retry counts per property (CampaignResult::worker_retries,
// an engine diagnostic) and, under allow_partial, the shards that were
// never executed (CampaignResult::shard_failures, the semantic record of a
// degraded run).
struct SupervisionInfo {
  std::vector<std::size_t> retries_by_job;
  std::vector<CampaignResult::ShardFailure> failures;
};

// describe_wait_status plus the pinned exec-failure exit codes: 127 is
// execvp itself failing (missing or non-executable worker binary), 126 the
// child's stdin/stdout setup failing before exec — both mean the worker
// command could not be executed at all, which deserves a plainer sentence
// than "exited with code 127".
std::string describe_worker_exit(int status) {
  std::string text = wire::describe_wait_status(status);
  const int code = wire::exit_code(status);
  if (code == kWorkerExitExecMissing) {
    text +=
        "; the worker command could not be executed "
        "(execvp failed: missing or non-executable binary)";
  } else if (code == kWorkerExitExecSetup) {
    text +=
        "; the worker command could not be executed "
        "(stdin/stdout setup failed before exec)";
  }
  return text;
}

// Slots one verified partial back into `outcomes` at its shard index —
// after which the merge loop cannot tell it from an in-process outcome.
void install_partial(const std::vector<CampaignJob>& jobs,
                     wire::WorkerPartialData& part,
                     std::vector<ShardOutcome>& outcomes) {
  ShardOutcome& out = outcomes[static_cast<std::size_t>(part.shard)];
  out.partial = part.partial;
  AlphabetCoverage cov(jobs[part.job].property->alphabet());
  for (std::size_t n = 0; n < part.alphabet_seen.size(); ++n) {
    if (part.alphabet_seen[n]) cov.record(static_cast<spec::Name>(n));
  }
  out.alphabet.emplace(std::move(cov));
  if (part.has_recognizer) {
    out.recognizer.emplace(std::move(part.recognizer_rows));
  }
}

// The request parts every worker shares: the alphabet's names in id order
// (re-interning them in that order reproduces the parent's dense ids
// exactly), each property's normalized text, and the options with workers
// zeroed — a worker never recursively forks its own fleet.
wire::WorkerRequestData make_base_request(const std::vector<CampaignJob>& jobs,
                                          const spec::Alphabet& ab,
                                          const CampaignOptions& options) {
  wire::WorkerRequestData base;
  base.names.reserve(ab.size());
  for (std::size_t i = 0; i < ab.size(); ++i) {
    const spec::Name n = static_cast<spec::Name>(i);
    base.names.push_back(ab.text(n));
    base.directions.push_back(static_cast<std::uint8_t>(ab.direction(n)));
  }
  for (const auto& job : jobs) {
    base.properties.push_back(spec::to_string(*job.property, ab));
  }
  base.options = options;
  base.options.workers = 0;
  base.options.plan_cache = nullptr;
  return base;
}

// Frames one worker's request: the shared base plus its round-robin shard
// slice.  `clear_fault` builds the retry variant — the supervisor
// re-dispatches with the fault disarmed, so a retried attempt runs clean
// (that is what makes faulted-then-retried ≡ clean hold byte for byte).
std::vector<std::uint8_t> frame_request(
    const wire::WorkerRequestData& base, const std::vector<std::size_t>& mine,
    const std::vector<Shard>& shards, bool clear_fault) {
  wire::WorkerRequestData req = base;
  if (clear_fault) req.options.worker_fault = WorkerFault::None;
  req.shards.reserve(mine.size());
  for (const std::size_t i : mine) {
    req.shards.push_back(
        {i, shards[i].job, shards[i].unit_begin, shards[i].unit_end});
  }
  wire::Encoder enc;
  wire::encode_worker_request(enc, req);
  std::vector<std::uint8_t> framed;
  wire::write_frame(framed, wire::Payload::WorkerRequest, enc);
  return framed;
}

// Tears the worker fleet down — both pipe ends closed so a blocked child
// dies on EOF/EPIPE instead of hanging, every child reaped — and raises
// WorkerFailure.  Nothing partial has been merged when this throws: both
// drains buffer a worker's partials until its clean Done frame.
[[noreturn]] void fail_workers(std::vector<wire::WorkerProcess>& procs,
                               const std::string& message) {
  for (auto& p : procs) {
    p.close_to_child();
    p.close_from_child();
    p.wait();
  }
  throw WorkerFailure("cross-process campaign: " + message);
}

// The pre-supervision drain (CampaignOptions::supervised == false): one
// blocking FdFrameReader per worker, drained sequentially, any failure
// fatal.  Kept alive as the differential baseline the supervised path is
// compared against (campaign_supervision_test) and as the yardstick
// BM_WorkerSupervision prices the timed drain with.
void run_shards_legacy(const std::vector<CampaignJob>& jobs,
                       const CampaignOptions& options,
                       const std::vector<Shard>& shards,
                       const std::vector<std::vector<std::size_t>>& assigned,
                       const wire::WorkerRequestData& base,
                       std::vector<ShardOutcome>& outcomes) {
  const std::size_t workers = assigned.size();
  std::vector<wire::WorkerProcess> procs;
  procs.reserve(workers);
  for (std::size_t w = 0; w < workers; ++w) {
    // Fork-only children must close the parent-side pipe ends of their
    // already-spawned siblings: a sibling holding a read end open would
    // swallow the EOF the parent relies on (exec-mode pipes are O_CLOEXEC,
    // so the list is only load-bearing on the no-exec path).
    std::vector<int> inherited;
    for (const auto& p : procs) {
      if (p.to_child >= 0) inherited.push_back(p.to_child);
      if (p.from_child >= 0) inherited.push_back(p.from_child);
    }
    try {
      procs.push_back(wire::spawn_worker(
          options.worker_command,
          [](int in, int out) { return run_campaign_worker(in, out); }, w,
          inherited));
    } catch (const std::exception& e) {
      fail_workers(procs, e.what());
    }
  }

  // Write every request first, then drain the streams one worker at a
  // time.  No deadlock is possible: requests are small, and a worker reads
  // its whole request before writing anything; a worker blocked on a full
  // response pipe simply waits until its drain turn comes.
  for (std::size_t w = 0; w < workers; ++w) {
    const std::vector<std::uint8_t> framed =
        frame_request(base, assigned[w], shards, /*clear_fault=*/false);
    if (!wire::write_all(procs[w].to_child, framed.data(), framed.size())) {
      fail_workers(procs, "worker " + std::to_string(w) +
                              ": request write failed (worker gone?)");
    }
    procs[w].close_to_child();
  }

  std::vector<bool> filled(shards.size(), false);
  for (std::size_t w = 0; w < workers; ++w) {
    const std::string who = "worker " + std::to_string(w);
    // Buffer this worker's partials; nothing lands in `outcomes` before
    // the worker's clean Done frame, matching partial count and exit 0.
    std::vector<wire::WorkerPartialData> partials;
    std::uint64_t done_count = 0;
    bool done = false;
    wire::FdFrameReader reader(procs[w].from_child);
    while (!done) {
      wire::Frame frame;
      wire::DecodeError err;
      const auto st = reader.next(frame, err);
      if (st == wire::FdFrameReader::Status::Eof) {
        const int status = procs[w].wait();
        fail_workers(procs, who + ": stream ended before its Done frame (" +
                                describe_worker_exit(status) + ")");
      }
      if (st != wire::FdFrameReader::Status::Frame) {
        fail_workers(procs, who + ": " + err.to_string());
      }
      wire::Decoder d(frame.data, frame.size);
      switch (frame.tag) {
        case wire::Payload::WorkerPartial: {
          partials.emplace_back();
          if (!wire::decode_worker_partial(d, partials.back())) {
            fail_workers(procs, who + ": " + d.error().to_string());
          }
          if (!d.exhausted()) {
            fail_workers(procs,
                         who + ": trailing bytes after a partial payload");
          }
          break;
        }
        case wire::Payload::WorkerDone: {
          if (!wire::decode_worker_done(d, done_count) || !d.exhausted()) {
            fail_workers(procs, who + ": malformed Done frame");
          }
          done = true;
          break;
        }
        case wire::Payload::WorkerError: {
          std::string message;
          if (!wire::decode_worker_error(d, message)) {
            message = "(malformed error frame)";
          }
          fail_workers(procs, who + " reported: " + message);
        }
        default:
          fail_workers(procs, who + ": unexpected " +
                                  wire::to_string(frame.tag) + " frame");
      }
    }
    procs[w].close_from_child();
    const int status = procs[w].wait();
    if (wire::exit_code(status) != kWorkerExitOk) {
      fail_workers(procs, who + " " + describe_worker_exit(status));
    }
    if (done_count != partials.size() ||
        partials.size() != assigned[w].size()) {
      fail_workers(
          procs, who + ": returned " + std::to_string(partials.size()) +
                     " partials for " + std::to_string(assigned[w].size()) +
                     " assigned shards");
    }
    // Clean stream, matching count, clean exit: only now do the partials
    // become shard outcomes, at the indices the in-process engine fills.
    for (auto& part : partials) {
      const std::size_t i = static_cast<std::size_t>(part.shard);
      if (i >= shards.size() || i % workers != w || filled[i] ||
          part.job != shards[i].job) {
        fail_workers(procs, who + ": partial for foreign shard " +
                                std::to_string(part.shard));
      }
      filled[i] = true;
      install_partial(jobs, part, outcomes);
    }
  }
}

// The supervised drain: every worker's response pipe goes O_NONBLOCK, one
// poll(2) loop multiplexes all the streams (a slow worker cannot hide a
// sibling's failure), a per-frame deadline (CampaignOptions::
// worker_timeout_ms, re-armed on each completed frame) retires workers
// that stall or trickle, and a retired worker's shards are re-dispatched
// to a fresh fault-free process up to CampaignOptions::worker_retries
// times.  Only a clean Done merges; exhausted budgets either throw
// WorkerFailure or — under allow_partial — record the slot's shards in
// SupervisionInfo::failures and let the rest of the campaign stand.
void run_shards_supervised(const std::vector<CampaignJob>& jobs,
                           const CampaignOptions& options,
                           const std::vector<Shard>& shards,
                           const std::vector<std::vector<std::size_t>>& assigned,
                           const wire::WorkerRequestData& base,
                           std::vector<ShardOutcome>& outcomes,
                           SupervisionInfo& sup) {
  using Clock = std::chrono::steady_clock;
  const std::size_t workers = assigned.size();
  const long timeout_ms = static_cast<long>(options.worker_timeout_ms);

  struct Slot {
    wire::WorkerProcess proc;
    std::optional<wire::FdFrameReader> reader;
    std::vector<std::uint8_t> first_request;  // fault armed (if any)
    std::vector<std::uint8_t> retry_request;  // fault disarmed
    std::vector<wire::WorkerPartialData> partials;
    std::vector<bool> got;  // per assigned shard: partial received
    std::size_t attempts = 0;
    enum class State { Draining, Done, Failed } state = State::Draining;
    std::string diagnostic;
    Clock::time_point frame_deadline{};
  };

  std::vector<Slot> slots(workers);
  // The distinct properties each slot's shards belong to: a retry is
  // charged to every property the re-dispatched slice serves.
  std::vector<std::vector<std::size_t>> slot_jobs(workers);
  for (std::size_t w = 0; w < workers; ++w) {
    for (const std::size_t i : assigned[w]) {
      auto& js = slot_jobs[w];
      if (std::find(js.begin(), js.end(), shards[i].job) == js.end()) {
        js.push_back(shards[i].job);
      }
    }
    slots[w].first_request =
        frame_request(base, assigned[w], shards, /*clear_fault=*/false);
    slots[w].retry_request =
        base.options.worker_fault == WorkerFault::None
            ? slots[w].first_request
            : frame_request(base, assigned[w], shards, /*clear_fault=*/true);
  }

  const auto who_of = [](std::size_t w) {
    return "worker " + std::to_string(w);
  };

  // Parent-side failure (spawn, fcntl, poll): tear everything down and
  // throw — that is resource exhaustion, not a worker fault, so neither
  // the retry budget nor allow_partial applies.
  const auto fail_all = [&](const std::string& message) {
    for (auto& s : slots) s.proc.terminate(kKillGraceMs);
    throw WorkerFailure("cross-process campaign: " + message);
  };

  // Every parent-side pipe end currently open across the fleet: the close
  // list a fresh fork-only child runs before child_main, so no sibling
  // relationship can swallow an EOF.
  const auto open_parent_fds = [&]() {
    std::vector<int> fds;
    for (const auto& s : slots) {
      if (s.proc.to_child >= 0) fds.push_back(s.proc.to_child);
      if (s.proc.from_child >= 0) fds.push_back(s.proc.from_child);
    }
    return fds;
  };

  // Spawns (or respawns) slot w and writes its request.  False — with the
  // slot's diagnostic set — when the fresh worker refused the request
  // write, which counts as that attempt failing.
  const auto dispatch = [&](std::size_t w) -> bool {
    Slot& slot = slots[w];
    ++slot.attempts;
    try {
      slot.proc = wire::spawn_worker(
          options.worker_command,
          [](int in, int out) { return run_campaign_worker(in, out); }, w,
          open_parent_fds());
    } catch (const std::exception& e) {
      fail_all(e.what());
    }
    if (!wire::set_nonblocking(slot.proc.from_child)) {
      fail_all(who_of(w) + ": could not set O_NONBLOCK on the response pipe");
    }
    const auto& framed =
        slot.attempts == 1 ? slot.first_request : slot.retry_request;
    if (!wire::write_all(slot.proc.to_child, framed.data(), framed.size())) {
      slot.diagnostic = "request write failed (worker gone?)";
      return false;
    }
    slot.proc.close_to_child();
    slot.reader.emplace(slot.proc.from_child);
    slot.partials.clear();
    slot.got.assign(assigned[w].size(), false);
    slot.state = Slot::State::Draining;
    if (timeout_ms > 0) {
      slot.frame_deadline =
          Clock::now() + std::chrono::milliseconds(timeout_ms);
    }
    return true;
  };

  // Retires slot w's current worker: SIGTERM→grace→SIGKILL (a Hang-faulted
  // worker ignores the SIGTERM and dies only to the escalation), render
  // the failure over the final wait status, then spend the retry budget on
  // fresh fault-free dispatches.  An exhausted budget marks the slot
  // Failed under allow_partial and tears the campaign down otherwise.
  const auto retire = [&](std::size_t w,
                          const std::function<std::string(int)>& describe) {
    Slot& slot = slots[w];
    slot.reader.reset();
    std::string message = describe(slot.proc.terminate(kKillGraceMs));
    while (slot.attempts <= options.worker_retries) {
      for (const std::size_t p : slot_jobs[w]) ++sup.retries_by_job[p];
      if (dispatch(w)) return;
      message = who_of(w) + ": " + slot.diagnostic + " (" +
                describe_worker_exit(slot.proc.terminate(kKillGraceMs)) + ")";
    }
    slot.diagnostic = message + " (attempt " + std::to_string(slot.attempts) +
                      " of " + std::to_string(options.worker_retries + 1) +
                      ")";
    slot.state = Slot::State::Failed;
    if (!options.allow_partial) fail_all(slot.diagnostic);
  };

  // Drains every frame slot w's reader can produce without blocking.
  // Again ends the visit (poll() will wake us); anything else either
  // advances the slot or retires the worker.
  const auto pump = [&](std::size_t w) {
    Slot& slot = slots[w];
    const std::string who = who_of(w);
    while (slot.state == Slot::State::Draining) {
      wire::Frame frame;
      wire::DecodeError err;
      const auto st = slot.reader->next(frame, err);
      if (st == wire::FdFrameReader::Status::Again) return;
      if (st == wire::FdFrameReader::Status::Eof) {
        retire(w, [&who](int status) {
          return who + ": stream ended before its Done frame (" +
                 describe_worker_exit(status) + ")";
        });
        return;
      }
      if (st != wire::FdFrameReader::Status::Frame) {
        const std::string text = who + ": " + err.to_string();
        retire(w, [text](int) { return text; });
        return;
      }
      if (timeout_ms > 0) {
        // A complete frame is progress: the deadline re-arms per frame.
        slot.frame_deadline =
            Clock::now() + std::chrono::milliseconds(timeout_ms);
      }
      wire::Decoder d(frame.data, frame.size);
      switch (frame.tag) {
        case wire::Payload::WorkerPartial: {
          wire::WorkerPartialData part;
          if (!wire::decode_worker_partial(d, part)) {
            const std::string text = who + ": " + d.error().to_string();
            retire(w, [text](int) { return text; });
            return;
          }
          if (!d.exhausted()) {
            const std::string text =
                who + ": trailing bytes after a partial payload";
            retire(w, [text](int) { return text; });
            return;
          }
          const std::size_t i = static_cast<std::size_t>(part.shard);
          bool ours = i < shards.size() && i % workers == w &&
                      part.job == shards[i].job;
          if (ours) {
            const std::size_t k = (i - w) / workers;
            ours = k < slot.got.size() && !slot.got[k];
            if (ours) slot.got[k] = true;
          }
          if (!ours) {
            const std::string text = who + ": partial for foreign shard " +
                                     std::to_string(part.shard);
            retire(w, [text](int) { return text; });
            return;
          }
          slot.partials.push_back(std::move(part));
          break;
        }
        case wire::Payload::WorkerDone: {
          std::uint64_t done_count = 0;
          if (!wire::decode_worker_done(d, done_count) || !d.exhausted()) {
            const std::string text = who + ": malformed Done frame";
            retire(w, [text](int) { return text; });
            return;
          }
          slot.reader.reset();
          slot.proc.close_from_child();
          int status = 0;
          if (!slot.proc.wait_for(kKillGraceMs, status)) {
            retire(w, [&who](int st) {
              return who + ": kept running after its Done frame (" +
                     describe_worker_exit(st) + ")";
            });
            return;
          }
          if (wire::exit_code(status) != kWorkerExitOk) {
            const std::string text = who + " " + describe_worker_exit(status);
            retire(w, [text](int) { return text; });
            return;
          }
          if (done_count != slot.partials.size() ||
              slot.partials.size() != assigned[w].size()) {
            const std::string text =
                who + ": returned " + std::to_string(slot.partials.size()) +
                " partials for " + std::to_string(assigned[w].size()) +
                " assigned shards";
            retire(w, [text](int) { return text; });
            return;
          }
          slot.state = Slot::State::Done;
          return;
        }
        case wire::Payload::WorkerError: {
          std::string message;
          if (!wire::decode_worker_error(d, message)) {
            message = "(malformed error frame)";
          }
          const std::string text = who + " reported: " + message;
          retire(w, [text](int) { return text; });
          return;
        }
        default: {
          const std::string text =
              who + ": unexpected " + wire::to_string(frame.tag) + " frame";
          retire(w, [text](int) { return text; });
          return;
        }
      }
    }
  };

  for (std::size_t w = 0; w < workers; ++w) {
    if (!dispatch(w)) {
      const std::string text = who_of(w) + ": " + slots[w].diagnostic;
      retire(w, [text](int status) {
        return text + " (" + describe_worker_exit(status) + ")";
      });
    }
  }

  // The multiplexed drain: poll every Draining slot's pipe, pump whoever
  // is readable, then sweep expired frame deadlines.  The loop ends when
  // every slot is Done or Failed.
  std::vector<struct pollfd> pfds;
  std::vector<std::size_t> pfd_slot;
  for (;;) {
    pfds.clear();
    pfd_slot.clear();
    Clock::time_point next_deadline{};
    bool have_deadline = false;
    for (std::size_t w = 0; w < workers; ++w) {
      const Slot& slot = slots[w];
      if (slot.state != Slot::State::Draining) continue;
      pfds.push_back({slot.proc.from_child, POLLIN, 0});
      pfd_slot.push_back(w);
      if (timeout_ms > 0 &&
          (!have_deadline || slot.frame_deadline < next_deadline)) {
        next_deadline = slot.frame_deadline;
        have_deadline = true;
      }
    }
    if (pfds.empty()) break;
    int poll_timeout = -1;
    if (have_deadline) {
      const long long remain =
          std::chrono::duration_cast<std::chrono::milliseconds>(
              next_deadline - Clock::now())
              .count();
      poll_timeout =
          remain <= 0 ? 0 : static_cast<int>(std::min<long long>(remain, INT_MAX));
    }
    const int n = ::poll(pfds.data(), pfds.size(), poll_timeout);
    if (n < 0) {
      if (errno == EINTR) continue;
      fail_all(std::string("poll failed: ") + std::strerror(errno));
    }
    for (std::size_t k = 0; k < pfds.size(); ++k) {
      if (pfds[k].revents == 0) continue;
      const std::size_t w = pfd_slot[k];
      // pump may retire-and-respawn; the stale pollfd entry is harmless
      // because the vector is rebuilt before the next poll().
      if (slots[w].state == Slot::State::Draining) pump(w);
    }
    if (timeout_ms > 0) {
      const auto now = Clock::now();
      for (std::size_t w = 0; w < workers; ++w) {
        if (slots[w].state != Slot::State::Draining) continue;
        if (now < slots[w].frame_deadline) continue;
        const std::string text = who_of(w) + ": timed out after " +
                                 std::to_string(timeout_ms) +
                                 " ms waiting for a frame";
        retire(w, [text](int) { return text; });
      }
    }
  }

  // Merge Done slots (per-slot validation already passed); record the
  // Failed slots' shards in shard-index order.  A Failed slot's buffered
  // partials are discarded whole — a degraded result never contains work
  // from a worker that did not finish cleanly.
  for (std::size_t w = 0; w < workers; ++w) {
    if (slots[w].state != Slot::State::Done) continue;
    for (auto& part : slots[w].partials) {
      install_partial(jobs, part, outcomes);
    }
  }
  for (std::size_t i = 0; i < shards.size(); ++i) {
    const std::size_t w = i % workers;
    if (slots[w].state != Slot::State::Failed) continue;
    sup.failures.push_back({w, i, shards[i].unit_begin, shards[i].unit_end,
                            slots[w].diagnostic});
  }
}

// The parent side of cross-process sharding: spawn options.workers
// subprocesses, hand each a round-robin slice of the exact shard layout
// the in-process engine would run, and slot their wire-encoded partial
// outcomes back into `outcomes` at the same indices — after which the
// caller's merge loop cannot tell the difference.  That is the sixth
// differential invariant (campaign_process_diff_test); the supervised
// drain adds the seventh (faulted-then-retried ≡ clean,
// campaign_supervision_test).
void run_shards_cross_process(const std::vector<CampaignJob>& jobs,
                              spec::Alphabet& ab,
                              const CampaignOptions& options,
                              const std::vector<Shard>& shards,
                              std::vector<ShardOutcome>& outcomes,
                              SupervisionInfo& sup) {
  // A worker that died must surface as a write error, not a SIGPIPE kill.
  wire::ignore_sigpipe();
  const std::size_t workers = std::min(options.workers, shards.size());

  // Round-robin assignment: shard i runs on worker i % workers.
  std::vector<std::vector<std::size_t>> assigned(workers);
  for (std::size_t i = 0; i < shards.size(); ++i) {
    assigned[i % workers].push_back(i);
  }

  const wire::WorkerRequestData base = make_base_request(jobs, ab, options);
  if (options.supervised) {
    run_shards_supervised(jobs, options, shards, assigned, base, outcomes,
                          sup);
  } else {
    run_shards_legacy(jobs, options, shards, assigned, base, outcomes);
  }
}

#endif  // LOOM_WIRE_HAS_PROCESS

}  // namespace

std::vector<PropertyPlan> compile_property_plans(
    const std::vector<const spec::Property*>& properties,
    const spec::Alphabet& ab, const CampaignOptions& options) {
  std::vector<PropertyPlan> plans(properties.size());
  mon::CompileOptions copt;
  copt.backend = options.backend;
  // The cross-check instantiates ViaPSL monitors next to Drct units, so the
  // clause set must be materialized even when the chosen backend is Drct.
  copt.with_viapsl_artifact = options.check_viapsl;
  // Campaign Auto resolves the Drct/Vm cost-model tie to Vm — the
  // wall-clock winner, and the only backend whose frames the lane-batched
  // wave scheduler can restore into.  Set unconditionally (not gated on
  // use_compiled_plans or lane_width): both the compiled and the legacy
  // translation legs compile through here, so invariant 3 sees one
  // resolution, and the lane knob can never move the chosen backend —
  // which invariant 8 needs.
  copt.prefer_vm = true;
  for (std::size_t p = 0; p < properties.size(); ++p) {
    PropertyPlan& plan = plans[p];
    plan.property = properties[p];
    plan.index = p;
    if (options.plan_cache != nullptr) {
      // Cross-campaign memoization: a hit shares an earlier campaign's
      // immutable artifacts (CompiledProperty is a cheap handle copy), a
      // miss compiles and publishes for the next campaign.  plans_built
      // counts actual translations, so hits leave it at 0.
      bool compiled_now = false;
      plan.compiled = options.plan_cache->get_or_compile(*properties[p], ab,
                                                         copt, &compiled_now);
      plan.base_stats.plans_built = compiled_now ? 1 : 0;
      plan.base_stats.plan_cache_hits = compiled_now ? 0 : 1;
      plan.base_stats.plan_cache_misses = compiled_now ? 1 : 0;
    } else {
      plan.compiled = mon::CompiledProperty::compile(*properties[p], ab, copt);
      plan.base_stats.plans_built = 1;
    }
    plan.base_stats.viapsl_encodings =
        plan.compiled.encoding() != nullptr ? 1 : 0;
    plan.base_stats.backend_requested = plan.compiled.requested();
    plan.base_stats.backend_chosen = plan.compiled.chosen();
  }
  return plans;
}

std::vector<CampaignResult> run_campaigns(
    const std::vector<const spec::Property*>& properties, spec::Alphabet& ab,
    const CampaignOptions& options) {
  if (options.lane_width == 0) {
    throw std::invalid_argument(
        "CampaignOptions::lane_width must be at least 1 (1 is the scalar "
        "path; the default wave width is 8)");
  }
  // Waves replay through VmLaneBatch frames, so a campaign that *forces* a
  // backend without VM frames while asking for lanes is contradictory —
  // refuse it rather than silently ignore one of the two requests.  Auto
  // stays fine at any width: when it resolves away from Vm (a ViaPSL cost
  // win) the engine just runs the scalar loop.
  if (options.lane_width > 1 && (options.backend == mon::Backend::Drct ||
                                 options.backend == mon::Backend::ViaPSL)) {
    throw std::invalid_argument(
        std::string("CampaignOptions::lane_width > 1 needs the Vm backend "
                    "(lane-batched waves replay through VmLaneBatch frames), "
                    "but backend=") +
        mon::to_string(options.backend) +
        " was forced; use backend=vm or auto, or lane_width=1 for the "
        "scalar path");
  }
  // Setup runs serially on the caller: intern everything stimuli
  // generation could lazily intern, then translate every property exactly
  // once — plan tables, backend choice, ViaPSL clause sets — so both the
  // alphabet and the plans are strictly read-only once workers share them.
  pre_intern_stimuli_names(ab, options.stimuli);
  const std::vector<PropertyPlan> plans =
      compile_property_plans(properties, ab, options);
  std::vector<CampaignJob> jobs(properties.size());
  for (std::size_t p = 0; p < properties.size(); ++p) {
    jobs[p].property = properties[p];
    jobs[p].plan = &plans[p];
    jobs[p].index = p;
  }

  // Shard the flattened (property × seed × slot) space.  Shards never span
  // properties so each merges into exactly one result.
  std::size_t threads = options.threads != 0
                            ? options.threads
                            : std::max(1u, std::thread::hardware_concurrency());
  const std::size_t units_per_job = options.seeds * kSlotsPerSeed;
  std::size_t shard_size = options.shard_size;
  if (shard_size == 0) {
    const std::size_t total_units = units_per_job * jobs.size();
    shard_size = std::max<std::size_t>(1, total_units / (threads * 4));
  }
  std::vector<Shard> shards;
  for (std::size_t p = 0; p < jobs.size(); ++p) {
    for (std::size_t begin = 0; begin < units_per_job; begin += shard_size) {
      shards.push_back(
          {p, begin, std::min(units_per_job, begin + shard_size)});
    }
  }

  std::vector<ShardOutcome> outcomes(shards.size());
#if LOOM_WIRE_HAS_PROCESS
  SupervisionInfo sup;
  sup.retries_by_job.assign(jobs.size(), 0);
#endif
  if (options.workers > 0 && !shards.empty()) {
#if LOOM_WIRE_HAS_PROCESS
    run_shards_cross_process(jobs, ab, options, shards, outcomes, sup);
#else
    throw WorkerFailure(
        "cross-process campaign: no process support on this platform");
#endif
  } else {
    run_shards_in_process(jobs, ab, options, shards, threads, outcomes);
  }

  // Merge in shard-index order, one pass over the shards.  Every reduction
  // below is commutative and associative (sums, set unions, maxima), so
  // the fixed order is not load-bearing for determinism — it just makes
  // the bit-identity obvious.
  std::vector<CampaignResult> results(jobs.size());
  std::vector<AlphabetCoverage> alphabet_covs;
  alphabet_covs.reserve(jobs.size());
  for (const auto& job : jobs) {
    alphabet_covs.emplace_back(job.property->alphabet());
  }
  for (std::size_t p = 0; p < jobs.size(); ++p) {
    results[p].compile_stats = plans[p].base_stats;
  }
  std::vector<std::optional<RecognizerCoverage>> rec_covs(jobs.size());
  for (std::size_t i = 0; i < shards.size(); ++i) {
    const std::size_t p = shards[i].job;
    CampaignResult& result = results[p];
    ShardOutcome& out = outcomes[i];
    result.traces += out.partial.traces;
    result.events += out.partial.events;
    result.valid_accepted += out.partial.valid_accepted;
    result.oracle_disagreements += out.partial.oracle_disagreements;
    result.viapsl_false_alarms += out.partial.viapsl_false_alarms;
    for (std::size_t k = 0; k < 5; ++k) {
      result.mutation[k].merge(out.partial.mutation[k]);
    }
    result.monitor_stats.merge(out.partial.monitor_stats);
    result.compile_stats.merge(out.partial.compile_stats);
    result.trace_cache_hits += out.partial.trace_cache_hits;
    result.trace_cache_misses += out.partial.trace_cache_misses;
    result.checkpoint_hits += out.partial.checkpoint_hits;
    result.events_skipped += out.partial.events_skipped;
    result.lane_waves += out.partial.lane_waves;
    result.lanes_filled += out.partial.lanes_filled;
    result.lane_capacity += out.partial.lane_capacity;
    if (out.alphabet) alphabet_covs[p].merge(*out.alphabet);
    if (out.recognizer) {
      if (rec_covs[p]) {
        rec_covs[p]->merge(*out.recognizer);
      } else {
        rec_covs[p].emplace(std::move(*out.recognizer));
      }
    }
  }
  for (std::size_t p = 0; p < jobs.size(); ++p) {
    results[p].alphabet_coverage = alphabet_covs[p].ratio();
    results[p].recognizer_state_coverage =
        rec_covs[p] ? rec_covs[p]->state_ratio() : 1.0;
  }
#if LOOM_WIRE_HAS_PROCESS
  // Supervision outcome: retry counts are engine diagnostics (excluded
  // from report() and the differential comparisons — a retried campaign
  // must stay byte-identical to a clean one); shard failures are semantic
  // (they flip degraded()/ok() and print in report()).
  for (std::size_t p = 0; p < jobs.size(); ++p) {
    results[p].worker_retries = sup.retries_by_job[p];
  }
  for (auto& f : sup.failures) {
    results[shards[f.shard].job].shard_failures.push_back(std::move(f));
  }
#endif
  return results;
}

CampaignResult run_campaign(const spec::Property& property,
                            spec::Alphabet& ab,
                            const CampaignOptions& options) {
  return run_campaigns({&property}, ab, options)[0];
}

int run_campaign_worker(int in_fd, int out_fd,
                        std::size_t request_timeout_ms) {
#if !LOOM_WIRE_HAS_PROCESS
  (void)in_fd;
  (void)out_fd;
  (void)request_timeout_ms;
  return kWorkerExitBadRequest;
#else
  wire::ignore_sigpipe();
  wire::Encoder enc;
  std::vector<std::uint8_t> framed;
  // SlowStream fault: once armed, every response byte trickles out alone
  // with a pause behind it — alive by poll()'s lights, dead by the
  // supervisor's frame deadline.
  bool slow = false;
  const auto send_bytes = [&](const std::uint8_t* data, std::size_t n) {
    if (!slow) return wire::write_all(out_fd, data, n);
    for (std::size_t b = 0; b < n; ++b) {
      if (!wire::write_all(out_fd, data + b, 1)) return false;
      ::usleep(20 * 1000);
    }
    return true;
  };
  const auto send = [&](wire::Payload tag) {
    framed.clear();
    wire::write_frame(framed, tag, enc);
    return send_bytes(framed.data(), framed.size());
  };
  const auto send_error = [&](const std::string& message) {
    enc.clear();
    wire::encode_worker_error(enc, message);
    send(wire::Payload::WorkerError);
  };

  // One request frame, fully read and validated before anything is sent
  // back (the other half of the protocol's no-deadlock argument).  The
  // optional deadline bounds the wait: an abandoned worker whose parent
  // never writes exits instead of blocking forever on stdin.
  wire::FdFrameReader reader(in_fd);
  if (request_timeout_ms > 0) {
    reader.set_read_timeout_ms(static_cast<long>(request_timeout_ms));
  }
  wire::Frame frame;
  wire::DecodeError err;
  const auto st = reader.next(frame, err);
  if (st != wire::FdFrameReader::Status::Frame) {
    send_error(st == wire::FdFrameReader::Status::Eof
                   ? "worker: no request frame before EOF"
                   : "worker: " + err.to_string());
    return kWorkerExitBadRequest;
  }
  if (frame.tag != wire::Payload::WorkerRequest) {
    send_error(std::string("worker: expected a WorkerRequest frame, got ") +
               wire::to_string(frame.tag));
    return kWorkerExitBadRequest;
  }
  wire::WorkerRequestData req;
  {
    wire::Decoder d(frame.data, frame.size);
    if (!wire::decode_worker_request(d, req)) {
      send_error("worker: " + d.error().to_string());
      return kWorkerExitBadRequest;
    }
    if (!d.exhausted()) {
      send_error("worker: trailing bytes after the request payload");
      return kWorkerExitBadRequest;
    }
  }
  if (req.options.worker_fault == WorkerFault::ExitBeforeRequest) {
    // Reads the request, answers nothing: the parent sees clean EOF with
    // exit 0 before any frame — as if the worker died before starting.
    return kWorkerExitOk;
  }

  try {
    // Reproduce the parent's interning: declaring the names in id order
    // yields identical dense ids, so traces, plans and coverage rows agree
    // bit for bit across the process boundary.
    spec::Alphabet ab;
    for (std::size_t i = 0; i < req.names.size(); ++i) {
      switch (req.directions[i]) {
        case 0: ab.input(req.names[i]); break;
        case 1: ab.output(req.names[i]); break;
        default: ab.name(req.names[i]); break;
      }
    }
    // Re-parse the normalized property texts — the same to_string/parse
    // round-trip the cross-campaign plan cache keys on.
    std::vector<spec::Property> props;
    props.reserve(req.properties.size());
    for (const auto& text : req.properties) {
      support::DiagnosticSink sink;
      auto p = spec::parse_property(text, ab, sink);
      if (!p) {
        send_error("worker: property '" + text + "': " + sink.to_string());
        return kWorkerExitBadProperty;
      }
      props.push_back(std::move(*p));
    }

    const CampaignOptions& options = req.options;  // workers already zeroed
    const std::size_t units_per_job = options.seeds * kSlotsPerSeed;
    std::vector<Shard> shards;
    shards.reserve(req.shards.size());
    for (const auto& s : req.shards) {
      if (s.job >= props.size() || s.unit_begin > s.unit_end ||
          s.unit_end > units_per_job) {
        send_error("worker: shard assignment out of range");
        return kWorkerExitBadRequest;
      }
      shards.push_back({static_cast<std::size_t>(s.job),
                        static_cast<std::size_t>(s.unit_begin),
                        static_cast<std::size_t>(s.unit_end)});
    }

    // The same serial setup run_campaigns does, then the assigned shards
    // on the in-process engine (this worker's own threads / trace cache).
    pre_intern_stimuli_names(ab, options.stimuli);
    std::vector<const spec::Property*> prop_ptrs;
    prop_ptrs.reserve(props.size());
    for (const auto& p : props) prop_ptrs.push_back(&p);
    const std::vector<PropertyPlan> plans =
        compile_property_plans(prop_ptrs, ab, options);
    std::vector<CampaignJob> jobs(props.size());
    for (std::size_t p = 0; p < props.size(); ++p) {
      jobs[p].property = prop_ptrs[p];
      jobs[p].plan = &plans[p];
      jobs[p].index = p;
    }
    const std::size_t threads =
        options.threads != 0
            ? options.threads
            : std::max<std::size_t>(1, std::thread::hardware_concurrency());
    std::vector<ShardOutcome> outcomes(shards.size());
    run_shards_in_process(jobs, ab, options, shards, threads, outcomes);

    // One partial frame per shard, in assignment order, then Done.
    for (std::size_t i = 0; i < shards.size(); ++i) {
      wire::WorkerPartialData part;
      part.shard = req.shards[i].shard;
      part.job = req.shards[i].job;
      part.partial = outcomes[i].partial;
      if (outcomes[i].alphabet) {
        part.alphabet_seen.assign(ab.size(), false);
        outcomes[i].alphabet->seen().for_each([&](std::size_t n) {
          if (n < part.alphabet_seen.size()) part.alphabet_seen[n] = true;
        });
      }
      if (outcomes[i].recognizer) {
        part.has_recognizer = true;
        part.recognizer_rows = outcomes[i].recognizer->per_fragment();
      }
      enc.clear();
      wire::encode_worker_partial(enc, part);
      framed.clear();
      wire::write_frame(framed, wire::Payload::WorkerPartial, enc);
      if (i == options.worker_fault_at &&
          options.worker_fault != WorkerFault::None) {
        // Deterministic protocol violations (campaign_worker_fault_test,
        // campaign_supervision_test): each fault strikes exactly the
        // partial frame at worker_fault_at.
        switch (options.worker_fault) {
          case WorkerFault::CorruptFrame:
            framed[0] ^= 0xFF;  // magic byte: the parent must reject this
            break;
          case WorkerFault::FutureVersion:
            framed[4] = wire::kWireVersion + 1;
            break;
          case WorkerFault::DieMidStream: {
            wire::write_all(out_fd, framed.data(), framed.size() / 2);
            return kWorkerExitIo;
          }
          case WorkerFault::Hang: {
            // Ignore the supervisor's SIGTERM: only the SIGKILL
            // escalation ends this worker.
            struct sigaction sa;
            std::memset(&sa, 0, sizeof(sa));
            sa.sa_handler = SIG_IGN;
            ::sigaction(SIGTERM, &sa, nullptr);
            for (;;) ::pause();
          }
          case WorkerFault::SlowStream:
            slow = true;
            break;
          case WorkerFault::None:
          case WorkerFault::PartialWritesOnly:
          case WorkerFault::ExitBeforeRequest:
            break;
        }
      }
      if (!send_bytes(framed.data(), framed.size())) {
        return kWorkerExitIo;
      }
    }
    if (options.worker_fault == WorkerFault::PartialWritesOnly) {
      // Every partial sent, then silence where the Done trailer belongs:
      // the parent must discard the whole stream, clean exit or not.
      return kWorkerExitOk;
    }
    enc.clear();
    wire::encode_worker_done(enc, shards.size());
    if (!send(wire::Payload::WorkerDone)) return kWorkerExitIo;
    return kWorkerExitOk;
  } catch (const std::exception& e) {
    send_error(std::string("worker: ") + e.what());
    return kWorkerExitBadRequest;
  }
#endif  // LOOM_WIRE_HAS_PROCESS
}

std::vector<CampaignResult::DiagnosticCounter>
CampaignResult::diagnostic_counters() const {
  // Guarded ratio: a zero denominator means "no such work happened", which
  // reports as 0 — bench counters and the JSON baselines must never hold
  // NaN (it is unorderable, so a regression gate could not threshold it).
  const auto ratio = [](double num, double den) {
    return den == 0.0 ? 0.0 : num / den;
  };
  const double trace_hits = static_cast<double>(trace_cache_hits);
  const double trace_misses = static_cast<double>(trace_cache_misses);
  const double plan_hits = static_cast<double>(compile_stats.plan_cache_hits);
  const double plan_misses =
      static_cast<double>(compile_stats.plan_cache_misses);
  const double stamped = static_cast<double>(compile_stats.instances_stamped);
  const double reuses = static_cast<double>(compile_stats.instance_reuses);
  const double skipped = static_cast<double>(events_skipped);
  const double stepped = static_cast<double>(monitor_stats.events);
  const double filled = static_cast<double>(lanes_filled);
  const double capacity = static_cast<double>(lane_capacity);
  return {
      {"trace_cache_hit_rate", ratio(trace_hits, trace_hits + trace_misses)},
      {"plan_cache_hit_rate", ratio(plan_hits, plan_hits + plan_misses)},
      {"instance_reuse_rate", ratio(reuses, stamped + reuses)},
      {"checkpoint_hits", static_cast<double>(checkpoint_hits)},
      {"events_skipped", skipped},
      {"skip_ratio", ratio(skipped, skipped + stepped)},
      // How full the waves ran: filled lanes over offered capacity.  A
      // scalar campaign (no waves) reports 0 by the guard; a drop in a
      // batched campaign means waves flushing emptier — a scheduling
      // regression tools/bench_compare.py gates on.
      {"lane_occupancy", ratio(filled, capacity)},
      {"lane_waves", static_cast<double>(lane_waves)},
      {"backend_viapsl",
       compile_stats.backend_chosen == mon::Backend::ViaPSL ? 1.0 : 0.0},
      {"backend_vm",
       compile_stats.backend_chosen == mon::Backend::Vm ? 1.0 : 0.0},
  };
}

std::string CampaignResult::report(const spec::Alphabet&,
                                   bool with_engine_diagnostics) const {
  char buf[256];
  std::string out;
  std::snprintf(buf, sizeof buf,
                "campaign: %zu traces (%zu events), %zu accepted, "
                "%zu oracle disagreements, %zu ViaPSL false alarms\n",
                traces, events, valid_accepted, oracle_disagreements,
                viapsl_false_alarms);
  out += buf;
  std::snprintf(buf, sizeof buf, "backend: %s (requested %s)\n",
                mon::to_string(compile_stats.backend_chosen),
                mon::to_string(compile_stats.backend_requested));
  out += buf;
  std::snprintf(buf, sizeof buf,
                "coverage: alphabet %.0f%%, recognizer states %.0f%%\n",
                alphabet_coverage * 100.0,
                recognizer_state_coverage * 100.0);
  out += buf;
  std::snprintf(buf, sizeof buf,
                "monitors: %llu ops over %llu events (worst %llu/event)\n",
                static_cast<unsigned long long>(monitor_stats.ops),
                static_cast<unsigned long long>(monitor_stats.events),
                static_cast<unsigned long long>(monitor_stats.max_ops_per_event));
  out += buf;
  for (std::size_t k = 0; k < 5; ++k) {
    const auto& m = mutation[k];
    std::snprintf(buf, sizeof buf,
                  "mutation %-14s: %3zu applied, %3zu invalid, %3zu "
                  "detected, %zu missed\n",
                  to_string(kAllKinds[k]), m.applied, m.invalid, m.detected,
                  m.missed);
    out += buf;
  }
  if (with_engine_diagnostics) {
    // Engine accounting, not semantic result: the default report must stay
    // byte-identical across every performance knob (the differential
    // tests' yardstick), so these lines are opt-in.
    std::snprintf(buf, sizeof buf,
                  "engine: %zu trace-cache hits, %zu misses\n",
                  trace_cache_hits, trace_cache_misses);
    out += buf;
    std::snprintf(buf, sizeof buf,
                  "replay: %zu checkpoint restores, %zu prefix events "
                  "skipped\n",
                  checkpoint_hits, events_skipped);
    out += buf;
    std::snprintf(buf, sizeof buf,
                  "lanes: %llu waves, %llu/%llu lanes filled\n",
                  static_cast<unsigned long long>(lane_waves),
                  static_cast<unsigned long long>(lanes_filled),
                  static_cast<unsigned long long>(lane_capacity));
    out += buf;
  }
  // Semantic, not diagnostic: a degraded run (allow_partial absorbing an
  // exhausted worker slot) must announce exactly which shards never ran.
  for (const auto& f : shard_failures) {
    std::snprintf(buf, sizeof buf, "degraded: shard %zu (units [%zu,%zu)) lost on worker %zu: ",
                  f.shard, f.unit_begin, f.unit_end, f.worker);
    out += buf;
    out += f.diagnostic;
    out += '\n';
  }
  out += ok() ? "campaign PASSED\n" : "campaign FAILED\n";
  return out;
}

}  // namespace loom::abv

#include "abv/coverage.hpp"

#include <algorithm>
#include <bit>
#include <cstdio>

#include "support/diagnostics.hpp"

namespace loom::abv {

std::string AlphabetCoverage::report(const spec::Alphabet& ab) const {
  char head[64];
  std::snprintf(head, sizeof head, "alphabet coverage: %zu/%zu (%.0f%%)",
                covered(), total(), ratio() * 100.0);
  std::string out = head;
  const auto m = missed();
  if (!m.empty()) out += "\n  never observed: " + ab.render(m);
  return out;
}

RecognizerCoverage::RecognizerCoverage(const mon::AntecedentMonitor& monitor)
    : monitor_(&monitor) {
  const auto& rec = monitor.recognizer();
  per_fragment_.resize(rec.fragment_count());
  for (std::size_t f = 0; f < rec.fragment_count(); ++f) {
    const auto& frag = rec.fragment(f);
    per_fragment_[f].resize(frag.child_count());
    for (std::size_t r = 0; r < frag.child_count(); ++r) {
      const auto& plan = frag.child(r).plan();
      per_fragment_[f][r].name = plan.name;
      per_fragment_[f][r].lo = plan.lo;
      per_fragment_[f][r].hi = plan.hi;
    }
  }
}

void RecognizerCoverage::sample() {
  LOOM_DASSERT(monitor_ != nullptr);
  const auto& rec = monitor_->recognizer();
  for (std::size_t f = 0; f < rec.fragment_count(); ++f) {
    const auto& frag = rec.fragment(f);
    for (std::size_t r = 0; r < frag.child_count(); ++r) {
      const auto& child = frag.child(r);
      auto& cov = per_fragment_[f][r];
      cov.state_mask |=
          static_cast<std::uint8_t>(1u << static_cast<unsigned>(child.state()));
      cov.max_count = std::max(cov.max_count, child.count());
    }
  }
}

void RecognizerCoverage::merge(const RecognizerCoverage& other) {
  LOOM_DASSERT(per_fragment_.size() == other.per_fragment_.size());
  for (std::size_t f = 0; f < per_fragment_.size(); ++f) {
    LOOM_DASSERT(per_fragment_[f].size() == other.per_fragment_[f].size());
    for (std::size_t r = 0; r < per_fragment_[f].size(); ++r) {
      auto& cov = per_fragment_[f][r];
      const auto& ocov = other.per_fragment_[f][r];
      LOOM_DASSERT(cov.name == ocov.name);
      cov.state_mask |= ocov.state_mask;
      cov.max_count = std::max(cov.max_count, ocov.max_count);
    }
  }
}

double RecognizerCoverage::state_ratio() const {
  std::size_t visited = 0, total = 0;
  for (const auto& frag : per_fragment_) {
    for (const auto& cov : frag) {
      visited += static_cast<std::size_t>(std::popcount(cov.state_mask));
      total += 6;
    }
  }
  return total == 0 ? 1.0
                    : static_cast<double>(visited) /
                          static_cast<double>(total);
}

std::size_t RecognizerCoverage::lo_bound_hits() const {
  std::size_t n = 0;
  for (const auto& frag : per_fragment_) {
    for (const auto& cov : frag) {
      if (cov.max_count >= cov.lo) ++n;
    }
  }
  return n;
}

std::size_t RecognizerCoverage::hi_bound_hits() const {
  std::size_t n = 0;
  for (const auto& frag : per_fragment_) {
    for (const auto& cov : frag) {
      if (cov.max_count >= cov.hi) ++n;
    }
  }
  return n;
}

std::string RecognizerCoverage::report(const spec::Alphabet& ab) const {
  char head[80];
  std::snprintf(head, sizeof head, "recognizer state coverage: %.0f%%",
                state_ratio() * 100.0);
  std::string out = head;
  for (std::size_t f = 0; f < per_fragment_.size(); ++f) {
    for (const auto& cov : per_fragment_[f]) {
      char line[160];
      std::snprintf(line, sizeof line,
                    "\n  F%zu %s[%u,%u]: states %u/6, max block %u%s%s", f + 1,
                    ab.text(cov.name).c_str(), cov.lo, cov.hi,
                    std::popcount(cov.state_mask), cov.max_count,
                    cov.max_count >= cov.lo ? ", u hit" : "",
                    cov.max_count >= cov.hi ? ", v hit" : "");
      out += line;
    }
  }
  return out;
}

}  // namespace loom::abv

#include "abv/stimuli.hpp"

#include <algorithm>
#include <functional>
#include <vector>

namespace loom::abv {
namespace {

using support::Rng;

/// Appends the events of one fragment: a random order of blocks (all ranges
/// under ∧, a random non-empty subset under ∨), each block a random length
/// in [u,v].
void emit_fragment(const spec::Fragment& f, Rng& rng,
                   const std::function<sim::Time()>& next_time,
                   spec::Trace& out) {
  std::vector<std::size_t> used;
  if (f.join == spec::Join::Conj) {
    for (std::size_t r = 0; r < f.ranges.size(); ++r) used.push_back(r);
  } else {
    for (std::size_t r = 0; r < f.ranges.size(); ++r) {
      if (rng.chance(1, 2)) used.push_back(r);
    }
    if (used.empty()) used.push_back(rng.below(f.ranges.size()));
  }
  // Fisher-Yates shuffle for a random concatenation order.
  for (std::size_t k = used.size(); k > 1; --k) {
    std::swap(used[k - 1], used[rng.below(k)]);
  }
  for (const std::size_t r : used) {
    const spec::Range& range = f.ranges[r];
    const std::uint64_t count = rng.between(range.lo, range.hi);
    for (std::uint64_t c = 0; c < count; ++c) {
      out.push_back({range.name, next_time()});
    }
  }
}

std::vector<spec::Name> noise_pool(spec::Alphabet& ab, std::size_t n) {
  std::vector<spec::Name> pool;
  for (std::size_t k = 0; k < n; ++k) {
    const std::string name = "zz_noise" + std::to_string(k);
    // Lookup before interning: once the names exist (the campaign engine
    // pre-interns them during setup), generation never writes the alphabet,
    // which lets parallel workers share one instance without copies.
    if (const auto id = ab.lookup(name)) {
      pool.push_back(*id);
    } else {
      pool.push_back(ab.name(name));
    }
  }
  return pool;
}

/// Counts an upper bound of the events in one round of the ordering.
std::uint64_t max_round_events(const spec::LooseOrdering& l) {
  std::uint64_t n = 0;
  for (const auto& f : l.fragments) {
    for (const auto& r : f.ranges) n += r.hi;
  }
  return n;
}

}  // namespace

void pre_intern_stimuli_names(spec::Alphabet& ab,
                              const StimuliOptions& options) {
  noise_pool(ab, std::max<std::size_t>(1, options.noise_names));
}

spec::Trace generate_valid(const spec::Antecedent& a, spec::Alphabet& ab,
                           support::Rng& rng,
                           const StimuliOptions& options) {
  spec::Trace out;
  std::uint64_t now_ps = 0;
  const auto pool = noise_pool(ab, std::max<std::size_t>(1, options.noise_names));
  auto next_time = [&] {
    now_ps += 1000 * (1 + rng.below(std::max<std::uint64_t>(1, options.max_gap_ns)));
    if (options.noise_permille != 0 && rng.below(1000) < options.noise_permille) {
      out.push_back({pool[rng.below(pool.size())], sim::Time::ps(now_ps)});
      now_ps += 1000;
    }
    return sim::Time::ps(now_ps);
  };
  for (std::size_t round = 0; round < options.rounds; ++round) {
    for (const auto& f : a.pattern.fragments) {
      emit_fragment(f, rng, next_time, out);
    }
    out.push_back({a.trigger, next_time()});
    if (!a.repeated) break;  // one round suffices; later ones unconstrained
  }
  return out;
}

spec::Trace generate_valid(const spec::TimedImplication& t,
                           spec::Alphabet& ab, support::Rng& rng,
                           const StimuliOptions& options) {
  spec::Trace out;
  std::uint64_t now_ps = 0;
  const std::uint64_t round_events =
      max_round_events(t.antecedent) + max_round_events(t.consequent);
  // Budget the spacing so a full round (plus slack) fits in the deadline.
  const std::uint64_t gap_ps = std::max<std::uint64_t>(
      1, t.bound.picoseconds() / (2 * (round_events + 2)));
  const auto pool = noise_pool(ab, std::max<std::size_t>(1, options.noise_names));
  auto next_time = [&] {
    now_ps += 1 + rng.below(gap_ps);
    if (options.noise_permille != 0 && rng.below(1000) < options.noise_permille) {
      out.push_back({pool[rng.below(pool.size())], sim::Time::ps(now_ps)});
      now_ps += 1;
    }
    return sim::Time::ps(now_ps);
  };
  for (std::size_t round = 0; round < options.rounds; ++round) {
    for (const auto& f : t.antecedent.fragments) {
      emit_fragment(f, rng, next_time, out);
    }
    for (const auto& f : t.consequent.fragments) {
      emit_fragment(f, rng, next_time, out);
    }
    now_ps += gap_ps;  // inter-round slack
  }
  return out;
}

spec::Trace generate_valid(const spec::Property& p, spec::Alphabet& ab,
                           support::Rng& rng,
                           const StimuliOptions& options) {
  if (p.is_antecedent()) {
    return generate_valid(p.antecedent(), ab, rng, options);
  }
  return generate_valid(p.timed(), ab, rng, options);
}

}  // namespace loom::abv

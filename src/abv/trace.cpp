#include "abv/trace.hpp"

#include <sstream>
#include <type_traits>

namespace loom::abv {

void attach(sim::TraceCapture& capture, TraceRecorder& recorder) {
  static_assert(std::is_same_v<sim::TraceCapture::Id, spec::Name>,
                "capture ids are interned names");
  capture.add_sink(recorder.sink());
}

std::string to_text(const spec::Trace& trace, const spec::Alphabet& ab) {
  std::string out;
  for (const auto& ev : trace) {
    out += ab.text(ev.name) + "@" + std::to_string(ev.time.picoseconds()) +
           "\n";
  }
  return out;
}

std::optional<spec::Trace> from_text(std::string_view text,
                                     spec::Alphabet& ab,
                                     support::DiagnosticSink& sink) {
  spec::Trace trace;
  std::istringstream in{std::string(text)};
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty() || line[0] == '#') continue;
    const auto at = line.find('@');
    if (at == std::string::npos || at == 0) {
      sink.error({line_no, 1}, "expected 'name@picoseconds': " + line);
      return std::nullopt;
    }
    const std::string name = line.substr(0, at);
    std::uint64_t ps = 0;
    try {
      ps = std::stoull(line.substr(at + 1));
    } catch (const std::exception&) {
      sink.error({line_no, at + 2}, "bad timestamp in: " + line);
      return std::nullopt;
    }
    trace.push_back({ab.name(name), sim::Time::ps(ps)});
  }
  return trace;
}

}  // namespace loom::abv

#include "abv/trace.hpp"

#include <charconv>
#include <sstream>
#include <system_error>
#include <type_traits>

namespace loom::abv {

void attach(sim::TraceCapture& capture, TraceRecorder& recorder) {
  static_assert(std::is_same_v<sim::TraceCapture::Id, spec::Name>,
                "capture ids are interned names");
  capture.add_sink(recorder.sink());
}

std::string to_text(const spec::Trace& trace, const spec::Alphabet& ab) {
  std::string out;
  for (const auto& ev : trace) {
    out += ab.text(ev.name) + "@" + std::to_string(ev.time.picoseconds()) +
           "\n";
  }
  return out;
}

std::optional<spec::Trace> from_text(std::string_view text,
                                     spec::Alphabet& ab,
                                     support::DiagnosticSink& sink) {
  spec::Trace trace;
  std::istringstream in{std::string(text)};
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    // Tolerate CRLF-recorded files: one trailing '\r' is line-ending
    // convention, not timestamp garbage.
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty() || line[0] == '#') continue;
    const auto at = line.find('@');
    if (at == std::string::npos || at == 0) {
      sink.error({line_no, 1}, "expected 'name@picoseconds': " + line);
      return std::nullopt;
    }
    const std::string name = line.substr(0, at);
    if (name.find_first_of(" \t\v\f") != std::string::npos) {
      sink.error({line_no, 1}, "whitespace in event name: " + line);
      return std::nullopt;
    }
    // Full-match unsigned parse of the timestamp.  std::stoull would
    // silently accept trailing garbage ("a@5xyz" → 5), skip leading
    // whitespace, and wrap negative input ("a@-1") to a huge u64;
    // std::from_chars rejects all three, and anything short of consuming
    // the whole field is a diagnostic, not a truncated value.
    const char* const first = line.data() + at + 1;
    const char* const last = line.data() + line.size();
    std::uint64_t ps = 0;
    const auto [ptr, ec] = std::from_chars(first, last, ps, 10);
    if (ec == std::errc::result_out_of_range) {
      sink.error({line_no, at + 2},
                 "bad timestamp (overflows 64-bit picoseconds) in: " + line);
      return std::nullopt;
    }
    if (ec != std::errc() || ptr == first) {
      sink.error({line_no, at + 2},
                 "bad timestamp (want unsigned decimal picoseconds) in: " +
                     line);
      return std::nullopt;
    }
    if (ptr != last) {
      sink.error({line_no, static_cast<std::size_t>(ptr - line.data()) + 1},
                 "bad timestamp (trailing garbage after picoseconds) in: " +
                     line);
      return std::nullopt;
    }
    trace.push_back({ab.name(name), sim::Time::ps(ps)});
  }
  return trace;
}

}  // namespace loom::abv

#include "abv/mutate.hpp"

#include <algorithm>

namespace loom::abv {

const char* to_string(MutationKind k) {
  switch (k) {
    case MutationKind::Drop: return "drop";
    case MutationKind::Duplicate: return "duplicate";
    case MutationKind::SwapAdjacent: return "swap-adjacent";
    case MutationKind::EarlyTrigger: return "early-trigger";
    case MutationKind::StallDeadline: return "stall-deadline";
  }
  return "?";
}

namespace {

/// Collects the indices of trace events that belong to the property
/// alphabet into `out` (cleared first; capacity reused across calls).
void relevant_positions_into(const spec::Trace& trace,
                             const spec::NameSet& alphabet,
                             std::vector<std::size_t>& out) {
  out.clear();
  for (std::size_t k = 0; k < trace.size(); ++k) {
    if (alphabet.test(trace[k].name)) out.push_back(k);
  }
}

/// Copies `src` into `dst` with room for one extra event, reusing `dst`'s
/// capacity.  Every operator below rebuilds the mutant from the source
/// trace, so a dirty scratch from an earlier call can never leak through.
void copy_with_headroom(const spec::Trace& src, spec::Trace& dst) {
  dst.clear();
  dst.reserve(src.size() + 1);
  dst.insert(dst.end(), src.begin(), src.end());
}

}  // namespace

bool mutate_into(const spec::Trace& trace, MutationKind kind,
                 const spec::Property& property,
                 const spec::NameSet& alphabet, support::Rng& rng,
                 MutationResult& out) {
  // One site index per thread: content is recomputed from scratch each
  // call, so reuse is invisible to results — it only avoids the per-call
  // vector growth the profile showed.
  thread_local std::vector<std::size_t> sites;
  relevant_positions_into(trace, alphabet, sites);
  out.kind = kind;
  spec::Trace& t = out.trace;

  switch (kind) {
    case MutationKind::Drop: {
      if (sites.empty()) return false;
      const std::size_t pos = sites[rng.below(sites.size())];
      t.clear();
      t.reserve(trace.size());
      t.insert(t.end(), trace.begin(),
               trace.begin() + static_cast<long>(pos));
      t.insert(t.end(), trace.begin() + static_cast<long>(pos) + 1,
               trace.end());
      out.position = pos;
      return true;
    }
    case MutationKind::Duplicate: {
      if (sites.empty()) return false;
      const std::size_t pos = sites[rng.below(sites.size())];
      spec::TimedEvent copy = trace[pos];
      copy.time = copy.time + sim::Time::ps(1);
      copy_with_headroom(trace, t);
      t.insert(t.begin() + static_cast<long>(pos) + 1, copy);
      // The copy lands at pos + 1, so the shared prefix extends through the
      // duplicated original — position names the insertion index, keeping
      // the "first possible divergence" contract uniform across kinds.
      out.position = pos + 1;
      return true;
    }
    case MutationKind::SwapAdjacent: {
      // Swap the names of two consecutive relevant events (times stay put,
      // so the trace remains chronologically ordered).
      if (sites.size() < 2) return false;
      const std::size_t k = rng.below(sites.size() - 1);
      const std::size_t a = sites[k], b = sites[k + 1];
      if (trace[a].name == trace[b].name) return false;
      t.assign(trace.begin(), trace.end());
      std::swap(t[a].name, t[b].name);
      out.position = a;
      return true;
    }
    case MutationKind::EarlyTrigger: {
      spec::Name reset = spec::kInvalidName;
      if (property.is_antecedent()) {
        reset = property.antecedent().trigger;
      } else {
        const auto& frags = property.timed().consequent.fragments;
        reset = frags.back().ranges.front().name;
      }
      if (trace.empty()) return false;
      const std::size_t pos = rng.below(trace.size());
      const spec::TimedEvent ev{reset, trace[pos].time + sim::Time::ps(1)};
      copy_with_headroom(trace, t);
      t.insert(t.begin() + static_cast<long>(pos) + 1, ev);
      out.position = pos + 1;
      return true;
    }
    case MutationKind::StallDeadline: {
      if (!property.is_timed() || trace.size() < 2) return false;
      const sim::Time bound = property.timed().bound;
      const std::size_t pos = 1 + rng.below(trace.size() - 1);
      const sim::Time shift = bound + bound + sim::Time::ns(1);
      t.assign(trace.begin(), trace.end());
      for (std::size_t k = pos; k < t.size(); ++k) {
        t[k].time = t[k].time + shift;
      }
      out.position = pos;
      return true;
    }
  }
  return false;
}

bool mutate_into(const spec::Trace& trace, MutationKind kind,
                 const spec::Property& property, support::Rng& rng,
                 MutationResult& out) {
  const spec::NameSet alphabet = property.alphabet();
  return mutate_into(trace, kind, property, alphabet, rng, out);
}

std::optional<MutationResult> mutate(const spec::Trace& trace,
                                     MutationKind kind,
                                     const spec::Property& property,
                                     support::Rng& rng) {
  MutationResult result;
  if (!mutate_into(trace, kind, property, rng, result)) return std::nullopt;
  return result;
}

}  // namespace loom::abv

#include "abv/mutate.hpp"

#include <algorithm>

namespace loom::abv {

const char* to_string(MutationKind k) {
  switch (k) {
    case MutationKind::Drop: return "drop";
    case MutationKind::Duplicate: return "duplicate";
    case MutationKind::SwapAdjacent: return "swap-adjacent";
    case MutationKind::EarlyTrigger: return "early-trigger";
    case MutationKind::StallDeadline: return "stall-deadline";
  }
  return "?";
}

namespace {

/// Indices of trace events that belong to the property alphabet.
std::vector<std::size_t> relevant_positions(const spec::Trace& trace,
                                            const spec::NameSet& alphabet) {
  std::vector<std::size_t> out;
  for (std::size_t k = 0; k < trace.size(); ++k) {
    if (alphabet.test(trace[k].name)) out.push_back(k);
  }
  return out;
}

}  // namespace

std::optional<MutationResult> mutate(const spec::Trace& trace,
                                     MutationKind kind,
                                     const spec::Property& property,
                                     support::Rng& rng) {
  const spec::NameSet alphabet = property.alphabet();
  const auto sites = relevant_positions(trace, alphabet);
  MutationResult result;
  result.kind = kind;
  result.trace = trace;

  switch (kind) {
    case MutationKind::Drop: {
      if (sites.empty()) return std::nullopt;
      const std::size_t pos = sites[rng.below(sites.size())];
      result.trace.erase(result.trace.begin() + static_cast<long>(pos));
      result.position = pos;
      return result;
    }
    case MutationKind::Duplicate: {
      if (sites.empty()) return std::nullopt;
      const std::size_t pos = sites[rng.below(sites.size())];
      spec::TimedEvent copy = trace[pos];
      copy.time = copy.time + sim::Time::ps(1);
      result.trace.insert(result.trace.begin() + static_cast<long>(pos) + 1,
                          copy);
      result.position = pos;
      return result;
    }
    case MutationKind::SwapAdjacent: {
      // Swap the names of two consecutive relevant events (times stay put,
      // so the trace remains chronologically ordered).
      if (sites.size() < 2) return std::nullopt;
      const std::size_t k = rng.below(sites.size() - 1);
      const std::size_t a = sites[k], b = sites[k + 1];
      if (result.trace[a].name == result.trace[b].name) return std::nullopt;
      std::swap(result.trace[a].name, result.trace[b].name);
      result.position = a;
      return result;
    }
    case MutationKind::EarlyTrigger: {
      spec::Name reset = spec::kInvalidName;
      if (property.is_antecedent()) {
        reset = property.antecedent().trigger;
      } else {
        const auto& frags = property.timed().consequent.fragments;
        reset = frags.back().ranges.front().name;
      }
      if (trace.empty()) return std::nullopt;
      const std::size_t pos = rng.below(trace.size());
      spec::TimedEvent ev{reset, trace[pos].time + sim::Time::ps(1)};
      result.trace.insert(result.trace.begin() + static_cast<long>(pos) + 1,
                          ev);
      result.position = pos + 1;
      return result;
    }
    case MutationKind::StallDeadline: {
      if (!property.is_timed() || trace.size() < 2) return std::nullopt;
      const sim::Time bound = property.timed().bound;
      const std::size_t pos = 1 + rng.below(trace.size() - 1);
      const sim::Time shift = bound + bound + sim::Time::ns(1);
      for (std::size_t k = pos; k < result.trace.size(); ++k) {
        result.trace[k].time = result.trace[k].time + shift;
      }
      result.position = pos;
      return result;
    }
  }
  return std::nullopt;
}

}  // namespace loom::abv

#include "abv/checker.hpp"

#include "mon/snapshot.hpp"

namespace loom::abv {

std::size_t Checker::add(std::string name,
                         std::unique_ptr<mon::Monitor> monitor) {
  entries_.push_back({std::move(name), std::move(monitor)});
  return entries_.size() - 1;
}

void Checker::observe(spec::Name name, sim::Time time) {
  for (auto& e : entries_) e.monitor->observe(name, time);
}

void Checker::finish(sim::Time end_time) {
  for (auto& e : entries_) e.monitor->finish(end_time);
}

void Checker::run(const spec::Trace& trace, sim::Time end_time,
                  std::size_t snapshot_stride) {
  mon::Snapshot scratch;  // one reusable buffer for every round-trip
  std::size_t since_snapshot = 0;
  for (const auto& ev : trace) {
    observe(ev.name, ev.time);
    if (snapshot_stride != 0 && ++since_snapshot == snapshot_stride) {
      since_snapshot = 0;
      for (auto& e : entries_) {
        e.monitor->snapshot(scratch);
        e.monitor->restore(scratch);
      }
    }
  }
  finish(end_time);
}

bool Checker::all_passing() const { return violation_count() == 0; }

std::size_t Checker::violation_count() const {
  std::size_t n = 0;
  for (const auto& e : entries_) {
    if (e.monitor->verdict() == mon::Verdict::Violated) ++n;
  }
  return n;
}

std::vector<Checker::Report> Checker::reports() const {
  std::vector<Report> out;
  for (const auto& e : entries_) {
    out.push_back({e.name, e.monitor->verdict(), e.monitor->violation()});
  }
  return out;
}

mon::MonitorStats Checker::aggregate_stats() const {
  mon::MonitorStats total;
  for (const auto& e : entries_) total.merge(e.monitor->stats());
  return total;
}

void Checker::absorb(Checker&& shard) {
  for (auto& e : shard.entries_) entries_.push_back(std::move(e));
  shard.entries_.clear();
}

std::string Checker::summary(const spec::Alphabet& ab) const {
  std::string out;
  for (const auto& e : entries_) {
    out += "[" + std::string(mon::to_string(e.monitor->verdict())) + "] " +
           e.name;
    if (e.monitor->violation().has_value()) {
      out += "\n    " + e.monitor->violation()->to_string(ab);
    }
    out += "\n";
  }
  return out;
}

}  // namespace loom::abv

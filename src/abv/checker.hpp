//! The assertion checker of the paper's Fig. 1 verification framework:
//! fans observed events out to a set of property monitors (Drct, ViaPSL or
//! mixed) and aggregates their verdicts.
//!
//! Ownership: the Checker owns every monitor add() hands it (and everything
//! absorb() takes over); names are display labels, not keys.
//! Thread-safety: none — a Checker belongs to one thread; parallel
//! embedders run one Checker per worker over disjoint traces and absorb()
//! the shards afterwards (the campaign engine merges plain counters
//! instead, see abv::run_campaigns).
//! Determinism: observe()/run() broadcast in registration order and the
//! aggregate is an order-independent reduction, so a replayed trace yields
//! the same summary bytes every time.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "mon/stats.hpp"
#include "mon/verdict.hpp"
#include "spec/reference.hpp"

namespace loom::abv {

class Checker {
 public:
  /// Registers a monitor under a display name; returns its index.
  std::size_t add(std::string name, std::unique_ptr<mon::Monitor> monitor);

  std::size_t size() const { return entries_.size(); }
  mon::Monitor& monitor(std::size_t index) { return *entries_[index].monitor; }
  const std::string& name(std::size_t index) const {
    return entries_[index].name;
  }

  /// Broadcasts an event to every monitor.
  void observe(spec::Name name, sim::Time time);
  /// Broadcasts end-of-observation.
  void finish(sim::Time end_time);

  /// Replays a full recorded trace.  A non-zero `snapshot_stride` takes a
  /// mon::Snapshot of every monitor after each `snapshot_stride` events and
  /// immediately restores it — a live exercise of the checkpoint machinery
  /// the campaign engine's incremental replay builds on.  By the snapshot
  /// contract (restore ≡ state at snapshot time, mon_snapshot_test) the
  /// verdicts, violations and stats are identical to a plain replay.
  void run(const spec::Trace& trace, sim::Time end_time,
           std::size_t snapshot_stride = 0);

  /// True when no monitor reported a violation.
  bool all_passing() const;
  std::size_t violation_count() const;

  struct Report {
    std::string name;
    mon::Verdict verdict = mon::Verdict::Monitoring;
    std::optional<mon::Violation> violation;
  };
  std::vector<Report> reports() const;

  /// Multi-line human-readable summary.
  std::string summary(const spec::Alphabet& ab) const;

  /// Figure-6-style accounting summed over every registered monitor (ops
  /// and events add, max_ops_per_event is the worst across monitors).
  mon::MonitorStats aggregate_stats() const;

  /// Takes over every monitor of `shard`, appending its entries.  For
  /// embedders that run one Checker per worker over disjoint trace sets
  /// (the campaign engine itself merges plain counters instead, see
  /// abv::run_campaigns) and want a single Checker to report on.
  void absorb(Checker&& shard);

 private:
  struct Entry {
    std::string name;
    std::unique_ptr<mon::Monitor> monitor;
  };
  std::vector<Entry> entries_;
};

}  // namespace loom::abv

//! Mutation operators: violation injection for negative testing.
//!
//! Each operator perturbs a (typically valid) trace in a way that tends to
//! violate a loose-ordering property: dropping a required event, duplicating
//! a block element past its bound, swapping events across a fragment
//! boundary, firing the trigger early, or stalling a timed consequent past
//! its deadline.  Not every mutation of every trace yields a violation (a
//! swap inside a fragment is legal by design!): callers decide expected
//! verdicts with the reference checker.
//!
//! Ownership: mutate() returns a fresh trace; mutate_into() writes into a
//! caller-owned MutationResult, reusing its buffer's capacity across calls
//! (the campaign engine's per-worker scratch); inputs are never modified.
//! Thread-safety: pure functions of (trace, property, rng) — safe to call
//! concurrently as long as each caller owns its Rng and, for mutate_into,
//! its output scratch (a small thread-local site index is reused
//! internally, which keeps both entry points allocation-free in steady
//! state without changing any result).
//! Determinism: a given Rng stream yields the same mutant sequence on any
//! thread; the campaign engine keys streams by (seed, mutation slot) so
//! its mutants never depend on scheduling.  mutate_into() is byte-identical
//! to mutate() — same Rng draws, same MutationResult — even when the
//! scratch arrives dirty from an unrelated earlier call (locked by
//! tests/campaign_scratch_diff_test.cpp).
#pragma once

#include <optional>

#include "spec/ast.hpp"
#include "spec/reference.hpp"
#include "support/rng.hpp"

namespace loom::abv {

enum class MutationKind {
  Drop,          // remove one property event
  Duplicate,     // repeat one property event
  SwapAdjacent,  // exchange two neighbouring property events
  EarlyTrigger,  // insert the trigger / reset name early
  StallDeadline, // push a suffix past the timed bound
};

const char* to_string(MutationKind k);

struct MutationResult {
  spec::Trace trace;
  MutationKind kind = MutationKind::Drop;
  /// Index of the first event at which the mutant may diverge from the
  /// source trace — NOT "the index of the mutated event".  The load-bearing
  /// contract (the checkpointed campaign engine replays mutants from a
  /// snapshot at or before this index, and abv_mutate_position_test locks
  /// it):
  ///
  ///     trace[0, position) == mutant[0, position), element for element.
  ///
  /// Per kind:
  ///   Drop          index of the removed event (the mutant holds the old
  ///                 successor there);
  ///   Duplicate     index of the inserted copy (original index + 1);
  ///   SwapAdjacent  index of the first of the two swapped events;
  ///   EarlyTrigger  index of the inserted trigger event;
  ///   StallDeadline index of the first time-shifted event.
  ///
  /// position <= source trace size and position <= mutant size always
  /// hold; the exact first differing element can lie later only when the
  /// source trace happens to repeat the displaced event bit-for-bit (the
  /// guarantee above is what downstream consumers may rely on).
  std::size_t position = 0;
};

/// Applies `kind` at a random applicable position; nullopt when the trace
/// offers no applicable site (e.g. StallDeadline on an antecedent).
std::optional<MutationResult> mutate(const spec::Trace& trace,
                                     MutationKind kind,
                                     const spec::Property& property,
                                     support::Rng& rng);

/// In-place form: writes the mutant into `out`, reusing the trace buffer's
/// capacity so steady-state callers allocate nothing.  Returns false (and
/// leaves `out.trace` in an unspecified-but-valid state) when the trace
/// offers no applicable site — exactly when mutate() returns nullopt, with
/// identical Rng consumption either way.
bool mutate_into(const spec::Trace& trace, MutationKind kind,
                 const spec::Property& property, support::Rng& rng,
                 MutationResult& out);

/// Precomputed-alphabet form, for callers that already hold the property's
/// alphabet (the campaign engine reuses the compiled plan's snapshot): the
/// only fully allocation-free entry point, since the convenience overloads
/// must materialize a fresh NameSet per call.  `alphabet` must equal
/// property.alphabet().
bool mutate_into(const spec::Trace& trace, MutationKind kind,
                 const spec::Property& property,
                 const spec::NameSet& alphabet, support::Rng& rng,
                 MutationResult& out);

}  // namespace loom::abv

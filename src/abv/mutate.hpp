//! Mutation operators: violation injection for negative testing.
//!
//! Each operator perturbs a (typically valid) trace in a way that tends to
//! violate a loose-ordering property: dropping a required event, duplicating
//! a block element past its bound, swapping events across a fragment
//! boundary, firing the trigger early, or stalling a timed consequent past
//! its deadline.  Not every mutation of every trace yields a violation (a
//! swap inside a fragment is legal by design!): callers decide expected
//! verdicts with the reference checker.
//!
//! Ownership: mutate() returns a fresh trace; inputs are never modified.
//! Thread-safety: pure functions of (trace, property, rng) — safe to call
//! concurrently as long as each caller owns its Rng.
//! Determinism: a given Rng stream yields the same mutant sequence on any
//! thread; the campaign engine keys streams by (seed, mutation slot) so
//! its mutants never depend on scheduling.
#pragma once

#include <optional>

#include "spec/ast.hpp"
#include "spec/reference.hpp"
#include "support/rng.hpp"

namespace loom::abv {

enum class MutationKind {
  Drop,          // remove one property event
  Duplicate,     // repeat one property event
  SwapAdjacent,  // exchange two neighbouring property events
  EarlyTrigger,  // insert the trigger / reset name early
  StallDeadline, // push a suffix past the timed bound
};

const char* to_string(MutationKind k);

struct MutationResult {
  spec::Trace trace;
  MutationKind kind = MutationKind::Drop;
  std::size_t position = 0;
};

/// Applies `kind` at a random applicable position; nullopt when the trace
/// offers no applicable site (e.g. StallDeadline on an antecedent).
std::optional<MutationResult> mutate(const spec::Trace& trace,
                                     MutationKind kind,
                                     const spec::Property& property,
                                     support::Rng& rng);

}  // namespace loom::abv

//! Verification campaign runner: the paper's Fig. 1 loop as one call.
//!
//! For a property, run_campaign() generates valid stimuli across seeds,
//! checks them with the chosen runtime monitor and the declarative
//! reference, then applies every mutation operator repeatedly and records
//! how violations are detected.  The result aggregates pass/fail counts,
//! mutation-kill statistics and structural coverage — the input the paper's
//! "coverage improver" would consume.
//!
//! The loop is embarrassingly parallel and the engine exploits that: the
//! (seed × property × mutation-kind) space is sharded into independent work
//! units, each drawing from its own support::Rng stream keyed by the unit
//! index, and per-shard results are merged with an order-independent
//! reduction.
//!
//! Ownership: run_campaigns() owns every artifact it creates (compiled
//! plans, trace cache, pool); callers keep ownership of the properties and
//! the alphabet, which must outlive the call.  Thread-safety: the alphabet
//! is pre-interned during serial setup and then shared strictly read-only;
//! compiled plans and cached traces are immutable once published.
//! Determinism contracts (all enforced by tier-1 tests):
//!   serial ≡ parallel        (campaign_parallel_test)
//!   cached replay ≡ live     (campaign_replay_diff_test)
//!   compiled ≡ per-unit      (compiled_plan_diff_test)
//!   scratch/pooled ≡ fresh   (campaign_scratch_diff_test)
//!   incremental ≡ full replay (campaign_incremental_diff_test)
//!   lane-batched ≡ scalar    (campaign_lane_diff_test)
//! A run with threads=N, any shard size, any cache/batch/plan/scratch/
//! checkpoint/lane knob setting is bit-identical to the serial legacy run —
//! same counts, same coverage ratios, same report text.
#pragma once

#include <stdexcept>
#include <string>
#include <vector>

#include "abv/coverage.hpp"
#include "abv/mutate.hpp"
#include "abv/stimuli.hpp"
#include "mon/compiled.hpp"
#include "mon/stats.hpp"

namespace loom::abv {

/// Test-only misbehavior injection for the cross-process worker protocol
/// (tests/campaign_worker_fault_test.cpp, campaign_supervision_test.cpp):
/// a faulted worker deliberately violates the wire contract so the
/// parent's failure handling — and since the supervisor landed, its
/// deadline / retry / degradation machinery — can be pinned.  Always None
/// in real runs.  The per-frame faults strike the partial frame at index
/// CampaignOptions::worker_fault_at (0 = the first, the historical
/// behavior); an index past the worker's partial count disarms the fault.
/// The supervisor clears the fault on re-dispatch, so a retried attempt
/// runs clean — the deterministic "fails once, then recovers" shape the
/// seventh invariant is locked against.
enum class WorkerFault : std::uint8_t {
  None = 0,
  CorruptFrame,       // emit one partial frame with a corrupted header
  DieMidStream,       // exit after writing half a frame
  FutureVersion,      // stamp a future wire-format version on one frame
  Hang,               // go silent instead of a frame; ignores SIGTERM, so
                      // only the supervisor's SIGKILL escalation ends it
  SlowStream,         // trickle one byte per interval from that frame on —
                      // alive by poll()'s lights, dead by the deadline's
  PartialWritesOnly,  // send every partial but exit before the Done trailer
  ExitBeforeRequest,  // exit silently right after reading the request, as
                      // if the process died before starting work
};

struct CampaignOptions {
  std::uint64_t first_seed = 1;
  std::size_t seeds = 10;
  StimuliOptions stimuli;           // rounds / noise per generated trace
  std::size_t mutants_per_kind = 10;
  bool check_viapsl = false;        // additionally run the ViaPSL monitor

  /// Monitor construction executing the campaign's units: Drct, ViaPSL, or
  /// Auto — the per-property psl::cost_model choice (which picks Drct for
  /// every property the paper evaluates; see mon::CompiledProperty).  The
  /// chosen backend is part of the semantic result: it decides which
  /// monitor produces the verdicts and the Figure-6 accounting.
  mon::Backend backend = mon::Backend::Auto;

  /// Compile each property once (mon::CompiledProperty) and stamp per-unit
  /// monitor instances from the shared plan, reusing one instance per
  /// mutation unit via Monitor::reset().  Off re-runs the full translation
  /// inside every work unit and heap-allocates per mutant, like the
  /// pre-plan engine.  Result-neutral — compiled_plan_diff_test holds the
  /// two paths byte-for-byte equal.
  bool use_compiled_plans = true;

  /// Worker threads for the sharded engine: 1 runs the shards serially on
  /// the calling thread, 0 asks the hardware, N>1 spins a work-stealing
  /// pool.  The result does not depend on this knob.
  std::size_t threads = 1;
  /// Work units per shard (a unit is one seed's valid phase or one seed's
  /// batch of one mutation kind); 0 picks a size that keeps every worker
  /// busy.  The result does not depend on this knob either.
  std::size_t shard_size = 0;

  /// Generate each seed's valid trace once into a concurrent per-seed
  /// cache (support::TraceCache) and share it across the seed's six work
  /// units, instead of regenerating it per unit.  The trace is a pure
  /// function of the seed, so this knob cannot change the result — the
  /// differential tests hold the engine to that.
  bool reuse_traces = true;
  /// Replay each mutant through MonitorModule::observe_batch (one batched
  /// call per mutant, ReplayAll policy) instead of a raw per-event
  /// observe() loop.  Result-neutral by the same contract.
  bool batch_replay = true;

  /// Run the steady-state loop out of per-worker scratch arenas: mutants
  /// are written into a reusable trace buffer (abv::mutate_into), the
  /// batched replay host (sim::Scheduler + mon::MonitorModule) is hoisted
  /// out of the mutant loop and reset between mutants, the reference
  /// oracle reuses the compiled OrderingPlan, and — on the compiled-plans
  /// path — a per-shard monitor pool lets *valid* units draw/reset()
  /// instances exactly like mutation units (counted via
  /// compile_stats.instance_reuses).  Off re-allocates everything fresh per
  /// mutant like the pre-scratch engine; the fourth differential invariant
  /// (campaign_scratch_diff_test) holds the two paths byte-for-byte equal.
  bool reuse_scratch = true;

  /// Replay each mutant from the nearest checkpoint at or before its
  /// mutation site instead of from event 0.  While the per-seed cache
  /// entry is built, the engine records monitor-state snapshots
  /// (mon::Snapshot) every `checkpoint_stride` events of the valid trace;
  /// a mutant whose MutationResult::position proves a shared prefix then
  /// restores the floor checkpoint and batch-replays only [floor, end) —
  /// O(suffix) instead of O(trace) per mutant.  Requires reuse_traces (the
  /// ladder lives next to the cached trace); with the cache off the engine
  /// silently falls back to full replay.  Result-neutral: the fifth
  /// differential invariant (campaign_incremental_diff_test) holds
  /// incremental byte-for-byte equal to full replay at any thread count,
  /// backend, stride and knob combination.
  bool incremental_replay = true;
  /// Events between checkpoint snapshots on the valid trace (the ladder's
  /// rung spacing): smaller strides skip more prefix per mutant but store
  /// more snapshots per seed.  0 disables the ladder (full replay).
  std::size_t checkpoint_stride = 32;

  /// Cross-process sharding: 0 runs every shard in this process (threads
  /// decide the parallelism as before); N > 0 spawns N worker subprocesses
  /// speaking the versioned wire format (src/wire/) over pipes, each
  /// running a round-robin slice of the same shard layout and returning
  /// wire-encoded partial results that merge through the same reduction.
  /// The sixth differential invariant — in-process ≡ cross-process, locked
  /// by campaign_process_diff_test — makes this knob result-neutral like
  /// the others, with one documented exception: the trace-cache hit/miss
  /// *diagnostics* become per-process (a seed split across workers misses
  /// once per worker), which report() and the semantic result never see.
  /// A worker failure (death, timeout, corrupt frame, foreign version) is
  /// retried per worker_retries; once retries are exhausted it raises
  /// WorkerFailure — or, with allow_partial, degrades the result instead.
  /// Nothing from a failed attempt is ever merged.
  std::size_t workers = 0;
  /// How to start a worker: an argv to exec (e.g. {"loomcheck",
  /// "--worker"}; the child speaks wire on stdin/stdout), or empty to
  /// fork without exec — the child runs run_campaign_worker in-image,
  /// which is what tests and single-binary embedders use.
  std::vector<std::string> worker_command;
  /// See WorkerFault; forwarded to workers so tests can inject protocol
  /// violations deterministically.
  WorkerFault worker_fault = WorkerFault::None;
  /// Index of the partial frame worker_fault strikes (the n-th-partial
  /// fault variants); past the worker's partial count the fault never
  /// fires.  Ignored by ExitBeforeRequest, which faults before any frame.
  std::size_t worker_fault_at = 0;

  /// Supervision deadline, per frame: the parent fails a worker that has
  /// not completed a frame within this many milliseconds (poll(2)-based
  /// multiplexed drain; a trickling stream counts as stalled).  0 — the
  /// default — waits forever, the pre-supervisor behavior.  A failed
  /// worker is SIGTERM'd, granted a short grace, then SIGKILL'd, so even
  /// a worker ignoring pipe EOF cannot wedge the campaign.
  std::size_t worker_timeout_ms = 0;
  /// Re-dispatch budget per worker slot: when a worker dies, times out or
  /// violates the protocol, its exact shard assignment is re-sent to a
  /// fresh worker up to this many times.  The partials of every failed
  /// attempt are discarded wholesale and the shards recomputed, so a
  /// retried run merges byte-identically to a clean one — the seventh
  /// invariant (campaign_supervision_test).  Retry accounting lands in
  /// CampaignResult::worker_retries, an engine diagnostic like the
  /// trace-cache split, never in the semantic result.
  std::size_t worker_retries = 0;
  /// Opt-in graceful degradation: when a worker slot exhausts its retries,
  /// record its shards as unexecuted (CampaignResult::shard_failures, the
  /// `degraded()` flag and report()'s "degraded:" lines) and keep every
  /// other worker's results, instead of throwing WorkerFailure and
  /// discarding everything.  Off by default: all-or-nothing like PR 8.
  bool allow_partial = false;
  /// The supervised drain (poll-multiplexed, deadline-aware, retrying) is
  /// the default; off selects the legacy PR 8 drain — sequential blocking
  /// reads, no deadlines, no retries, first failure throws — kept alive as
  /// the differential baseline and the BM_WorkerSupervision yardstick.
  /// Clean runs are byte-identical either way.
  bool supervised = true;

  /// Wave width for lane-batched mutant replay: up to this many mutants of
  /// one (seed × property × kind) unit are mutated into per-lane slots,
  /// each lane restored from its own checkpoint-ladder floor rung, and the
  /// whole wave advanced through mon::VmLaneBatch's block-lockstep
  /// lockstep — the program's route tables stay hot while lane state
  /// streams.  1 is the scalar path (one mutant at a time, the historical
  /// loop), kept alive as the differential baseline.  Waves need the Vm
  /// backend plus pooled scratch and batched replay; when Auto resolves to
  /// another backend or a scratch/batch knob is off, the engine silently
  /// runs scalar — but *forcing* a non-Vm backend with lane_width > 1
  /// throws std::invalid_argument, since that request is contradictory.
  /// Result-neutral at every width: the eighth differential invariant
  /// (campaign_lane_diff_test) holds lane-batched byte-for-byte equal to
  /// scalar at any width, thread count, worker count and knob setting.
  std::size_t lane_width = 8;

  /// Optional cross-campaign plan cache (borrowed; must outlive the call):
  /// when set, compile_property_plans() memoizes each property's
  /// translate-once artifacts under its normalized text, so repeated
  /// run_campaigns() calls in long-lived embedders skip recompilation.
  /// The hit/miss split lands in CampaignResult::compile_stats.
  mon::CompiledPropertyCache* plan_cache = nullptr;
};

struct MutationStats {
  std::size_t applied = 0;    // mutation operator produced a trace
  std::size_t invalid = 0;    // reference rejected the mutant
  std::size_t detected = 0;   // Drct monitor rejected it too
  std::size_t missed = 0;     // reference rejected but the monitor did not

  /// Order-independent shard reduction (all fields are sums).
  void merge(const MutationStats& other) {
    applied += other.applied;
    invalid += other.invalid;
    detected += other.detected;
    missed += other.missed;
  }
};

/// Accounting of the translate-once compilation layer.  The backend fields
/// are semantic (they name the monitor construction that produced the
/// result); the instance counters are engine diagnostics like the trace
/// cache split — deterministic for a given knob setting, excluded from
/// report(), and compared separately by the differential tests.
struct CompileStats {
  std::size_t plans_built = 0;        // one-time property translations
  std::size_t viapsl_encodings = 0;   // materialized clause sets
  std::size_t instances_stamped = 0;  // monitors constructed for work units
  std::size_t instance_reuses = 0;    // Monitor::reset() reuses of those
  /// Cross-campaign plan-cache split (both 0 without a plan_cache): a miss
  /// compiled this property fresh, a hit reused an earlier campaign's
  /// artifacts.  Diagnostics like the instance counters — deterministic
  /// for a given cache history, excluded from report().
  std::size_t plan_cache_hits = 0;
  std::size_t plan_cache_misses = 0;
  mon::Backend backend_requested = mon::Backend::Auto;
  mon::Backend backend_chosen = mon::Backend::Drct;

  /// Order-independent shard reduction: counters are sums, the backend
  /// fields are per-property constants (every shard agrees on them).
  void merge(const CompileStats& other) {
    plans_built += other.plans_built;
    viapsl_encodings += other.viapsl_encodings;
    instances_stamped += other.instances_stamped;
    instance_reuses += other.instance_reuses;
    plan_cache_hits += other.plan_cache_hits;
    plan_cache_misses += other.plan_cache_misses;
  }
};

/// One property's compiled campaign artifacts: the translate-once
/// mon::CompiledProperty (recognizer tables, interned alphabet, optional
/// ViaPSL clause set, cost-model backend choice) plus the campaign-side
/// bookkeeping.  Built serially by compile_property_plans() before workers
/// start and shared strictly read-only across all shards.
struct PropertyPlan {
  const spec::Property* property = nullptr;
  mon::CompiledProperty compiled;
  std::size_t index = 0;      // position in run_campaigns' property list
  CompileStats base_stats;    // plans/encodings built + backend fields
};

/// Compiles every property up front: one plan, one optional ViaPSL clause
/// set and one resolved backend per property, all pure functions of
/// (property, options).  run_campaigns() calls this itself; it is exposed
/// for tests and benches that want to inspect or reuse the plans.
std::vector<PropertyPlan> compile_property_plans(
    const std::vector<const spec::Property*>& properties,
    const spec::Alphabet& ab, const CampaignOptions& options);

struct CampaignResult {
  std::size_t traces = 0;
  std::size_t events = 0;
  std::size_t valid_accepted = 0;   // valid traces accepted by the monitor
  std::size_t oracle_disagreements = 0;  // monitor verdict != reference
  std::size_t viapsl_false_alarms = 0;   // ViaPSL rejected a reference-pass
  MutationStats mutation[5];        // indexed by MutationKind
  double alphabet_coverage = 0.0;
  double recognizer_state_coverage = 0.0;  // Drct antecedents only; else 1.0

  /// Figure-6-style operation accounting summed over every monitor the
  /// campaign ran (valid phases, mutants and ViaPSL checks alike).
  mon::MonitorStats monitor_stats;

  /// Translate-once accounting: plans built, backend chosen, instances
  /// stamped/reused.  The backend fields are semantic; the counters are
  /// engine diagnostics (see CompileStats).
  CompileStats compile_stats;

  /// Per-seed trace cache accounting (both 0 with reuse_traces off).  The
  /// split is deterministic — exactly one miss per seed, every other unit
  /// of that seed hits, regardless of thread count — but it is engine
  /// diagnostics, not part of the semantic result: report() excludes it
  /// and the differential tests compare it separately.
  std::size_t trace_cache_hits = 0;
  std::size_t trace_cache_misses = 0;

  /// Incremental-replay accounting (both 0 with incremental_replay off or
  /// no usable ladder): mutants restored from a checkpoint, and the
  /// shared-prefix events those restores skipped re-stepping.  Like the
  /// trace-cache split these are deterministic engine diagnostics —
  /// excluded from the default report() so incremental runs stay
  /// byte-identical to full-replay runs; report(ab, true) appends them.
  std::size_t checkpoint_hits = 0;
  std::size_t events_skipped = 0;

  /// Worker re-dispatches that touched this property's shards (engine
  /// diagnostic, 0 without cross-process supervision).  A retried run's
  /// semantic result is byte-identical to a clean run's — the seventh
  /// invariant — so this count lives with the other per-process
  /// diagnostics: excluded from report() and results_identical.
  std::size_t worker_retries = 0;

  /// Lane-batched wave accounting (all 0 when every unit ran scalar):
  /// waves flushed through VmLaneBatch, the lanes those waves actually
  /// filled, and the capacity they offered (lane_waves × lane_width — the
  /// result carries it so lanes_filled / lane_capacity, the occupancy,
  /// survives merging and the wire without knowing the knob).  The final
  /// wave of a unit is usually partial, which is what occupancy < 1 means.
  /// Engine diagnostics like the checkpoint counters: deterministic for a
  /// given knob setting, excluded from report() and results_identical.
  std::uint64_t lane_waves = 0;
  std::uint64_t lanes_filled = 0;
  std::uint64_t lane_capacity = 0;

  /// One shard a cross-process campaign could not execute: its worker slot
  /// exhausted every retry and options.allow_partial chose degradation
  /// over WorkerFailure.  The diagnostic is the slot's final failure —
  /// positioned wire error, timeout description, or wait status.  Unlike
  /// the counters above this IS semantic: the shard's units are missing
  /// from every aggregate, degraded() is true, ok() is false and report()
  /// names each lost shard.
  struct ShardFailure {
    std::size_t worker = 0;      // worker slot whose retries ran out
    std::size_t shard = 0;       // index in the campaign's shard layout
    std::size_t unit_begin = 0;  // the unexecuted unit range [begin, end)
    std::size_t unit_end = 0;
    std::string diagnostic;
  };
  /// Lost shards in shard-index order; empty unless allow_partial
  /// absorbed a worker failure.
  std::vector<ShardFailure> shard_failures;

  /// True when allow_partial absorbed at least one exhausted worker slot:
  /// the aggregates cover only the surviving shards.
  bool degraded() const { return !shard_failures.empty(); }

  /// One engine diagnostic as a named counter for benchmark export.  The
  /// names are the schema of the tracked BENCH_*.json baselines that
  /// tools/bench_compare.py diffs — renaming one orphans the recorded perf
  /// trajectory, so treat them as API.
  struct DiagnosticCounter {
    const char* name;
    double value;
  };

  /// The engine diagnostics as stable named counters: trace/plan-cache hit
  /// rates, instance reuse rate, the incremental-replay skip ratio and the
  /// chosen backend (0 = Drct, 1 = ViaPSL).  Every ratio guards its
  /// denominator — a zero-work campaign (no events, no mutants, caches
  /// off) reports 0, never NaN — so the values can go straight into
  /// benchmark counters and JSON baselines.
  std::vector<DiagnosticCounter> diagnostic_counters() const;

  /// A healthy campaign: monitors agree with the oracle everywhere, all
  /// valid traces pass, no invalid mutant escapes detection, and every
  /// shard actually executed (a degraded run cannot claim a pass over
  /// units it never ran).
  bool ok() const {
    if (degraded()) return false;
    if (oracle_disagreements != 0 || viapsl_false_alarms != 0) return false;
    if (valid_accepted != traces) return false;
    for (const auto& m : mutation) {
      if (m.missed != 0) return false;
    }
    return true;
  }

  /// Human-readable summary.  The default report contains only the
  /// semantic result (every performance knob leaves it byte-identical —
  /// that is the differential tests' yardstick); `with_engine_diagnostics`
  /// appends the trace-cache and checkpoint-replay accounting lines.  A
  /// degraded run adds one "degraded:" line per lost shard — part of the
  /// semantic result, since those units are missing from the aggregates.
  std::string report(const spec::Alphabet& ab,
                     bool with_engine_diagnostics = false) const;
};

CampaignResult run_campaign(const spec::Property& property,
                            spec::Alphabet& ab,
                            const CampaignOptions& options);

/// Batch form: one campaign per property, all sharded onto the same pool so
/// short properties backfill the tail of long ones.  results[i] is
/// bit-identical to run_campaign(*properties[i], ab, options).
std::vector<CampaignResult> run_campaigns(
    const std::vector<const spec::Property*>& properties, spec::Alphabet& ab,
    const CampaignOptions& options);

/// Raised by run_campaign(s) when a worker subprocess dies, times out,
/// corrupts its stream or violates the wire protocol, after the worker's
/// retry budget (CampaignOptions::worker_retries) is spent and
/// allow_partial is off.  The message carries the worker index, the
/// attempt count, and the positioned wire diagnostic, timeout or exit
/// description; no partial results from any worker have been merged when
/// this throws.
struct WorkerFailure : std::runtime_error {
  using std::runtime_error::runtime_error;
};

/// Worker-process exit codes (pinned by campaign_worker_fault_test; part
/// of the protocol like the frame layout).  126/127 mirror the shell
/// convention: the worker *command* failed before any wire was spoken,
/// and the parent's diagnostic names that instead of a bare code.
constexpr int kWorkerExitOk = 0;           // Done frame sent, stream clean
constexpr int kWorkerExitBadRequest = 3;   // malformed/missing request frame
constexpr int kWorkerExitBadProperty = 4;  // property text failed to parse
constexpr int kWorkerExitIo = 5;           // pipe write failed mid-stream
constexpr int kWorkerExitExecSetup = 126;  // dup2/pipe setup failed pre-exec
constexpr int kWorkerExitExecMissing = 127;  // execvp itself failed

/// The worker side of cross-process sharding: reads one WorkerRequest
/// frame from `in_fd`, runs the assigned shards with the in-process
/// engine, writes one WorkerPartial frame per shard plus a WorkerDone
/// trailer to `out_fd`, and returns an exit code.  `loomcheck --worker`
/// and the fork-only child both land here; tests call it directly on
/// pipes to pin the exit codes.  `request_timeout_ms` bounds the wait for
/// the request frame (`--worker-timeout-ms=` on the CLIs' worker mode):
/// an abandoned worker whose parent never writes exits kWorkerExitBadRequest
/// instead of blocking forever; 0 waits indefinitely.
int run_campaign_worker(int in_fd, int out_fd,
                        std::size_t request_timeout_ms = 0);

}  // namespace loom::abv

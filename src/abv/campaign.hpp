// Verification campaign runner: the paper's Fig. 1 loop as one call.
//
// For a property, run_campaign() generates valid stimuli across seeds,
// checks them with the Drct monitor and the declarative reference, then
// applies every mutation operator repeatedly and records how violations
// are detected.  The result aggregates pass/fail counts, mutation-kill
// statistics and structural coverage — the input the paper's "coverage
// improver" would consume.
#pragma once

#include <string>

#include "abv/coverage.hpp"
#include "abv/mutate.hpp"
#include "abv/stimuli.hpp"

namespace loom::abv {

struct CampaignOptions {
  std::uint64_t first_seed = 1;
  std::size_t seeds = 10;
  StimuliOptions stimuli;           // rounds / noise per generated trace
  std::size_t mutants_per_kind = 10;
  bool check_viapsl = false;        // additionally run the ViaPSL monitor
};

struct MutationStats {
  std::size_t applied = 0;    // mutation operator produced a trace
  std::size_t invalid = 0;    // reference rejected the mutant
  std::size_t detected = 0;   // Drct monitor rejected it too
  std::size_t missed = 0;     // reference rejected but the monitor did not
};

struct CampaignResult {
  std::size_t traces = 0;
  std::size_t events = 0;
  std::size_t valid_accepted = 0;   // valid traces accepted by the monitor
  std::size_t oracle_disagreements = 0;  // monitor verdict != reference
  std::size_t viapsl_false_alarms = 0;   // ViaPSL rejected a reference-pass
  MutationStats mutation[5];        // indexed by MutationKind
  double alphabet_coverage = 0.0;
  double recognizer_state_coverage = 0.0;  // antecedents only; else 1.0

  /// A healthy campaign: monitors agree with the oracle everywhere, all
  /// valid traces pass, and no invalid mutant escapes detection.
  bool ok() const {
    if (oracle_disagreements != 0 || viapsl_false_alarms != 0) return false;
    if (valid_accepted != traces) return false;
    for (const auto& m : mutation) {
      if (m.missed != 0) return false;
    }
    return true;
  }

  std::string report(const spec::Alphabet& ab) const;
};

CampaignResult run_campaign(const spec::Property& property,
                            spec::Alphabet& ab,
                            const CampaignOptions& options);

}  // namespace loom::abv

// Verification campaign runner: the paper's Fig. 1 loop as one call.
//
// For a property, run_campaign() generates valid stimuli across seeds,
// checks them with the Drct monitor and the declarative reference, then
// applies every mutation operator repeatedly and records how violations
// are detected.  The result aggregates pass/fail counts, mutation-kill
// statistics and structural coverage — the input the paper's "coverage
// improver" would consume.
//
// The loop is embarrassingly parallel and the engine exploits that: the
// (seed × property × mutation-kind) space is sharded into independent work
// units, each drawing from its own support::Rng stream keyed by the unit
// index, and per-shard results are merged with an order-independent
// reduction.  A run with threads=N is bit-identical to the serial
// threads=1 run — same counts, same coverage ratios, same report text.
#pragma once

#include <string>
#include <vector>

#include "abv/coverage.hpp"
#include "abv/mutate.hpp"
#include "abv/stimuli.hpp"
#include "mon/stats.hpp"

namespace loom::abv {

struct CampaignOptions {
  std::uint64_t first_seed = 1;
  std::size_t seeds = 10;
  StimuliOptions stimuli;           // rounds / noise per generated trace
  std::size_t mutants_per_kind = 10;
  bool check_viapsl = false;        // additionally run the ViaPSL monitor

  /// Worker threads for the sharded engine: 1 runs the shards serially on
  /// the calling thread, 0 asks the hardware, N>1 spins a work-stealing
  /// pool.  The result does not depend on this knob.
  std::size_t threads = 1;
  /// Work units per shard (a unit is one seed's valid phase or one seed's
  /// batch of one mutation kind); 0 picks a size that keeps every worker
  /// busy.  The result does not depend on this knob either.
  std::size_t shard_size = 0;

  /// Generate each seed's valid trace once into a concurrent per-seed
  /// cache (support::TraceCache) and share it across the seed's six work
  /// units, instead of regenerating it per unit.  The trace is a pure
  /// function of the seed, so this knob cannot change the result — the
  /// differential tests hold the engine to that.
  bool reuse_traces = true;
  /// Replay each mutant through MonitorModule::observe_batch (one batched
  /// call per mutant, ReplayAll policy) instead of a raw per-event
  /// observe() loop.  Result-neutral by the same contract.
  bool batch_replay = true;
};

struct MutationStats {
  std::size_t applied = 0;    // mutation operator produced a trace
  std::size_t invalid = 0;    // reference rejected the mutant
  std::size_t detected = 0;   // Drct monitor rejected it too
  std::size_t missed = 0;     // reference rejected but the monitor did not

  /// Order-independent shard reduction (all fields are sums).
  void merge(const MutationStats& other) {
    applied += other.applied;
    invalid += other.invalid;
    detected += other.detected;
    missed += other.missed;
  }
};

struct CampaignResult {
  std::size_t traces = 0;
  std::size_t events = 0;
  std::size_t valid_accepted = 0;   // valid traces accepted by the monitor
  std::size_t oracle_disagreements = 0;  // monitor verdict != reference
  std::size_t viapsl_false_alarms = 0;   // ViaPSL rejected a reference-pass
  MutationStats mutation[5];        // indexed by MutationKind
  double alphabet_coverage = 0.0;
  double recognizer_state_coverage = 0.0;  // antecedents only; else 1.0

  /// Figure-6-style operation accounting summed over every monitor the
  /// campaign ran (valid phases, mutants and ViaPSL checks alike).
  mon::MonitorStats monitor_stats;

  /// Per-seed trace cache accounting (both 0 with reuse_traces off).  The
  /// split is deterministic — exactly one miss per seed, every other unit
  /// of that seed hits, regardless of thread count — but it is engine
  /// diagnostics, not part of the semantic result: report() excludes it
  /// and the differential tests compare it separately.
  std::size_t trace_cache_hits = 0;
  std::size_t trace_cache_misses = 0;

  /// A healthy campaign: monitors agree with the oracle everywhere, all
  /// valid traces pass, and no invalid mutant escapes detection.
  bool ok() const {
    if (oracle_disagreements != 0 || viapsl_false_alarms != 0) return false;
    if (valid_accepted != traces) return false;
    for (const auto& m : mutation) {
      if (m.missed != 0) return false;
    }
    return true;
  }

  std::string report(const spec::Alphabet& ab) const;
};

CampaignResult run_campaign(const spec::Property& property,
                            spec::Alphabet& ab,
                            const CampaignOptions& options);

/// Batch form: one campaign per property, all sharded onto the same pool so
/// short properties backfill the tail of long ones.  results[i] is
/// bit-identical to run_campaign(*properties[i], ab, options).
std::vector<CampaignResult> run_campaigns(
    const std::vector<const spec::Property*>& properties, spec::Alphabet& ab,
    const CampaignOptions& options);

}  // namespace loom::abv

// Deterministic pseudo-random generator for stimuli generation and tests.
//
// xoshiro256** seeded through splitmix64; reproducible across platforms,
// which matters for the randomized monitor-equivalence tests.
#pragma once

#include <cstdint>

namespace loom::support {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Derives an independent reproducible stream: the same (seed, stream)
  /// pair yields the same sequence no matter which thread consumes it, and
  /// different stream indices decorrelate even for consecutive seeds.  The
  /// parallel campaign engine keys streams by work-unit index.
  static Rng stream(std::uint64_t seed, std::uint64_t stream_index);

  std::uint64_t next();

  /// Uniform value in [0, bound); bound must be > 0.
  std::uint64_t below(std::uint64_t bound);

  /// Uniform value in [lo, hi] inclusive.
  std::uint64_t between(std::uint64_t lo, std::uint64_t hi);

  /// Bernoulli draw with probability `num/den`.
  bool chance(std::uint32_t num, std::uint32_t den);

  /// Uniform double in [0, 1).
  double uniform01();

 private:
  std::uint64_t s_[4];
};

}  // namespace loom::support

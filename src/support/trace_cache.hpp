// Concurrent, insert-only, per-seed cache for recorded traces.
//
// The parallel campaign engine runs six work units per seed (the valid
// phase plus five mutation kinds) and every one of them needs the seed's
// valid trace.  The trace is a pure function of the seed, so the first
// unit to ask generates it once and the other five reuse the stored copy.
// The cache is sharded by a mixed key hash: each shard is an independent
// mutex + hash map, so units of different seeds almost never contend, and
// values are heap-allocated so the returned references stay stable across
// rehashes for the cache's whole lifetime (entries are never removed).
//
// The factory for a key runs under its shard's lock, which gives
// exactly-once generation per key: concurrent get_or_emplace() calls for
// the same seed serialize, one runs the factory, the rest observe the
// inserted value.  Per-shard hit/miss counters are relaxed atomics — they
// are accounting, not synchronization — and stats() sums them.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <utility>

namespace loom::support {

template <typename Trace>
class TraceCache {
 public:
  struct Stats {
    std::uint64_t hits = 0;    // lookups that found an existing entry
    std::uint64_t misses = 0;  // lookups that ran the factory (== inserts)

    std::uint64_t lookups() const { return hits + misses; }
  };

  /// `shard_count` is rounded up to a power of two (minimum 1).
  explicit TraceCache(std::size_t shard_count = 16) {
    std::size_t n = 1;
    while (n < shard_count) n <<= 1;
    mask_ = n - 1;
    shards_ = std::make_unique<Shard[]>(n);
  }

  TraceCache(const TraceCache&) = delete;
  TraceCache& operator=(const TraceCache&) = delete;

  /// Returns the cached trace for `key`, running `make()` to produce it on
  /// first sight.  The reference stays valid for the cache's lifetime.
  /// When `inserted` is non-null it is set to whether this call ran the
  /// factory (miss) or found an existing entry (hit).
  template <typename Factory>
  const Trace& get_or_emplace(std::uint64_t key, Factory&& make,
                              bool* inserted = nullptr) {
    Shard& shard = shards_[mix(key) & mask_];
    std::lock_guard<std::mutex> lock(shard.mutex);
    auto it = shard.entries.find(key);
    if (it != shard.entries.end()) {
      shard.hits.fetch_add(1, std::memory_order_relaxed);
      if (inserted != nullptr) *inserted = false;
      return *it->second;
    }
    shard.misses.fetch_add(1, std::memory_order_relaxed);
    if (inserted != nullptr) *inserted = true;
    auto value = std::make_unique<Trace>(std::forward<Factory>(make)());
    return *shard.entries.emplace(key, std::move(value)).first->second;
  }

  /// Sums the per-shard counters.  Exact once concurrent users quiesce
  /// (e.g. after ThreadPool::wait_idle()); a snapshot before that.
  Stats stats() const {
    Stats total;
    for (std::size_t i = 0; i <= mask_; ++i) {
      total.hits += shards_[i].hits.load(std::memory_order_relaxed);
      total.misses += shards_[i].misses.load(std::memory_order_relaxed);
    }
    return total;
  }

  /// Number of cached entries (== stats().misses once quiescent).
  std::size_t size() const {
    std::size_t n = 0;
    for (std::size_t i = 0; i <= mask_; ++i) {
      std::lock_guard<std::mutex> lock(shards_[i].mutex);
      n += shards_[i].entries.size();
    }
    return n;
  }

  std::size_t shard_count() const { return mask_ + 1; }

 private:
  struct Shard {
    mutable std::mutex mutex;
    std::unordered_map<std::uint64_t, std::unique_ptr<Trace>> entries;
    std::atomic<std::uint64_t> hits{0};
    std::atomic<std::uint64_t> misses{0};
  };

  // splitmix64 finalizer: sequential seeds land on different shards.
  static std::uint64_t mix(std::uint64_t x) {
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
  }

  std::size_t mask_ = 0;
  std::unique_ptr<Shard[]> shards_;
};

}  // namespace loom::support
